# Empty compiler generated dependencies file for tcs_cpu.
# This may be replaced when dependencies are built.
