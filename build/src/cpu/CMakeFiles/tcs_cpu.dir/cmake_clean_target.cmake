file(REMOVE_RECURSE
  "libtcs_cpu.a"
)
