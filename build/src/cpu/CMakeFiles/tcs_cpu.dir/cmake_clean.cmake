file(REMOVE_RECURSE
  "CMakeFiles/tcs_cpu.dir/cpu.cc.o"
  "CMakeFiles/tcs_cpu.dir/cpu.cc.o.d"
  "CMakeFiles/tcs_cpu.dir/idle_profiler.cc.o"
  "CMakeFiles/tcs_cpu.dir/idle_profiler.cc.o.d"
  "CMakeFiles/tcs_cpu.dir/linux_scheduler.cc.o"
  "CMakeFiles/tcs_cpu.dir/linux_scheduler.cc.o.d"
  "CMakeFiles/tcs_cpu.dir/nt_scheduler.cc.o"
  "CMakeFiles/tcs_cpu.dir/nt_scheduler.cc.o.d"
  "CMakeFiles/tcs_cpu.dir/svr4_scheduler.cc.o"
  "CMakeFiles/tcs_cpu.dir/svr4_scheduler.cc.o.d"
  "CMakeFiles/tcs_cpu.dir/thread.cc.o"
  "CMakeFiles/tcs_cpu.dir/thread.cc.o.d"
  "libtcs_cpu.a"
  "libtcs_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcs_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
