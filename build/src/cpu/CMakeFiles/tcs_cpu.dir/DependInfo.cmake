
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cpu.cc" "src/cpu/CMakeFiles/tcs_cpu.dir/cpu.cc.o" "gcc" "src/cpu/CMakeFiles/tcs_cpu.dir/cpu.cc.o.d"
  "/root/repo/src/cpu/idle_profiler.cc" "src/cpu/CMakeFiles/tcs_cpu.dir/idle_profiler.cc.o" "gcc" "src/cpu/CMakeFiles/tcs_cpu.dir/idle_profiler.cc.o.d"
  "/root/repo/src/cpu/linux_scheduler.cc" "src/cpu/CMakeFiles/tcs_cpu.dir/linux_scheduler.cc.o" "gcc" "src/cpu/CMakeFiles/tcs_cpu.dir/linux_scheduler.cc.o.d"
  "/root/repo/src/cpu/nt_scheduler.cc" "src/cpu/CMakeFiles/tcs_cpu.dir/nt_scheduler.cc.o" "gcc" "src/cpu/CMakeFiles/tcs_cpu.dir/nt_scheduler.cc.o.d"
  "/root/repo/src/cpu/svr4_scheduler.cc" "src/cpu/CMakeFiles/tcs_cpu.dir/svr4_scheduler.cc.o" "gcc" "src/cpu/CMakeFiles/tcs_cpu.dir/svr4_scheduler.cc.o.d"
  "/root/repo/src/cpu/thread.cc" "src/cpu/CMakeFiles/tcs_cpu.dir/thread.cc.o" "gcc" "src/cpu/CMakeFiles/tcs_cpu.dir/thread.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
