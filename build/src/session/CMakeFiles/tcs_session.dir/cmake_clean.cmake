file(REMOVE_RECURSE
  "CMakeFiles/tcs_session.dir/os_profile.cc.o"
  "CMakeFiles/tcs_session.dir/os_profile.cc.o.d"
  "CMakeFiles/tcs_session.dir/server.cc.o"
  "CMakeFiles/tcs_session.dir/server.cc.o.d"
  "libtcs_session.a"
  "libtcs_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcs_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
