# Empty dependencies file for tcs_session.
# This may be replaced when dependencies are built.
