file(REMOVE_RECURSE
  "libtcs_session.a"
)
