file(REMOVE_RECURSE
  "libtcs_mem.a"
)
