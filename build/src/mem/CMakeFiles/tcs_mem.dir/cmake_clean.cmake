file(REMOVE_RECURSE
  "CMakeFiles/tcs_mem.dir/address_space.cc.o"
  "CMakeFiles/tcs_mem.dir/address_space.cc.o.d"
  "CMakeFiles/tcs_mem.dir/disk.cc.o"
  "CMakeFiles/tcs_mem.dir/disk.cc.o.d"
  "CMakeFiles/tcs_mem.dir/pager.cc.o"
  "CMakeFiles/tcs_mem.dir/pager.cc.o.d"
  "libtcs_mem.a"
  "libtcs_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcs_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
