# Empty dependencies file for tcs_mem.
# This may be replaced when dependencies are built.
