# Empty dependencies file for tcs_client.
# This may be replaced when dependencies are built.
