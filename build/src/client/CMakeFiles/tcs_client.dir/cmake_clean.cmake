file(REMOVE_RECURSE
  "CMakeFiles/tcs_client.dir/thin_client.cc.o"
  "CMakeFiles/tcs_client.dir/thin_client.cc.o.d"
  "libtcs_client.a"
  "libtcs_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcs_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
