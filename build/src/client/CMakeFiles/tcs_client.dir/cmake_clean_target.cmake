file(REMOVE_RECURSE
  "libtcs_client.a"
)
