# Empty dependencies file for tcs_core.
# This may be replaced when dependencies are built.
