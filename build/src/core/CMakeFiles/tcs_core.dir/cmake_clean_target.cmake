file(REMOVE_RECURSE
  "libtcs_core.a"
)
