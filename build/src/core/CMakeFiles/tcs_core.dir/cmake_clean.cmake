file(REMOVE_RECURSE
  "CMakeFiles/tcs_core.dir/experiments.cc.o"
  "CMakeFiles/tcs_core.dir/experiments.cc.o.d"
  "libtcs_core.a"
  "libtcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
