file(REMOVE_RECURSE
  "CMakeFiles/tcs_util.dir/flags.cc.o"
  "CMakeFiles/tcs_util.dir/flags.cc.o.d"
  "CMakeFiles/tcs_util.dir/lz.cc.o"
  "CMakeFiles/tcs_util.dir/lz.cc.o.d"
  "CMakeFiles/tcs_util.dir/stats.cc.o"
  "CMakeFiles/tcs_util.dir/stats.cc.o.d"
  "CMakeFiles/tcs_util.dir/table.cc.o"
  "CMakeFiles/tcs_util.dir/table.cc.o.d"
  "CMakeFiles/tcs_util.dir/time_series.cc.o"
  "CMakeFiles/tcs_util.dir/time_series.cc.o.d"
  "libtcs_util.a"
  "libtcs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
