file(REMOVE_RECURSE
  "libtcs_util.a"
)
