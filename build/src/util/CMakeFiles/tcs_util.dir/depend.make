# Empty dependencies file for tcs_util.
# This may be replaced when dependencies are built.
