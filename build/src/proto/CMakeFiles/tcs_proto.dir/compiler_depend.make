# Empty compiler generated dependencies file for tcs_proto.
# This may be replaced when dependencies are built.
