file(REMOVE_RECURSE
  "libtcs_proto.a"
)
