
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/bitmap_cache.cc" "src/proto/CMakeFiles/tcs_proto.dir/bitmap_cache.cc.o" "gcc" "src/proto/CMakeFiles/tcs_proto.dir/bitmap_cache.cc.o.d"
  "/root/repo/src/proto/display_protocol.cc" "src/proto/CMakeFiles/tcs_proto.dir/display_protocol.cc.o" "gcc" "src/proto/CMakeFiles/tcs_proto.dir/display_protocol.cc.o.d"
  "/root/repo/src/proto/draw.cc" "src/proto/CMakeFiles/tcs_proto.dir/draw.cc.o" "gcc" "src/proto/CMakeFiles/tcs_proto.dir/draw.cc.o.d"
  "/root/repo/src/proto/lbx_protocol.cc" "src/proto/CMakeFiles/tcs_proto.dir/lbx_protocol.cc.o" "gcc" "src/proto/CMakeFiles/tcs_proto.dir/lbx_protocol.cc.o.d"
  "/root/repo/src/proto/prototap.cc" "src/proto/CMakeFiles/tcs_proto.dir/prototap.cc.o" "gcc" "src/proto/CMakeFiles/tcs_proto.dir/prototap.cc.o.d"
  "/root/repo/src/proto/rdp_protocol.cc" "src/proto/CMakeFiles/tcs_proto.dir/rdp_protocol.cc.o" "gcc" "src/proto/CMakeFiles/tcs_proto.dir/rdp_protocol.cc.o.d"
  "/root/repo/src/proto/slim_protocol.cc" "src/proto/CMakeFiles/tcs_proto.dir/slim_protocol.cc.o" "gcc" "src/proto/CMakeFiles/tcs_proto.dir/slim_protocol.cc.o.d"
  "/root/repo/src/proto/vnc_protocol.cc" "src/proto/CMakeFiles/tcs_proto.dir/vnc_protocol.cc.o" "gcc" "src/proto/CMakeFiles/tcs_proto.dir/vnc_protocol.cc.o.d"
  "/root/repo/src/proto/x_protocol.cc" "src/proto/CMakeFiles/tcs_proto.dir/x_protocol.cc.o" "gcc" "src/proto/CMakeFiles/tcs_proto.dir/x_protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tcs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tcs_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
