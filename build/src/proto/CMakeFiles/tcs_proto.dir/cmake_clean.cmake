file(REMOVE_RECURSE
  "CMakeFiles/tcs_proto.dir/bitmap_cache.cc.o"
  "CMakeFiles/tcs_proto.dir/bitmap_cache.cc.o.d"
  "CMakeFiles/tcs_proto.dir/display_protocol.cc.o"
  "CMakeFiles/tcs_proto.dir/display_protocol.cc.o.d"
  "CMakeFiles/tcs_proto.dir/draw.cc.o"
  "CMakeFiles/tcs_proto.dir/draw.cc.o.d"
  "CMakeFiles/tcs_proto.dir/lbx_protocol.cc.o"
  "CMakeFiles/tcs_proto.dir/lbx_protocol.cc.o.d"
  "CMakeFiles/tcs_proto.dir/prototap.cc.o"
  "CMakeFiles/tcs_proto.dir/prototap.cc.o.d"
  "CMakeFiles/tcs_proto.dir/rdp_protocol.cc.o"
  "CMakeFiles/tcs_proto.dir/rdp_protocol.cc.o.d"
  "CMakeFiles/tcs_proto.dir/slim_protocol.cc.o"
  "CMakeFiles/tcs_proto.dir/slim_protocol.cc.o.d"
  "CMakeFiles/tcs_proto.dir/vnc_protocol.cc.o"
  "CMakeFiles/tcs_proto.dir/vnc_protocol.cc.o.d"
  "CMakeFiles/tcs_proto.dir/x_protocol.cc.o"
  "CMakeFiles/tcs_proto.dir/x_protocol.cc.o.d"
  "libtcs_proto.a"
  "libtcs_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcs_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
