file(REMOVE_RECURSE
  "libtcs_workload.a"
)
