
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/animation.cc" "src/workload/CMakeFiles/tcs_workload.dir/animation.cc.o" "gcc" "src/workload/CMakeFiles/tcs_workload.dir/animation.cc.o.d"
  "/root/repo/src/workload/app_script.cc" "src/workload/CMakeFiles/tcs_workload.dir/app_script.cc.o" "gcc" "src/workload/CMakeFiles/tcs_workload.dir/app_script.cc.o.d"
  "/root/repo/src/workload/memory_hog.cc" "src/workload/CMakeFiles/tcs_workload.dir/memory_hog.cc.o" "gcc" "src/workload/CMakeFiles/tcs_workload.dir/memory_hog.cc.o.d"
  "/root/repo/src/workload/script_io.cc" "src/workload/CMakeFiles/tcs_workload.dir/script_io.cc.o" "gcc" "src/workload/CMakeFiles/tcs_workload.dir/script_io.cc.o.d"
  "/root/repo/src/workload/sink.cc" "src/workload/CMakeFiles/tcs_workload.dir/sink.cc.o" "gcc" "src/workload/CMakeFiles/tcs_workload.dir/sink.cc.o.d"
  "/root/repo/src/workload/typist.cc" "src/workload/CMakeFiles/tcs_workload.dir/typist.cc.o" "gcc" "src/workload/CMakeFiles/tcs_workload.dir/typist.cc.o.d"
  "/root/repo/src/workload/webpage.cc" "src/workload/CMakeFiles/tcs_workload.dir/webpage.cc.o" "gcc" "src/workload/CMakeFiles/tcs_workload.dir/webpage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/tcs_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tcs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/tcs_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tcs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
