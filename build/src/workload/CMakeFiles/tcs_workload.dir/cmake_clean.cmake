file(REMOVE_RECURSE
  "CMakeFiles/tcs_workload.dir/animation.cc.o"
  "CMakeFiles/tcs_workload.dir/animation.cc.o.d"
  "CMakeFiles/tcs_workload.dir/app_script.cc.o"
  "CMakeFiles/tcs_workload.dir/app_script.cc.o.d"
  "CMakeFiles/tcs_workload.dir/memory_hog.cc.o"
  "CMakeFiles/tcs_workload.dir/memory_hog.cc.o.d"
  "CMakeFiles/tcs_workload.dir/script_io.cc.o"
  "CMakeFiles/tcs_workload.dir/script_io.cc.o.d"
  "CMakeFiles/tcs_workload.dir/sink.cc.o"
  "CMakeFiles/tcs_workload.dir/sink.cc.o.d"
  "CMakeFiles/tcs_workload.dir/typist.cc.o"
  "CMakeFiles/tcs_workload.dir/typist.cc.o.d"
  "CMakeFiles/tcs_workload.dir/webpage.cc.o"
  "CMakeFiles/tcs_workload.dir/webpage.cc.o.d"
  "libtcs_workload.a"
  "libtcs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
