# Empty dependencies file for tcs_workload.
# This may be replaced when dependencies are built.
