
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/endpoint.cc" "src/net/CMakeFiles/tcs_net.dir/endpoint.cc.o" "gcc" "src/net/CMakeFiles/tcs_net.dir/endpoint.cc.o.d"
  "/root/repo/src/net/link.cc" "src/net/CMakeFiles/tcs_net.dir/link.cc.o" "gcc" "src/net/CMakeFiles/tcs_net.dir/link.cc.o.d"
  "/root/repo/src/net/ping.cc" "src/net/CMakeFiles/tcs_net.dir/ping.cc.o" "gcc" "src/net/CMakeFiles/tcs_net.dir/ping.cc.o.d"
  "/root/repo/src/net/traffic_gen.cc" "src/net/CMakeFiles/tcs_net.dir/traffic_gen.cc.o" "gcc" "src/net/CMakeFiles/tcs_net.dir/traffic_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
