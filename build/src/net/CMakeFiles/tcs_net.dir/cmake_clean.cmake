file(REMOVE_RECURSE
  "CMakeFiles/tcs_net.dir/endpoint.cc.o"
  "CMakeFiles/tcs_net.dir/endpoint.cc.o.d"
  "CMakeFiles/tcs_net.dir/link.cc.o"
  "CMakeFiles/tcs_net.dir/link.cc.o.d"
  "CMakeFiles/tcs_net.dir/ping.cc.o"
  "CMakeFiles/tcs_net.dir/ping.cc.o.d"
  "CMakeFiles/tcs_net.dir/traffic_gen.cc.o"
  "CMakeFiles/tcs_net.dir/traffic_gen.cc.o.d"
  "libtcs_net.a"
  "libtcs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
