# Empty dependencies file for tcs_net.
# This may be replaced when dependencies are built.
