file(REMOVE_RECURSE
  "libtcs_net.a"
)
