file(REMOVE_RECURSE
  "CMakeFiles/tcs_sim.dir/event_queue.cc.o"
  "CMakeFiles/tcs_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/tcs_sim.dir/periodic.cc.o"
  "CMakeFiles/tcs_sim.dir/periodic.cc.o.d"
  "CMakeFiles/tcs_sim.dir/random.cc.o"
  "CMakeFiles/tcs_sim.dir/random.cc.o.d"
  "CMakeFiles/tcs_sim.dir/simulator.cc.o"
  "CMakeFiles/tcs_sim.dir/simulator.cc.o.d"
  "CMakeFiles/tcs_sim.dir/time.cc.o"
  "CMakeFiles/tcs_sim.dir/time.cc.o.d"
  "CMakeFiles/tcs_sim.dir/units.cc.o"
  "CMakeFiles/tcs_sim.dir/units.cc.o.d"
  "libtcs_sim.a"
  "libtcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
