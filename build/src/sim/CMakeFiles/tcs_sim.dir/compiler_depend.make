# Empty compiler generated dependencies file for tcs_sim.
# This may be replaced when dependencies are built.
