file(REMOVE_RECURSE
  "libtcs_sim.a"
)
