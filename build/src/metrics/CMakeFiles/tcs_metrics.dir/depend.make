# Empty dependencies file for tcs_metrics.
# This may be replaced when dependencies are built.
