file(REMOVE_RECURSE
  "libtcs_metrics.a"
)
