file(REMOVE_RECURSE
  "CMakeFiles/tcs_metrics.dir/latency.cc.o"
  "CMakeFiles/tcs_metrics.dir/latency.cc.o.d"
  "libtcs_metrics.a"
  "libtcs_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcs_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
