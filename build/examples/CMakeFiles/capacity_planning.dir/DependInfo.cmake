
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/capacity_planning.cpp" "examples/CMakeFiles/capacity_planning.dir/capacity_planning.cpp.o" "gcc" "examples/CMakeFiles/capacity_planning.dir/capacity_planning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/tcs_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/session/CMakeFiles/tcs_session.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/tcs_client.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tcs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/tcs_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tcs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/tcs_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tcs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tcs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
