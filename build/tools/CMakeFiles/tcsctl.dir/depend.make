# Empty dependencies file for tcsctl.
# This may be replaced when dependencies are built.
