file(REMOVE_RECURSE
  "CMakeFiles/tcsctl.dir/tcsctl.cc.o"
  "CMakeFiles/tcsctl.dir/tcsctl.cc.o.d"
  "tcsctl"
  "tcsctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
