# Empty compiler generated dependencies file for bench_ablation_boost.
# This may be replaced when dependencies are built.
