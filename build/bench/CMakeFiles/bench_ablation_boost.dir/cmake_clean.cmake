file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_boost.dir/bench_ablation_boost.cc.o"
  "CMakeFiles/bench_ablation_boost.dir/bench_ablation_boost.cc.o.d"
  "bench_ablation_boost"
  "bench_ablation_boost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_boost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
