file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cache_overflow.dir/bench_fig6_cache_overflow.cc.o"
  "CMakeFiles/bench_fig6_cache_overflow.dir/bench_fig6_cache_overflow.cc.o.d"
  "bench_fig6_cache_overflow"
  "bench_fig6_cache_overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cache_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
