# Empty dependencies file for bench_fig6_cache_overflow.
# This may be replaced when dependencies are built.
