# Empty dependencies file for bench_fig1_idle_cpu.
# This may be replaced when dependencies are built.
