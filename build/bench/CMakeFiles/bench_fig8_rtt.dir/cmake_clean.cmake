file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_rtt.dir/bench_fig8_rtt.cc.o"
  "CMakeFiles/bench_fig8_rtt.dir/bench_fig8_rtt.cc.o.d"
  "bench_fig8_rtt"
  "bench_fig8_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
