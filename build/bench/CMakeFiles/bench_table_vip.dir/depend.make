# Empty dependencies file for bench_table_vip.
# This may be replaced when dependencies are built.
