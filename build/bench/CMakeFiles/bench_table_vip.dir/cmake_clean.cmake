file(REMOVE_RECURSE
  "CMakeFiles/bench_table_vip.dir/bench_table_vip.cc.o"
  "CMakeFiles/bench_table_vip.dir/bench_table_vip.cc.o.d"
  "bench_table_vip"
  "bench_table_vip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_vip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
