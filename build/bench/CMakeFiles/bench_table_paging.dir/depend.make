# Empty dependencies file for bench_table_paging.
# This may be replaced when dependencies are built.
