file(REMOVE_RECURSE
  "CMakeFiles/bench_table_paging.dir/bench_table_paging.cc.o"
  "CMakeFiles/bench_table_paging.dir/bench_table_paging.cc.o.d"
  "bench_table_paging"
  "bench_table_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
