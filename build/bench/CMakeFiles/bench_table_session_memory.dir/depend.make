# Empty dependencies file for bench_table_session_memory.
# This may be replaced when dependencies are built.
