# Empty dependencies file for bench_fig2_cumulative_latency.
# This may be replaced when dependencies are built.
