file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e_budget.dir/bench_e2e_budget.cc.o"
  "CMakeFiles/bench_e2e_budget.dir/bench_e2e_budget.cc.o.d"
  "bench_e2e_budget"
  "bench_e2e_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
