file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_throttle.dir/bench_ablation_throttle.cc.o"
  "CMakeFiles/bench_ablation_throttle.dir/bench_ablation_throttle.cc.o.d"
  "bench_ablation_throttle"
  "bench_ablation_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
