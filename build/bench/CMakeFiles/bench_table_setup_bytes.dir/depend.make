# Empty dependencies file for bench_table_setup_bytes.
# This may be replaced when dependencies are built.
