file(REMOVE_RECURSE
  "CMakeFiles/bench_table_setup_bytes.dir/bench_table_setup_bytes.cc.o"
  "CMakeFiles/bench_table_setup_bytes.dir/bench_table_setup_bytes.cc.o.d"
  "bench_table_setup_bytes"
  "bench_table_setup_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_setup_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
