file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_jitter.dir/bench_fig9_jitter.cc.o"
  "CMakeFiles/bench_fig9_jitter.dir/bench_fig9_jitter.cc.o.d"
  "bench_fig9_jitter"
  "bench_fig9_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
