# Empty dependencies file for bench_fig9_jitter.
# This may be replaced when dependencies are built.
