file(REMOVE_RECURSE
  "CMakeFiles/bench_simple_animations.dir/bench_simple_animations.cc.o"
  "CMakeFiles/bench_simple_animations.dir/bench_simple_animations.cc.o.d"
  "bench_simple_animations"
  "bench_simple_animations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simple_animations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
