# Empty compiler generated dependencies file for bench_simple_animations.
# This may be replaced when dependencies are built.
