# Empty compiler generated dependencies file for bench_access_links.
# This may be replaced when dependencies are built.
