file(REMOVE_RECURSE
  "CMakeFiles/bench_access_links.dir/bench_access_links.cc.o"
  "CMakeFiles/bench_access_links.dir/bench_access_links.cc.o.d"
  "bench_access_links"
  "bench_access_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_access_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
