file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_cache_knee.dir/bench_fig7_cache_knee.cc.o"
  "CMakeFiles/bench_fig7_cache_knee.dir/bench_fig7_cache_knee.cc.o.d"
  "bench_fig7_cache_knee"
  "bench_fig7_cache_knee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_cache_knee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
