# Empty dependencies file for bench_x_profile.
# This may be replaced when dependencies are built.
