file(REMOVE_RECURSE
  "CMakeFiles/bench_x_profile.dir/bench_x_profile.cc.o"
  "CMakeFiles/bench_x_profile.dir/bench_x_profile.cc.o.d"
  "bench_x_profile"
  "bench_x_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
