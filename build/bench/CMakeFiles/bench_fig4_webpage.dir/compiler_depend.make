# Empty compiler generated dependencies file for bench_fig4_webpage.
# This may be replaced when dependencies are built.
