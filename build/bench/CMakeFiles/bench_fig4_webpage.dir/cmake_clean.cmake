file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_webpage.dir/bench_fig4_webpage.cc.o"
  "CMakeFiles/bench_fig4_webpage.dir/bench_fig4_webpage.cc.o.d"
  "bench_fig4_webpage"
  "bench_fig4_webpage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_webpage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
