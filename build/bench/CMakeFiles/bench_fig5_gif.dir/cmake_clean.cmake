file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_gif.dir/bench_fig5_gif.cc.o"
  "CMakeFiles/bench_fig5_gif.dir/bench_fig5_gif.cc.o.d"
  "bench_fig5_gif"
  "bench_fig5_gif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_gif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
