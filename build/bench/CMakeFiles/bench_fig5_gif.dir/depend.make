# Empty dependencies file for bench_fig5_gif.
# This may be replaced when dependencies are built.
