# Empty compiler generated dependencies file for workload_script_io_test.
# This may be replaced when dependencies are built.
