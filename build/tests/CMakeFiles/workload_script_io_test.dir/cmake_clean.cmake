file(REMOVE_RECURSE
  "CMakeFiles/workload_script_io_test.dir/workload_script_io_test.cc.o"
  "CMakeFiles/workload_script_io_test.dir/workload_script_io_test.cc.o.d"
  "workload_script_io_test"
  "workload_script_io_test.pdb"
  "workload_script_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_script_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
