# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cpu_nt_scheduler_test.
