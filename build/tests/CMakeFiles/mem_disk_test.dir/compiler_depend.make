# Empty compiler generated dependencies file for mem_disk_test.
# This may be replaced when dependencies are built.
