file(REMOVE_RECURSE
  "CMakeFiles/mem_disk_test.dir/mem_disk_test.cc.o"
  "CMakeFiles/mem_disk_test.dir/mem_disk_test.cc.o.d"
  "mem_disk_test"
  "mem_disk_test.pdb"
  "mem_disk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
