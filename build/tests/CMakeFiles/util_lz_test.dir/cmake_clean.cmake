file(REMOVE_RECURSE
  "CMakeFiles/util_lz_test.dir/util_lz_test.cc.o"
  "CMakeFiles/util_lz_test.dir/util_lz_test.cc.o.d"
  "util_lz_test"
  "util_lz_test.pdb"
  "util_lz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_lz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
