file(REMOVE_RECURSE
  "CMakeFiles/proto_protocols_test.dir/proto_protocols_test.cc.o"
  "CMakeFiles/proto_protocols_test.dir/proto_protocols_test.cc.o.d"
  "proto_protocols_test"
  "proto_protocols_test.pdb"
  "proto_protocols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
