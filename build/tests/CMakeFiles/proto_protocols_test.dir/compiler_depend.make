# Empty compiler generated dependencies file for proto_protocols_test.
# This may be replaced when dependencies are built.
