# Empty dependencies file for session_server_test.
# This may be replaced when dependencies are built.
