file(REMOVE_RECURSE
  "CMakeFiles/session_server_test.dir/session_server_test.cc.o"
  "CMakeFiles/session_server_test.dir/session_server_test.cc.o.d"
  "session_server_test"
  "session_server_test.pdb"
  "session_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
