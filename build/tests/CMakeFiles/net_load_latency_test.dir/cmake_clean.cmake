file(REMOVE_RECURSE
  "CMakeFiles/net_load_latency_test.dir/net_load_latency_test.cc.o"
  "CMakeFiles/net_load_latency_test.dir/net_load_latency_test.cc.o.d"
  "net_load_latency_test"
  "net_load_latency_test.pdb"
  "net_load_latency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_load_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
