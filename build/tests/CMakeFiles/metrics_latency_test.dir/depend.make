# Empty dependencies file for metrics_latency_test.
# This may be replaced when dependencies are built.
