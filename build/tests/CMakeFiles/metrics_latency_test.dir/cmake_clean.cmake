file(REMOVE_RECURSE
  "CMakeFiles/metrics_latency_test.dir/metrics_latency_test.cc.o"
  "CMakeFiles/metrics_latency_test.dir/metrics_latency_test.cc.o.d"
  "metrics_latency_test"
  "metrics_latency_test.pdb"
  "metrics_latency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
