# Empty compiler generated dependencies file for cpu_linux_scheduler_test.
# This may be replaced when dependencies are built.
