file(REMOVE_RECURSE
  "CMakeFiles/sim_units_test.dir/sim_units_test.cc.o"
  "CMakeFiles/sim_units_test.dir/sim_units_test.cc.o.d"
  "sim_units_test"
  "sim_units_test.pdb"
  "sim_units_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
