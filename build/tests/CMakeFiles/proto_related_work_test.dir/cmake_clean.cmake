file(REMOVE_RECURSE
  "CMakeFiles/proto_related_work_test.dir/proto_related_work_test.cc.o"
  "CMakeFiles/proto_related_work_test.dir/proto_related_work_test.cc.o.d"
  "proto_related_work_test"
  "proto_related_work_test.pdb"
  "proto_related_work_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_related_work_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
