# Empty dependencies file for proto_related_work_test.
# This may be replaced when dependencies are built.
