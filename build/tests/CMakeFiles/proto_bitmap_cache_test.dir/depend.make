# Empty dependencies file for proto_bitmap_cache_test.
# This may be replaced when dependencies are built.
