file(REMOVE_RECURSE
  "CMakeFiles/mem_pager_test.dir/mem_pager_test.cc.o"
  "CMakeFiles/mem_pager_test.dir/mem_pager_test.cc.o.d"
  "mem_pager_test"
  "mem_pager_test.pdb"
  "mem_pager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_pager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
