file(REMOVE_RECURSE
  "CMakeFiles/cpu_svr4_scheduler_test.dir/cpu_svr4_scheduler_test.cc.o"
  "CMakeFiles/cpu_svr4_scheduler_test.dir/cpu_svr4_scheduler_test.cc.o.d"
  "cpu_svr4_scheduler_test"
  "cpu_svr4_scheduler_test.pdb"
  "cpu_svr4_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_svr4_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
