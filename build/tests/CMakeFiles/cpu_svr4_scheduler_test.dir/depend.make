# Empty dependencies file for cpu_svr4_scheduler_test.
# This may be replaced when dependencies are built.
