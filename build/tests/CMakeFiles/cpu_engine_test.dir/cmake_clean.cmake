file(REMOVE_RECURSE
  "CMakeFiles/cpu_engine_test.dir/cpu_engine_test.cc.o"
  "CMakeFiles/cpu_engine_test.dir/cpu_engine_test.cc.o.d"
  "cpu_engine_test"
  "cpu_engine_test.pdb"
  "cpu_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
