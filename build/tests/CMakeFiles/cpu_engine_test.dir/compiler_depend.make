# Empty compiler generated dependencies file for cpu_engine_test.
# This may be replaced when dependencies are built.
