file(REMOVE_RECURSE
  "CMakeFiles/cpu_smp_test.dir/cpu_smp_test.cc.o"
  "CMakeFiles/cpu_smp_test.dir/cpu_smp_test.cc.o.d"
  "cpu_smp_test"
  "cpu_smp_test.pdb"
  "cpu_smp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_smp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
