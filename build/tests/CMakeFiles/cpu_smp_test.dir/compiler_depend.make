# Empty compiler generated dependencies file for cpu_smp_test.
# This may be replaced when dependencies are built.
