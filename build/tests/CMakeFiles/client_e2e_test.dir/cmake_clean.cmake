file(REMOVE_RECURSE
  "CMakeFiles/client_e2e_test.dir/client_e2e_test.cc.o"
  "CMakeFiles/client_e2e_test.dir/client_e2e_test.cc.o.d"
  "client_e2e_test"
  "client_e2e_test.pdb"
  "client_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
