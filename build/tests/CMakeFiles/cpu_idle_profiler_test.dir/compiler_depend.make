# Empty compiler generated dependencies file for cpu_idle_profiler_test.
# This may be replaced when dependencies are built.
