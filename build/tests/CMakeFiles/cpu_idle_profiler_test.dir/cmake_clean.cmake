file(REMOVE_RECURSE
  "CMakeFiles/cpu_idle_profiler_test.dir/cpu_idle_profiler_test.cc.o"
  "CMakeFiles/cpu_idle_profiler_test.dir/cpu_idle_profiler_test.cc.o.d"
  "cpu_idle_profiler_test"
  "cpu_idle_profiler_test.pdb"
  "cpu_idle_profiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_idle_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
