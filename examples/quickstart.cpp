// Quickstart: build a thin-client server, log a user in, type at 20 Hz, and read the
// latency report — the smallest end-to-end use of the tcs public API.
//
//   $ ./quickstart
//
// Everything here is simulated: the TSE-like OS profile supplies the scheduler, daemons,
// login process table, and the RDP protocol; the typist drives the keystroke pipeline;
// the stall detector scores what the user would feel.

#include <cstdio>

#include "src/metrics/latency.h"
#include "src/session/server.h"
#include "src/workload/typist.h"

int main() {
  using namespace tcs;

  // A simulator is the virtual clock; a Server is the system under test.
  Simulator sim;
  Server server(sim, OsProfile::Tse());
  server.StartDaemons();

  // One user logs in (session setup traffic and login memory happen here)...
  Session& session = server.Login();
  std::printf("logged in: %s session, %.0f KB private memory, %lld setup bytes on the wire\n",
              server.profile().name.c_str(), session.private_memory().ToKiBF(),
              static_cast<long long>(server.link().bytes_carried().count()));

  // ...holds a key down for a minute (20 Hz character repeat)...
  StallDetector stalls;
  session.set_on_display_update([&](TimePoint t) { stalls.OnUpdate(t); });
  Typist typist(sim, [&] { server.Keystroke(session); });
  typist.Start();

  // ...while eight CPU hogs churn in the background.
  server.StartSinks(8);

  sim.RunUntil(TimePoint::Zero() + Duration::Seconds(60));
  typist.Stop();

  std::printf("\n60 simulated seconds, %lld keystrokes, %lld display updates\n",
              static_cast<long long>(typist.keystrokes()),
              static_cast<long long>(stalls.updates()));
  std::printf("average stall: %s  (max %s, jitter %s)\n",
              stalls.AverageStallAllGaps().ToString().c_str(),
              stalls.MaxStall().ToString().c_str(), stalls.Jitter().ToString().c_str());
  std::printf("human perception threshold is %s: this user is %s\n",
              kPerceptionThreshold.ToString().c_str(),
              stalls.AverageStallAllGaps() > kPerceptionThreshold ? "suffering"
                                                                  : "comfortable");
  std::printf("\nprotocol traffic: %lld display msgs (%lld bytes), %lld input msgs\n",
              static_cast<long long>(server.tap().messages(Channel::kDisplay)),
              static_cast<long long>(server.tap().counted_bytes(Channel::kDisplay).count()),
              static_cast<long long>(server.tap().messages(Channel::kInput)));
  return 0;
}
