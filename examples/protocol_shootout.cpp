// Protocol shootout: drive a custom interactive workload (your own mix of typing,
// widget redraws, and an animated element) over RDP, X, and LBX, and compare wire cost.
// Demonstrates composing the proto/workload layers directly, without a full Server.

#include <cstdio>
#include <memory>

#include "src/proto/lbx_protocol.h"
#include "src/proto/slim_protocol.h"
#include "src/proto/vnc_protocol.h"
#include "src/proto/rdp_protocol.h"
#include "src/proto/x_protocol.h"
#include "src/session/os_profile.h"  // ProtocolKind
#include "src/util/table.h"
#include "src/workload/animation.h"
#include "src/workload/app_script.h"

namespace {

struct ShootoutResult {
  std::string name;
  int64_t bytes;
  int64_t messages;
  double mean_mbps;
  int64_t cache_hits;
};

ShootoutResult RunOne(tcs::ProtocolKind kind) {
  using namespace tcs;
  Simulator sim;
  Link link(sim);
  MessageSender display(link, HeaderModel::TcpIp());
  MessageSender input(link, HeaderModel::TcpIp());
  ProtoTap tap(Duration::Seconds(1));

  std::unique_ptr<DisplayProtocol> protocol;
  switch (kind) {
    case ProtocolKind::kRdp:
      protocol = std::make_unique<RdpProtocol>(sim, display, input, &tap, Rng(11));
      break;
    case ProtocolKind::kX:
      protocol = std::make_unique<XProtocol>(sim, display, input, &tap, Rng(11));
      break;
    case ProtocolKind::kLbx:
      protocol = std::make_unique<LbxProtocol>(sim, display, input, &tap, Rng(11));
      break;
    case ProtocolKind::kSlim:
      protocol = std::make_unique<SlimProtocol>(sim, display, input, &tap, Rng(11));
      break;
    case ProtocolKind::kVnc: {
      auto vnc = std::make_unique<VncProtocol>(sim, display, input, &tap, Rng(11));
      vnc->StartClientPull();
      protocol = std::move(vnc);
      break;
    }
  }

  // The custom workload: a spreadsheet-like editing session with a stock ticker in the
  // corner — the "modern user interface" trend the paper worries about.
  AppScript editing = AppScript::WordProcessor(Rng(42), 300);
  AnimationConfig ticker_cfg;
  ticker_cfg.id = 99;
  ticker_cfg.frame_count = 12;
  ticker_cfg.frame_period = Duration::Millis(250);
  ticker_cfg.width = 160;
  ticker_cfg.height = 24;
  Animation ticker(sim, *protocol, ticker_cfg);
  ticker.Start();
  editing.Replay(sim, *protocol);
  // The ticker is unbounded: run exactly for the editing session's length, then stop it.
  sim.RunUntil(TimePoint::Zero() + editing.TotalDuration());
  ticker.Stop();
  if (auto* vnc = dynamic_cast<VncProtocol*>(protocol.get())) {
    vnc->StopClientPull();
  }
  protocol->Flush();
  sim.Run();

  ShootoutResult r;
  r.name = protocol->name();
  r.bytes = tap.total_counted_bytes().count();
  r.messages = tap.total_messages();
  double seconds = editing.TotalDuration().ToSecondsF();
  r.mean_mbps = static_cast<double>(r.bytes) * 8.0 / seconds / 1e6;
  r.cache_hits = 0;
  if (auto* rdp = dynamic_cast<RdpProtocol*>(protocol.get())) {
    r.cache_hits = rdp->bitmap_cache().hits();
  }
  return r;
}

}  // namespace

int main() {
  using namespace tcs;
  std::printf("protocol shootout: 300-step editing session + 4 Hz stock ticker\n\n");
  TextTable table({"protocol", "wire bytes", "messages", "mean load (Mbps)", "cache hits"});
  ShootoutResult best{};
  for (ProtocolKind kind : {ProtocolKind::kRdp, ProtocolKind::kX, ProtocolKind::kLbx,
                            ProtocolKind::kSlim, ProtocolKind::kVnc}) {
    ShootoutResult r = RunOne(kind);
    table.AddRow({r.name, TextTable::Num(r.bytes), TextTable::Num(r.messages),
                  TextTable::Fixed(r.mean_mbps, 4), TextTable::Num(r.cache_hits)});
    if (best.name.empty() || r.bytes < best.bytes) {
      best = r;
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("cheapest on the wire: %s at %.4f Mbps mean — on a 10 Mbps segment that is "
              "~%d concurrent users of headroom\n",
              best.name.c_str(), best.mean_mbps,
              static_cast<int>(10.0 / best.mean_mbps));
  return 0;
}
