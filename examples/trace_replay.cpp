// Trace record & replay: capture an interaction session to a text trace, then replay it
// over any protocol and client device to see what the user would have felt.
//
//   $ ./trace_replay                      # generate, save, and replay a demo trace
//   $ ./trace_replay mysession.trace rdp  # replay your own trace over a protocol
//
// The trace format is documented in src/workload/script_io.h — it is the methodology of
// the paper's §6 workload (a fixed, replayable set of user interactions) exposed as a
// first-class artifact.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "src/client/thin_client.h"
#include "src/proto/lbx_protocol.h"
#include "src/proto/rdp_protocol.h"
#include "src/proto/slim_protocol.h"
#include "src/proto/vnc_protocol.h"
#include "src/proto/x_protocol.h"
#include "src/util/table.h"
#include "src/workload/script_io.h"

namespace {

std::unique_ptr<tcs::DisplayProtocol> MakeProtocol(tcs::ProtocolKind kind,
                                                   tcs::Simulator& sim, tcs::Link& link,
                                                   tcs::MessageSender& display,
                                                   tcs::MessageSender& input,
                                                   tcs::ProtoTap* tap) {
  using namespace tcs;
  (void)link;
  switch (kind) {
    case ProtocolKind::kRdp:
      return std::make_unique<RdpProtocol>(sim, display, input, tap, Rng(3));
    case ProtocolKind::kX:
      return std::make_unique<XProtocol>(sim, display, input, tap, Rng(3));
    case ProtocolKind::kLbx:
      return std::make_unique<LbxProtocol>(sim, display, input, tap, Rng(3));
    case ProtocolKind::kSlim:
      return std::make_unique<SlimProtocol>(sim, display, input, tap, Rng(3));
    case ProtocolKind::kVnc: {
      auto vnc = std::make_unique<VncProtocol>(sim, display, input, tap, Rng(3));
      vnc->StartClientPull();
      return vnc;
    }
  }
  return nullptr;
}

bool ParseKind(const char* word, tcs::ProtocolKind* kind) {
  using namespace tcs;
  if (std::strcmp(word, "rdp") == 0) {
    *kind = ProtocolKind::kRdp;
  } else if (std::strcmp(word, "x") == 0) {
    *kind = ProtocolKind::kX;
  } else if (std::strcmp(word, "lbx") == 0) {
    *kind = ProtocolKind::kLbx;
  } else if (std::strcmp(word, "slim") == 0) {
    *kind = ProtocolKind::kSlim;
  } else if (std::strcmp(word, "vnc") == 0) {
    *kind = ProtocolKind::kVnc;
  } else {
    return false;
  }
  return true;
}

void ReplayOver(const tcs::AppScript& script, tcs::ProtocolKind kind,
                tcs::TextTable& table) {
  using namespace tcs;
  Simulator sim;
  Link link(sim);
  MessageSender display(link, HeaderModel::TcpIp());
  MessageSender input(link, HeaderModel::TcpIp());
  ProtoTap tap(Duration::Seconds(1));
  auto protocol = MakeProtocol(kind, sim, link, display, input, &tap);
  script.Replay(sim, *protocol);
  sim.RunUntil(TimePoint::Zero() + script.TotalDuration());
  if (auto* vnc = dynamic_cast<VncProtocol*>(protocol.get())) {
    vnc->StopClientPull();
  }
  protocol->Flush();
  sim.Run();

  // What would the frames cost on each client device?
  double avg_payload =
      tap.messages(Channel::kDisplay) > 0
          ? static_cast<double>(tap.payload_bytes(Channel::kDisplay).count()) /
                static_cast<double>(tap.messages(Channel::kDisplay))
          : 0.0;
  ThinClientDevice pc(ThinClientConfig::DesktopPc());
  ThinClientDevice pda(ThinClientConfig::Handheld());
  Bytes avg = Bytes::Of(static_cast<int64_t>(avg_payload));
  table.AddRow({protocol->name(),
                TextTable::Num(tap.total_counted_bytes().count()),
                TextTable::Num(tap.total_messages()),
                TextTable::Fixed(pc.DecodeDelay(kind, avg).ToMillisF(), 2),
                TextTable::Fixed(pda.DecodeDelay(kind, avg).ToMillisF(), 2)});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcs;

  AppScript script = AppScript::WordProcessor(Rng(2026), 150);
  if (argc >= 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    auto parsed = ParseScript(buffer.str(), &error);
    if (!parsed) {
      std::fprintf(stderr, "parse error: %s\n", error.c_str());
      return 1;
    }
    script = std::move(*parsed);
    std::printf("loaded trace '%s': %zu steps, %zu input events, %zu draws\n",
                script.name().c_str(), script.steps().size(), script.TotalInputEvents(),
                script.TotalDrawCommands());
  } else {
    const char* path = "demo_session.trace";
    std::ofstream out(path);
    out << SerializeScript(script);
    std::printf("recorded a demo session to %s (%zu steps); replaying it:\n", path,
                script.steps().size());
  }

  TextTable table({"protocol", "wire bytes", "messages", "avg frame on PC (ms)",
                   "avg frame on handheld (ms)"});
  if (argc >= 3) {
    ProtocolKind kind;
    if (!ParseKind(argv[2], &kind)) {
      std::fprintf(stderr, "unknown protocol '%s' (rdp|x|lbx|slim|vnc)\n", argv[2]);
      return 1;
    }
    ReplayOver(script, kind, table);
  } else {
    for (ProtocolKind kind : {ProtocolKind::kRdp, ProtocolKind::kX, ProtocolKind::kLbx,
                              ProtocolKind::kSlim, ProtocolKind::kVnc}) {
      ReplayOver(script, kind, table);
    }
  }
  std::printf("\n%s", table.Render().c_str());
  return 0;
}
