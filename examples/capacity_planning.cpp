// Capacity planning: the question the paper says deployers actually need answered —
// "the maximum number of concurrent users their servers can support given some hardware
// configuration, and what impact on users yields this maximum value" (§3.1).
//
// Scales concurrent typing users on one server per OS profile until the average
// user-perceived stall crosses the 100 ms perception threshold, and independently checks
// the network ceiling for animation-heavy behaviour on 10 Mbps Ethernet.

#include <cstdio>
#include <iterator>
#include <vector>

#include "src/core/experiments.h"
#include "src/core/parallel_sweep.h"
#include "src/metrics/latency.h"
#include "src/session/server.h"
#include "src/util/table.h"
#include "src/workload/typist.h"

namespace {

// Average stall across `users` concurrent typists (each also running one background
// compile-like CPU job, a pessimistic behaviour profile).
double AvgStallMs(tcs::OsProfile profile, int users) {
  using namespace tcs;
  Simulator sim;
  Server server(sim, std::move(profile));
  server.StartDaemons();
  // Latency is per user: each session gets its own stall detector; report the mean of
  // the per-user averages.
  std::vector<std::unique_ptr<StallDetector>> stalls;
  std::vector<std::unique_ptr<Typist>> typists;
  for (int u = 0; u < users; ++u) {
    Session& s = server.Login();
    stalls.push_back(std::make_unique<StallDetector>());
    StallDetector* mine = stalls.back().get();
    s.set_on_display_update([mine](TimePoint t) { mine->OnUpdate(t); });
    typists.push_back(
        std::make_unique<Typist>(sim, [&server, &s] { server.Keystroke(s); }));
    typists.back()->Start(Duration::Millis(7 * u));  // staggered phases
  }
  server.StartSinks(users / 2);  // half the users run a background job
  sim.RunUntil(TimePoint::Zero() + Duration::Seconds(30));
  double total = 0.0;
  for (auto& det : stalls) {
    if (det->updates() < 2) {
      // So starved it produced at most one update in 30 s: count the whole window.
      total += 30000.0;
    } else {
      total += det->AverageStallAllGaps().ToMillisF();
    }
  }
  return total / static_cast<double>(users);
}

}  // namespace

int main() {
  using namespace tcs;

  std::printf("CPU ceiling: concurrent typing users vs average stall (30 s runs)\n\n");

  // Every (user count, OS) cell of the table is an independent 30 s simulation; fan the
  // whole grid out across the machine and read the results back in submission order.
  const int user_steps[] = {1, 2, 4, 6, 8, 10, 12, 16, 20};
  const OsProfile profiles[] = {OsProfile::Tse(), OsProfile::LinuxX(),
                                OsProfile::LinuxSvr4()};
  constexpr int kProfileCount = static_cast<int>(std::size(profiles));
  ParallelSweep sweep;
  std::vector<double> stalls = sweep.Map(
      static_cast<int>(std::size(user_steps)) * kProfileCount, [&](int i) {
        return AvgStallMs(profiles[i % kProfileCount], user_steps[i / kProfileCount]);
      });

  TextTable table({"users", "NT TSE (ms)", "Linux/X (ms)", "Linux+SVR4-IA (ms)"});
  int tse_limit = -1;
  int lin_limit = -1;
  for (size_t u = 0; u < std::size(user_steps); ++u) {
    int users = user_steps[u];
    double tse = stalls[u * kProfileCount];
    double lin = stalls[u * kProfileCount + 1];
    double svr4 = stalls[u * kProfileCount + 2];
    if (tse_limit < 0 && tse > kPerceptionThreshold.ToMillisF()) {
      tse_limit = users;
    }
    if (lin_limit < 0 && lin > kPerceptionThreshold.ToMillisF()) {
      lin_limit = users;
    }
    table.AddRow({TextTable::Num(users), TextTable::Fixed(tse, 1), TextTable::Fixed(lin, 1),
                  TextTable::Fixed(svr4, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("perceptible-latency ceiling: TSE ~%d users, Linux/X ~%d users, SVR4-IA "
              "beyond the sweep\n\n",
              tse_limit, lin_limit);

  // Network ceiling: how many users can open the animated webpage before 10 Mbps
  // Ethernet saturates (the paper: "if just five users open their browsers to a page
  // like this, the network link becomes saturated").
  AnimationLoadResult page = RunWebPageLoad(ProtocolKind::kRdp, true, true);
  double per_user = page.sustained_mbps;
  int net_ceiling = static_cast<int>(10.0 / per_user);
  std::printf("network ceiling: animated webpage costs %.2f Mbps/user over RDP -> %d "
              "users saturate 10 Mbps Ethernet (paper: ~5)\n",
              per_user, net_ceiling);
  std::printf("memory ceiling: at %.0f KB/login (TSE typical), 64 MB of RAM minus 19 MB "
              "system holds ~%d logins before paging\n",
              3244.0, static_cast<int>((64 - 19) * 1024 / 3244));
  return 0;
}
