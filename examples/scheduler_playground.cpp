// Scheduler playground: what would have saved TSE? Builds custom OS profiles — longer
// boost grace, server-style 180 ms quanta, the SVR4 interactive class — and replays the
// paper's worst interactive scenario (typing against 12 sinks) under each. Demonstrates
// the OsProfile/NtSchedulerConfig extension points.

#include <cstdio>

#include "src/core/experiments.h"
#include "src/util/table.h"

int main() {
  using namespace tcs;

  std::printf("scheduler playground: typing vs 12 sinks under scheduler variants\n\n");
  TextTable table({"variant", "avg stall (ms)", "jitter (ms)", "updates/60s"});

  auto add = [&table](const char* name, OsProfile profile) {
    TypingUnderLoadResult r = RunTypingUnderLoad(std::move(profile), 12);
    table.AddRow({name, TextTable::Fixed(r.avg_stall_ms, 1),
                  TextTable::Fixed(r.jitter_ms, 1), TextTable::Num(r.updates)});
  };

  // Stock TSE: 30 ms quantum, stretch 1, boost to 15 for 2 quanta.
  add("TSE stock", OsProfile::Tse());

  // Maximum quantum stretching (the administrator knob the paper describes).
  OsProfile stretched = OsProfile::Tse();
  stretched.nt_config.foreground_stretch = 3;
  add("TSE stretch=3", stretched);

  // NT Server's 180 ms quantum instead of Workstation's 30 ms: fewer, longer turns.
  OsProfile server_quantum = OsProfile::Tse();
  server_quantum.nt_config.quantum = Duration::Millis(180);
  add("TSE 180ms quantum", server_quantum);

  // A longer-lived boost: 8 quanta of grace instead of 2.
  OsProfile long_boost = OsProfile::Tse();
  long_boost.nt_config.gui_boost_quanta = 8;
  add("TSE boost=8 quanta", long_boost);

  // Boost disabled entirely (what the boost is actually buying).
  OsProfile no_boost = OsProfile::Tse();
  no_boost.nt_config.gui_boost_enabled = false;
  add("TSE no boost", no_boost);

  // Stock Linux and the Evans et al. fix.
  add("Linux/X stock", OsProfile::LinuxX());
  add("Linux + SVR4-IA", OsProfile::LinuxSvr4());

  std::printf("%s\n", table.Render().c_str());
  std::printf("note: TSE's stalls come from the unboosted display-pipeline hops queuing\n"
              "behind sinks, so stretching or lengthening the *editor's* boost does not\n"
              "rescue it — only protecting the whole interactive path (SVR4-IA) does.\n");
  return 0;
}
