#include "src/fault/fault_injector.h"

#include <algorithm>

namespace tcs {

namespace {

// Jitters a mean duration by +/-50% — the "seeded-probabilistic" half of a plan.
Duration Jitter(Rng& rng, Duration mean) {
  return std::max(Duration::Micros(1), mean * (0.5 + rng.NextDouble()));
}

}  // namespace

LinkFaultInjector::LinkFaultInjector(LinkFaultPlan plan, uint64_t seed)
    : plan_(std::move(plan)),
      rng_(seed),
      input_rng_(seed ^ 0x1A7E57ull),
      wan_rng_(seed ^ 0x3A11D0ull),
      wan_input_rng_(seed ^ 0x3A11D1ull),
      wan_active_(plan_.wan.Any()) {
  // Normalize scripted windows: Validate() already rejected overlap and disorder, but
  // adjacent windows are legal and must behave exactly like the single merged window
  // (OutageEndAfter must hold a frame through BOTH halves of a back-to-back pair).
  plan_.scripted_outages = MergeAdjacentOutages(std::move(plan_.scripted_outages));
}

void LinkFaultInjector::SetTracer(Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    trace_track_ = tracer_->RegisterTrack("fault", "link-outage");
    // Scripted windows are known up front; emit them immediately.
    for (const OutageWindow& w : plan_.scripted_outages) {
      tracer_->Span(TraceCategory::kFault, "outage", trace_track_, w.from, w.until);
    }
  }
}

void LinkFaultInjector::GenerateFlapsThrough(TimePoint horizon) {
  if (plan_.flap_every.IsZero() || plan_.flap_duration.IsZero()) {
    return;
  }
  while (flap_cursor_ <= horizon) {
    TimePoint start = flap_cursor_ + Jitter(rng_, plan_.flap_every);
    TimePoint end = start + Jitter(rng_, plan_.flap_duration);
    generated_.push_back(OutageWindow{start, end});
    if (tracer_ != nullptr) {
      tracer_->Span(TraceCategory::kFault, "flap", trace_track_, start, end);
    }
    flap_cursor_ = end;
  }
}

bool LinkFaultInjector::Overlaps(const std::vector<OutageWindow>& windows,
                                 TimePoint start, TimePoint end) {
  // First window whose `from` is at or past `end`; only its predecessor can overlap.
  auto it = std::upper_bound(
      windows.begin(), windows.end(), end,
      [](TimePoint t, const OutageWindow& w) { return t <= w.from; });
  if (it == windows.begin()) {
    return false;
  }
  --it;
  return it->until > start;
}

TimePoint LinkFaultInjector::OutageEndAfter(TimePoint t) {
  TimePoint end = t;
  for (const std::vector<OutageWindow>* windows : {&plan_.scripted_outages, &generated_}) {
    for (const OutageWindow& w : *windows) {
      if (w.from <= t && t < w.until) {
        end = std::max(end, w.until);
      }
    }
  }
  return end;
}

bool LinkFaultInjector::InOutage(TimePoint t) {
  GenerateFlapsThrough(t);
  return Overlaps(plan_.scripted_outages, t, t + Duration::Micros(1)) ||
         Overlaps(generated_, t, t + Duration::Micros(1));
}

LinkFaultInjector::Fate LinkFaultInjector::Classify(TimePoint start, TimePoint end) {
  GenerateFlapsThrough(end);
  if (Overlaps(plan_.scripted_outages, start, end) || Overlaps(generated_, start, end)) {
    ++outage_drops_;
    return Fate::kOutage;
  }
  if (plan_.corruption_rate > 0.0 && rng_.NextBool(plan_.corruption_rate)) {
    ++frames_corrupted_;
    return Fate::kCorrupted;
  }
  if (plan_.loss_rate > 0.0 && rng_.NextBool(plan_.loss_rate)) {
    ++frames_lost_;
    return Fate::kLost;
  }
  // Gilbert–Elliott burst loss: decide the frame's fate in the current state, then step
  // the chain. Draws come from the dedicated WAN stream so enabling burst loss never
  // perturbs the Bernoulli loss/corruption fates above.
  if (plan_.wan.HasGilbertElliott()) {
    ++ge_steps_;
    double loss_p = ge_bad_ ? plan_.wan.ge_loss_bad : plan_.wan.ge_loss_good;
    if (ge_bad_) {
      ++ge_bad_steps_;
    }
    bool lost = loss_p > 0.0 && wan_rng_.NextBool(loss_p);
    double flip_p = ge_bad_ ? plan_.wan.ge_p_bad_to_good : plan_.wan.ge_p_good_to_bad;
    if (flip_p > 0.0 && wan_rng_.NextBool(flip_p)) {
      ge_bad_ = !ge_bad_;
    }
    if (lost) {
      ++frames_lost_;
      ++burst_losses_;
      return Fate::kLost;
    }
  }
  return Fate::kDelivered;
}

Duration LinkFaultInjector::WanFrameExtra() {
  Duration extra = plan_.wan.extra_delay;
  if (plan_.wan.jitter > Duration::Zero()) {
    extra += plan_.wan.jitter * wan_rng_.NextDouble();
  }
  return extra;
}

Duration LinkFaultInjector::WanInputExtra() {
  Duration extra = plan_.wan.extra_delay;
  if (plan_.wan.jitter > Duration::Zero()) {
    extra += plan_.wan.jitter * wan_input_rng_.NextDouble();
  }
  return extra;
}

Duration LinkFaultInjector::InputDelayPenalty(TimePoint now, Duration retry_interval,
                                              Duration* retransmit_out,
                                              Duration* outage_out) {
  Duration outage = Duration::Zero();
  if (InOutage(now)) {
    // The keystroke (and every retry) is pinned behind the outage window.
    outage = OutageEndAfter(now) - now;
  }
  Duration retransmit = Duration::Zero();
  double p = std::min(0.95, plan_.loss_rate + plan_.corruption_rate);
  if (p > 0.0) {
    Duration interval = std::max(Duration::Micros(1), retry_interval);
    Duration cap = interval * 8;
    int tries = 0;
    while (tries < 16 && input_rng_.NextBool(p)) {
      ++input_frames_lost_;
      retransmit += interval;
      interval = std::min(interval * 2, cap);
      ++tries;
    }
  }
  if (retransmit_out != nullptr) {
    *retransmit_out = retransmit;
  }
  if (outage_out != nullptr) {
    *outage_out = outage;
  }
  return outage + retransmit;
}

Duration LinkFaultInjector::OutageTimeBefore(TimePoint end) {
  GenerateFlapsThrough(end);
  Duration total = Duration::Zero();
  for (const std::vector<OutageWindow>* windows : {&plan_.scripted_outages, &generated_}) {
    for (const OutageWindow& w : *windows) {
      if (w.from >= end) {
        break;
      }
      total += std::min(w.until, end) - w.from;
    }
  }
  return total;
}

DiskFaultInjector::DiskFaultInjector(DiskFaultPlan plan, uint64_t seed)
    : plan_(plan), rng_(seed) {}

Duration DiskFaultInjector::Perturb(Duration service) {
  ++requests_;
  Duration extra = Duration::Zero();
  if (plan_.stall_rate > 0.0 && rng_.NextBool(plan_.stall_rate)) {
    ++stalls_;
    extra += plan_.stall;
  }
  if (plan_.error_rate > 0.0) {
    // Transient errors retry after a recovery delay and re-pay the full service time;
    // three consecutive failures give up on injecting more (the request still completes).
    int attempts = 0;
    while (attempts < 3 && rng_.NextBool(plan_.error_rate)) {
      ++io_errors_;
      extra += plan_.error_retry + service;
      ++attempts;
    }
  }
  total_stall_ += extra;
  return extra;
}

}  // namespace tcs
