// Deterministic fault plans.
//
// A FaultPlan composes scripted and seeded-probabilistic degradations of the testbed:
// frame loss/corruption and outage windows ("flaps") on the link, latency spikes and
// transient I/O errors on the paging disk, and session disconnects / daemon crashes on
// the server. Every fault decision is keyed to virtual time and drawn from a dedicated
// Rng seeded by the plan, so a faulted run is byte-identical across reruns and across
// ParallelSweep worker counts — and an empty plan leaves every existing random stream
// untouched (injectors are simply not constructed).

#ifndef TCS_SRC_FAULT_FAULT_PLAN_H_
#define TCS_SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"
#include "src/sim/units.h"

namespace tcs {

// One link outage: frames whose transmission overlaps [from, until) are lost.
// Scripted windows must be non-overlapping and sorted by `from`. Adjacent windows
// (one ending exactly where the next begins) are legal and behave exactly like the
// single merged window — LinkFaultInjector normalizes them at construction.
struct OutageWindow {
  TimePoint from;
  TimePoint until;
};

// Coalesces touching windows: sorts by `from` and merges any window whose start is at or
// before the previous window's end. The result is sorted, non-overlapping, and
// non-adjacent, so every overlap query and outage-time sum sees each covered instant
// exactly once. Empty windows (until <= from) must have been rejected by Validate first.
std::vector<OutageWindow> MergeAdjacentOutages(std::vector<OutageWindow> windows);

// WAN pathology profile for the session link. All-defaults (Any() == false) is a LAN:
// no extra delay, symmetric configured bandwidth, unbounded FIFO, no burst loss — and
// the link consumes no additional random stream, so empty-profile runs stay
// byte-identical with pre-WAN builds.
struct WanLinkPlan {
  // Extra one-way transit delay per frame (half the profile's extra RTT), applied on top
  // of the link's propagation delay in both directions.
  Duration extra_delay = Duration::Zero();
  // Per-frame uniform jitter in [0, jitter) added to extra_delay, drawn from the
  // injector's dedicated WAN stream (frame fates are never perturbed).
  Duration jitter = Duration::Zero();
  // Asymmetric bandwidth: serialization rate for display-direction (down) frames and for
  // input-direction (up) messages. Zero = the link's configured rate.
  BitsPerSecond down_rate = BitsPerSecond();
  BitsPerSecond up_rate = BitsPerSecond();
  // Bounded bufferbloat queue: when the wire backlog exceeds this many bytes, newly
  // queued frames are dropped at the tail (they never occupy the wire). Zero = unbounded.
  Bytes queue_bytes = Bytes::Zero();
  // Gilbert–Elliott burst loss: a two-state (good/bad) chain stepped once per frame.
  // In the good state frames are lost with ge_loss_good, in the bad state with
  // ge_loss_bad; the chain moves good->bad with ge_p_good_to_bad and bad->good with
  // ge_p_bad_to_good. All four zero disables the chain entirely.
  double ge_p_good_to_bad = 0.0;
  double ge_p_bad_to_good = 0.0;
  double ge_loss_good = 0.0;
  double ge_loss_bad = 0.0;

  bool HasGilbertElliott() const {
    return ge_p_good_to_bad > 0.0 || ge_loss_good > 0.0 || ge_loss_bad > 0.0;
  }
  bool Any() const {
    return extra_delay > Duration::Zero() || jitter > Duration::Zero() ||
           down_rate.bps() > 0 || up_rate.bps() > 0 || queue_bytes.count() > 0 ||
           HasGilbertElliott();
  }
};

struct LinkFaultPlan {
  // Per-frame Bernoulli loss (the frame occupies the wire but never arrives).
  double loss_rate = 0.0;
  // Per-frame corruption: the frame arrives, fails its checksum, and is discarded —
  // indistinguishable from loss to the transport, but counted separately.
  double corruption_rate = 0.0;
  // Scripted outages, e.g. a cable pull at a known virtual time.
  std::vector<OutageWindow> scripted_outages;
  // Seeded-probabilistic flaps: mean up-time between outages and mean outage length
  // (both jittered +/-50% by the fault Rng). Zero disables random flaps.
  Duration flap_every = Duration::Zero();
  Duration flap_duration = Duration::Zero();
  // WAN pathology profile (delay/jitter, asymmetric bandwidth, bounded bufferbloat
  // queue, Gilbert–Elliott burst loss). Empty by default.
  WanLinkPlan wan;

  bool Any() const {
    return loss_rate > 0.0 || corruption_rate > 0.0 || !scripted_outages.empty() ||
           (flap_every > Duration::Zero() && flap_duration > Duration::Zero()) ||
           wan.Any();
  }
};

struct DiskFaultPlan {
  // Per-request probability of a latency spike (thermal recalibration, firmware GC).
  double stall_rate = 0.0;
  Duration stall = Duration::Millis(200);
  // Per-request probability of a transient I/O error; the driver retries after
  // `error_retry`, re-paying the request's full service time (at most 3 retries).
  double error_rate = 0.0;
  Duration error_retry = Duration::Millis(50);

  bool Any() const { return stall_rate > 0.0 || error_rate > 0.0; }
};

struct SessionFaultPlan {
  // Mean connected time between forced disconnects (jittered +/-50%); zero = never.
  // Disconnects rotate over logged-in sessions.
  Duration disconnect_every = Duration::Zero();
  // Client-side downtime before the reconnect attempt.
  Duration reconnect_after = Duration::Millis(500);
  // Mean time between idle-daemon crashes (round-robin over the profile's daemons);
  // zero = never. A crashed daemon misses its periods, then restarts after
  // `daemon_restart_after` paying one extra episode of CPU (the restart storm).
  Duration daemon_crash_every = Duration::Zero();
  Duration daemon_restart_after = Duration::Millis(200);

  bool Any() const {
    return disconnect_every > Duration::Zero() || daemon_crash_every > Duration::Zero();
  }
};

struct FaultPlan {
  LinkFaultPlan link;
  DiskFaultPlan disk;
  SessionFaultPlan session;
  // Root seed for every fault decision. Independent of model seeds so enabling faults
  // never perturbs workload/scheduler/disk random streams.
  uint64_t seed = 0xFA017;

  bool Any() const { return link.Any() || disk.Any() || session.Any(); }
};

// Throws tcs::ConfigError on out-of-range rates or inconsistent windows.
void Validate(const FaultPlan& plan);

// Cross-layer fault/recovery accounting attached to experiment results. `active` is set
// only when the run carried a non-empty FaultPlan; reports omit the block otherwise, so
// fault-free output stays byte-identical with pre-fault builds.
struct FaultStats {
  bool active = false;
  // 1 - (link outage time + session disconnected time) / run duration, clamped to [0,1].
  double availability = 1.0;
  // Stalled disk requests / total disk requests.
  double disk_stall_rate = 0.0;
  uint64_t frames_lost = 0;       // loss + outage drops on the link (incl. burst loss)
  uint64_t frames_corrupted = 0;  // checksum failures (also never delivered)
  uint64_t burst_losses = 0;      // subset of frames_lost from the Gilbert–Elliott chain
  uint64_t wan_queue_drops = 0;   // drop-tail overflows of the WAN bufferbloat queue
  uint64_t retransmissions = 0;   // ReliableChannel RTO-driven resends
  uint64_t frames_shed = 0;       // sends refused by ReliableChannel's bounded window
  uint64_t input_frames_lost = 0; // keystroke-channel losses (recovered by retry)
  uint64_t disconnects = 0;
  uint64_t dropped_keystrokes = 0;  // typed while the session was disconnected
  uint64_t daemon_crashes = 0;
  uint64_t disk_stalls = 0;
  uint64_t io_errors = 0;
};

}  // namespace tcs

#endif  // TCS_SRC_FAULT_FAULT_PLAN_H_
