#include "src/fault/fault_plan.h"

#include <algorithm>

#include "src/util/config_error.h"

namespace tcs {

std::vector<OutageWindow> MergeAdjacentOutages(std::vector<OutageWindow> windows) {
  if (windows.size() < 2) {
    return windows;
  }
  std::sort(windows.begin(), windows.end(),
            [](const OutageWindow& a, const OutageWindow& b) { return a.from < b.from; });
  std::vector<OutageWindow> merged;
  merged.push_back(windows.front());
  for (size_t i = 1; i < windows.size(); ++i) {
    if (windows[i].from <= merged.back().until) {
      merged.back().until = std::max(merged.back().until, windows[i].until);
    } else {
      merged.push_back(windows[i]);
    }
  }
  return merged;
}

namespace {

void CheckRate(const char* field, double rate) {
  if (rate < 0.0 || rate > 1.0) {
    throw ConfigError(field, "probability must be in [0, 1]");
  }
}

}  // namespace

void Validate(const FaultPlan& plan) {
  CheckRate("FaultPlan.link.loss_rate", plan.link.loss_rate);
  CheckRate("FaultPlan.link.corruption_rate", plan.link.corruption_rate);
  CheckRate("FaultPlan.disk.stall_rate", plan.disk.stall_rate);
  CheckRate("FaultPlan.disk.error_rate", plan.disk.error_rate);
  if ((plan.link.flap_every > Duration::Zero()) !=
      (plan.link.flap_duration > Duration::Zero())) {
    throw ConfigError("FaultPlan.link.flap_every",
                      "flap_every and flap_duration must be set together");
  }
  // Adjacent windows (w.from == last_end) are legal: the injector merges them, so they
  // behave exactly like the single combined window. Overlap and disorder stay errors —
  // they are almost always a plan-authoring bug, not an intent.
  TimePoint last_end = TimePoint::Zero();
  for (const OutageWindow& w : plan.link.scripted_outages) {
    if (w.until <= w.from || w.from < last_end) {
      throw ConfigError("FaultPlan.link.scripted_outages",
                        "windows must be non-empty, sorted, and non-overlapping");
    }
    last_end = w.until;
  }
  const WanLinkPlan& wan = plan.link.wan;
  CheckRate("FaultPlan.link.wan.ge_p_good_to_bad", wan.ge_p_good_to_bad);
  CheckRate("FaultPlan.link.wan.ge_p_bad_to_good", wan.ge_p_bad_to_good);
  CheckRate("FaultPlan.link.wan.ge_loss_good", wan.ge_loss_good);
  CheckRate("FaultPlan.link.wan.ge_loss_bad", wan.ge_loss_bad);
  if (wan.extra_delay < Duration::Zero()) {
    throw ConfigError("FaultPlan.link.wan.extra_delay", "extra delay cannot be negative");
  }
  if (wan.jitter < Duration::Zero()) {
    throw ConfigError("FaultPlan.link.wan.jitter", "jitter cannot be negative");
  }
  if (wan.down_rate.bps() < 0 || wan.up_rate.bps() < 0) {
    throw ConfigError("FaultPlan.link.wan.down_rate", "rates cannot be negative");
  }
  if (wan.queue_bytes.count() < 0) {
    throw ConfigError("FaultPlan.link.wan.queue_bytes", "queue bound cannot be negative");
  }
  if (wan.HasGilbertElliott() && wan.ge_p_bad_to_good <= 0.0 &&
      wan.ge_p_good_to_bad > 0.0) {
    throw ConfigError("FaultPlan.link.wan.ge_p_bad_to_good",
                      "burst-loss chain needs a positive bad->good probability");
  }
  if (plan.disk.Any() && plan.disk.stall < Duration::Zero()) {
    throw ConfigError("FaultPlan.disk.stall", "stall duration must be >= 0");
  }
  if (plan.session.disconnect_every > Duration::Zero() &&
      plan.session.reconnect_after <= Duration::Zero()) {
    throw ConfigError("FaultPlan.session.reconnect_after",
                      "must be positive when disconnects are enabled");
  }
  if (plan.session.daemon_crash_every > Duration::Zero() &&
      plan.session.daemon_restart_after <= Duration::Zero()) {
    throw ConfigError("FaultPlan.session.daemon_restart_after",
                      "must be positive when daemon crashes are enabled");
  }
}

}  // namespace tcs
