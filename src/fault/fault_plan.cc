#include "src/fault/fault_plan.h"

#include "src/util/config_error.h"

namespace tcs {

namespace {

void CheckRate(const char* field, double rate) {
  if (rate < 0.0 || rate > 1.0) {
    throw ConfigError(field, "probability must be in [0, 1]");
  }
}

}  // namespace

void Validate(const FaultPlan& plan) {
  CheckRate("FaultPlan.link.loss_rate", plan.link.loss_rate);
  CheckRate("FaultPlan.link.corruption_rate", plan.link.corruption_rate);
  CheckRate("FaultPlan.disk.stall_rate", plan.disk.stall_rate);
  CheckRate("FaultPlan.disk.error_rate", plan.disk.error_rate);
  if ((plan.link.flap_every > Duration::Zero()) !=
      (plan.link.flap_duration > Duration::Zero())) {
    throw ConfigError("FaultPlan.link.flap_every",
                      "flap_every and flap_duration must be set together");
  }
  TimePoint last_end = TimePoint::Zero();
  for (const OutageWindow& w : plan.link.scripted_outages) {
    if (w.until <= w.from || w.from < last_end) {
      throw ConfigError("FaultPlan.link.scripted_outages",
                        "windows must be non-empty, sorted, and non-overlapping");
    }
    last_end = w.until;
  }
  if (plan.disk.Any() && plan.disk.stall < Duration::Zero()) {
    throw ConfigError("FaultPlan.disk.stall", "stall duration must be >= 0");
  }
  if (plan.session.disconnect_every > Duration::Zero() &&
      plan.session.reconnect_after <= Duration::Zero()) {
    throw ConfigError("FaultPlan.session.reconnect_after",
                      "must be positive when disconnects are enabled");
  }
  if (plan.session.daemon_crash_every > Duration::Zero() &&
      plan.session.daemon_restart_after <= Duration::Zero()) {
    throw ConfigError("FaultPlan.session.daemon_restart_after",
                      "must be positive when daemon crashes are enabled");
  }
}

}  // namespace tcs
