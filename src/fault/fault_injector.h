// Per-layer fault injectors.
//
// Injectors hold the mutable fault state for one run: a dedicated Rng (forked from the
// FaultPlan seed), the lazily generated flap windows, and the fault counters the
// experiment reports reconcile against. They are consulted inline by Link and Disk; a
// null injector pointer is the fault-free fast path (one branch, no stream consumption).
//
// Determinism: all queries happen at non-decreasing virtual times within a run, every
// random draw comes from the injector's own stream, and flap windows are generated
// sequentially from that stream — so two runs with the same plan and seed inject
// byte-identical fault sequences regardless of wall-clock interleaving.

#ifndef TCS_SRC_FAULT_FAULT_INJECTOR_H_
#define TCS_SRC_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/obs/trace.h"
#include "src/sim/random.h"
#include "src/sim/snapshot.h"

namespace tcs {

class LinkFaultInjector {
 public:
  enum class Fate { kDelivered, kLost, kCorrupted, kOutage };

  LinkFaultInjector(LinkFaultPlan plan, uint64_t seed);

  // Decides the fate of a frame occupying the wire over [start, end). Counts it.
  Fate Classify(TimePoint start, TimePoint end);

  // True if `t` falls inside a scripted or generated outage window.
  bool InOutage(TimePoint t);

  // Extra transit delay for one keystroke-sized input message sent at `now`: lost copies
  // are retried every `retry_interval` (doubling, capped at 8x), and an outage holds the
  // message until the window closes. Zero when the input channel is healthy. When
  // `retransmit_out`/`outage_out` are non-null they receive the penalty's two components
  // (retry time vs. outage hold; their sum is the return value) so latency attribution
  // can bill them separately — the split consumes no extra random draws.
  Duration InputDelayPenalty(TimePoint now, Duration retry_interval,
                             Duration* retransmit_out = nullptr,
                             Duration* outage_out = nullptr);

  // Total outage time in [0, end) — the link-downtime leg of availability.
  Duration OutageTimeBefore(TimePoint end);

  // WAN pathology queries. All are inert (zero / no stream consumption) when the plan's
  // WanLinkPlan is empty, so LAN runs stay byte-identical.
  const WanLinkPlan& wan() const { return plan_.wan; }
  bool wan_active() const { return wan_active_; }
  // Extra one-way transit for a display-direction frame: extra_delay plus a jitter draw
  // from the dedicated WAN stream (consumed only when jitter > 0).
  Duration WanFrameExtra();
  // Extra one-way transit for an input-direction message; same shape, separate stream so
  // input cadence never perturbs frame delivery times.
  Duration WanInputExtra();

  int64_t frames_lost() const { return frames_lost_; }
  int64_t frames_corrupted() const { return frames_corrupted_; }
  int64_t outage_drops() const { return outage_drops_; }
  int64_t input_frames_lost() const { return input_frames_lost_; }
  // Subset of frames_lost() decided by the Gilbert–Elliott chain.
  int64_t burst_losses() const { return burst_losses_; }
  // Fraction of Classify() calls made while the chain sat in the bad state.
  double BadStateFraction() const {
    return ge_steps_ > 0
               ? static_cast<double>(ge_bad_steps_) / static_cast<double>(ge_steps_)
               : 0.0;
  }

  // Observability: each outage window becomes a fault-category span when generated.
  void SetTracer(Tracer* tracer);

  // Checkpoint/restore: all four stream positions, the Gilbert–Elliott chain state, the
  // generated flap windows (and generation horizon), and the fault counters. The plan
  // itself is construction config and is not serialized.
  void SaveTo(SnapshotWriter& w) const {
    SaveRng(w, rng_);
    SaveRng(w, input_rng_);
    SaveRng(w, wan_rng_);
    SaveRng(w, wan_input_rng_);
    w.Bool(ge_bad_);
    w.U64(generated_.size());
    for (const OutageWindow& win : generated_) {
      w.Time(win.from);
      w.Time(win.until);
    }
    w.Time(flap_cursor_);
    w.I64(frames_lost_);
    w.I64(frames_corrupted_);
    w.I64(outage_drops_);
    w.I64(input_frames_lost_);
    w.I64(burst_losses_);
    w.I64(ge_steps_);
    w.I64(ge_bad_steps_);
  }
  void LoadFrom(SnapshotReader& r) {
    LoadRng(r, rng_);
    LoadRng(r, input_rng_);
    LoadRng(r, wan_rng_);
    LoadRng(r, wan_input_rng_);
    ge_bad_ = r.Bool();
    generated_.clear();
    uint64_t n = r.U64();
    for (uint64_t i = 0; i < n; ++i) {
      OutageWindow win;
      win.from = r.Time();
      win.until = r.Time();
      generated_.push_back(win);
    }
    flap_cursor_ = r.Time();
    frames_lost_ = r.I64();
    frames_corrupted_ = r.I64();
    outage_drops_ = r.I64();
    input_frames_lost_ = r.I64();
    burst_losses_ = r.I64();
    ge_steps_ = r.I64();
    ge_bad_steps_ = r.I64();
  }

 private:
  static void SaveRng(SnapshotWriter& w, const Rng& rng) {
    for (uint64_t word : rng.state()) {
      w.U64(word);
    }
  }
  static void LoadRng(SnapshotReader& r, Rng& rng) {
    std::array<uint64_t, 4> state;
    for (uint64_t& word : state) {
      word = r.U64();
    }
    rng.set_state(state);
  }

  // Extends generated flap windows until they cover virtual time `horizon`.
  void GenerateFlapsThrough(TimePoint horizon);
  // True if [start, end) overlaps any window in `windows` (sorted, non-overlapping).
  static bool Overlaps(const std::vector<OutageWindow>& windows, TimePoint start,
                       TimePoint end);
  // End of the outage window covering `t`, or `t` itself if none.
  TimePoint OutageEndAfter(TimePoint t);

  LinkFaultPlan plan_;
  Rng rng_;
  Rng input_rng_;  // separate stream: input retries must not perturb frame fates
  // WAN streams, consumed only when the plan's WanLinkPlan is non-empty: the frame
  // stream drives the Gilbert–Elliott chain and display-direction jitter, the input
  // stream drives input-direction jitter.
  Rng wan_rng_;
  Rng wan_input_rng_;
  bool wan_active_ = false;
  bool ge_bad_ = false;  // Gilbert–Elliott chain state (starts good)
  Tracer* tracer_ = nullptr;
  TraceTrack trace_track_;
  std::vector<OutageWindow> generated_;  // flap windows, in time order
  TimePoint flap_cursor_ = TimePoint::Zero();  // generation horizon reached so far
  int64_t frames_lost_ = 0;
  int64_t frames_corrupted_ = 0;
  int64_t outage_drops_ = 0;
  int64_t input_frames_lost_ = 0;
  int64_t burst_losses_ = 0;
  int64_t ge_steps_ = 0;
  int64_t ge_bad_steps_ = 0;
};

class DiskFaultInjector {
 public:
  DiskFaultInjector(DiskFaultPlan plan, uint64_t seed);

  // Extra service time injected into one request whose healthy service time is
  // `service`: a stall spike and/or up to 3 transient-error retries.
  Duration Perturb(Duration service);

  int64_t requests() const { return requests_; }
  int64_t stalls() const { return stalls_; }
  int64_t io_errors() const { return io_errors_; }
  Duration total_stall() const { return total_stall_; }
  double StallRate() const {
    return requests_ > 0 ? static_cast<double>(stalls_) / static_cast<double>(requests_)
                         : 0.0;
  }

  // Checkpoint/restore: stream position and counters (the plan is construction config).
  void SaveTo(SnapshotWriter& w) const {
    for (uint64_t word : rng_.state()) {
      w.U64(word);
    }
    w.I64(requests_);
    w.I64(stalls_);
    w.I64(io_errors_);
    w.Dur(total_stall_);
  }
  void LoadFrom(SnapshotReader& r) {
    std::array<uint64_t, 4> state;
    for (uint64_t& word : state) {
      word = r.U64();
    }
    rng_.set_state(state);
    requests_ = r.I64();
    stalls_ = r.I64();
    io_errors_ = r.I64();
    total_stall_ = r.Dur();
  }

 private:
  DiskFaultPlan plan_;
  Rng rng_;
  int64_t requests_ = 0;
  int64_t stalls_ = 0;
  int64_t io_errors_ = 0;
  Duration total_stall_ = Duration::Zero();
};

}  // namespace tcs

#endif  // TCS_SRC_FAULT_FAULT_INJECTOR_H_
