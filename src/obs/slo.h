// Declarative per-run SLOs evaluated in virtual time, with automatic postmortems.
//
// The paper's sizing argument is about objectives, not averages: a server is big enough
// when the *worst* user's interaction latency stays humanly imperceptible, sessions stay
// available under faults, and the access link never builds a standing queue. An SloSpec
// states those objectives declaratively; an SloWatchdog evaluates them against a running
// experiment — continuously for the ones that can be watched live (worst-user p99, link
// backlog) and at end of run for the ones only the full run defines (total starvation,
// availability).
//
// On the first violation the watchdog freezes the attached FlightRecorder's window and
// snapshots the metrics gauges; FinishRun() then emits a postmortem bundle — the frozen
// Perfetto window (<name>.trace.json) plus a forensic summary (<name>.postmortem.json:
// the violated objective, every objective's limit/observed/pass, gauge values at the
// freeze, a per-stage blame digest when a LatencyAttribution engine was attached, and
// the window's extent). Every byte derives from virtual time and the spec, so bundles
// are deterministically named and byte-identical across reruns and ParallelSweep
// --jobs counts — a 512-point chaos sweep can run trace-off and still hand back a full
// forensic bundle for each violating cell.

#ifndef TCS_SRC_OBS_SLO_H_
#define TCS_SRC_OBS_SLO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/sim/periodic.h"
#include "src/sim/simulator.h"

namespace tcs {

// One run's objectives. A zero (or, for the fraction, negative) limit disables that
// objective, so a default-constructed spec checks nothing.
struct SloSpec {
  // Worst-user interaction p99 must stay at or below this many milliseconds.
  double max_worst_p99_ms = 0.0;
  // At most this fraction of users may be totally starved (never two updates).
  double max_starved_fraction = -1.0;
  // Session availability under faults must stay at or above this fraction.
  double min_availability = 0.0;
  // The shared link's backlog must never exceed this many bytes.
  int64_t max_link_backlog_bytes = 0;
  // Cadence of the live checks (virtual time).
  Duration check_period = Duration::Millis(100);
  // Deterministic bundle stem: files are <out_dir>/<name>.trace.json and
  // <out_dir>/<name>.postmortem.json.
  std::string name = "run";
  // Empty = evaluate objectives but write no files.
  std::string out_dir;

  bool Any() const {
    return max_worst_p99_ms > 0.0 || max_starved_fraction >= 0.0 ||
           min_availability > 0.0 || max_link_backlog_bytes > 0;
  }
};

struct SloObjectiveResult {
  std::string objective;
  double limit = 0.0;
  double observed = 0.0;
  bool passed = true;
};

struct SloReport {
  bool active = false;  // an SloSpec with objectives was attached to the run
  bool passed = true;
  int64_t violated_at_us = -1;  // virtual time of the first violation; -1 = none
  std::string violating_objective;
  std::vector<SloObjectiveResult> objectives;  // configured objectives, fixed order
  std::vector<std::string> postmortems;        // bundle files written, in write order
};

// Deterministic JSON rendering of the report (the experiment reports' "slo" block).
std::string ToJson(const SloReport& r);

class SloWatchdog {
 public:
  // `recorder` must be non-null (the postmortem window comes from it); `metrics` and
  // `attribution` are optional enrichments for the bundle.
  SloWatchdog(Simulator& sim, SloSpec spec, FlightRecorder* recorder,
              MetricsRegistry* metrics, LatencyAttribution* attribution);

  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  // Runners that build a run-local attribution engine (chaos points) point the bundle's
  // blame digest at it here; call before any violation can fire.
  void SetAttribution(LatencyAttribution* attribution) { attribution_ = attribution; }

  // Live-objective data sources; experiments wire whichever they can answer.
  void SetWorstP99Source(std::function<double()> worst_p99_ms) {
    worst_p99_ms_ = std::move(worst_p99_ms);
  }
  void SetStarvationSource(std::function<double()> starved_fraction) {
    starved_fraction_ = std::move(starved_fraction);
  }
  void SetLinkBacklogSource(std::function<int64_t()> backlog_bytes) {
    backlog_bytes_ = std::move(backlog_bytes);
  }

  // Arms the periodic live checks (p99 and backlog; starvation and availability are
  // whole-run objectives and only evaluated by FinishRun).
  void Start();

  // Final evaluation of every configured objective; freezes the recorder if a violation
  // was (or is now) detected, writes the postmortem bundle when the spec names an
  // out_dir, and returns the filled report. Call exactly once, after RunUntil.
  SloReport FinishRun(double availability = 1.0);

  bool violated() const { return violated_; }
  int64_t violated_at_us() const { return violated_at_us_; }
  const SloSpec& spec() const { return spec_; }

  // Checkpoint/restore: the violation ledger, live-check peaks, frozen gauges, and the
  // pending periodic check. The spec, data sources, and bundle sinks are reconstruction
  // config. The attached FlightRecorder's ring is deliberately NOT serialized: a resumed
  // run's postmortem window covers only post-resume records — which is exactly what a
  // rewound replay wants (the approach to the violation, re-observed).
  void SaveTo(SnapshotWriter& w) const {
    w.Bool(violated_);
    w.I64(violated_at_us_);
    w.Str(violating_objective_);
    w.F64(violating_limit_);
    w.F64(violating_observed_);
    w.I64(peak_backlog_bytes_);
    w.U64(frozen_gauges_.size());
    for (const auto& [name, value] : frozen_gauges_) {
      w.Str(name);
      w.F64(value);
    }
    task_.SaveTo(w, sim_);
  }
  void LoadFrom(SnapshotReader& r, EventRearm& plan) {
    violated_ = r.Bool();
    violated_at_us_ = r.I64();
    violating_objective_ = r.Str();
    violating_limit_ = r.F64();
    violating_observed_ = r.F64();
    peak_backlog_bytes_ = r.I64();
    frozen_gauges_.clear();
    uint64_t n = r.U64();
    frozen_gauges_.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      std::string name = r.Str();
      double value = r.F64();
      frozen_gauges_.emplace_back(std::move(name), value);
    }
    task_.LoadFrom(r, plan, "slo.watchdog");
  }

 private:
  void Check();
  void Violate(const char* objective, double limit, double observed);
  void WriteBundle(SloReport& report);
  std::string BlameDigestJson() const;

  Simulator& sim_;
  SloSpec spec_;
  FlightRecorder* recorder_;
  MetricsRegistry* metrics_;
  LatencyAttribution* attribution_;
  PeriodicTask task_;

  std::function<double()> worst_p99_ms_;
  std::function<double()> starved_fraction_;
  std::function<int64_t()> backlog_bytes_;

  bool violated_ = false;
  int64_t violated_at_us_ = -1;
  std::string violating_objective_;
  double violating_limit_ = 0.0;
  double violating_observed_ = 0.0;
  int64_t peak_backlog_bytes_ = 0;  // max over live checks (drains by end of run)
  // Gauge name -> value at the freeze instant, registration order.
  std::vector<std::pair<std::string, double>> frozen_gauges_;
};

}  // namespace tcs

#endif  // TCS_SRC_OBS_SLO_H_
