// Deterministic virtual-time tracing (the observability layer's event side).
//
// A Tracer records typed span/instant/counter events keyed to *simulated* time and emits
// Chrome trace-event JSON loadable in Perfetto or chrome://tracing. Every component gets
// its own track (a pid/tid pair): one per scheduler CPU, per session, per link, per
// protocol channel, assigned in registration order so output is byte-identical across
// runs and across ParallelSweep worker counts.
//
// Hot layers hold a `Tracer*` that defaults to nullptr; a disabled tracer therefore costs
// exactly one branch per would-be event and zero allocations. Category filtering happens
// inside the tracer, so call sites never test more than the pointer.
//
// Determinism contract: event payloads may contain only virtual-time stamps and model
// state — never wall-clock readings, addresses, or iteration order of unordered
// containers.

#ifndef TCS_SRC_OBS_TRACE_H_
#define TCS_SRC_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/time.h"

namespace tcs {

// One bit per layer; a Tracer is constructed with the set it should keep.
enum class TraceCategory : uint32_t {
  kSim = 1u << 0,      // event-kernel dispatches
  kCpu = 1u << 1,      // execution segments, preemptions
  kSched = 1u << 2,    // policy decisions: boosts, band changes
  kMem = 1u << 3,      // faults, evictions, page-in spans, disk I/O
  kNet = 1u << 4,      // frame transmissions, queueing
  kProto = 1u << 5,    // protocol messages, cache hits/misses
  kSession = 1u << 6,  // keystroke batches, update emissions
  kFault = 1u << 7,    // injected outages, disconnects, disk stalls
  kBlame = 1u << 8,    // per-interaction latency attribution spans + flows
};

inline constexpr uint32_t kAllTraceCategories = 0x1ff;

const char* TraceCategoryName(TraceCategory cat);

// A Chrome-trace track: `pid` groups related tracks into one named process section,
// `tid` is the row within it.
struct TraceTrack {
  int32_t pid = 0;
  int32_t tid = 0;
};

struct TracerConfig {
  uint32_t categories = kAllTraceCategories;
};

class Tracer {
 public:
  explicit Tracer(TracerConfig config = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool Enabled(TraceCategory cat) const {
    return (config_.categories & static_cast<uint32_t>(cat)) != 0;
  }

  // Creates (or finds) the process section `process` and appends a track named `track`
  // to it. Tracks render in registration order.
  TraceTrack RegisterTrack(const std::string& process, const std::string& track);

  // Copies `s` into tracer-owned storage and returns a pointer that stays valid for the
  // tracer's lifetime. Use for event names that outlive their component (thread names on
  // segments, for example); repeated calls with the same string return the same pointer.
  const char* Intern(const std::string& s);

  // A slice [start, end] on `track` (Chrome "complete" event). `name` must outlive the
  // tracer (string literal or Intern()ed).
  void Span(TraceCategory cat, const char* name, TraceTrack track, TimePoint start,
            TimePoint end);
  void Span(TraceCategory cat, const char* name, TraceTrack track, TimePoint start,
            TimePoint end, const char* key1, int64_t val1);
  void Span(TraceCategory cat, const char* name, TraceTrack track, TimePoint start,
            TimePoint end, const char* key1, int64_t val1, const char* key2,
            int64_t val2);

  // A zero-width marker at `t`.
  void Instant(TraceCategory cat, const char* name, TraceTrack track, TimePoint t);
  void Instant(TraceCategory cat, const char* name, TraceTrack track, TimePoint t,
               const char* key1, int64_t val1);
  void Instant(TraceCategory cat, const char* name, TraceTrack track, TimePoint t,
               const char* key1, int64_t val1, const char* key2, int64_t val2);

  // A sampled value; Perfetto renders successive samples as a counter track.
  void Counter(TraceCategory cat, const char* name, TraceTrack track, TimePoint t,
               double value);

  // Flow events (ph "s"/"t"/"f") link spans across tracks: begin a flow inside one slice,
  // step it through intermediate slices, and end it (binding to the enclosing slice,
  // `bp:"e"`). All three points of one flow must share `id` and `name`. Determinism
  // contract: ids are caller-supplied sequence numbers minted in registration/injection
  // order (use MintFlowId() when no natural id exists) — never addresses.
  uint64_t MintFlowId() { return ++next_flow_id_; }
  void FlowBegin(TraceCategory cat, const char* name, TraceTrack track, TimePoint t,
                 uint64_t id);
  void FlowStep(TraceCategory cat, const char* name, TraceTrack track, TimePoint t,
                uint64_t id);
  void FlowEnd(TraceCategory cat, const char* name, TraceTrack track, TimePoint t,
               uint64_t id);

  size_t event_count() const { return events_.size(); }
  size_t track_count() const { return tracks_.size(); }

  // Chrome trace-event JSON: {"traceEvents":[...]}. Deterministic byte-for-byte given the
  // same recorded events.
  void WriteJson(std::ostream& out) const;
  std::string ToJson() const;

 private:
  struct Event {
    char ph;  // 'X' span, 'i' instant, 'C' counter, 's'/'t'/'f' flow
    TraceCategory cat;
    const char* name;
    TraceTrack track;
    int64_t ts_us;
    int64_t dur_us;       // spans only
    const char* key1 = nullptr;
    int64_t val1 = 0;
    const char* key2 = nullptr;
    int64_t val2 = 0;
    double counter_value = 0.0;  // counters only
    uint64_t flow_id = 0;        // flow events only
  };
  struct Track {
    int32_t pid;
    int32_t tid;
    std::string name;
  };

  // The category filter lives here so call sites only ever test the tracer pointer.
  void Push(const Event& e) {
    if (Enabled(e.cat)) {
      events_.push_back(e);
    }
  }

  TracerConfig config_;
  std::vector<Event> events_;
  std::vector<std::string> processes_;  // index = pid - 1
  std::vector<Track> tracks_;
  std::unordered_map<std::string, const char*> intern_index_;
  std::deque<std::string> interned_;
  uint64_t next_flow_id_ = 0;
};

}  // namespace tcs

#endif  // TCS_SRC_OBS_TRACE_H_
