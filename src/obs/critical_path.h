// Causal critical-path profiler: from "which stage was slow" to "what to fix next".
//
// The attribution engine (PR 4) answers *where* an interaction's microseconds went; the
// critical path answers *what would have helped*. For every committed interaction this
// module assembles a causal event graph — nodes are stage intervals on components
// (client, uplink, scheduler, CPU, memory, downlink), edges are happens-before
// relations within the interaction's flow id — and extracts the critical path by
// longest-path relaxation in topological order.
//
// Exactness discipline (same as the attribution engine): every node is a difference of
// pipeline timestamps, consecutive nodes tile the [sent, painted] interval with no gaps
// or overlaps, and the extracted path's segment sum equals the end-to-end latency to
// the microsecond — asserted per build and property-tested across seeds and WAN
// profiles. The keystroke pipeline is a chain of serially-dependent stages, so the
// critical path visits every non-empty interval; the machinery is a genuine DAG
// traversal so parallel stage structure (e.g. future multi-flow pipelines) inherits the
// same guarantee.
//
// WAN awareness: the display-net interval expands into the five decomposition
// sub-stages (bufferbloat queueing, retransmit wait, serialization, propagation,
// jitter) recorded in InteractionRecord::net_us, so a slow interaction on an LTE
// profile names bufferbloat, not "the network".
//
// What-if prediction: PredictAdjustedTotalUs() replays one record's critical path under
// a virtual speedup of a single component (link rate x k, CPU x k, disk x k, RTT - d)
// and returns the predicted end-to-end total. RunWhatIf (core/experiments) compares
// this prediction against an actual re-simulation. Limits: the prediction rescales the
// affected segments in isolation — it cannot see second-order effects (shorter
// serialization drains queues faster, fewer RTO expiries, different batching), which is
// exactly the gap the achieved-vs-predicted report quantifies.
//
// Determinism contract: graphs are pure functions of the committed record (plus an
// optional flight-recorder correlation count); ToJson() output is byte-identical across
// reruns and ParallelSweep worker counts.

#ifndef TCS_SRC_OBS_CRITICAL_PATH_H_
#define TCS_SRC_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/attribution.h"

namespace tcs {

class FlightRecorder;

// One stage interval on a component. `component` and `stage` are string literals, so
// nodes copy and compare cheaply and serialize without escaping.
struct CriticalPathNode {
  const char* component = "";
  const char* stage = "";
  int64_t start_us = 0;
  int64_t end_us = 0;
  // Flight-recorder records carrying this interaction's flow id that overlap this
  // interval (zero unless the graph was built with a recorder).
  int64_t flight_records = 0;

  int64_t duration_us() const { return end_us - start_us; }
};

// Happens-before edge between node indices.
struct CriticalPathEdge {
  int from = 0;
  int to = 0;
};

// One segment of the extracted critical path.
struct CriticalPathSegment {
  const char* component = "";
  const char* stage = "";
  int64_t start_us = 0;
  int64_t end_us = 0;
  int64_t duration_us = 0;
};

class CriticalPathGraph {
 public:
  // Assembles the causal graph for one committed interaction. With a recorder, each
  // node is annotated with the count of overlapping flow-id records from the live ring
  // (pure read; never perturbs the run). Asserts the tiling invariant: nodes are
  // contiguous from sent to painted.
  static CriticalPathGraph Build(const InteractionRecord& rec,
                                 const FlightRecorder* recorder = nullptr);

  uint64_t flow_id() const { return flow_id_; }
  int64_t end_to_end_us() const { return end_us_ - start_us_; }
  const std::vector<CriticalPathNode>& nodes() const { return nodes_; }
  const std::vector<CriticalPathEdge>& edges() const { return edges_; }

  // Longest start-to-finish path by topological relaxation; zero-duration nodes are
  // elided from the output (they contribute nothing to the sum). The returned segments
  // satisfy SegmentSumUs(path) == end_to_end_us() exactly.
  std::vector<CriticalPathSegment> ExtractCriticalPath() const;

  static int64_t SegmentSumUs(const std::vector<CriticalPathSegment>& path);

  // Deterministic JSON: flow id, end-to-end, nodes, edges, the extracted path and its
  // segment sum. Byte-identical across reruns and worker counts.
  std::string ToJson() const;

 private:
  uint64_t flow_id_ = 0;
  int64_t start_us_ = 0;
  int64_t end_us_ = 0;
  std::vector<CriticalPathNode> nodes_;
  std::vector<CriticalPathEdge> edges_;
};

// A counterfactual: virtually speed up one component and ask what the interaction's
// end-to-end total would have been.
struct WhatIfAdjustment {
  enum class Component { kLink, kCpu, kDisk, kRtt };
  Component component = Component::kLink;
  // For kLink/kCpu/kDisk: the speedup factor k (> 0); affected segments scale by 1/k.
  double speedup = 2.0;
  // For kRtt: total round-trip reduction in microseconds, split evenly across the two
  // one-way legs and clamped so neither goes negative.
  int64_t rtt_delta_us = 0;
};

const char* WhatIfComponentName(WhatIfAdjustment::Component component);

// Predicted end-to-end total under the adjustment:
//   kLink  scales bufferbloat queueing + retransmit wait + serialization (display leg),
//   kCpu   scales cpu-service + proto-encode,
//   kDisk  scales mem-stall,
//   kRtt   subtracts delta/2 from display-leg propagation and delta/2 from input-net,
//          each clamped at zero.
// Integer microseconds, deterministic (llround of one IEEE-754 division per record).
int64_t PredictAdjustedTotalUs(const InteractionRecord& rec, const WhatIfAdjustment& adj);

}  // namespace tcs

#endif  // TCS_SRC_OBS_CRITICAL_PATH_H_
