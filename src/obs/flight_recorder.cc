#include "src/obs/flight_recorder.h"

#include <cstdio>
#include <sstream>
#include <unordered_map>

namespace tcs {

const char* FlightComponentName(FlightComponent c) {
  switch (c) {
    case FlightComponent::kSim:
      return "sim";
    case FlightComponent::kCpu:
      return "cpu";
    case FlightComponent::kSched:
      return "sched";
    case FlightComponent::kMem:
      return "mem";
    case FlightComponent::kNet:
      return "net";
    case FlightComponent::kProto:
      return "proto";
    case FlightComponent::kSession:
      return "session";
    case FlightComponent::kFault:
      return "fault";
    case FlightComponent::kBlame:
      return "blame";
  }
  return "?";
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config) : config_(config) {
  // Round the capacity up to a power of two so Append can mask instead of divide,
  // then back the whole ring with a single contiguous arena block (the arena sizes
  // its chunk to the request, so this is exactly one allocation).
  size_t cap = kMinCapacity;
  while (cap < config_.capacity) {
    cap <<= 1;
  }
  capacity_ = cap;
  ring_ = arena_.AllocateArray<FlightRecord>(capacity_);
}

void FlightRecorder::Freeze(TimePoint now) {
  if (frozen_) {
    return;  // first violation wins; its history is what the bundle explains
  }
  frozen_ = true;
  frozen_at_us_ = now.ToMicros();
  int64_t horizon = frozen_at_us_ - config_.window.ToMicros();
  uint64_t live = head_ < capacity_ ? head_ : capacity_;
  window_.reserve(static_cast<size_t>(live));
  for (uint64_t i = head_ - live; i < head_; ++i) {
    const FlightRecord& r = ring_[static_cast<size_t>(i) & (capacity_ - 1)];
    if (r.ts_us >= horizon) {
      window_.push_back(r);
    }
  }
}

namespace {

// JSON string escaping matching Tracer::WriteJson's (names are literals/interned
// strings, but stay safe on quotes, backslashes, and control characters).
void AppendEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

void FlightRecorder::WriteWindowJson(std::ostream& out) const {
  std::string line;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Metadata first: the one "flight" process, then a track per component in enum order,
  // so pids/tids are fixed regardless of which components recorded anything.
  out << "\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"flight\"}}";
  for (int c = 0; c < kFlightComponentCount; ++c) {
    line.clear();
    line += ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":";
    line += std::to_string(c + 1);
    line += ",\"args\":{\"name\":\"";
    AppendEscaped(line, FlightComponentName(static_cast<FlightComponent>(c)));
    line += "\"}}";
    out << line;
  }
  // Flow arrows need begin/step/end phases: count each id's occurrences first so the
  // emission pass knows which record is an id's first ('s') and last ('f'). Lookups
  // only — output order stays the window's append order, so bytes are deterministic.
  std::unordered_map<uint64_t, uint64_t> flow_total;
  for (const FlightRecord& r : window_) {
    if (r.flow_id != 0) {
      ++flow_total[r.flow_id];
    }
  }
  std::unordered_map<uint64_t, uint64_t> flow_seen;
  for (const FlightRecord& r : window_) {
    line.clear();
    line += ",\n{\"ph\":\"";
    switch (static_cast<FlightKind>(r.kind)) {
      case FlightKind::kSpan:
        line += 'X';
        break;
      case FlightKind::kInstant:
        line += 'i';
        break;
      case FlightKind::kCounter:
        line += 'C';
        break;
    }
    line += "\",\"name\":\"";
    AppendEscaped(line, r.name);
    line += "\",\"cat\":\"";
    line += FlightComponentName(static_cast<FlightComponent>(r.component));
    line += "\",\"pid\":1,\"tid\":";
    line += std::to_string(r.component + 1);
    line += ",\"ts\":";
    line += std::to_string(r.ts_us);
    switch (static_cast<FlightKind>(r.kind)) {
      case FlightKind::kSpan:
        line += ",\"dur\":";
        line += std::to_string(r.dur_us);
        line += ",\"args\":{\"arg1\":";
        line += std::to_string(r.arg1);
        line += ",\"arg2\":";
        line += std::to_string(r.arg2);
        line += "}";
        break;
      case FlightKind::kInstant:
        line += ",\"s\":\"t\",\"args\":{\"arg1\":";
        line += std::to_string(r.arg1);
        line += ",\"arg2\":";
        line += std::to_string(r.arg2);
        line += "}";
        break;
      case FlightKind::kCounter:
        line += ",\"args\":{\"value\":";
        line += std::to_string(r.arg1);
        line += "}";
        break;
    }
    line += "}";
    if (r.flow_id != 0) {
      uint64_t seen = flow_seen[r.flow_id]++;
      uint64_t total = flow_total[r.flow_id];
      char ph = seen == 0 ? 's' : (seen + 1 == total ? 'f' : 't');
      if (total > 1) {
        line += ",\n{\"ph\":\"";
        line.push_back(ph);
        line += "\",\"name\":\"interaction\",\"cat\":\"";
        line += FlightComponentName(static_cast<FlightComponent>(r.component));
        line += "\",\"pid\":1,\"tid\":";
        line += std::to_string(r.component + 1);
        line += ",\"ts\":";
        line += std::to_string(r.ts_us);
        line += ",\"id\":";
        line += std::to_string(r.flow_id);
        if (ph == 'f') {
          line += ",\"bp\":\"e\"";
        }
        line += "}";
      }
    }
    out << line;
  }
  out << "\n]}\n";
}

std::string FlightRecorder::WindowJson() const {
  std::ostringstream out;
  WriteWindowJson(out);
  return out.str();
}

}  // namespace tcs
