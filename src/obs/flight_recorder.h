// Always-on flight recorder: a bounded ring of compact per-component records.
//
// The Tracer answers "show me everything" at the cost of unbounded growth and JSON
// rendering; sweeps therefore run trace-off and a stall found by a 512-point chaos grid
// used to be unexplainable without a full re-run. The FlightRecorder is the other point
// in the design space: every component continuously appends fixed-size POD records
// (timestamp, duration, name literal, component, flow id, two integer args) into a
// bounded ring backed by one contiguous arena block allocated at construction.
// Appending is a mask and a handful of stores — no JSON, no per-record allocation, no
// branches beyond the null-pointer gate at each call site — so it is cheap enough to
// leave on for every run (gated by BM_FlightRecorderOverhead at <3% on the 64-user
// consolidation bench).
//
// When an SloWatchdog detects a violation it calls Freeze(now): the records of the last
// `window` of virtual time are copied out of the ring (first freeze wins, so the bundle
// shows the *first* violation's history, not the run's tail). WindowJson() renders the
// frozen window as a Chrome/Perfetto trace-event JSON document — one process ("flight"),
// one track per component, span/instant/counter events plus flow arrows grouped by the
// records' interaction ids — in the same dialect as Tracer::WriteJson, so existing trace
// validation and viewers work unchanged.
//
// Determinism contract: records carry only virtual-time stamps, name literals, and
// integer args; the ring's contents and the rendered window are byte-identical across
// reruns and ParallelSweep worker counts for a given seed.

#ifndef TCS_SRC_OBS_FLIGHT_RECORDER_H_
#define TCS_SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/arena.h"
#include "src/sim/time.h"

namespace tcs {

enum class FlightComponent : int32_t {
  kSim = 0,
  kCpu,
  kSched,
  kMem,
  kNet,
  kProto,
  kSession,
  kFault,
  kBlame,
};

inline constexpr int kFlightComponentCount = 9;

const char* FlightComponentName(FlightComponent c);

enum class FlightKind : int32_t { kSpan = 0, kInstant, kCounter };

// One recorded event. `name` must outlive the recorder (string literals, interned
// names); identity is virtual time + integers only, never pointers or wall clock.
// Padded to exactly one cache line: at the natural 56-byte size most appends straddle
// two lines, and the ring is written far more often than it is read.
struct alignas(64) FlightRecord {
  int64_t ts_us = 0;
  int64_t dur_us = 0;      // spans only; 0 otherwise
  const char* name = nullptr;
  int32_t component = 0;   // FlightComponent
  int32_t kind = 0;        // FlightKind
  uint64_t flow_id = 0;    // interaction id; 0 = not part of a flow
  int64_t arg1 = 0;
  int64_t arg2 = 0;
};

struct FlightRecorderConfig {
  // Ring capacity in records (rounded up to a power of two, minimum 1024, so the
  // append path masks instead of dividing). 64Ki records ≈ 3.5 MiB, several virtual
  // seconds of fully-loaded consolidation history.
  size_t capacity = size_t{1} << 16;
  // How much history Freeze() keeps, in virtual time.
  Duration window = Duration::Millis(500);
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Span(FlightComponent c, const char* name, TimePoint start, TimePoint end,
            uint64_t flow_id = 0, int64_t arg1 = 0, int64_t arg2 = 0) {
    Append(start.ToMicros(), (end - start).ToMicros(), name, c, FlightKind::kSpan,
           flow_id, arg1, arg2);
  }

  void Instant(FlightComponent c, const char* name, TimePoint t, uint64_t flow_id = 0,
               int64_t arg1 = 0, int64_t arg2 = 0) {
    Append(t.ToMicros(), 0, name, c, FlightKind::kInstant, flow_id, arg1, arg2);
  }

  void Counter(FlightComponent c, const char* name, TimePoint t, int64_t value) {
    Append(t.ToMicros(), 0, name, c, FlightKind::kCounter, 0, value, 0);
  }

  // Records ever appended (monotonic; the ring holds the last min(seen, capacity)).
  uint64_t records_seen() const { return head_; }
  size_t capacity() const { return capacity_; }
  Duration window() const { return config_.window; }

  // Visits the live ring's records oldest-append-first (the last min(seen, capacity)
  // appends). Read-only and allocation-free; the critical-path assembler uses it to
  // correlate an interaction's flow-id records with its stage intervals.
  template <typename Fn>
  void ForEachRecord(Fn&& fn) const {
    const uint64_t start = head_ > capacity_ ? head_ - capacity_ : 0;
    for (uint64_t i = start; i < head_; ++i) {
      fn(ring_[static_cast<size_t>(i) & (capacity_ - 1)]);
    }
  }

  // Copies the ring records with ts >= now - window, oldest append first, into the
  // frozen window. The first freeze wins: later calls are no-ops so the bundle keeps
  // the *first* violation's history.
  void Freeze(TimePoint now);
  bool frozen() const { return frozen_; }
  TimePoint frozen_at() const { return TimePoint::FromMicros(frozen_at_us_); }
  const std::vector<FlightRecord>& frozen_window() const { return window_; }

  // Renders the frozen window as Chrome trace-event JSON (metadata only when Freeze
  // was never called or kept nothing). Deterministic byte-for-byte.
  void WriteWindowJson(std::ostream& out) const;
  std::string WindowJson() const;

 private:
  static constexpr size_t kMinCapacity = 1024;

  void Append(int64_t ts_us, int64_t dur_us, const char* name, FlightComponent c,
              FlightKind kind, uint64_t flow_id, int64_t arg1, int64_t arg2) {
    // capacity_ is a power of two and the ring is one contiguous block, so the wrap
    // is a mask and the store a single indexed write — this runs on every CPU
    // segment, page-in, and link frame of every run.
    FlightRecord& r = ring_[static_cast<size_t>(head_) & (capacity_ - 1)];
    r.ts_us = ts_us;
    r.dur_us = dur_us;
    r.name = name;
    r.component = static_cast<int32_t>(c);
    r.kind = static_cast<int32_t>(kind);
    r.flow_id = flow_id;
    r.arg1 = arg1;
    r.arg2 = arg2;
    ++head_;
  }

  FlightRecorderConfig config_;
  size_t capacity_ = 0;
  BumpArena arena_;
  FlightRecord* ring_ = nullptr;  // one contiguous capacity_-record block in the arena
  uint64_t head_ = 0;             // total records ever appended
  bool frozen_ = false;
  int64_t frozen_at_us_ = 0;
  std::vector<FlightRecord> window_;  // filled by Freeze()
};

}  // namespace tcs

#endif  // TCS_SRC_OBS_FLIGHT_RECORDER_H_
