#include "src/obs/slo.h"

#include <filesystem>
#include <fstream>

#include "src/util/json.h"

namespace tcs {

namespace {

std::string ObjectiveJson(const SloObjectiveResult& o) {
  JsonObject j;
  j.Str("objective", o.objective);
  j.Double("limit", o.limit);
  j.Double("observed", o.observed);
  j.Bool("passed", o.passed);
  return j.Finish();
}

std::string ObjectivesJson(const std::vector<SloObjectiveResult>& objectives) {
  std::string out = "[";
  for (size_t i = 0; i < objectives.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += ObjectiveJson(objectives[i]);
  }
  out += ']';
  return out;
}

}  // namespace

std::string ToJson(const SloReport& r) {
  JsonObject o;
  o.Bool("passed", r.passed);
  o.Int("violated_at_us", r.violated_at_us);
  o.Str("violating_objective", r.violating_objective);
  o.Raw("objectives", ObjectivesJson(r.objectives));
  std::string pm = "[";
  for (size_t i = 0; i < r.postmortems.size(); ++i) {
    if (i > 0) {
      pm += ',';
    }
    JsonObject p;
    p.Str("path", r.postmortems[i]);
    pm += p.Finish();
  }
  pm += ']';
  o.Raw("postmortems", pm);
  return o.Finish();
}

SloWatchdog::SloWatchdog(Simulator& sim, SloSpec spec, FlightRecorder* recorder,
                         MetricsRegistry* metrics, LatencyAttribution* attribution)
    : sim_(sim),
      spec_(std::move(spec)),
      recorder_(recorder),
      metrics_(metrics),
      attribution_(attribution),
      task_(sim, spec_.check_period, [this] { Check(); }) {}

void SloWatchdog::Start() { task_.Start(spec_.check_period); }

void SloWatchdog::Check() {
  TimePoint now = sim_.Now();
  if (recorder_ != nullptr) {
    // The kernel's dispatch depth rides the watchdog cadence instead of a per-event
    // hook, so a healthy run pays nothing on the hot path for it.
    recorder_->Counter(FlightComponent::kSim, "pending_events", now,
                       static_cast<int64_t>(sim_.pending_events()));
  }
  if (spec_.max_link_backlog_bytes > 0 && backlog_bytes_) {
    int64_t backlog = backlog_bytes_();
    if (backlog > peak_backlog_bytes_) {
      peak_backlog_bytes_ = backlog;
    }
    if (backlog > spec_.max_link_backlog_bytes) {
      Violate("link_backlog_bytes", static_cast<double>(spec_.max_link_backlog_bytes),
              static_cast<double>(backlog));
    }
  }
  if (spec_.max_worst_p99_ms > 0.0 && worst_p99_ms_) {
    double p99 = worst_p99_ms_();
    if (p99 > spec_.max_worst_p99_ms) {
      Violate("worst_p99_ms", spec_.max_worst_p99_ms, p99);
    }
  }
}

void SloWatchdog::Violate(const char* objective, double limit, double observed) {
  if (violated_) {
    return;  // the first violation owns the frozen window
  }
  violated_ = true;
  violated_at_us_ = sim_.Now().ToMicros();
  violating_objective_ = objective;
  violating_limit_ = limit;
  violating_observed_ = observed;
  if (recorder_ != nullptr) {
    recorder_->Instant(FlightComponent::kFault, "slo-violation", sim_.Now(), 0,
                       static_cast<int64_t>(observed), static_cast<int64_t>(limit));
    recorder_->Freeze(sim_.Now());
  }
  if (metrics_ != nullptr) {
    for (const MetricsRegistry::Gauge& g : metrics_->gauges()) {
      frozen_gauges_.emplace_back(g.name, g.poll());
    }
  }
}

SloReport SloWatchdog::FinishRun(double availability) {
  task_.Stop();
  SloReport report;
  report.active = true;
  // Fixed objective order: p99, starvation, availability, backlog.
  if (spec_.max_worst_p99_ms > 0.0) {
    SloObjectiveResult o;
    o.objective = "worst_p99_ms";
    o.limit = spec_.max_worst_p99_ms;
    o.observed = worst_p99_ms_ ? worst_p99_ms_() : 0.0;
    o.passed = o.observed <= o.limit;
    report.objectives.push_back(std::move(o));
  }
  if (spec_.max_starved_fraction >= 0.0) {
    SloObjectiveResult o;
    o.objective = "starved_fraction";
    o.limit = spec_.max_starved_fraction;
    o.observed = starved_fraction_ ? starved_fraction_() : 0.0;
    o.passed = o.observed <= o.limit;
    report.objectives.push_back(std::move(o));
  }
  if (spec_.min_availability > 0.0) {
    SloObjectiveResult o;
    o.objective = "availability";
    o.limit = spec_.min_availability;
    o.observed = availability;
    o.passed = o.observed >= o.limit;
    report.objectives.push_back(std::move(o));
  }
  if (spec_.max_link_backlog_bytes > 0) {
    SloObjectiveResult o;
    o.objective = "link_backlog_bytes";
    o.limit = static_cast<double>(spec_.max_link_backlog_bytes);
    // The backlog drains by end of run, so the observed value is the live peak.
    o.observed = static_cast<double>(peak_backlog_bytes_);
    o.passed = o.observed <= o.limit;
    report.objectives.push_back(std::move(o));
  }
  for (const SloObjectiveResult& o : report.objectives) {
    report.passed = report.passed && o.passed;
  }
  if (!report.passed && !violated_) {
    // An end-of-run-only objective failed (starvation, availability): freeze now so
    // the bundle still carries the run's tail window.
    for (const SloObjectiveResult& o : report.objectives) {
      if (!o.passed) {
        Violate(o.objective.c_str(), o.limit, o.observed);
        break;
      }
    }
  }
  report.passed = report.passed && !violated_;
  report.violated_at_us = violated_at_us_;
  report.violating_objective = violating_objective_;
  if (!report.passed && !spec_.out_dir.empty()) {
    WriteBundle(report);
  }
  return report;
}

std::string SloWatchdog::BlameDigestJson() const {
  AttributionResult blame = attribution_->Collect();
  JsonObject o;
  o.Int("interactions", blame.interactions);
  o.Int("total_us", blame.total_us);
  o.Int("p50_total_us", blame.p50_total_us);
  o.Int("p99_total_us", blame.p99_total_us);
  o.Int("max_total_us", blame.max_total_us);
  o.Str("top_stage", blame.top_stage);
  std::string stages = "[";
  for (size_t i = 0; i < blame.stages.size(); ++i) {
    const StageSummary& s = blame.stages[i];
    if (i > 0) {
      stages += ',';
    }
    JsonObject so;
    so.Str("stage", s.stage);
    so.Int("total_us", s.total_us);
    so.Double("share", s.share);
    so.Int("p99_us", s.p99_us);
    stages += so.Finish();
  }
  stages += ']';
  o.Raw("stages", stages);
  return o.Finish();
}

void SloWatchdog::WriteBundle(SloReport& report) {
  std::filesystem::create_directories(spec_.out_dir);
  std::string trace_path = spec_.out_dir + "/" + spec_.name + ".trace.json";
  {
    std::ofstream out(trace_path, std::ios::binary);
    recorder_->WriteWindowJson(out);
  }
  report.postmortems.push_back(trace_path);

  JsonObject o;
  o.Str("slo", spec_.name);
  o.Str("violating_objective", violating_objective_);
  o.Double("limit", violating_limit_);
  o.Double("observed", violating_observed_);
  o.Int("violated_at_us", violated_at_us_);
  o.Raw("objectives", ObjectivesJson(report.objectives));
  std::string gauges = "[";
  for (size_t i = 0; i < frozen_gauges_.size(); ++i) {
    if (i > 0) {
      gauges += ',';
    }
    JsonObject g;
    g.Str("name", frozen_gauges_[i].first);
    g.Double("value", frozen_gauges_[i].second);
    gauges += g.Finish();
  }
  gauges += ']';
  o.Raw("gauges", gauges);
  if (attribution_ != nullptr) {
    o.Raw("blame", BlameDigestJson());
  }
  JsonObject w;
  w.UInt("records", recorder_->frozen_window().size());
  w.Int("window_us", recorder_->window().ToMicros());
  w.Int("frozen_at_us", recorder_->frozen_at().ToMicros());
  if (!recorder_->frozen_window().empty()) {
    w.Int("first_ts_us", recorder_->frozen_window().front().ts_us);
    w.Int("last_ts_us", recorder_->frozen_window().back().ts_us);
  }
  o.Raw("window", w.Finish());
  std::string pm_path = spec_.out_dir + "/" + spec_.name + ".postmortem.json";
  {
    std::ofstream out(pm_path, std::ios::binary);
    out << o.Finish() << "\n";
  }
  report.postmortems.push_back(pm_path);
}

}  // namespace tcs
