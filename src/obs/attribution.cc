#include "src/obs/attribution.h"

#include <algorithm>
#include <cassert>

#include "src/obs/flight_recorder.h"

namespace tcs {

namespace {

constexpr int Idx(AttrStage stage) { return static_cast<int>(stage); }

// Nearest-rank percentile over the sketch's sorted samples: the reported value is always
// an observed sample, so it is an integer and invariant under worker count.
int64_t NearestRank(const PercentileSketch<int64_t>& sketch, double q) {
  if (sketch.empty()) {
    return 0;
  }
  return sketch.NearestRank(q);
}

}  // namespace

const char* AttrStageName(AttrStage stage) {
  switch (stage) {
    case AttrStage::kInputNet:
      return "input-net";
    case AttrStage::kRetransmit:
      return "retransmit";
    case AttrStage::kSchedWait:
      return "sched-wait";
    case AttrStage::kCpuService:
      return "cpu-service";
    case AttrStage::kMemStall:
      return "mem-stall";
    case AttrStage::kProtoEncode:
      return "proto-encode";
    case AttrStage::kDisplayNet:
      return "display-net";
    case AttrStage::kClientDecode:
      return "client-decode";
    case AttrStage::kDegradationHold:
      return "degradation-hold";
  }
  return "?";
}

const char* NetSubStageName(NetSubStage stage) {
  switch (stage) {
    case NetSubStage::kQueueing:
      return "net-queueing";
    case NetSubStage::kRetransmitWait:
      return "net-retransmit-wait";
    case NetSubStage::kSerialization:
      return "net-serialization";
    case NetSubStage::kPropagation:
      return "net-propagation";
    case NetSubStage::kJitter:
      return "net-jitter";
  }
  return "?";
}

int64_t InteractionRecord::StageSum() const {
  int64_t sum = 0;
  for (int s = 0; s < kAttrStageCount; ++s) {
    sum += stage_us[s];
  }
  return sum;
}

int64_t InteractionRecord::NetSum() const {
  int64_t sum = 0;
  for (int s = 0; s < kNetSubStageCount; ++s) {
    sum += net_us[s];
  }
  return sum;
}

LatencyAttribution::LatencyAttribution(AttributionConfig config) : config_(config) {
  if (config_.tracer != nullptr) {
    net_track_ = config_.tracer->RegisterTrack("blame", "net");
    cpu_track_ = config_.tracer->RegisterTrack("blame", "cpu");
    mem_track_ = config_.tracer->RegisterTrack("blame", "mem");
    proto_track_ = config_.tracer->RegisterTrack("blame", "proto");
    client_track_ = config_.tracer->RegisterTrack("blame", "client");
  }
}

void LatencyAttribution::Commit(const InteractionRecord& rec) {
  // The exact-accounting invariant: stages are telescoping timestamp differences, so
  // they must reproduce the end-to-end latency to the microsecond.
  assert(rec.StageSum() == rec.total_us());
  if (rec.StageSum() != rec.total_us()) {
    ++mismatches_;
  }
  // The display-net decomposition telescopes the same way within its stage.
  assert(rec.NetSum() == rec.stage_us[static_cast<int>(AttrStage::kDisplayNet)]);
  if (rec.NetSum() != rec.stage_us[static_cast<int>(AttrStage::kDisplayNet)]) {
    ++net_mismatches_;
  }
  ++committed_;
  keystrokes_ += rec.batch;
  total_us_sum_ += rec.total_us();
  total_samples_.Append(arena_, rec.total_us());
  for (int s = 0; s < kAttrStageCount; ++s) {
    stage_total_us_[s] += rec.stage_us[s];
    stage_samples_[s].Append(arena_, rec.stage_us[s]);
  }
  if (config_.decompose_network) {
    for (int s = 0; s < kNetSubStageCount; ++s) {
      net_total_us_[s] += rec.net_us[s];
      net_samples_[s].Append(arena_, rec.net_us[s]);
    }
  }
  if (config_.keep_records) {
    records_.Append(arena_, rec);
  }
  if (config_.recorder != nullptr) {
    config_.recorder->Span(FlightComponent::kBlame, "interaction",
                           TimePoint::FromMicros(rec.sent_us),
                           TimePoint::FromMicros(rec.painted_us), rec.id, rec.total_us(),
                           rec.batch);
  }
  if (config_.tracer != nullptr) {
    EmitTrace(rec);
  }
}

void LatencyAttribution::EmitTrace(const InteractionRecord& rec) {
  Tracer* tr = config_.tracer;
  auto at = [](int64_t us) { return TimePoint::FromMicros(us); };
  auto id = static_cast<int64_t>(rec.id);
  constexpr TraceCategory kCat = TraceCategory::kBlame;

  // One span per stage boundary on the owning resource's track; the flow chain stitches
  // them together so Perfetto draws arrows following this interaction across tracks.
  tr->Span(kCat, "input-net", net_track_, at(rec.sent_us), at(rec.arrived_us),
           "interaction", id, "retransmit_us", rec.stage_us[Idx(AttrStage::kRetransmit)]);
  tr->FlowBegin(kCat, "interaction", net_track_, at(rec.sent_us), rec.id);
  if (rec.mem_done_us > rec.pass_start_us) {
    tr->Span(kCat, "mem-stall", mem_track_, at(rec.pass_start_us), at(rec.mem_done_us),
             "interaction", id);
    tr->FlowStep(kCat, "interaction", mem_track_, at(rec.pass_start_us), rec.id);
  }
  for (int h = 0; h < rec.hop_count; ++h) {
    TraceTrack track = rec.hop_encode[h] ? proto_track_ : cpu_track_;
    const char* name = rec.hop_name[h] != nullptr
                           ? rec.hop_name[h]
                           : (rec.hop_encode[h] ? "proto-encode" : "cpu-hop");
    tr->Span(kCat, name, track, at(rec.hop_start_us[h]), at(rec.hop_end_us[h]),
             "interaction", id, "service_us", rec.hop_service_us[h]);
    tr->FlowStep(kCat, "interaction", track, at(rec.hop_start_us[h]), rec.id);
  }
  tr->Span(kCat, "display-net", net_track_, at(rec.emitted_us), at(rec.delivered_us),
           "interaction", id);
  tr->FlowStep(kCat, "interaction", net_track_, at(rec.emitted_us), rec.id);
  tr->Span(kCat, "client-decode", client_track_, at(rec.delivered_us), at(rec.painted_us),
           "interaction", id);
  tr->FlowEnd(kCat, "interaction", client_track_, at(rec.painted_us), rec.id);
}

void LatencyAttribution::RefreshSketches() const {
  for (; total_consumed_ < total_samples_.size(); ++total_consumed_) {
    total_sorted_.Add(total_samples_[total_consumed_]);
  }
  for (int s = 0; s < kAttrStageCount; ++s) {
    for (; stage_consumed_[s] < stage_samples_[s].size(); ++stage_consumed_[s]) {
      stage_sorted_[s].Add(stage_samples_[s][stage_consumed_[s]]);
    }
  }
  for (int s = 0; s < kNetSubStageCount; ++s) {
    for (; net_consumed_[s] < net_samples_[s].size(); ++net_consumed_[s]) {
      net_sorted_[s].Add(net_samples_[s][net_consumed_[s]]);
    }
  }
}

AttributionResult LatencyAttribution::Collect() const {
  AttributionResult result;
  result.active = true;
  result.interactions = committed_;
  result.keystrokes = keystrokes_;
  result.minted = minted_;
  result.accounting_mismatches = mismatches_;
  int64_t stage_grand_total = 0;
  for (int s = 0; s < kAttrStageCount; ++s) {
    stage_grand_total += stage_total_us_[s];
  }
  RefreshSketches();
  result.p50_total_us = NearestRank(total_sorted_, 0.50);
  result.p99_total_us = NearestRank(total_sorted_, 0.99);
  result.max_total_us = total_sorted_.empty() ? 0 : total_sorted_.Max();
  result.total_us = total_us_sum_;
  int64_t top_p99 = -1;
  for (int s = 0; s < kAttrStageCount; ++s) {
    // degradation-hold only appears once it has accrued time: pre-degradation runs (the
    // whole golden corpus) keep their exact 8-entry stages array.
    if (s == static_cast<int>(AttrStage::kDegradationHold) && stage_total_us_[s] == 0) {
      continue;
    }
    StageSummary sum;
    sum.stage = AttrStageName(static_cast<AttrStage>(s));
    sum.count = committed_;
    sum.total_us = stage_total_us_[s];
    const PercentileSketch<int64_t>& stage_sorted = stage_sorted_[s];
    sum.p50_us = NearestRank(stage_sorted, 0.50);
    sum.p99_us = NearestRank(stage_sorted, 0.99);
    sum.max_us = stage_sorted.empty() ? 0 : stage_sorted.Max();
    sum.share = stage_grand_total > 0 ? static_cast<double>(sum.total_us) /
                                            static_cast<double>(stage_grand_total)
                                      : 0.0;
    if (committed_ > 0 && sum.p99_us > top_p99) {
      top_p99 = sum.p99_us;
      result.top_stage = sum.stage;
    }
    result.stages.push_back(std::move(sum));
  }
  result.net_mismatches = net_mismatches_;
  if (config_.decompose_network) {
    int64_t net_grand_total = 0;
    for (int s = 0; s < kNetSubStageCount; ++s) {
      net_grand_total += net_total_us_[s];
    }
    for (int s = 0; s < kNetSubStageCount; ++s) {
      StageSummary sum;
      sum.stage = NetSubStageName(static_cast<NetSubStage>(s));
      sum.count = committed_;
      sum.total_us = net_total_us_[s];
      const PercentileSketch<int64_t>& net_sorted = net_sorted_[s];
      sum.p50_us = NearestRank(net_sorted, 0.50);
      sum.p99_us = NearestRank(net_sorted, 0.99);
      sum.max_us = net_sorted.empty() ? 0 : net_sorted.Max();
      sum.share = net_grand_total > 0 ? static_cast<double>(sum.total_us) /
                                            static_cast<double>(net_grand_total)
                                      : 0.0;
      result.net_stages.push_back(std::move(sum));
    }
  }
  return result;
}

}  // namespace tcs
