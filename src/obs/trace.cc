#include "src/obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace tcs {

const char* TraceCategoryName(TraceCategory cat) {
  switch (cat) {
    case TraceCategory::kSim:
      return "sim";
    case TraceCategory::kCpu:
      return "cpu";
    case TraceCategory::kSched:
      return "sched";
    case TraceCategory::kMem:
      return "mem";
    case TraceCategory::kNet:
      return "net";
    case TraceCategory::kProto:
      return "proto";
    case TraceCategory::kSession:
      return "session";
    case TraceCategory::kFault:
      return "fault";
    case TraceCategory::kBlame:
      return "blame";
  }
  return "?";
}

Tracer::Tracer(TracerConfig config) : config_(config) {}

TraceTrack Tracer::RegisterTrack(const std::string& process, const std::string& track) {
  int32_t pid = 0;
  for (size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i] == process) {
      pid = static_cast<int32_t>(i + 1);
      break;
    }
  }
  if (pid == 0) {
    processes_.push_back(process);
    pid = static_cast<int32_t>(processes_.size());
  }
  int32_t tid = 1;
  for (const Track& t : tracks_) {
    if (t.pid == pid) {
      ++tid;
    }
  }
  tracks_.push_back(Track{pid, tid, track});
  return TraceTrack{pid, tid};
}

const char* Tracer::Intern(const std::string& s) {
  auto it = intern_index_.find(s);
  if (it != intern_index_.end()) {
    return it->second;
  }
  interned_.push_back(s);
  const char* p = interned_.back().c_str();
  intern_index_.emplace(s, p);
  return p;
}

void Tracer::Span(TraceCategory cat, const char* name, TraceTrack track, TimePoint start,
                  TimePoint end) {
  Push(Event{'X', cat, name, track, start.ToMicros(), (end - start).ToMicros(), nullptr,
             0, nullptr, 0, 0.0});
}

void Tracer::Span(TraceCategory cat, const char* name, TraceTrack track, TimePoint start,
                  TimePoint end, const char* key1, int64_t val1) {
  Push(Event{'X', cat, name, track, start.ToMicros(), (end - start).ToMicros(), key1,
             val1, nullptr, 0, 0.0});
}

void Tracer::Span(TraceCategory cat, const char* name, TraceTrack track, TimePoint start,
                  TimePoint end, const char* key1, int64_t val1, const char* key2,
                  int64_t val2) {
  Push(Event{'X', cat, name, track, start.ToMicros(), (end - start).ToMicros(), key1,
             val1, key2, val2, 0.0});
}

void Tracer::Instant(TraceCategory cat, const char* name, TraceTrack track, TimePoint t) {
  Push(Event{'i', cat, name, track, t.ToMicros(), 0, nullptr, 0, nullptr, 0, 0.0});
}

void Tracer::Instant(TraceCategory cat, const char* name, TraceTrack track, TimePoint t,
                     const char* key1, int64_t val1) {
  Push(Event{'i', cat, name, track, t.ToMicros(), 0, key1, val1, nullptr, 0, 0.0});
}

void Tracer::Instant(TraceCategory cat, const char* name, TraceTrack track, TimePoint t,
                     const char* key1, int64_t val1, const char* key2, int64_t val2) {
  Push(Event{'i', cat, name, track, t.ToMicros(), 0, key1, val1, key2, val2, 0.0});
}

void Tracer::Counter(TraceCategory cat, const char* name, TraceTrack track, TimePoint t,
                     double value) {
  Push(Event{'C', cat, name, track, t.ToMicros(), 0, nullptr, 0, nullptr, 0, value, 0});
}

void Tracer::FlowBegin(TraceCategory cat, const char* name, TraceTrack track, TimePoint t,
                       uint64_t id) {
  Push(Event{'s', cat, name, track, t.ToMicros(), 0, nullptr, 0, nullptr, 0, 0.0, id});
}

void Tracer::FlowStep(TraceCategory cat, const char* name, TraceTrack track, TimePoint t,
                      uint64_t id) {
  Push(Event{'t', cat, name, track, t.ToMicros(), 0, nullptr, 0, nullptr, 0, 0.0, id});
}

void Tracer::FlowEnd(TraceCategory cat, const char* name, TraceTrack track, TimePoint t,
                     uint64_t id) {
  Push(Event{'f', cat, name, track, t.ToMicros(), 0, nullptr, 0, nullptr, 0, 0.0, id});
}

namespace {

// JSON string escaping for names that may carry user-ish text (thread names, track names).
void AppendEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void AppendDouble(std::string& out, double v) {
  // Integral values print without a fraction so counters of counts stay tidy; the %.9g
  // fallback is deterministic for a given bit pattern.
  char buf[40];
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  out += buf;
}

}  // namespace

void Tracer::WriteJson(std::ostream& out) const {
  std::string line;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Metadata first: process and thread names in registration order.
  for (size_t i = 0; i < processes_.size(); ++i) {
    line.clear();
    if (!first) {
      line += ",";
    }
    first = false;
    line += "\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    line += std::to_string(i + 1);
    line += ",\"tid\":0,\"args\":{\"name\":\"";
    AppendEscaped(line, processes_[i].c_str());
    line += "\"}}";
    out << line;
  }
  for (const Track& t : tracks_) {
    line.clear();
    line += ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
    line += std::to_string(t.pid);
    line += ",\"tid\":";
    line += std::to_string(t.tid);
    line += ",\"args\":{\"name\":\"";
    AppendEscaped(line, t.name.c_str());
    line += "\"}}";
    out << line;
  }
  for (const Event& e : events_) {
    line.clear();
    if (!first) {
      line += ",";
    }
    first = false;
    line += "\n{\"ph\":\"";
    line.push_back(e.ph);
    line += "\",\"name\":\"";
    AppendEscaped(line, e.name);
    line += "\",\"cat\":\"";
    line += TraceCategoryName(e.cat);
    line += "\",\"pid\":";
    line += std::to_string(e.track.pid);
    line += ",\"tid\":";
    line += std::to_string(e.track.tid);
    line += ",\"ts\":";
    line += std::to_string(e.ts_us);
    if (e.ph == 'X') {
      line += ",\"dur\":";
      line += std::to_string(e.dur_us);
    }
    if (e.ph == 'i') {
      line += ",\"s\":\"t\"";
    }
    if (e.ph == 's' || e.ph == 't' || e.ph == 'f') {
      line += ",\"id\":";
      line += std::to_string(e.flow_id);
      if (e.ph == 'f') {
        // Bind the arrow head to the enclosing slice rather than the next slice start.
        line += ",\"bp\":\"e\"";
      }
    }
    if (e.ph == 'C') {
      line += ",\"args\":{\"value\":";
      AppendDouble(line, e.counter_value);
      line += "}";
    } else if (e.key1 != nullptr) {
      line += ",\"args\":{\"";
      AppendEscaped(line, e.key1);
      line += "\":";
      line += std::to_string(e.val1);
      if (e.key2 != nullptr) {
        line += ",\"";
        AppendEscaped(line, e.key2);
        line += "\":";
        line += std::to_string(e.val2);
      }
      line += "}";
    }
    line += "}";
    out << line;
  }
  out << "\n]}\n";
}

std::string Tracer::ToJson() const {
  std::ostringstream out;
  WriteJson(out);
  return out.str();
}

}  // namespace tcs
