// Named metrics (the observability layer's aggregate side).
//
// A MetricsRegistry holds counters (monotonic int64 totals), gauges (poll functions over
// live model state: run-queue depth, resident pages, link backlog, cache hit rate), and
// histograms (RunningStats streams). A PeriodicSampler snapshots every gauge into a
// util::TimeSeries on a virtual-time cadence and, when a Tracer is attached, mirrors each
// sample as a Chrome counter event so the gauges render as counter tracks in Perfetto.
//
// Registration order is the export order, so CSV/JSON output is deterministic.

#ifndef TCS_SRC_OBS_METRICS_H_
#define TCS_SRC_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/attribution.h"
#include "src/obs/trace.h"
#include "src/sim/periodic.h"
#include "src/sim/simulator.h"
#include "src/util/stats.h"
#include "src/util/time_series.h"

namespace tcs {

class FlightRecorder;
struct SloSpec;

class MetricsCounter {
 public:
  explicit MetricsCounter(std::string name) : name_(std::move(name)) {}
  void Inc(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  int64_t value_ = 0;
};

class MetricsRegistry {
 public:
  struct Gauge {
    std::string name;
    std::function<double()> poll;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Pointers stay valid for the registry's lifetime.
  MetricsCounter* AddCounter(const std::string& name);
  RunningStats* AddHistogram(const std::string& name);

  // `poll` reads live model state; it runs only when a PeriodicSampler fires.
  void AddGauge(const std::string& name, std::function<double()> poll);

  const std::vector<std::unique_ptr<MetricsCounter>>& counters() const {
    return counters_;
  }
  const std::vector<Gauge>& gauges() const { return gauges_; }
  const std::vector<std::pair<std::string, std::unique_ptr<RunningStats>>>& histograms()
      const {
    return histograms_;
  }

  // One "name,value" row per counter, then per histogram mean/max. Deterministic order.
  void WriteCountersCsv(std::ostream& out) const;

 private:
  std::vector<std::unique_ptr<MetricsCounter>> counters_;
  std::vector<Gauge> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<RunningStats>>> histograms_;
};

// Samples every registered gauge each `period` of virtual time.
class PeriodicSampler {
 public:
  PeriodicSampler(Simulator& sim, MetricsRegistry& registry, Duration period,
                  Tracer* tracer = nullptr);

  void Start(Duration initial_delay = Duration::Zero());
  void Stop();

  // The sampled series for gauge `i` (registration order), bucketed at the cadence.
  const TimeSeries& series(size_t i) const { return *series_[i]; }
  size_t gauge_count() const { return series_.size(); }
  int64_t samples_taken() const { return samples_taken_; }

  // "time_s,<gauge names...>" header then one row per sample interval (bucket means).
  void WriteCsv(std::ostream& out) const;

  // Checkpoint/restore: the sampled series, sample count, and the pending firing. The
  // gauge poll callbacks are reconstruction config; the series count must match the
  // rebuilt registry's gauge count (it is construction-derived, so a mismatch means the
  // snapshot came from a differently configured run).
  void SaveTo(SnapshotWriter& w, const Simulator& sim) const {
    w.U64(series_.size());
    for (const auto& s : series_) {
      s->SaveTo(w);
    }
    w.I64(samples_taken_);
    task_.SaveTo(w, sim);
  }
  void LoadFrom(SnapshotReader& r, EventRearm& plan) {
    uint64_t n = r.U64();
    if (n != series_.size()) {
      throw SnapshotError("sampler.series",
                          "gauge count mismatch (snapshot from a different obs config)");
    }
    for (auto& s : series_) {
      s->LoadFrom(r);
    }
    samples_taken_ = r.I64();
    task_.LoadFrom(r, plan, "metrics.sampler");
  }

 private:
  void Sample();

  Simulator& sim_;
  MetricsRegistry& registry_;
  Tracer* tracer_;
  TraceTrack track_;
  std::vector<std::unique_ptr<TimeSeries>> series_;
  PeriodicTask task_;
  int64_t samples_taken_ = 0;
};

// Everything an experiment needs to run observed: a tracer and/or metrics registry plus
// the gauge-sampling cadence. Experiments that receive a non-null ObsConfig wire the
// tracer through every layer and run a PeriodicSampler for the registry's gauges.
struct ObsConfig {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  // When set, server experiments thread interaction ids through the keystroke pipeline
  // and fill their result's `blame` block (per-stage latency attribution).
  LatencyAttribution* attribution = nullptr;
  // Always-on bounded ring of compact component records (src/obs/flight_recorder.h).
  // Null = off (one branch per would-be record at every call site).
  FlightRecorder* recorder = nullptr;
  // Declarative per-run objectives (src/obs/slo.h). When set, experiments run an
  // SloWatchdog, fill their result's `slo` block, and — lacking a `recorder` above —
  // attach a run-local FlightRecorder so violating runs still yield a full postmortem
  // bundle even with tracing off.
  const SloSpec* slo = nullptr;
  Duration sample_period = Duration::Millis(100);
  // When non-null, the experiment renders its PeriodicSampler's gauge series (CSV) here
  // before the sampler goes out of scope, so callers can persist it.
  std::string* sampler_csv = nullptr;
};

}  // namespace tcs

#endif  // TCS_SRC_OBS_METRICS_H_
