#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace tcs {

MetricsCounter* MetricsRegistry::AddCounter(const std::string& name) {
  counters_.push_back(std::make_unique<MetricsCounter>(name));
  return counters_.back().get();
}

RunningStats* MetricsRegistry::AddHistogram(const std::string& name) {
  histograms_.emplace_back(name, std::make_unique<RunningStats>());
  return histograms_.back().second.get();
}

void MetricsRegistry::AddGauge(const std::string& name, std::function<double()> poll) {
  gauges_.push_back(Gauge{name, std::move(poll)});
}

namespace {

void AppendValue(std::string& out, double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  out += buf;
}

}  // namespace

void MetricsRegistry::WriteCountersCsv(std::ostream& out) const {
  out << "metric,value\n";
  std::string line;
  for (const auto& c : counters_) {
    line.clear();
    line += c->name();
    line += ",";
    line += std::to_string(c->value());
    line += "\n";
    out << line;
  }
  for (const auto& [name, stats] : histograms_) {
    line.clear();
    line += name;
    line += "_mean,";
    AppendValue(line, stats->mean());
    line += "\n";
    line += name;
    line += "_max,";
    AppendValue(line, stats->max());
    line += "\n";
    line += name;
    line += "_count,";
    line += std::to_string(stats->count());
    line += "\n";
    out << line;
  }
}

PeriodicSampler::PeriodicSampler(Simulator& sim, MetricsRegistry& registry,
                                 Duration period, Tracer* tracer)
    : sim_(sim),
      registry_(registry),
      tracer_(tracer),
      task_(sim, period, [this] { Sample(); }) {
  if (tracer_ != nullptr) {
    track_ = tracer_->RegisterTrack("metrics", "gauges");
  }
  for (size_t i = 0; i < registry_.gauges().size(); ++i) {
    series_.push_back(std::make_unique<TimeSeries>(period));
  }
}

void PeriodicSampler::Start(Duration initial_delay) { task_.Start(initial_delay); }

void PeriodicSampler::Stop() { task_.Stop(); }

void PeriodicSampler::Sample() {
  const auto& gauges = registry_.gauges();
  // Gauges registered after construction get series on first use, keeping indexes aligned
  // with registration order.
  while (series_.size() < gauges.size()) {
    series_.push_back(std::make_unique<TimeSeries>(task_.period()));
  }
  TimePoint now = sim_.Now();
  for (size_t i = 0; i < gauges.size(); ++i) {
    double v = gauges[i].poll();
    series_[i]->Add(now, v);
    if (tracer_ != nullptr) {
      tracer_->Counter(TraceCategory::kSim, tracer_->Intern(gauges[i].name), track_, now,
                       v);
    }
  }
  ++samples_taken_;
}

void PeriodicSampler::WriteCsv(std::ostream& out) const {
  const auto& gauges = registry_.gauges();
  std::string line = "time_s";
  for (size_t i = 0; i < series_.size() && i < gauges.size(); ++i) {
    line += ",";
    line += gauges[i].name;
  }
  line += "\n";
  out << line;

  size_t buckets = 0;
  for (const auto& s : series_) {
    buckets = std::max(buckets, s->bucket_count());
  }
  char buf[40];
  double width_s = task_.period().ToSecondsF();
  for (size_t b = 0; b < buckets; ++b) {
    line.clear();
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(b) * width_s);
    line += buf;
    for (const auto& s : series_) {
      line += ",";
      if (b < s->bucket_count() && s->Count(b) > 0) {
        AppendValue(line, s->Mean(b));
      }
    }
    line += "\n";
    out << line;
  }
}

}  // namespace tcs
