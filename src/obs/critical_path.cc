#include "src/obs/critical_path.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/obs/flight_recorder.h"

namespace tcs {

namespace {

constexpr int Idx(AttrStage stage) { return static_cast<int>(stage); }
constexpr int Idx(NetSubStage stage) { return static_cast<int>(stage); }

void AppendInt(std::string* out, int64_t v) { out->append(std::to_string(v)); }

void AppendSegmentJson(std::string* out, const char* component, const char* stage,
                       int64_t start_us, int64_t end_us) {
  out->append("{\"component\":\"");
  out->append(component);
  out->append("\",\"stage\":\"");
  out->append(stage);
  out->append("\",\"start_us\":");
  AppendInt(out, start_us);
  out->append(",\"end_us\":");
  AppendInt(out, end_us);
  out->append(",\"dur_us\":");
  AppendInt(out, end_us - start_us);
  out->append("}");
}

}  // namespace

const char* WhatIfComponentName(WhatIfAdjustment::Component component) {
  switch (component) {
    case WhatIfAdjustment::Component::kLink:
      return "link";
    case WhatIfAdjustment::Component::kCpu:
      return "cpu";
    case WhatIfAdjustment::Component::kDisk:
      return "disk";
    case WhatIfAdjustment::Component::kRtt:
      return "rtt";
  }
  return "?";
}

CriticalPathGraph CriticalPathGraph::Build(const InteractionRecord& rec,
                                           const FlightRecorder* recorder) {
  CriticalPathGraph g;
  g.flow_id_ = rec.id;
  g.start_us_ = rec.sent_us;
  g.end_us_ = rec.painted_us;

  // The nodes tile [sent, painted] exactly; `cursor` is the running boundary and every
  // push asserts contiguity. Stage values are the attribution engine's telescoping
  // timestamp differences, so the boundaries reproduce the pipeline's own stamps.
  int64_t cursor = rec.sent_us;
  auto push = [&](const char* component, const char* stage, int64_t end_us) {
    assert(end_us >= cursor);
    g.nodes_.push_back(CriticalPathNode{component, stage, cursor, end_us, 0});
    cursor = end_us;
  };

  // Input leg: everything that is not retry time, then the retry penalty.
  push("net-up", AttrStageName(AttrStage::kInputNet),
       rec.sent_us + rec.stage_us[Idx(AttrStage::kInputNet)]);
  push("net-up", AttrStageName(AttrStage::kRetransmit), rec.arrived_us);

  // Wait for the pipeline: scheduler first, then any degradation coalesce hold (the
  // hold is billed as the tail of the wait — see Server::StartPipelinePass).
  const int64_t hold_us = rec.stage_us[Idx(AttrStage::kDegradationHold)];
  push("server-sched", AttrStageName(AttrStage::kSchedWait), rec.pass_start_us - hold_us);
  push("server-sched", AttrStageName(AttrStage::kDegradationHold), rec.pass_start_us);

  // Working-set page-ins.
  push("server-mem", AttrStageName(AttrStage::kMemStall), rec.mem_done_us);

  // Pipeline hops: each hop's elapsed time splits into run-queue wait and exact CPU
  // service (RunHop's completion split), wait first.
  for (int h = 0; h < rec.hop_count; ++h) {
    push("server-sched", AttrStageName(AttrStage::kSchedWait),
         rec.hop_end_us[h] - rec.hop_service_us[h]);
    push(rec.hop_encode[h] ? "server-proto" : "server-cpu",
         AttrStageName(rec.hop_encode[h] ? AttrStage::kProtoEncode
                                         : AttrStage::kCpuService),
         rec.hop_end_us[h]);
  }

  // Display leg: the five-way WAN decomposition in sub-stage (happens-before) order.
  for (int s = 0; s < kNetSubStageCount; ++s) {
    push("net-down", NetSubStageName(static_cast<NetSubStage>(s)),
         cursor + rec.net_us[s]);
  }
  assert(cursor == rec.delivered_us);

  // Client decode + blit.
  push("client", AttrStageName(AttrStage::kClientDecode), rec.painted_us);
  assert(cursor == rec.painted_us);

  // Happens-before edges: the keystroke pipeline is serially dependent, so each node
  // enables the next. (Kept explicit — extraction below is a general DAG relaxation.)
  g.edges_.reserve(g.nodes_.size() - 1);
  for (int i = 0; i + 1 < static_cast<int>(g.nodes_.size()); ++i) {
    g.edges_.push_back(CriticalPathEdge{i, i + 1});
  }

  if (recorder != nullptr) {
    // Correlate the ring's flow-id records with the stage intervals (instants count
    // against the interval containing their timestamp; spans against any overlap).
    recorder->ForEachRecord([&](const FlightRecord& r) {
      if (r.flow_id != rec.id) {
        return;
      }
      const int64_t r_start = r.ts_us;
      const int64_t r_end = r.ts_us + r.dur_us;
      for (CriticalPathNode& node : g.nodes_) {
        if (r_start < node.end_us && r_end >= node.start_us &&
            !(r_start == r_end && r_start == node.end_us)) {
          ++node.flight_records;
        }
      }
    });
  }
  return g;
}

std::vector<CriticalPathSegment> CriticalPathGraph::ExtractCriticalPath() const {
  // Longest-path relaxation in topological order (Build emits nodes topologically
  // sorted: every edge points forward). dist[i] = weight of the heaviest path ending at
  // node i, inclusive; pred[i] reconstructs it.
  const int n = static_cast<int>(nodes_.size());
  std::vector<CriticalPathSegment> path;
  if (n == 0) {
    return path;
  }
  std::vector<int64_t> dist(static_cast<size_t>(n), 0);
  std::vector<int> pred(static_cast<size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    dist[static_cast<size_t>(i)] = nodes_[static_cast<size_t>(i)].duration_us();
  }
  for (const CriticalPathEdge& e : edges_) {
    const int64_t via =
        dist[static_cast<size_t>(e.from)] + nodes_[static_cast<size_t>(e.to)].duration_us();
    if (via > dist[static_cast<size_t>(e.to)] ||
        (via == dist[static_cast<size_t>(e.to)] &&
         pred[static_cast<size_t>(e.to)] < e.from)) {
      // Ties break toward the later predecessor: deterministic, and on a chain it keeps
      // the path complete so the segment sum telescopes to end-to-end.
      dist[static_cast<size_t>(e.to)] = via;
      pred[static_cast<size_t>(e.to)] = e.from;
    }
  }
  int end = 0;
  for (int i = 1; i < n; ++i) {
    if (dist[static_cast<size_t>(i)] >= dist[static_cast<size_t>(end)]) {
      end = i;  // >= : prefer the latest sink, which on a chain is the finish node
    }
  }
  std::vector<int> order;
  for (int i = end; i != -1; i = pred[static_cast<size_t>(i)]) {
    order.push_back(i);
  }
  std::reverse(order.begin(), order.end());
  for (int i : order) {
    const CriticalPathNode& node = nodes_[static_cast<size_t>(i)];
    if (node.duration_us() == 0) {
      continue;  // zero-width interval: contributes nothing to the sum
    }
    path.push_back(CriticalPathSegment{node.component, node.stage, node.start_us,
                                       node.end_us, node.duration_us()});
  }
  return path;
}

int64_t CriticalPathGraph::SegmentSumUs(const std::vector<CriticalPathSegment>& path) {
  int64_t sum = 0;
  for (const CriticalPathSegment& seg : path) {
    sum += seg.duration_us;
  }
  return sum;
}

std::string CriticalPathGraph::ToJson() const {
  std::string out;
  out.reserve(256 + nodes_.size() * 120);
  out.append("{\"flow_id\":");
  AppendInt(&out, static_cast<int64_t>(flow_id_));
  out.append(",\"end_to_end_us\":");
  AppendInt(&out, end_to_end_us());
  out.append(",\"nodes\":[");
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) {
      out.append(",");
    }
    const CriticalPathNode& node = nodes_[i];
    out.append("{\"component\":\"");
    out.append(node.component);
    out.append("\",\"stage\":\"");
    out.append(node.stage);
    out.append("\",\"start_us\":");
    AppendInt(&out, node.start_us);
    out.append(",\"end_us\":");
    AppendInt(&out, node.end_us);
    out.append(",\"dur_us\":");
    AppendInt(&out, node.duration_us());
    out.append(",\"flight_records\":");
    AppendInt(&out, node.flight_records);
    out.append("}");
  }
  out.append("],\"edges\":[");
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) {
      out.append(",");
    }
    out.append("[");
    AppendInt(&out, edges_[i].from);
    out.append(",");
    AppendInt(&out, edges_[i].to);
    out.append("]");
  }
  out.append("],\"critical_path\":[");
  const std::vector<CriticalPathSegment> path = ExtractCriticalPath();
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) {
      out.append(",");
    }
    AppendSegmentJson(&out, path[i].component, path[i].stage, path[i].start_us,
                      path[i].end_us);
  }
  out.append("],\"critical_path_us\":");
  AppendInt(&out, SegmentSumUs(path));
  out.append("}");
  return out;
}

int64_t PredictAdjustedTotalUs(const InteractionRecord& rec,
                               const WhatIfAdjustment& adj) {
  auto rescaled = [&](int64_t affected_us) {
    assert(adj.speedup > 0.0);
    return static_cast<int64_t>(
        std::llround(static_cast<double>(affected_us) / adj.speedup));
  };
  int64_t total = rec.total_us();
  switch (adj.component) {
    case WhatIfAdjustment::Component::kLink: {
      // A faster link shrinks everything billed at the wire's rate on the display leg:
      // the bufferbloat queue ahead of the update, the retransmitted frames it waits
      // behind, and its own serialization. Propagation and jitter are delay, not rate.
      const int64_t affected = rec.net_us[Idx(NetSubStage::kQueueing)] +
                               rec.net_us[Idx(NetSubStage::kRetransmitWait)] +
                               rec.net_us[Idx(NetSubStage::kSerialization)];
      total += rescaled(affected) - affected;
      break;
    }
    case WhatIfAdjustment::Component::kCpu: {
      // Faster CPU shrinks exact service time (application hops + protocol encode).
      // Run-queue wait is left unscaled: it depends on *other* threads' service times,
      // a second-order effect the prediction deliberately excludes (see header).
      const int64_t affected = rec.stage_us[Idx(AttrStage::kCpuService)] +
                               rec.stage_us[Idx(AttrStage::kProtoEncode)];
      total += rescaled(affected) - affected;
      break;
    }
    case WhatIfAdjustment::Component::kDisk: {
      const int64_t affected = rec.stage_us[Idx(AttrStage::kMemStall)];
      total += rescaled(affected) - affected;
      break;
    }
    case WhatIfAdjustment::Component::kRtt: {
      // RTT reduction splits across the two one-way legs; each leg clamps at zero.
      const int64_t down_half = adj.rtt_delta_us / 2;
      const int64_t up_half = adj.rtt_delta_us - down_half;
      total -= std::min(down_half, rec.net_us[Idx(NetSubStage::kPropagation)]);
      total -= std::min(up_half, rec.stage_us[Idx(AttrStage::kInputNet)]);
      break;
    }
  }
  return total;
}

}  // namespace tcs
