// Bump-pointer arena and append-only columns for observability records.
//
// Attribution ingests one InteractionRecord (~500 bytes) plus nine integer samples per
// committed interaction. Backing those streams with std::vector means every growth step
// re-copies the whole history and every record commit may trigger a reallocation — at
// hundreds of thousands of commits per consolidation run the copies dominate the
// engine's cost. A bump arena replaces that with pointer arithmetic: allocation is a
// cursor increment, chunks are never moved (stable addresses), and teardown frees a
// handful of large blocks instead of walking element-by-element.
//
// ArenaColumn<T> is the append-only sequence built on top: fixed-capacity chunks
// allocated from the arena, a small chunk directory on the side, O(1) append with no
// copy-on-growth, and forward iteration for range-for consumers. T must be trivially
// destructible (the arena never runs destructors).

#ifndef TCS_SRC_OBS_ARENA_H_
#define TCS_SRC_OBS_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace tcs {

class BumpArena {
 public:
  explicit BumpArena(size_t chunk_bytes = 64 * 1024) : chunk_bytes_(chunk_bytes) {}

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  void* Allocate(size_t size, size_t align) {
    if (chunks_.empty() || !Fits(size, align)) {
      AddChunk(size + align);
    }
    Chunk& c = chunks_.back();
    size_t aligned = (c.used + align - 1) & ~(align - 1);
    c.used = aligned + size;
    bytes_allocated_ += size;
    return c.data.get() + aligned;
  }

  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "BumpArena never runs destructors");
    void* p = Allocate(n * sizeof(T), alignof(T));
    return new (p) T[n]();
  }

  size_t bytes_allocated() const { return bytes_allocated_; }
  size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t used = 0;
    size_t capacity = 0;
  };

  bool Fits(size_t size, size_t align) const {
    const Chunk& c = chunks_.back();
    size_t aligned = (c.used + align - 1) & ~(align - 1);
    return aligned + size <= c.capacity;
  }

  void AddChunk(size_t at_least) {
    size_t cap = chunk_bytes_ > at_least ? chunk_bytes_ : at_least;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(cap), 0, cap});
  }

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t bytes_allocated_ = 0;
};

template <typename T, size_t kChunkElems = 1024>
class ArenaColumn {
 public:
  static_assert(std::is_trivially_destructible_v<T>,
                "ArenaColumn elements live in a BumpArena and are never destroyed");

  void Append(BumpArena& arena, const T& value) {
    size_t slot = size_ % kChunkElems;
    if (slot == 0) {
      chunks_.push_back(arena.AllocateArray<T>(kChunkElems));
    }
    chunks_.back()[slot] = value;
    ++size_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](size_t i) const { return chunks_[i / kChunkElems][i % kChunkElems]; }

  class const_iterator {
   public:
    const_iterator(const ArenaColumn* col, size_t i) : col_(col), i_(i) {}
    const T& operator*() const { return (*col_)[i_]; }
    const T* operator->() const { return &(*col_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const ArenaColumn* col_;
    size_t i_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

 private:
  std::vector<T*> chunks_;  // directory only; element storage lives in the arena
  size_t size_ = 0;
};

}  // namespace tcs

#endif  // TCS_SRC_OBS_ARENA_H_
