// Per-interaction latency attribution: where did the milliseconds go?
//
// The paper's method is attributing user-perceived latency to a resource — processor,
// memory, or network. A LatencyAttribution engine makes that decomposition a first-class
// experiment output: every injected interaction (keystroke) is minted an id at
// workload-injection time, and the server threads that id through the full pipeline,
// splitting the end-to-end latency into exact integer-microsecond stages:
//
//   input-net     input-channel queueing + serialization + propagation + outage hold
//   retransmit    input-frame retry penalty under a lossy FaultPlan
//   sched-wait    pipeline-busy wait + run-queue wait + preemption + switch overhead
//   cpu-service   application CPU on the keystroke pipeline's non-encode hops
//   mem-stall     page-fault/disk time making the editor's working set resident
//   proto-encode  display/protocol hops (kernel display path, RDP encoder, bitmap cache)
//   display-net   display-channel queueing + serialization + propagation
//   client-decode decode + blit on the user's machine
//   degradation-hold  coalesce hold imposed by the DegradationController (only while
//                     degraded; zero — and omitted from reports — otherwise)
//
// WAN-aware decomposition: the display-net stage additionally splits into five exact
// sub-stages (propagation / serialization / bufferbloat-queueing / retransmit-wait /
// jitter) recorded in InteractionRecord::net_us. The sub-stages are timestamp
// differences against the link's wire ledger and WAN transit draws, so they telescope
// too: sum(net_us) == stage_us[display-net] exactly, checked per commit.
//
// Accounting invariant: every stage is a difference of pipeline timestamps that
// telescope, so sum(stage micros) == end-to-end micros *exactly* for every committed
// interaction. Debug builds assert it per commit; `accounting_mismatches()` exposes it to
// tests in every build type.
//
// Null-sink contract (same as the Tracer): layers hold a `LatencyAttribution*` defaulting
// to nullptr, and a disabled engine costs one branch per would-be record and zero
// allocations. Determinism contract: ids are minted in injection order, payloads carry
// only virtual-time stamps, and Collect() output is byte-identical across reruns and
// ParallelSweep worker counts.

#ifndef TCS_SRC_OBS_ATTRIBUTION_H_
#define TCS_SRC_OBS_ATTRIBUTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/arena.h"
#include "src/obs/trace.h"
#include "src/sim/time.h"
#include "src/util/percentile_sketch.h"

namespace tcs {

class FlightRecorder;

enum class AttrStage : int {
  kInputNet = 0,
  kRetransmit,
  kSchedWait,
  kCpuService,
  kMemStall,
  kProtoEncode,
  kDisplayNet,
  kClientDecode,
  // Appended last so existing stage indices (and the golden corpus's 8-stage blame
  // blocks) are unchanged; Collect() includes its summary only when its total is
  // nonzero, i.e. only for runs with an active DegradationController.
  kDegradationHold,
};

inline constexpr int kAttrStageCount = 9;

const char* AttrStageName(AttrStage stage);

// Exact decomposition of the display-net stage (WAN-aware blame). Order matters: it is
// the synthesized happens-before order of the sub-intervals inside [emitted, delivered].
enum class NetSubStage : int {
  kQueueing = 0,     // wire backlog ahead of this update (minus retransmit share)
  kRetransmitWait,   // backlog share occupied by retransmitted frames
  kSerialization,    // this update's own bits on the wire
  kPropagation,      // fixed one-way transit (LAN propagation + WAN extra_delay)
  kJitter,           // the WAN jitter draw on the last frame
};

inline constexpr int kNetSubStageCount = 5;

const char* NetSubStageName(NetSubStage stage);

// Everything known about one committed interaction (one pipeline pass; `batch` > 1 when
// repeats coalesced into it). Timestamps are virtual micros; the id and stamps are the
// only identity — no pointers, no wall clock — so records serialize deterministically.
struct InteractionRecord {
  static constexpr int kMaxHops = 8;

  uint64_t id = 0;        // minted at injection time, in injection order
  int batch = 1;          // keystrokes coalesced into this pass
  int hop_count = 0;      // pipeline hops recorded below
  int64_t sent_us = 0;       // user's machine sent the keystroke
  int64_t arrived_us = 0;    // input message reached the server
  int64_t pass_start_us = 0; // pipeline pass began (batch frozen)
  int64_t mem_done_us = 0;   // working set resident
  int64_t emitted_us = 0;    // display update queued on the link
  int64_t delivered_us = 0;  // last bit of the update delivered
  int64_t painted_us = 0;    // client decode + blit finished
  int64_t stage_us[kAttrStageCount] = {};
  // Display-net decomposition; sums to stage_us[kDisplayNet] exactly (checked per
  // commit). All zero when the serving pipeline has no attached client.
  int64_t net_us[kNetSubStageCount] = {};

  // Per-hop detail for the trace spans: [start, end] wall extent, the exact CPU service
  // charged, whether the hop is a protocol-encode stage, and its interned name (null when
  // tracing is off).
  int64_t hop_start_us[kMaxHops] = {};
  int64_t hop_end_us[kMaxHops] = {};
  int64_t hop_service_us[kMaxHops] = {};
  bool hop_encode[kMaxHops] = {};
  const char* hop_name[kMaxHops] = {};

  int64_t total_us() const { return painted_us - sent_us; }
  int64_t StageSum() const;
  int64_t NetSum() const;
};

// Aggregate view of one stage over a run: exact-microsecond totals and nearest-rank
// percentiles (nearest-rank keeps every reported value an actually observed sample, so
// percentiles stay integers and byte-identical across worker counts).
struct StageSummary {
  std::string stage;
  int64_t count = 0;     // interactions with a nonzero entry possible; always == commits
  int64_t total_us = 0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
  int64_t max_us = 0;
  double share = 0.0;    // total_us over the sum of all stages' totals
};

struct AttributionResult {
  bool active = false;
  int64_t interactions = 0;  // committed pipeline passes
  int64_t keystrokes = 0;    // sum of batch sizes over commits
  uint64_t minted = 0;       // ids handed out at injection (>= keystrokes committed)
  int64_t accounting_mismatches = 0;  // commits whose stages did not sum to the total
  int64_t total_us = 0;      // sum of end-to-end micros over interactions
  int64_t p50_total_us = 0;
  int64_t p99_total_us = 0;
  int64_t max_total_us = 0;
  // Fixed stage order. Always the 8 classic stages; degradation-hold is appended as a
  // 9th entry only when it accrued time (keeps pre-degradation reports byte-identical).
  std::vector<StageSummary> stages;
  std::string top_stage;  // largest p99 contribution; empty with no interactions
  // Display-net decomposition summaries (kNetSubStageCount entries, sub-stage order).
  // Empty unless AttributionConfig.decompose_network.
  std::vector<StageSummary> net_stages;
  int64_t net_mismatches = 0;  // commits whose net_us did not sum to display-net
};

struct AttributionConfig {
  // With a tracer, every commit emits per-stage spans on the "blame" process's
  // net/cpu/mem/proto/client tracks plus Perfetto flow events (ph "s"/"t"/"f") linking
  // one interaction's spans across those tracks.
  Tracer* tracer = nullptr;
  // With a flight recorder, every commit leaves one compact blame span (sent -> painted,
  // flow id == interaction id) in the always-on ring, so a frozen postmortem window can
  // name the exact interactions that straddled the violation.
  FlightRecorder* recorder = nullptr;
  // Retain every InteractionRecord for tests/tools (off by default: aggregation only).
  bool keep_records = false;
  // Aggregate per-sub-stage display-net decomposition samples and surface them in
  // Collect().net_stages (off by default so existing reports keep their exact bytes;
  // the per-record net_us fields and the sum invariant are maintained regardless).
  bool decompose_network = false;
};

class LatencyAttribution {
 public:
  explicit LatencyAttribution(AttributionConfig config = {});

  LatencyAttribution(const LatencyAttribution&) = delete;
  LatencyAttribution& operator=(const LatencyAttribution&) = delete;

  // Called at workload-injection time; ids are sequential from 1 in injection order.
  uint64_t MintInteraction() { return ++minted_; }

  // Ingests one finished interaction: checks the accounting invariant (asserted in debug
  // builds), aggregates per-stage samples, and emits trace spans + flow events when a
  // tracer is attached.
  void Commit(const InteractionRecord& rec);

  uint64_t minted() const { return minted_; }
  Tracer* tracer() const { return config_.tracer; }
  int64_t committed() const { return committed_; }
  int64_t accounting_mismatches() const { return mismatches_; }
  int64_t net_mismatches() const { return net_mismatches_; }

  // Deterministic aggregate: same commits in, same bytes out (no wall clock, no
  // addresses), regardless of reruns or sweep worker counts.
  AttributionResult Collect() const;

  // Empty unless config.keep_records.
  const ArenaColumn<InteractionRecord>& records() const { return records_; }

 private:
  void EmitTrace(const InteractionRecord& rec);
  // Feeds samples appended since the last Collect() into the sorted sketches.
  void RefreshSketches() const;

  AttributionConfig config_;
  uint64_t minted_ = 0;
  int64_t committed_ = 0;
  int64_t keystrokes_ = 0;
  int64_t mismatches_ = 0;
  int64_t net_mismatches_ = 0;
  int64_t total_us_sum_ = 0;
  int64_t stage_total_us_[kAttrStageCount] = {};
  int64_t net_total_us_[kNetSubStageCount] = {};
  // All per-commit storage bump-allocates from the arena: no element-wise growth copies
  // on the Commit path, teardown frees a handful of blocks.
  BumpArena arena_;
  ArenaColumn<int64_t> stage_samples_[kAttrStageCount];
  ArenaColumn<int64_t> net_samples_[kNetSubStageCount];  // decompose_network only
  ArenaColumn<int64_t> total_samples_;
  ArenaColumn<InteractionRecord> records_;
  // Incrementally maintained sorted views over the columns; Collect() merges only the
  // delta since the previous query instead of copy+sorting every stream.
  mutable PercentileSketch<int64_t> stage_sorted_[kAttrStageCount];
  mutable PercentileSketch<int64_t> net_sorted_[kNetSubStageCount];
  mutable PercentileSketch<int64_t> total_sorted_;
  mutable size_t stage_consumed_[kAttrStageCount] = {};
  mutable size_t net_consumed_[kNetSubStageCount] = {};
  mutable size_t total_consumed_ = 0;
  // Blame tracks, registered at construction (registration order == construction order).
  TraceTrack net_track_;
  TraceTrack cpu_track_;
  TraceTrack mem_track_;
  TraceTrack proto_track_;
  TraceTrack client_track_;
};

}  // namespace tcs

#endif  // TCS_SRC_OBS_ATTRIBUTION_H_
