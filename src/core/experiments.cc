#include "src/core/experiments.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <sstream>

#include "src/util/percentile_sketch.h"

#include "src/core/admission.h"
#include "src/core/run_support.h"

#include "src/cpu/nt_scheduler.h"
#include "src/metrics/latency.h"
#include "src/net/ping.h"
#include "src/net/traffic_gen.h"
#include "src/proto/lbx_protocol.h"
#include "src/proto/slim_protocol.h"
#include "src/proto/vnc_protocol.h"
#include "src/proto/rdp_protocol.h"
#include "src/proto/x_protocol.h"
#include "src/session/server.h"
#include "src/util/config_error.h"
#include "src/util/stats.h"
#include "src/workload/animation.h"
#include "src/workload/app_script.h"
#include "src/workload/memory_hog.h"
#include "src/workload/typist.h"
#include "src/workload/webpage.h"

namespace tcs {

namespace {

using namespace run_support;  // WallClock, FinishRun, ApplyObs, SamplerScope, ...

// A protocol-only harness: link, channel senders, tap, and one protocol instance.
// Experiments that exercise only the network resource use this instead of a full Server.
struct ProtocolHarness {
  ProtocolHarness(ProtocolKind kind, uint64_t seed, Duration tap_bucket,
                  CachePolicy cache_policy = CachePolicy::kLru,
                  LinkConfig link_config = {})
      : link(sim, link_config),
        display(link, HeaderModel::TcpIp()),
        input(link, HeaderModel::TcpIp()),
        tap(tap_bucket) {
    Rng rng(seed);
    switch (kind) {
      case ProtocolKind::kRdp: {
        RdpConfig cfg;
        cfg.cache.policy = cache_policy;
        protocol = std::make_unique<RdpProtocol>(sim, display, input, &tap, rng, cfg);
        break;
      }
      case ProtocolKind::kX:
        protocol = std::make_unique<XProtocol>(sim, display, input, &tap, rng);
        break;
      case ProtocolKind::kLbx:
        protocol = std::make_unique<LbxProtocol>(sim, display, input, &tap, rng);
        break;
      case ProtocolKind::kSlim:
        protocol = std::make_unique<SlimProtocol>(sim, display, input, &tap, rng);
        break;
      case ProtocolKind::kVnc: {
        auto vnc = std::make_unique<VncProtocol>(sim, display, input, &tap, rng);
        vnc->StartClientPull();
        protocol = std::move(vnc);
        break;
      }
    }
  }

  const BitmapCache* cache() const {
    auto* rdp = dynamic_cast<const RdpProtocol*>(protocol.get());
    return rdp != nullptr ? &rdp->bitmap_cache() : nullptr;
  }

  // Wires the ObsConfig's tracer through the harness's layers and registers the link
  // backlog gauge (protocol-only experiments have no cpu/pager to observe).
  void ApplyObs(const ObsConfig* obs) {
    if (obs == nullptr) {
      return;
    }
    if (obs->tracer != nullptr) {
      link.SetTracer(obs->tracer);
      protocol->SetTracer(obs->tracer);
    }
    if (obs->metrics != nullptr) {
      Link* l = &link;
      Simulator* s = &sim;
      obs->metrics->AddGauge("link_backlog_bytes", [l, s] {
        return static_cast<double>(l->BacklogBytesAt(s->Now()).count());
      });
      if (const BitmapCache* c = cache()) {
        obs->metrics->AddGauge("bitmap_cache_hit_rate",
                               [c] { return c->CumulativeHitRatio(); });
      }
    }
  }

  Simulator sim;
  Link link;
  MessageSender display;
  MessageSender input;
  ProtoTap tap;
  std::unique_ptr<DisplayProtocol> protocol;
};

AnimationLoadResult CollectLoad(const ProtocolHarness& harness, Duration duration,
                                Duration bucket, size_t warm_buckets,
                                const std::string& name) {
  AnimationLoadResult result;
  result.protocol = name;
  result.bucket = bucket;
  const TimeSeries& series = harness.tap.series(Channel::kDisplay);
  size_t buckets = static_cast<size_t>(duration.ToMicros() / bucket.ToMicros());
  double sustained_sum = 0.0;
  size_t sustained_n = 0;
  for (size_t i = 0; i < buckets; ++i) {
    double bytes = i < series.bucket_count() ? series.Sum(i) : 0.0;
    double mbps = bytes * 8.0 / bucket.ToSecondsF() / 1e6;
    result.load_mbps.push_back(mbps);
    if (i >= warm_buckets) {
      sustained_sum += mbps;
      ++sustained_n;
    }
  }
  result.mean_mbps =
      static_cast<double>(harness.tap.counted_bytes(Channel::kDisplay).count()) * 8.0 /
      duration.ToSecondsF() / 1e6;
  result.sustained_mbps = sustained_n > 0 ? sustained_sum / static_cast<double>(sustained_n)
                                          : result.mean_mbps;
  if (const BitmapCache* cache = harness.cache()) {
    result.cache_hits = cache->hits();
    result.cache_misses = cache->misses();
    result.cumulative_hit_ratio = cache->CumulativeHitRatio();
  }
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------
// Processor

IdleProfileResult RunIdleProfile(const OsProfile& profile, Duration duration,
                                 uint64_t seed) {
  WallClock::time_point t0 = WallClock::now();
  Simulator sim;
  ServerConfig cfg;
  cfg.seed = seed;
  Server server(sim, profile, cfg);
  IdleLoopProfiler profiler(server.cpu());
  server.StartDaemons();
  sim.RunUntil(TimePoint::Zero() + duration);
  profiler.Flush();

  IdleProfileResult result;
  result.os_name = profile.name;
  result.duration = duration;
  size_t buckets = static_cast<size_t>(duration.ToMicros() /
                                       profiler.utilization().bucket_width().ToMicros());
  for (size_t i = 0; i < buckets; ++i) {
    result.utilization.push_back(i < profiler.utilization().bucket_count()
                                     ? profiler.UtilizationAt(i)
                                     : 0.0);
  }
  result.cumulative = profiler.CumulativeLatencyCurve();
  result.total_busy = profiler.TotalBusy();
  FinishRun(result.run, sim, t0);
  return result;
}

TypingUnderLoadResult RunTypingUnderLoad(const OsProfile& profile, int sinks,
                                         Duration duration, uint64_t seed,
                                         int processors, const ObsConfig* obs) {
  // The single-session typing experiment is the users == 1, burst-free corner of the
  // consolidation engine; RunServerCapacity's N=1 probe reproduces it byte for byte.
  ConsolidationOptions copt;
  copt.users = 1;
  copt.duration = duration;
  copt.seed = seed;
  copt.processors = processors;
  copt.sinks = sinks;
  ConsolidationResult consolidated = RunConsolidation(profile, copt, obs);

  TypingUnderLoadResult result;
  result.os_name = consolidated.os_name;
  result.sinks = sinks;
  const UserStallStats& user = consolidated.per_user.front();
  result.avg_stall_ms = user.avg_stall_ms;
  result.max_stall_ms = user.max_stall_ms;
  result.jitter_ms = user.jitter_ms;
  result.updates = user.updates;
  result.stall_samples_us = user.stall_samples_us;
  result.blame = std::move(consolidated.blame);
  result.slo = std::move(consolidated.slo);
  result.run = consolidated.run;
  return result;
}

Duration RunMaximizeScenario(int foreground_stretch, double cpu_speed) {
  Simulator sim;
  NtSchedulerConfig sched_cfg;
  sched_cfg.foreground_stretch = foreground_stretch;
  CpuConfig cpu_cfg;
  cpu_cfg.speed = cpu_speed;
  cpu_cfg.context_switch_cost = Duration::Zero();
  Cpu cpu(sim, std::make_unique<NtScheduler>(sched_cfg), cpu_cfg);
  Thread* daemon =
      cpu.CreateThread("session-manager", ThreadClass::kDaemon, kNtSystemDaemonPriority);
  Thread* editor = cpu.CreateThread("editor", ThreadClass::kGui, kNtForegroundPriority);
  TimePoint done = TimePoint::Infinite();
  cpu.PostWork(*daemon, Duration::Millis(400));
  cpu.PostWork(*editor, Duration::Millis(500), [&] { done = sim.Now(); },
               WakeReason::kInputEvent);
  sim.Run();
  return done - TimePoint::Zero();
}

// ---------------------------------------------------------------------------
// Memory

SessionMemoryResult MeasureSessionMemory(const OsProfile& profile, bool light) {
  WallClock::time_point t0 = WallClock::now();
  Simulator sim;
  ServerConfig cfg;
  Server server(sim, profile, cfg);
  size_t frames_before = server.pager().frames_used();
  Session& session = server.Login(light);
  size_t frames_after = server.pager().frames_used();

  SessionMemoryResult result;
  result.os_name = profile.name;
  result.light = light;
  const std::vector<ProcessSpec>& processes =
      light ? profile.light_login_processes : profile.login_processes;
  for (const ProcessSpec& proc : processes) {
    result.processes.push_back(SessionMemoryRow{proc.name, proc.private_memory});
  }
  result.total = session.private_memory();
  result.total_shared = session.shared_memory();
  result.idle_system = profile.idle_system_memory;
  // Exclude the editor working set and the shared text segments (resident once
  // server-wide): the table reports the login processes' private bill only.
  size_t ws = profile.editor_working_set_pages;
  size_t shared_pages = 0;
  for (const ProcessSpec& proc : processes) {
    if (proc.shared_text.count() > 0) {
      shared_pages += std::max<size_t>(1, static_cast<size_t>(
          (proc.shared_text.count() + 4095) / 4096));
    }
  }
  result.measured_resident = Bytes::Of(
      static_cast<int64_t>(frames_after - frames_before - ws - shared_pages) * 4096);
  FinishRun(result.run, sim, t0);
  return result;
}

PagingLatencyResult RunPagingLatency(const OsProfile& profile, bool full_demand, int runs,
                                     uint64_t seed, EvictionPolicy eviction,
                                     const ObsConfig* obs) {
  RunningStats latency_ms;
  PagingLatencyResult result;
  for (int run = 0; run < runs; ++run) {
    WallClock::time_point t0 = WallClock::now();
    Simulator sim;
    ServerConfig cfg;
    cfg.seed = seed * 1000 + static_cast<uint64_t>(run);
    cfg.eviction = eviction;
    // Observe the first trial only: one server's worth of tracks, not `runs` copies.
    const ObsConfig* run_obs = run == 0 ? obs : nullptr;
    ApplyObs(cfg, run_obs);
    AttachSimHook(sim, run_obs);
    Server server(sim, profile, cfg);
    SamplerScope sampler(sim, run_obs);
    Session& session = server.Login();
    Rng run_rng(cfg.seed ^ 0xFEEDFACE);

    size_t free = server.pager().frames_free();
    size_t ws = profile.editor_working_set_pages;
    size_t login_pages = server.pager().frames_used() - ws;
    MemoryHogConfig hog_cfg;
    if (full_demand) {
      // Demand exceeds free memory by a run-varying margin. Global LRU hands the hog the
      // oldest pages first — the login's processes, then the editor's working set — so
      // the margin controls how much of the keystroke path gets stolen: from a fraction
      // of it up to all of it plus steady-state thrashing (the min/max spread of the
      // §5.2 table).
      double steal =
          profile.ws_touch_min + run_rng.NextDouble() * (1.2 - profile.ws_touch_min);
      hog_cfg.region_pages =
          free + login_pages + static_cast<size_t>(steal * static_cast<double>(ws));
    } else {
      hog_cfg.region_pages = free / 2;
    }
    MemoryHog hog(sim, server.pager(), hog_cfg);
    hog.Start();

    // Let the hog run ~30 s of user "think time", then type one key.
    TimePoint keystroke_at =
        TimePoint::Zero() + Duration::Seconds(30) +
        Duration::Micros(static_cast<int64_t>(run_rng.NextDouble() * 5e6));
    bool responded = false;
    Duration response = Duration::Zero();
    session.set_on_display_update([&](TimePoint t) {
      if (!responded) {
        responded = true;
        response = t - keystroke_at;
        sim.RequestStop();
      }
    });
    sim.At(keystroke_at, [&server, &session] { server.Keystroke(session); });
    sim.RunUntil(keystroke_at + Duration::Seconds(120));
    latency_ms.Add(responded ? response.ToMillisF() : 120000.0);
    FinishRun(result.run, sim, t0);
  }

  result.os_name = profile.name;
  result.full_demand = full_demand;
  result.runs = runs;
  result.min_ms = latency_ms.min();
  result.avg_ms = latency_ms.mean();
  result.max_ms = latency_ms.max();
  CollectBlame(result.blame, obs);
  return result;
}

// ---------------------------------------------------------------------------
// Network

ProtocolTrafficResult RunAppWorkloadTraffic(ProtocolKind kind, uint64_t seed,
                                            int steps_per_app, const ObsConfig* obs) {
  WallClock::time_point t0 = WallClock::now();
  ProtocolHarness harness(kind, seed, Duration::Seconds(1));
  harness.ApplyObs(obs);
  AttachSimHook(harness.sim, obs);
  SamplerScope sampler(harness.sim, obs);
  Rng script_rng(seed ^ 0xABCD);
  AppScript word = AppScript::WordProcessor(script_rng.Fork(), steps_per_app);
  AppScript photo = AppScript::PhotoEditor(script_rng.Fork(), steps_per_app);
  AppScript panel = AppScript::ControlPanel(script_rng.Fork(), steps_per_app);

  // The three application sessions run back to back, as in the paper's trial. Bounded
  // RunUntil (not Run) so protocols with autonomous periodic activity (VNC's client pull)
  // terminate.
  for (const AppScript* script : {&word, &photo, &panel}) {
    TimePoint end = harness.sim.Now() + script->TotalDuration();
    script->Replay(harness.sim, *harness.protocol);
    harness.sim.RunUntil(end);
  }
  harness.protocol->Flush();
  harness.sim.RunFor(Duration::Seconds(1));

  ProtocolTrafficResult result;
  result.protocol = ProtocolName(kind);
  result.input.bytes = harness.tap.counted_bytes(Channel::kInput).count();
  result.input.messages = harness.tap.messages(Channel::kInput);
  result.display.bytes = harness.tap.counted_bytes(Channel::kDisplay).count();
  result.display.messages = harness.tap.messages(Channel::kDisplay);
  result.total_bytes = result.input.bytes + result.display.bytes;
  result.total_messages = result.input.messages + result.display.messages;
  result.avg_message_size = harness.tap.AverageMessageSize();
  result.packets = harness.display.packets_sent() + harness.input.packets_sent();
  result.vip_bytes = result.total_bytes - 20 * result.packets;
  FinishRun(result.run, harness.sim, t0);
  return result;
}

AnimationLoadResult RunWebPageLoad(ProtocolKind kind, bool banner, bool marquee,
                                   Duration duration, uint64_t seed) {
  WallClock::time_point t0 = WallClock::now();
  ProtocolHarness harness(kind, seed, Duration::Seconds(1));
  WebPageConfig page_cfg;
  page_cfg.banner = banner;
  page_cfg.marquee = marquee;
  WebPage page(harness.sim, *harness.protocol, page_cfg);
  page.Open();
  harness.sim.RunUntil(TimePoint::Zero() + duration);
  page.Close();

  std::string name = ProtocolName(kind);
  name += banner && marquee ? " marquee+banner" : (banner ? " banner" : " marquee");
  // Skip the cache-warming first 15 s when judging the sustained level.
  AnimationLoadResult result = CollectLoad(harness, duration, Duration::Seconds(1), 15, name);
  FinishRun(result.run, harness.sim, t0);
  return result;
}

AnimationLoadResult RunGifAnimation(ProtocolKind kind, const GifAnimationOptions& options,
                                    const ObsConfig* obs) {
  WallClock::time_point t0 = WallClock::now();
  ProtocolHarness harness(kind, options.seed, options.bucket, options.cache_policy);
  harness.ApplyObs(obs);
  AttachSimHook(harness.sim, obs);
  SamplerScope sampler(harness.sim, obs);
  AnimationConfig anim_cfg;
  anim_cfg.id = 1;
  anim_cfg.frame_count = options.frames;
  anim_cfg.frame_period = options.frame_period;
  anim_cfg.width = options.width;
  anim_cfg.height = options.height;
  anim_cfg.compression_ratio = options.compression_ratio;
  Animation animation(harness.sim, *harness.protocol, anim_cfg);
  animation.Start();
  harness.sim.RunUntil(TimePoint::Zero() + options.duration);
  animation.Stop();

  size_t warm = std::max<size_t>(
      1, static_cast<size_t>((options.frame_period * options.frames * 2).ToMicros() /
                             options.bucket.ToMicros()));
  AnimationLoadResult result =
      CollectLoad(harness, options.duration, options.bucket, warm, ProtocolName(kind));
  FinishRun(result.run, harness.sim, t0);
  return result;
}

CacheOverflowResult RunCacheOverflow(int frames, Duration duration, uint64_t seed) {
  WallClock::time_point t0 = WallClock::now();
  ProtocolHarness harness(ProtocolKind::kRdp, seed, Duration::Seconds(1));
  auto* rdp = dynamic_cast<RdpProtocol*>(harness.protocol.get());

  // Server CPU: the RDP encoder's work (cache hits are cheap; misses re-compress the
  // frame) is executed by an encoder thread on a dedicated CPU model.
  Simulator& sim = harness.sim;
  Cpu cpu(sim, std::make_unique<NtScheduler>());
  Thread* encoder = cpu.CreateThread("rdp-encoder", ThreadClass::kDaemon, 13);
  harness.protocol->set_encode_cost_sink(
      [&cpu, encoder](Duration cost) { cpu.PostWork(*encoder, cost); });
  IdleLoopProfiler profiler(cpu, Duration::Seconds(1));

  // Warm session UI: icons and glyphs whose steady redraw keeps hitting, so the
  // cumulative ratio starts high (the ~70% starting point of Figure 6).
  for (int pass = 0; pass < 4; ++pass) {
    for (uint64_t icon = 0; icon < 20; ++icon) {
      BitmapRef ref = BitmapRef::Make(0x5E55ull << 32 | icon, 24, 24, 0.6);
      harness.protocol->SubmitDraw(DrawCommand::PutImage(ref));
    }
  }
  harness.protocol->Flush();

  // The 66-frame overflow animation: "Dateline NBC" at 5 fps (Figures 6-7 use 24 000-byte
  // compressed frames against the 1.5 MB cache: 65 fit, 66 do not).
  AnimationConfig anim_cfg;
  anim_cfg.id = 7;
  anim_cfg.frame_count = frames;
  anim_cfg.frame_period = Duration::Millis(200);
  anim_cfg.width = 200;
  anim_cfg.height = 150;
  anim_cfg.compression_ratio = 0.8;  // 30 000 raw -> 24 000 compressed
  Animation animation(sim, *harness.protocol, anim_cfg);

  CacheOverflowResult result;
  // Sample the cumulative hit ratio once per second.
  PeriodicTask sampler(sim, Duration::Seconds(1), [&] {
    result.cumulative_hit_ratio.push_back(rdp->bitmap_cache().CumulativeHitRatio());
  });
  sampler.Start(Duration::Millis(999));
  animation.Start();
  sim.RunUntil(TimePoint::Zero() + duration);
  animation.Stop();
  sampler.Stop();
  profiler.Flush();

  size_t buckets = static_cast<size_t>(duration.ToMicros() / 1000000);
  for (size_t i = 0; i < buckets; ++i) {
    result.cpu_utilization.push_back(
        i < profiler.utilization().bucket_count() ? profiler.UtilizationAt(i) : 0.0);
  }
  FinishRun(result.run, sim, t0);
  return result;
}

RttProbeResult RunRttProbe(double offered_mbps, Duration duration, uint64_t seed) {
  WallClock::time_point t0 = WallClock::now();
  Simulator sim;
  // The paper's testbed segment was shared half-duplex Ethernet: model CSMA/CD
  // contention, not just FIFO queueing.
  LinkConfig link_cfg;
  link_cfg.csma_cd = true;
  link_cfg.seed = seed ^ 0xE78E12;
  Link link(sim, link_cfg);
  PoissonTrafficGenerator gen(sim, Rng(seed), link, BitsPerSecond::MbpsF(offered_mbps),
                              Bytes::Of(1500));
  Ping ping(sim, link);
  gen.Start();
  ping.Start();
  sim.RunUntil(TimePoint::Zero() + duration);
  gen.Stop();
  ping.Stop();
  sim.RunFor(Duration::Seconds(2));  // drain in-flight echoes

  RttProbeResult result;
  result.offered_mbps = offered_mbps;
  result.mean_rtt_ms = ping.rtt().mean();
  result.rtt_variance = ping.rtt().variance();
  FinishRun(result.run, sim, t0);
  return result;
}

Bytes SessionSetupBytes(ProtocolKind kind) {
  ProtocolHarness harness(kind, 1, Duration::Seconds(1));
  return harness.protocol->session_setup_bytes();
}

SizingPoint RunServerSizing(const OsProfile& profile, int users, SizingBehavior behavior,
                            Duration duration, uint64_t seed, const ObsConfig* obs) {
  WallClock::time_point t0 = WallClock::now();
  Simulator sim;
  ServerConfig cfg;
  cfg.seed = seed;
  ApplyObs(cfg, obs);
  AttachSimHook(sim, obs);
  Server server(sim, profile, cfg);
  SamplerScope sampler(sim, obs);
  server.StartDaemons();

  struct UserRuntime {
    Session* session;
    std::unique_ptr<StallDetector> stalls;
    std::unique_ptr<Typist> typist;
    Thread* burst_thread;
    std::unique_ptr<PeriodicTask> burst_task;
  };
  std::vector<UserRuntime> runtimes;
  runtimes.reserve(static_cast<size_t>(users));
  for (int u = 0; u < users; ++u) {
    UserRuntime rt;
    rt.session = &server.Login();
    rt.stalls = std::make_unique<StallDetector>(behavior.keystroke_period);
    StallDetector* det = rt.stalls.get();
    rt.session->set_on_display_update([det](TimePoint t) { det->OnUpdate(t); });
    Session* s = rt.session;
    rt.typist = std::make_unique<Typist>(sim, [&server, s] { server.Keystroke(*s); },
                                         behavior.keystroke_period);
    rt.typist->Start(Duration::Millis(13 * u));  // staggered phases
    rt.burst_thread = server.cpu().CreateThread("app-burst", ThreadClass::kBatch,
                                                profile.sink_priority);
    Thread* bt = rt.burst_thread;
    Duration burst = behavior.burst_cpu;
    rt.burst_task = std::make_unique<PeriodicTask>(
        sim, behavior.burst_period,
        [&server, bt, burst] { server.cpu().PostWork(*bt, burst); });
    rt.burst_task->Start(Duration::Millis((199 * u) % 5000));
    runtimes.push_back(std::move(rt));
  }

  sim.RunUntil(TimePoint::Zero() + duration);

  SizingPoint point;
  point.os_name = profile.name;
  point.users = users;
  point.cpu_utilization = server.cpu().busy_time() / duration;
  double total = 0.0;
  double worst = 0.0;
  for (UserRuntime& rt : runtimes) {
    rt.typist->Stop();
    rt.burst_task->Stop();
    double stall = rt.stalls->updates() < 2 ? duration.ToMillisF()
                                            : rt.stalls->AverageStallAllGaps().ToMillisF();
    total += stall;
    worst = std::max(worst, stall);
  }
  point.avg_stall_ms = users > 0 ? total / static_cast<double>(users) : 0.0;
  point.worst_stall_ms = worst;
  CollectBlame(point.blame, obs);
  FinishRun(point.run, sim, t0);
  return point;
}

EndToEndResult RunEndToEndLatency(const OsProfile& profile, const EndToEndOptions& options,
                                  const ObsConfig* obs) {
  WallClock::time_point t0 = WallClock::now();
  Simulator sim;
  ServerConfig cfg;
  cfg.seed = options.seed;
  cfg.faults = options.faults;
  ApplyObs(cfg, obs);
  SloRuntime slo(sim, obs);
  slo.ApplyTo(cfg);
  AttachSimHook(sim, obs);
  Server server(sim, profile, cfg);
  SamplerScope sampler(sim, obs);
  server.StartDaemons();
  server.AttachClient(options.client);
  Session& session = server.Login();
  server.StartSinks(options.sinks);

  std::unique_ptr<PoissonTrafficGenerator> background;
  if (options.background_mbps > 0.0) {
    background = std::make_unique<PoissonTrafficGenerator>(
        sim, Rng(options.seed ^ 0xB06), server.link(),
        BitsPerSecond::MbpsF(options.background_mbps), Bytes::Of(1500));
    background->Start();
  }

  RunningStats input_ms;
  RunningStats server_ms;
  RunningStats display_ms;
  RunningStats client_ms;
  RunningStats total_ms;
  LatencyRecorder slo_latency;  // exact-microsecond stream for the live p99 objective
  bool slo_active = slo.active();
  session.set_on_frame_painted([&](const KeystrokeLatency& lat) {
    input_ms.Add(lat.input_net.ToMillisF());
    server_ms.Add(lat.server.ToMillisF());
    display_ms.Add(lat.display_net.ToMillisF());
    client_ms.Add(lat.client.ToMillisF());
    total_ms.Add(lat.total().ToMillisF());
    if (slo_active) {
      slo_latency.Record(lat.total());
    }
  });
  if (slo.active()) {
    slo.watchdog()->SetWorstP99Source([&slo_latency] {
      return slo_latency.PercentileMs(0.99);
    });
    slo.watchdog()->SetLinkBacklogSource([&server, &sim] {
      return server.link().BacklogBytesAt(sim.Now()).count();
    });
    slo.Start();
  }

  Typist typist(sim, [&server, &session] { server.Keystroke(session); });
  typist.Start(Duration::Seconds(2));  // past session setup and warm-up
  sim.RunUntil(TimePoint::Zero() + Duration::Seconds(2) + options.duration);
  typist.Stop();
  if (background) {
    background->Stop();
  }
  sim.RunFor(Duration::Seconds(1));  // drain in-flight updates

  EndToEndResult result;
  result.os_name = profile.name;
  result.client_name = options.client.name;
  result.input_net_ms = input_ms.mean();
  result.server_ms = server_ms.mean();
  result.display_net_ms = display_ms.mean();
  result.client_ms = client_ms.mean();
  result.total_ms = total_ms.mean();
  result.updates = total_ms.count();
  result.faults =
      server.CollectFaultStats(Duration::Seconds(2) + options.duration + Duration::Seconds(1));
  CollectBlame(result.blame, obs);
  slo.Finish(result.slo, result.faults.availability);
  FinishRun(result.run, sim, t0);
  return result;
}

ChaosPoint RunChaosPoint(const OsProfile& profile, const ChaosOptions& options,
                         const ObsConfig* obs) {
  WallClock::time_point t0 = WallClock::now();
  Simulator sim;
  ServerConfig cfg;
  cfg.seed = options.seed;
  cfg.faults.seed = options.seed ^ 0xFA017u;
  cfg.faults.link.loss_rate = options.loss_rate;
  if (options.flap_every > Duration::Zero() && options.flap_duration > Duration::Zero()) {
    cfg.faults.link.flap_every = options.flap_every;
    cfg.faults.link.flap_duration = options.flap_duration;
  }
  cfg.faults.disk.stall_rate = options.disk_stall_rate;
  cfg.faults.session.disconnect_every = options.disconnect_every;
  ApplyObs(cfg, obs);
  SloRuntime slo(sim, obs);
  slo.ApplyTo(cfg);
  // Chaos points always attribute (a local engine unless the caller supplied one): the
  // blame block is how a loss sweep shows retransmit time moving into the network stage.
  AttributionConfig attr_cfg;
  attr_cfg.tracer = obs != nullptr ? obs->tracer : nullptr;
  attr_cfg.recorder = cfg.recorder;
  LatencyAttribution local_attribution(attr_cfg);
  LatencyAttribution* attribution =
      cfg.attribution != nullptr ? cfg.attribution : &local_attribution;
  cfg.attribution = attribution;
  if (slo.active()) {
    slo.watchdog()->SetAttribution(attribution);
  }
  AttachSimHook(sim, obs);
  Server server(sim, profile, cfg);
  SamplerScope sampler(sim, obs);
  server.StartDaemons();
  server.AttachClient(ThinClientConfig::DesktopPc());
  Session& session = server.Login();
  server.StartSinks(options.sinks);

  LatencyRecorder latency;
  int64_t perceptible = 0;
  Duration threshold = options.threshold;
  session.set_on_frame_painted([&](const KeystrokeLatency& lat) {
    latency.Record(lat.total());
    if (lat.total() > threshold) {
      ++perceptible;
    }
  });
  if (slo.active()) {
    slo.watchdog()->SetWorstP99Source([&latency] { return latency.PercentileMs(0.99); });
    slo.watchdog()->SetLinkBacklogSource([&server, &sim] {
      return server.link().BacklogBytesAt(sim.Now()).count();
    });
    slo.Start();
  }

  Typist typist(sim, [&server, &session] { server.Keystroke(session); });
  typist.Start(Duration::Seconds(2));  // past session setup and warm-up
  sim.RunUntil(TimePoint::Zero() + Duration::Seconds(2) + options.duration);
  typist.Stop();
  sim.RunFor(Duration::Seconds(1));  // drain retransmissions and in-flight updates

  Duration total_run = Duration::Seconds(2) + options.duration + Duration::Seconds(1);
  ChaosPoint point;
  point.os_name = profile.name;
  point.loss_rate = options.loss_rate;
  point.flap_ms = options.flap_duration.ToMillisF();
  point.updates = latency.count();
  if (latency.count() > 0) {
    // Exact-microsecond percentiles, rendered as ms only here at serialization.
    point.p50_ms = latency.PercentileMs(0.50);
    point.p99_ms = latency.PercentileMs(0.99);
    point.mean_ms = static_cast<double>(latency.Mean().ToMicros()) / 1000.0;
    point.perceptible_fraction =
        static_cast<double>(perceptible) / static_cast<double>(latency.count());
  }
  point.crosses_threshold = point.p99_ms > threshold.ToMillisF();
  point.faults = server.CollectFaultStats(total_run);
  point.link_frames_sent = server.link().frames_sent();
  point.link_frames_delivered = server.link().frames_delivered();
  point.link_frames_lost = server.link().frames_lost();
  point.retransmissions = server.reliable() != nullptr
                              ? static_cast<int64_t>(server.reliable()->retransmissions())
                              : 0;
  point.blame = attribution->Collect();
  slo.Finish(point.slo, point.faults.availability);
  FinishRun(point.run, sim, t0);
  return point;
}

// ---------------------------------------------------------------------------
// WAN pathology sweep + graceful degradation

WanProfile WanProfileByName(const std::string& name) {
  WanProfile p;
  p.name = name;
  if (name == "dsl") {
    // Consumer ADSL tail: asymmetric, modest RTT, rare short bursts, and the classic
    // oversized modem buffer — ~780 ms of bufferbloat at line rate when pinned.
    p.extra_delay = Duration::Millis(20);
    p.jitter = Duration::Millis(5);
    p.down_rate = BitsPerSecond::Mbps(4);
    p.up_rate = BitsPerSecond::Kbps(512);
    p.queue_bytes = Bytes::KiB(384);
    p.ge_p_good_to_bad = 0.002;
    p.ge_p_bad_to_good = 0.2;
    p.ge_loss_good = 0.0005;
    p.ge_loss_bad = 0.08;
  } else if (name == "lte") {
    // Cellular: decent rates but jittery, bursty loss at cell-edge, and notoriously deep
    // eNB buffers — over a second of bufferbloat when the downlink saturates.
    p.extra_delay = Duration::Millis(35);
    p.jitter = Duration::Millis(15);
    p.down_rate = BitsPerSecond::Mbps(6);
    p.up_rate = BitsPerSecond::Mbps(2);
    p.queue_bytes = Bytes::KiB(768);
    p.ge_p_good_to_bad = 0.005;
    p.ge_p_bad_to_good = 0.15;
    p.ge_loss_good = 0.001;
    p.ge_loss_bad = 0.15;
  } else if (name == "satellite") {
    // GEO hop: enormous fixed delay, narrow uplink, long queues, weather-fade bursts.
    p.extra_delay = Duration::Millis(280);
    p.jitter = Duration::Millis(30);
    p.down_rate = BitsPerSecond::Mbps(3);
    p.up_rate = BitsPerSecond::Kbps(768);
    p.queue_bytes = Bytes::KiB(192);
    p.ge_p_good_to_bad = 0.002;
    p.ge_p_bad_to_good = 0.25;
    p.ge_loss_good = 0.0005;
    p.ge_loss_bad = 0.05;
  } else if (name == "congested-office") {
    // An oversubscribed branch-office uplink: symmetric but starved for capacity, a
    // shallow router queue that tail-drops readily, and contention-driven loss bursts.
    p.extra_delay = Duration::Millis(5);
    p.jitter = Duration::Millis(10);
    p.down_rate = BitsPerSecond::Mbps(2);
    p.up_rate = BitsPerSecond::Mbps(2);
    p.queue_bytes = Bytes::KiB(48);
    p.ge_p_good_to_bad = 0.004;
    p.ge_p_bad_to_good = 0.3;
    p.ge_loss_good = 0.002;
    p.ge_loss_bad = 0.12;
  } else {
    throw ConfigError("WanProfile", "unknown WAN profile: " + name +
                                        " (expected dsl, lte, satellite, or"
                                        " congested-office)");
  }
  return p;
}

std::vector<std::string> WanProfileNames() {
  return {"dsl", "lte", "satellite", "congested-office"};
}

WanPoint RunWanPoint(const OsProfile& profile, const WanOptions& options,
                     const ObsConfig* obs) {
  WallClock::time_point t0 = WallClock::now();
  Simulator sim;
  ServerConfig cfg;
  cfg.seed = options.seed;
  cfg.faults.seed = options.seed ^ 0xFA017u;
  // An all-empty profile injects nothing: LinkFaultPlan.Any() stays false, no injector or
  // reliable channel is constructed, and the run is byte-identical to a LAN run.
  cfg.faults.link.wan.extra_delay = options.profile.extra_delay;
  cfg.faults.link.wan.jitter = options.profile.jitter;
  cfg.faults.link.wan.down_rate = options.profile.down_rate;
  cfg.faults.link.wan.up_rate = options.profile.up_rate;
  cfg.faults.link.wan.queue_bytes = options.profile.queue_bytes;
  cfg.faults.link.wan.ge_p_good_to_bad = options.profile.ge_p_good_to_bad;
  cfg.faults.link.wan.ge_p_bad_to_good = options.profile.ge_p_bad_to_good;
  cfg.faults.link.wan.ge_loss_good = options.profile.ge_loss_good;
  cfg.faults.link.wan.ge_loss_bad = options.profile.ge_loss_bad;
  cfg.degradation.enabled = options.degrade;
  // Arm the controller only once the warm-up (login storm, first desktop paint) is over,
  // so its ledger records WAN congestion rather than setup transients.
  cfg.degradation.start_delay = Duration::Seconds(2);
  if (options.profile.queue_bytes.count() > 0) {
    // Calibrate the pressure ladder to the bottleneck queue: a backlog pinned at the
    // drop-tail bound (bufferbloat saturation) engages the deepest level, and each
    // quarter of the queue engages one more step.
    cfg.degradation.level_step = Bytes::Of(
        std::max<int64_t>(Bytes::KiB(8).count(), options.profile.queue_bytes.count() / 4));
  }
  // Virtual hardware for the what-if achieved arm. Gated on != 1.0 so stock cells keep
  // their exact bytes (no float math touches the configs on the default path).
  if (options.cpu_speed != 1.0) {
    cfg.cpu.speed *= options.cpu_speed;
  }
  if (options.disk_speedup != 1.0) {
    const double k = options.disk_speedup;
    auto faster = [k](Duration d) {
      return Duration::Micros(
          std::llround(static_cast<double>(d.ToMicros()) / k));
    };
    cfg.disk.positioning_mean = faster(cfg.disk.positioning_mean);
    cfg.disk.positioning_stddev = faster(cfg.disk.positioning_stddev);
    cfg.disk.positioning_min = faster(cfg.disk.positioning_min);
    cfg.disk.transfer_rate = BitsPerSecond::Of(
        std::llround(static_cast<double>(cfg.disk.transfer_rate.bps()) * k));
  }
  ApplyObs(cfg, obs);
  SloRuntime slo(sim, obs);
  slo.ApplyTo(cfg);
  // WAN points always attribute: the blame table is how degradation shows its work
  // (coalesce holds land in sched-wait, network pathology in the net stages).
  AttributionConfig attr_cfg;
  attr_cfg.tracer = obs != nullptr ? obs->tracer : nullptr;
  attr_cfg.recorder = cfg.recorder;
  LatencyAttribution local_attribution(attr_cfg);
  LatencyAttribution* attribution =
      cfg.attribution != nullptr ? cfg.attribution : &local_attribution;
  cfg.attribution = attribution;
  if (slo.active()) {
    slo.watchdog()->SetAttribution(attribution);
  }
  AttachSimHook(sim, obs);
  Server server(sim, profile, cfg);
  SamplerScope sampler(sim, obs);
  server.StartDaemons();
  server.AttachClient(ThinClientConfig::DesktopPc());

  const Duration start_delay = Duration::Seconds(2);  // past session setup and warm-up
  // A user counts as starved while some keystroke echo has been pending for longer than
  // starve_after: per painted batch the window [keystroke + starve_after, painted],
  // unioned via counted_through so overlapping batches are not double-billed. This
  // catches both total paint droughts and sustained bufferbloat lag (echoes flowing, but
  // every one of them seconds old).
  struct WanUser {
    Session* session = nullptr;
    std::unique_ptr<Typist> typist;
    LatencyRecorder latency;
    TimePoint counted_through;       // starved time accounted up to here
    bool pending = false;            // a keystroke awaiting its echo
    TimePoint pending_since;
    Duration starved = Duration::Zero();
    int64_t perceptible = 0;
  };
  std::vector<WanUser> users(static_cast<size_t>(options.users));
  for (size_t u = 0; u < users.size(); ++u) {
    WanUser& wu = users[u];
    wu.session = &server.Login();
    wu.counted_through = TimePoint::Zero() + start_delay;
    Duration starve_after = options.starve_after;
    WanUser* wp = &wu;
    wu.session->set_on_frame_painted(
        [wp, starve_after, threshold = options.threshold](const KeystrokeLatency& lat) {
          wp->latency.Record(lat.total());
          if (lat.total() > threshold) {
            ++wp->perceptible;
          }
          TimePoint painted = lat.keystroke_at + lat.total();
          TimePoint from = std::max(lat.keystroke_at + starve_after, wp->counted_through);
          if (painted > from) {
            wp->starved += painted - from;
          }
          if (painted > wp->counted_through) {
            wp->counted_through = painted;
          }
          wp->pending = false;
        });
    Session* s = wu.session;
    wu.typist = std::make_unique<Typist>(sim,
                                         [&server, &sim, s, wp] {
                                           if (!wp->pending) {
                                             wp->pending = true;
                                             wp->pending_since = sim.Now();
                                           }
                                           server.Keystroke(*s);
                                         },
                                         options.think_time);
    wu.typist->Start(start_delay + Duration::Millis(7) * static_cast<int64_t>(u));
  }

  // The background media session: a light login playing unique-frame video into the
  // narrow downlink — the pressure source the degradation ladder sacrifices first.
  Session* background_session = nullptr;
  std::unique_ptr<Animation> background;
  if (options.background_session) {
    background_session = &server.Login(/*light_session=*/true);
    server.SetBackground(*background_session, true);
    AnimationConfig ac;
    ac.id = 0x8AC6;
    // ~4.7 Mbps of media: heavier than every profile's downlink, so without degradation
    // the drop-tail queue sits pinned at its bound and interactive echoes tail-drop too.
    ac.width = 512;
    ac.height = 384;
    ac.frame_period = Duration::Millis(100);  // 10 fps media
    // Every frame unique over the run so the bitmap cache cannot absorb the stream.
    ac.frame_count = static_cast<int>(options.duration / ac.frame_period) + 64;
    ac.compression_ratio = 0.3;
    background = std::make_unique<Animation>(sim, background_session->protocol(), ac);
    background->set_frame_gate([&server] {
      DegradationController* d = server.degradation();
      if (d == nullptr) {
        return true;
      }
      if (d->BackgroundPaused()) {
        return false;
      }
      return !d->ShouldDropAnimationFrame();
    });
    background->Start(start_delay);
  }

  if (slo.active()) {
    slo.watchdog()->SetWorstP99Source([&users] {
      double worst = 0.0;
      for (const WanUser& wu : users) {
        worst = std::max(worst, wu.latency.PercentileMs(0.99));
      }
      return worst;
    });
    slo.watchdog()->SetStarvationSource([&users, &sim, starve_after =
                                             options.starve_after] {
      // Live view: fraction of users with an echo pending beyond the starvation
      // threshold right now.
      int starved = 0;
      for (const WanUser& wu : users) {
        if (wu.pending && sim.Now() - wu.pending_since > starve_after) {
          ++starved;
        }
      }
      return users.empty() ? 0.0
                           : static_cast<double>(starved) /
                                 static_cast<double>(users.size());
    });
    slo.watchdog()->SetLinkBacklogSource([&server, &sim] {
      return server.link().BacklogBytesAt(sim.Now()).count();
    });
    slo.Start();
  }

  sim.RunUntil(TimePoint::Zero() + start_delay + options.duration);
  for (WanUser& wu : users) {
    wu.typist->Stop();
  }
  if (background != nullptr) {
    background->Stop();
  }
  sim.RunFor(Duration::Seconds(1));  // drain retransmissions and in-flight updates

  // Close each user's final paint gap at the post-drain horizon.
  TimePoint horizon = sim.Now();
  Duration active = horizon - (TimePoint::Zero() + start_delay);
  Duration total_run = start_delay + options.duration + Duration::Seconds(1);

  WanPoint point;
  point.os_name = profile.name;
  point.profile = options.profile.name;
  point.degrade = options.degrade;
  point.users = options.users;
  double mean_us_sum = 0.0;
  double worst_starved = 0.0;
  double starved_sum = 0.0;
  int64_t perceptible = 0;
  for (WanUser& wu : users) {
    // Close a still-pending echo at the horizon: starved from pending_since +
    // starve_after (or wherever accounting already reached) to the end of the run.
    if (wu.pending) {
      TimePoint from =
          std::max(wu.pending_since + options.starve_after, wu.counted_through);
      if (horizon > from) {
        wu.starved += horizon - from;
      }
    }
    double starved_frac =
        active > Duration::Zero() ? std::min(1.0, wu.starved / active) : 0.0;
    worst_starved = std::max(worst_starved, starved_frac);
    starved_sum += starved_frac;
    point.worst_p99_ms = std::max(point.worst_p99_ms, wu.latency.PercentileMs(0.99));
    point.updates += wu.latency.count();
    perceptible += wu.perceptible;
    // Count-weighted aggregate mean from the exact per-user microsecond accumulators.
    mean_us_sum += static_cast<double>(wu.latency.Mean().ToMicros()) *
                   static_cast<double>(wu.latency.count());
  }
  point.mean_ms =
      point.updates > 0 ? mean_us_sum / static_cast<double>(point.updates) / 1000.0 : 0.0;
  point.perceptible_fraction =
      point.updates > 0
          ? static_cast<double>(perceptible) / static_cast<double>(point.updates)
          : 0.0;
  point.worst_starved_fraction = worst_starved;
  point.faults = server.CollectFaultStats(total_run);
  double mean_starved =
      users.empty() ? 0.0 : starved_sum / static_cast<double>(users.size());
  // Effective availability: the link's own availability (outage-driven; 1.0 for pure WAN
  // pathology) scaled by the fraction of user time frames actually flowed.
  double link_avail = point.faults.active ? point.faults.availability : 1.0;
  point.availability = link_avail * (1.0 - mean_starved);
  if (DegradationController* d = server.degradation()) {
    for (const DegradationTransition& tr : d->transitions()) {
      point.degradation_peak_level = std::max(point.degradation_peak_level, tr.to);
    }
    point.degradation_transitions = static_cast<int64_t>(d->transitions().size());
    point.degraded_seconds = d->DegradedTimeThrough(horizon).ToSecondsF();
    point.animation_frames_skipped = d->animation_frames_dropped();
  }
  if (background != nullptr) {
    point.background_frames_drawn = background->frames_drawn();
  }
  point.blame = attribution->Collect();
  slo.Finish(point.slo, point.availability);
  FinishRun(point.run, sim, t0);
  return point;
}

// ---------------------------------------------------------------------------
// Counterfactual what-if analysis

WhatIfResult RunWhatIf(const OsProfile& profile, const WhatIfOptions& options,
                       const ObsConfig* obs) {
  WhatIfResult result;
  result.os_name = profile.name;
  result.profile = options.wan.profile.name;
  result.component = WhatIfComponentName(options.adjust.component);
  result.speedup = options.adjust.speedup;
  result.rtt_delta_us = options.adjust.rtt_delta_us;

  // Baseline arm: the caller's observability plus a record-retaining attribution engine —
  // the critical-path model needs every InteractionRecord, and the report's blame table
  // the display-net decomposition sub-stages.
  ObsConfig baseline_obs = obs != nullptr ? *obs : ObsConfig{};
  AttributionConfig attr_cfg;
  attr_cfg.tracer = baseline_obs.tracer;
  attr_cfg.recorder = baseline_obs.recorder;
  attr_cfg.keep_records = true;
  attr_cfg.decompose_network = true;
  LatencyAttribution attribution(attr_cfg);
  baseline_obs.attribution = &attribution;
  result.baseline = RunWanPoint(profile, options.wan, &baseline_obs);

  // Predicted arm: replay every baseline record's critical path under the virtual
  // speedup. Building the graph re-checks the tentpole invariant (segment sum equals
  // end-to-end) on the way; the p99 estimator is the attribution engine's nearest-rank,
  // so predicted and achieved percentiles are directly comparable.
  PercentileSketch<int64_t> predicted;
  for (const InteractionRecord& rec : attribution.records()) {
    CriticalPathGraph graph = CriticalPathGraph::Build(rec);
    if (CriticalPathGraph::SegmentSumUs(graph.ExtractCriticalPath()) != rec.total_us()) {
      ++result.critical_path_mismatches;
    }
    predicted.Add(PredictAdjustedTotalUs(rec, options.adjust));
  }
  result.interactions = static_cast<int64_t>(attribution.records().size());
  result.baseline_p99_us = result.baseline.blame.p99_total_us;
  result.predicted_p99_us = predicted.empty() ? 0 : predicted.NearestRank(0.99);

  // Achieved arm: re-simulate with the counterfactual applied to the hardware model
  // itself, so every second-order effect (queues draining faster, fewer RTO expiries,
  // different batch boundaries) plays out for real.
  WanOptions adjusted = options.wan;
  switch (options.adjust.component) {
    case WhatIfAdjustment::Component::kLink: {
      auto scaled = [&](BitsPerSecond r) {
        // 0 is the "keep the LAN rate" sentinel: a pure-LAN cell's wire is already the
        // link config's own rate and stays untouched.
        return r.bps() > 0
                   ? BitsPerSecond::Of(std::llround(static_cast<double>(r.bps()) *
                                                    options.adjust.speedup))
                   : r;
      };
      adjusted.profile.down_rate = scaled(adjusted.profile.down_rate);
      adjusted.profile.up_rate = scaled(adjusted.profile.up_rate);
      break;
    }
    case WhatIfAdjustment::Component::kCpu:
      adjusted.cpu_speed *= options.adjust.speedup;
      break;
    case WhatIfAdjustment::Component::kDisk:
      adjusted.disk_speedup *= options.adjust.speedup;
      break;
    case WhatIfAdjustment::Component::kRtt: {
      // extra_delay is one-way transit, so cutting it by d/2 cuts the RTT by d.
      const int64_t cut_us = std::min(options.adjust.rtt_delta_us / 2,
                                      adjusted.profile.extra_delay.ToMicros());
      adjusted.profile.extra_delay =
          adjusted.profile.extra_delay - Duration::Micros(cut_us);
      break;
    }
  }
  ObsConfig adjusted_obs = obs != nullptr ? *obs : ObsConfig{};
  AttributionConfig adj_attr_cfg;
  adj_attr_cfg.tracer = adjusted_obs.tracer;
  adj_attr_cfg.recorder = adjusted_obs.recorder;
  adj_attr_cfg.decompose_network = true;
  LatencyAttribution adjusted_attribution(adj_attr_cfg);
  adjusted_obs.attribution = &adjusted_attribution;
  result.adjusted = RunWanPoint(profile, adjusted, &adjusted_obs);

  result.achieved_p99_us = result.adjusted.blame.p99_total_us;
  result.predicted_delta_us = result.baseline_p99_us - result.predicted_p99_us;
  result.achieved_delta_us = result.baseline_p99_us - result.achieved_p99_us;
  result.run.events_executed =
      result.baseline.run.events_executed + result.adjusted.run.events_executed;
  result.run.pending_events =
      result.baseline.run.pending_events + result.adjusted.run.pending_events;
  result.run.wall_ms = result.baseline.run.wall_ms + result.adjusted.run.wall_ms;
  return result;
}

}  // namespace tcs
