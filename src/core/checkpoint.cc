#include "src/core/checkpoint.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/run_support.h"
#include "src/metrics/latency.h"
#include "src/session/server.h"
#include "src/sim/periodic.h"
#include "src/util/config_error.h"
#include "src/workload/typist.h"

namespace tcs {

namespace {

using namespace run_support;

// Per-user stall instrumentation: the StallDetector keeps Figure-3 aggregates, the
// LatencyRecorder keeps the exact-microsecond per-gap samples that make consolidation
// results byte-comparable. Lives behind a unique_ptr so callbacks hold stable pointers.
struct StallTap {
  explicit StallTap(Duration period) : stalls(period), period_us(period.ToMicros()) {}

  void OnUpdate(TimePoint t) {
    stalls.OnUpdate(t);
    if (have_last) {
      int64_t gap_us = (t - last).ToMicros() - period_us;
      samples.Record(Duration::Micros(std::max<int64_t>(0, gap_us)));
    }
    have_last = true;
    last = t;
  }

  // Checkpoint/restore: both accumulators plus the gap edge. `period_us` is
  // construction config.
  void SaveTo(SnapshotWriter& w) const {
    stalls.SaveTo(w);
    samples.SaveTo(w);
    w.Bool(have_last);
    w.Time(last);
  }
  void LoadFrom(SnapshotReader& r) {
    stalls.LoadFrom(r);
    samples.LoadFrom(r);
    have_last = r.Bool();
    last = r.Time();
  }

  StallDetector stalls;
  LatencyRecorder samples;
  int64_t period_us;
  bool have_last = false;
  TimePoint last;
};

bool WanActive(const WanProfile& p) {
  return p.extra_delay > Duration::Zero() || p.jitter > Duration::Zero() ||
         p.down_rate.bps() > 0 || p.up_rate.bps() > 0 || p.queue_bytes.count() > 0 ||
         p.ge_p_good_to_bad > 0.0 || p.ge_loss_good > 0.0 || p.ge_loss_bad > 0.0;
}

// Mirrors RunWanPoint's WAN wiring onto a consolidation config. Gated so the default
// (no WAN, no degradation) path leaves the config untouched and the run byte-identical
// to what RunConsolidation always produced.
void ApplyWanKnobs(ServerConfig& cfg, const ConsolidationOptions& o) {
  if (!WanActive(o.wan) && !o.degrade) {
    return;
  }
  cfg.faults.seed = o.seed ^ 0xFA017u;
  cfg.faults.link.wan.extra_delay = o.wan.extra_delay;
  cfg.faults.link.wan.jitter = o.wan.jitter;
  cfg.faults.link.wan.down_rate = o.wan.down_rate;
  cfg.faults.link.wan.up_rate = o.wan.up_rate;
  cfg.faults.link.wan.queue_bytes = o.wan.queue_bytes;
  cfg.faults.link.wan.ge_p_good_to_bad = o.wan.ge_p_good_to_bad;
  cfg.faults.link.wan.ge_p_bad_to_good = o.wan.ge_p_bad_to_good;
  cfg.faults.link.wan.ge_loss_good = o.wan.ge_loss_good;
  cfg.faults.link.wan.ge_loss_bad = o.wan.ge_loss_bad;
  cfg.degradation.enabled = o.degrade;
  // Arm the controller only once the warm-up (login storm, first desktop paint) is
  // over, so its ledger records WAN congestion rather than setup transients.
  cfg.degradation.start_delay = Duration::Seconds(2);
  if (o.wan.queue_bytes.count() > 0) {
    cfg.degradation.level_step = Bytes::Of(std::max<int64_t>(
        Bytes::KiB(8).count(), o.wan.queue_bytes.count() / 4));
  }
}

}  // namespace

const char* CheckpointSectionName(uint32_t tag) {
  if (tag == 1) {
    return "kernel";
  }
  if (tag == kCheckpointDriverSection) {
    return "driver";
  }
  return ServerSectionName(tag);
}

struct ConsolidationRun::Impl {
  struct UserRuntime {
    Session* session = nullptr;
    std::unique_ptr<StallTap> tap;
    std::unique_ptr<Typist> typist;
    std::unique_ptr<PeriodicTask> burst_task;
  };

  OsProfile profile;
  ConsolidationOptions options;
  const ObsConfig* obs = nullptr;
  WallClock::time_point t0;
  Simulator sim;
  ServerConfig cfg;
  std::unique_ptr<SloRuntime> slo;
  std::unique_ptr<Server> server;
  std::unique_ptr<SamplerScope> sampler;
  std::vector<UserRuntime> runtimes;
  bool finished = false;
};

ConsolidationRun::ConsolidationRun(const OsProfile& profile,
                                   const ConsolidationOptions& options_in,
                                   const ObsConfig* obs)
    : impl_(std::make_unique<Impl>()) {
  Impl& im = *impl_;
  im.profile = profile;
  im.options = Validated(options_in);
  im.obs = obs;
  im.t0 = WallClock::now();
  const ConsolidationOptions& options = im.options;
  ServerConfig& cfg = im.cfg;
  cfg.seed = options.seed;
  cfg.cpu.processors = options.processors;
  cfg.ram = options.ram;
  cfg.eviction = options.eviction;
  ApplyWanKnobs(cfg, options);
  ApplyObs(cfg, obs);
  im.slo = std::make_unique<SloRuntime>(im.sim, obs);
  im.slo->ApplyTo(cfg);
  AttachSimHook(im.sim, obs);
  im.server = std::make_unique<Server>(im.sim, im.profile, cfg);
  im.sampler = std::make_unique<SamplerScope>(im.sim, obs);
  Server& server = *im.server;
  Simulator& sim = im.sim;
  server.StartDaemons();

  im.runtimes.reserve(static_cast<size_t>(options.users));
  // Login + instrument first: session setup traffic and text-segment sharing happen in
  // login order, exactly as they would on a morning shift start.
  for (int u = 0; u < options.users; ++u) {
    Impl::UserRuntime rt;
    rt.session = &server.Login();
    rt.tap = std::make_unique<StallTap>(options.keystroke_period);
    StallTap* tap = rt.tap.get();
    rt.session->set_on_display_update([tap](TimePoint t) { tap->OnUpdate(t); });
    Session* s = rt.session;
    rt.typist = std::make_unique<Typist>(sim, [&server, s] { server.Keystroke(*s); },
                                         options.keystroke_period);
    rt.typist->Start(options.start_delay +
                     Duration::Micros(options.stagger.ToMicros() * u));
    if (options.burst_cpu > Duration::Zero()) {
      Thread* bt = server.cpu().CreateThread("app-burst", ThreadClass::kBatch,
                                             im.profile.sink_priority);
      Duration burst = options.burst_cpu;
      rt.burst_task = std::make_unique<PeriodicTask>(
          sim, options.burst_period,
          [&server, bt, burst] { server.cpu().PostWork(*bt, burst); });
      rt.burst_task->Start(Duration::Millis((199 * u) % 5000));  // staggered phases
    }
    im.runtimes.push_back(std::move(rt));
  }
  server.StartSinks(options.sinks);

  if (im.slo->active()) {
    // Live p99 is over samples seen so far (a user who hasn't produced two updates yet
    // contributes nothing live); total starvation is a whole-run objective and only
    // scored by FinishRun, so warm-up can't trip it.
    std::vector<Impl::UserRuntime>* runtimes = &im.runtimes;
    im.slo->watchdog()->SetWorstP99Source([runtimes] {
      double worst = 0.0;
      for (const Impl::UserRuntime& rt : *runtimes) {
        worst = std::max(worst, rt.tap->samples.PercentileMs(0.99));
      }
      return worst;
    });
    im.slo->watchdog()->SetStarvationSource([runtimes] {
      int starved = 0;
      for (const Impl::UserRuntime& rt : *runtimes) {
        if (rt.tap->stalls.updates() < 2) {
          ++starved;
        }
      }
      return static_cast<double>(starved) / static_cast<double>(runtimes->size());
    });
    im.slo->watchdog()->SetLinkBacklogSource([&server, &sim] {
      return server.link().BacklogBytesAt(sim.Now()).count();
    });
    im.slo->Start();
  }
}

ConsolidationRun::~ConsolidationRun() = default;

void ConsolidationRun::RunUntil(TimePoint t) { impl_->sim.RunUntil(t); }

void ConsolidationRun::RunToEnd() { RunUntil(end_time()); }

TimePoint ConsolidationRun::end_time() const {
  return TimePoint::Zero() + impl_->options.start_delay + impl_->options.duration;
}

Simulator& ConsolidationRun::sim() { return impl_->sim; }
const Simulator& ConsolidationRun::sim() const { return impl_->sim; }
Server& ConsolidationRun::server() { return *impl_->server; }

bool ConsolidationRun::SloViolated() const {
  return impl_->slo->active() && impl_->slo->watchdog()->violated();
}

int64_t ConsolidationRun::SloViolatedAtUs() const {
  return impl_->slo->active() ? impl_->slo->watchdog()->violated_at_us() : -1;
}

std::vector<uint8_t> ConsolidationRun::Snapshot() const {
  const Impl& im = *impl_;
  SnapshotWriter w;
  SaveKernel(w, im.sim);
  im.server->SaveTo(w);
  w.BeginSection(kCheckpointDriverSection);
  w.U64(im.runtimes.size());
  for (const Impl::UserRuntime& rt : im.runtimes) {
    rt.tap->SaveTo(w);
    rt.typist->SaveTo(w, im.sim);
    w.Bool(rt.burst_task != nullptr);
    if (rt.burst_task != nullptr) {
      rt.burst_task->SaveTo(w, im.sim);
    }
  }
  w.Bool(im.slo->active());
  if (im.slo->active()) {
    im.slo->watchdog()->SaveTo(w);
  }
  PeriodicSampler* sampler = im.sampler->sampler();
  w.Bool(sampler != nullptr);
  if (sampler != nullptr) {
    sampler->SaveTo(w, im.sim);
  }
  w.EndSection();
  return w.Finish();
}

void ConsolidationRun::Restore(const std::vector<uint8_t>& blob) {
  Impl& im = *impl_;
  SnapshotReader r(blob);
  KernelState ks = LoadKernel(r);
  EventRearm plan;
  im.server->RegisterRestorers(plan);
  // Drop every construction-time event; the plan re-inserts the snapshot's pending set
  // with the original (time, sequence) pairs.
  ResetKernel(im.sim, ks);
  im.server->LoadFrom(r, plan);
  r.EnterSection(kCheckpointDriverSection);
  uint64_t users = r.U64();
  if (users != im.runtimes.size()) {
    throw SnapshotError("driver.users",
                        "user count mismatch: snapshot has " + std::to_string(users) +
                            ", this run has " + std::to_string(im.runtimes.size()));
  }
  for (Impl::UserRuntime& rt : im.runtimes) {
    rt.tap->LoadFrom(r);
    rt.typist->LoadFrom(r, plan);
    bool had_burst = r.Bool();
    if (had_burst != (rt.burst_task != nullptr)) {
      throw SnapshotError("driver.burst",
                          "burst task presence mismatch (snapshot from a run with "
                          "different burst options)");
    }
    if (rt.burst_task != nullptr) {
      rt.burst_task->LoadFrom(r, plan, "driver.burst");
    }
  }
  bool had_slo = r.Bool();
  if (had_slo != im.slo->active()) {
    throw SnapshotError("driver.slo", "SLO watchdog presence mismatch");
  }
  if (had_slo) {
    im.slo->watchdog()->LoadFrom(r, plan);
  }
  bool had_sampler = r.Bool();
  PeriodicSampler* sampler = im.sampler->sampler();
  if (had_sampler != (sampler != nullptr)) {
    throw SnapshotError("driver.sampler", "gauge sampler presence mismatch");
  }
  if (had_sampler) {
    sampler->LoadFrom(r, plan);
  }
  r.LeaveSection();
  if (!r.AtEnd()) {
    throw SnapshotError("snapshot.trailing", "bytes remain after the driver section");
  }
  plan.Commit(im.sim, ks.manifest, ks.next_seq);
}

ConsolidationResult ConsolidationRun::Finish() {
  Impl& im = *impl_;
  if (im.finished) {
    throw ConfigError("ConsolidationRun", "Finish() called twice");
  }
  im.finished = true;
  const ConsolidationOptions& options = im.options;
  Server& server = *im.server;
  Duration total = options.start_delay + options.duration;

  ConsolidationResult result;
  result.os_name = im.profile.name;
  result.protocol = ProtocolName(im.profile.protocol_kind);
  result.users = options.users;
  result.cpu_utilization = server.cpu().busy_time() / total;
  result.link_utilization = server.link().UtilizationOver(total);
  result.resident_pages = server.pager().frames_used();
  result.total_frames = server.pager().total_frames();
  result.shared_segments = server.pager().shared_segments();
  result.shared_attaches = server.pager().shared_attaches();
  result.page_faults = server.pager().faults();
  result.coalesced_waits = server.pager().coalesced_waits();

  Bytes link_total = server.link().bytes_carried();
  double stall_sum = 0.0;
  for (Impl::UserRuntime& rt : im.runtimes) {
    rt.typist->Stop();
    if (rt.burst_task != nullptr) {
      rt.burst_task->Stop();
    }
    UserStallStats us;
    const StallTap& tap = *rt.tap;
    us.updates = tap.stalls.updates();
    us.avg_stall_ms = tap.stalls.AverageStallAllGaps().ToMillisF();
    us.max_stall_ms = tap.stalls.MaxStall().ToMillisF();
    us.jitter_ms = tap.stalls.Jitter().ToMillisF();
    if (us.updates < 2) {
      // Never saw two updates: total starvation. Score the whole run, so no admission
      // policy can mistake a silent screen for perfect latency.
      us.p50_stall_ms = us.p99_stall_ms = options.duration.ToMillisF();
    } else {
      us.p50_stall_ms = tap.samples.PercentileMs(0.50);
      us.p99_stall_ms = tap.samples.PercentileMs(0.99);
    }
    us.wire_bytes = rt.session->flow().wire_bytes();
    us.link_share = rt.session->flow().ShareOf(link_total);
    us.stall_samples_us = tap.samples.samples_us();
    stall_sum += us.avg_stall_ms;
    result.worst_stall_ms = std::max(result.worst_stall_ms, us.max_stall_ms);
    result.worst_p99_stall_ms = std::max(result.worst_p99_stall_ms, us.p99_stall_ms);
    result.per_user.push_back(std::move(us));
  }
  result.avg_stall_ms = stall_sum / static_cast<double>(options.users);
  CollectBlame(result.blame, im.obs);
  im.slo->Finish(result.slo);
  FinishRun(result.run, im.sim, im.t0);
  return result;
}

ConsolidationResult ResumeConsolidation(const OsProfile& profile,
                                        const ConsolidationOptions& options,
                                        const ObsConfig* obs,
                                        const std::vector<uint8_t>& blob) {
  ConsolidationRun run(profile, options, obs);
  run.Restore(blob);
  run.RunToEnd();
  return run.Finish();
}

CapacityResult RunServerCapacityCheckpointed(const OsProfile& profile,
                                             const CapacityOptions& options_in,
                                             CapacityCheckpointCache& cache,
                                             const ObsConfig* obs) {
  CapacityOptions options = Validated(options_in);

  // Same memoized-probe frame as RunServerCapacity (one evaluation per candidate N,
  // shared between both policies), but each candidate's prefix — login storm and daemon
  // warm-up, up to 1 ms before the first typist keystroke — is snapshotted on first
  // evaluation and forked from on every later one. The prefix point precedes the first
  // minted interaction, so a fork's fresh attribution engine is exactly the cold run's.
  std::map<int, ConsolidationResult> memo;
  auto evaluate = [&](int users) -> const ConsolidationResult& {
    auto it = memo.find(users);
    if (it == memo.end()) {
      ConsolidationOptions copt = options.behavior;
      copt.users = users;
      AttributionConfig probe_attr;
      probe_attr.tracer = obs != nullptr ? obs->tracer : nullptr;
      LatencyAttribution probe_blame(probe_attr);
      ObsConfig probe_obs;
      probe_obs.tracer = probe_attr.tracer;
      probe_obs.attribution = &probe_blame;
      SloSpec probe_slo;
      if (obs != nullptr && obs->slo != nullptr && obs->slo->Any()) {
        probe_slo = *obs->slo;
        probe_slo.name += "_u" + std::to_string(users);
        probe_obs.slo = &probe_slo;
      }
      ConsolidationRun run(profile, copt, &probe_obs);
      Duration prefix = copt.start_delay - Duration::Millis(1);
      if (prefix > Duration::Zero()) {
        auto cached = cache.prefix.find(users);
        if (cached == cache.prefix.end()) {
          ++cache.misses;
          run.RunUntil(TimePoint::Zero() + prefix);
          cache.prefix.emplace(users, run.Snapshot());
        } else {
          ++cache.hits;
          run.Restore(cached->second);
        }
      }
      run.RunToEnd();
      it = memo.emplace(users, run.Finish()).first;
    }
    return it->second;
  };
  auto max_admitted = [&](AdmissionPolicy policy) {
    int lo = 0;  // invariant: lo == 0 or lo admitted; everything above hi rejected
    int hi = options.max_users;
    while (lo < hi) {
      int mid = lo + (hi - lo + 1) / 2;
      if (Admits(policy, options.admission, evaluate(mid))) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  };

  CapacityResult result;
  result.os_name = profile.name;
  result.protocol = ProtocolName(profile.protocol_kind);
  result.latency_sized_users = max_admitted(AdmissionPolicy::kLatency);
  result.utilization_sized_users = max_admitted(AdmissionPolicy::kUtilization);
  result.utilization_over_admits =
      result.utilization_sized_users > result.latency_sized_users;
  for (auto& [users, probe] : memo) {
    result.run.events_executed += probe.run.events_executed;
    result.run.pending_events += probe.run.pending_events;
    result.run.wall_ms += probe.run.wall_ms;
    result.probes.push_back(std::move(probe));
  }
  return result;
}

}  // namespace tcs
