// Multi-user consolidation and admission control (§3.1, §7).
//
// RunConsolidation simulates N concurrent interactive users on one server with the
// whole stack engaged: every session owns its own protocol pipeline (encoder + bitmap
// cache) multiplexed over the shared access link, login text segments are shared
// across sessions in the pager, and each user types at a human cadence with an
// optional periodic application burst. Per-user keystroke stalls are collected as
// exact-microsecond samples, so results are byte-comparable across runs.
//
// RunServerCapacity answers the deployer's question — how many users fit? — under the
// two sizing doctrines the paper contrasts:
//   * kUtilization: the vendor white-paper criterion (aggregate CPU utilization below
//     a cap). Blind to latency, so it over-admits when stalls appear before the CPU
//     saturates (priority starvation, link queueing, paging).
//   * kLatency: the paper's §3.2 criterion — every admitted user's p99 keystroke stall
//     stays below the threshold of human perception.
// Both answers come from one shared, memoized set of candidate evaluations, so the
// utilization policy's over-admission is directly visible in the probe list.

#ifndef TCS_SRC_CORE_ADMISSION_H_
#define TCS_SRC_CORE_ADMISSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/experiments.h"
#include "src/mem/pager.h"
#include "src/session/os_profile.h"
#include "src/sim/time.h"

namespace tcs {

struct ConsolidationOptions {
  int users = 1;
  Duration duration = Duration::Seconds(60);
  uint64_t seed = 1;
  int processors = 1;
  Bytes ram = Bytes::MiB(64);
  EvictionPolicy eviction = EvictionPolicy::kGlobalLru;
  // Typing cadence and phasing. With users == 1, no bursts, and the defaults below,
  // the schedule is identical to RunTypingUnderLoad's (start at 1 s, 50 ms repeat).
  Duration keystroke_period = Duration::Millis(50);
  Duration start_delay = Duration::Seconds(1);
  Duration stagger = Duration::Millis(13);
  // Per-user periodic application burst (compile, page render). Zero disables — and no
  // burst thread is created at all, preserving byte-identity with the typing path.
  Duration burst_cpu = Duration::Zero();
  Duration burst_period = Duration::Seconds(5);
  int sinks = 0;  // server-wide batch load, as in RunTypingUnderLoad
  // Optional WAN shaping on the shared access link, wired exactly as RunWanPoint wires
  // it (fault RNG seeded from `seed ^ 0xFA017`, degradation armed after the 2 s warm-up
  // with the pressure ladder calibrated to the bottleneck queue). The default all-empty
  // profile injects nothing and leaves the run byte-identical to a LAN run.
  WanProfile wan;
  bool degrade = false;  // arm the DegradationController (meaningful with `wan`)
};

// Throws ConfigError on nonsensical values (users < 1, zero cadence, ...).
ConsolidationOptions Validated(ConsolidationOptions options);

struct UserStallStats {
  int64_t updates = 0;
  double avg_stall_ms = 0.0;  // over all gaps, zero when on time (Figure 3's metric)
  double max_stall_ms = 0.0;
  double jitter_ms = 0.0;
  double p50_stall_ms = 0.0;
  // p99 over this user's gap stalls; a user who never saw two updates is scored the
  // whole run length — total starvation, not missing data.
  double p99_stall_ms = 0.0;
  // This session's bytes on the shared link (wire bytes incl. headers) and its share.
  Bytes wire_bytes = Bytes::Zero();
  double link_share = 0.0;
  // Exact-microsecond stall samples in arrival order (gap minus cadence, floored at 0).
  std::vector<int64_t> stall_samples_us;
};

struct ConsolidationResult {
  std::string os_name;
  std::string protocol;
  int users = 0;
  double cpu_utilization = 0.0;   // busy time / total simulated time
  double link_utilization = 0.0;  // shared access link, over the same window
  // Pager gauges at end of run: the consolidation story's memory axis.
  size_t resident_pages = 0;
  size_t total_frames = 0;
  size_t shared_segments = 0;
  int64_t shared_attaches = 0;
  int64_t page_faults = 0;
  int64_t coalesced_waits = 0;
  // Cross-user aggregates of the per-user stall stats.
  double avg_stall_ms = 0.0;        // mean of per-user averages
  double worst_stall_ms = 0.0;      // largest single stall any user saw
  double worst_p99_stall_ms = 0.0;  // max over users of per-user p99
  std::vector<UserStallStats> per_user;
  AttributionResult blame;
  // SLO verdict; `slo.active` only when the ObsConfig carried an SloSpec.
  SloReport slo;
  RunStats run;
};

ConsolidationResult RunConsolidation(const OsProfile& profile,
                                     const ConsolidationOptions& options,
                                     const ObsConfig* obs = nullptr);

// The two sizing doctrines (header comment above).
enum class AdmissionPolicy { kUtilization, kLatency };

struct AdmissionConfig {
  double max_utilization = 0.85;                       // the white-paper cap
  Duration max_p99_stall = Duration::Millis(100);      // kPerceptionThreshold
};

// True when `r` satisfies the policy's admission criterion.
bool Admits(AdmissionPolicy policy, const AdmissionConfig& admission,
            const ConsolidationResult& r);

struct CapacityOptions {
  int max_users = 24;  // search ceiling
  AdmissionConfig admission;
  // Per-candidate run shape; `.users` is overwritten by the search. The default is a
  // heavier-handed workload than bare typing — every user fires a periodic compute
  // burst — so capacity is bounded by interference, not by the search ceiling.
  ConsolidationOptions behavior = [] {
    ConsolidationOptions b;
    b.duration = Duration::Seconds(30);
    b.burst_cpu = Duration::Millis(300);
    b.burst_period = Duration::Seconds(5);
    return b;
  }();
};

CapacityOptions Validated(CapacityOptions options);

struct CapacityResult {
  std::string os_name;
  std::string protocol;
  int utilization_sized_users = 0;
  int latency_sized_users = 0;
  // True when the utilization doctrine admits more users than the latency doctrine —
  // the §3 argument that resource-centric sizing oversells interactive servers.
  bool utilization_over_admits = false;
  // Every candidate N the binary searches evaluated, ascending. Each probe ran with
  // the same seed, so re-running a probe's N via RunConsolidation reproduces it.
  std::vector<ConsolidationResult> probes;
  RunStats run;  // summed over probes
};

// Binary-searches the largest admitted user count per policy in [1, max_users],
// memoizing one evaluation per candidate N and sharing it between both policies.
// Deterministic: every candidate runs with `options.behavior.seed`, so results are
// independent of search order, worker count, and repetition.
CapacityResult RunServerCapacity(const OsProfile& profile, const CapacityOptions& options,
                                 const ObsConfig* obs = nullptr);

}  // namespace tcs

#endif  // TCS_SRC_CORE_ADMISSION_H_
