// Structured JSON reports for experiment results.
//
// Each ToJson overload renders one result struct (including its RunStats) as a
// self-describing JSON object, so experiment output can be archived next to the trace and
// metrics files and diffed/consumed by scripts. Field order is fixed; all simulated
// quantities are deterministic for a given seed (run.wall_ms is the one exception).

#ifndef TCS_SRC_CORE_REPORT_H_
#define TCS_SRC_CORE_REPORT_H_

#include <string>

#include "src/core/admission.h"
#include "src/core/experiments.h"

namespace tcs {

// The per-stage latency-attribution ("blame") block: exact-microsecond totals plus
// nearest-rank p50/p99 per stage. Deterministic byte-for-byte (no wall clock), so blame
// output can be compared across reruns and sweep worker counts with cmp(1).
std::string ToJson(const AttributionResult& r);

std::string ToJson(const TypingUnderLoadResult& r);
std::string ToJson(const PagingLatencyResult& r);
std::string ToJson(const EndToEndResult& r);
std::string ToJson(const ChaosPoint& r);
std::string ToJson(const WanPoint& r);
// The what-if report: the `whatif` block pairs the critical-path-predicted p99 delta
// with the re-simulated (achieved) one, followed by both arms' full WanPoint reports.
std::string ToJson(const WhatIfResult& r);
// Just the `whatif` block (no arms, no RunStats): fully deterministic, so sweep drivers
// can assemble reports that cmp(1) clean across reruns and worker counts.
std::string WhatIfBlockJson(const WhatIfResult& r);
std::string ToJson(const SizingPoint& r);
std::string ToJson(const ConsolidationResult& r);
std::string ToJson(const CapacityResult& r);
std::string ToJson(const ProtocolTrafficResult& r);
std::string ToJson(const AnimationLoadResult& r);

}  // namespace tcs

#endif  // TCS_SRC_CORE_REPORT_H_
