// Structured JSON reports for experiment results.
//
// Each ToJson overload renders one result struct (including its RunStats) as a
// self-describing JSON object, so experiment output can be archived next to the trace and
// metrics files and diffed/consumed by scripts. Field order is fixed; all simulated
// quantities are deterministic for a given seed (run.wall_ms is the one exception).

#ifndef TCS_SRC_CORE_REPORT_H_
#define TCS_SRC_CORE_REPORT_H_

#include <string>

#include "src/core/experiments.h"

namespace tcs {

std::string ToJson(const TypingUnderLoadResult& r);
std::string ToJson(const PagingLatencyResult& r);
std::string ToJson(const EndToEndResult& r);
std::string ToJson(const ChaosPoint& r);
std::string ToJson(const SizingPoint& r);
std::string ToJson(const ProtocolTrafficResult& r);
std::string ToJson(const AnimationLoadResult& r);

}  // namespace tcs

#endif  // TCS_SRC_CORE_REPORT_H_
