#include "src/core/admission.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/run_support.h"
#include "src/metrics/latency.h"
#include "src/session/server.h"
#include "src/sim/periodic.h"
#include "src/util/config_error.h"
#include "src/workload/typist.h"

namespace tcs {

namespace {

using namespace run_support;

// Per-user stall instrumentation: the StallDetector keeps Figure-3 aggregates, the
// LatencyRecorder keeps the exact-microsecond per-gap samples that make consolidation
// results byte-comparable. Lives behind a unique_ptr so callbacks hold stable pointers.
struct StallTap {
  explicit StallTap(Duration period) : stalls(period), period_us(period.ToMicros()) {}

  void OnUpdate(TimePoint t) {
    stalls.OnUpdate(t);
    if (have_last) {
      int64_t gap_us = (t - last).ToMicros() - period_us;
      samples.Record(Duration::Micros(std::max<int64_t>(0, gap_us)));
    }
    have_last = true;
    last = t;
  }

  StallDetector stalls;
  LatencyRecorder samples;
  int64_t period_us;
  bool have_last = false;
  TimePoint last;
};

}  // namespace

ConsolidationOptions Validated(ConsolidationOptions o) {
  if (o.users < 1) {
    throw ConfigError("ConsolidationOptions.users", "must admit at least one user");
  }
  if (!(o.duration > Duration::Zero())) {
    throw ConfigError("ConsolidationOptions.duration", "must be positive");
  }
  if (o.processors < 1) {
    throw ConfigError("ConsolidationOptions.processors", "need at least one processor");
  }
  if (o.ram.count() <= 0) {
    throw ConfigError("ConsolidationOptions.ram", "must be positive");
  }
  if (!(o.keystroke_period > Duration::Zero())) {
    throw ConfigError("ConsolidationOptions.keystroke_period", "must be positive");
  }
  if (o.start_delay < Duration::Zero()) {
    throw ConfigError("ConsolidationOptions.start_delay", "must not be negative");
  }
  if (o.stagger < Duration::Zero()) {
    throw ConfigError("ConsolidationOptions.stagger", "must not be negative");
  }
  if (o.burst_cpu < Duration::Zero()) {
    throw ConfigError("ConsolidationOptions.burst_cpu", "must not be negative");
  }
  if (o.burst_cpu > Duration::Zero() && !(o.burst_period > Duration::Zero())) {
    throw ConfigError("ConsolidationOptions.burst_period",
                      "must be positive when bursts are enabled");
  }
  if (o.sinks < 0) {
    throw ConfigError("ConsolidationOptions.sinks", "must not be negative");
  }
  return o;
}

CapacityOptions Validated(CapacityOptions o) {
  if (o.max_users < 1) {
    throw ConfigError("CapacityOptions.max_users", "must allow at least one user");
  }
  if (!(o.admission.max_utilization > 0.0) || o.admission.max_utilization > 1.0) {
    throw ConfigError("AdmissionConfig.max_utilization", "must be in (0, 1]");
  }
  if (!(o.admission.max_p99_stall > Duration::Zero())) {
    throw ConfigError("AdmissionConfig.max_p99_stall", "must be positive");
  }
  o.behavior.users = 1;  // overwritten per candidate; validate the rest of the shape
  o.behavior = Validated(std::move(o.behavior));
  return o;
}

ConsolidationResult RunConsolidation(const OsProfile& profile,
                                     const ConsolidationOptions& options_in,
                                     const ObsConfig* obs) {
  ConsolidationOptions options = Validated(options_in);
  WallClock::time_point t0 = WallClock::now();
  Simulator sim;
  ServerConfig cfg;
  cfg.seed = options.seed;
  cfg.cpu.processors = options.processors;
  cfg.ram = options.ram;
  cfg.eviction = options.eviction;
  ApplyObs(cfg, obs);
  SloRuntime slo(sim, obs);
  slo.ApplyTo(cfg);
  AttachSimHook(sim, obs);
  Server server(sim, profile, cfg);
  SamplerScope sampler(sim, obs);
  server.StartDaemons();

  struct UserRuntime {
    Session* session = nullptr;
    std::unique_ptr<StallTap> tap;
    std::unique_ptr<Typist> typist;
    std::unique_ptr<PeriodicTask> burst_task;
  };
  std::vector<UserRuntime> runtimes;
  runtimes.reserve(static_cast<size_t>(options.users));
  // Login + instrument first: session setup traffic and text-segment sharing happen in
  // login order, exactly as they would on a morning shift start.
  for (int u = 0; u < options.users; ++u) {
    UserRuntime rt;
    rt.session = &server.Login();
    rt.tap = std::make_unique<StallTap>(options.keystroke_period);
    StallTap* tap = rt.tap.get();
    rt.session->set_on_display_update([tap](TimePoint t) { tap->OnUpdate(t); });
    Session* s = rt.session;
    rt.typist = std::make_unique<Typist>(sim, [&server, s] { server.Keystroke(*s); },
                                         options.keystroke_period);
    rt.typist->Start(options.start_delay +
                     Duration::Micros(options.stagger.ToMicros() * u));
    if (options.burst_cpu > Duration::Zero()) {
      Thread* bt = server.cpu().CreateThread("app-burst", ThreadClass::kBatch,
                                             profile.sink_priority);
      Duration burst = options.burst_cpu;
      rt.burst_task = std::make_unique<PeriodicTask>(
          sim, options.burst_period,
          [&server, bt, burst] { server.cpu().PostWork(*bt, burst); });
      rt.burst_task->Start(Duration::Millis((199 * u) % 5000));  // staggered phases
    }
    runtimes.push_back(std::move(rt));
  }
  server.StartSinks(options.sinks);

  if (slo.active()) {
    // Live p99 is over samples seen so far (a user who hasn't produced two updates yet
    // contributes nothing live); total starvation is a whole-run objective and only
    // scored by FinishRun, so warm-up can't trip it.
    slo.watchdog()->SetWorstP99Source([&runtimes] {
      double worst = 0.0;
      for (const UserRuntime& rt : runtimes) {
        worst = std::max(worst, rt.tap->samples.PercentileMs(0.99));
      }
      return worst;
    });
    slo.watchdog()->SetStarvationSource([&runtimes] {
      int starved = 0;
      for (const UserRuntime& rt : runtimes) {
        if (rt.tap->stalls.updates() < 2) {
          ++starved;
        }
      }
      return static_cast<double>(starved) / static_cast<double>(runtimes.size());
    });
    slo.watchdog()->SetLinkBacklogSource([&server, &sim] {
      return server.link().BacklogBytesAt(sim.Now()).count();
    });
    slo.Start();
  }

  Duration total = options.start_delay + options.duration;
  sim.RunUntil(TimePoint::Zero() + total);

  ConsolidationResult result;
  result.os_name = profile.name;
  result.protocol = ProtocolName(profile.protocol_kind);
  result.users = options.users;
  result.cpu_utilization = server.cpu().busy_time() / total;
  result.link_utilization = server.link().UtilizationOver(total);
  result.resident_pages = server.pager().frames_used();
  result.total_frames = server.pager().total_frames();
  result.shared_segments = server.pager().shared_segments();
  result.shared_attaches = server.pager().shared_attaches();
  result.page_faults = server.pager().faults();
  result.coalesced_waits = server.pager().coalesced_waits();

  Bytes link_total = server.link().bytes_carried();
  double stall_sum = 0.0;
  for (UserRuntime& rt : runtimes) {
    rt.typist->Stop();
    if (rt.burst_task != nullptr) {
      rt.burst_task->Stop();
    }
    UserStallStats us;
    const StallTap& tap = *rt.tap;
    us.updates = tap.stalls.updates();
    us.avg_stall_ms = tap.stalls.AverageStallAllGaps().ToMillisF();
    us.max_stall_ms = tap.stalls.MaxStall().ToMillisF();
    us.jitter_ms = tap.stalls.Jitter().ToMillisF();
    if (us.updates < 2) {
      // Never saw two updates: total starvation. Score the whole run, so no admission
      // policy can mistake a silent screen for perfect latency.
      us.p50_stall_ms = us.p99_stall_ms = options.duration.ToMillisF();
    } else {
      us.p50_stall_ms = tap.samples.PercentileMs(0.50);
      us.p99_stall_ms = tap.samples.PercentileMs(0.99);
    }
    us.wire_bytes = rt.session->flow().wire_bytes();
    us.link_share = rt.session->flow().ShareOf(link_total);
    us.stall_samples_us = tap.samples.samples_us();
    stall_sum += us.avg_stall_ms;
    result.worst_stall_ms = std::max(result.worst_stall_ms, us.max_stall_ms);
    result.worst_p99_stall_ms = std::max(result.worst_p99_stall_ms, us.p99_stall_ms);
    result.per_user.push_back(std::move(us));
  }
  result.avg_stall_ms = stall_sum / static_cast<double>(options.users);
  CollectBlame(result.blame, obs);
  slo.Finish(result.slo);
  FinishRun(result.run, sim, t0);
  return result;
}

bool Admits(AdmissionPolicy policy, const AdmissionConfig& admission,
            const ConsolidationResult& r) {
  switch (policy) {
    case AdmissionPolicy::kUtilization:
      return r.cpu_utilization < admission.max_utilization;
    case AdmissionPolicy::kLatency:
      return r.worst_p99_stall_ms < admission.max_p99_stall.ToMillisF();
  }
  return false;
}

CapacityResult RunServerCapacity(const OsProfile& profile,
                                 const CapacityOptions& options_in,
                                 const ObsConfig* obs) {
  CapacityOptions options = Validated(options_in);

  // One evaluation per candidate N, shared between both policies' searches. Every
  // candidate runs with the same seed (not a per-N derived seed): candidate N is
  // exactly "the same morning with N users", and the N=1 candidate is byte-identical
  // to the single-session typing experiment under the same knobs.
  std::map<int, ConsolidationResult> memo;
  auto evaluate = [&](int users) -> const ConsolidationResult& {
    auto it = memo.find(users);
    if (it == memo.end()) {
      ConsolidationOptions copt = options.behavior;
      copt.users = users;
      // Each probe gets its own attribution engine (blame must not mix across
      // candidate runs) and shares the caller's tracer. The caller's metrics registry
      // is deliberately not threaded through: one registry cannot serve gauge sets
      // from many servers.
      AttributionConfig probe_attr;
      probe_attr.tracer = obs != nullptr ? obs->tracer : nullptr;
      LatencyAttribution probe_blame(probe_attr);
      ObsConfig probe_obs;
      probe_obs.tracer = probe_attr.tracer;
      probe_obs.attribution = &probe_blame;
      // Each probe gets its own SLO spec (bundle stem suffixed with the candidate N)
      // and its own run-local recorder, so violating candidates leave distinct,
      // deterministically named forensic bundles. The caller's recorder is deliberately
      // not shared: interleaving probes would corrupt each other's frozen windows.
      SloSpec probe_slo;
      if (obs != nullptr && obs->slo != nullptr && obs->slo->Any()) {
        probe_slo = *obs->slo;
        probe_slo.name += "_u" + std::to_string(users);
        probe_obs.slo = &probe_slo;
      }
      it = memo.emplace(users, RunConsolidation(profile, copt, &probe_obs)).first;
    }
    return it->second;
  };
  // Largest admitted N in [1, max_users]; degradation is monotone in N for a fixed
  // behavior, which is what makes bisection valid here.
  auto max_admitted = [&](AdmissionPolicy policy) {
    int lo = 0;  // invariant: lo == 0 or lo admitted; everything above hi rejected
    int hi = options.max_users;
    while (lo < hi) {
      int mid = lo + (hi - lo + 1) / 2;
      if (Admits(policy, options.admission, evaluate(mid))) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  };

  CapacityResult result;
  result.os_name = profile.name;
  result.protocol = ProtocolName(profile.protocol_kind);
  result.latency_sized_users = max_admitted(AdmissionPolicy::kLatency);
  result.utilization_sized_users = max_admitted(AdmissionPolicy::kUtilization);
  result.utilization_over_admits =
      result.utilization_sized_users > result.latency_sized_users;
  for (auto& [users, probe] : memo) {
    result.run.events_executed += probe.run.events_executed;
    result.run.pending_events += probe.run.pending_events;
    result.run.wall_ms += probe.run.wall_ms;
    result.probes.push_back(std::move(probe));
  }
  return result;
}

}  // namespace tcs
