#include "src/core/admission.h"

#include <map>
#include <string>
#include <utility>

#include "src/core/checkpoint.h"
#include "src/core/run_support.h"
#include "src/util/config_error.h"

namespace tcs {

using namespace run_support;

ConsolidationOptions Validated(ConsolidationOptions o) {
  if (o.users < 1) {
    throw ConfigError("ConsolidationOptions.users", "must admit at least one user");
  }
  if (!(o.duration > Duration::Zero())) {
    throw ConfigError("ConsolidationOptions.duration", "must be positive");
  }
  if (o.processors < 1) {
    throw ConfigError("ConsolidationOptions.processors", "need at least one processor");
  }
  if (o.ram.count() <= 0) {
    throw ConfigError("ConsolidationOptions.ram", "must be positive");
  }
  if (!(o.keystroke_period > Duration::Zero())) {
    throw ConfigError("ConsolidationOptions.keystroke_period", "must be positive");
  }
  if (o.start_delay < Duration::Zero()) {
    throw ConfigError("ConsolidationOptions.start_delay", "must not be negative");
  }
  if (o.stagger < Duration::Zero()) {
    throw ConfigError("ConsolidationOptions.stagger", "must not be negative");
  }
  if (o.burst_cpu < Duration::Zero()) {
    throw ConfigError("ConsolidationOptions.burst_cpu", "must not be negative");
  }
  if (o.burst_cpu > Duration::Zero() && !(o.burst_period > Duration::Zero())) {
    throw ConfigError("ConsolidationOptions.burst_period",
                      "must be positive when bursts are enabled");
  }
  if (o.sinks < 0) {
    throw ConfigError("ConsolidationOptions.sinks", "must not be negative");
  }
  return o;
}

CapacityOptions Validated(CapacityOptions o) {
  if (o.max_users < 1) {
    throw ConfigError("CapacityOptions.max_users", "must allow at least one user");
  }
  if (!(o.admission.max_utilization > 0.0) || o.admission.max_utilization > 1.0) {
    throw ConfigError("AdmissionConfig.max_utilization", "must be in (0, 1]");
  }
  if (!(o.admission.max_p99_stall > Duration::Zero())) {
    throw ConfigError("AdmissionConfig.max_p99_stall", "must be positive");
  }
  o.behavior.users = 1;  // overwritten per candidate; validate the rest of the shape
  o.behavior = Validated(std::move(o.behavior));
  return o;
}

ConsolidationResult RunConsolidation(const OsProfile& profile,
                                     const ConsolidationOptions& options,
                                     const ObsConfig* obs) {
  // The construction sequence, workload wiring, and result collection all live in
  // ConsolidationRun (src/core/checkpoint.cc) so the cold path and the checkpointed
  // path are one code path — the differential resume-vs-cold guarantee is structural.
  ConsolidationRun run(profile, options, obs);
  run.RunToEnd();
  return run.Finish();
}

bool Admits(AdmissionPolicy policy, const AdmissionConfig& admission,
            const ConsolidationResult& r) {
  switch (policy) {
    case AdmissionPolicy::kUtilization:
      return r.cpu_utilization < admission.max_utilization;
    case AdmissionPolicy::kLatency:
      return r.worst_p99_stall_ms < admission.max_p99_stall.ToMillisF();
  }
  return false;
}

CapacityResult RunServerCapacity(const OsProfile& profile,
                                 const CapacityOptions& options_in,
                                 const ObsConfig* obs) {
  CapacityOptions options = Validated(options_in);

  // One evaluation per candidate N, shared between both policies' searches. Every
  // candidate runs with the same seed (not a per-N derived seed): candidate N is
  // exactly "the same morning with N users", and the N=1 candidate is byte-identical
  // to the single-session typing experiment under the same knobs.
  std::map<int, ConsolidationResult> memo;
  auto evaluate = [&](int users) -> const ConsolidationResult& {
    auto it = memo.find(users);
    if (it == memo.end()) {
      ConsolidationOptions copt = options.behavior;
      copt.users = users;
      // Each probe gets its own attribution engine (blame must not mix across
      // candidate runs) and shares the caller's tracer. The caller's metrics registry
      // is deliberately not threaded through: one registry cannot serve gauge sets
      // from many servers.
      AttributionConfig probe_attr;
      probe_attr.tracer = obs != nullptr ? obs->tracer : nullptr;
      LatencyAttribution probe_blame(probe_attr);
      ObsConfig probe_obs;
      probe_obs.tracer = probe_attr.tracer;
      probe_obs.attribution = &probe_blame;
      // Each probe gets its own SLO spec (bundle stem suffixed with the candidate N)
      // and its own run-local recorder, so violating candidates leave distinct,
      // deterministically named forensic bundles. The caller's recorder is deliberately
      // not shared: interleaving probes would corrupt each other's frozen windows.
      SloSpec probe_slo;
      if (obs != nullptr && obs->slo != nullptr && obs->slo->Any()) {
        probe_slo = *obs->slo;
        probe_slo.name += "_u" + std::to_string(users);
        probe_obs.slo = &probe_slo;
      }
      it = memo.emplace(users, RunConsolidation(profile, copt, &probe_obs)).first;
    }
    return it->second;
  };
  // Largest admitted N in [1, max_users]; degradation is monotone in N for a fixed
  // behavior, which is what makes bisection valid here.
  auto max_admitted = [&](AdmissionPolicy policy) {
    int lo = 0;  // invariant: lo == 0 or lo admitted; everything above hi rejected
    int hi = options.max_users;
    while (lo < hi) {
      int mid = lo + (hi - lo + 1) / 2;
      if (Admits(policy, options.admission, evaluate(mid))) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  };

  CapacityResult result;
  result.os_name = profile.name;
  result.protocol = ProtocolName(profile.protocol_kind);
  result.latency_sized_users = max_admitted(AdmissionPolicy::kLatency);
  result.utilization_sized_users = max_admitted(AdmissionPolicy::kUtilization);
  result.utilization_over_admits =
      result.utilization_sized_users > result.latency_sized_users;
  for (auto& [users, probe] : memo) {
    result.run.events_executed += probe.run.events_executed;
    result.run.pending_events += probe.run.pending_events;
    result.run.wall_ms += probe.run.wall_ms;
    result.probes.push_back(std::move(probe));
  }
  return result;
}

}  // namespace tcs
