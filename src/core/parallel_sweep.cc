#include "src/core/parallel_sweep.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace tcs {

uint64_t SweepSeed(uint64_t base_seed, uint64_t config_index) {
  // splitmix64 finalizer over the (base, index) pair. The odd multiplier decorrelates
  // neighboring indices before the avalanche rounds.
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (config_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z == 0 ? 1 : z;
}

ParallelSweep::ParallelSweep(int workers) : workers_(workers) {
  if (workers_ <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    workers_ = hw == 0 ? 1 : static_cast<int>(hw);
  }
}

void ParallelSweep::RunIndexed(int count, const std::function<void(int)>& body) const {
  if (count <= 0) {
    return;
  }
  int pool = workers_ < count ? workers_ : count;
  if (pool <= 1) {
    // Serial reference path: same submission order, same seeds, no thread machinery.
    for (int i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }
  std::atomic<int> next{0};
  std::mutex error_mu;
  int first_error_index = count;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(pool));
  for (int t = 0; t < pool; ++t) {
    threads.emplace_back(worker);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace tcs
