// The paper's evaluation framework as a programmatic API.
//
// Each function runs one of the paper's experiment designs end to end — behavior
// generates resource load, operating system structure translates load into
// user-perceived latency (§3) — and returns the measurements the corresponding figure or
// table reports. Benches and examples are thin wrappers over these.

#ifndef TCS_SRC_CORE_EXPERIMENTS_H_
#define TCS_SRC_CORE_EXPERIMENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/client/thin_client.h"
#include "src/cpu/idle_profiler.h"
#include "src/fault/fault_plan.h"
#include "src/mem/pager.h"
#include "src/obs/critical_path.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/proto/bitmap_cache.h"
#include "src/session/os_profile.h"
#include "src/sim/time.h"

namespace tcs {

// Standard kernel/run accounting attached to every experiment result: how many events
// the simulation kernel dispatched, how many were still pending at the end, and the
// real (wall-clock) time the run took. For multi-run experiments these are summed over
// the runs. wall_ms is the only non-deterministic field anywhere in a result.
struct RunStats {
  uint64_t events_executed = 0;
  uint64_t pending_events = 0;
  double wall_ms = 0.0;
};

// ---------------------------------------------------------------------------
// Processor (Figures 1-3)

struct IdleProfileResult {
  std::string os_name;
  // CPU utilization per 100 ms bucket, in [0,1] (Figure 1).
  std::vector<double> utilization;
  // Lost-time event curve (Figure 2).
  std::vector<IdleLoopProfiler::CumulativePoint> cumulative;
  Duration total_busy;
  Duration duration;
  RunStats run;
};

IdleProfileResult RunIdleProfile(const OsProfile& profile, Duration duration,
                                 uint64_t seed = 1);

struct TypingUnderLoadResult {
  std::string os_name;
  int sinks = 0;
  // Average stall length over all inter-update gaps (Figure 3's y axis).
  double avg_stall_ms = 0.0;
  double max_stall_ms = 0.0;
  double jitter_ms = 0.0;
  int64_t updates = 0;
  // Exact-microsecond stall samples (inter-update gap minus the cadence, floored at
  // zero), in arrival order. The differential anchor for RunServerCapacity's N=1 case.
  std::vector<int64_t> stall_samples_us;
  // Per-stage latency attribution; `blame.active` only when the run's ObsConfig carried
  // a LatencyAttribution engine.
  AttributionResult blame;
  // SLO verdict; `slo.active` only when the ObsConfig carried an SloSpec.
  SloReport slo;
  RunStats run;
};

TypingUnderLoadResult RunTypingUnderLoad(const OsProfile& profile, int sinks,
                                         Duration duration = Duration::Seconds(60),
                                         uint64_t seed = 1, int processors = 1,
                                         const ObsConfig* obs = nullptr);

// The §4.2.1 worked example: time to complete a 500 ms maximize operation that intersects
// a 400 ms priority-13 daemon event, as a function of quantum stretching and CPU speed.
Duration RunMaximizeScenario(int foreground_stretch, double cpu_speed);

// ---------------------------------------------------------------------------
// Memory (§5 tables)

struct SessionMemoryRow {
  std::string process;
  Bytes private_memory;
};

struct SessionMemoryResult {
  std::string os_name;
  bool light = false;
  std::vector<SessionMemoryRow> processes;
  Bytes total = Bytes::Zero();       // per-login compulsory *private* memory
  Bytes total_shared = Bytes::Zero();  // text mapped but shared across sessions
  Bytes idle_system = Bytes::Zero();  // kernel + services with no sessions
  // Measured private residency from the pager after login (shared text and the editor
  // working set excluded; must equal `total` rounded to pages).
  Bytes measured_resident = Bytes::Zero();
  RunStats run;
};

SessionMemoryResult MeasureSessionMemory(const OsProfile& profile, bool light = false);

struct PagingLatencyResult {
  std::string os_name;
  bool full_demand = false;  // the ">= 100%" column
  int runs = 0;
  double min_ms = 0.0;
  double avg_ms = 0.0;
  double max_ms = 0.0;
  // Attribution over the observed (first) trial's interactions, when requested.
  AttributionResult blame;
  RunStats run;  // summed over the runs
};

// §5.2: editor idles while a streaming hog runs for ~30 s, then one keystroke; response
// time over `runs` trials. `full_demand` selects the >= 100% page-demand column.
// `eviction` switches on the Evans-style protection/throttling ablation.
PagingLatencyResult RunPagingLatency(const OsProfile& profile, bool full_demand,
                                     int runs = 10, uint64_t seed = 1,
                                     EvictionPolicy eviction = EvictionPolicy::kGlobalLru,
                                     const ObsConfig* obs = nullptr);

// ---------------------------------------------------------------------------
// Network (§6 tables and Figures 4-9)

struct ChannelTraffic {
  int64_t bytes = 0;     // payload + TCP/IP headers, tcpdump-style
  int64_t messages = 0;
};

struct ProtocolTrafficResult {
  std::string protocol;
  ChannelTraffic input;
  ChannelTraffic display;
  int64_t total_bytes = 0;
  int64_t total_messages = 0;
  double avg_message_size = 0.0;
  int64_t packets = 0;
  // Bytes with the IP header elided on every packet (the VIP table).
  int64_t vip_bytes = 0;
  RunStats run;
};

// §6.1.2's application workload: the word-processor, photo-editor, and control-panel
// scripts replayed over the given protocol.
ProtocolTrafficResult RunAppWorkloadTraffic(ProtocolKind kind, uint64_t seed = 1,
                                            int steps_per_app = 600,
                                            const ObsConfig* obs = nullptr);

struct AnimationLoadResult {
  std::string protocol;
  // Display-channel load per bucket, Mbps.
  std::vector<double> load_mbps;
  Duration bucket = Duration::Seconds(1);
  double mean_mbps = 0.0;
  // Mean over the steady state (first `warm_buckets` buckets skipped).
  double sustained_mbps = 0.0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  double cumulative_hit_ratio = 0.0;
  RunStats run;
};

// Figure 4: the synthetic webpage (banner and/or marquee) over a protocol.
AnimationLoadResult RunWebPageLoad(ProtocolKind kind, bool banner, bool marquee,
                                   Duration duration = Duration::Seconds(160),
                                   uint64_t seed = 1);

// Figures 5 and 7 and the A2 ablation: an N-frame looping animation over a protocol.
struct GifAnimationOptions {
  int frames = 10;
  Duration frame_period = Duration::Millis(50);
  int width = 468;
  int height = 60;
  double compression_ratio = 0.85;
  Duration duration = Duration::Seconds(20);
  Duration bucket = Duration::Seconds(1);
  CachePolicy cache_policy = CachePolicy::kLru;
  uint64_t seed = 1;
};

AnimationLoadResult RunGifAnimation(ProtocolKind kind, const GifAnimationOptions& options,
                                    const ObsConfig* obs = nullptr);

// Figure 6: CPU utilization and cumulative bitmap-cache hit ratio over time for an
// animation that overflows the cache, after a warm session whose UI rasters seeded it.
struct CacheOverflowResult {
  std::vector<double> cpu_utilization;       // per second
  std::vector<double> cumulative_hit_ratio;  // per second
  RunStats run;
};

CacheOverflowResult RunCacheOverflow(int frames, Duration duration = Duration::Seconds(60),
                                     uint64_t seed = 1);

// Figures 8-9: ping RTT mean and variance under Poisson background load.
struct RttProbeResult {
  double offered_mbps = 0.0;
  double mean_rtt_ms = 0.0;
  double rtt_variance = 0.0;
  RunStats run;
};

RttProbeResult RunRttProbe(double offered_mbps, Duration duration = Duration::Seconds(60),
                           uint64_t seed = 1);

// §6.1.1: session negotiation cost per protocol.
Bytes SessionSetupBytes(ProtocolKind kind);

// ---------------------------------------------------------------------------
// Server sizing (§3.1 / §7)
//
// The question the paper says deployers need answered — and the one it criticizes vendor
// sizing white papers for answering with utilization alone, "uniformly ignoring the
// issue of user-perceived latency". RunServerSizing simulates N concurrent users (each
// typing at a human cadence plus a periodic application burst) and reports BOTH criteria
// so the two capacity answers can be compared.

struct SizingBehavior {
  Duration keystroke_period = Duration::Millis(200);  // ~5 chars/s typing
  // A periodic compute burst per user (spreadsheet recalc, page render, ...).
  Duration burst_cpu = Duration::Millis(300);
  Duration burst_period = Duration::Seconds(5);
};

struct SizingPoint {
  std::string os_name;
  int users = 0;
  // The white-paper criterion.
  double cpu_utilization = 0.0;
  // The paper's criterion: mean and worst per-user average stall.
  double avg_stall_ms = 0.0;
  double worst_stall_ms = 0.0;
  // Aggregated over every user's interactions, when the ObsConfig requests attribution.
  AttributionResult blame;
  RunStats run;
};

SizingPoint RunServerSizing(const OsProfile& profile, int users,
                            SizingBehavior behavior = {},
                            Duration duration = Duration::Seconds(30), uint64_t seed = 1,
                            const ObsConfig* obs = nullptr);

// ---------------------------------------------------------------------------
// End-to-end latency budget (§3.2's factor taxonomy made measurable)
//
// Where a keystroke's latency goes: input-channel transit, server scheduling + pipeline,
// display-channel transit, and the client device's decode + blit. Run with configurable
// server load (sinks), background network load, and client device class.

struct EndToEndOptions {
  int sinks = 0;
  double background_mbps = 0.0;  // Poisson load sharing the session's link
  ThinClientConfig client = ThinClientConfig::DesktopPc();
  Duration duration = Duration::Seconds(30);
  uint64_t seed = 1;
  // Chaos knobs: an empty (default) plan leaves the run byte-identical to a fault-free
  // build; a non-empty plan injects the configured faults and fills result.faults.
  FaultPlan faults;
};

struct EndToEndResult {
  std::string os_name;
  std::string client_name;
  // Mean milliseconds per leg over all updates.
  double input_net_ms = 0.0;
  double server_ms = 0.0;
  double display_net_ms = 0.0;
  double client_ms = 0.0;
  double total_ms = 0.0;
  int64_t updates = 0;
  // Fault/recovery accounting; `faults.active` is false for an empty plan.
  FaultStats faults;
  // Per-stage latency attribution; active when the ObsConfig carried an engine.
  AttributionResult blame;
  // SLO verdict; `slo.active` only when the ObsConfig carried an SloSpec.
  SloReport slo;
  RunStats run;
};

EndToEndResult RunEndToEndLatency(const OsProfile& profile, const EndToEndOptions& options,
                                  const ObsConfig* obs = nullptr);

// ---------------------------------------------------------------------------
// Chaos (fault-injection) sweep
//
// The robustness question the latency budget doesn't answer: at what combination of
// frame loss and link flapping does a remote session stop feeling interactive? One chaos
// point runs the end-to-end typing workload under a deterministic fault plan and reports
// the keystroke latency distribution (p50/p99), how much of it crossed the perception
// threshold, and the fault/recovery ledger (availability, retransmissions, stalls).

struct ChaosOptions {
  double loss_rate = 0.0;        // per-frame loss probability on the session link
  Duration flap_every = Duration::Zero();     // mean time between link outages (0 = off)
  Duration flap_duration = Duration::Zero();  // outage length per flap
  double disk_stall_rate = 0.0;  // per-request probability of a pager-disk stall
  Duration disconnect_every = Duration::Zero();  // mean time between forced disconnects
  int sinks = 0;
  Duration duration = Duration::Seconds(30);
  uint64_t seed = 1;
  // Latency above this counts as a perception-threshold crossing in the report.
  Duration threshold = Duration::Millis(150);
};

struct ChaosPoint {
  std::string os_name;
  double loss_rate = 0.0;
  double flap_ms = 0.0;
  // Keystroke end-to-end latency distribution (milliseconds).
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  // Fraction of keystrokes whose end-to-end latency exceeded options.threshold.
  double perceptible_fraction = 0.0;
  bool crosses_threshold = false;  // p99 above options.threshold
  int64_t updates = 0;
  FaultStats faults;
  // Link ledger: sent = delivered + lost, attempts = originals + retransmissions.
  int64_t link_frames_sent = 0;
  int64_t link_frames_delivered = 0;
  int64_t link_frames_lost = 0;
  int64_t retransmissions = 0;
  // Chaos points always attribute: the blame block shows retransmit/outage time moving
  // into the network stages as loss grows.
  AttributionResult blame;
  // SLO verdict; `slo.active` only when the ObsConfig carried an SloSpec. On violation
  // `slo.postmortems` names the forensic bundle written for this cell.
  SloReport slo;
  RunStats run;
};

ChaosPoint RunChaosPoint(const OsProfile& profile, const ChaosOptions& options,
                         const ObsConfig* obs = nullptr);

// ---------------------------------------------------------------------------
// WAN pathology sweep + graceful degradation
//
// The paper's measurements ran on a healthy 10 Mbps LAN; real deployments put the same
// sessions behind DSL tails, cellular links, and satellite hops. One WAN point runs a
// multi-user interactive workload (plus one background media session saturating the
// narrow downlink) under a named WAN pathology profile, with the server's
// backpressure-driven DegradationController either off (baseline) or on, and reports
// worst-user latency, availability, and starvation so the two arms can be compared.

struct WanProfile {
  std::string name;
  Duration extra_delay = Duration::Zero();  // extra one-way transit (≈ RTT/2)
  Duration jitter = Duration::Zero();       // uniform per-frame jitter on top
  BitsPerSecond down_rate = BitsPerSecond();  // 0 = keep the LAN rate
  BitsPerSecond up_rate = BitsPerSecond();
  Bytes queue_bytes = Bytes::Zero();        // bufferbloat drop-tail bound (0 = unbounded)
  double ge_p_good_to_bad = 0.0;            // Gilbert–Elliott burst loss chain
  double ge_p_bad_to_good = 0.0;
  double ge_loss_good = 0.0;
  double ge_loss_bad = 0.0;
};

// Named profiles: "dsl", "lte", "satellite", "congested-office".
// Throws tcs::ConfigError on an unknown name.
WanProfile WanProfileByName(const std::string& name);
// The sweep's default profile set, in presentation order.
std::vector<std::string> WanProfileNames();

struct WanOptions {
  WanProfile profile;   // empty profile = plain LAN (differential-test baseline)
  bool degrade = false; // arm the DegradationController
  int users = 3;        // interactive typists
  bool background_session = true;  // one media session hammering the downlink
  Duration duration = Duration::Seconds(30);
  uint64_t seed = 1;
  Duration threshold = Duration::Millis(150);   // perception threshold
  // An echo pending beyond this counts the user as starved (unresponsive session).
  Duration starve_after = Duration::Seconds(1);
  // Keystroke cadence per typist. The default sustains the sweep's historical byte-exact
  // behaviour; large consolidated runs over narrow profiles need a slower cadence or the
  // aggregate echo traffic alone oversubscribes the downlink.
  Duration think_time = Duration::Millis(200);
  // Virtual hardware for what-if re-simulation (RunWhatIf's achieved arm). 1.0 = stock;
  // both are gated on != 1.0 so default cells stay byte-identical to earlier builds.
  // cpu_speed multiplies CpuConfig.speed; disk_speedup divides the swap disk's
  // positioning costs and multiplies its transfer rate.
  double cpu_speed = 1.0;
  double disk_speedup = 1.0;
};

struct WanPoint {
  std::string os_name;
  std::string profile;
  bool degrade = false;
  int users = 0;
  // Worst interactive user's keystroke latency (the per-user distributions are computed
  // independently; worst = max over users).
  double worst_p99_ms = 0.0;
  double mean_ms = 0.0;  // over all interactive users' keystrokes
  double perceptible_fraction = 0.0;
  // Effective availability: link availability (1 - outage fraction) times the fraction
  // of user time NOT spent starved — starved meaning some keystroke echo has been
  // pending for longer than starve_after, which catches both total paint droughts and
  // sustained bufferbloat lag. Degradation cannot heal outages, but it can keep the
  // session responsive — which is what this measures.
  double availability = 1.0;
  // Worst user's starved-time fraction.
  double worst_starved_fraction = 0.0;
  int64_t updates = 0;
  // Degradation ledger (all zero with degrade=false).
  int degradation_peak_level = 0;
  int64_t degradation_transitions = 0;
  double degraded_seconds = 0.0;
  int64_t animation_frames_skipped = 0;
  int64_t background_frames_drawn = 0;
  FaultStats faults;
  AttributionResult blame;
  SloReport slo;
  RunStats run;
};

WanPoint RunWanPoint(const OsProfile& profile, const WanOptions& options,
                     const ObsConfig* obs = nullptr);

// ---------------------------------------------------------------------------
// Counterfactual what-if analysis
//
// "Would a faster link actually help?" One what-if cell runs a WAN point twice: a
// baseline with per-interaction records retained, and an *achieved* arm re-simulated
// with one component virtually sped up (link rate x k, CPU x k, disk x k, or RTT - d).
// The baseline records also feed the critical-path profiler's PredictAdjustedTotalUs,
// which rescales each interaction's affected critical-path segments in isolation. The
// report pairs the *predicted* p99 delta against the *achieved* one — the gap between
// them is exactly the second-order effects (queue drain, fewer RTOs, different
// batching) the analytical model cannot see. Both arms are deterministic, so every
// field except run.wall_ms is byte-identical across reruns and sweep worker counts.

struct WhatIfOptions {
  WanOptions wan;           // the baseline cell (profile, users, duration, seed)
  WhatIfAdjustment adjust;  // the counterfactual applied to the achieved arm
};

struct WhatIfResult {
  std::string os_name;
  std::string profile;
  std::string component;    // WhatIfComponentName(adjust.component)
  double speedup = 1.0;
  int64_t rtt_delta_us = 0;
  int64_t interactions = 0;          // committed baseline interactions
  // Nearest-rank p99 end-to-end micros (same estimator as AttributionResult).
  int64_t baseline_p99_us = 0;
  int64_t predicted_p99_us = 0;      // critical-path model over baseline records
  int64_t achieved_p99_us = 0;       // re-simulated with the adjustment applied
  int64_t predicted_delta_us = 0;    // baseline - predicted (positive = improvement)
  int64_t achieved_delta_us = 0;     // baseline - achieved
  // Baseline records whose critical-path segment sum failed to equal the end-to-end
  // latency (the tentpole invariant; always 0).
  int64_t critical_path_mismatches = 0;
  WanPoint baseline;                 // baseline cell, blame includes net decomposition
  WanPoint adjusted;                 // the achieved arm
  RunStats run;                      // summed over both arms
};

// Runs the baseline and adjusted arms and fills the prediction-vs-achievement report.
// The adjustment maps onto the re-simulation as: kLink scales the profile's down/up
// rates by k; kCpu sets WanOptions.cpu_speed = k; kDisk sets disk_speedup = k; kRtt
// subtracts d/2 from the profile's one-way extra_delay (clamped at zero).
WhatIfResult RunWhatIf(const OsProfile& profile, const WhatIfOptions& options,
                       const ObsConfig* obs = nullptr);

}  // namespace tcs

#endif  // TCS_SRC_CORE_EXPERIMENTS_H_
