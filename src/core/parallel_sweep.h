// Parallel fan-out for independent experiment configurations.
//
// The paper's methodology is a sweep — OS profile x protocol x load level — and every
// configuration is an isolated simulation: each experiment function builds its own
// Simulator and Rng from an explicit seed, shares no mutable state with its siblings,
// and is deterministic given (config, seed). That makes the sweep embarrassingly
// parallel: ParallelSweep::Map runs configurations across a worker pool and returns
// results in submission order, so N workers produce byte-identical output to the serial
// path. Seed per-config RNGs with SweepSeed(base, index), never with anything derived
// from which worker or wall-clock slot ran the config.

#ifndef TCS_SRC_CORE_PARALLEL_SWEEP_H_
#define TCS_SRC_CORE_PARALLEL_SWEEP_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace tcs {

// Deterministic per-config RNG seed (splitmix64 over base_seed and config_index).
// Stable across platforms, worker counts, and runs; never returns 0.
uint64_t SweepSeed(uint64_t base_seed, uint64_t config_index);

class ParallelSweep {
 public:
  // workers <= 0 selects the hardware concurrency.
  explicit ParallelSweep(int workers = 0);

  int workers() const { return workers_; }

  // Runs body(i) for every i in [0, count) across the worker pool and blocks until all
  // configurations finish. Work is handed out by atomic counter, so stragglers don't
  // serialize the pool. If bodies throw, every remaining configuration still runs (one
  // failed config doesn't wedge or abandon the sweep) and the exception thrown by the
  // lowest config index is rethrown after the pool drains.
  void RunIndexed(int count, const std::function<void(int)>& body) const;

  // Maps fn over [0, count), returning results indexed by submission order regardless of
  // which worker ran which configuration.
  template <typename Fn>
  auto Map(int count, Fn&& fn) const -> std::vector<decltype(fn(0))> {
    std::vector<decltype(fn(0))> results(static_cast<size_t>(count < 0 ? 0 : count));
    RunIndexed(count, [&](int i) { results[static_cast<size_t>(i)] = fn(i); });
    return results;
  }

 private:
  int workers_;
};

}  // namespace tcs

#endif  // TCS_SRC_CORE_PARALLEL_SWEEP_H_
