// Deterministic checkpoint/restore for consolidation runs (fork-from-snapshot).
//
// A ConsolidationRun is RunConsolidation opened up: the same construction sequence,
// workload wiring, and result collection, but with the clock in the caller's hands.
// Between RunUntil steps the caller can Snapshot() the full dynamic state — kernel
// event queue, scheduler, pager, protocol encoders, reliable channel, flow ledgers,
// degradation controller, every RNG stream, and the per-user instrumentation (stall
// taps, typists, burst tasks, SLO watchdog, gauge sampler) — into a framed, versioned,
// CRC-guarded blob, and later Restore() it into a freshly constructed run of the same
// shape. A restored run is sample-for-sample identical to the run that would have been:
// same stall samples to the microsecond, same report fields (modulo wall_ms), same
// trace events. That equivalence is what the differential test harness
// (tests/core_checkpoint_diff_test.cc) locks down.
//
// Restore is rebuild-then-overwrite: construction replays the exact original sequence
// (so all closures, topology, and construction-derived state exist), then the snapshot
// overwrites the dynamic state and re-arms every pending event with its original
// (time, sequence) pair through an EventRearm plan whose commit verifies the rebuilt
// queue against the snapshot's manifest. Construction-time events are dropped wholesale
// by ResetKernel; nothing from the replayed construction survives into the resumed run.
//
// Two consumers ride on top:
//   * RunServerCapacityCheckpointed — the capacity bisection with per-candidate prefix
//     snapshots (taken just before the first keystroke mints an interaction) reused
//     across invocations via a caller-owned cache. A cache hit forks from the snapshot
//     instead of re-simulating login storm and daemon warm-up; results are identical to
//     RunServerCapacity by the differential guarantee.
//   * `tcsctl postmortem consolidation --rewind-ms=N` — a checkpoint ring during the
//     monitored run; on the first SLO violation the newest checkpoint at least N virtual
//     milliseconds before the violation is forked with a tracer attached, replaying the
//     approach to the violation that the original (trace-off) run could not record.

#ifndef TCS_SRC_CORE_CHECKPOINT_H_
#define TCS_SRC_CORE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/core/admission.h"
#include "src/obs/metrics.h"
#include "src/sim/snapshot.h"

namespace tcs {

class Server;
class Simulator;

// The driver's own top-level snapshot section (per-user taps/typists/bursts plus the
// SLO watchdog and gauge sampler). Kernel state is tag 1 (SaveKernel); the server's
// sections are the ServerSection enum (src/session/server.h).
inline constexpr uint32_t kCheckpointDriverSection = 0x4452;  // "DR"

// Names any top-level section tag a ConsolidationRun snapshot can contain — kernel,
// driver, or one of the server's — so differential tests report "server.pager differs"
// instead of "bytes differ".
const char* CheckpointSectionName(uint32_t tag);

class ConsolidationRun {
 public:
  // Validates and replays RunConsolidation's construction sequence: config, server,
  // daemons, logins in order, stall taps, typists, optional burst tasks, sinks, SLO
  // watchdog. Throws ConfigError on bad options. `obs` must outlive the run.
  ConsolidationRun(const OsProfile& profile, const ConsolidationOptions& options,
                   const ObsConfig* obs = nullptr);
  ~ConsolidationRun();

  ConsolidationRun(const ConsolidationRun&) = delete;
  ConsolidationRun& operator=(const ConsolidationRun&) = delete;

  // Advances virtual time to the absolute instant `t` (events at exactly `t` run).
  void RunUntil(TimePoint t);
  // Runs to the configured natural end (start_delay + duration).
  void RunToEnd();
  TimePoint end_time() const;

  Simulator& sim();
  const Simulator& sim() const;
  Server& server();

  // SLO verdict so far (false / -1 when no SLO is attached or nothing violated yet).
  bool SloViolated() const;
  int64_t SloViolatedAtUs() const;

  // Serializes the full dynamic state. Callable at any point before Finish().
  std::vector<uint8_t> Snapshot() const;

  // Overwrites this run's dynamic state from `blob`. `this` must be freshly
  // constructed — same profile, options, and ObsConfig *shape* (the tracer may differ:
  // tracing is passive, which is exactly what lets a rewound replay attach one).
  // Throws SnapshotError on corruption, topology drift, or shape mismatch.
  void Restore(const std::vector<uint8_t>& blob);

  // Collects the ConsolidationResult. Call exactly once, after reaching end_time().
  ConsolidationResult Finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Constructs a fresh run of `blob`'s shape, restores, runs to the end, and collects.
ConsolidationResult ResumeConsolidation(const OsProfile& profile,
                                        const ConsolidationOptions& options,
                                        const ObsConfig* obs,
                                        const std::vector<uint8_t>& blob);

// Per-candidate prefix snapshots for the capacity search, keyed by user count. The
// cache is caller-owned so it can outlive one search and amortize login-storm warm-up
// across repeated invocations (sweeps, benchmark repetitions). Entries are only valid
// for the exact (profile, options.behavior, obs shape) they were built from — reuse
// across different configurations fails restore loudly via the snapshot's topology
// checks rather than silently diverging.
struct CapacityCheckpointCache {
  std::map<int, std::vector<uint8_t>> prefix;
  int64_t hits = 0;
  int64_t misses = 0;
};

// RunServerCapacity with fork-from-snapshot probes: each candidate N's prefix (login
// storm + daemon warm-up, up to 1 ms before the first typist keystroke) is snapshotted
// on first evaluation and forked on every later one. Within a single cold search each
// candidate is evaluated once either way — the speedup comes from reusing `cache`
// across invocations. Results are identical to RunServerCapacity (modulo wall_ms).
CapacityResult RunServerCapacityCheckpointed(const OsProfile& profile,
                                             const CapacityOptions& options,
                                             CapacityCheckpointCache& cache,
                                             const ObsConfig* obs = nullptr);

}  // namespace tcs

#endif  // TCS_SRC_CORE_CHECKPOINT_H_
