// Shared plumbing for experiment runners.
//
// Every runner in src/core follows the same frame: stamp a wall clock, wire the
// optional ObsConfig (tracer, metrics sampler, attribution engine) through the stack,
// run the simulation, then collect kernel counters and blame. These helpers are that
// frame, factored out so experiments.cc and admission.cc share one copy. Internal to
// src/core — not part of the library surface.

#ifndef TCS_SRC_CORE_RUN_SUPPORT_H_
#define TCS_SRC_CORE_RUN_SUPPORT_H_

#include <chrono>
#include <memory>
#include <sstream>
#include <string>

#include "src/core/experiments.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/slo.h"
#include "src/session/server.h"

namespace tcs {
namespace run_support {

std::string ProtocolName(ProtocolKind kind);

using WallClock = std::chrono::steady_clock;

// Adds one simulator run's kernel counters and wall-clock time into `rs`.
inline void FinishRun(RunStats& rs, const Simulator& sim, WallClock::time_point t0) {
  rs.events_executed += sim.events_executed();
  rs.pending_events += sim.pending_events();
  rs.wall_ms +=
      std::chrono::duration<double, std::milli>(WallClock::now() - t0).count();
}

// Mirrors the kernel's pending-event depth as a sim-category counter track.
void AttachSimHook(Simulator& sim, const ObsConfig* obs);

// Starts gauge sampling if the ObsConfig carries a registry; null otherwise.
std::unique_ptr<PeriodicSampler> StartSampler(Simulator& sim, const ObsConfig* obs);

// Owns the run's PeriodicSampler; on destruction renders the sampled gauge series into
// obs->sampler_csv (when requested) so the data survives the experiment's scope.
class SamplerScope {
 public:
  SamplerScope(Simulator& sim, const ObsConfig* obs)
      : obs_(obs), sampler_(StartSampler(sim, obs)) {}
  ~SamplerScope() {
    if (sampler_ != nullptr && obs_->sampler_csv != nullptr) {
      std::ostringstream out;
      sampler_->WriteCsv(out);
      *obs_->sampler_csv = out.str();
    }
  }
  SamplerScope(const SamplerScope&) = delete;
  SamplerScope& operator=(const SamplerScope&) = delete;

  // Null when the ObsConfig carried no metrics registry.
  PeriodicSampler* sampler() const { return sampler_.get(); }

 private:
  const ObsConfig* obs_;
  std::unique_ptr<PeriodicSampler> sampler_;
};

inline void ApplyObs(ServerConfig& cfg, const ObsConfig* obs) {
  if (obs != nullptr) {
    cfg.tracer = obs->tracer;
    cfg.metrics = obs->metrics;
    cfg.attribution = obs->attribution;
    cfg.recorder = obs->recorder;
  }
}

// Per-run SLO harness. When the ObsConfig carries an SloSpec with at least one active
// objective, this owns the run's watchdog — and, when the caller did not attach a
// FlightRecorder of its own, a run-local recorder, so a trace-off sweep cell still
// yields a full forensic bundle on violation. Inert (all methods no-ops / nullptr)
// when no SLO was requested, preserving the null-sink contract.
class SloRuntime {
 public:
  SloRuntime(Simulator& sim, const ObsConfig* obs) {
    if (obs == nullptr || obs->slo == nullptr || !obs->slo->Any()) {
      return;
    }
    if (obs->recorder != nullptr) {
      recorder_ = obs->recorder;
    } else {
      owned_recorder_ = std::make_unique<FlightRecorder>();
      recorder_ = owned_recorder_.get();
    }
    watchdog_ = std::make_unique<SloWatchdog>(sim, *obs->slo, recorder_, obs->metrics,
                                              obs->attribution);
  }

  SloRuntime(const SloRuntime&) = delete;
  SloRuntime& operator=(const SloRuntime&) = delete;

  bool active() const { return watchdog_ != nullptr; }
  FlightRecorder* recorder() const { return recorder_; }
  SloWatchdog* watchdog() const { return watchdog_.get(); }

  // Points the server at the run-local recorder when this runtime owns one (a
  // caller-supplied recorder was already wired by ApplyObs).
  void ApplyTo(ServerConfig& cfg) const {
    if (owned_recorder_ != nullptr) {
      cfg.recorder = owned_recorder_.get();
    }
  }

  void Start() {
    if (watchdog_ != nullptr) {
      watchdog_->Start();
    }
  }

  // Settles the run's SLO verdict into `out` (no-op when inactive).
  void Finish(SloReport& out, double availability = 1.0) {
    if (watchdog_ != nullptr) {
      out = watchdog_->FinishRun(availability);
    }
  }

 private:
  std::unique_ptr<FlightRecorder> owned_recorder_;
  FlightRecorder* recorder_ = nullptr;
  std::unique_ptr<SloWatchdog> watchdog_;
};

// Fills `blame` from the run's attribution engine, if one was attached.
inline void CollectBlame(AttributionResult& blame, const ObsConfig* obs) {
  if (obs != nullptr && obs->attribution != nullptr) {
    blame = obs->attribution->Collect();
  }
}

}  // namespace run_support
}  // namespace tcs

#endif  // TCS_SRC_CORE_RUN_SUPPORT_H_
