// Shared plumbing for experiment runners.
//
// Every runner in src/core follows the same frame: stamp a wall clock, wire the
// optional ObsConfig (tracer, metrics sampler, attribution engine) through the stack,
// run the simulation, then collect kernel counters and blame. These helpers are that
// frame, factored out so experiments.cc and admission.cc share one copy. Internal to
// src/core — not part of the library surface.

#ifndef TCS_SRC_CORE_RUN_SUPPORT_H_
#define TCS_SRC_CORE_RUN_SUPPORT_H_

#include <chrono>
#include <memory>
#include <sstream>
#include <string>

#include "src/core/experiments.h"
#include "src/session/server.h"

namespace tcs {
namespace run_support {

std::string ProtocolName(ProtocolKind kind);

using WallClock = std::chrono::steady_clock;

// Adds one simulator run's kernel counters and wall-clock time into `rs`.
inline void FinishRun(RunStats& rs, const Simulator& sim, WallClock::time_point t0) {
  rs.events_executed += sim.events_executed();
  rs.pending_events += sim.pending_events();
  rs.wall_ms +=
      std::chrono::duration<double, std::milli>(WallClock::now() - t0).count();
}

// Mirrors the kernel's pending-event depth as a sim-category counter track.
void AttachSimHook(Simulator& sim, const ObsConfig* obs);

// Starts gauge sampling if the ObsConfig carries a registry; null otherwise.
std::unique_ptr<PeriodicSampler> StartSampler(Simulator& sim, const ObsConfig* obs);

// Owns the run's PeriodicSampler; on destruction renders the sampled gauge series into
// obs->sampler_csv (when requested) so the data survives the experiment's scope.
class SamplerScope {
 public:
  SamplerScope(Simulator& sim, const ObsConfig* obs)
      : obs_(obs), sampler_(StartSampler(sim, obs)) {}
  ~SamplerScope() {
    if (sampler_ != nullptr && obs_->sampler_csv != nullptr) {
      std::ostringstream out;
      sampler_->WriteCsv(out);
      *obs_->sampler_csv = out.str();
    }
  }
  SamplerScope(const SamplerScope&) = delete;
  SamplerScope& operator=(const SamplerScope&) = delete;

 private:
  const ObsConfig* obs_;
  std::unique_ptr<PeriodicSampler> sampler_;
};

inline void ApplyObs(ServerConfig& cfg, const ObsConfig* obs) {
  if (obs != nullptr) {
    cfg.tracer = obs->tracer;
    cfg.metrics = obs->metrics;
    cfg.attribution = obs->attribution;
  }
}

// Fills `blame` from the run's attribution engine, if one was attached.
inline void CollectBlame(AttributionResult& blame, const ObsConfig* obs) {
  if (obs != nullptr && obs->attribution != nullptr) {
    blame = obs->attribution->Collect();
  }
}

}  // namespace run_support
}  // namespace tcs

#endif  // TCS_SRC_CORE_RUN_SUPPORT_H_
