#include "src/core/report.h"

#include "src/util/json.h"

namespace tcs {

namespace {

std::string RunJson(const RunStats& run) {
  JsonObject o;
  o.UInt("events_executed", run.events_executed);
  o.UInt("pending_events", run.pending_events);
  o.Double("wall_ms", run.wall_ms);
  return o.Finish();
}

std::string FaultsJson(const FaultStats& f) {
  JsonObject o;
  o.Double("availability", f.availability);
  o.Double("disk_stall_rate", f.disk_stall_rate);
  o.UInt("frames_lost", f.frames_lost);
  o.UInt("frames_corrupted", f.frames_corrupted);
  o.UInt("retransmissions", f.retransmissions);
  o.UInt("input_frames_lost", f.input_frames_lost);
  o.UInt("disconnects", f.disconnects);
  o.UInt("dropped_keystrokes", f.dropped_keystrokes);
  o.UInt("daemon_crashes", f.daemon_crashes);
  o.UInt("disk_stalls", f.disk_stalls);
  o.UInt("io_errors", f.io_errors);
  o.UInt("burst_losses", f.burst_losses);
  o.UInt("wan_queue_drops", f.wan_queue_drops);
  o.UInt("frames_shed", f.frames_shed);
  return o.Finish();
}

}  // namespace

std::string ToJson(const AttributionResult& r) {
  JsonObject o;
  o.Int("interactions", r.interactions);
  o.Int("keystrokes", r.keystrokes);
  o.UInt("minted", r.minted);
  o.Int("accounting_mismatches", r.accounting_mismatches);
  o.Int("total_us", r.total_us);
  o.Int("p50_total_us", r.p50_total_us);
  o.Int("p99_total_us", r.p99_total_us);
  o.Int("max_total_us", r.max_total_us);
  o.Str("top_stage", r.top_stage);
  std::string stages = "[";
  for (size_t i = 0; i < r.stages.size(); ++i) {
    const StageSummary& s = r.stages[i];
    JsonObject so;
    so.Str("stage", s.stage);
    so.Int("total_us", s.total_us);
    so.Double("share", s.share);
    so.Int("p50_us", s.p50_us);
    so.Int("p99_us", s.p99_us);
    so.Int("max_us", s.max_us);
    if (i > 0) {
      stages += ',';
    }
    stages += so.Finish();
  }
  stages += ']';
  o.Raw("stages", stages);
  // Display-net decomposition: present only when the run aggregated sub-stage samples
  // (AttributionConfig.decompose_network), so legacy reports keep their exact bytes.
  if (!r.net_stages.empty()) {
    std::string net = "[";
    for (size_t i = 0; i < r.net_stages.size(); ++i) {
      const StageSummary& s = r.net_stages[i];
      JsonObject so;
      so.Str("stage", s.stage);
      so.Int("total_us", s.total_us);
      so.Double("share", s.share);
      so.Int("p50_us", s.p50_us);
      so.Int("p99_us", s.p99_us);
      so.Int("max_us", s.max_us);
      if (i > 0) {
        net += ',';
      }
      net += so.Finish();
    }
    net += ']';
    o.Raw("network", net);
    o.Int("net_mismatches", r.net_mismatches);
  }
  return o.Finish();
}

std::string ToJson(const TypingUnderLoadResult& r) {
  JsonObject o;
  o.Str("experiment", "typing_under_load");
  o.Str("os", r.os_name);
  o.Int("sinks", r.sinks);
  o.Double("avg_stall_ms", r.avg_stall_ms);
  o.Double("max_stall_ms", r.max_stall_ms);
  o.Double("jitter_ms", r.jitter_ms);
  o.Int("updates", r.updates);
  if (r.blame.active) {
    o.Raw("blame", ToJson(r.blame));
  }
  if (r.slo.active) {
    o.Raw("slo", ToJson(r.slo));
  }
  o.Raw("run", RunJson(r.run));
  return o.Finish();
}

std::string ToJson(const PagingLatencyResult& r) {
  JsonObject o;
  o.Str("experiment", "paging_latency");
  o.Str("os", r.os_name);
  o.Bool("full_demand", r.full_demand);
  o.Int("runs", r.runs);
  o.Double("min_ms", r.min_ms);
  o.Double("avg_ms", r.avg_ms);
  o.Double("max_ms", r.max_ms);
  if (r.blame.active) {
    o.Raw("blame", ToJson(r.blame));
  }
  o.Raw("run", RunJson(r.run));
  return o.Finish();
}

std::string ToJson(const EndToEndResult& r) {
  JsonObject o;
  o.Str("experiment", "end_to_end_latency");
  o.Str("os", r.os_name);
  o.Str("client", r.client_name);
  o.Double("input_net_ms", r.input_net_ms);
  o.Double("server_ms", r.server_ms);
  o.Double("display_net_ms", r.display_net_ms);
  o.Double("client_ms", r.client_ms);
  o.Double("total_ms", r.total_ms);
  o.Int("updates", r.updates);
  // Only faulted runs carry the block, so fault-free reports stay byte-identical with
  // pre-fault builds.
  if (r.faults.active) {
    o.Raw("faults", FaultsJson(r.faults));
  }
  if (r.blame.active) {
    o.Raw("blame", ToJson(r.blame));
  }
  if (r.slo.active) {
    o.Raw("slo", ToJson(r.slo));
  }
  o.Raw("run", RunJson(r.run));
  return o.Finish();
}

std::string ToJson(const SizingPoint& r) {
  JsonObject o;
  o.Str("experiment", "server_sizing");
  o.Str("os", r.os_name);
  o.Int("users", r.users);
  o.Double("cpu_utilization", r.cpu_utilization);
  o.Double("avg_stall_ms", r.avg_stall_ms);
  o.Double("worst_stall_ms", r.worst_stall_ms);
  if (r.blame.active) {
    o.Raw("blame", ToJson(r.blame));
  }
  o.Raw("run", RunJson(r.run));
  return o.Finish();
}

std::string ToJson(const ConsolidationResult& r) {
  JsonObject o;
  o.Str("experiment", "consolidation");
  o.Str("os", r.os_name);
  o.Str("protocol", r.protocol);
  o.Int("users", r.users);
  o.Double("cpu_utilization", r.cpu_utilization);
  o.Double("link_utilization", r.link_utilization);
  o.UInt("resident_pages", r.resident_pages);
  o.UInt("total_frames", r.total_frames);
  o.UInt("shared_segments", r.shared_segments);
  o.Int("shared_attaches", r.shared_attaches);
  o.Int("page_faults", r.page_faults);
  o.Int("coalesced_waits", r.coalesced_waits);
  o.Double("avg_stall_ms", r.avg_stall_ms);
  o.Double("worst_stall_ms", r.worst_stall_ms);
  o.Double("worst_p99_stall_ms", r.worst_p99_stall_ms);
  std::string users = "[";
  for (size_t i = 0; i < r.per_user.size(); ++i) {
    const UserStallStats& u = r.per_user[i];
    JsonObject uo;
    uo.Int("updates", u.updates);
    uo.Double("avg_stall_ms", u.avg_stall_ms);
    uo.Double("max_stall_ms", u.max_stall_ms);
    uo.Double("jitter_ms", u.jitter_ms);
    uo.Double("p50_stall_ms", u.p50_stall_ms);
    uo.Double("p99_stall_ms", u.p99_stall_ms);
    uo.Int("wire_bytes", u.wire_bytes.count());
    uo.Double("link_share", u.link_share);
    if (i > 0) {
      users += ',';
    }
    users += uo.Finish();
  }
  users += ']';
  o.Raw("per_user", users);
  if (r.blame.active) {
    o.Raw("blame", ToJson(r.blame));
  }
  if (r.slo.active) {
    o.Raw("slo", ToJson(r.slo));
  }
  o.Raw("run", RunJson(r.run));
  return o.Finish();
}

std::string ToJson(const CapacityResult& r) {
  JsonObject o;
  o.Str("experiment", "server_capacity");
  o.Str("os", r.os_name);
  o.Str("protocol", r.protocol);
  o.Int("utilization_sized_users", r.utilization_sized_users);
  o.Int("latency_sized_users", r.latency_sized_users);
  o.Bool("utilization_over_admits", r.utilization_over_admits);
  std::string probes = "[";
  for (size_t i = 0; i < r.probes.size(); ++i) {
    if (i > 0) {
      probes += ',';
    }
    probes += ToJson(r.probes[i]);
  }
  probes += ']';
  o.Raw("probes", probes);
  o.Raw("run", RunJson(r.run));
  return o.Finish();
}

std::string ToJson(const ProtocolTrafficResult& r) {
  JsonObject o;
  o.Str("experiment", "app_workload_traffic");
  o.Str("protocol", r.protocol);
  o.Int("input_bytes", r.input.bytes);
  o.Int("input_messages", r.input.messages);
  o.Int("display_bytes", r.display.bytes);
  o.Int("display_messages", r.display.messages);
  o.Int("total_bytes", r.total_bytes);
  o.Int("total_messages", r.total_messages);
  o.Double("avg_message_size", r.avg_message_size);
  o.Int("packets", r.packets);
  o.Int("vip_bytes", r.vip_bytes);
  o.Raw("run", RunJson(r.run));
  return o.Finish();
}

std::string ToJson(const ChaosPoint& r) {
  JsonObject o;
  o.Str("experiment", "chaos_point");
  o.Str("os", r.os_name);
  o.Double("loss_rate", r.loss_rate);
  o.Double("flap_ms", r.flap_ms);
  o.Double("p50_ms", r.p50_ms);
  o.Double("p99_ms", r.p99_ms);
  o.Double("mean_ms", r.mean_ms);
  o.Double("perceptible_fraction", r.perceptible_fraction);
  o.Bool("crosses_threshold", r.crosses_threshold);
  o.Int("updates", r.updates);
  o.Int("link_frames_sent", r.link_frames_sent);
  o.Int("link_frames_delivered", r.link_frames_delivered);
  o.Int("link_frames_lost", r.link_frames_lost);
  o.Int("retransmissions", r.retransmissions);
  o.Raw("faults", FaultsJson(r.faults));
  if (r.blame.active) {
    o.Raw("blame", ToJson(r.blame));
  }
  if (r.slo.active) {
    o.Raw("slo", ToJson(r.slo));
  }
  o.Raw("run", RunJson(r.run));
  return o.Finish();
}

std::string ToJson(const WanPoint& r) {
  JsonObject o;
  o.Str("experiment", "wan_point");
  o.Str("os", r.os_name);
  o.Str("profile", r.profile);
  o.Bool("degrade", r.degrade);
  o.Int("users", r.users);
  o.Double("worst_p99_ms", r.worst_p99_ms);
  o.Double("mean_ms", r.mean_ms);
  o.Double("perceptible_fraction", r.perceptible_fraction);
  o.Double("availability", r.availability);
  o.Double("worst_starved_fraction", r.worst_starved_fraction);
  o.Int("updates", r.updates);
  o.Int("degradation_peak_level", r.degradation_peak_level);
  o.Int("degradation_transitions", r.degradation_transitions);
  o.Double("degraded_seconds", r.degraded_seconds);
  o.Int("animation_frames_skipped", r.animation_frames_skipped);
  o.Int("background_frames_drawn", r.background_frames_drawn);
  o.Raw("faults", FaultsJson(r.faults));
  if (r.blame.active) {
    o.Raw("blame", ToJson(r.blame));
  }
  if (r.slo.active) {
    o.Raw("slo", ToJson(r.slo));
  }
  o.Raw("run", RunJson(r.run));
  return o.Finish();
}

std::string WhatIfBlockJson(const WhatIfResult& r) {
  JsonObject w;
  w.Int("interactions", r.interactions);
  w.Int("baseline_p99_us", r.baseline_p99_us);
  w.Int("predicted_p99_us", r.predicted_p99_us);
  w.Int("achieved_p99_us", r.achieved_p99_us);
  w.Int("predicted_delta_us", r.predicted_delta_us);
  w.Int("achieved_delta_us", r.achieved_delta_us);
  w.Int("critical_path_mismatches", r.critical_path_mismatches);
  return w.Finish();
}

std::string ToJson(const WhatIfResult& r) {
  JsonObject o;
  o.Str("experiment", "whatif");
  o.Str("os", r.os_name);
  o.Str("profile", r.profile);
  o.Str("component", r.component);
  o.Double("speedup", r.speedup);
  o.Int("rtt_delta_us", r.rtt_delta_us);
  o.Raw("whatif", WhatIfBlockJson(r));
  o.Raw("baseline", ToJson(r.baseline));
  o.Raw("adjusted", ToJson(r.adjusted));
  o.Raw("run", RunJson(r.run));
  return o.Finish();
}

std::string ToJson(const AnimationLoadResult& r) {
  JsonObject o;
  o.Str("experiment", "gif_animation");
  o.Str("protocol", r.protocol);
  o.Double("mean_mbps", r.mean_mbps);
  o.Double("sustained_mbps", r.sustained_mbps);
  o.Int("cache_hits", r.cache_hits);
  o.Int("cache_misses", r.cache_misses);
  o.Double("cumulative_hit_ratio", r.cumulative_hit_ratio);
  o.Raw("run", RunJson(r.run));
  return o.Finish();
}

}  // namespace tcs
