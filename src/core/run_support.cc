#include "src/core/run_support.h"

namespace tcs {
namespace run_support {

std::string ProtocolName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kRdp:
      return "RDP";
    case ProtocolKind::kX:
      return "X";
    case ProtocolKind::kLbx:
      return "LBX";
    case ProtocolKind::kSlim:
      return "SLIM";
    case ProtocolKind::kVnc:
      return "VNC";
  }
  return "?";
}

void AttachSimHook(Simulator& sim, const ObsConfig* obs) {
  if (obs == nullptr || obs->tracer == nullptr ||
      !obs->tracer->Enabled(TraceCategory::kSim)) {
    return;
  }
  Tracer* tracer = obs->tracer;
  TraceTrack track = tracer->RegisterTrack("sim", "kernel");
  sim.set_dispatch_hook([tracer, track](TimePoint when, size_t pending) {
    tracer->Counter(TraceCategory::kSim, "pending_events", track, when,
                    static_cast<double>(pending));
  });
}

std::unique_ptr<PeriodicSampler> StartSampler(Simulator& sim, const ObsConfig* obs) {
  if (obs == nullptr || obs->metrics == nullptr) {
    return nullptr;
  }
  auto sampler = std::make_unique<PeriodicSampler>(sim, *obs->metrics,
                                                   obs->sample_period, obs->tracer);
  sampler->Start();
  return sampler;
}

}  // namespace run_support
}  // namespace tcs
