#include "src/metrics/latency.h"

#include <algorithm>
#include <cmath>

namespace tcs {

void LatencyRecorder::Record(Duration latency) {
  int64_t us = latency.ToMicros();
  if (stats_.count() == 0 || us < min_us_) {
    min_us_ = us;
  }
  if (stats_.count() == 0 || us > max_us_) {
    max_us_ = us;
  }
  total_us_ += us;
  sum_sq_us_ += static_cast<__int128>(us) * us;
  stats_.Add(latency.ToMillisF());
  samples_us_.push_back(us);
  sketch_.Add(us);
  if (latency >= kPerceptionThreshold) {
    ++perceptible_;
  }
}

Duration LatencyRecorder::Percentile(double q) const {
  if (sketch_.empty()) {
    return Duration::Zero();
  }
  return Duration::Micros(sketch_.NearestRank(q));
}

double LatencyRecorder::PercentileMs(double q) const {
  return static_cast<double>(Percentile(q).ToMicros()) / 1000.0;
}

Duration LatencyRecorder::Mean() const {
  int64_t n = stats_.count();
  if (n == 0) {
    return Duration::Zero();
  }
  return Duration::Micros((total_us_ + n / 2) / n);
}

Duration LatencyRecorder::Jitter() const {
  int64_t n = stats_.count();
  if (n == 0) {
    return Duration::Zero();
  }
  // Population variance via n·Σx² − (Σx)², all in exact 128-bit integer arithmetic; only
  // the final square root goes through floating point.
  __int128 num = static_cast<__int128>(n) * sum_sq_us_ -
                 static_cast<__int128>(total_us_) * total_us_;
  if (num < 0) {
    num = 0;
  }
  double var_us2 =
      static_cast<double>(num) / (static_cast<double>(n) * static_cast<double>(n));
  return Duration::Micros(static_cast<int64_t>(std::sqrt(var_us2) + 0.5));
}

double LatencyRecorder::PerceptibleFraction() const {
  if (stats_.count() == 0) {
    return 0.0;
  }
  return static_cast<double>(perceptible_) / static_cast<double>(stats_.count());
}

double LatencyRecorder::MeanVsPerception() const {
  return stats_.mean() / kPerceptionThreshold.ToMillisF();
}

StallDetector::StallDetector(Duration expected_period)
    : expected_period_(expected_period) {}

void StallDetector::OnUpdate(TimePoint when) {
  ++updates_;
  if (!have_last_) {
    have_last_ = true;
    last_ = when;
    return;
  }
  Duration gap = when - last_;
  last_ = when;
  Duration stall = gap - expected_period_;
  if (stall > Duration::Zero()) {
    ++stall_count_;
    stall_ms_.Add(stall.ToMillisF());
    all_gaps_ms_.Add(stall.ToMillisF());
  } else {
    all_gaps_ms_.Add(0.0);
  }
}

Duration StallDetector::AverageStall() const {
  return Duration::Micros(static_cast<int64_t>(stall_ms_.mean() * 1e3));
}

Duration StallDetector::MaxStall() const {
  return Duration::Micros(static_cast<int64_t>(stall_ms_.max() * 1e3));
}

Duration StallDetector::AverageStallAllGaps() const {
  return Duration::Micros(static_cast<int64_t>(all_gaps_ms_.mean() * 1e3));
}

Duration StallDetector::Jitter() const {
  return Duration::Micros(static_cast<int64_t>(all_gaps_ms_.stddev() * 1e3));
}

namespace {

void SaveStats(SnapshotWriter& w, const RunningStats& s) {
  RunningStats::State st = s.state();
  w.I64(st.count);
  w.F64(st.mean);
  w.F64(st.m2);
  w.F64(st.sum);
  w.F64(st.min);
  w.F64(st.max);
}

void LoadStats(SnapshotReader& r, RunningStats& s) {
  RunningStats::State st;
  st.count = r.I64();
  st.mean = r.F64();
  st.m2 = r.F64();
  st.sum = r.F64();
  st.min = r.F64();
  st.max = r.F64();
  s.set_state(st);
}

}  // namespace

void StallDetector::SaveTo(SnapshotWriter& w) const {
  w.Dur(expected_period_);
  w.Bool(have_last_);
  w.Time(last_);
  w.I64(updates_);
  w.I64(stall_count_);
  SaveStats(w, stall_ms_);
  SaveStats(w, all_gaps_ms_);
}

void StallDetector::LoadFrom(SnapshotReader& r) {
  expected_period_ = r.Dur();
  have_last_ = r.Bool();
  last_ = r.Time();
  updates_ = r.I64();
  stall_count_ = r.I64();
  LoadStats(r, stall_ms_);
  LoadStats(r, all_gaps_ms_);
}

}  // namespace tcs
