#include "src/metrics/latency.h"

namespace tcs {

void LatencyRecorder::Record(Duration latency) {
  double ms = latency.ToMillisF();
  stats_.Add(ms);
  samples_.Add(ms);
  if (latency >= kPerceptionThreshold) {
    ++perceptible_;
  }
}

Duration LatencyRecorder::Max() const {
  return Duration::Micros(static_cast<int64_t>(stats_.max() * 1e3));
}

Duration LatencyRecorder::Min() const {
  return Duration::Micros(static_cast<int64_t>(stats_.min() * 1e3));
}

Duration LatencyRecorder::Jitter() const {
  return Duration::Micros(static_cast<int64_t>(stats_.stddev() * 1e3));
}

double LatencyRecorder::PerceptibleFraction() const {
  if (stats_.count() == 0) {
    return 0.0;
  }
  return static_cast<double>(perceptible_) / static_cast<double>(stats_.count());
}

double LatencyRecorder::MeanVsPerception() const {
  return stats_.mean() / kPerceptionThreshold.ToMillisF();
}

StallDetector::StallDetector(Duration expected_period)
    : expected_period_(expected_period) {}

void StallDetector::OnUpdate(TimePoint when) {
  ++updates_;
  if (!have_last_) {
    have_last_ = true;
    last_ = when;
    return;
  }
  Duration gap = when - last_;
  last_ = when;
  Duration stall = gap - expected_period_;
  if (stall > Duration::Zero()) {
    ++stall_count_;
    stall_ms_.Add(stall.ToMillisF());
    all_gaps_ms_.Add(stall.ToMillisF());
  } else {
    all_gaps_ms_.Add(0.0);
  }
}

Duration StallDetector::AverageStall() const {
  return Duration::Micros(static_cast<int64_t>(stall_ms_.mean() * 1e3));
}

Duration StallDetector::MaxStall() const {
  return Duration::Micros(static_cast<int64_t>(stall_ms_.max() * 1e3));
}

Duration StallDetector::AverageStallAllGaps() const {
  return Duration::Micros(static_cast<int64_t>(all_gaps_ms_.mean() * 1e3));
}

Duration StallDetector::Jitter() const {
  return Duration::Micros(static_cast<int64_t>(all_gaps_ms_.stddev() * 1e3));
}

}  // namespace tcs
