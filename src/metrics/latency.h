// User-perceived-latency metrics (§3.2).
//
// The paper's quality model: a system degrades when (1) an operation's latency exceeds the
// threshold of human perception, (2) the number of such operations grows, or (3) latency
// is inconsistent (jitter). Humans are "generally irritated by latencies 100ms or
// greater". LatencyRecorder scores a stream of operation latencies against that model.
//
// StallDetector implements the §4.2.2 measurement: under 20 Hz character repeat the server
// should emit a display update every 50 ms; an "interactive stall" is the excess of an
// inter-arrival gap over that period.

#ifndef TCS_SRC_METRICS_LATENCY_H_
#define TCS_SRC_METRICS_LATENCY_H_

#include <vector>

#include "src/sim/snapshot.h"
#include "src/sim/time.h"
#include "src/util/percentile_sketch.h"
#include "src/util/stats.h"

namespace tcs {

// The human perception threshold the paper uses throughout.
inline constexpr Duration kPerceptionThreshold = Duration::Millis(100);

class LatencyRecorder {
 public:
  void Record(Duration latency);

  int64_t count() const { return stats_.count(); }
  // Mean/Min/Max/Jitter are computed from integer-microsecond accumulators, so they are
  // exact (no double round-trip through milliseconds): Mean is the rounded integer mean
  // and Jitter the population standard deviation of the recorded microsecond values.
  Duration Mean() const;
  Duration Max() const { return Duration::Micros(max_us_); }
  Duration Min() const { return Duration::Micros(min_us_); }
  // Standard deviation — the jitter criterion.
  Duration Jitter() const;
  // Operations above the perception threshold (degradation mode 2).
  int64_t perceptible_count() const { return perceptible_; }
  double PerceptibleFraction() const;
  // Mean latency as a multiple of the perception threshold ("40 times the threshold of
  // human perception").
  double MeanVsPerception() const;

  // Exact nearest-rank percentile over the recorded microsecond samples: the result is
  // always an actually observed latency, to the microsecond. (Samples used to be stored
  // as millisecond doubles, which quantized p50/p99 — ToMillisF is lossy for most
  // microsecond values — so percentiles now stay integral until serialization.)
  // Queries interleaved with Record() pay only an incremental merge, not a full re-sort.
  Duration Percentile(double q) const;
  double PercentileMs(double q) const;  // derived from Percentile at serialization time

  const RunningStats& raw() const { return stats_; }
  const std::vector<int64_t>& samples_us() const { return samples_us_; }

  // Checkpoint/restore. The recorder is a pure function of its Record() stream, so the
  // snapshot is just the microsecond samples in arrival order and LoadFrom replays them —
  // every derived accumulator (sketch, Welford stats, perception counters) lands on
  // bit-identical state without serializing internals.
  void SaveTo(SnapshotWriter& w) const {
    w.U64(samples_us_.size());
    for (int64_t us : samples_us_) {
      w.I64(us);
    }
  }
  void LoadFrom(SnapshotReader& r) {
    *this = LatencyRecorder();
    uint64_t n = r.U64();
    for (uint64_t i = 0; i < n; ++i) {
      Record(Duration::Micros(r.I64()));
    }
  }

 private:
  RunningStats stats_;  // milliseconds, for raw() consumers (means/extremes only)
  // Microsecond samples in arrival order (samples_us() contract) plus the incremental
  // sketch Percentile() queries against.
  std::vector<int64_t> samples_us_;
  PercentileSketch<int64_t> sketch_;
  int64_t perceptible_ = 0;
  // Exact accumulators (microseconds). The sum of squares uses 128-bit storage so even
  // long runs of 100+ second latencies cannot overflow.
  int64_t total_us_ = 0;
  int64_t min_us_ = 0;
  int64_t max_us_ = 0;
  __int128 sum_sq_us_ = 0;
};

class StallDetector {
 public:
  explicit StallDetector(Duration expected_period = Duration::Millis(50));

  // Feed each display-update arrival (or emission) time, in order.
  void OnUpdate(TimePoint when);

  // Stall lengths (inter-arrival minus the expected period, clamped at zero).
  int64_t updates() const { return updates_; }
  int64_t stall_count() const { return stall_count_; }
  Duration AverageStall() const;
  Duration MaxStall() const;
  // Average over *all* gaps (stall length zero when on time) — what Figure 3 plots.
  Duration AverageStallAllGaps() const;
  Duration Jitter() const;

  // Checkpoint/restore: field-wise accumulator state.
  void SaveTo(SnapshotWriter& w) const;
  void LoadFrom(SnapshotReader& r);

 private:
  Duration expected_period_;
  bool have_last_ = false;
  TimePoint last_;
  int64_t updates_ = 0;
  int64_t stall_count_ = 0;
  RunningStats stall_ms_;      // only gaps that stalled
  RunningStats all_gaps_ms_;   // every gap's stall length (zero when on time)
};

}  // namespace tcs

#endif  // TCS_SRC_METRICS_LATENCY_H_
