#include "src/session/os_profile.h"

namespace tcs {

namespace {

constexpr int kClockPriority = 31;  // interrupt level: always preempts

DaemonSpec ClockTick(Duration cost) {
  DaemonSpec d;
  d.name = "clock";
  d.priority = kClockPriority;
  d.period = Duration::Millis(10);  // both NT and Linux handled clock every 10 ms (§4.1.1)
  d.episode_cpu = cost;
  return d;
}

std::vector<DaemonSpec> NtBaseDaemons() {
  std::vector<DaemonSpec> daemons;
  daemons.push_back(ClockTick(Duration::Micros(100)));
  // Cache/registry housekeeping: the <=100 ms event population of Figure 2.
  DaemonSpec registry;
  registry.name = "registry-flush";
  registry.priority = 13;
  registry.period = Duration::Seconds(2);
  registry.episode_cpu = Duration::Millis(30);
  registry.duty = 0.25;
  registry.phase = Duration::Millis(700);
  daemons.push_back(registry);
  DaemonSpec scan;
  scan.name = "service-scan";
  scan.priority = 13;
  scan.period = Duration::Seconds(30);
  scan.episode_cpu = Duration::Millis(100);
  scan.duty = 0.25;
  scan.phase = Duration::Seconds(5);
  daemons.push_back(scan);
  return daemons;
}

}  // namespace

std::unique_ptr<Scheduler> OsProfile::MakeScheduler() const {
  switch (scheduler_kind) {
    case SchedulerKind::kNt:
      return std::make_unique<NtScheduler>(nt_config);
    case SchedulerKind::kLinux:
      return std::make_unique<LinuxScheduler>(linux_config);
    case SchedulerKind::kSvr4Interactive:
      return std::make_unique<Svr4InteractiveScheduler>(svr4_config);
  }
  return nullptr;
}

OsProfile OsProfile::NtWorkstation() {
  OsProfile p;
  p.name = "NT Workstation";
  p.scheduler_kind = SchedulerKind::kNt;
  p.protocol_kind = ProtocolKind::kRdp;  // unused: NTWS is local-console only
  p.idle_daemons = NtBaseDaemons();
  p.idle_system_memory = Bytes::KiB(16 * 1024);
  p.login_processes = {
      {"explorer.exe", Bytes::KiB(1368), Bytes::KiB(1804)},
      {"csrss.exe", Bytes::KiB(452), Bytes::KiB(312)},
      {"loadwc.exe", Bytes::KiB(424), Bytes::KiB(96)},
      {"nddeagnt.exe", Bytes::KiB(300), Bytes::KiB(76)},
      {"winlogin.exe", Bytes::KiB(700), Bytes::KiB(388)},
  };
  p.light_login_processes = p.login_processes;
  // Local console: the editor thread renders via the local video subsystem.
  p.keystroke_pipeline = {
      {"editor", ThreadClass::kGui, kNtForegroundPriority, Duration::Micros(1200)},
  };
  p.sink_priority = kNtBackgroundPriority;
  p.editor_working_set_pages = 900;
  return p;
}

OsProfile OsProfile::Tse() {
  OsProfile p;
  p.name = "NT TSE";
  p.scheduler_kind = SchedulerKind::kNt;
  p.protocol_kind = ProtocolKind::kRdp;
  p.idle_daemons = NtBaseDaemons();
  // The Terminal Service and Session Manager (priority 13, §4.2.1) add the 250 ms and
  // 400 ms event populations Figure 2 shows on top of NT's.
  DaemonSpec session_mgr;
  session_mgr.name = "session-manager";
  session_mgr.priority = kNtSystemDaemonPriority;
  session_mgr.period = Duration::Seconds(10);
  session_mgr.episode_cpu = Duration::Millis(250);
  session_mgr.duty = 0.25;
  session_mgr.phase = Duration::Seconds(3);
  p.idle_daemons.push_back(session_mgr);
  DaemonSpec term_svc;
  term_svc.name = "terminal-service";
  term_svc.priority = kNtSystemDaemonPriority;
  term_svc.period = Duration::Seconds(20);
  term_svc.episode_cpu = Duration::Millis(400);
  term_svc.duty = 0.25;
  term_svc.phase = Duration::Seconds(8);
  p.idle_daemons.push_back(term_svc);
  DaemonSpec session_poll;
  session_poll.name = "session-poll";
  session_poll.priority = kNtSystemDaemonPriority;
  session_poll.period = Duration::Millis(100);
  session_poll.episode_cpu = Duration::Millis(1);
  session_poll.phase = Duration::Millis(50);
  p.idle_daemons.push_back(session_poll);

  p.idle_system_memory = Bytes::KiB(19 * 1024);  // 19 MB with no sessions (§5.1.1)
  // private_memory is §5.1.1's per-session bill; shared_text is each image's code
  // segment, resident once however many sessions run it (era image sizes).
  p.login_processes = {
      {"explorer.exe", Bytes::KiB(1368), Bytes::KiB(1804)},
      {"csrss.exe", Bytes::KiB(452), Bytes::KiB(312)},
      {"loadwc.exe", Bytes::KiB(424), Bytes::KiB(96)},
      {"nddeagnt.exe", Bytes::KiB(300), Bytes::KiB(76)},
      {"winlogin.exe", Bytes::KiB(700), Bytes::KiB(388)},
  };
  p.light_login_processes = {
      {"command.com", Bytes::KiB(224), Bytes::KiB(52)},
      {"csrss.exe", Bytes::KiB(452), Bytes::KiB(312)},
      {"loadwc.exe", Bytes::KiB(424), Bytes::KiB(96)},
      {"nddeagnt.exe", Bytes::KiB(300), Bytes::KiB(76)},
      {"winlogin.exe", Bytes::KiB(700), Bytes::KiB(388)},
  };
  // TSE display requests pass through the kernel (§2): the boosted editor thread hands
  // off to win32k display handling and the RDP encoder, which run at normal priority and
  // enjoy no GUI boost — the §4.2.2 stall mechanism.
  p.keystroke_pipeline = {
      {"editor", ThreadClass::kGui, kNtForegroundPriority, Duration::Micros(1500)},
      // The display requests pass through the kernel and the Terminal Service (§2):
      // these two hops are the protocol-encode side of the pipeline, not application CPU.
      {"win32k-display", ThreadClass::kBatch, kNtBackgroundPriority, Duration::Micros(900),
       /*encode=*/true},
      {"rdp-encoder", ThreadClass::kBatch, kNtBackgroundPriority, Duration::Micros(800),
       /*encode=*/true},
  };
  p.sink_priority = kNtBackgroundPriority;
  // Notepad + csrss + win32k path: ~4 MB must come back from disk (§5.2's TSE row).
  p.editor_working_set_pages = 1000;
  p.ws_touch_min = 0.55;
  p.ws_touch_max = 1.0;
  p.pager_cluster_pages = 4;  // NT clusters page-ins (MmReadClusterSize)
  return p;
}

OsProfile OsProfile::LinuxX() {
  OsProfile p;
  p.name = "Linux/X";
  p.scheduler_kind = SchedulerKind::kLinux;
  p.protocol_kind = ProtocolKind::kX;
  p.idle_daemons.push_back(ClockTick(Duration::Micros(100)));
  DaemonSpec kflushd;
  kflushd.name = "kflushd";
  kflushd.period = Duration::Seconds(5);
  kflushd.episode_cpu = Duration::Millis(5);
  kflushd.duty = 0.5;
  kflushd.phase = Duration::Seconds(1);
  p.idle_daemons.push_back(kflushd);
  DaemonSpec inetd;
  inetd.name = "inetd";
  inetd.period = Duration::Seconds(1);
  inetd.episode_cpu = Duration::Micros(500);
  inetd.phase = Duration::Millis(300);
  p.idle_daemons.push_back(inetd);

  p.idle_system_memory = Bytes::KiB(17 * 1024);  // 17 MB (§5.1.1)
  p.login_processes = {
      {"in.rshd", Bytes::KiB(204), Bytes::KiB(48)},
      {"xterm", Bytes::KiB(372), Bytes::KiB(288)},
      {"bash", Bytes::KiB(176), Bytes::KiB(412)},
  };
  p.light_login_processes = p.login_processes;
  // Remote X: the rendering X server runs on the *client* machine; the server side of a
  // keystroke is vim alone, writing the update straight to its socket.
  p.keystroke_pipeline = {
      {"vim", ThreadClass::kGui, 0, Duration::Micros(2500)},
  };
  p.sink_priority = 0;  // nice 0, same as everything else
  // vim + bash + rshd text and data: ~1.2 MB swapped back in (§5.2's Linux row).
  p.editor_working_set_pages = 290;
  p.ws_touch_min = 0.2;
  p.ws_touch_max = 1.0;
  p.pager_cluster_pages = 1;  // Linux 2.0 single-page swap-in
  return p;
}

OsProfile OsProfile::LinuxSvr4() {
  OsProfile p = LinuxX();
  p.name = "Linux/X + SVR4-IA";
  p.scheduler_kind = SchedulerKind::kSvr4Interactive;
  return p;
}

}  // namespace tcs
