// Backpressure-driven graceful degradation.
//
// On a WAN-degraded link the display channel falls behind: the bufferbloat queue fills,
// the reliable channel's in-flight window grows, and every user's latency climbs
// together. The DegradationController watches one scalar pressure signal (bytes of
// unretired display backlog, supplied by the server) and moves the per-session pipelines
// through a small ladder of increasingly aggressive service levels:
//
//   0 kNormal          full service
//   1 kCoalesce        hold the pipeline between passes so keystrokes batch harder
//   2 kDropAnimation   additionally drop marquee/animation frames (keep 1 in N)
//   3 kHardCache       additionally force harder bitmap caching (smaller payloads)
//   4 kPauseBackground additionally pause background (non-interactive) sessions
//
// Transitions are hysteretic: upshifts are immediate (pressure crossing threshold(k) =
// k * level_step jumps straight to k), but a downshift needs `recover_polls` consecutive
// polls below recover_fraction * threshold(current) — so a link hovering at a boundary
// never flaps. The controller consumes no randomness and polls on virtual time only, so
// its transition log is byte-identical across reruns and --jobs values.

#ifndef TCS_SRC_SESSION_DEGRADATION_H_
#define TCS_SRC_SESSION_DEGRADATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/periodic.h"
#include "src/sim/simulator.h"
#include "src/sim/units.h"

namespace tcs {

class FlightRecorder;

struct DegradationConfig {
  bool enabled = false;
  // How often the pressure signal is sampled.
  Duration poll_interval = Duration::Millis(100);
  // Arming delay before the first poll: session setup (login storms, initial desktop
  // paints) floods the link with a one-off burst that is not WAN congestion, so the
  // controller starts watching only once steady state is reached. Zero = first poll
  // after one poll_interval.
  Duration start_delay = Duration::Zero();
  // Pressure step per level: level k engages at pressure >= k * level_step bytes.
  Bytes level_step = Bytes::KiB(48);
  // Hysteresis: recovery requires pressure below recover_fraction * threshold(level)...
  double recover_fraction = 0.5;
  // ...for this many consecutive polls, and then drops exactly one level.
  int recover_polls = 5;
  // Lever 1 (kCoalesce+): extra hold between pipeline passes while keystrokes pend.
  Duration coalesce_hold = Duration::Millis(40);
  // Lever 2 (kDropAnimation+): keep 1 of every N animation/marquee frames.
  int animation_keep_one_in = 3;
  // Lever 3 (kHardCache+): scale factor applied to bitmap compression (payload shrink).
  double cache_boost = 2.0;
};

// Throws tcs::ConfigError on a non-positive poll interval, level step, recover_polls,
// animation_keep_one_in, a recover_fraction outside (0, 1), or cache_boost < 1.
DegradationConfig Validated(DegradationConfig config);

enum class DegradationLevel : int {
  kNormal = 0,
  kCoalesce = 1,
  kDropAnimation = 2,
  kHardCache = 3,
  kPauseBackground = 4,
};

inline constexpr int kMaxDegradationLevel =
    static_cast<int>(DegradationLevel::kPauseBackground);

struct DegradationTransition {
  TimePoint at;
  int from = 0;
  int to = 0;
  int64_t pressure_bytes = 0;  // the sample that caused the move
};

class DegradationController {
 public:
  // `pressure_bytes` is sampled every poll; it must be pure w.r.t. virtual time (no
  // randomness) for the controller's determinism guarantee to hold.
  DegradationController(Simulator& sim, DegradationConfig config,
                        std::function<int64_t()> pressure_bytes);

  DegradationController(const DegradationController&) = delete;
  DegradationController& operator=(const DegradationController&) = delete;

  // Arms the periodic poll. Safe to call once at run start; Stop() cancels it.
  void Start();
  void Stop();

  // One pressure sample + level update. Driven by the periodic task; exposed so property
  // tests can step the ladder directly with synthetic pressure.
  void Poll();

  int level() const { return level_; }
  DegradationLevel Level() const { return static_cast<DegradationLevel>(level_); }

  // --- Levers, consulted by the server pipeline and background sessions ---

  // Extra hold before the next pipeline pass while keystrokes pend (zero below
  // kCoalesce). Lands in the degradation-hold attribution stage, so degraded runs do
  // not masquerade as scheduler contention in blame digests.
  Duration CoalesceHold() const {
    return level_ >= static_cast<int>(DegradationLevel::kCoalesce)
               ? config_.coalesce_hold
               : Duration::Zero();
  }
  // Whether the next animation/marquee frame should be dropped. Deterministic
  // counter-based thinning: below kDropAnimation every frame is kept.
  bool ShouldDropAnimationFrame();
  // Bitmap compression multiplier (1.0 below kHardCache).
  double CacheBoost() const {
    return level_ >= static_cast<int>(DegradationLevel::kHardCache) ? config_.cache_boost
                                                                    : 1.0;
  }
  // True while background (non-interactive) sessions should stop emitting.
  bool BackgroundPaused() const {
    return level_ >= static_cast<int>(DegradationLevel::kPauseBackground);
  }

  // --- Accounting ---

  const std::vector<DegradationTransition>& transitions() const { return transitions_; }
  int64_t upshifts() const { return upshifts_; }
  int64_t downshifts() const { return downshifts_; }
  int64_t animation_frames_dropped() const { return animation_frames_dropped_; }
  int64_t polls() const { return polls_; }
  // Virtual time spent at or above kCoalesce so far (closed intervals only... the final
  // open interval is closed by the caller sampling at run end via DegradedTimeThrough).
  Duration DegradedTimeThrough(TimePoint now) const;
  int64_t last_pressure_bytes() const { return last_pressure_; }

  // Fired on every level change, after the transition is logged.
  void set_on_transition(std::function<void(int from, int to, TimePoint at)> fn) {
    on_transition_ = std::move(fn);
  }

  // Observability: transitions become session-category instants (and flight records).
  void SetTracer(Tracer* tracer);
  void SetFlightRecorder(FlightRecorder* recorder) { recorder_ = recorder; }

  // Checkpoint/restore: ladder position, hysteresis counters, accounting, the transition
  // log, and the pending poll. The pressure callback is reconstruction config.
  void SaveTo(SnapshotWriter& w) const;
  void LoadFrom(SnapshotReader& r, EventRearm& plan);

 private:
  void MoveTo(int new_level, int64_t pressure);

  Simulator& sim_;
  DegradationConfig config_;
  std::function<int64_t()> pressure_bytes_;
  PeriodicTask poll_task_;
  Tracer* tracer_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  TraceTrack trace_track_;
  int level_ = 0;
  int calm_polls_ = 0;
  int64_t last_pressure_ = 0;
  int64_t animation_counter_ = 0;
  int64_t animation_frames_dropped_ = 0;
  int64_t upshifts_ = 0;
  int64_t downshifts_ = 0;
  int64_t polls_ = 0;
  TimePoint degraded_since_ = TimePoint::Zero();  // valid while level_ > 0
  Duration degraded_closed_ = Duration::Zero();
  std::vector<DegradationTransition> transitions_;
  std::function<void(int, int, TimePoint)> on_transition_;
};

}  // namespace tcs

#endif  // TCS_SRC_SESSION_DEGRADATION_H_
