#include "src/session/server.h"

#include <algorithm>
#include <cassert>

#include "src/proto/lbx_protocol.h"
#include "src/proto/slim_protocol.h"
#include "src/proto/vnc_protocol.h"
#include "src/proto/rdp_protocol.h"
#include "src/proto/x_protocol.h"
#include "src/workload/sink.h"

namespace tcs {

namespace {

constexpr Bytes kPageSize = Bytes::Of(4096);

size_t PagesFor(Bytes b) {
  return static_cast<size_t>((b.count() + kPageSize.count() - 1) / kPageSize.count());
}

PagerConfig MakePagerConfig(const OsProfile& profile, const ServerConfig& cfg) {
  PagerConfig pc;
  Bytes user_ram = cfg.ram - profile.idle_system_memory;
  assert(user_ram.count() > 0);
  pc.total_frames = PagesFor(user_ram);
  pc.cluster_pages = profile.pager_cluster_pages;
  pc.policy = cfg.eviction;
  pc.throttle_delay = cfg.pager_throttle;
  return pc;
}

std::unique_ptr<DisplayProtocol> MakeProtocol(ProtocolKind kind, Simulator& sim,
                                              MessageSender& display, MessageSender& input,
                                              ProtoTap* tap, Rng rng) {
  switch (kind) {
    case ProtocolKind::kRdp:
      return std::make_unique<RdpProtocol>(sim, display, input, tap, rng);
    case ProtocolKind::kX:
      return std::make_unique<XProtocol>(sim, display, input, tap, rng);
    case ProtocolKind::kLbx:
      return std::make_unique<LbxProtocol>(sim, display, input, tap, rng);
    case ProtocolKind::kSlim:
      return std::make_unique<SlimProtocol>(sim, display, input, tap, rng);
    case ProtocolKind::kVnc: {
      auto vnc = std::make_unique<VncProtocol>(sim, display, input, tap, rng);
      vnc->StartClientPull();
      return vnc;
    }
  }
  return nullptr;
}

}  // namespace

Server::Server(Simulator& sim, OsProfile profile, ServerConfig config)
    : sim_(sim),
      profile_(std::move(profile)),
      config_(config),
      rng_(config.seed),
      cpu_(sim, profile_.MakeScheduler(), config.cpu),
      disk_(sim, rng_.Fork(), config.disk),
      pager_(sim, disk_, MakePagerConfig(profile_, config)),
      link_(sim, config.link),
      display_sender_(link_, HeaderModel::TcpIp()),
      input_sender_(link_, HeaderModel::TcpIp()),
      tap_(config.tap_bucket) {
  protocol_ = MakeProtocol(profile_.protocol_kind, sim_, display_sender_, input_sender_,
                           &tap_, rng_.Fork());
  protocol_->set_display_message_hook([this](Bytes payload) { update_payload_ += payload; });
  if (config_.tracer != nullptr) {
    cpu_.SetTracer(config_.tracer);
    pager_.SetTracer(config_.tracer);
    disk_.SetTracer(config_.tracer);
    link_.SetTracer(config_.tracer);
    protocol_->SetTracer(config_.tracer);
  }
  if (config_.metrics != nullptr) {
    config_.metrics->AddGauge("runq_depth", [this] {
      return static_cast<double>(cpu_.scheduler().ReadyCount());
    });
    config_.metrics->AddGauge("resident_pages", [this] {
      return static_cast<double>(pager_.frames_used());
    });
    config_.metrics->AddGauge("link_backlog_bytes", [this] {
      return static_cast<double>(link_.BacklogBytesAt(sim_.Now()).count());
    });
    if (auto* rdp = dynamic_cast<RdpProtocol*>(protocol_.get())) {
      config_.metrics->AddGauge("bitmap_cache_hit_rate",
                                [rdp] { return rdp->bitmap_cache().CumulativeHitRatio(); });
    }
  }
}

void Server::StartDaemons() {
  if (!daemons_.empty()) {
    return;
  }
  for (const DaemonSpec& spec : profile_.idle_daemons) {
    DaemonRuntime rt;
    rt.spec = spec;
    rt.thread = cpu_.CreateThread(spec.name, spec.cls, spec.priority);
    daemons_.push_back(std::move(rt));
  }
  // Arm after the vector is stable (PeriodicTask captures the runtime slot).
  for (DaemonRuntime& rt : daemons_) {
    rt.task = std::make_unique<PeriodicTask>(sim_, rt.spec.period, [this, &rt] {
      PostDaemonEpisode(rt.thread, rt.spec);
    });
    rt.task->Start(rt.spec.phase);
  }
}

void Server::PostDaemonEpisode(Thread* thread, const DaemonSpec& spec) {
  // An episode of E total CPU at duty d: chunks of (10 ms * d) posted every 10 ms, so the
  // episode occupies ~E/d of wall time at utilization d — Figure 1's plateaus and
  // Figure 2's long per-thread events at once.
  Duration chunk = spec.duty >= 1.0
                       ? spec.episode_cpu
                       : std::max(Duration::Micros(100), Duration::Millis(10) * spec.duty);
  Duration remaining = spec.episode_cpu;
  int k = 0;
  while (remaining > Duration::Zero()) {
    Duration c = std::min(chunk, remaining);
    sim_.Schedule(Duration::Millis(10) * k, [this, thread, c] { cpu_.PostWork(*thread, c); });
    remaining -= c;
    ++k;
  }
}

Session& Server::Login(bool light_session) {
  sessions_.push_back(std::make_unique<Session>());
  Session& s = *sessions_.back();
  s.id_ = sessions_.size();
  if (config_.tracer != nullptr) {
    s.trace_track_ =
        config_.tracer->RegisterTrack("session", "user" + std::to_string(s.id_));
  }

  const std::vector<ProcessSpec>& processes =
      light_session ? profile_.light_login_processes : profile_.login_processes;
  for (const ProcessSpec& proc : processes) {
    AddressSpace* as = pager_.CreateAddressSpace(proc.name, /*interactive=*/true);
    pager_.Prefault(*as, 0, std::max<size_t>(1, PagesFor(proc.private_memory)));
    s.process_spaces_.push_back(as);
    s.private_memory_ += proc.private_memory;
  }
  // The editor's keystroke-path working set (code + data across the involved processes).
  s.working_set_ = pager_.CreateAddressSpace("editor-ws", /*interactive=*/true);
  pager_.Prefault(*s.working_set_, 0, profile_.editor_working_set_pages);

  for (const PipelineHop& hop : profile_.keystroke_pipeline) {
    s.pipeline_.push_back(cpu_.CreateThread(hop.name, hop.cls, hop.priority));
  }

  // Session negotiation and initialization traffic (§6.1.1).
  display_sender_.SendMessage(protocol_->session_setup_bytes());
  return s;
}

void Server::StartSinks(int count) {
  tcs::StartSinks(cpu_, count, profile_.sink_priority, profile_.sink_class);
}

Duration Server::InputTransitDelay() const {
  // A keystroke-sized frame (64 B payload + wire headers) queued behind whatever the
  // link is carrying right now, plus propagation.
  Duration queue = Duration::Zero();
  if (link_.busy_until() > sim_.Now()) {
    queue = link_.busy_until() - sim_.Now();
  }
  Bytes wire = Bytes::Of(64) + HeaderModel::TcpIp().WirePerPacket();
  return queue + TransmissionDelay(wire, link_.config().rate) + link_.config().propagation;
}

void Server::Keystroke(Session& session) {
  TimePoint sent_at = sim_.Now();
  protocol_->SubmitInput(InputEvent::Key(true));
  protocol_->SubmitInput(InputEvent::Key(false));
  sim_.Schedule(InputTransitDelay(),
                [this, &session, sent_at] { OnKeystrokeArrived(session, sent_at); });
}

void Server::OnKeystrokeArrived(Session& session, TimePoint sent_at) {
  if (config_.tracer != nullptr) {
    config_.tracer->Span(TraceCategory::kSession, "input-net", session.trace_track_,
                         sent_at, sim_.Now());
  }
  if (session.pending_keystrokes_ == 0) {
    session.oldest_pending_sent_ = sent_at;
    session.oldest_pending_arrived_ = sim_.Now();
  }
  ++session.pending_keystrokes_;
  if (!session.pipeline_busy_) {
    session.pipeline_busy_ = true;
    StartPipelinePass(session);
  }
}

void Server::StartPipelinePass(Session& session) {
  int batch = session.pending_keystrokes_;
  session.pending_keystrokes_ = 0;
  assert(batch > 0);
  // Freeze this batch's latency attribution before new keystrokes overwrite it.
  session.current_batch_sent_ = session.oldest_pending_sent_;
  session.current_batch_arrived_ = session.oldest_pending_arrived_;
  // The editor cannot echo until the keystroke path's working set is resident (§5.2):
  // page in anything a streaming job evicted, then run the hops. The fraction of the
  // working set a particular keystroke touches varies (profile-calibrated).
  double frac = profile_.ws_touch_min +
                rng_.NextDouble() * (profile_.ws_touch_max - profile_.ws_touch_min);
  auto pages = static_cast<size_t>(
      frac * static_cast<double>(profile_.editor_working_set_pages));
  pages = std::max<size_t>(1, pages);
  pager_.AccessRange(*session.working_set_, 0, pages, /*write=*/false,
                     [this, &session, batch] { RunHop(session, 0, batch); });
}

void Server::RunHop(Session& session, size_t hop, int batch) {
  assert(hop < session.pipeline_.size());
  const PipelineHop& spec = profile_.keystroke_pipeline[hop];
  Duration work = spec.work;
  if (hop == 0 && batch > 1) {
    // Echoing a drained batch costs a little more than a single character.
    work += Duration::Micros(50) * (batch - 1);
  }
  WakeReason reason = hop == 0 ? WakeReason::kInputEvent : WakeReason::kOther;
  cpu_.PostWork(
      *session.pipeline_[hop], work,
      [this, &session, hop, batch] {
        if (hop + 1 < session.pipeline_.size()) {
          RunHop(session, hop + 1, batch);
        } else {
          CompletePipeline(session, batch);
        }
      },
      reason);
}

void Server::CompletePipeline(Session& session, int batch) {
  update_payload_ = Bytes::Zero();
  protocol_->SubmitDraw(DrawCommand::Text(batch));
  protocol_->Flush();
  TimePoint emitted = sim_.Now();
  if (config_.tracer != nullptr) {
    config_.tracer->Span(TraceCategory::kSession, "keystroke-batch", session.trace_track_,
                         session.current_batch_arrived_, emitted, "batch",
                         static_cast<int64_t>(batch));
  }
  if (session.on_display_update_) {
    session.on_display_update_(emitted);
  }
  if (session.on_frame_painted_) {
    KeystrokeLatency lat;
    lat.keystroke_at = session.current_batch_sent_;
    lat.input_net = session.current_batch_arrived_ - session.current_batch_sent_;
    lat.server = emitted - session.current_batch_arrived_;
    if (client_ != nullptr) {
      // The update's frames were just queued: the link's horizon is their last bit.
      TimePoint delivered = std::max(emitted, link_.busy_until()) + link_.config().propagation;
      lat.display_net = delivered - emitted;
      lat.client = client_->DecodeDelay(profile_.protocol_kind, update_payload_);
      TimePoint painted = delivered + lat.client;
      auto cb = session.on_frame_painted_;
      sim_.At(painted, [cb, lat] { cb(lat); });
    } else {
      session.on_frame_painted_(lat);
    }
  }
  if (session.pending_keystrokes_ > 0) {
    StartPipelinePass(session);
  } else {
    session.pipeline_busy_ = false;
  }
}

}  // namespace tcs
