#include "src/session/server.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "src/sim/resume_kinds.h"

#include "src/obs/flight_recorder.h"
#include "src/util/config_error.h"
#include "src/proto/lbx_protocol.h"
#include "src/proto/slim_protocol.h"
#include "src/proto/vnc_protocol.h"
#include "src/proto/rdp_protocol.h"
#include "src/proto/x_protocol.h"
#include "src/workload/sink.h"

namespace tcs {

namespace {

constexpr Bytes kPageSize = Bytes::Of(4096);

size_t PagesFor(Bytes b) {
  return static_cast<size_t>((b.count() + kPageSize.count() - 1) / kPageSize.count());
}

PagerConfig MakePagerConfig(const OsProfile& profile, const ServerConfig& cfg) {
  PagerConfig pc;
  Bytes user_ram = cfg.ram - profile.idle_system_memory;
  if (user_ram.count() <= 0) {
    throw ConfigError("ServerConfig.ram",
                      "RAM must exceed the profile's idle system memory");
  }
  pc.total_frames = PagesFor(user_ram);
  pc.cluster_pages = profile.pager_cluster_pages;
  pc.policy = cfg.eviction;
  pc.throttle_delay = cfg.pager_throttle;
  return pc;
}

std::unique_ptr<DisplayProtocol> MakeProtocol(ProtocolKind kind, Simulator& sim,
                                              MessageSender& display, MessageSender& input,
                                              ProtoTap* tap, Rng rng) {
  switch (kind) {
    case ProtocolKind::kRdp:
      return std::make_unique<RdpProtocol>(sim, display, input, tap, rng);
    case ProtocolKind::kX:
      return std::make_unique<XProtocol>(sim, display, input, tap, rng);
    case ProtocolKind::kLbx:
      return std::make_unique<LbxProtocol>(sim, display, input, tap, rng);
    case ProtocolKind::kSlim:
      return std::make_unique<SlimProtocol>(sim, display, input, tap, rng);
    case ProtocolKind::kVnc: {
      auto vnc = std::make_unique<VncProtocol>(sim, display, input, tap, rng);
      vnc->StartClientPull();
      return vnc;
    }
  }
  return nullptr;
}

FrameTransport& PickTransport(std::unique_ptr<ReliableChannel>& reliable, Link& link) {
  if (reliable != nullptr) {
    return *reliable;
  }
  return link;
}

constexpr int Idx(AttrStage stage) { return static_cast<int>(stage); }
constexpr int Idx(NetSubStage stage) { return static_cast<int>(stage); }

}  // namespace

ServerConfig Validated(ServerConfig config) {
  if (config.ram.count() <= 0) {
    throw ConfigError("ServerConfig.ram", "RAM must be positive");
  }
  if (!(config.tap_bucket > Duration::Zero())) {
    throw ConfigError("ServerConfig.tap_bucket", "tap bucket must be positive");
  }
  if (config.pager_throttle < Duration::Zero()) {
    throw ConfigError("ServerConfig.pager_throttle", "pager throttle cannot be negative");
  }
  Validate(config.faults);
  return config;
}

Server::Server(Simulator& sim, OsProfile profile, ServerConfig config)
    : sim_(sim),
      profile_(std::move(profile)),
      config_(Validated(std::move(config))),
      rng_(config_.seed),
      cpu_(sim, profile_.MakeScheduler(), config_.cpu),
      disk_(sim, rng_.Fork(), config_.disk),
      pager_(sim, disk_, MakePagerConfig(profile_, config_)),
      link_(sim, config_.link),
      link_fault_(config_.faults.link.Any()
                      ? std::make_unique<LinkFaultInjector>(config_.faults.link,
                                                            config_.faults.seed)
                      : nullptr),
      disk_fault_(config_.faults.disk.Any()
                      ? std::make_unique<DiskFaultInjector>(config_.faults.disk,
                                                            config_.faults.seed ^ 0xD15Cull)
                      : nullptr),
      reliable_(link_fault_ != nullptr ? std::make_unique<ReliableChannel>(sim, link_)
                                       : nullptr),
      tap_(config_.tap_bucket),
      fault_rng_(config_.faults.seed ^ 0xC0FFEEull) {
  if (link_fault_ != nullptr) {
    link_.SetFaultInjector(link_fault_.get());
  }
  if (disk_fault_ != nullptr) {
    disk_.SetFaultInjector(disk_fault_.get());
  }
  if (config_.tracer != nullptr) {
    cpu_.SetTracer(config_.tracer);
    pager_.SetTracer(config_.tracer);
    disk_.SetTracer(config_.tracer);
    link_.SetTracer(config_.tracer);
    if (link_fault_ != nullptr) {
      link_fault_->SetTracer(config_.tracer);
    }
    if (reliable_ != nullptr) {
      reliable_->SetTracer(config_.tracer);
    }
    if (config_.faults.session.Any()) {
      fault_track_ = config_.tracer->RegisterTrack("fault", "server");
    }
  }
  if (config_.recorder != nullptr) {
    cpu_.SetFlightRecorder(config_.recorder);
    pager_.SetFlightRecorder(config_.recorder);
    link_.SetFlightRecorder(config_.recorder);
    if (reliable_ != nullptr) {
      reliable_->SetFlightRecorder(config_.recorder);
    }
  }
  if (config_.metrics != nullptr) {
    config_.metrics->AddGauge("runq_depth", [this] {
      return static_cast<double>(cpu_.scheduler().ReadyCount());
    });
    config_.metrics->AddGauge("resident_pages", [this] {
      return static_cast<double>(pager_.frames_used());
    });
    config_.metrics->AddGauge("link_backlog_bytes", [this] {
      return static_cast<double>(link_.BacklogBytesAt(sim_.Now()).count());
    });
    // The bitmap-cache gauge is per-protocol and protocols now live per session: the
    // first RDP Login registers it (see Login).
    // Fault gauges only exist on faulted runs, so fault-free metric output is unchanged.
    if (config_.faults.Any()) {
      config_.metrics->AddGauge("link_frames_lost", [this] {
        return static_cast<double>(link_.frames_lost());
      });
      config_.metrics->AddGauge("retransmissions", [this] {
        return reliable_ != nullptr ? static_cast<double>(reliable_->retransmissions())
                                    : 0.0;
      });
      config_.metrics->AddGauge("sessions_disconnected", [this] {
        double n = 0.0;
        for (const auto& s : sessions_) {
          if (!s->connected_) {
            n += 1.0;
          }
        }
        return n;
      });
      // WAN backpressure gauges: bufferbloat queue depth in full frames, and the
      // reliable channel's send-window fill fraction. Sampled into metrics.csv so
      // bufferbloat onset is visible in-run, not only in the post-hoc report ledger.
      config_.metrics->AddGauge("wan_queue_depth", [this] {
        double frame =
            static_cast<double>(config_.link.mtu.count() + config_.link.framing.count());
        return static_cast<double>(link_.BacklogBytesAt(sim_.Now()).count()) / frame;
      });
      config_.metrics->AddGauge("reliable_window_fill", [this] {
        return reliable_ != nullptr ? reliable_->WindowFill() : 0.0;
      });
    }
  }
  if (config_.attribution != nullptr) {
    if (profile_.keystroke_pipeline.size() >
        static_cast<size_t>(InteractionRecord::kMaxHops)) {
      throw ConfigError("OsProfile.keystroke_pipeline",
                        "latency attribution supports at most 8 pipeline hops");
    }
    if (Tracer* tr = config_.attribution->tracer()) {
      for (const PipelineHop& hop : profile_.keystroke_pipeline) {
        hop_trace_names_.push_back(tr->Intern(hop.name));
      }
    }
    // Attributed runs split display-net into queueing/retransmit-wait/serialization/
    // propagation/jitter; the retransmit share needs the link's wire ledger. Pure
    // bookkeeping (no events, no randomness), so enabling it never perturbs a run.
    link_.EnableWireLedger();
  }
  if (config_.faults.session.Any()) {
    ArmFaultSchedule();
  }
  if (config_.degradation.enabled) {
    // Pressure = display-channel bytes not yet retired: the wire backlog plus (with a
    // reliable channel) everything sent but unacked, each frame billed at a full MTU.
    Bytes frame = config_.link.mtu + config_.link.framing;
    degradation_ = std::make_unique<DegradationController>(
        sim_, config_.degradation, [this, frame]() -> int64_t {
          int64_t pressure = link_.BacklogBytesAt(sim_.Now()).count();
          if (reliable_ != nullptr) {
            pressure += reliable_->frames_in_flight() * frame.count();
          }
          return pressure;
        });
    degradation_->set_on_transition([this](int /*from*/, int to, TimePoint /*at*/) {
      double scale = DegradedPayloadScale(to);
      for (const auto& s : sessions_) {
        if (!s->logged_out_) {
          s->protocol_->SetDegradation(to, scale);
        }
      }
    });
    if (config_.tracer != nullptr) {
      degradation_->SetTracer(config_.tracer);
    }
    if (config_.recorder != nullptr) {
      degradation_->SetFlightRecorder(config_.recorder);
    }
    degradation_->Start();
  }
}

double Server::DegradedPayloadScale(int level) const {
  return level >= static_cast<int>(DegradationLevel::kHardCache)
             ? 1.0 / config_.degradation.cache_boost
             : 1.0;
}

void Server::StartDaemons() {
  if (!daemons_.empty()) {
    return;
  }
  for (const DaemonSpec& spec : profile_.idle_daemons) {
    DaemonRuntime rt;
    rt.spec = spec;
    rt.thread = cpu_.CreateThread(spec.name, spec.cls, spec.priority);
    daemons_.push_back(std::move(rt));
  }
  // Arm after the vector is stable (PeriodicTask captures the runtime slot).
  for (size_t i = 0; i < daemons_.size(); ++i) {
    DaemonRuntime& rt = daemons_[i];
    rt.task = std::make_unique<PeriodicTask>(sim_, rt.spec.period,
                                             [this, i] { PostDaemonEpisode(i); });
    rt.task->Start(rt.spec.phase);
  }
}

void Server::PostDaemonEpisode(size_t daemon_idx) {
  Thread* thread = daemons_[daemon_idx].thread;
  const DaemonSpec& spec = daemons_[daemon_idx].spec;
  // An episode of E total CPU at duty d: chunks of (10 ms * d) posted every 10 ms, so the
  // episode occupies ~E/d of wall time at utilization d — Figure 1's plateaus and
  // Figure 2's long per-thread events at once.
  Duration chunk = spec.duty >= 1.0
                       ? spec.episode_cpu
                       : std::max(Duration::Micros(100), Duration::Millis(10) * spec.duty);
  Duration remaining = spec.episode_cpu;
  int k = 0;
  while (remaining > Duration::Zero()) {
    Duration c = std::min(chunk, remaining);
    EventId ev = sim_.Schedule(Duration::Millis(10) * k,
                               [this, thread, c] { cpu_.PostWork(*thread, c); });
    pending_daemon_chunks_.Note(sim_, {ev, static_cast<uint32_t>(daemon_idx), c});
    remaining -= c;
    ++k;
  }
}

Session& Server::Login(bool light_session) {
  sessions_.push_back(std::make_unique<Session>());
  Session& s = *sessions_.back();
  s.id_ = sessions_.size();
  if (config_.tracer != nullptr) {
    s.trace_track_ =
        config_.tracer->RegisterTrack("session", "user" + std::to_string(s.id_));
  }

  const std::vector<ProcessSpec>& processes =
      light_session ? profile_.light_login_processes : profile_.login_processes;
  for (const ProcessSpec& proc : processes) {
    AddressSpace* as = pager_.CreateAddressSpace(proc.name, /*interactive=*/true);
    size_t pages = std::max<size_t>(1, PagesFor(proc.private_memory));
    pager_.Prefault(*as, 0, pages);
    s.process_spaces_.push_back(as);
    s.process_pages_.push_back(pages);
    s.private_memory_ += proc.private_memory;
    // The image's text segment: one resident copy server-wide. The first login to run
    // the process prefaults it; later sessions just take a reference (§5.1.1's
    // sublinear per-user growth).
    if (proc.shared_text.count() > 0) {
      std::string key = "text:" + proc.name;
      SharedSegment seg = pager_.AcquireShared(key, /*interactive=*/true);
      if (seg.created) {
        pager_.Prefault(*seg.space, 0, std::max<size_t>(1, PagesFor(proc.shared_text)));
      }
      s.shared_keys_.push_back(std::move(key));
      s.shared_memory_ += proc.shared_text;
    }
  }
  // The editor's keystroke-path working set (code + data across the involved processes).
  s.working_set_ = pager_.CreateAddressSpace("editor-ws", /*interactive=*/true);
  pager_.Prefault(*s.working_set_, 0, profile_.editor_working_set_pages);

  for (const PipelineHop& hop : profile_.keystroke_pipeline) {
    s.pipeline_.push_back(cpu_.CreateThread(hop.name, hop.cls, hop.priority));
  }

  // The session's own protocol pipeline: a flow-accounting tap on the one shared
  // transport, its message senders, and a fresh encoder + caches.
  s.flow_ = std::make_unique<SessionFlow>(PickTransport(reliable_, link_),
                                          flow_ledgers_.Acquire());
  // Ordinary protocol messages' only delivery action is this flow's ledger bump; key
  // them with the session id so in-flight sends restore through kResumeFlowDelivered.
  s.flow_->set_delivered_key(ResumeKey::Make(kResumeFlowDelivered, s.id_));
  s.display_sender_ = std::make_unique<MessageSender>(*s.flow_, HeaderModel::TcpIp());
  s.input_sender_ = std::make_unique<MessageSender>(*s.flow_, HeaderModel::TcpIp());
  s.protocol_ = MakeProtocol(profile_.protocol_kind, sim_, *s.display_sender_,
                             *s.input_sender_, &tap_, rng_.Fork());
  Session* sp = &s;
  s.protocol_->set_display_message_hook(
      [sp](Bytes payload) { sp->update_payload_ += payload; });
  if (config_.tracer != nullptr) {
    s.protocol_->SetTracer(config_.tracer);
  }
  if (degradation_ != nullptr) {
    // A login mid-degradation joins the ladder at the current level.
    s.protocol_->SetDegradation(degradation_->level(),
                                DegradedPayloadScale(degradation_->level()));
  }
  if (config_.metrics != nullptr && !bitmap_gauge_registered_) {
    if (auto* rdp = dynamic_cast<RdpProtocol*>(s.protocol_.get())) {
      config_.metrics->AddGauge("bitmap_cache_hit_rate",
                                [rdp] { return rdp->bitmap_cache().CumulativeHitRatio(); });
      bitmap_gauge_registered_ = true;
    }
  }

  // Session negotiation and initialization traffic (§6.1.1).
  s.display_sender_->SendMessage(s.protocol_->session_setup_bytes());
  return s;
}

void Server::Logout(Session& session) {
  if (session.logged_out_) {
    return;
  }
  session.logged_out_ = true;
  session.connected_ = false;
  ++session.generation_;  // abandon in-flight pipeline callbacks
  session.pending_keystrokes_ = 0;
  session.pipeline_busy_ = false;
  session.hold_pending_ = false;
  for (AddressSpace* as : session.process_spaces_) {
    pager_.ReleaseAddressSpace(as);
  }
  session.process_spaces_.clear();
  session.process_pages_.clear();
  if (session.working_set_ != nullptr) {
    pager_.ReleaseAddressSpace(session.working_set_);
    session.working_set_ = nullptr;
  }
  // Last one out frees the shared text.
  for (const std::string& key : session.shared_keys_) {
    pager_.ReleaseShared(key);
  }
  session.shared_keys_.clear();
  if (config_.tracer != nullptr) {
    config_.tracer->Instant(TraceCategory::kSession, "logout", session.trace_track_,
                            sim_.Now());
  }
}

void Server::StartSinks(int count) {
  tcs::StartSinks(cpu_, count, profile_.sink_priority, profile_.sink_class);
}

Duration Server::InputTransitDelay() const {
  // A keystroke-sized frame (64 B payload + wire headers) queued behind whatever the
  // link is carrying right now, plus propagation.
  Duration queue = Duration::Zero();
  if (link_.busy_until() > sim_.Now()) {
    queue = link_.busy_until() - sim_.Now();
  }
  // Input rides the return direction: on an asymmetric WAN profile it serializes at the
  // (usually narrower) uplink rate.
  Bytes wire = Bytes::Of(64) + HeaderModel::TcpIp().WirePerPacket();
  return queue + TransmissionDelay(wire, link_.UpRate()) + link_.config().propagation;
}

void Server::Keystroke(Session& session) {
  if (!session.connected_) {
    // Typed into a dead connection: the client buffers nothing, the keystroke is gone.
    ++session.dropped_keystrokes_;
    ++dropped_keystrokes_;
    return;
  }
  TimePoint sent_at = sim_.Now();
  session.protocol_->SubmitInput(InputEvent::Key(true));
  session.protocol_->SubmitInput(InputEvent::Key(false));
  Duration transit = InputTransitDelay();
  if (link_fault_ != nullptr && link_fault_->wan_active()) {
    // WAN input leg: extra one-way delay plus jitter from the dedicated input stream.
    transit += link_fault_->WanInputExtra();
  }
  Duration retransmit = Duration::Zero();
  if (link_fault_ != nullptr) {
    // Lost input frames are recovered by retransmission (200 ms base RTO, the reliable
    // channel's default) and outages pin the message behind the window.
    transit +=
        link_fault_->InputDelayPenalty(sent_at, Duration::Millis(200), &retransmit);
  }
  if (config_.attribution != nullptr) {
    // Mint the interaction id at injection time; it and the retry split ride the arrival
    // event. The fatter capture still fits the callback's inline buffer, so the enabled
    // path allocates nothing here either.
    uint64_t id = config_.attribution->MintInteraction();
    int64_t retransmit_us = retransmit.ToMicros();
    EventId ev = sim_.Schedule(transit, [this, &session, sent_at, id, retransmit_us] {
      OnKeystrokeArrived(session, sent_at, id, retransmit_us);
    });
    pending_arrivals_.Note(sim_, {ev, session.id_, sent_at, id, retransmit_us});
  } else {
    EventId ev = sim_.Schedule(
        transit, [this, &session, sent_at] { OnKeystrokeArrived(session, sent_at, 0, 0); });
    pending_arrivals_.Note(sim_, {ev, session.id_, sent_at, 0, 0});
  }
}

void Server::OnKeystrokeArrived(Session& session, TimePoint sent_at,
                                uint64_t interaction_id, int64_t retransmit_us) {
  if (config_.tracer != nullptr) {
    config_.tracer->Span(TraceCategory::kSession, "input-net", session.trace_track_,
                         sent_at, sim_.Now());
  }
  if (config_.recorder != nullptr) {
    config_.recorder->Span(FlightComponent::kSession, "input-net", sent_at, sim_.Now(),
                           interaction_id, static_cast<int64_t>(session.id_),
                           retransmit_us);
  }
  if (session.pending_keystrokes_ == 0) {
    session.oldest_pending_sent_ = sent_at;
    session.oldest_pending_arrived_ = sim_.Now();
    if (config_.attribution != nullptr) {
      // A batch is attributed to its oldest keystroke; later coalesced repeats keep
      // their minted ids but fold into this record's batch count.
      InteractionRecord& rec = session.pending_attr_;
      rec = InteractionRecord{};
      rec.id = interaction_id;
      rec.sent_us = sent_at.ToMicros();
      rec.arrived_us = sim_.Now().ToMicros();
      rec.stage_us[Idx(AttrStage::kRetransmit)] = retransmit_us;
      // Queueing + serialization + propagation + any outage hold: everything of the
      // input leg that is not retry time.
      rec.stage_us[Idx(AttrStage::kInputNet)] =
          (rec.arrived_us - rec.sent_us) - retransmit_us;
    }
  }
  ++session.pending_keystrokes_;
  if (!session.pipeline_busy_) {
    session.pipeline_busy_ = true;
    StartPipelinePass(session);
  }
}

void Server::StartPipelinePass(Session& session) {
  uint64_t gen = session.generation_;
  int batch = session.pending_keystrokes_;
  session.pending_keystrokes_ = 0;
  assert(batch > 0);
  // Freeze this batch's latency attribution before new keystrokes overwrite it.
  session.current_batch_sent_ = session.oldest_pending_sent_;
  session.current_batch_arrived_ = session.oldest_pending_arrived_;
  const bool held = session.hold_pending_;
  const int64_t hold_started_us = session.hold_started_us_;
  session.hold_pending_ = false;
  if (config_.attribution != nullptr) {
    session.current_attr_ = session.pending_attr_;
    InteractionRecord& rec = session.current_attr_;
    rec.batch = batch;
    rec.pass_start_us = sim_.Now().ToMicros();
    // Time the batch's oldest keystroke sat behind the previous pipeline pass. When the
    // DegradationController held the pipeline between passes, the tail of that wait
    // (from the hold's start, clipped to the keystroke's own arrival) is the
    // controller's doing, not the scheduler's: bill it to the degradation-hold stage so
    // degraded runs don't masquerade as scheduler contention. Both stages remain
    // telescoping timestamp differences, so the stage-sum invariant is untouched.
    int64_t wait = rec.pass_start_us - rec.arrived_us;
    int64_t hold_billed = 0;
    if (held) {
      hold_billed = std::max<int64_t>(
          0, rec.pass_start_us - std::max(rec.arrived_us, hold_started_us));
      hold_billed = std::min(hold_billed, wait);
    }
    rec.stage_us[Idx(AttrStage::kSchedWait)] += wait - hold_billed;
    rec.stage_us[Idx(AttrStage::kDegradationHold)] += hold_billed;
  }
  // The editor cannot echo until the keystroke path's working set is resident (§5.2):
  // page in anything a streaming job evicted, then run the hops. The fraction of the
  // working set a particular keystroke touches varies (profile-calibrated).
  double frac = profile_.ws_touch_min +
                rng_.NextDouble() * (profile_.ws_touch_max - profile_.ws_touch_min);
  auto pages = static_cast<size_t>(
      frac * static_cast<double>(profile_.editor_working_set_pages));
  pages = std::max<size_t>(1, pages);
  pager_.AccessRange(*session.working_set_, 0, pages, /*write=*/false,
                     [this, &session, batch, gen] {
                       if (session.generation_ != gen) {
                         return;  // the session restarted cold while we paged in
                       }
                       if (config_.attribution != nullptr) {
                         InteractionRecord& rec = session.current_attr_;
                         rec.mem_done_us = sim_.Now().ToMicros();
                         rec.stage_us[Idx(AttrStage::kMemStall)] =
                             rec.mem_done_us - rec.pass_start_us;
                       }
                       RunHop(session, 0, batch, gen);
                     },
                     ResumeKey::Make(kResumeServerPageInDone, session.id_,
                                     static_cast<uint64_t>(batch), gen));
}

void Server::RunHop(Session& session, size_t hop, int batch, uint64_t gen) {
  assert(hop < session.pipeline_.size());
  const PipelineHop& spec = profile_.keystroke_pipeline[hop];
  Duration work = spec.work;
  if (hop == 0 && batch > 1) {
    // Echoing a drained batch costs a little more than a single character.
    work += Duration::Micros(50) * (batch - 1);
  }
  WakeReason reason = hop == 0 ? WakeReason::kInputEvent : WakeReason::kOther;
  if (config_.attribution != nullptr) {
    InteractionRecord& rec = session.current_attr_;
    rec.hop_start_us[hop] = sim_.Now().ToMicros();
    // The hop's exact CPU bill at this machine's speed; the completion callback splits
    // the hop's elapsed time into this service and run-queue wait.
    rec.hop_service_us[hop] = cpu_.ScaledCost(work).ToMicros();
    rec.hop_encode[hop] = spec.encode;
    rec.hop_name[hop] = hop < hop_trace_names_.size() ? hop_trace_names_[hop] : nullptr;
    rec.hop_count = static_cast<int>(hop) + 1;
  }
  cpu_.PostWork(
      *session.pipeline_[hop], work,
      [this, &session, hop, batch, gen] {
        if (session.generation_ != gen) {
          return;  // abandoned by a cold restart
        }
        if (config_.attribution != nullptr) {
          InteractionRecord& rec = session.current_attr_;
          rec.hop_end_us[hop] = sim_.Now().ToMicros();
          int64_t elapsed = rec.hop_end_us[hop] - rec.hop_start_us[hop];
          int64_t service = std::min(rec.hop_service_us[hop], elapsed);
          rec.hop_service_us[hop] = service;
          rec.stage_us[rec.hop_encode[hop] ? Idx(AttrStage::kProtoEncode)
                                           : Idx(AttrStage::kCpuService)] += service;
          rec.stage_us[Idx(AttrStage::kSchedWait)] += elapsed - service;
        }
        if (hop + 1 < session.pipeline_.size()) {
          RunHop(session, hop + 1, batch, gen);
        } else {
          CompletePipeline(session, batch);
        }
      },
      reason,
      ResumeKey::Make(kResumeServerRenderDone, session.id_, hop,
                      static_cast<uint64_t>(batch), gen));
}

void Server::CompletePipeline(Session& session, int batch) {
  if (!session.connected_) {
    // The update has nowhere to go; drain any pre-disconnect backlog, then idle.
    if (session.pending_keystrokes_ > 0) {
      StartPipelinePass(session);
    } else {
      session.pipeline_busy_ = false;
    }
    return;
  }
  // Pre-flush wire snapshot for the display-net decomposition: the backlog ahead of
  // this update, and the share of it occupied by retransmitted frames. Taken before the
  // flush queues the update's own frames so "queueing ahead of me" and "my own bits"
  // stay distinct.
  int64_t backlog_us = 0;
  int64_t retrans_wait_us = 0;
  if (config_.attribution != nullptr && client_ != nullptr) {
    TimePoint now = sim_.Now();
    if (link_.busy_until() > now) {
      backlog_us = (link_.busy_until() - now).ToMicros();
    }
    retrans_wait_us = std::min(backlog_us, link_.PendingRetransmitWireUs(now));
  }
  session.update_payload_ = Bytes::Zero();
  session.protocol_->SubmitDraw(DrawCommand::Text(batch));
  session.protocol_->Flush();
  TimePoint emitted = sim_.Now();
  // The update's frames were just queued: the link's horizon is their last bit.
  TimePoint delivered = emitted;
  Duration decode = Duration::Zero();
  if (client_ != nullptr) {
    delivered = std::max(emitted, link_.busy_until()) + link_.config().propagation +
                link_.last_wan_extra();
    decode = client_->DecodeDelay(profile_.protocol_kind, session.update_payload_);
  }
  TimePoint painted = delivered + decode;
  if (config_.attribution != nullptr) {
    // Commit at emission: the display leg is already determined (the frames are on the
    // link, the decode bill is a pure function of the payload), so the record is final
    // here and the invariant can be checked synchronously.
    InteractionRecord& rec = session.current_attr_;
    rec.emitted_us = emitted.ToMicros();
    rec.delivered_us = delivered.ToMicros();
    rec.painted_us = painted.ToMicros();
    rec.stage_us[Idx(AttrStage::kDisplayNet)] = rec.delivered_us - rec.emitted_us;
    rec.stage_us[Idx(AttrStage::kClientDecode)] = rec.painted_us - rec.delivered_us;
    if (client_ != nullptr) {
      // Decompose display-net against the same arithmetic that produced `delivered`:
      //   delivered = max(emitted, busy_until) + propagation + last_wan_extra
      // Queueing is the pre-flush backlog minus its retransmit share; serialization is
      // this update's own wire occupancy (post-flush horizon minus emitted minus
      // backlog); jitter is the WAN draw above the profile's fixed extra delay; and
      // propagation is the exact residual (LAN propagation + WAN extra_delay), so the
      // five sub-stages telescope to the display-net stage by construction.
      int64_t wire_done_us = link_.busy_until().ToMicros();
      int64_t queue_us = backlog_us - retrans_wait_us;
      int64_t serialize_us =
          std::max<int64_t>(0, wire_done_us - (rec.emitted_us + backlog_us));
      int64_t jitter_us = link_.last_wan_jitter().ToMicros();
      rec.net_us[Idx(NetSubStage::kQueueing)] = queue_us;
      rec.net_us[Idx(NetSubStage::kRetransmitWait)] = retrans_wait_us;
      rec.net_us[Idx(NetSubStage::kSerialization)] = serialize_us;
      rec.net_us[Idx(NetSubStage::kJitter)] = jitter_us;
      rec.net_us[Idx(NetSubStage::kPropagation)] =
          rec.stage_us[Idx(AttrStage::kDisplayNet)] - queue_us - retrans_wait_us -
          serialize_us - jitter_us;
    }
    config_.attribution->Commit(rec);
  }
  if (config_.tracer != nullptr) {
    config_.tracer->Span(TraceCategory::kSession, "keystroke-batch", session.trace_track_,
                         session.current_batch_arrived_, emitted, "batch",
                         static_cast<int64_t>(batch));
  }
  if (config_.recorder != nullptr) {
    uint64_t flow = config_.attribution != nullptr ? session.current_attr_.id : 0;
    config_.recorder->Span(FlightComponent::kSession, "keystroke-batch",
                           session.current_batch_arrived_, emitted, flow,
                           static_cast<int64_t>(batch),
                           static_cast<int64_t>(session.id_));
  }
  if (session.on_display_update_) {
    session.on_display_update_(emitted);
  }
  if (session.on_frame_painted_) {
    KeystrokeLatency lat;
    lat.keystroke_at = session.current_batch_sent_;
    lat.input_net = session.current_batch_arrived_ - session.current_batch_sent_;
    lat.server = emitted - session.current_batch_arrived_;
    if (client_ != nullptr) {
      lat.display_net = delivered - emitted;
      lat.client = decode;
      auto cb = session.on_frame_painted_;
      EventId ev = sim_.At(painted, [cb, lat] { cb(lat); });
      pending_paints_.Note(sim_, {ev, session.id_, lat});
    } else {
      session.on_frame_painted_(lat);
    }
  }
  if (session.pending_keystrokes_ > 0) {
    Duration hold =
        degradation_ != nullptr ? degradation_->CoalesceHold() : Duration::Zero();
    if (hold > Duration::Zero()) {
      // Degraded: hold the pipeline so further keystrokes coalesce into one fatter,
      // cheaper batch. The pipeline stays busy through the hold; the next pass bills
      // the hold window to the degradation-hold attribution stage (see
      // StartPipelinePass), keeping the stage-sum invariant while naming the
      // controller, not the scheduler, as the cause.
      session.hold_pending_ = true;
      session.hold_started_us_ = sim_.Now().ToMicros();
      uint64_t gen = session.generation_;
      Session* sp = &session;
      EventId ev = sim_.Schedule(hold, [this, sp, gen] {
        if (sp->generation_ != gen || sp->logged_out_) {
          return;  // restarted cold or logged out during the hold
        }
        if (sp->pending_keystrokes_ > 0) {
          StartPipelinePass(*sp);
        } else {
          sp->hold_pending_ = false;
          sp->pipeline_busy_ = false;
        }
      });
      pending_holds_.Note(sim_, {ev, sp->id_, gen});
    } else {
      StartPipelinePass(session);
    }
  } else {
    session.pipeline_busy_ = false;
  }
}

void Server::Disconnect(Session& session) {
  if (!session.connected_) {
    return;
  }
  session.connected_ = false;
  session.disconnected_at_ = sim_.Now();
  ++disconnects_;
  if (config_.tracer != nullptr) {
    config_.tracer->Instant(TraceCategory::kFault, "disconnect", session.trace_track_,
                            sim_.Now());
  }
}

void Server::Reconnect(Session& session) {
  if (session.connected_) {
    return;
  }
  session.connected_ = true;
  session_downtime_ += sim_.Now() - session.disconnected_at_;
  if (config_.tracer != nullptr) {
    config_.tracer->Span(TraceCategory::kFault, "disconnected", session.trace_track_,
                         session.disconnected_at_, sim_.Now());
  }
  if (profile_.protocol_kind == ProtocolKind::kRdp) {
    // TSE keeps the session alive server-side; the returning client arrives with cold
    // caches. Invalidate them and pay a resync burst — a fraction of full session setup
    // (capability re-negotiation plus a screen repaint's worth of orders).
    session.protocol_->OnSessionReconnect();
    session.display_sender_->SendMessage(
        Bytes::Of(session.protocol_->session_setup_bytes().count() / 4));
  } else {
    // X-family sessions die with the transport: the login restarts cold. Everything the
    // old processes had resident is gone, in-flight pipeline work is abandoned, and the
    // full session negotiation replays.
    ++session.generation_;
    session.pending_keystrokes_ = 0;
    session.pipeline_busy_ = false;
    session.hold_pending_ = false;
    session.protocol_->OnSessionReconnect();
    for (size_t i = 0; i < session.process_spaces_.size(); ++i) {
      pager_.MarkSwappedOut(*session.process_spaces_[i], 0, session.process_pages_[i]);
    }
    pager_.MarkSwappedOut(*session.working_set_, 0, profile_.editor_working_set_pages);
    session.display_sender_->SendMessage(session.protocol_->session_setup_bytes());
  }
}

void Server::ArmFaultSchedule() {
  const SessionFaultPlan& sp = config_.faults.session;
  if (sp.disconnect_every > Duration::Zero()) {
    ScheduleNextDisconnect();
  }
  if (sp.daemon_crash_every > Duration::Zero()) {
    ScheduleNextDaemonCrash();
  }
}

void Server::ScheduleNextDisconnect() {
  // +/-50% jitter from the fault stream keeps disconnects from phase-locking with the
  // typing cadence while staying reproducible for a given plan seed.
  Duration delay = config_.faults.session.disconnect_every * (0.5 + fault_rng_.NextDouble());
  disconnect_timer_ = sim_.Schedule(delay, [this] {
    FireDisconnect();
    ScheduleNextDisconnect();
  });
}

void Server::FireDisconnect() {
  if (sessions_.empty()) {
    return;  // nobody logged in yet; the schedule keeps ticking
  }
  Session& s = *sessions_[disconnect_rr_++ % sessions_.size()];
  if (!s.connected_) {
    return;  // already down (reconnect pending)
  }
  Disconnect(s);
  Session* sp = &s;
  EventId ev =
      sim_.Schedule(config_.faults.session.reconnect_after, [this, sp] { Reconnect(*sp); });
  pending_reconnects_.Note(sim_, {ev, sp->id_});
}

void Server::ScheduleNextDaemonCrash() {
  Duration delay =
      config_.faults.session.daemon_crash_every * (0.5 + fault_rng_.NextDouble());
  crash_timer_ = sim_.Schedule(delay, [this] {
    FireDaemonCrash();
    ScheduleNextDaemonCrash();
  });
}

void Server::FireDaemonCrash() {
  if (daemons_.empty()) {
    return;  // daemons never started; nothing to kill
  }
  size_t idx = daemon_rr_++ % daemons_.size();
  DaemonRuntime& rt = daemons_[idx];
  if (rt.task == nullptr || !rt.task->IsRunning()) {
    return;  // already down (restart pending)
  }
  rt.task->Stop();
  ++daemon_crashes_;
  if (config_.tracer != nullptr) {
    config_.tracer->Instant(TraceCategory::kFault,
                            config_.tracer->Intern("crash:" + rt.spec.name), fault_track_,
                            sim_.Now());
  }
  EventId ev = sim_.Schedule(config_.faults.session.daemon_restart_after, [this, idx] {
    DaemonRuntime& rtp = daemons_[idx];
    if (rtp.task->IsRunning()) {
      return;
    }
    rtp.task->Start(rtp.spec.phase);
    // Restart storm: the reborn daemon immediately replays one episode of work.
    PostDaemonEpisode(idx);
  });
  pending_daemon_restarts_.Note(sim_, {ev, static_cast<uint32_t>(idx)});
}

FaultStats Server::CollectFaultStats(Duration run_duration) {
  FaultStats st;
  st.active = config_.faults.Any();
  if (!st.active) {
    return st;
  }
  st.frames_lost = static_cast<uint64_t>(link_.frames_lost());
  st.wan_queue_drops = static_cast<uint64_t>(link_.wan_queue_drops());
  if (link_fault_ != nullptr) {
    st.frames_corrupted = static_cast<uint64_t>(link_fault_->frames_corrupted());
    st.input_frames_lost = static_cast<uint64_t>(link_fault_->input_frames_lost());
    st.burst_losses = static_cast<uint64_t>(link_fault_->burst_losses());
  }
  if (reliable_ != nullptr) {
    st.retransmissions = static_cast<uint64_t>(reliable_->retransmissions());
    st.frames_shed = static_cast<uint64_t>(reliable_->frames_shed());
  }
  st.disconnects = static_cast<uint64_t>(disconnects_);
  st.dropped_keystrokes = static_cast<uint64_t>(dropped_keystrokes_);
  st.daemon_crashes = static_cast<uint64_t>(daemon_crashes_);
  if (disk_fault_ != nullptr) {
    st.disk_stalls = static_cast<uint64_t>(disk_fault_->stalls());
    st.io_errors = static_cast<uint64_t>(disk_fault_->io_errors());
    st.disk_stall_rate = disk_fault_->StallRate();
  }
  // Availability: link outage time plus mean per-session disconnected time (closed
  // intervals plus any still open) over the run duration.
  Duration down = session_downtime_;
  for (const auto& s : sessions_) {
    if (!s->connected_) {
      down += sim_.Now() - s->disconnected_at_;
    }
  }
  Duration outage = Duration::Zero();
  if (link_fault_ != nullptr) {
    outage = link_fault_->OutageTimeBefore(sim_.Now());
  }
  if (run_duration > Duration::Zero()) {
    Duration per_session_down =
        sessions_.empty() ? down : down / static_cast<int64_t>(sessions_.size());
    double unavail = (outage + per_session_down) / run_duration;
    st.availability = std::clamp(1.0 - unavail, 0.0, 1.0);
  }
  return st;
}

// ---------------------------------------------------------------------------
// Checkpoint/restore

namespace {

constexpr uint32_t Tag(ServerSection s) { return static_cast<uint32_t>(s); }

void SaveRng(SnapshotWriter& w, const Rng& rng) {
  for (uint64_t word : rng.state()) {
    w.U64(word);
  }
}

void LoadRng(SnapshotReader& r, Rng& rng) {
  std::array<uint64_t, 4> state;
  for (uint64_t& word : state) {
    word = r.U64();
  }
  rng.set_state(state);
}

void SaveAttr(SnapshotWriter& w, const InteractionRecord& rec) {
  w.U64(rec.id);
  w.I64(rec.batch);
  w.I64(rec.hop_count);
  w.I64(rec.sent_us);
  w.I64(rec.arrived_us);
  w.I64(rec.pass_start_us);
  w.I64(rec.mem_done_us);
  w.I64(rec.emitted_us);
  w.I64(rec.delivered_us);
  w.I64(rec.painted_us);
  for (int64_t v : rec.stage_us) {
    w.I64(v);
  }
  for (int64_t v : rec.net_us) {
    w.I64(v);
  }
  for (int i = 0; i < InteractionRecord::kMaxHops; ++i) {
    w.I64(rec.hop_start_us[i]);
    w.I64(rec.hop_end_us[i]);
    w.I64(rec.hop_service_us[i]);
    w.Bool(rec.hop_encode[i]);
  }
}

// The interned hop-name pointers cannot serialize; they are refilled by index from the
// server's interned table (empty unless the attribution engine carries a tracer, in
// which case the rebuilt server interned the same names in the same order).
void LoadAttr(SnapshotReader& r, InteractionRecord& rec,
              const std::vector<const char*>& hop_names) {
  rec.id = r.U64();
  rec.batch = static_cast<int>(r.I64());
  rec.hop_count = static_cast<int>(r.I64());
  rec.sent_us = r.I64();
  rec.arrived_us = r.I64();
  rec.pass_start_us = r.I64();
  rec.mem_done_us = r.I64();
  rec.emitted_us = r.I64();
  rec.delivered_us = r.I64();
  rec.painted_us = r.I64();
  for (int64_t& v : rec.stage_us) {
    v = r.I64();
  }
  for (int64_t& v : rec.net_us) {
    v = r.I64();
  }
  for (int i = 0; i < InteractionRecord::kMaxHops; ++i) {
    rec.hop_start_us[i] = r.I64();
    rec.hop_end_us[i] = r.I64();
    rec.hop_service_us[i] = r.I64();
    rec.hop_encode[i] = r.Bool();
    rec.hop_name[i] = i < rec.hop_count && static_cast<size_t>(i) < hop_names.size()
                          ? hop_names[static_cast<size_t>(i)]
                          : nullptr;
  }
}

void SaveLatency(SnapshotWriter& w, const KeystrokeLatency& lat) {
  w.Time(lat.keystroke_at);
  w.Dur(lat.input_net);
  w.Dur(lat.server);
  w.Dur(lat.display_net);
  w.Dur(lat.client);
}

KeystrokeLatency LoadLatency(SnapshotReader& r) {
  KeystrokeLatency lat;
  lat.keystroke_at = r.Time();
  lat.input_net = r.Dur();
  lat.server = r.Dur();
  lat.display_net = r.Dur();
  lat.client = r.Dur();
  return lat;
}

// Serializes one pending-record list: the live (still-pending) entries only, each as
// (seq, when) followed by the record's replay scalars. Non-destructive: stale records
// are skipped, not erased.
template <typename Record, typename WriteFn>
void SavePendingList(SnapshotWriter& w, const Simulator& sim,
                     const std::vector<Record>& items, WriteFn&& write) {
  uint64_t live = 0;
  for (const Record& rec : items) {
    if (sim.IsPending(rec.ev)) {
      ++live;
    }
  }
  w.U64(live);
  for (const Record& rec : items) {
    uint64_t seq = 0;
    TimePoint when;
    if (!sim.PendingInfo(rec.ev, &seq, &when)) {
      continue;
    }
    w.U64(seq);
    w.Time(when);
    write(rec);
  }
}

void SaveTimer(SnapshotWriter& w, const Simulator& sim, EventId ev) {
  uint64_t seq = 0;
  TimePoint when;
  bool pending = ev.IsValid() && sim.PendingInfo(ev, &seq, &when);
  w.Bool(pending);
  if (pending) {
    w.U64(seq);
    w.Time(when);
  }
}

}  // namespace

const char* ServerSectionName(uint32_t tag) {
  switch (static_cast<ServerSection>(tag)) {
    case ServerSection::kCore:
      return "server.core";
    case ServerSection::kCpu:
      return "server.cpu";
    case ServerSection::kDisk:
      return "server.disk";
    case ServerSection::kPager:
      return "server.pager";
    case ServerSection::kLink:
      return "server.link";
    case ServerSection::kFaults:
      return "server.faults";
    case ServerSection::kReliable:
      return "server.reliable";
    case ServerSection::kDegradation:
      return "server.degradation";
    case ServerSection::kTap:
      return "server.tap";
    case ServerSection::kDaemons:
      return "server.daemons";
    case ServerSection::kSessions:
      return "server.sessions";
    case ServerSection::kFlows:
      return "server.flows";
    case ServerSection::kPending:
      return "server.pending";
  }
  return "server.?";
}

Session& Server::SessionById(uint64_t id) const {
  if (id == 0 || id > sessions_.size()) {
    throw SnapshotError("server.sessions", "resume key names an unknown session id");
  }
  return *sessions_[static_cast<size_t>(id) - 1];
}

void Server::RegisterRestorers(EventRearm& plan) {
  pager_.RegisterRestorers(plan);
  plan.RegisterRestorer(
      kResumeFlowDelivered, [this](const ResumeKey& key) -> EventRearm::Thunk {
        if (key.n != 1) {
          throw SnapshotError("server.flows", "flow-delivered key wants one argument");
        }
        uint64_t id = key.arg(0);
        if (id == 0 || id > flow_ledgers_.size()) {
          throw SnapshotError("server.flows",
                              "flow-delivered key names an unknown session");
        }
        int64_t* tally = &flow_ledgers_[static_cast<size_t>(id) - 1].delivered;
        return [tally] { ++*tally; };
      });
  plan.RegisterRestorer(
      kResumeServerPageInDone, [this](const ResumeKey& key) -> EventRearm::Thunk {
        if (key.n != 3) {
          throw SnapshotError("server.sessions", "page-in key wants three arguments");
        }
        Session* sp = &SessionById(key.arg(0));
        int batch = static_cast<int>(key.arg(1));
        uint64_t gen = key.arg(2);
        return [this, sp, batch, gen] {
          if (sp->generation_ != gen) {
            return;  // the session restarted cold while we paged in
          }
          if (config_.attribution != nullptr) {
            InteractionRecord& rec = sp->current_attr_;
            rec.mem_done_us = sim_.Now().ToMicros();
            rec.stage_us[Idx(AttrStage::kMemStall)] = rec.mem_done_us - rec.pass_start_us;
          }
          RunHop(*sp, 0, batch, gen);
        };
      });
  plan.RegisterRestorer(
      kResumeServerRenderDone, [this](const ResumeKey& key) -> EventRearm::Thunk {
        if (key.n != 4) {
          throw SnapshotError("server.sessions", "hop key wants four arguments");
        }
        Session* sp = &SessionById(key.arg(0));
        size_t hop = static_cast<size_t>(key.arg(1));
        int batch = static_cast<int>(key.arg(2));
        uint64_t gen = key.arg(3);
        if (hop >= sp->pipeline_.size()) {
          throw SnapshotError("server.sessions", "hop key past the pipeline's end");
        }
        return [this, sp, hop, batch, gen] {
          if (sp->generation_ != gen) {
            return;  // abandoned by a cold restart
          }
          if (config_.attribution != nullptr) {
            InteractionRecord& rec = sp->current_attr_;
            rec.hop_end_us[hop] = sim_.Now().ToMicros();
            int64_t elapsed = rec.hop_end_us[hop] - rec.hop_start_us[hop];
            int64_t service = std::min(rec.hop_service_us[hop], elapsed);
            rec.hop_service_us[hop] = service;
            rec.stage_us[rec.hop_encode[hop] ? Idx(AttrStage::kProtoEncode)
                                             : Idx(AttrStage::kCpuService)] += service;
            rec.stage_us[Idx(AttrStage::kSchedWait)] += elapsed - service;
          }
          if (hop + 1 < sp->pipeline_.size()) {
            RunHop(*sp, hop + 1, batch, gen);
          } else {
            CompletePipeline(*sp, batch);
          }
        };
      });
}

void Server::SaveTo(SnapshotWriter& w) const {
  w.BeginSection(Tag(ServerSection::kCore));
  SaveRng(w, rng_);
  SaveRng(w, fault_rng_);
  w.U64(disconnect_rr_);
  w.U64(daemon_rr_);
  w.I64(disconnects_);
  w.I64(daemon_crashes_);
  w.I64(dropped_keystrokes_);
  w.Dur(session_downtime_);
  w.EndSection();

  w.BeginSection(Tag(ServerSection::kCpu));
  cpu_.SaveTo(w);
  w.EndSection();

  w.BeginSection(Tag(ServerSection::kDisk));
  disk_.SaveTo(w);
  w.EndSection();

  w.BeginSection(Tag(ServerSection::kPager));
  pager_.SaveTo(w);
  w.EndSection();

  w.BeginSection(Tag(ServerSection::kLink));
  link_.SaveTo(w);
  w.EndSection();

  w.BeginSection(Tag(ServerSection::kFaults));
  w.Bool(link_fault_ != nullptr);
  if (link_fault_ != nullptr) {
    link_fault_->SaveTo(w);
  }
  w.Bool(disk_fault_ != nullptr);
  if (disk_fault_ != nullptr) {
    disk_fault_->SaveTo(w);
  }
  w.EndSection();

  w.BeginSection(Tag(ServerSection::kReliable));
  w.Bool(reliable_ != nullptr);
  if (reliable_ != nullptr) {
    reliable_->SaveTo(w);
  }
  w.EndSection();

  w.BeginSection(Tag(ServerSection::kDegradation));
  w.Bool(degradation_ != nullptr);
  if (degradation_ != nullptr) {
    degradation_->SaveTo(w);
  }
  w.EndSection();

  w.BeginSection(Tag(ServerSection::kTap));
  tap_.SaveTo(w);
  w.EndSection();

  w.BeginSection(Tag(ServerSection::kDaemons));
  w.U64(daemons_.size());
  for (const DaemonRuntime& rt : daemons_) {
    w.Bool(rt.task != nullptr);
    if (rt.task != nullptr) {
      rt.task->SaveTo(w, sim_);
    }
  }
  w.EndSection();

  w.BeginSection(Tag(ServerSection::kSessions));
  w.U64(sessions_.size());
  for (const auto& sess : sessions_) {
    const Session& s = *sess;
    w.Bool(s.connected_);
    w.Bool(s.logged_out_);
    w.Bool(s.background_);
    w.U64(s.generation_);
    w.Time(s.disconnected_at_);
    w.I64(s.dropped_keystrokes_);
    w.I64(s.update_payload_.count());
    w.I64(s.pending_keystrokes_);
    w.Bool(s.pipeline_busy_);
    w.Bool(s.hold_pending_);
    w.I64(s.hold_started_us_);
    w.Time(s.oldest_pending_sent_);
    w.Time(s.oldest_pending_arrived_);
    w.Time(s.current_batch_sent_);
    w.Time(s.current_batch_arrived_);
    SaveAttr(w, s.pending_attr_);
    SaveAttr(w, s.current_attr_);
    s.display_sender_->SaveTo(w);
    s.input_sender_->SaveTo(w);
    s.protocol_->SaveTo(w);
  }
  w.EndSection();

  w.BeginSection(Tag(ServerSection::kFlows));
  w.U64(flow_ledgers_.size());
  for (size_t i = 0; i < flow_ledgers_.size(); ++i) {
    const FlowLedger& ledger = flow_ledgers_[i];
    w.I64(ledger.sends);
    w.I64(ledger.delivered);
    w.I64(ledger.wire_bytes);
  }
  w.EndSection();

  w.BeginSection(Tag(ServerSection::kPending));
  SavePendingList(w, sim_, pending_daemon_chunks_.items,
                  [&w](const PendingDaemonChunk& p) {
                    w.U64(p.daemon);
                    w.Dur(p.cpu);
                  });
  SavePendingList(w, sim_, pending_arrivals_.items, [&w](const PendingArrival& p) {
    w.U64(p.session);
    w.Time(p.sent_at);
    w.U64(p.interaction_id);
    w.I64(p.retransmit_us);
  });
  SavePendingList(w, sim_, pending_paints_.items, [&w](const PendingPaint& p) {
    w.U64(p.session);
    SaveLatency(w, p.lat);
  });
  SavePendingList(w, sim_, pending_holds_.items, [&w](const PendingHold& p) {
    w.U64(p.session);
    w.U64(p.gen);
  });
  SavePendingList(w, sim_, pending_reconnects_.items,
                  [&w](const PendingReconnect& p) { w.U64(p.session); });
  SavePendingList(w, sim_, pending_daemon_restarts_.items,
                  [&w](const PendingDaemonRestart& p) { w.U64(p.daemon); });
  SaveTimer(w, sim_, disconnect_timer_);
  SaveTimer(w, sim_, crash_timer_);
  w.EndSection();
}

void Server::LoadFrom(SnapshotReader& r, EventRearm& plan) {
  r.EnterSection(Tag(ServerSection::kCore));
  LoadRng(r, rng_);
  LoadRng(r, fault_rng_);
  disconnect_rr_ = static_cast<size_t>(r.U64());
  daemon_rr_ = static_cast<size_t>(r.U64());
  disconnects_ = r.I64();
  daemon_crashes_ = r.I64();
  dropped_keystrokes_ = r.I64();
  session_downtime_ = r.Dur();
  r.LeaveSection();

  r.EnterSection(Tag(ServerSection::kCpu));
  cpu_.LoadFrom(r, plan);
  r.LeaveSection();

  r.EnterSection(Tag(ServerSection::kDisk));
  disk_.LoadFrom(r, plan);
  r.LeaveSection();

  r.EnterSection(Tag(ServerSection::kPager));
  pager_.LoadFrom(r, plan);
  r.LeaveSection();

  r.EnterSection(Tag(ServerSection::kLink));
  link_.LoadFrom(r, plan);
  r.LeaveSection();

  r.EnterSection(Tag(ServerSection::kFaults));
  if (r.Bool() != (link_fault_ != nullptr)) {
    throw SnapshotError("server.faults",
                        "link fault injector presence differs from the snapshot");
  }
  if (link_fault_ != nullptr) {
    link_fault_->LoadFrom(r);
  }
  if (r.Bool() != (disk_fault_ != nullptr)) {
    throw SnapshotError("server.faults",
                        "disk fault injector presence differs from the snapshot");
  }
  if (disk_fault_ != nullptr) {
    disk_fault_->LoadFrom(r);
  }
  r.LeaveSection();

  r.EnterSection(Tag(ServerSection::kReliable));
  if (r.Bool() != (reliable_ != nullptr)) {
    throw SnapshotError("server.reliable",
                        "reliable channel presence differs from the snapshot");
  }
  if (reliable_ != nullptr) {
    reliable_->LoadFrom(r, plan);
  }
  r.LeaveSection();

  r.EnterSection(Tag(ServerSection::kDegradation));
  if (r.Bool() != (degradation_ != nullptr)) {
    throw SnapshotError("server.degradation",
                        "degradation controller presence differs from the snapshot");
  }
  if (degradation_ != nullptr) {
    degradation_->LoadFrom(r, plan);
  }
  r.LeaveSection();

  r.EnterSection(Tag(ServerSection::kTap));
  tap_.LoadFrom(r);
  r.LeaveSection();

  r.EnterSection(Tag(ServerSection::kDaemons));
  if (r.U64() != daemons_.size()) {
    throw SnapshotError("server.daemons", "daemon count differs from the snapshot");
  }
  for (DaemonRuntime& rt : daemons_) {
    if (r.Bool() != (rt.task != nullptr)) {
      throw SnapshotError("server.daemons",
                          "daemon started state differs from the snapshot");
    }
    if (rt.task != nullptr) {
      rt.task->LoadFrom(r, plan, "server.daemon");
    }
  }
  r.LeaveSection();

  r.EnterSection(Tag(ServerSection::kSessions));
  if (r.U64() != sessions_.size()) {
    throw SnapshotError("server.sessions", "session count differs from the snapshot");
  }
  for (const auto& sess : sessions_) {
    Session& s = *sess;
    s.connected_ = r.Bool();
    bool logged_out = r.Bool();
    if (logged_out != s.logged_out_) {
      throw SnapshotError("server.sessions",
                          "logged-out session cannot be restored (teardown replay "
                          "is unsupported)");
    }
    s.background_ = r.Bool();
    s.generation_ = r.U64();
    s.disconnected_at_ = r.Time();
    s.dropped_keystrokes_ = r.I64();
    s.update_payload_ = Bytes::Of(r.I64());
    s.pending_keystrokes_ = static_cast<int>(r.I64());
    s.pipeline_busy_ = r.Bool();
    s.hold_pending_ = r.Bool();
    s.hold_started_us_ = r.I64();
    s.oldest_pending_sent_ = r.Time();
    s.oldest_pending_arrived_ = r.Time();
    s.current_batch_sent_ = r.Time();
    s.current_batch_arrived_ = r.Time();
    LoadAttr(r, s.pending_attr_, hop_trace_names_);
    LoadAttr(r, s.current_attr_, hop_trace_names_);
    s.display_sender_->LoadFrom(r);
    s.input_sender_->LoadFrom(r);
    s.protocol_->LoadFrom(r, plan);
  }
  r.LeaveSection();

  r.EnterSection(Tag(ServerSection::kFlows));
  if (r.U64() != flow_ledgers_.size()) {
    throw SnapshotError("server.flows", "flow-ledger count differs from the snapshot");
  }
  for (size_t i = 0; i < flow_ledgers_.size(); ++i) {
    FlowLedger& ledger = flow_ledgers_[i];
    ledger.sends = r.I64();
    ledger.delivered = r.I64();
    ledger.wire_bytes = r.I64();
  }
  r.LeaveSection();

  r.EnterSection(Tag(ServerSection::kPending));
  {
    uint64_t n = r.U64();
    pending_daemon_chunks_.ResetFor(static_cast<size_t>(n));
    auto& items = pending_daemon_chunks_.items;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t seq = r.U64();
      TimePoint when = r.Time();
      auto daemon = static_cast<uint32_t>(r.U64());
      Duration cpu = r.Dur();
      if (daemon >= daemons_.size()) {
        throw SnapshotError("server.pending", "daemon chunk names an unknown daemon");
      }
      Thread* thread = daemons_[daemon].thread;
      items.push_back({EventId(), daemon, cpu});
      plan.Schedule("server.daemon-chunk", seq, when,
                    [this, thread, c = cpu] { cpu_.PostWork(*thread, c); },
                    &items.back().ev);
    }
  }
  {
    uint64_t n = r.U64();
    pending_arrivals_.ResetFor(static_cast<size_t>(n));
    auto& items = pending_arrivals_.items;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t seq = r.U64();
      TimePoint when = r.Time();
      uint64_t session = r.U64();
      TimePoint sent_at = r.Time();
      uint64_t id = r.U64();
      int64_t retransmit_us = r.I64();
      Session* sp = &SessionById(session);
      items.push_back({EventId(), session, sent_at, id, retransmit_us});
      plan.Schedule("server.keystroke-arrival", seq, when,
                    [this, sp, sent_at, id, retransmit_us] {
                      OnKeystrokeArrived(*sp, sent_at, id, retransmit_us);
                    },
                    &items.back().ev);
    }
  }
  {
    uint64_t n = r.U64();
    pending_paints_.ResetFor(static_cast<size_t>(n));
    auto& items = pending_paints_.items;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t seq = r.U64();
      TimePoint when = r.Time();
      uint64_t session = r.U64();
      KeystrokeLatency lat = LoadLatency(r);
      Session* sp = &SessionById(session);
      if (!sp->on_frame_painted_) {
        throw SnapshotError("server.pending",
                            "pending paint for a session with no painted callback");
      }
      items.push_back({EventId(), session, lat});
      plan.Schedule("server.frame-painted", seq, when,
                    [cb = sp->on_frame_painted_, lat] { cb(lat); }, &items.back().ev);
    }
  }
  {
    uint64_t n = r.U64();
    pending_holds_.ResetFor(static_cast<size_t>(n));
    auto& items = pending_holds_.items;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t seq = r.U64();
      TimePoint when = r.Time();
      uint64_t session = r.U64();
      uint64_t gen = r.U64();
      Session* sp = &SessionById(session);
      items.push_back({EventId(), session, gen});
      plan.Schedule("server.coalesce-hold", seq, when,
                    [this, sp, gen] {
                      if (sp->generation_ != gen || sp->logged_out_) {
                        return;
                      }
                      if (sp->pending_keystrokes_ > 0) {
                        StartPipelinePass(*sp);
                      } else {
                        sp->hold_pending_ = false;
                        sp->pipeline_busy_ = false;
                      }
                    },
                    &items.back().ev);
    }
  }
  {
    uint64_t n = r.U64();
    pending_reconnects_.ResetFor(static_cast<size_t>(n));
    auto& items = pending_reconnects_.items;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t seq = r.U64();
      TimePoint when = r.Time();
      uint64_t session = r.U64();
      Session* sp = &SessionById(session);
      items.push_back({EventId(), session});
      plan.Schedule("server.reconnect", seq, when, [this, sp] { Reconnect(*sp); },
                    &items.back().ev);
    }
  }
  {
    uint64_t n = r.U64();
    pending_daemon_restarts_.ResetFor(static_cast<size_t>(n));
    auto& items = pending_daemon_restarts_.items;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t seq = r.U64();
      TimePoint when = r.Time();
      auto daemon = static_cast<uint32_t>(r.U64());
      if (daemon >= daemons_.size()) {
        throw SnapshotError("server.pending", "daemon restart names an unknown daemon");
      }
      size_t idx = daemon;
      items.push_back({EventId(), daemon});
      plan.Schedule("server.daemon-restart", seq, when,
                    [this, idx] {
                      DaemonRuntime& rtp = daemons_[idx];
                      if (rtp.task->IsRunning()) {
                        return;
                      }
                      rtp.task->Start(rtp.spec.phase);
                      PostDaemonEpisode(idx);
                    },
                    &items.back().ev);
    }
  }
  disconnect_timer_ = EventId();
  if (r.Bool()) {
    uint64_t seq = r.U64();
    TimePoint when = r.Time();
    plan.Schedule("server.disconnect-timer", seq, when,
                  [this] {
                    FireDisconnect();
                    ScheduleNextDisconnect();
                  },
                  &disconnect_timer_);
  }
  crash_timer_ = EventId();
  if (r.Bool()) {
    uint64_t seq = r.U64();
    TimePoint when = r.Time();
    plan.Schedule("server.crash-timer", seq, when,
                  [this] {
                    FireDaemonCrash();
                    ScheduleNextDaemonCrash();
                  },
                  &crash_timer_);
  }
  r.LeaveSection();
}

}  // namespace tcs
