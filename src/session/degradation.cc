#include "src/session/degradation.h"

#include <algorithm>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/util/config_error.h"

namespace tcs {

DegradationConfig Validated(DegradationConfig config) {
  if (!(config.poll_interval > Duration::Zero())) {
    throw ConfigError("DegradationConfig.poll_interval", "poll interval must be positive");
  }
  if (config.level_step.count() <= 0) {
    throw ConfigError("DegradationConfig.level_step", "level step must be positive");
  }
  if (config.recover_fraction <= 0.0 || config.recover_fraction >= 1.0) {
    throw ConfigError("DegradationConfig.recover_fraction",
                      "recover fraction must be in (0, 1)");
  }
  if (config.recover_polls < 1) {
    throw ConfigError("DegradationConfig.recover_polls",
                      "need at least one calm poll to recover");
  }
  if (config.animation_keep_one_in < 1) {
    throw ConfigError("DegradationConfig.animation_keep_one_in",
                      "must keep at least 1 in N frames");
  }
  if (config.cache_boost < 1.0) {
    throw ConfigError("DegradationConfig.cache_boost",
                      "cache boost must not inflate payloads");
  }
  if (!(config.coalesce_hold >= Duration::Zero())) {
    throw ConfigError("DegradationConfig.coalesce_hold", "hold cannot be negative");
  }
  if (config.start_delay < Duration::Zero()) {
    throw ConfigError("DegradationConfig.start_delay", "arming delay cannot be negative");
  }
  return config;
}

DegradationController::DegradationController(Simulator& sim, DegradationConfig config,
                                             std::function<int64_t()> pressure_bytes)
    : sim_(sim),
      config_(Validated(std::move(config))),
      pressure_bytes_(std::move(pressure_bytes)),
      poll_task_(sim, config_.poll_interval, [this] { Poll(); }) {}

void DegradationController::Start() {
  poll_task_.Start(config_.start_delay > Duration::Zero() ? config_.start_delay
                                                          : config_.poll_interval);
}

void DegradationController::Stop() { poll_task_.Stop(); }

void DegradationController::SetTracer(Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    trace_track_ = tracer_->RegisterTrack("session", "degradation");
  }
}

void DegradationController::Poll() {
  ++polls_;
  int64_t pressure = pressure_bytes_();
  last_pressure_ = pressure;
  const int64_t step = config_.level_step.count();
  // Upshift first, and all the way: sustained pressure crossing several thresholds in
  // one poll interval engages the matching level immediately (monotone in pressure).
  int target = static_cast<int>(pressure / step);
  target = std::min(target, kMaxDegradationLevel);
  if (target > level_) {
    calm_polls_ = 0;
    MoveTo(target, pressure);
    return;
  }
  if (level_ == 0) {
    return;
  }
  // Hysteretic recovery: one level at a time, and only after recover_polls consecutive
  // samples comfortably below the current level's engage threshold.
  int64_t recover_below = static_cast<int64_t>(
      config_.recover_fraction * static_cast<double>(level_) * static_cast<double>(step));
  if (pressure < recover_below) {
    ++calm_polls_;
    if (calm_polls_ >= config_.recover_polls) {
      calm_polls_ = 0;
      MoveTo(level_ - 1, pressure);
    }
  } else {
    calm_polls_ = 0;
  }
}

void DegradationController::MoveTo(int new_level, int64_t pressure) {
  int old_level = level_;
  TimePoint now = sim_.Now();
  if (old_level == 0 && new_level > 0) {
    degraded_since_ = now;
  } else if (old_level > 0 && new_level == 0) {
    degraded_closed_ += now - degraded_since_;
  }
  level_ = new_level;
  if (new_level > old_level) {
    ++upshifts_;
  } else {
    ++downshifts_;
  }
  transitions_.push_back(DegradationTransition{now, old_level, new_level, pressure});
  if (tracer_ != nullptr) {
    tracer_->Instant(TraceCategory::kSession,
                     new_level > old_level ? "degrade" : "recover", trace_track_, now,
                     "from", old_level, "to", new_level);
  }
  if (recorder_ != nullptr) {
    recorder_->Instant(FlightComponent::kSession,
                       new_level > old_level ? "degrade" : "recover", now, 0, old_level,
                       new_level);
  }
  if (on_transition_) {
    on_transition_(old_level, new_level, now);
  }
}

bool DegradationController::ShouldDropAnimationFrame() {
  if (level_ < static_cast<int>(DegradationLevel::kDropAnimation)) {
    return false;
  }
  // Keep frame 0, N, 2N, ... of the degraded stretch; drop the rest.
  bool drop = (animation_counter_ % config_.animation_keep_one_in) != 0;
  ++animation_counter_;
  if (drop) {
    ++animation_frames_dropped_;
  }
  return drop;
}

Duration DegradationController::DegradedTimeThrough(TimePoint now) const {
  Duration total = degraded_closed_;
  if (level_ > 0 && now > degraded_since_) {
    total += now - degraded_since_;
  }
  return total;
}

void DegradationController::SaveTo(SnapshotWriter& w) const {
  w.I64(level_);
  w.I64(calm_polls_);
  w.I64(last_pressure_);
  w.I64(animation_counter_);
  w.I64(animation_frames_dropped_);
  w.I64(upshifts_);
  w.I64(downshifts_);
  w.I64(polls_);
  w.Time(degraded_since_);
  w.Dur(degraded_closed_);
  w.U64(transitions_.size());
  for (const DegradationTransition& t : transitions_) {
    w.Time(t.at);
    w.I64(t.from);
    w.I64(t.to);
    w.I64(t.pressure_bytes);
  }
  poll_task_.SaveTo(w, sim_);
}

void DegradationController::LoadFrom(SnapshotReader& r, EventRearm& plan) {
  level_ = static_cast<int>(r.I64());
  calm_polls_ = static_cast<int>(r.I64());
  last_pressure_ = r.I64();
  animation_counter_ = r.I64();
  animation_frames_dropped_ = r.I64();
  upshifts_ = r.I64();
  downshifts_ = r.I64();
  polls_ = r.I64();
  degraded_since_ = r.Time();
  degraded_closed_ = r.Dur();
  transitions_.clear();
  uint64_t n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    DegradationTransition t;
    t.at = r.Time();
    t.from = static_cast<int>(r.I64());
    t.to = static_cast<int>(r.I64());
    t.pressure_bytes = r.I64();
    transitions_.push_back(t);
  }
  poll_task_.LoadFrom(r, plan, "degradation.poll");
}

}  // namespace tcs
