// OS personalities: everything §2 and the measurement sections say distinguishes the
// systems under test — scheduler algorithm and parameters, idle-state daemon activity,
// per-login process tables, keystroke handling pipeline, paging behaviour, and the remote
// display protocol.
//
// Calibration sources (documented per DESIGN.md):
//  * scheduler parameters: §4.2.1 (30 ms / 10 ms quanta, boost-to-15 for two quanta,
//    stretch factors, priorities 8/9/13);
//  * idle daemon tables: calibrated so the measured Figure 1/2 shapes match the paper
//    (TSE ~3x NT ~7x Linux aggregate idle load; TSE events at 250/400 ms, NT <= 100 ms);
//  * login process tables: §5.1.1, byte-for-byte;
//  * keystroke pipelines: §2's architectural description (TSE display requests pass
//    through the kernel and the Terminal Service; X interaction is user-level with the
//    rendering X server on the *client* machine, so the server side is the app alone).

#ifndef TCS_SRC_SESSION_OS_PROFILE_H_
#define TCS_SRC_SESSION_OS_PROFILE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cpu/linux_scheduler.h"
#include "src/cpu/nt_scheduler.h"
#include "src/cpu/scheduler.h"
#include "src/cpu/svr4_scheduler.h"
#include "src/proto/protocol_kind.h"
#include "src/sim/units.h"

namespace tcs {

enum class SchedulerKind { kNt, kLinux, kSvr4Interactive };

// Periodic background activity contributing compulsory load (§4.1.1). Each firing is an
// "episode" of `episode_cpu` total CPU executed in chunks at the given duty cycle (e.g.
// 250 ms of CPU at 25% duty occupies ~1 s of wall time at 0.25 utilization — Figure 1's
// spikes and Figure 2's long events at once).
struct DaemonSpec {
  std::string name;
  ThreadClass cls = ThreadClass::kDaemon;
  int priority = 0;
  Duration period = Duration::Seconds(1);
  Duration episode_cpu = Duration::Millis(1);
  double duty = 1.0;  // 1.0 = one contiguous burst
  Duration phase = Duration::Zero();
};

// One process of a minimal login (§5.1.1), with its private, unshared memory and the
// text/code image it maps. Text is shared across sessions: the first login to run the
// process pays its residency, every later session maps the same pages for free — the
// mechanism behind §5.1.1's sublinear per-user memory bill.
struct ProcessSpec {
  std::string name;
  Bytes private_memory = Bytes::Zero();
  Bytes shared_text = Bytes::Zero();
};

// One stage of keystroke handling on the server. The first hop is the application's GUI
// thread (woken with WakeReason::kInputEvent, so NT-style schedulers boost it); later
// hops are display-pipeline workers woken by ordinary completion.
struct PipelineHop {
  std::string name;
  ThreadClass cls = ThreadClass::kBatch;
  int priority = 0;
  Duration work = Duration::Millis(1);
  // True for display/protocol-encode hops (kernel display path, RDP encoder): latency
  // attribution bills their CPU to the proto-encode stage instead of cpu-service.
  bool encode = false;
};

struct OsProfile {
  std::string name;

  SchedulerKind scheduler_kind = SchedulerKind::kNt;
  NtSchedulerConfig nt_config;
  LinuxSchedulerConfig linux_config;
  Svr4SchedulerConfig svr4_config;

  ProtocolKind protocol_kind = ProtocolKind::kRdp;

  std::vector<DaemonSpec> idle_daemons;
  std::vector<ProcessSpec> login_processes;
  std::vector<ProcessSpec> light_login_processes;  // e.g. TSE with command.com
  // Kernel + user-level services resident with no sessions (§5.1.1).
  Bytes idle_system_memory = Bytes::Zero();

  std::vector<PipelineHop> keystroke_pipeline;
  // Base priority the OS gives user-started CPU hogs (`sink`).
  int sink_priority = 0;
  ThreadClass sink_class = ThreadClass::kBatch;

  // Pages the editor must have resident to echo a keystroke (§5.2's pathology bill).
  size_t editor_working_set_pages = 256;
  // The fraction of the working set a given keystroke actually touches varies run to run
  // (which code paths fire, what the buffer cache still holds) — the spread behind the
  // paging table's min/max columns. Sampled uniformly in [min, max] per keystroke.
  double ws_touch_min = 1.0;
  double ws_touch_max = 1.0;
  // Pages per swap-in I/O (Linux 2.0 paged single pages).
  size_t pager_cluster_pages = 1;

  std::unique_ptr<Scheduler> MakeScheduler() const;

  // The paper's systems under test.
  static OsProfile Tse();
  static OsProfile LinuxX();
  static OsProfile NtWorkstation();  // single-user baseline for Figures 1-2
  // Extension: Linux userland on Evans et al.'s interactive scheduler.
  static OsProfile LinuxSvr4();
};

}  // namespace tcs

#endif  // TCS_SRC_SESSION_OS_PROFILE_H_
