// The thin-client server: one box composing the CPU (with the profile's scheduler), the
// paging subsystem, the network link, the remote-display protocol, the idle-state
// daemons, and the logged-in sessions. This is the system under test in every experiment.

#ifndef TCS_SRC_SESSION_SERVER_H_
#define TCS_SRC_SESSION_SERVER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/client/thin_client.h"
#include "src/cpu/cpu.h"
#include "src/mem/pager.h"
#include "src/net/endpoint.h"
#include "src/obs/metrics.h"
#include "src/proto/display_protocol.h"
#include "src/session/os_profile.h"
#include "src/sim/periodic.h"
#include "src/sim/random.h"

namespace tcs {

struct ServerConfig {
  CpuConfig cpu;
  LinkConfig link;
  // Swap partition: short seeks relative to the general-purpose default.
  DiskConfig disk = [] {
    DiskConfig d;
    d.positioning_mean = Duration::Micros(3500);
    d.positioning_stddev = Duration::Micros(1500);
    d.positioning_min = Duration::Micros(500);
    return d;
  }();
  Bytes ram = Bytes::MiB(64);  // the era's typical server memory
  EvictionPolicy eviction = EvictionPolicy::kGlobalLru;
  Duration pager_throttle = Duration::Millis(20);
  Duration tap_bucket = Duration::Seconds(1);
  uint64_t seed = 1;
  // Observability (both optional, non-owning). With a tracer, every layer of the server
  // emits trace events; with a registry, the standard gauges (run-queue depth, resident
  // pages, link backlog, bitmap-cache hit rate) are registered at construction.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

// Where one keystroke's end-to-end latency went (requires an attached client device for
// the display_net/client legs — see Server::AttachClient).
struct KeystrokeLatency {
  TimePoint keystroke_at;             // when the user's machine sent it
  Duration input_net = Duration::Zero();    // transit to the server
  Duration server = Duration::Zero();       // queueing + pipeline work + paging
  Duration display_net = Duration::Zero();  // update emission to last-bit delivery
  Duration client = Duration::Zero();       // decode + blit on the user's machine
  Duration total() const { return input_net + server + display_net + client; }
};

// One logged-in user: the login's processes (and their memory), the editor GUI thread,
// and the display-pipeline worker threads keystrokes traverse.
class Session {
 public:
  uint64_t id() const { return id_; }
  // Sum of the login processes' private memory (the §5.1.1 per-user bill).
  Bytes private_memory() const { return private_memory_; }
  AddressSpace* working_set() const { return working_set_; }

  // Invoked (with the emission time) whenever a display update for this session goes out.
  void set_on_display_update(std::function<void(TimePoint)> fn) {
    on_display_update_ = std::move(fn);
  }

  // Invoked when the update is actually on the user's glass, with the full breakdown.
  // The display_net and client legs are zero unless a client device is attached.
  void set_on_frame_painted(std::function<void(const KeystrokeLatency&)> fn) {
    on_frame_painted_ = std::move(fn);
  }

 private:
  friend class Server;

  uint64_t id_ = 0;
  TraceTrack trace_track_;  // "session/userN"; meaningful only when the server traces
  Bytes private_memory_ = Bytes::Zero();
  std::vector<AddressSpace*> process_spaces_;
  AddressSpace* working_set_ = nullptr;
  std::vector<Thread*> pipeline_;
  int pending_keystrokes_ = 0;
  bool pipeline_busy_ = false;
  // Oldest keystroke in the pending set / in the in-flight batch, for attribution.
  TimePoint oldest_pending_sent_;
  TimePoint oldest_pending_arrived_;
  TimePoint current_batch_sent_;
  TimePoint current_batch_arrived_;
  std::function<void(TimePoint)> on_display_update_;
  std::function<void(const KeystrokeLatency&)> on_frame_painted_;
};

class Server {
 public:
  Server(Simulator& sim, OsProfile profile, ServerConfig config = {});

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Arms the profile's idle-state daemons (clock tick, session manager, ...).
  void StartDaemons();

  // Logs a user in: creates the login's processes (memory prefaulted), the keystroke
  // pipeline threads, and exchanges the protocol's session-setup bytes.
  Session& Login(bool light_session = false);

  // One keystroke from the session's user. Input-channel traffic is generated and
  // transits the link; at the server the editor's working set is made resident (paying
  // any page-ins), the keystroke pipeline runs, and a display update is emitted. Repeats
  // arriving while the pipeline is busy coalesce into the next update, as editors drain
  // their input queues in batches.
  void Keystroke(Session& session);

  // Attaches a client device model; thereafter on_frame_painted breakdowns include the
  // display-channel transit and the client's decode+blit time.
  void AttachClient(ThinClientConfig config) {
    client_ = std::make_unique<ThinClientDevice>(config);
  }
  const ThinClientDevice* client() const { return client_.get(); }

  // Starts `count` sink CPU hogs with the profile's sink priority.
  void StartSinks(int count);

  const OsProfile& profile() const { return profile_; }
  Simulator& sim() { return sim_; }
  Cpu& cpu() { return cpu_; }
  Disk& disk() { return disk_; }
  Pager& pager() { return pager_; }
  Link& link() { return link_; }
  DisplayProtocol& protocol() { return *protocol_; }
  ProtoTap& tap() { return tap_; }
  // Frames available to user pages given RAM minus the profile's idle system memory.
  size_t available_frames() const { return pager_.total_frames(); }

 private:
  void PostDaemonEpisode(Thread* thread, const DaemonSpec& spec);
  void OnKeystrokeArrived(Session& session, TimePoint sent_at);
  void StartPipelinePass(Session& session);
  void RunHop(Session& session, size_t hop, int batch);
  void CompletePipeline(Session& session, int batch);
  // Transit time of a small input message through the link right now (queue + wire).
  Duration InputTransitDelay() const;

  Simulator& sim_;
  OsProfile profile_;
  ServerConfig config_;
  Rng rng_;
  Cpu cpu_;
  Disk disk_;
  Pager pager_;
  Link link_;
  MessageSender display_sender_;
  MessageSender input_sender_;
  ProtoTap tap_;
  std::unique_ptr<DisplayProtocol> protocol_;
  std::unique_ptr<ThinClientDevice> client_;
  // Display payload bytes accumulated since the last pipeline completion (for the client
  // decode bill of the current update).
  Bytes update_payload_ = Bytes::Zero();

  struct DaemonRuntime {
    DaemonSpec spec;
    Thread* thread;
    std::unique_ptr<PeriodicTask> task;
  };
  std::vector<DaemonRuntime> daemons_;
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace tcs

#endif  // TCS_SRC_SESSION_SERVER_H_
