// The thin-client server: one box composing the CPU (with the profile's scheduler), the
// paging subsystem, the network link, the remote-display protocol, the idle-state
// daemons, and the logged-in sessions. This is the system under test in every experiment.

#ifndef TCS_SRC_SESSION_SERVER_H_
#define TCS_SRC_SESSION_SERVER_H_

#include <algorithm>
#include <cassert>
#include <functional>
#include <memory>
#include <vector>

#include "src/client/thin_client.h"
#include "src/cpu/cpu.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/mem/pager.h"
#include "src/net/endpoint.h"
#include "src/net/flow.h"
#include "src/net/reliable.h"
#include "src/obs/attribution.h"
#include "src/obs/metrics.h"
#include "src/proto/display_protocol.h"
#include "src/session/degradation.h"
#include "src/session/os_profile.h"
#include "src/sim/periodic.h"
#include "src/sim/random.h"
#include "src/sim/snapshot.h"

namespace tcs {

// Top-level snapshot section tags the Server emits, one frame per subsystem, so the
// differential suite can name the diverging subsystem (via SnapshotSectionSpans) instead
// of reporting "bytes differ". 0x53xx = 'S'<<8 claims the server's tag space; the
// checkpoint driver's kernel frame uses its own tag outside this range.
enum class ServerSection : uint32_t {
  kCore = 0x5300,         // server RNGs + fault cursors/counters
  kCpu = 0x5301,          // threads, scheduler queues, in-flight segments
  kDisk = 0x5302,         // disk queue + pending completions
  kPager = 0x5303,        // frame slab, LRU, shared segments, in-flight ops
  kLink = 0x5304,         // wire horizon, WAN queue, pending deliveries
  kFaults = 0x5305,       // link/disk fault injectors (presence-flagged)
  kReliable = 0x5306,     // send window, SRTT, retransmit state
  kDegradation = 0x5307,  // ladder level + hysteresis
  kTap = 0x5308,          // protocol traffic time series
  kDaemons = 0x5309,      // periodic-task firing identities
  kSessions = 0x530A,     // per-session pipeline + protocol encoder state
  kFlows = 0x530B,        // per-session flow-ledger rows
  kPending = 0x530C,      // the server's own pending continuation events
};

// Human-readable name for a ServerSection tag ("server.pager", ...); "server.?" when the
// tag is not one the Server writes.
const char* ServerSectionName(uint32_t tag);

struct ServerConfig {
  CpuConfig cpu;
  LinkConfig link;
  // Swap partition: short seeks relative to the general-purpose default.
  DiskConfig disk = [] {
    DiskConfig d;
    d.positioning_mean = Duration::Micros(3500);
    d.positioning_stddev = Duration::Micros(1500);
    d.positioning_min = Duration::Micros(500);
    return d;
  }();
  Bytes ram = Bytes::MiB(64);  // the era's typical server memory
  EvictionPolicy eviction = EvictionPolicy::kGlobalLru;
  Duration pager_throttle = Duration::Millis(20);
  Duration tap_bucket = Duration::Seconds(1);
  uint64_t seed = 1;
  // Fault plan for this run. An empty (default) plan constructs no injectors, no reliable
  // channel, and consumes no random stream — behaviour is byte-identical to a build
  // without the fault layer. A non-empty link plan routes all protocol traffic through a
  // ReliableChannel, so losses surface as retransmission delay, not silent corruption.
  FaultPlan faults;
  // Observability (both optional, non-owning). With a tracer, every layer of the server
  // emits trace events; with a registry, the standard gauges (run-queue depth, resident
  // pages, link backlog, bitmap-cache hit rate) are registered at construction.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  // Per-interaction latency attribution (optional, non-owning). When set, every
  // keystroke is minted an interaction id at injection time and the pipeline commits an
  // exact per-stage breakdown (sum of stage micros == end-to-end micros) on completion.
  // Null costs one branch per stage boundary and zero allocations.
  LatencyAttribution* attribution = nullptr;
  // Always-on flight recorder (optional, non-owning). When set, the CPU, pager, link,
  // reliable channel, and session pipeline continuously append compact records into its
  // bounded ring so an SLO violation can be explained without re-running traced. Null
  // costs one branch per would-be record.
  FlightRecorder* recorder = nullptr;
  // Backpressure-driven graceful degradation. Disabled (the default) constructs no
  // controller, schedules no polls, and leaves every pipeline byte-identical to a build
  // without the degradation layer.
  DegradationConfig degradation;
};

// Where one keystroke's end-to-end latency went (requires an attached client device for
// the display_net/client legs — see Server::AttachClient).
struct KeystrokeLatency {
  TimePoint keystroke_at;             // when the user's machine sent it
  Duration input_net = Duration::Zero();    // transit to the server
  Duration server = Duration::Zero();       // queueing + pipeline work + paging
  Duration display_net = Duration::Zero();  // update emission to last-bit delivery
  Duration client = Duration::Zero();       // decode + blit on the user's machine
  Duration total() const { return input_net + server + display_net + client; }
};

// One logged-in user: the login's processes (and their memory), the editor GUI thread,
// and the display-pipeline worker threads keystrokes traverse.
class Session {
 public:
  uint64_t id() const { return id_; }
  // Sum of the login processes' private memory (the §5.1.1 per-user bill).
  Bytes private_memory() const { return private_memory_; }
  // Text/code the login maps but shares with every other session running the same
  // images: resident once server-wide, so only the *first* login pays it.
  Bytes shared_memory() const { return shared_memory_; }
  AddressSpace* working_set() const { return working_set_; }

  // This session's protocol pipeline and its flow-accounting tap on the shared link
  // (valid from Login until the server dies; the protocol survives Logout).
  DisplayProtocol& protocol() const { return *protocol_; }
  const SessionFlow& flow() const { return *flow_; }

  // True once the user logged out: processes torn down, memory released.
  bool logged_out() const { return logged_out_; }

  // Background (non-interactive) sessions — media players, marquees — are the first
  // service the degradation ladder sacrifices (see Server::SetBackground).
  bool background() const { return background_; }

  // False while the client is forcibly disconnected (fault plan or explicit call).
  bool connected() const { return connected_; }
  // Keystrokes typed while disconnected (they never reach the server).
  int64_t dropped_keystrokes() const { return dropped_keystrokes_; }
  // Bumped on each cold restart (X-family reconnects); in-flight pipeline callbacks
  // from an older generation abandon themselves.
  uint64_t generation() const { return generation_; }

  // Invoked (with the emission time) whenever a display update for this session goes out.
  void set_on_display_update(std::function<void(TimePoint)> fn) {
    on_display_update_ = std::move(fn);
  }

  // Invoked when the update is actually on the user's glass, with the full breakdown.
  // The display_net and client legs are zero unless a client device is attached.
  void set_on_frame_painted(std::function<void(const KeystrokeLatency&)> fn) {
    on_frame_painted_ = std::move(fn);
  }

 private:
  friend class Server;

  uint64_t id_ = 0;
  TraceTrack trace_track_;  // "session/userN"; meaningful only when the server traces
  Bytes private_memory_ = Bytes::Zero();
  Bytes shared_memory_ = Bytes::Zero();
  bool connected_ = true;
  bool logged_out_ = false;
  bool background_ = false;
  uint64_t generation_ = 0;
  TimePoint disconnected_at_;
  int64_t dropped_keystrokes_ = 0;
  std::vector<AddressSpace*> process_spaces_;
  std::vector<size_t> process_pages_;  // prefaulted page count per process space
  std::vector<std::string> shared_keys_;  // pager segments to release on logout
  AddressSpace* working_set_ = nullptr;
  // The session's own protocol pipeline, multiplexed over the server's one link: a
  // flow-accounting tap on the shared transport, two message senders riding it, and the
  // encoder + caches. Each session encodes independently; they contend on the wire.
  std::unique_ptr<SessionFlow> flow_;
  std::unique_ptr<MessageSender> display_sender_;
  std::unique_ptr<MessageSender> input_sender_;
  std::unique_ptr<DisplayProtocol> protocol_;
  // Display payload accumulated since the last pipeline completion (this session's
  // client decode bill for the current update).
  Bytes update_payload_ = Bytes::Zero();
  std::vector<Thread*> pipeline_;
  int pending_keystrokes_ = 0;
  bool pipeline_busy_ = false;
  // Degradation coalesce hold in progress: the next pipeline pass bills the time since
  // hold_started_us_ to the degradation-hold stage instead of sched-wait.
  bool hold_pending_ = false;
  int64_t hold_started_us_ = 0;
  // Oldest keystroke in the pending set / in the in-flight batch, for attribution.
  TimePoint oldest_pending_sent_;
  TimePoint oldest_pending_arrived_;
  TimePoint current_batch_sent_;
  TimePoint current_batch_arrived_;
  // Latency-attribution records (meaningful only when the server has an attribution
  // engine): the pending record tracks the oldest un-batched keystroke, the current one
  // the in-flight pipeline pass. Plain structs — no allocation either way.
  InteractionRecord pending_attr_;
  InteractionRecord current_attr_;
  std::function<void(TimePoint)> on_display_update_;
  std::function<void(const KeystrokeLatency&)> on_frame_painted_;
};

class Server {
 public:
  Server(Simulator& sim, OsProfile profile, ServerConfig config = {});

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Arms the profile's idle-state daemons (clock tick, session manager, ...).
  void StartDaemons();

  // Logs a user in: creates the login's processes (private memory prefaulted, text
  // segments attached to the server-wide shared copies), the session's own protocol
  // pipeline on the shared link, the keystroke pipeline threads, and exchanges the
  // protocol's session-setup bytes.
  Session& Login(bool light_session = false);

  // Logs the user out: abandons in-flight pipeline work, tears down the login's
  // processes and working set, and drops its references on the shared text segments
  // (the last session out frees them). The Session object stays valid but inert.
  void Logout(Session& session);

  // One keystroke from the session's user. Input-channel traffic is generated and
  // transits the link; at the server the editor's working set is made resident (paying
  // any page-ins), the keystroke pipeline runs, and a display update is emitted. Repeats
  // arriving while the pipeline is busy coalesce into the next update, as editors drain
  // their input queues in batches.
  void Keystroke(Session& session);

  // Attaches a client device model; thereafter on_frame_painted breakdowns include the
  // display-channel transit and the client's decode+blit time.
  void AttachClient(ThinClientConfig config) {
    client_ = std::make_unique<ThinClientDevice>(config);
  }
  const ThinClientDevice* client() const { return client_.get(); }

  // Starts `count` sink CPU hogs with the profile's sink priority.
  void StartSinks(int count);

  // Forcibly drops the session's client connection: keystrokes typed until Reconnect()
  // are lost, and (for X-family protocols) the login dies with the connection.
  void Disconnect(Session& session);
  // Brings the client back. RDP/TSE sessions survive server-side and pay a cache-resync
  // burst; X-family sessions restart cold (working set swapped out, full session setup).
  void Reconnect(Session& session);

  // Fault/recovery accounting over a run of `run_duration`. `active` is false (and the
  // rest zero/identity) when the config carried an empty FaultPlan.
  FaultStats CollectFaultStats(Duration run_duration);

  int64_t disconnects() const { return disconnects_; }
  int64_t daemon_crashes() const { return daemon_crashes_; }
  Duration session_downtime() const { return session_downtime_; }

  // Marks a session as background (non-interactive). Background emitters should consult
  // degradation()->BackgroundPaused() before submitting frames.
  void SetBackground(Session& session, bool background) {
    session.background_ = background;
  }

  // Null unless the config enabled degradation.
  DegradationController* degradation() { return degradation_.get(); }

  const OsProfile& profile() const { return profile_; }
  Simulator& sim() { return sim_; }
  Cpu& cpu() { return cpu_; }
  Disk& disk() { return disk_; }
  Pager& pager() { return pager_; }
  Link& link() { return link_; }
  // Null when the fault plan has no link faults (traffic rides the raw link).
  ReliableChannel* reliable() { return reliable_.get(); }
  LinkFaultInjector* link_fault_injector() { return link_fault_.get(); }
  DiskFaultInjector* disk_fault_injector() { return disk_fault_.get(); }
  // The first session's protocol (requires a login). Each session owns its own pipeline;
  // use Session::protocol() for the others.
  DisplayProtocol& protocol() {
    assert(!sessions_.empty());
    return *sessions_.front()->protocol_;
  }
  ProtoTap& tap() { return tap_; }
  const std::vector<std::unique_ptr<Session>>& sessions() const { return sessions_; }
  // Frames available to user pages given RAM minus the profile's idle system memory.
  size_t available_frames() const { return pager_.total_frames(); }

  // Session lookup by login id (ids are 1-based in login order); throws SnapshotError on
  // an id no login produced.
  Session& SessionById(uint64_t id) const;

  // Checkpoint/restore. SaveTo serializes every subsystem the server composes into its
  // own top-level ServerSection frame, plus the server's own pending continuation events
  // (keystroke arrivals, paint deliveries, coalesce holds, daemon episode chunks, fault
  // timers). LoadFrom expects a server rebuilt by replaying the original construction
  // sequence (same config, StartDaemons, same Logins in order): it verifies the rebuilt
  // topology against the snapshot, overwrites dynamic state, and re-arms pending events
  // through `plan`. RegisterRestorers must run before any LoadFrom in the restore pass —
  // it registers the builders for this server's cross-component continuation kinds
  // (flow deliveries, page-in completions, pipeline hop completions) and the pager's.
  // A session that was logged out at snapshot time fails restore loudly (consolidation
  // runs never log out mid-run; supporting teardown replay is out of scope).
  void RegisterRestorers(EventRearm& plan);
  void SaveTo(SnapshotWriter& w) const;
  void LoadFrom(SnapshotReader& r, EventRearm& plan);

 private:
  void PostDaemonEpisode(size_t daemon_idx);
  // `interaction_id`/`retransmit_us` are the attribution identity of this keystroke
  // (zero when attribution is disabled).
  void OnKeystrokeArrived(Session& session, TimePoint sent_at, uint64_t interaction_id,
                          int64_t retransmit_us);
  void StartPipelinePass(Session& session);
  void RunHop(Session& session, size_t hop, int batch, uint64_t gen);
  void CompletePipeline(Session& session, int batch);
  // Transit time of a small input message through the link right now (queue + wire).
  Duration InputTransitDelay() const;
  // Bitmap payload scale pushed into protocols at `level` (1.0 below kHardCache).
  double DegradedPayloadScale(int level) const;
  // Arms the plan's scheduled session disconnects / daemon crashes (ctor, when enabled).
  void ArmFaultSchedule();
  void ScheduleNextDisconnect();
  void ScheduleNextDaemonCrash();
  void FireDisconnect();
  void FireDaemonCrash();

  Simulator& sim_;
  OsProfile profile_;
  ServerConfig config_;
  Rng rng_;
  Cpu cpu_;
  Disk disk_;
  Pager pager_;
  Link link_;
  // Fault wiring: all null/absent with an empty plan, so the fault-free path is identical
  // to a build without the fault layer.
  std::unique_ptr<LinkFaultInjector> link_fault_;
  std::unique_ptr<DiskFaultInjector> disk_fault_;
  std::unique_ptr<ReliableChannel> reliable_;
  // Constructed only when config_.degradation.enabled; polls display-channel pressure
  // (link backlog + reliable in-flight bytes) and pushes levels into session pipelines.
  std::unique_ptr<DegradationController> degradation_;
  ProtoTap tap_;
  Rng fault_rng_;  // schedule jitter for disconnects/crashes; consumed only when armed
  TraceTrack fault_track_;  // "fault/server": daemon crashes and other server-wide faults
  std::unique_ptr<ThinClientDevice> client_;
  // The bitmap-cache gauge attaches to the first RDP session's cache at its Login (per
  // session there is a cache; the gauge follows the first as the representative).
  bool bitmap_gauge_registered_ = false;

  struct DaemonRuntime {
    DaemonSpec spec;
    Thread* thread;
    std::unique_ptr<PeriodicTask> task;
  };
  std::vector<DaemonRuntime> daemons_;
  std::vector<std::unique_ptr<Session>> sessions_;
  // One FlowLedger per session, packed one cache line apiece in login order, so the
  // per-user accounting sweep at the end of a consolidation run walks a flat array.
  FlowLedgerTable flow_ledgers_;
  // Interned pipeline-hop names for attribution trace spans (empty unless the
  // attribution engine carries a tracer).
  std::vector<const char*> hop_trace_names_;

  size_t disconnect_rr_ = 0;  // round-robin cursors for scheduled faults
  size_t daemon_rr_ = 0;
  int64_t disconnects_ = 0;
  int64_t daemon_crashes_ = 0;
  int64_t dropped_keystrokes_ = 0;
  Duration session_downtime_ = Duration::Zero();  // closed disconnect intervals

  // --- Checkpoint bookkeeping --------------------------------------------------------
  // Every event the server schedules directly on the simulator is recorded as (EventId +
  // the scalars that rebuild its callback), with no wrapping on the scheduling hot path.
  // Fired events leave stale records behind; Note() prunes them amortized against a
  // doubling threshold, and SaveTo filters by IsPending without mutating, so snapshotting
  // is non-destructive.
  template <typename Record>
  struct PendingList {
    std::vector<Record> items;
    size_t prune_at = 64;

    void Note(Simulator& sim, Record rec) {
      if (items.size() >= prune_at) {
        Prune(sim);
      }
      items.push_back(rec);
    }
    void Prune(Simulator& sim) {
      std::erase_if(items, [&sim](const Record& r) { return !sim.IsPending(r.ev); });
      prune_at = std::max<size_t>(64, items.size() * 2);
    }
    void ResetFor(size_t n) {
      items.clear();
      items.reserve(n);
      prune_at = std::max<size_t>(64, n * 2);
    }
  };

  // A daemon episode chunk not yet posted to the CPU (episodes spread ~16 chunks over
  // 10 ms strides, so several can be pending at once).
  struct PendingDaemonChunk {
    EventId ev;
    uint32_t daemon = 0;
    Duration cpu;
  };
  // A keystroke in input-channel transit (Server::Keystroke -> OnKeystrokeArrived).
  struct PendingArrival {
    EventId ev;
    uint64_t session = 0;
    TimePoint sent_at;
    uint64_t interaction_id = 0;
    int64_t retransmit_us = 0;
  };
  // A frame-painted notification awaiting its client-side paint time.
  struct PendingPaint {
    EventId ev;
    uint64_t session = 0;
    KeystrokeLatency lat;
  };
  // A degradation coalesce hold keeping the pipeline busy between passes.
  struct PendingHold {
    EventId ev;
    uint64_t session = 0;
    uint64_t gen = 0;
  };
  // A disconnected session's scheduled reconnect.
  struct PendingReconnect {
    EventId ev;
    uint64_t session = 0;
  };
  // A crashed daemon's scheduled restart.
  struct PendingDaemonRestart {
    EventId ev;
    uint32_t daemon = 0;
  };

  PendingList<PendingDaemonChunk> pending_daemon_chunks_;
  PendingList<PendingArrival> pending_arrivals_;
  PendingList<PendingPaint> pending_paints_;
  PendingList<PendingHold> pending_holds_;
  PendingList<PendingReconnect> pending_reconnects_;
  PendingList<PendingDaemonRestart> pending_daemon_restarts_;
  // The self-rescheduling fault timers (at most one of each pending at a time).
  EventId disconnect_timer_;
  EventId crash_timer_;
};

// Throws tcs::ConfigError on non-positive RAM or tap bucket, a negative pager throttle,
// or an invalid fault plan. Returns the config. (RAM vs the profile's idle system memory
// is checked in the Server constructor, where the profile is known.)
ServerConfig Validated(ServerConfig config);

}  // namespace tcs

#endif  // TCS_SRC_SESSION_SERVER_H_
