#include "src/client/thin_client.h"

namespace tcs {

ThinClientConfig ThinClientConfig::DesktopPc() {
  ThinClientConfig c;
  c.name = "desktop-pc";
  c.cpu_speed = 2.0;
  c.video_throughput = BitsPerSecond::Mbps(640);
  return c;
}

ThinClientConfig ThinClientConfig::WinTerm() {
  ThinClientConfig c;
  c.name = "winterm";
  c.cpu_speed = 0.6;
  c.video_throughput = BitsPerSecond::Mbps(240);
  return c;
}

ThinClientConfig ThinClientConfig::Handheld() {
  ThinClientConfig c;
  c.name = "handheld";
  c.cpu_speed = 0.15;
  c.video_throughput = BitsPerSecond::Mbps(24);
  c.per_message_cost = Duration::Micros(400);
  return c;
}

ThinClientDevice::ThinClientDevice(ThinClientConfig config) : config_(config) {}

Duration ThinClientDevice::DecodeDelay(ProtocolKind protocol, Bytes payload) const {
  // Per-byte CPU decode cost at reference speed, reflecting what the client must do with
  // the bytes: replay high-level orders and decompress rasters (RDP), decompress the
  // proxy stream (LBX), copy raw pixels (X/SLIM), decode hextiles (VNC). Decoded output
  // is larger than compressed input for the compressing protocols; the expansion factor
  // feeds the blit bill.
  double decode_us_per_byte = 0.02;
  double expansion = 1.0;
  switch (protocol) {
    case ProtocolKind::kRdp:
      decode_us_per_byte = 0.15;
      expansion = 2.0;
      break;
    case ProtocolKind::kLbx:
      decode_us_per_byte = 0.10;
      expansion = 2.0;
      break;
    case ProtocolKind::kX:
      decode_us_per_byte = 0.02;
      expansion = 1.0;
      break;
    case ProtocolKind::kSlim:
      decode_us_per_byte = 0.03;
      expansion = 1.0;
      break;
    case ProtocolKind::kVnc:
      decode_us_per_byte = 0.12;
      expansion = 2.2;
      break;
  }
  Duration cpu = config_.per_message_cost +
                 Duration::Micros(static_cast<int64_t>(
                     static_cast<double>(payload.count()) * decode_us_per_byte));
  cpu = cpu * (1.0 / config_.cpu_speed);
  Bytes decoded = Bytes::Of(static_cast<int64_t>(
      static_cast<double>(payload.count()) * expansion));
  Duration blit = TransmissionDelay(decoded, config_.video_throughput);
  return cpu + blit;
}

}  // namespace tcs
