// The user's machine (§3.1.4): "In remote-access environments like TSE and X Windows,
// the video subsystem at the server is irrelevant and the GUI is instead constrained by
// network bandwidth, the efficiency of the network protocol, and the video hardware at
// the client."
//
// A ThinClientDevice turns a delivered display message into pixels: protocol decode
// (decompression, order replay) on the client CPU, then the blit through the client's
// video subsystem. Presets model the era's device classes, from a desktop PC to a
// wireless handheld — the converging "PDAs, cellular phones, pagers" of the paper's
// introduction.

#ifndef TCS_SRC_CLIENT_THIN_CLIENT_H_
#define TCS_SRC_CLIENT_THIN_CLIENT_H_

#include <string>

#include "src/proto/protocol_kind.h"
#include "src/sim/time.h"
#include "src/sim/units.h"

namespace tcs {

struct ThinClientConfig {
  std::string name = "pc";
  // Relative CPU speed (1.0 = the 100 MHz-class reference).
  double cpu_speed = 1.0;
  // Video subsystem throughput: decoded bytes blitted per second.
  BitsPerSecond video_throughput = BitsPerSecond::Mbps(320);  // ~40 MB/s PCI-era blit
  // Fixed per-message handling cost (interrupt, protocol dispatch) at speed 1.0.
  Duration per_message_cost = Duration::Micros(120);

  static ThinClientConfig DesktopPc();   // fast CPU, fast blitter
  static ThinClientConfig WinTerm();     // appliance: slow CPU, adequate blitter
  static ThinClientConfig Handheld();    // wireless PDA: slow everything
};

class ThinClientDevice {
 public:
  explicit ThinClientDevice(ThinClientConfig config = {});

  // Time from "last bit of the display message arrived" to "pixels on glass" for a
  // message of `payload` bytes under `protocol`. Deterministic.
  Duration DecodeDelay(ProtocolKind protocol, Bytes payload) const;

  const ThinClientConfig& config() const { return config_; }

 private:
  ThinClientConfig config_;
};

}  // namespace tcs

#endif  // TCS_SRC_CLIENT_THIN_CLIENT_H_
