#include "src/net/traffic_gen.h"

#include <cassert>

namespace tcs {

PoissonTrafficGenerator::PoissonTrafficGenerator(Simulator& sim, Rng rng, Link& link,
                                                 BitsPerSecond offered_rate,
                                                 Bytes frame_size)
    : sim_(sim), rng_(rng), link_(link), frame_size_(frame_size) {
  assert(offered_rate.bps() >= 0);
  if (offered_rate.bps() == 0) {
    mean_interarrival_us_ = 0.0;  // rate zero: Start() is a no-op
    return;
  }
  double frames_per_second = static_cast<double>(offered_rate.bps()) /
                             (static_cast<double>(frame_size.count()) * 8.0);
  mean_interarrival_us_ = 1e6 / frames_per_second;
}

void PoissonTrafficGenerator::Start() {
  if (running_ || mean_interarrival_us_ == 0.0) {
    return;
  }
  running_ = true;
  ScheduleNext();
}

void PoissonTrafficGenerator::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  sim_.Cancel(pending_);
  pending_ = EventId();
}

void PoissonTrafficGenerator::ScheduleNext() {
  Duration gap = Duration::Micros(
      static_cast<int64_t>(rng_.NextExponential(mean_interarrival_us_)));
  pending_ = sim_.Schedule(gap, [this] {
    ++frames_offered_;
    link_.Send(frame_size_);
    ScheduleNext();
  });
}

}  // namespace tcs
