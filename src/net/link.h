// Shared-medium network link.
//
// Models the paper's testbed segment: 10 Mbps shared (half-duplex) Ethernet, so traffic in
// both directions contends for one FIFO transmission queue. A frame waits for all earlier
// frames, is serialized at the link rate, then arrives after the propagation delay.
// Figures 8 and 9 (RTT and jitter vs offered load) are pure consequences of this queue.

#ifndef TCS_SRC_NET_LINK_H_
#define TCS_SRC_NET_LINK_H_

#include <cstdint>
#include <functional>

#include "src/obs/trace.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/units.h"
#include "src/util/stats.h"
#include "src/util/time_series.h"

namespace tcs {

struct LinkConfig {
  BitsPerSecond rate = BitsPerSecond::Mbps(10);
  Duration propagation = Duration::Micros(50);
  Bytes mtu = Bytes::Of(1500);  // max payload+transport+network bytes per frame
  // Resolution of the carried-load time series.
  Duration load_bucket = Duration::Seconds(1);
  // Model half-duplex CSMA/CD contention: frames sent while the medium has been busy
  // suffer collision/backoff delay with probability rising with recent utilization.
  // (The paper's testbed was shared 10 Mbps Ethernet; FIFO-only queueing understates
  // its near-saturation delay by roughly 2x.)
  bool csma_cd = false;
  Duration backoff_slot = Duration::Micros(51);  // 512 bit times at 10 Mbps
  uint64_t seed = 0x5EED;
};

class Link {
 public:
  Link(Simulator& sim, LinkConfig config = {});

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Queues a frame of `wire_bytes` for transmission; `delivered` (optional) fires when the
  // last bit arrives at the far end.
  void Send(Bytes wire_bytes, std::function<void()> delivered = nullptr);

  const LinkConfig& config() const { return config_; }
  int64_t frames_sent() const { return frames_sent_; }
  Bytes bytes_carried() const { return bytes_carried_; }

  // Queueing delay experienced by each frame (time from Send() to transmission start).
  const RunningStats& queue_delay() const { return queue_delay_; }

  // Carried bytes per load_bucket (for "network load vs time" plots).
  const TimeSeries& load_series() const { return load_; }

  // Fraction of capacity used so far.
  double UtilizationOver(Duration window) const;

  // Time at which everything currently queued will have finished transmitting.
  TimePoint busy_until() const { return busy_until_; }

  int64_t collisions() const { return collisions_; }

  // Bytes still waiting for (or in) transmission at `now` — the wire-time backlog
  // converted back to bytes at the link rate. Used by queue-depth gauges.
  Bytes BacklogBytesAt(TimePoint now) const;

  // Observability: each frame becomes a net-category span over its serialization window.
  void SetTracer(Tracer* tracer);

 private:
  // Extra delay from CSMA/CD contention for a frame starting at `start`.
  Duration ContentionDelay(TimePoint start);

  Simulator& sim_;
  LinkConfig config_;
  Rng rng_;
  Tracer* tracer_ = nullptr;
  TraceTrack trace_track_;
  TimePoint busy_until_ = TimePoint::Zero();
  int64_t frames_sent_ = 0;
  int64_t collisions_ = 0;
  Bytes bytes_carried_ = Bytes::Zero();
  RunningStats queue_delay_;
  TimeSeries load_;
  // Sliding recent-utilization estimate (exponentially smoothed busy fraction).
  double recent_utilization_ = 0.0;
  TimePoint last_send_ = TimePoint::Zero();
};

}  // namespace tcs

#endif  // TCS_SRC_NET_LINK_H_
