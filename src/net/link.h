// Shared-medium network link.
//
// Models the paper's testbed segment: 10 Mbps shared (half-duplex) Ethernet, so traffic in
// both directions contends for one FIFO transmission queue. A frame waits for all earlier
// frames, is serialized at the link rate, then arrives after the propagation delay.
// Figures 8 and 9 (RTT and jitter vs offered load) are pure consequences of this queue.
//
// Faults: an attached LinkFaultInjector classifies each frame (delivered, lost,
// corrupted, or swallowed by an outage window). A lost frame still occupies the wire —
// the sender cannot know — but its delivery callback reports failure, which is what
// ReliableChannel's retransmission timers key off. With no injector the fault path is a
// single null-pointer branch and behaviour is bit-identical to the fault-free model.

#ifndef TCS_SRC_NET_LINK_H_
#define TCS_SRC_NET_LINK_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/obs/trace.h"
#include "src/sim/inline_callback.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/snapshot.h"
#include "src/sim/units.h"
#include "src/util/stats.h"
#include "src/util/time_series.h"

namespace tcs {

class FlightRecorder;

struct LinkConfig {
  BitsPerSecond rate = BitsPerSecond::Mbps(10);
  Duration propagation = Duration::Micros(50);
  Bytes mtu = Bytes::Of(1500);  // max payload+transport+network bytes per frame
  // Link-layer framing (Ethernet MAC + FCS) that rides on every frame but does not count
  // against the MTU. A send larger than mtu+framing is fragmented into multiple frames.
  Bytes framing = Bytes::Of(18);
  // Resolution of the carried-load time series.
  Duration load_bucket = Duration::Seconds(1);
  // Model half-duplex CSMA/CD contention: frames sent while the medium has been busy
  // suffer collision/backoff delay with probability rising with recent utilization.
  // (The paper's testbed was shared 10 Mbps Ethernet; FIFO-only queueing understates
  // its near-saturation delay by roughly 2x.)
  bool csma_cd = false;
  Duration backoff_slot = Duration::Micros(51);  // 512 bit times at 10 Mbps
  uint64_t seed = 0x5EED;
};

// Throws tcs::ConfigError on a zero rate, non-positive MTU, zero load bucket, negative
// propagation, or (with csma_cd) a non-positive backoff slot. Returns the config.
LinkConfig Validated(LinkConfig config);

// Anything that can carry an MTU-bounded frame: the raw Link, or a ReliableChannel that
// recovers the Link's losses. MessageSender segments protocol messages onto one of these.
class FrameTransport {
 public:
  virtual ~FrameTransport() = default;

  // Queues a frame of `wire_bytes`; `delivered` (optional) fires when the last bit
  // arrives at the far end (for reliable transports: in order, after any recovery).
  // `delivered_tally` (optional) is incremented at that same moment, just before the
  // callback — the allocation-free way for per-session ledgers to count deliveries
  // without wrapping every send in a closure. The pointee must outlive the delivery.
  // `delivered_key` is the delivery action's checkpoint identity: its registered
  // restorer must reproduce the whole action (any tally bump, then the callback). A
  // send wanting notification that is still in flight at snapshot time must carry one
  // or SaveTo fails loudly; key-less sends are fine as long as they land before any
  // checkpoint is taken.
  virtual void Send(Bytes wire_bytes, InlineCallback delivered = nullptr,
                    int64_t* delivered_tally = nullptr, ResumeKey delivered_key = {}) = 0;

  // The underlying link's configuration (MTU, rate) for segmentation arithmetic.
  virtual const LinkConfig& config() const = 0;
};

class Link : public FrameTransport {
 public:
  Link(Simulator& sim, LinkConfig config = {});

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Queues a frame of `wire_bytes` for transmission; `delivered` (optional) fires when the
  // last bit arrives at the far end. Sends larger than mtu+framing are fragmented into
  // multiple frames (each queued separately); `delivered` fires when the last fragment
  // lands, and only if every fragment survived any attached fault injector.
  // `delivered_tally` is bumped at delivery under the same condition (see FrameTransport).
  void Send(Bytes wire_bytes, InlineCallback delivered = nullptr,
            int64_t* delivered_tally = nullptr, ResumeKey delivered_key = {}) override;

  // What a fate-reporting send scheduled: the pending fate event (invalid when no `done`
  // was supplied) and the fate itself. The caller owns tracking the event for
  // checkpointing — it knows what `done` captured; the link does not.
  struct FateHandle {
    EventId ev;
    bool ok = false;
  };

  // Fate-reporting send: `done` (optional) always fires at the would-be delivery time,
  // with ok=false when the frame (any fragment) was lost/corrupted/in an outage.
  // Reliable transports use this as their loss-detection oracle. `retransmit` marks the
  // send as a retransmission for the wire ledger (blame decomposition only; it does not
  // change transmission behaviour in any way).
  FateHandle SendEx(Bytes wire_bytes, InlineFunction<void(bool ok)> done,
                    bool retransmit = false);

  const LinkConfig& config() const override { return config_; }
  int64_t frames_sent() const { return frames_sent_; }
  // Every transmission attempt either arrives or does not: frames_sent() ==
  // frames_delivered() + frames_lost(), always.
  int64_t frames_delivered() const { return frames_delivered_; }
  int64_t frames_lost() const { return frames_lost_; }
  Bytes bytes_carried() const { return bytes_carried_; }

  // Queueing delay experienced by each frame (time from Send() to transmission start,
  // including any CSMA/CD backoff).
  const RunningStats& queue_delay() const { return queue_delay_; }

  // Total CSMA/CD backoff delay injected so far (a component of queue_delay()).
  Duration backoff_total() const { return backoff_total_; }

  // Carried bytes per load_bucket (for "network load vs time" plots).
  const TimeSeries& load_series() const { return load_; }

  // Fraction of capacity used so far.
  double UtilizationOver(Duration window) const;

  // Time at which everything currently queued will have finished transmitting.
  TimePoint busy_until() const { return busy_until_; }

  int64_t collisions() const { return collisions_; }

  // Bytes still waiting for (or in) transmission at `now` — the wire-time backlog
  // converted back to bytes at the effective (WAN-aware) link rate. Used by queue-depth
  // gauges and by the WAN drop-tail bound.
  Bytes BacklogBytesAt(TimePoint now) const;

  // Effective serialization rates. With no WAN profile both equal config().rate; a WAN
  // profile's asymmetric down/up rates override them (down: display-direction frames on
  // this wire; up: input-direction messages and returning ACKs).
  BitsPerSecond DownRate() const;
  BitsPerSecond UpRate() const;

  // WAN extra one-way delay applied to the most recently queued frame (zero on a LAN).
  // The session pipeline adds this to its last-bit delivery estimate so painted-latency
  // accounting sees the same transit the wire does.
  Duration last_wan_extra() const { return last_wan_extra_; }

  // The jitter component of last_wan_extra() (the draw above the profile's fixed
  // extra_delay; zero on a LAN or a jitter-free profile). Blame decomposition splits
  // the WAN transit into a propagation part and this jitter part.
  Duration last_wan_jitter() const { return last_wan_jitter_; }

  // Wire ledger for blame decomposition: when enabled, every frame that occupies the
  // wire is recorded as a [start, end) occupancy slot tagged retransmit-or-not. The
  // ledger adds no events and consumes no randomness, so outputs stay byte-identical
  // whether or not it is on; it is off by default and enabled by servers that attribute
  // per-interaction latency.
  void EnableWireLedger() { wire_ledger_enabled_ = true; }
  bool wire_ledger_enabled() const { return wire_ledger_enabled_; }

  // Microseconds of wire occupancy still pending at `now` that belong to retransmitted
  // frames: sum over unfinished retransmit slots of end - max(now, start). Zero unless
  // the wire ledger is enabled. Used to split display-leg backlog into bufferbloat
  // queueing vs retransmit-wait.
  int64_t PendingRetransmitWireUs(TimePoint now);

  // Frames dropped at the tail of the bounded WAN bufferbloat queue (they never occupied
  // the wire; counted in frames_lost() so sent == delivered + lost still holds).
  int64_t wan_queue_drops() const { return wan_queue_drops_; }

  // Fault injection (non-owning; null = healthy link, the default).
  void SetFaultInjector(LinkFaultInjector* injector) { fault_ = injector; }
  LinkFaultInjector* fault_injector() const { return fault_; }

  // Observability: each frame becomes a net-category span over its serialization window.
  void SetTracer(Tracer* tracer);

  // Flight recorder: each frame becomes a compact net record (bytes + queue delay).
  void SetFlightRecorder(FlightRecorder* recorder) { recorder_ = recorder; }

  // Checkpoint/restore: RNG position, wire horizon, counters, load series, wire ledger,
  // and every pending delivery event as (seq, when, ok, ResumeKey). Delivery events are
  // tracked as records and pruned lazily (IsPending) so the send hot path never wraps
  // its callback. LoadFrom re-arms surviving deliveries: a lost frame's event restores
  // as the same no-op the live run scheduled; a delivered frame's action is rebuilt from
  // its ResumeKey via the registered-restorer table.
  void SaveTo(SnapshotWriter& w) const;
  void LoadFrom(SnapshotReader& r, EventRearm& plan);

 private:
  // One pending delivery-notification event (see Send). `ok` is the frame's fate, fixed
  // at send time; `key` rebuilds the delivery action on restore.
  struct PendingDelivery {
    EventId ev;
    bool ok = false;
    ResumeKey key;
  };

  // Extra delay from CSMA/CD contention for a frame starting at `start`.
  Duration ContentionDelay(TimePoint start);
  // Queues one MTU-bounded frame; returns whether it will arrive and sets `delivery` to
  // its last-bit-plus-propagation time.
  bool TransmitFrame(Bytes frame_bytes, TimePoint* delivery);
  // Fragments `wire_bytes` into MTU-bounded frames and queues them all; returns whether
  // every fragment will arrive and sets `delivery` to the last fragment's arrival time.
  bool TransmitAll(Bytes wire_bytes, TimePoint* delivery);

  Simulator& sim_;
  LinkConfig config_;
  Rng rng_;
  LinkFaultInjector* fault_ = nullptr;
  Tracer* tracer_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  TraceTrack trace_track_;
  TimePoint busy_until_ = TimePoint::Zero();
  int64_t frames_sent_ = 0;
  int64_t frames_delivered_ = 0;
  int64_t frames_lost_ = 0;
  int64_t collisions_ = 0;
  Bytes bytes_carried_ = Bytes::Zero();
  RunningStats queue_delay_;
  Duration backoff_total_ = Duration::Zero();
  TimeSeries load_;
  // Sliding recent-utilization estimate (exponentially smoothed busy fraction).
  double recent_utilization_ = 0.0;
  TimePoint last_send_ = TimePoint::Zero();
  Duration last_wan_extra_ = Duration::Zero();
  Duration last_wan_jitter_ = Duration::Zero();
  int64_t wan_queue_drops_ = 0;
  // Wire ledger (blame decomposition): pending [start, end) occupancy slots, pruned
  // lazily as their end times pass. Empty unless EnableWireLedger() was called.
  struct WireSlot {
    int64_t start_us = 0;
    int64_t end_us = 0;
    bool retransmit = false;
  };
  std::deque<WireSlot> wire_slots_;
  bool wire_ledger_enabled_ = false;
  // Set by SendEx for the duration of the TransmitAll it triggers, so TransmitFrame can
  // tag the resulting wire slots.
  bool sending_retransmit_ = false;
  // Pending delivery notifications; stale (already-fired) records are pruned lazily at
  // the next Send once the list outgrows prune_deliveries_at_, and at SaveTo.
  std::vector<PendingDelivery> deliveries_;
  size_t prune_deliveries_at_ = 64;
};

}  // namespace tcs

#endif  // TCS_SRC_NET_LINK_H_
