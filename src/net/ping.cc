#include "src/net/ping.h"

namespace tcs {

Ping::Ping(Simulator& sim, Link& link, PingConfig config)
    : sim_(sim), link_(link), config_(config) {}

void Ping::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  SendOne();
}

void Ping::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  sim_.Cancel(pending_);
  pending_ = EventId();
}

void Ping::SendOne() {
  ++sent_;
  TimePoint sent_at = sim_.Now();
  // Echo request out; on arrival the responder immediately transmits the reply through the
  // same shared medium; RTT measured at reply arrival.
  link_.Send(config_.packet_size, [this, sent_at] {
    link_.Send(config_.packet_size, [this, sent_at] {
      ++received_;
      rtt_ms_.Add((sim_.Now() - sent_at).ToMillisF());
    });
  });
  pending_ = sim_.Schedule(config_.interval, [this] { SendOne(); });
}

}  // namespace tcs
