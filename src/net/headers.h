// Per-packet header overhead models.
//
// RDP, X, and LBX all ran over TCP/IP in the paper's testbed. Average message size across
// the three protocols was just 267 bytes, so the fixed per-packet headers matter; §6.1.2
// evaluates the x-kernel virtual-IP (VIP) scheme, which omits the 20-byte IP header in
// non-routed deployments. Header accounting here reproduces that arithmetic.

#ifndef TCS_SRC_NET_HEADERS_H_
#define TCS_SRC_NET_HEADERS_H_

#include "src/sim/units.h"

namespace tcs {

struct HeaderModel {
  Bytes tcp = Bytes::Of(20);
  Bytes ip = Bytes::Of(20);
  // Ethernet MAC + FCS. tcpdump byte counts (which the paper reports) exclude this, so it
  // participates in wire timing but not in protocol byte accounting.
  Bytes link = Bytes::Of(18);

  // Headers counted by a tcpdump-style tracer (transport + network).
  Bytes CountedPerPacket() const { return tcp + ip; }
  // Everything that occupies the wire.
  Bytes WirePerPacket() const { return tcp + ip + link; }

  static HeaderModel TcpIp() { return HeaderModel{}; }
  // Virtual IP: the IP header is elided entirely.
  static HeaderModel Vip() {
    HeaderModel h;
    h.ip = Bytes::Zero();
    return h;
  }
};

}  // namespace tcs

#endif  // TCS_SRC_NET_HEADERS_H_
