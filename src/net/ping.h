// RTT prober reproducing the paper's §6.2 methodology: run ping for 60 seconds at each
// load level, report the average and variance of RTT over all packets sent. The default
// 64-byte packet is "roughly the size of a typical input channel message, such as a
// keystroke", so these RTTs lower-bound what a thin-client user would see.

#ifndef TCS_SRC_NET_PING_H_
#define TCS_SRC_NET_PING_H_

#include "src/net/link.h"
#include "src/sim/simulator.h"
#include "src/util/stats.h"

namespace tcs {

struct PingConfig {
  Bytes packet_size = Bytes::Of(64);  // wire size of echo request and reply
  Duration interval = Duration::Millis(100);
};

class Ping {
 public:
  Ping(Simulator& sim, Link& link, PingConfig config = {});

  Ping(const Ping&) = delete;
  Ping& operator=(const Ping&) = delete;
  ~Ping() { Stop(); }

  void Start();
  void Stop();

  // RTTs in milliseconds.
  const RunningStats& rtt() const { return rtt_ms_; }
  int64_t sent() const { return sent_; }
  int64_t received() const { return received_; }

 private:
  void SendOne();

  Simulator& sim_;
  Link& link_;
  PingConfig config_;
  bool running_ = false;
  EventId pending_;
  int64_t sent_ = 0;
  int64_t received_ = 0;
  RunningStats rtt_ms_;
};

}  // namespace tcs

#endif  // TCS_SRC_NET_PING_H_
