#include "src/net/link.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/util/config_error.h"

namespace tcs {

LinkConfig Validated(LinkConfig config) {
  if (config.rate.bps() <= 0) {
    throw ConfigError("LinkConfig.rate", "link rate must be positive");
  }
  if (config.mtu.count() <= 0) {
    throw ConfigError("LinkConfig.mtu", "MTU must be positive");
  }
  if (config.framing.count() < 0) {
    throw ConfigError("LinkConfig.framing", "framing bytes cannot be negative");
  }
  if (config.propagation < Duration::Zero()) {
    throw ConfigError("LinkConfig.propagation", "propagation delay cannot be negative");
  }
  if (!(config.load_bucket > Duration::Zero())) {
    throw ConfigError("LinkConfig.load_bucket", "load bucket must be positive");
  }
  if (config.csma_cd && !(config.backoff_slot > Duration::Zero())) {
    throw ConfigError("LinkConfig.backoff_slot",
                      "CSMA/CD backoff slot must be positive");
  }
  return config;
}

Link::Link(Simulator& sim, LinkConfig config)
    : sim_(sim),
      config_(Validated(std::move(config))),
      rng_(config_.seed),
      load_(config_.load_bucket) {}

Duration Link::ContentionDelay(TimePoint start) {
  if (!config_.csma_cd) {
    return Duration::Zero();
  }
  // Half-duplex shared medium: other stations contend in proportion to how busy the
  // segment has recently been. Each collision costs a jam plus a short truncated binary
  // exponential backoff. Calibration note: the expected per-frame penalty must stay a
  // small percentage of the frame's service time, or the link's effective capacity
  // collapses — real 10 Mbps Ethernet sustained ~97% goodput under a single bulk talker,
  // while collisions roughly doubled near-saturation queueing delay (the paper's 55 ms
  // at 9.6 Mbps vs ~28 ms for a pure FIFO model).
  Duration total = Duration::Zero();
  double p = std::min(0.15, 0.3 * recent_utilization_ * recent_utilization_);
  int attempt = 0;
  while (attempt < 6 && rng_.NextBool(p)) {
    ++collisions_;
    ++attempt;
    int window = 1 << std::min(attempt, 2);  // backoff window, truncated at 4 slots
    int64_t slots = static_cast<int64_t>(rng_.NextBelow(static_cast<uint64_t>(window)));
    total += config_.backoff_slot * (slots + 1);
  }
  (void)start;
  return total;
}

bool Link::TransmitFrame(Bytes frame_bytes, TimePoint* delivery) {
  TimePoint now = sim_.Now();
  // Update the smoothed utilization estimate with the gap since the previous send: the
  // fraction of that gap during which the medium was transmitting.
  if (now > last_send_) {
    Duration gap = now - last_send_;
    Duration busy_in_gap = std::min(gap, std::max(Duration::Zero(), busy_until_ - last_send_));
    double sample = busy_in_gap / gap;
    recent_utilization_ = 0.9 * recent_utilization_ + 0.1 * sample;
    last_send_ = now;
  } else {
    // Back-to-back sends at one instant: the medium is clearly contended.
    recent_utilization_ = 0.95 * recent_utilization_ + 0.05;
  }

  const bool wan = fault_ != nullptr && fault_->wan_active();
  const BitsPerSecond rate = wan ? DownRate() : config_.rate;
  if (wan && fault_->wan().queue_bytes.count() > 0) {
    // Bounded bufferbloat queue with drop-tail overflow: a frame arriving to a backlog
    // already over the bound never occupies the wire. Its would-be delivery time is
    // still computed (and the jitter stream still consumes one draw) so event schedules
    // and random streams stay independent of the drop decision.
    Bytes backlog = BacklogBytesAt(now);
    if (backlog > fault_->wan().queue_bytes) {
      ++frames_sent_;
      ++frames_lost_;
      ++wan_queue_drops_;
      Duration extra = fault_->WanFrameExtra();
      last_wan_extra_ = extra;
      last_wan_jitter_ = extra - fault_->wan().extra_delay;
      *delivery = std::max(now, busy_until_) + TransmissionDelay(frame_bytes, rate) +
                  config_.propagation + extra;
      if (tracer_ != nullptr) {
        tracer_->Instant(TraceCategory::kNet, "frame-dropped", trace_track_, now, "bytes",
                         frame_bytes.count(), "backlog", backlog.count());
      }
      if (recorder_ != nullptr) {
        recorder_->Instant(FlightComponent::kNet, "frame-dropped", now, 0,
                           frame_bytes.count(), backlog.count());
      }
      return false;
    }
  }
  TimePoint start = std::max(now, busy_until_);
  Duration backoff = ContentionDelay(start);
  backoff_total_ += backoff;
  start += backoff;
  Duration serialization = TransmissionDelay(frame_bytes, rate);
  busy_until_ = start + serialization;
  if (wire_ledger_enabled_) {
    // Prune slots whose occupancy already ended, then record this frame's. Pure
    // bookkeeping: no events, no randomness, no behavioural coupling.
    const int64_t now_us = now.ToMicros();
    while (!wire_slots_.empty() && wire_slots_.front().end_us <= now_us) {
      wire_slots_.pop_front();
    }
    wire_slots_.push_back(
        {start.ToMicros(), busy_until_.ToMicros(), sending_retransmit_});
  }
  queue_delay_.Add((start - now).ToMillisF());
  ++frames_sent_;
  bytes_carried_ += frame_bytes;
  load_.AddSpread(start, busy_until_, static_cast<double>(frame_bytes.count()));
  // Fate: a faulted frame still occupies the wire (the sender transmitted it), but
  // never arrives. The healthy path is a single null check.
  bool ok = true;
  if (fault_ != nullptr) {
    ok = fault_->Classify(start, busy_until_) == LinkFaultInjector::Fate::kDelivered;
  }
  if (ok) {
    ++frames_delivered_;
  } else {
    ++frames_lost_;
  }
  if (tracer_ != nullptr) {
    tracer_->Span(TraceCategory::kNet, ok ? "frame" : "frame-lost", trace_track_, start,
                  busy_until_, "bytes", frame_bytes.count(), "queue_us",
                  (start - now).ToMicros());
  }
  if (recorder_ != nullptr) {
    recorder_->Span(FlightComponent::kNet, ok ? "frame" : "frame-lost", start,
                    busy_until_, 0, frame_bytes.count(), (start - now).ToMicros());
  }
  *delivery = busy_until_ + config_.propagation;
  if (wan) {
    // WAN transit: the profile's extra one-way delay plus per-frame jitter rides on top
    // of the LAN propagation (lost frames pay it too — their would-be delivery time
    // anchors retransmission timing).
    Duration extra = fault_->WanFrameExtra();
    last_wan_extra_ = extra;
    last_wan_jitter_ = extra - fault_->wan().extra_delay;
    *delivery += extra;
  }
  return ok;
}

bool Link::TransmitAll(Bytes wire_bytes, TimePoint* delivery) {
  assert(wire_bytes.count() > 0);
  const int64_t max_frame = config_.mtu.count() + config_.framing.count();
  bool all_ok = true;
  int64_t remaining = wire_bytes.count();
  while (remaining > 0) {
    Bytes chunk = Bytes::Of(std::min(remaining, max_frame));
    remaining -= chunk.count();
    bool ok = TransmitFrame(chunk, delivery);
    all_ok = all_ok && ok;
  }
  return all_ok;
}

Link::FateHandle Link::SendEx(Bytes wire_bytes, InlineFunction<void(bool)> done,
                              bool retransmit) {
  sending_retransmit_ = retransmit;
  TimePoint delivery = TimePoint::Zero();
  bool all_ok = TransmitAll(wire_bytes, &delivery);
  sending_retransmit_ = false;
  FateHandle handle{EventId(), all_ok};
  if (done) {
    handle.ev =
        sim_.At(delivery, [cb = std::move(done), all_ok]() mutable { cb(all_ok); });
  }
  return handle;
}

void Link::Send(Bytes wire_bytes, InlineCallback delivered, int64_t* delivered_tally,
                ResumeKey delivered_key) {
  TimePoint delivery = TimePoint::Zero();
  bool all_ok = TransmitAll(wire_bytes, &delivery);
  // A send that wants any delivery notification schedules exactly one event at the
  // delivery time — even when the frame was lost (the event is then a no-op). Lost and
  // delivered frames thus execute identical event schedules, which keeps the
  // events_executed counter (and the golden corpus that records it) fate-independent.
  //
  // The common consolidation path is tally-only: the delivery event captures a pointer
  // and a bool and stays inside the event queue's inline buffer. A bare callback on a
  // healthy link passes through unwrapped — it already IS the event callback type.
  EventId ev;
  if (delivered) {
    if (delivered_tally != nullptr) {
      ev = sim_.At(delivery,
                   [tally = delivered_tally, ok = all_ok,
                    cb = std::move(delivered)]() mutable {
                     if (ok) {
                       ++*tally;
                       cb();
                     }
                   });
    } else if (all_ok) {
      ev = sim_.At(delivery, std::move(delivered));
    } else {
      ev = sim_.At(delivery, [] {});
    }
  } else if (delivered_tally != nullptr) {
    ev = sim_.At(delivery, [tally = delivered_tally, ok = all_ok] {
      if (ok) {
        ++*tally;
      }
    });
  } else {
    return;  // nothing scheduled, nothing to track
  }
  // Track the pending event as a record (no callback wrapping, so the hot path pays one
  // vector push). Stale records are swept once the list outgrows its amortized bound.
  if (deliveries_.size() >= prune_deliveries_at_) {
    deliveries_.erase(std::remove_if(deliveries_.begin(), deliveries_.end(),
                                     [this](const PendingDelivery& d) {
                                       return !sim_.IsPending(d.ev);
                                     }),
                      deliveries_.end());
    prune_deliveries_at_ = std::max<size_t>(64, deliveries_.size() * 2);
  }
  deliveries_.push_back(PendingDelivery{ev, all_ok, delivered_key});
}

void Link::SaveTo(SnapshotWriter& w) const {
  for (uint64_t word : rng_.state()) {
    w.U64(word);
  }
  w.Time(busy_until_);
  w.I64(frames_sent_);
  w.I64(frames_delivered_);
  w.I64(frames_lost_);
  w.I64(collisions_);
  w.I64(bytes_carried_.count());
  RunningStats::State qs = queue_delay_.state();
  w.I64(qs.count);
  w.F64(qs.mean);
  w.F64(qs.m2);
  w.F64(qs.sum);
  w.F64(qs.min);
  w.F64(qs.max);
  w.Dur(backoff_total_);
  load_.SaveTo(w);
  w.F64(recent_utilization_);
  w.Time(last_send_);
  w.Dur(last_wan_extra_);
  w.Dur(last_wan_jitter_);
  w.I64(wan_queue_drops_);
  w.Bool(wire_ledger_enabled_);
  w.U64(wire_slots_.size());
  for (const WireSlot& slot : wire_slots_) {
    w.I64(slot.start_us);
    w.I64(slot.end_us);
    w.Bool(slot.retransmit);
  }
  // Pending deliveries: only records whose event is still in the queue. A delivered
  // frame's action must be rebuildable from its key; a lost frame's event is a no-op
  // and restores as one.
  uint64_t live = 0;
  for (const PendingDelivery& d : deliveries_) {
    if (sim_.IsPending(d.ev)) {
      ++live;
    }
  }
  w.U64(live);
  for (const PendingDelivery& d : deliveries_) {
    uint64_t seq = 0;
    TimePoint when;
    if (!sim_.PendingInfo(d.ev, &seq, &when)) {
      continue;
    }
    if (d.ok && d.key.empty()) {
      throw SnapshotError("link.delivery",
                          "in-flight frame wants a delivery notification but carries no "
                          "ResumeKey; attach one at the Send site to make this workload "
                          "checkpointable");
    }
    w.U64(seq);
    w.Time(when);
    w.Bool(d.ok);
    d.key.SaveTo(w);
  }
}

void Link::LoadFrom(SnapshotReader& r, EventRearm& plan) {
  std::array<uint64_t, 4> state;
  for (uint64_t& word : state) {
    word = r.U64();
  }
  rng_.set_state(state);
  busy_until_ = r.Time();
  frames_sent_ = r.I64();
  frames_delivered_ = r.I64();
  frames_lost_ = r.I64();
  collisions_ = r.I64();
  bytes_carried_ = Bytes::Of(r.I64());
  RunningStats::State qs;
  qs.count = r.I64();
  qs.mean = r.F64();
  qs.m2 = r.F64();
  qs.sum = r.F64();
  qs.min = r.F64();
  qs.max = r.F64();
  queue_delay_.set_state(qs);
  backoff_total_ = r.Dur();
  load_.LoadFrom(r);
  recent_utilization_ = r.F64();
  last_send_ = r.Time();
  last_wan_extra_ = r.Dur();
  last_wan_jitter_ = r.Dur();
  wan_queue_drops_ = r.I64();
  wire_ledger_enabled_ = r.Bool();
  wire_slots_.clear();
  uint64_t slots = r.U64();
  for (uint64_t i = 0; i < slots; ++i) {
    WireSlot slot;
    slot.start_us = r.I64();
    slot.end_us = r.I64();
    slot.retransmit = r.Bool();
    wire_slots_.push_back(slot);
  }
  deliveries_.clear();
  uint64_t n = r.U64();
  deliveries_.reserve(n);  // EventId out-pointers below must stay stable
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t seq = r.U64();
    TimePoint when = r.Time();
    bool ok = r.Bool();
    ResumeKey key = ResumeKey::LoadFrom(r);
    deliveries_.push_back(PendingDelivery{EventId(), ok, key});
    if (ok) {
      plan.Schedule("link.delivery", seq, when,
                    [thunk = plan.Build(key)] { thunk(); }, &deliveries_.back().ev);
    } else {
      plan.Schedule("link.delivery", seq, when, [] {}, &deliveries_.back().ev);
    }
  }
  prune_deliveries_at_ = std::max<size_t>(64, deliveries_.size() * 2);
}

int64_t Link::PendingRetransmitWireUs(TimePoint now) {
  if (!wire_ledger_enabled_ || wire_slots_.empty()) {
    return 0;
  }
  const int64_t now_us = now.ToMicros();
  while (!wire_slots_.empty() && wire_slots_.front().end_us <= now_us) {
    wire_slots_.pop_front();
  }
  int64_t total = 0;
  for (const WireSlot& slot : wire_slots_) {
    if (slot.retransmit) {
      total += slot.end_us - std::max(now_us, slot.start_us);
    }
  }
  return total;
}

Bytes Link::BacklogBytesAt(TimePoint now) const {
  if (busy_until_ <= now) {
    return Bytes::Zero();
  }
  double seconds = (busy_until_ - now).ToSecondsF();
  double bits = seconds * static_cast<double>(DownRate().bps());
  return Bytes::Of(static_cast<int64_t>(bits / 8.0));
}

BitsPerSecond Link::DownRate() const {
  if (fault_ != nullptr && fault_->wan_active() && fault_->wan().down_rate.bps() > 0) {
    return fault_->wan().down_rate;
  }
  return config_.rate;
}

BitsPerSecond Link::UpRate() const {
  if (fault_ != nullptr && fault_->wan_active() && fault_->wan().up_rate.bps() > 0) {
    return fault_->wan().up_rate;
  }
  return config_.rate;
}

void Link::SetTracer(Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    trace_track_ = tracer_->RegisterTrack("net", "link");
  }
}

double Link::UtilizationOver(Duration window) const {
  if (window.IsZero()) {
    return 0.0;
  }
  double carried_bits = static_cast<double>(bytes_carried_.count()) * 8.0;
  double capacity_bits = static_cast<double>(config_.rate.bps()) * window.ToSecondsF();
  return carried_bits / capacity_bits;
}

}  // namespace tcs
