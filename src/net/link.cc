#include "src/net/link.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace tcs {

Link::Link(Simulator& sim, LinkConfig config)
    : sim_(sim), config_(config), rng_(config.seed), load_(config.load_bucket) {
  assert(config_.rate.bps() > 0);
}

Duration Link::ContentionDelay(TimePoint start) {
  if (!config_.csma_cd) {
    return Duration::Zero();
  }
  // Half-duplex shared medium: other stations contend in proportion to how busy the
  // segment has recently been. Each collision costs a jam plus a short truncated binary
  // exponential backoff. Calibration note: the expected per-frame penalty must stay a
  // small percentage of the frame's service time, or the link's effective capacity
  // collapses — real 10 Mbps Ethernet sustained ~97% goodput under a single bulk talker,
  // while collisions roughly doubled near-saturation queueing delay (the paper's 55 ms
  // at 9.6 Mbps vs ~28 ms for a pure FIFO model).
  Duration total = Duration::Zero();
  double p = std::min(0.15, 0.3 * recent_utilization_ * recent_utilization_);
  int attempt = 0;
  while (attempt < 6 && rng_.NextBool(p)) {
    ++collisions_;
    ++attempt;
    int window = 1 << std::min(attempt, 2);  // backoff window, truncated at 4 slots
    int64_t slots = static_cast<int64_t>(rng_.NextBelow(static_cast<uint64_t>(window)));
    total += config_.backoff_slot * (slots + 1);
  }
  (void)start;
  return total;
}

void Link::Send(Bytes wire_bytes, std::function<void()> delivered) {
  assert(wire_bytes.count() > 0);
  TimePoint now = sim_.Now();
  // Update the smoothed utilization estimate with the gap since the previous send: the
  // fraction of that gap during which the medium was transmitting.
  if (now > last_send_) {
    Duration gap = now - last_send_;
    Duration busy_in_gap = std::min(gap, std::max(Duration::Zero(), busy_until_ - last_send_));
    double sample = busy_in_gap / gap;
    recent_utilization_ = 0.9 * recent_utilization_ + 0.1 * sample;
    last_send_ = now;
  } else {
    // Back-to-back sends at one instant: the medium is clearly contended.
    recent_utilization_ = 0.95 * recent_utilization_ + 0.05;
  }

  TimePoint start = std::max(now, busy_until_);
  start += ContentionDelay(start);
  Duration serialization = TransmissionDelay(wire_bytes, config_.rate);
  busy_until_ = start + serialization;
  queue_delay_.Add((start - now).ToMillisF());
  ++frames_sent_;
  bytes_carried_ += wire_bytes;
  load_.AddSpread(start, busy_until_, static_cast<double>(wire_bytes.count()));
  if (tracer_ != nullptr) {
    tracer_->Span(TraceCategory::kNet, "frame", trace_track_, start, busy_until_, "bytes",
                  wire_bytes.count(), "queue_us", (start - now).ToMicros());
  }
  if (delivered) {
    sim_.At(busy_until_ + config_.propagation, std::move(delivered));
  }
}

Bytes Link::BacklogBytesAt(TimePoint now) const {
  if (busy_until_ <= now) {
    return Bytes::Zero();
  }
  double seconds = (busy_until_ - now).ToSecondsF();
  double bits = seconds * static_cast<double>(config_.rate.bps());
  return Bytes::Of(static_cast<int64_t>(bits / 8.0));
}

void Link::SetTracer(Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    trace_track_ = tracer_->RegisterTrack("net", "link");
  }
}

double Link::UtilizationOver(Duration window) const {
  if (window.IsZero()) {
    return 0.0;
  }
  double carried_bits = static_cast<double>(bytes_carried_.count()) * 8.0;
  double capacity_bits = static_cast<double>(config_.rate.bps()) * window.ToSecondsF();
  return carried_bits / capacity_bits;
}

}  // namespace tcs
