// Synthetic background load for the latency-vs-load experiments (§6.2).
//
// A Poisson process of fixed-size frames offered to the link at a configured rate. The
// offered rate counts wire bytes, so "9.6 Mbps offered on a 10 Mbps link" means utilization
// 0.96, the regime where Figure 8's RTT curve takes off.

#ifndef TCS_SRC_NET_TRAFFIC_GEN_H_
#define TCS_SRC_NET_TRAFFIC_GEN_H_

#include "src/net/link.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace tcs {

class PoissonTrafficGenerator {
 public:
  PoissonTrafficGenerator(Simulator& sim, Rng rng, Link& link, BitsPerSecond offered_rate,
                          Bytes frame_size);

  PoissonTrafficGenerator(const PoissonTrafficGenerator&) = delete;
  PoissonTrafficGenerator& operator=(const PoissonTrafficGenerator&) = delete;
  ~PoissonTrafficGenerator() { Stop(); }

  void Start();
  void Stop();
  bool IsRunning() const { return running_; }

  int64_t frames_offered() const { return frames_offered_; }

 private:
  void ScheduleNext();

  Simulator& sim_;
  Rng rng_;
  Link& link_;
  Bytes frame_size_;
  double mean_interarrival_us_;
  bool running_ = false;
  EventId pending_;
  int64_t frames_offered_ = 0;
};

}  // namespace tcs

#endif  // TCS_SRC_NET_TRAFFIC_GEN_H_
