// Reliable, in-order frame delivery over a lossy Link.
//
// A minimal TCP-flavoured ARQ model: every frame gets a sequence number and a
// retransmission timer (RTO = clamp(2 x SRTT, [min_rto, max_rto]), doubled per attempt —
// Karn-style: only never-retransmitted frames contribute RTT samples). Lost frames are
// retransmitted until they land; the receiver releases frames strictly in order, so one
// lost frame head-of-line blocks everything behind it — exactly the stall the paper's
// interactive sessions feel on a congested segment.
//
// Modelling simplification (documented, deliberate): ACKs are carried out-of-band — they
// pay serialization + propagation delay but do not occupy the shared link and are never
// themselves lost. This keeps the recovery dynamics (RTO inflation, HOL blocking) while
// avoiding ack-clocking artefacts that the paper's measurements cannot calibrate.
//
// Determinism: the channel consumes no randomness of its own; all nondeterminism comes
// from the Link's fault injector. Identical seeds give identical retransmit schedules.

#ifndef TCS_SRC_NET_RELIABLE_H_
#define TCS_SRC_NET_RELIABLE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/net/link.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/sim/snapshot.h"
#include "src/sim/units.h"

namespace tcs {

struct ReliableChannelConfig {
  // Floor on the retransmission timeout. Era TCP stacks ran 200-500 ms retransmit timer
  // granularity, so a single loss cost an interactive session a humanly visible stall.
  Duration min_rto = Duration::Millis(200);
  Duration max_rto = Duration::Seconds(2);
  Bytes ack_bytes = Bytes::Of(64);  // minimum Ethernet frame for the return ACK
  // Safety valve against pathological plans (e.g. loss_rate=1.0 forever): after this many
  // attempts a frame is abandoned and counted, so bounded-horizon runs always drain.
  int max_attempts = 24;
  // Bound on frames in flight (sent but not yet retired). A Send() arriving with the
  // window full is shed immediately — counted in frames_shed(), never given a sequence
  // number, its callback never fires — so a long outage cannot grow the retransmit queue
  // without limit. 0 disables the bound. The default is far above anything an interactive
  // session queues on a healthy link, so only pathological plans ever shed.
  int64_t window_frames = 4096;
};

// Throws tcs::ConfigError on a non-positive min_rto, max_rto < min_rto, max_attempts < 1,
// non-positive ack_bytes, or negative window_frames. Returns the config.
ReliableChannelConfig Validated(ReliableChannelConfig config);

class ReliableChannel : public FrameTransport {
 public:
  ReliableChannel(Simulator& sim, Link& link, ReliableChannelConfig config = {});

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  // Queues `wire_bytes` for reliable in-order delivery; `delivered` fires once the frame
  // (and every frame sent before it) has arrived at the far end. `delivered_tally` is
  // bumped at that same in-order release (abandoned frames bump nothing).
  // `delivered_key` is the release action's checkpoint identity (see FrameTransport).
  void Send(Bytes wire_bytes, InlineCallback delivered = nullptr,
            int64_t* delivered_tally = nullptr, ResumeKey delivered_key = {}) override;

  const LinkConfig& config() const override { return link_.config(); }

  Link& link() { return link_; }

  // Frames accepted from callers (originals, not attempts).
  int64_t frames_sent() const { return frames_sent_; }
  // Extra transmission attempts beyond the first. Link attempts == originals' first
  // transmissions + retransmissions(), so link frame counters reconcile exactly.
  int64_t retransmissions() const { return retransmissions_; }
  int64_t acks_received() const { return acks_received_; }
  // Frames released to their delivery callbacks, in order.
  int64_t frames_delivered() const { return frames_delivered_; }
  // Frames given up on after max_attempts (only under pathological fault plans).
  int64_t frames_abandoned() const { return frames_abandoned_; }
  // Frames refused at Send() because the in-flight window was full (never sequenced;
  // their callbacks never fire). The degradation controller treats a rising shed count
  // as the strongest backpressure signal.
  int64_t frames_shed() const { return frames_shed_; }
  // Frames currently in flight (sent but not yet fully retired).
  int64_t frames_in_flight() const { return static_cast<int64_t>(records_.size()); }
  // Frames currently in flight (sent but not yet retired) as a fraction of the window;
  // 0 when the bound is disabled. This is the channel's backpressure gauge.
  double WindowFill() const {
    return config_.window_frames > 0
               ? static_cast<double>(records_.size()) /
                     static_cast<double>(config_.window_frames)
               : 0.0;
  }
  // True once the window is at least half full — the channel is visibly struggling to
  // retire frames and senders should start slowing down.
  bool InBackpressure() const { return WindowFill() >= 0.5; }
  // Smoothed RTT estimate (zero until the first sample).
  Duration srtt() const { return srtt_; }

  // Each retransmission becomes an instant on a net-category "reliable" track.
  void SetTracer(Tracer* tracer);

  // Flight recorder: each retransmission becomes a compact net instant (seq + attempt).
  void SetFlightRecorder(FlightRecorder* recorder) { recorder_ = recorder; }

  // Checkpoint/restore: the full retransmit window (per-frame attempt counts, RTOs,
  // sender/receiver flags), SRTT, sequence cursors, counters, and every pending event —
  // RTO timers, in-flight fate reports, and returning ACKs. The channel re-arms its own
  // events on restore (their captured state is all serializable scalars); only the
  // caller-supplied release actions go through the registered-restorer table.
  void SaveTo(SnapshotWriter& w) const;
  void LoadFrom(SnapshotReader& r, EventRearm& plan);

 private:
  struct Record {
    Bytes bytes = Bytes::Zero();
    InlineCallback delivered;
    int64_t* delivered_tally = nullptr;
    ResumeKey delivered_key;
    int attempts = 0;
    Duration rto = Duration::Zero();
    TimePoint sent_at = TimePoint::Zero();  // most recent transmission time
    EventId timer;  // default-constructed = invalid
    bool ever_retransmitted = false;
    bool acked = false;     // sender side: retransmit timer retired
    bool arrived = false;   // receiver side: frame present, may await in-order release
    bool released = false;  // receiver side: delivery callback fired
  };
  // A pending fate report (the would-be-arrival event Link::SendEx scheduled) or a
  // returning ACK. Everything the live event captured is right here, so restore re-arms
  // it without a restorer-table round trip. Stale records (event already fired, or
  // superseded by a retransmission) are pruned lazily against IsPending.
  struct PendingFate {
    EventId ev;
    uint64_t seq = 0;
    TimePoint sent_at = TimePoint::Zero();
    bool flag = false;  // fate events: ok; ACK events: was_clean_sample
  };

  void Transmit(uint64_t seq);
  void OnOutcome(uint64_t seq, TimePoint sent_at, bool ok);
  void OnTimeout(uint64_t seq);
  void OnAck(uint64_t seq, TimePoint sent_at, bool was_clean_sample);
  void ReleaseInOrder();
  void MaybeErase(uint64_t seq);
  Duration CurrentRtoBase() const;
  // Amortized sweep of already-fired records once `list` outgrows `bound`.
  void PruneStale(std::vector<PendingFate>& list, size_t& bound);
  void SavePendingList(SnapshotWriter& w, const std::vector<PendingFate>& list) const;

  Simulator& sim_;
  Link& link_;
  ReliableChannelConfig config_;
  Tracer* tracer_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  TraceTrack trace_track_;
  std::map<uint64_t, Record> records_;
  std::vector<PendingFate> fates_;
  std::vector<PendingFate> acks_;
  size_t prune_fates_at_ = 64;
  size_t prune_acks_at_ = 64;
  uint64_t next_seq_ = 0;
  uint64_t next_release_ = 0;  // lowest seq not yet released to its callback
  Duration srtt_ = Duration::Zero();
  int64_t frames_sent_ = 0;
  int64_t retransmissions_ = 0;
  int64_t acks_received_ = 0;
  int64_t frames_delivered_ = 0;
  int64_t frames_abandoned_ = 0;
  int64_t frames_shed_ = 0;
};

}  // namespace tcs

#endif  // TCS_SRC_NET_RELIABLE_H_
