// Per-session flow accounting over a shared FrameTransport.
//
// The paper's network axis is *sessions sharing one Ethernet*: every logged-in user's
// protocol streams contend for the same 10 Mbps segment. A SessionFlow is the per-session
// tap on that shared medium — a FrameTransport decorator that forwards frames unchanged
// to the underlying transport (the raw Link, or the ReliableChannel recovering its
// losses) while accounting how much of the shared wire this one session consumed.
//
// The accounting is passive: a SessionFlow adds no delay, no queue, and consumes no
// random stream, so a single session over a SessionFlow is byte-identical to the same
// session talking to the shared transport directly. That property is what lets the
// multi-user consolidation engine be a strict generalization of the single-session
// experiments (the N=1 differential test).
//
// Counters live out-of-line in a FlowLedger — one cache line of plain integers — rather
// than in the SessionFlow object. The send path bumps sends/wire_bytes directly and
// hands the transport a pointer to the delivered slot (the FrameTransport tally
// contract), so a send allocates nothing and captures nothing. A consolidation run packs
// its sessions' ledgers contiguously in a FlowLedgerTable, one line per session, so the
// end-of-run accounting sweep over 512 sessions reads a flat array instead of chasing
// 512 heap objects.

#ifndef TCS_SRC_NET_FLOW_H_
#define TCS_SRC_NET_FLOW_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/net/link.h"

namespace tcs {

// One session's share of the wire, as plain integers on a single cache line. `delivered`
// is bumped by the transport at delivery time via the tally pointer, so its address must
// stay stable while sends are in flight — which is why FlowLedgerTable never relocates a
// ledger once handed out.
struct alignas(64) FlowLedger {
  int64_t sends = 0;
  int64_t delivered = 0;
  int64_t wire_bytes = 0;
};

// A stable-address, cache-contiguous pool of FlowLedgers indexed by acquisition order
// (the consolidation engine acquires one per session id, in login order). Storage grows
// in chunks; existing ledgers never move.
class FlowLedgerTable {
 public:
  FlowLedgerTable() = default;
  FlowLedgerTable(const FlowLedgerTable&) = delete;
  FlowLedgerTable& operator=(const FlowLedgerTable&) = delete;

  // Returns a zeroed ledger with a stable address; index = acquisition count so far.
  FlowLedger& Acquire() {
    size_t chunk = size_ / kChunkSize;
    if (chunk == chunks_.size()) {
      chunks_.push_back(std::make_unique<FlowLedger[]>(kChunkSize));
    }
    return chunks_[chunk][size_++ % kChunkSize];
  }

  FlowLedger& operator[](size_t i) { return chunks_[i / kChunkSize][i % kChunkSize]; }
  const FlowLedger& operator[](size_t i) const {
    return chunks_[i / kChunkSize][i % kChunkSize];
  }
  size_t size() const { return size_; }

 private:
  static constexpr size_t kChunkSize = 64;  // 4 KiB of ledgers per chunk
  std::vector<std::unique_ptr<FlowLedger[]>> chunks_;
  size_t size_ = 0;
};

class SessionFlow : public FrameTransport {
 public:
  // Standalone flow owning a private ledger (single-session experiments, tests).
  explicit SessionFlow(FrameTransport& shared) : shared_(shared), ledger_(&owned_) {}

  // Flow accounting into an externally pooled ledger (the consolidation engine's
  // FlowLedgerTable). `ledger` must outlive the flow and any in-flight sends.
  SessionFlow(FrameTransport& shared, FlowLedger& ledger)
      : shared_(shared), ledger_(&ledger) {}

  SessionFlow(const SessionFlow&) = delete;
  SessionFlow& operator=(const SessionFlow&) = delete;

  // Checkpoint identity stamped on sends whose caller provided no key of their own —
  // which is every ordinary protocol message (their only delivery action is this flow's
  // ledger bump). The owner keys it so the registered restorer knows which ledger to
  // bump; the Server uses the session id. Unset, tally-only sends are unsnapshotable
  // while in flight (the transport fails SaveTo loudly).
  void set_delivered_key(ResumeKey key) { default_key_ = key; }

  // `delivered_key`'s restorer must reproduce the full delivery action as seen at the
  // transport the event lives in — including this flow's ledger bump (the session layer
  // keys sends with the session id, so its restorer knows which ledger to bump).
  void Send(Bytes wire_bytes, InlineCallback delivered = nullptr,
            int64_t* delivered_tally = nullptr, ResumeKey delivered_key = {}) override {
    if (delivered_key.empty()) {
      delivered_key = default_key_;
    }
    ++ledger_->sends;
    ledger_->wire_bytes += wire_bytes.count();
    if (delivered_tally == nullptr) {
      // The hot path: no caller tally, so the session's delivered slot rides the
      // transport's tally contract directly — no closure, no allocation.
      shared_.Send(wire_bytes, std::move(delivered), &ledger_->delivered, delivered_key);
    } else {
      // A caller-supplied tally stacks on top of ours (rare; keeps the decorator a
      // faithful FrameTransport).
      shared_.Send(wire_bytes,
                   [outer = delivered_tally, cb = std::move(delivered)]() mutable {
                     ++*outer;
                     if (cb) {
                       cb();
                     }
                   },
                   &ledger_->delivered, delivered_key);
    }
  }

  const LinkConfig& config() const override { return shared_.config(); }

  // Sends this session pushed onto the shared medium (a send may fragment into several
  // wire frames; fragmentation happens below, in the Link).
  int64_t sends() const { return ledger_->sends; }
  // Sends whose last bit reached the far end.
  int64_t delivered() const { return ledger_->delivered; }
  // Wire bytes this session offered (payload + headers + any retransmissions the
  // reliable layer adds are accounted where they are generated, not here).
  Bytes wire_bytes() const { return Bytes::Of(ledger_->wire_bytes); }

  // This session's share of `total`: its offered wire bytes over the total carried.
  double ShareOf(Bytes total) const {
    return total.count() > 0 ? static_cast<double>(ledger_->wire_bytes) /
                                   static_cast<double>(total.count())
                             : 0.0;
  }

 private:
  FrameTransport& shared_;
  FlowLedger* ledger_;
  FlowLedger owned_;
  ResumeKey default_key_;
};

}  // namespace tcs

#endif  // TCS_SRC_NET_FLOW_H_
