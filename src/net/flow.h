// Per-session flow accounting over a shared FrameTransport.
//
// The paper's network axis is *sessions sharing one Ethernet*: every logged-in user's
// protocol streams contend for the same 10 Mbps segment. A SessionFlow is the per-session
// tap on that shared medium — a FrameTransport decorator that forwards frames unchanged
// to the underlying transport (the raw Link, or the ReliableChannel recovering its
// losses) while accounting how much of the shared wire this one session consumed.
//
// The accounting is passive: a SessionFlow adds no delay, no queue, and consumes no
// random stream, so a single session over a SessionFlow is byte-identical to the same
// session talking to the shared transport directly. That property is what lets the
// multi-user consolidation engine be a strict generalization of the single-session
// experiments (the N=1 differential test).

#ifndef TCS_SRC_NET_FLOW_H_
#define TCS_SRC_NET_FLOW_H_

#include <cstdint>

#include "src/net/link.h"

namespace tcs {

class SessionFlow : public FrameTransport {
 public:
  explicit SessionFlow(FrameTransport& shared) : shared_(shared) {}

  SessionFlow(const SessionFlow&) = delete;
  SessionFlow& operator=(const SessionFlow&) = delete;

  void Send(Bytes wire_bytes, std::function<void()> delivered = nullptr) override {
    ++sends_;
    wire_bytes_ += wire_bytes;
    if (delivered) {
      shared_.Send(wire_bytes, [this, delivered = std::move(delivered)] {
        ++delivered_;
        delivered();
      });
    } else {
      shared_.Send(wire_bytes, [this] { ++delivered_; });
    }
  }

  const LinkConfig& config() const override { return shared_.config(); }

  // Sends this session pushed onto the shared medium (a send may fragment into several
  // wire frames; fragmentation happens below, in the Link).
  int64_t sends() const { return sends_; }
  // Sends whose last bit reached the far end.
  int64_t delivered() const { return delivered_; }
  // Wire bytes this session offered (payload + headers + any retransmissions the
  // reliable layer adds are accounted where they are generated, not here).
  Bytes wire_bytes() const { return wire_bytes_; }

  // This session's share of `total`: its offered wire bytes over the total carried.
  double ShareOf(Bytes total) const {
    return total.count() > 0
               ? static_cast<double>(wire_bytes_.count()) /
                     static_cast<double>(total.count())
               : 0.0;
  }

 private:
  FrameTransport& shared_;
  int64_t sends_ = 0;
  int64_t delivered_ = 0;
  Bytes wire_bytes_ = Bytes::Zero();
};

}  // namespace tcs

#endif  // TCS_SRC_NET_FLOW_H_
