// Message-to-packet framing.
//
// Protocol messages are carried over a byte-stream transport; on the wire they are split
// into MTU-bounded frames, each paying the configured header overhead. MessageSender does
// the segmentation arithmetic the paper's VIP table depends on (packet counts x header
// bytes) and drives the Link for timing.

#ifndef TCS_SRC_NET_ENDPOINT_H_
#define TCS_SRC_NET_ENDPOINT_H_

#include <cstdint>

#include "src/net/headers.h"
#include "src/net/link.h"

namespace tcs {

class MessageSender {
 public:
  // `transport` may be a raw Link or a ReliableChannel layered on one. Throws
  // tcs::ConfigError when the transport's MTU cannot fit the counted per-packet headers.
  MessageSender(FrameTransport& transport, HeaderModel headers);

  // Sends a protocol message of `payload` bytes. It is segmented into as many frames as
  // the MTU requires; `delivered` (optional) fires when the last frame arrives.
  // `delivered_key` rides on the last frame — it is that delivery's checkpoint identity
  // (see FrameTransport::Send).
  void SendMessage(Bytes payload, InlineCallback delivered = nullptr,
                   ResumeKey delivered_key = {});

  // Checkpoint/restore: the segmentation counters (the transport underneath serializes
  // its own state).
  void SaveTo(SnapshotWriter& w) const {
    w.I64(messages_sent_);
    w.I64(packets_sent_);
    w.I64(payload_bytes_.count());
    w.I64(counted_bytes_.count());
  }
  void LoadFrom(SnapshotReader& r) {
    messages_sent_ = r.I64();
    packets_sent_ = r.I64();
    payload_bytes_ = Bytes::Of(r.I64());
    counted_bytes_ = Bytes::Of(r.I64());
  }

  int64_t messages_sent() const { return messages_sent_; }
  int64_t packets_sent() const { return packets_sent_; }
  Bytes payload_bytes() const { return payload_bytes_; }
  // Payload plus counted (tcpdump-visible: TCP+IP) header bytes.
  Bytes counted_bytes() const { return counted_bytes_; }
  const HeaderModel& headers() const { return headers_; }

  // Number of MTU-bounded packets a payload of this size occupies.
  int64_t PacketsFor(Bytes payload) const;

 private:
  FrameTransport& link_;
  HeaderModel headers_;
  int64_t messages_sent_ = 0;
  int64_t packets_sent_ = 0;
  Bytes payload_bytes_ = Bytes::Zero();
  Bytes counted_bytes_ = Bytes::Zero();
};

}  // namespace tcs

#endif  // TCS_SRC_NET_ENDPOINT_H_
