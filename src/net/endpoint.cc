#include "src/net/endpoint.h"

#include <algorithm>
#include <utility>

#include "src/util/config_error.h"

namespace tcs {

MessageSender::MessageSender(FrameTransport& transport, HeaderModel headers)
    : link_(transport), headers_(headers) {
  if ((transport.config().mtu - headers_.CountedPerPacket()).count() <= 0) {
    throw ConfigError("LinkConfig.mtu", "MTU must exceed per-packet header overhead");
  }
}

int64_t MessageSender::PacketsFor(Bytes payload) const {
  Bytes max_payload = link_.config().mtu - headers_.CountedPerPacket();
  if (payload.count() <= 0) {
    return 1;  // a bare ACK/empty message still occupies a frame
  }
  return (payload.count() + max_payload.count() - 1) / max_payload.count();
}

void MessageSender::SendMessage(Bytes payload, InlineCallback delivered,
                                ResumeKey delivered_key) {
  int64_t packets = PacketsFor(payload);
  ++messages_sent_;
  packets_sent_ += packets;
  payload_bytes_ += payload;
  counted_bytes_ += payload + headers_.CountedPerPacket() * packets;

  Bytes max_payload = link_.config().mtu - headers_.CountedPerPacket();
  Bytes remaining = payload;
  for (int64_t i = 0; i < packets; ++i) {
    Bytes chunk = std::min(remaining, max_payload);
    if (chunk.count() <= 0) {
      chunk = Bytes::Zero();
    }
    Bytes wire = chunk + headers_.WirePerPacket();
    remaining -= chunk;
    bool last = i + 1 == packets;
    link_.Send(wire, last ? std::move(delivered) : nullptr, nullptr,
               last ? delivered_key : ResumeKey{});
  }
}

}  // namespace tcs
