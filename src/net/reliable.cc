#include "src/net/reliable.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/util/config_error.h"

namespace tcs {

ReliableChannelConfig Validated(ReliableChannelConfig config) {
  if (!(config.min_rto > Duration::Zero())) {
    throw ConfigError("ReliableChannelConfig.min_rto", "min RTO must be positive");
  }
  if (config.max_rto < config.min_rto) {
    throw ConfigError("ReliableChannelConfig.max_rto", "max RTO must be >= min RTO");
  }
  if (config.max_attempts < 1) {
    throw ConfigError("ReliableChannelConfig.max_attempts", "need at least one attempt");
  }
  if (config.ack_bytes.count() <= 0) {
    throw ConfigError("ReliableChannelConfig.ack_bytes", "ACK bytes must be positive");
  }
  if (config.window_frames < 0) {
    throw ConfigError("ReliableChannelConfig.window_frames",
                      "window bound cannot be negative (0 disables it)");
  }
  return config;
}

ReliableChannel::ReliableChannel(Simulator& sim, Link& link, ReliableChannelConfig config)
    : sim_(sim), link_(link), config_(Validated(config)) {}

void ReliableChannel::SetTracer(Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    trace_track_ = tracer_->RegisterTrack("net", "reliable");
  }
}

Duration ReliableChannel::CurrentRtoBase() const {
  if (srtt_.IsZero()) {
    return config_.min_rto;
  }
  return std::clamp(srtt_ * 2, config_.min_rto, config_.max_rto);
}

void ReliableChannel::Send(Bytes wire_bytes, InlineCallback delivered,
                           int64_t* delivered_tally, ResumeKey delivered_key) {
  if (config_.window_frames > 0 &&
      static_cast<int64_t>(records_.size()) >= config_.window_frames) {
    // Window full: shed at the door. The frame gets no sequence number and its callback
    // never fires — exactly like an abandoned frame, but without ever burdening the wire.
    ++frames_shed_;
    if (tracer_ != nullptr) {
      tracer_->Instant(TraceCategory::kNet, "frame-shed", trace_track_, sim_.Now(),
                       "in_flight", static_cast<int64_t>(records_.size()));
    }
    if (recorder_ != nullptr) {
      recorder_->Instant(FlightComponent::kNet, "frame-shed", sim_.Now(), 0,
                         static_cast<int64_t>(records_.size()), wire_bytes.count());
    }
    return;
  }
  uint64_t seq = next_seq_++;
  Record& rec = records_[seq];
  rec.bytes = wire_bytes;
  rec.delivered = std::move(delivered);
  rec.delivered_tally = delivered_tally;
  rec.delivered_key = delivered_key;
  rec.rto = CurrentRtoBase();
  ++frames_sent_;
  Transmit(seq);
}

void ReliableChannel::PruneStale(std::vector<PendingFate>& list, size_t& bound) {
  if (list.size() < bound) {
    return;
  }
  list.erase(std::remove_if(list.begin(), list.end(),
                            [this](const PendingFate& p) {
                              return !sim_.IsPending(p.ev);
                            }),
             list.end());
  bound = std::max<size_t>(64, list.size() * 2);
}

void ReliableChannel::Transmit(uint64_t seq) {
  Record& rec = records_[seq];
  ++rec.attempts;
  if (rec.attempts > 1) {
    ++retransmissions_;
    rec.ever_retransmitted = true;
    if (tracer_ != nullptr) {
      tracer_->Instant(TraceCategory::kNet, "retransmit", trace_track_, sim_.Now(), "seq",
                       static_cast<int64_t>(seq), "attempt", rec.attempts);
    }
    if (recorder_ != nullptr) {
      recorder_->Instant(FlightComponent::kNet, "retransmit", sim_.Now(), 0,
                         static_cast<int64_t>(seq), rec.attempts);
    }
  }
  TimePoint sent_at = sim_.Now();
  rec.sent_at = sent_at;
  // Arm the retransmission timer before the frame leaves: the timeout covers queueing,
  // serialization, propagation, and the (out-of-band) ACK's return.
  rec.timer = sim_.Schedule(rec.rto, [this, seq] { OnTimeout(seq); });
  Link::FateHandle fate = link_.SendEx(
      rec.bytes, [this, seq, sent_at](bool ok) { OnOutcome(seq, sent_at, ok); },
      /*retransmit=*/rec.attempts > 1);
  // Track the pending fate report for checkpointing; a retransmission's stale
  // predecessor stays tracked too (its event is still in the queue and must restore).
  PruneStale(fates_, prune_fates_at_);
  fates_.push_back(PendingFate{fate.ev, seq, sent_at, fate.ok});
}

void ReliableChannel::OnOutcome(uint64_t seq, TimePoint sent_at, bool ok) {
  // Fires at the frame's (would-be) arrival time at the receiver.
  auto it = records_.find(seq);
  if (it == records_.end() || it->second.sent_at != sent_at) {
    return;  // a stale attempt's outcome (the frame was already retransmitted or retired)
  }
  Record& rec = it->second;
  if (!ok) {
    return;  // the sender learns of the loss only when the RTO fires
  }
  bool clean_sample = !rec.ever_retransmitted;  // Karn: retransmitted frames don't sample
  if (!rec.arrived) {
    rec.arrived = true;
    ReleaseInOrder();
  }
  // The ACK rides back out-of-band: serialization at the return-direction (up) link rate
  // plus propagation, but no queueing on the shared medium (see header comment). On an
  // asymmetric WAN profile the narrow uplink stretches the ACK's return leg.
  Duration ack_delay =
      TransmissionDelay(config_.ack_bytes, link_.UpRate()) + link_.config().propagation;
  EventId ack_ev = sim_.Schedule(ack_delay, [this, seq, sent_at, clean_sample] {
    OnAck(seq, sent_at, clean_sample);
  });
  PruneStale(acks_, prune_acks_at_);
  acks_.push_back(PendingFate{ack_ev, seq, sent_at, clean_sample});
}

void ReliableChannel::OnAck(uint64_t seq, TimePoint sent_at, bool was_clean_sample) {
  auto it = records_.find(seq);
  if (it == records_.end()) {
    return;
  }
  Record& rec = it->second;
  if (rec.acked) {
    return;  // duplicate ACK from an earlier attempt that also got through
  }
  rec.acked = true;
  ++acks_received_;
  if (rec.timer.IsValid()) {
    sim_.Cancel(rec.timer);
    rec.timer = EventId();
  }
  if (was_clean_sample) {
    Duration rtt = sim_.Now() - sent_at;
    srtt_ = srtt_.IsZero() ? rtt : srtt_ * 0.875 + rtt * 0.125;
  }
  MaybeErase(seq);
}

void ReliableChannel::OnTimeout(uint64_t seq) {
  auto it = records_.find(seq);
  if (it == records_.end() || it->second.acked) {
    return;
  }
  Record& rec = it->second;
  rec.timer = EventId();
  if (rec.attempts >= config_.max_attempts) {
    // Pathological plan escape hatch: stop retrying so bounded runs always drain.
    ++frames_abandoned_;
    rec.acked = true;
    if (!rec.arrived) {
      // Release the in-order stream past the hole; the frame is simply gone.
      rec.arrived = true;
      rec.released = true;  // but never invoke its delivery callback
      ReleaseInOrder();
    }
    MaybeErase(seq);
    return;
  }
  rec.rto = std::min(rec.rto * 2, config_.max_rto);  // exponential backoff, capped
  Transmit(seq);
}

void ReliableChannel::ReleaseInOrder() {
  while (true) {
    auto it = records_.find(next_release_);
    if (it == records_.end()) {
      // next_release_ either hasn't been sent yet or was fully retired already.
      if (next_release_ >= next_seq_) {
        return;
      }
      ++next_release_;
      continue;
    }
    Record& rec = it->second;
    if (!rec.arrived) {
      return;  // head-of-line: everything behind this hole waits
    }
    if (!rec.released) {
      rec.released = true;
      ++frames_delivered_;
      if (rec.delivered_tally != nullptr) {
        ++*rec.delivered_tally;
      }
      if (rec.delivered) {
        auto cb = std::move(rec.delivered);
        cb();
        // The callback may have sent more frames; re-find to keep the iterator honest.
        it = records_.find(next_release_);
      }
    }
    ++next_release_;
    if (it != records_.end()) {
      MaybeErase(it->first);
    }
  }
}

void ReliableChannel::MaybeErase(uint64_t seq) {
  auto it = records_.find(seq);
  if (it == records_.end()) {
    return;
  }
  const Record& rec = it->second;
  if (rec.acked && rec.released && seq < next_release_) {
    records_.erase(it);
  }
}

void ReliableChannel::SavePendingList(SnapshotWriter& w,
                                      const std::vector<PendingFate>& list) const {
  uint64_t live = 0;
  for (const PendingFate& p : list) {
    if (sim_.IsPending(p.ev)) {
      ++live;
    }
  }
  w.U64(live);
  for (const PendingFate& p : list) {
    uint64_t ev_seq = 0;
    TimePoint when;
    if (!sim_.PendingInfo(p.ev, &ev_seq, &when)) {
      continue;
    }
    w.U64(ev_seq);
    w.Time(when);
    w.U64(p.seq);
    w.Time(p.sent_at);
    w.Bool(p.flag);
  }
}

void ReliableChannel::SaveTo(SnapshotWriter& w) const {
  w.U64(next_seq_);
  w.U64(next_release_);
  w.Dur(srtt_);
  w.I64(frames_sent_);
  w.I64(retransmissions_);
  w.I64(acks_received_);
  w.I64(frames_delivered_);
  w.I64(frames_abandoned_);
  w.I64(frames_shed_);
  w.U64(records_.size());
  for (const auto& [seq, rec] : records_) {
    w.U64(seq);
    w.I64(rec.bytes.count());
    bool wants_release = !rec.released &&
                         (static_cast<bool>(rec.delivered) || rec.delivered_tally != nullptr);
    if (wants_release && rec.delivered_key.empty()) {
      throw SnapshotError("reliable.record",
                          "in-flight frame wants a delivery notification but carries no "
                          "ResumeKey; attach one at the Send site to make this workload "
                          "checkpointable");
    }
    w.Bool(wants_release);
    rec.delivered_key.SaveTo(w);
    w.I64(rec.attempts);
    w.Dur(rec.rto);
    w.Time(rec.sent_at);
    w.Bool(rec.ever_retransmitted);
    w.Bool(rec.acked);
    w.Bool(rec.arrived);
    w.Bool(rec.released);
    bool has_timer = rec.timer.IsValid();
    w.Bool(has_timer);
    if (has_timer) {
      uint64_t ev_seq = 0;
      TimePoint when;
      if (!sim_.PendingInfo(rec.timer, &ev_seq, &when)) {
        throw SnapshotError("reliable.record", "retransmit timer record is stale");
      }
      w.U64(ev_seq);
      w.Time(when);
    }
  }
  SavePendingList(w, fates_);
  SavePendingList(w, acks_);
}

void ReliableChannel::LoadFrom(SnapshotReader& r, EventRearm& plan) {
  next_seq_ = r.U64();
  next_release_ = r.U64();
  srtt_ = r.Dur();
  frames_sent_ = r.I64();
  retransmissions_ = r.I64();
  acks_received_ = r.I64();
  frames_delivered_ = r.I64();
  frames_abandoned_ = r.I64();
  frames_shed_ = r.I64();
  records_.clear();
  uint64_t n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t seq = r.U64();
    Record& rec = records_[seq];
    rec.bytes = Bytes::Of(r.I64());
    bool wants_release = r.Bool();
    rec.delivered_key = ResumeKey::LoadFrom(r);
    rec.attempts = static_cast<int>(r.I64());
    rec.rto = r.Dur();
    rec.sent_at = r.Time();
    rec.ever_retransmitted = r.Bool();
    rec.acked = r.Bool();
    rec.arrived = r.Bool();
    rec.released = r.Bool();
    if (wants_release) {
      // The live run split the release action into a tally bump and a callback; the
      // rebuilt action is one thunk doing both (the restorer contract), invoked at the
      // same in-order release point, so external effects are identical.
      rec.delivered = [thunk = plan.Build(rec.delivered_key)] { thunk(); };
      rec.delivered_tally = nullptr;
    }
    if (r.Bool()) {
      uint64_t ev_seq = r.U64();
      TimePoint when = r.Time();
      plan.Schedule("reliable.rto", ev_seq, when, [this, seq] { OnTimeout(seq); },
                    &rec.timer);
    }
  }
  fates_.clear();
  uint64_t fates = r.U64();
  fates_.reserve(fates);  // EventId out-pointers below must stay stable
  for (uint64_t i = 0; i < fates; ++i) {
    uint64_t ev_seq = r.U64();
    TimePoint when = r.Time();
    uint64_t seq = r.U64();
    TimePoint sent_at = r.Time();
    bool ok = r.Bool();
    fates_.push_back(PendingFate{EventId(), seq, sent_at, ok});
    plan.Schedule("reliable.fate", ev_seq, when,
                  [this, seq, sent_at, ok] { OnOutcome(seq, sent_at, ok); },
                  &fates_.back().ev);
  }
  prune_fates_at_ = std::max<size_t>(64, fates_.size() * 2);
  acks_.clear();
  uint64_t acks = r.U64();
  acks_.reserve(acks);
  for (uint64_t i = 0; i < acks; ++i) {
    uint64_t ev_seq = r.U64();
    TimePoint when = r.Time();
    uint64_t seq = r.U64();
    TimePoint sent_at = r.Time();
    bool clean = r.Bool();
    acks_.push_back(PendingFate{EventId(), seq, sent_at, clean});
    plan.Schedule("reliable.ack", ev_seq, when,
                  [this, seq, sent_at, clean] { OnAck(seq, sent_at, clean); },
                  &acks_.back().ev);
  }
  prune_acks_at_ = std::max<size_t>(64, acks_.size() * 2);
}

}  // namespace tcs
