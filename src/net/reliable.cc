#include "src/net/reliable.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/util/config_error.h"

namespace tcs {

ReliableChannelConfig Validated(ReliableChannelConfig config) {
  if (!(config.min_rto > Duration::Zero())) {
    throw ConfigError("ReliableChannelConfig.min_rto", "min RTO must be positive");
  }
  if (config.max_rto < config.min_rto) {
    throw ConfigError("ReliableChannelConfig.max_rto", "max RTO must be >= min RTO");
  }
  if (config.max_attempts < 1) {
    throw ConfigError("ReliableChannelConfig.max_attempts", "need at least one attempt");
  }
  if (config.ack_bytes.count() <= 0) {
    throw ConfigError("ReliableChannelConfig.ack_bytes", "ACK bytes must be positive");
  }
  if (config.window_frames < 0) {
    throw ConfigError("ReliableChannelConfig.window_frames",
                      "window bound cannot be negative (0 disables it)");
  }
  return config;
}

ReliableChannel::ReliableChannel(Simulator& sim, Link& link, ReliableChannelConfig config)
    : sim_(sim), link_(link), config_(Validated(config)) {}

void ReliableChannel::SetTracer(Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    trace_track_ = tracer_->RegisterTrack("net", "reliable");
  }
}

Duration ReliableChannel::CurrentRtoBase() const {
  if (srtt_.IsZero()) {
    return config_.min_rto;
  }
  return std::clamp(srtt_ * 2, config_.min_rto, config_.max_rto);
}

void ReliableChannel::Send(Bytes wire_bytes, InlineCallback delivered,
                           int64_t* delivered_tally) {
  if (config_.window_frames > 0 &&
      static_cast<int64_t>(records_.size()) >= config_.window_frames) {
    // Window full: shed at the door. The frame gets no sequence number and its callback
    // never fires — exactly like an abandoned frame, but without ever burdening the wire.
    ++frames_shed_;
    if (tracer_ != nullptr) {
      tracer_->Instant(TraceCategory::kNet, "frame-shed", trace_track_, sim_.Now(),
                       "in_flight", static_cast<int64_t>(records_.size()));
    }
    if (recorder_ != nullptr) {
      recorder_->Instant(FlightComponent::kNet, "frame-shed", sim_.Now(), 0,
                         static_cast<int64_t>(records_.size()), wire_bytes.count());
    }
    return;
  }
  uint64_t seq = next_seq_++;
  Record& rec = records_[seq];
  rec.bytes = wire_bytes;
  rec.delivered = std::move(delivered);
  rec.delivered_tally = delivered_tally;
  rec.rto = CurrentRtoBase();
  ++frames_sent_;
  Transmit(seq);
}

void ReliableChannel::Transmit(uint64_t seq) {
  Record& rec = records_[seq];
  ++rec.attempts;
  if (rec.attempts > 1) {
    ++retransmissions_;
    rec.ever_retransmitted = true;
    if (tracer_ != nullptr) {
      tracer_->Instant(TraceCategory::kNet, "retransmit", trace_track_, sim_.Now(), "seq",
                       static_cast<int64_t>(seq), "attempt", rec.attempts);
    }
    if (recorder_ != nullptr) {
      recorder_->Instant(FlightComponent::kNet, "retransmit", sim_.Now(), 0,
                         static_cast<int64_t>(seq), rec.attempts);
    }
  }
  TimePoint sent_at = sim_.Now();
  rec.sent_at = sent_at;
  // Arm the retransmission timer before the frame leaves: the timeout covers queueing,
  // serialization, propagation, and the (out-of-band) ACK's return.
  rec.timer = sim_.Schedule(rec.rto, [this, seq] { OnTimeout(seq); });
  link_.SendEx(
      rec.bytes, [this, seq, sent_at](bool ok) { OnOutcome(seq, sent_at, ok); },
      /*retransmit=*/rec.attempts > 1);
}

void ReliableChannel::OnOutcome(uint64_t seq, TimePoint sent_at, bool ok) {
  // Fires at the frame's (would-be) arrival time at the receiver.
  auto it = records_.find(seq);
  if (it == records_.end() || it->second.sent_at != sent_at) {
    return;  // a stale attempt's outcome (the frame was already retransmitted or retired)
  }
  Record& rec = it->second;
  if (!ok) {
    return;  // the sender learns of the loss only when the RTO fires
  }
  bool clean_sample = !rec.ever_retransmitted;  // Karn: retransmitted frames don't sample
  if (!rec.arrived) {
    rec.arrived = true;
    ReleaseInOrder();
  }
  // The ACK rides back out-of-band: serialization at the return-direction (up) link rate
  // plus propagation, but no queueing on the shared medium (see header comment). On an
  // asymmetric WAN profile the narrow uplink stretches the ACK's return leg.
  Duration ack_delay =
      TransmissionDelay(config_.ack_bytes, link_.UpRate()) + link_.config().propagation;
  sim_.Schedule(ack_delay, [this, seq, sent_at, clean_sample] {
    OnAck(seq, sent_at, clean_sample);
  });
}

void ReliableChannel::OnAck(uint64_t seq, TimePoint sent_at, bool was_clean_sample) {
  auto it = records_.find(seq);
  if (it == records_.end()) {
    return;
  }
  Record& rec = it->second;
  if (rec.acked) {
    return;  // duplicate ACK from an earlier attempt that also got through
  }
  rec.acked = true;
  ++acks_received_;
  if (rec.timer.IsValid()) {
    sim_.Cancel(rec.timer);
    rec.timer = EventId();
  }
  if (was_clean_sample) {
    Duration rtt = sim_.Now() - sent_at;
    srtt_ = srtt_.IsZero() ? rtt : srtt_ * 0.875 + rtt * 0.125;
  }
  MaybeErase(seq);
}

void ReliableChannel::OnTimeout(uint64_t seq) {
  auto it = records_.find(seq);
  if (it == records_.end() || it->second.acked) {
    return;
  }
  Record& rec = it->second;
  rec.timer = EventId();
  if (rec.attempts >= config_.max_attempts) {
    // Pathological plan escape hatch: stop retrying so bounded runs always drain.
    ++frames_abandoned_;
    rec.acked = true;
    if (!rec.arrived) {
      // Release the in-order stream past the hole; the frame is simply gone.
      rec.arrived = true;
      rec.released = true;  // but never invoke its delivery callback
      ReleaseInOrder();
    }
    MaybeErase(seq);
    return;
  }
  rec.rto = std::min(rec.rto * 2, config_.max_rto);  // exponential backoff, capped
  Transmit(seq);
}

void ReliableChannel::ReleaseInOrder() {
  while (true) {
    auto it = records_.find(next_release_);
    if (it == records_.end()) {
      // next_release_ either hasn't been sent yet or was fully retired already.
      if (next_release_ >= next_seq_) {
        return;
      }
      ++next_release_;
      continue;
    }
    Record& rec = it->second;
    if (!rec.arrived) {
      return;  // head-of-line: everything behind this hole waits
    }
    if (!rec.released) {
      rec.released = true;
      ++frames_delivered_;
      if (rec.delivered_tally != nullptr) {
        ++*rec.delivered_tally;
      }
      if (rec.delivered) {
        auto cb = std::move(rec.delivered);
        cb();
        // The callback may have sent more frames; re-find to keep the iterator honest.
        it = records_.find(next_release_);
      }
    }
    ++next_release_;
    if (it != records_.end()) {
      MaybeErase(it->first);
    }
  }
}

void ReliableChannel::MaybeErase(uint64_t seq) {
  auto it = records_.find(seq);
  if (it == records_.end()) {
    return;
  }
  const Record& rec = it->second;
  if (rec.acked && rec.released && seq < next_release_) {
    records_.erase(it);
  }
}

}  // namespace tcs
