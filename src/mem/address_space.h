// Per-process virtual address space: residency and dirty state per virtual page.
//
// AddressSpaces are created and owned by the Pager, which also maintains the global
// recency ordering used for eviction. The `interactive` flag marks spaces belonging to
// user-facing processes; the kInteractiveProtect eviction policy (Evans et al.'s fix,
// §5.2) refuses to steal their pages on behalf of non-interactive faults.
//
// Page state is a flat array indexed by vpn — every workload in the model numbers its
// pages densely from zero (segments are sized in pages, hogs walk a bounded region), so
// a vector beats a hash table by an order of magnitude on the fault/touch path. Each
// entry packs the page's lifecycle state, its physical frame slot while resident, and
// the dirty bit; the Pager interprets the frame slot against its frame slab.

#ifndef TCS_SRC_MEM_ADDRESS_SPACE_H_
#define TCS_SRC_MEM_ADDRESS_SPACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/snapshot.h"

namespace tcs {

class AddressSpace {
 public:
  AddressSpace(uint64_t id, std::string name, bool interactive)
      : id_(id), name_(std::move(name)), interactive_(interactive) {}

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  bool interactive() const { return interactive_; }

  bool IsResident(uint64_t vpn) const {
    return vpn < pages_.size() && pages_[vpn] >= kFrameBase;
  }
  // True if the page was resident once and has been paged out: re-touching it costs a
  // disk read. A never-touched page zero-fills for free.
  bool WasEvicted(uint64_t vpn) const {
    return vpn < pages_.size() && pages_[vpn] == kEvicted;
  }
  bool IsDirty(uint64_t vpn) const {
    return vpn < pages_.size() && pages_[vpn] >= kFrameBase &&
           ((pages_[vpn] - kFrameBase) & 1u) != 0;
  }
  size_t resident_pages() const { return resident_count_; }

  // Number of pages in [first, first+count) that are NOT resident — the fault bill an
  // access to that range will pay.
  size_t MissingIn(uint64_t first, size_t count) const;

  // Checkpoint/restore: the packed page array and resident count. Identity (id, name,
  // interactive) is written by SaveTo and verified by the Pager before LoadFrom, which
  // only overwrites dynamic state.
  void SaveTo(SnapshotWriter& w) const {
    w.U64(id_);
    w.Str(name_);
    w.Bool(interactive_);
    w.U64(resident_count_);
    w.U64(pages_.size());
    for (uint32_t e : pages_) {
      w.U32(e);
    }
  }
  void LoadFrom(SnapshotReader& r) {
    resident_count_ = r.U64();
    pages_.assign(r.U64(), kNever);
    for (uint32_t& e : pages_) {
      e = r.U32();
    }
  }

 private:
  friend class Pager;

  // Packed page entry: kNever (untouched), kEvicted (on disk), or
  // kFrameBase + 2*frame + dirty for a resident page in the Pager's frame slab.
  static constexpr uint32_t kNever = 0;
  static constexpr uint32_t kEvicted = 1;
  static constexpr uint32_t kFrameBase = 2;

  void EnsurePage(uint64_t vpn) {
    if (vpn >= pages_.size()) {
      pages_.resize(vpn + 1, kNever);
    }
  }
  // Frame slot of a resident page (caller guarantees residency).
  uint32_t FrameOf(uint64_t vpn) const { return (pages_[vpn] - kFrameBase) >> 1; }
  void SetResidentInFrame(uint64_t vpn, uint32_t frame, bool dirty) {
    EnsurePage(vpn);
    uint32_t& e = pages_[vpn];
    if (e < kFrameBase) {
      ++resident_count_;
    }
    e = kFrameBase + (frame << 1) + (dirty ? 1u : 0u);
  }
  void MarkDirty(uint64_t vpn) { pages_[vpn] |= 1u; }
  void SetEvicted(uint64_t vpn);
  // MarkSwappedOut setup path: create a never-touched page directly in the evicted state.
  void MarkEvictedUntouched(uint64_t vpn) {
    EnsurePage(vpn);
    pages_[vpn] = kEvicted;
  }

  uint64_t id_;
  std::string name_;
  bool interactive_;
  std::vector<uint32_t> pages_;
  size_t resident_count_ = 0;
};

}  // namespace tcs

#endif  // TCS_SRC_MEM_ADDRESS_SPACE_H_
