// Per-process virtual address space: residency and dirty state per virtual page.
//
// AddressSpaces are created and owned by the Pager, which also maintains the global
// recency ordering used for eviction. The `interactive` flag marks spaces belonging to
// user-facing processes; the kInteractiveProtect eviction policy (Evans et al.'s fix,
// §5.2) refuses to steal their pages on behalf of non-interactive faults.

#ifndef TCS_SRC_MEM_ADDRESS_SPACE_H_
#define TCS_SRC_MEM_ADDRESS_SPACE_H_

#include <cstdint>
#include <string>
#include <unordered_map>

namespace tcs {

class AddressSpace {
 public:
  AddressSpace(uint64_t id, std::string name, bool interactive)
      : id_(id), name_(std::move(name)), interactive_(interactive) {}

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  bool interactive() const { return interactive_; }

  bool IsResident(uint64_t vpn) const {
    auto it = pages_.find(vpn);
    return it != pages_.end() && it->second.resident;
  }
  // True if the page was resident once and has been paged out: re-touching it costs a
  // disk read. A never-touched page zero-fills for free.
  bool WasEvicted(uint64_t vpn) const {
    auto it = pages_.find(vpn);
    return it != pages_.end() && !it->second.resident;
  }
  bool IsDirty(uint64_t vpn) const {
    auto it = pages_.find(vpn);
    return it != pages_.end() && it->second.dirty;
  }
  size_t resident_pages() const { return resident_count_; }

  // Number of pages in [first, first+count) that are NOT resident — the fault bill an
  // access to that range will pay.
  size_t MissingIn(uint64_t first, size_t count) const;

 private:
  friend class Pager;

  struct PageState {
    bool resident = false;
    bool dirty = false;
  };

  void SetResident(uint64_t vpn, bool dirty);
  void SetEvicted(uint64_t vpn);

  uint64_t id_;
  std::string name_;
  bool interactive_;
  std::unordered_map<uint64_t, PageState> pages_;
  size_t resident_count_ = 0;
};

}  // namespace tcs

#endif  // TCS_SRC_MEM_ADDRESS_SPACE_H_
