// Paging device model.
//
// A single-spindle disk with FIFO queueing: each request is serviced after all earlier
// ones, paying a positioning cost (randomized seek + rotation) plus per-page transfer
// time. Pages beyond the first in a clustered request pay only a fraction of the
// positioning cost. Late-1990s commodity-disk defaults.

#ifndef TCS_SRC_MEM_DISK_H_
#define TCS_SRC_MEM_DISK_H_

#include <cstdint>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/obs/trace.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/snapshot.h"
#include "src/sim/units.h"

namespace tcs {

struct DiskConfig {
  Duration positioning_mean = Duration::Millis(8);
  Duration positioning_stddev = Duration::Millis(3);
  Duration positioning_min = Duration::Millis(2);
  // Sustained media rate; a 4 KiB page at 5 MB/s is ~0.8 ms.
  BitsPerSecond transfer_rate = BitsPerSecond::Mbps(40);
  Bytes page_size = Bytes::Of(4096);
  // Fraction of a positioning cost paid by each clustered page after the first.
  double sequential_positioning_factor = 0.1;
};

// Throws tcs::ConfigError on a non-positive transfer rate or page size, a negative
// positioning cost, or a sequential factor outside [0, 1]. Returns the config.
DiskConfig Validated(DiskConfig config);

class Disk {
 public:
  Disk(Simulator& sim, Rng rng, DiskConfig config = {});

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Enqueues a read of `pages` contiguous pages; `done` fires when the transfer completes.
  // `key` is the completion's checkpoint identity: a request whose completion is still
  // outstanding at snapshot time must carry one or SaveTo fails loudly.
  void Read(int pages, InlineCallback done, ResumeKey key = {});

  // Enqueues a write of `pages` pages; `done` (optional) fires at completion. Used for
  // dirty-page eviction, which is typically fire-and-forget but still occupies the queue.
  void Write(int pages, InlineCallback done = nullptr, ResumeKey key = {});

  // Time at which the device drains everything currently queued.
  TimePoint busy_until() const { return busy_until_; }
  bool IsBusyAt(TimePoint t) const { return busy_until_ > t; }

  // Observability: each request becomes a mem-category span covering its service window
  // on the device (queueing excluded; the `queue_us` arg records it).
  void SetTracer(Tracer* tracer);

  int64_t reads() const { return reads_; }
  int64_t writes() const { return writes_; }
  int64_t pages_read() const { return pages_read_; }
  int64_t pages_written() const { return pages_written_; }
  Duration total_busy() const { return total_busy_; }

  // Fault injection (non-owning; null = healthy device, the default). An attached
  // injector perturbs per-request service time with stalls and retried I/O errors.
  void SetFaultInjector(DiskFaultInjector* injector) { fault_ = injector; }
  DiskFaultInjector* fault_injector() const { return fault_; }

  // Checkpoint/restore: RNG position, queue horizon, accounting, and every outstanding
  // completion as (seq, when, ResumeKey). LoadFrom re-arms completions through `plan`,
  // rebuilding callbacks from their keys via the registered-restorer table.
  void SaveTo(SnapshotWriter& w) const;
  void LoadFrom(SnapshotReader& r, EventRearm& plan);

 private:
  // An outstanding completion event. Requests complete in issue order (busy_until_ is
  // monotonic and same-time events fire in schedule order), so the front record always
  // belongs to the next completion.
  struct PendingIo {
    EventId ev;
    ResumeKey key;
  };

  Duration ServiceTime(int pages);
  void Enqueue(const char* op, int pages, InlineCallback done, ResumeKey key);

  Simulator& sim_;
  Rng rng_;
  DiskConfig config_;
  DiskFaultInjector* fault_ = nullptr;
  Tracer* tracer_ = nullptr;
  TraceTrack trace_track_;
  TimePoint busy_until_ = TimePoint::Zero();
  int64_t reads_ = 0;
  int64_t writes_ = 0;
  int64_t pages_read_ = 0;
  int64_t pages_written_ = 0;
  Duration total_busy_ = Duration::Zero();
  std::vector<PendingIo> pending_;
};

}  // namespace tcs

#endif  // TCS_SRC_MEM_DISK_H_
