#include "src/mem/pager.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/obs/flight_recorder.h"

namespace tcs {

Pager::Pager(Simulator& sim, Disk& disk, PagerConfig config)
    : sim_(sim), disk_(disk), config_(config) {
  assert(config_.total_frames > 0);
  assert(config_.cluster_pages >= 1);
}

void Pager::SetTracer(Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    trace_track_ = tracer_->RegisterTrack("mem", "pager");
  }
}

AddressSpace* Pager::CreateAddressSpace(std::string name, bool interactive) {
  spaces_.push_back(
      std::make_unique<AddressSpace>(next_as_id_++, std::move(name), interactive));
  return spaces_.back().get();
}

SharedSegment Pager::AcquireShared(const std::string& key, bool interactive) {
  auto it = shared_.find(key);
  if (it != shared_.end()) {
    ++it->second.refs;
    ++shared_attaches_;
    return SharedSegment{it->second.space, /*created=*/false};
  }
  AddressSpace* space = CreateAddressSpace(key, interactive);
  shared_.emplace(key, SharedEntry{space, 1});
  return SharedSegment{space, /*created=*/true};
}

void Pager::ReleaseShared(const std::string& key) {
  auto it = shared_.find(key);
  assert(it != shared_.end() && "ReleaseShared without matching acquire");
  if (--it->second.refs == 0) {
    AddressSpace* space = it->second.space;
    shared_.erase(it);
    ReleaseAddressSpace(space);
  }
}

void Pager::UnlinkFrame(uint32_t f) {
  Frame& fr = frames_[f];
  if (fr.prev != kNilFrame) {
    frames_[fr.prev].next = fr.next;
  } else {
    lru_head_ = fr.next;
  }
  if (fr.next != kNilFrame) {
    frames_[fr.next].prev = fr.prev;
  } else {
    lru_tail_ = fr.prev;
  }
}

void Pager::LinkFrameAtTail(uint32_t f) {
  Frame& fr = frames_[f];
  fr.prev = lru_tail_;
  fr.next = kNilFrame;
  if (lru_tail_ != kNilFrame) {
    frames_[lru_tail_].next = f;
  } else {
    lru_head_ = f;
  }
  lru_tail_ = f;
}

uint32_t Pager::AllocFrame(AddressSpace& as, uint64_t vpn) {
  uint32_t f;
  if (free_head_ != kNilFrame) {
    f = free_head_;
    free_head_ = frames_[f].next;
  } else {
    f = static_cast<uint32_t>(frames_.size());
    frames_.push_back(Frame{});
  }
  frames_[f].as = &as;
  frames_[f].vpn = vpn;
  LinkFrameAtTail(f);
  ++frames_used_;
  return f;
}

void Pager::FreeFrame(uint32_t f) {
  frames_[f].as = nullptr;
  frames_[f].next = free_head_;
  free_head_ = f;
  --frames_used_;
}

void Pager::DropFramesOf(AddressSpace& as) {
  for (uint32_t it = lru_head_; it != kNilFrame;) {
    uint32_t next = frames_[it].next;
    if (frames_[it].as == &as) {
      UnlinkFrame(it);
      FreeFrame(it);
    }
    it = next;
  }
  // Page-ins of a dying space still on the disk: their map entries go away and any
  // waiters resume now (the disk completion itself is harmless — its erase is guarded).
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if ((it->first >> 44) == as.id()) {
      auto barrier = it->second;
      it = in_flight_.erase(it);
      for (auto& waiter : barrier->waiters) {
        sim_.Schedule(Duration::Zero(), std::move(waiter));
      }
      barrier->waiters.clear();
    } else {
      ++it;
    }
  }
}

void Pager::ReleaseAddressSpace(AddressSpace* as) {
  assert(as != nullptr);
  DropFramesOf(*as);
  for (auto it = spaces_.begin(); it != spaces_.end(); ++it) {
    if (it->get() == as) {
      spaces_.erase(it);
      return;
    }
  }
  assert(false && "address space not owned by this pager");
}

InlineCallback Pager::ArmInFlight(std::shared_ptr<std::vector<uint64_t>> keys,
                                  InlineCallback done) {
  auto barrier = std::make_shared<InFlightRead>();
  for (uint64_t key : *keys) {
    in_flight_[key] = barrier;
  }
  return [this, keys = std::move(keys), barrier, done = std::move(done)]() mutable {
    for (uint64_t key : *keys) {
      auto it = in_flight_.find(key);
      if (it != in_flight_.end() && it->second == barrier) {
        in_flight_.erase(it);
      }
    }
    // Waiters are other accesses' completions; they resume at this same instant, after
    // the issuing access's own bookkeeping.
    for (auto& waiter : barrier->waiters) {
      waiter();
    }
    barrier->waiters.clear();
    if (done) {
      done();
    }
  };
}

void Pager::TouchLru(AddressSpace& as, uint64_t vpn) {
  uint32_t f = as.FrameOf(vpn);
  if (f == lru_tail_) {
    return;  // already most recently used
  }
  UnlinkFrame(f);
  LinkFrameAtTail(f);
}

void Pager::EvictOneFrame(const AddressSpace& for_whom) {
  assert(lru_head_ != kNilFrame);
  uint32_t victim = lru_head_;
  if (config_.policy == EvictionPolicy::kInteractiveProtect && !for_whom.interactive()) {
    // Skip pages belonging to interactive address spaces; steal the oldest
    // non-interactive page instead. Fall back to true LRU only if every resident page is
    // protected.
    uint32_t it = lru_head_;
    while (it != kNilFrame && frames_[it].as->interactive()) {
      ++protected_skips_;
      it = frames_[it].next;
    }
    if (it != kNilFrame) {
      victim = it;
    }
  }
  AddressSpace& vas = *frames_[victim].as;
  uint64_t vvpn = frames_[victim].vpn;
  bool dirty = vas.IsDirty(vvpn);
  vas.SetEvicted(vvpn);
  UnlinkFrame(victim);
  FreeFrame(victim);
  ++evictions_;
  if (tracer_ != nullptr) {
    tracer_->Instant(TraceCategory::kMem, dirty ? "evict-dirty" : "evict", trace_track_,
                     sim_.Now(), "as", static_cast<int64_t>(vas.id()), "vpn",
                     static_cast<int64_t>(vvpn));
  }
  if (dirty) {
    ++dirty_writebacks_;
    disk_.Write(1);  // fire-and-forget, but it occupies the disk queue ahead of reads
  }
}

bool Pager::MakeResident(AddressSpace& as, uint64_t vpn, bool write) {
  if (as.IsResident(vpn)) {
    ++hits_;
    TouchLru(as, vpn);
    if (write) {
      as.MarkDirty(vpn);
    }
    return false;
  }
  ++faults_;
  if (tracer_ != nullptr) {
    tracer_->Instant(TraceCategory::kMem, "fault", trace_track_, sim_.Now(), "as",
                     static_cast<int64_t>(as.id()), "vpn", static_cast<int64_t>(vpn));
  }
  if (frames_used_ >= config_.total_frames) {
    EvictOneFrame(as);
  }
  uint32_t frame = AllocFrame(as, vpn);
  as.SetResidentInFrame(vpn, frame, write);
  return true;
}

Duration Pager::ThrottleFor(const AddressSpace& as) const {
  if (config_.policy == EvictionPolicy::kInteractiveProtect && !as.interactive() &&
      IsSaturated()) {
    return config_.throttle_delay;
  }
  return Duration::Zero();
}

void Pager::Access(AddressSpace& as, uint64_t vpn, bool write, InlineCallback done) {
  Duration throttle = ThrottleFor(as);
  bool needs_disk = as.WasEvicted(vpn);
  bool faulted = MakeResident(as, vpn, write);
  if (faulted && recorder_ != nullptr) {
    // Flight records are batched per access, not per page: the Tracer keeps the
    // per-fault instants, the always-on ring carries one "faults" record per faulting
    // access (count + address space) so steady-state fault storms don't dominate it.
    recorder_->Instant(FlightComponent::kMem, "faults", sim_.Now(), 0, 1,
                       static_cast<int64_t>(as.id()));
  }
  if (!faulted) {
    // Hit — but if the page's read is still on the disk (another session faulted it
    // first), the data hasn't arrived: join that read's waiters instead of proceeding.
    if (!in_flight_.empty()) {
      auto fit = in_flight_.find(FramesKey::Of(as, vpn));
      if (fit != in_flight_.end()) {
        ++coalesced_waits_;
        if (done) {
          fit->second->waiters.push_back(std::move(done));
        }
        return;
      }
    }
  }
  if (!faulted || !needs_disk) {
    // Hit, or zero-fill of a never-touched page: no I/O (the throttle still applies to
    // zero-fill faults — it slows any allocation by a non-interactive process).
    Duration delay = faulted ? throttle : Duration::Zero();
    if (done) {
      sim_.Schedule(delay, std::move(done));
    }
    return;
  }
  auto keys = std::make_shared<std::vector<uint64_t>>(1, FramesKey::Of(as, vpn));
  done = ArmInFlight(std::move(keys), std::move(done));
  if (throttle.IsZero()) {
    disk_.Read(1, std::move(done));
  } else {
    // Throttled faulter: delay the I/O issue itself, slowing the process's fault rate.
    sim_.Schedule(throttle, [this, done = std::move(done)]() mutable {
      disk_.Read(1, std::move(done));
    });
  }
}

void Pager::AccessRange(AddressSpace& as, uint64_t first, size_t count, bool write,
                        InlineCallback done) {
  assert(count > 0);
  TimePoint access_start = sim_.Now();
  Duration throttle = ThrottleFor(as);
  // Bookkeeping first: compute contiguous runs of missing pages, make everything resident,
  // then simulate the I/O chain for the runs. Resident pages whose page-in is still on
  // the disk (another session's fault) contribute a join on that read's barrier.
  //
  // The steady-state keystroke path is all hits: `runs`/`io_keys` stay unallocated and
  // the whole call touches nothing but the page array and the recency list.
  std::shared_ptr<std::vector<int>> runs;
  std::shared_ptr<std::vector<uint64_t>> io_keys;
  std::vector<std::shared_ptr<InFlightRead>> joins;
  size_t current_run = 0;
  uint64_t prev_missing = 0;
  bool have_prev = false;
  int64_t faulted_pages = 0;
  for (uint64_t vpn = first; vpn < first + count; ++vpn) {
    bool needs_disk = as.WasEvicted(vpn);
    bool faulted = MakeResident(as, vpn, write);
    faulted_pages += faulted ? 1 : 0;
    if (!needs_disk) {
      if (!faulted && !in_flight_.empty()) {
        auto fit = in_flight_.find(FramesKey::Of(as, vpn));
        if (fit != in_flight_.end() &&
            std::find(joins.begin(), joins.end(), fit->second) == joins.end()) {
          joins.push_back(fit->second);
        }
      }
      continue;  // hit or zero-fill: no I/O of our own
    }
    if (io_keys == nullptr) {
      io_keys = std::make_shared<std::vector<uint64_t>>();
      runs = std::make_shared<std::vector<int>>();
    }
    io_keys->push_back(FramesKey::Of(as, vpn));
    bool adjacent = have_prev && vpn == prev_missing + 1;
    if (adjacent && current_run < config_.cluster_pages) {
      ++current_run;
    } else {
      if (current_run > 0) {
        runs->push_back(static_cast<int>(current_run));
      }
      current_run = 1;
    }
    prev_missing = vpn;
    have_prev = true;
  }
  if (current_run > 0) {
    runs->push_back(static_cast<int>(current_run));
  }
  if (faulted_pages > 0 && recorder_ != nullptr) {
    // One batched flight record per faulting access (see Access above).
    recorder_->Instant(FlightComponent::kMem, "faults", sim_.Now(), 0, faulted_pages,
                       static_cast<int64_t>(as.id()));
  }
  if (runs == nullptr && joins.empty()) {
    if (tracer_ != nullptr) {
      tracer_->Span(TraceCategory::kMem, "access", trace_track_, access_start, access_start,
                    "pages", static_cast<int64_t>(count), "io_pages", int64_t{0});
    }
    if (done) {
      sim_.Schedule(Duration::Zero(), std::move(done));
    }
    return;
  }
  if (tracer_ != nullptr || recorder_ != nullptr) {
    // Wrap completion so the span closes at the moment the last clustered read lands.
    int64_t io_pages = 0;
    if (runs != nullptr) {
      for (int r : *runs) {
        io_pages += r;
      }
    }
    done = [this, access_start, count, io_pages, done = std::move(done)]() mutable {
      if (tracer_ != nullptr) {
        tracer_->Span(TraceCategory::kMem, "page-in", trace_track_, access_start,
                      sim_.Now(), "pages", static_cast<int64_t>(count), "io_pages",
                      io_pages);
      }
      if (recorder_ != nullptr) {
        recorder_->Span(FlightComponent::kMem, "page-in", access_start, sim_.Now(), 0,
                        static_cast<int64_t>(count), io_pages);
      }
      if (done) {
        done();
      }
    };
  }
  // The access completes when its own read chain AND every joined in-flight read land.
  // The fan-in state is shared so each joined barrier can hold its own (copyable) hook.
  struct FanIn {
    size_t remaining;
    InlineCallback done;
  };
  auto fan = std::make_shared<FanIn>(
      FanIn{joins.size() + (runs != nullptr ? 1u : 0u), std::move(done)});
  auto fire = [fan] {
    if (--fan->remaining == 0 && fan->done) {
      fan->done();
    }
  };
  coalesced_waits_ += static_cast<int64_t>(joins.size());
  for (auto& barrier : joins) {
    barrier->waiters.push_back(fire);
  }
  if (runs == nullptr) {
    return;
  }
  InlineCallback chain_done = ArmInFlight(io_keys, fire);
  if (throttle.IsZero()) {
    IssueRuns(runs, 0, std::move(chain_done));
  } else {
    sim_.Schedule(throttle, [this, runs, chain_done = std::move(chain_done)]() mutable {
      IssueRuns(runs, 0, std::move(chain_done));
    });
  }
}

void Pager::IssueRuns(std::shared_ptr<std::vector<int>> runs, size_t index,
                      InlineCallback done) {
  assert(index < runs->size());
  int pages = (*runs)[index];
  bool last = index + 1 == runs->size();
  if (last) {
    disk_.Read(pages, std::move(done));
  } else {
    disk_.Read(pages, [this, runs = std::move(runs), index, done = std::move(done)]() mutable {
      IssueRuns(std::move(runs), index + 1, std::move(done));
    });
  }
}

void Pager::MarkSwappedOut(AddressSpace& as, uint64_t first, size_t count) {
  for (uint64_t vpn = first; vpn < first + count; ++vpn) {
    if (as.IsResident(vpn)) {
      uint32_t f = as.FrameOf(vpn);
      UnlinkFrame(f);
      FreeFrame(f);
      as.SetEvicted(vpn);
    } else {
      // Create the page in the evicted state.
      as.MarkEvictedUntouched(vpn);
    }
  }
}

void Pager::Prefault(AddressSpace& as, uint64_t first, size_t count) {
  for (uint64_t vpn = first; vpn < first + count; ++vpn) {
    bool was_missing = !as.IsResident(vpn);
    MakeResident(as, vpn, /*write=*/false);
    // Prefault is setup, not simulation: undo the accounting it produced.
    if (was_missing) {
      --faults_;
    } else {
      --hits_;
    }
  }
}

}  // namespace tcs
