#include "src/mem/pager.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/sim/resume_kinds.h"

namespace tcs {

Pager::Pager(Simulator& sim, Disk& disk, PagerConfig config)
    : sim_(sim), disk_(disk), config_(config) {
  assert(config_.total_frames > 0);
  assert(config_.cluster_pages >= 1);
}

void Pager::SetTracer(Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    trace_track_ = tracer_->RegisterTrack("mem", "pager");
  }
}

AddressSpace* Pager::CreateAddressSpace(std::string name, bool interactive) {
  spaces_.push_back(
      std::make_unique<AddressSpace>(next_as_id_++, std::move(name), interactive));
  return spaces_.back().get();
}

SharedSegment Pager::AcquireShared(const std::string& key, bool interactive) {
  auto it = shared_.find(key);
  if (it != shared_.end()) {
    ++it->second.refs;
    ++shared_attaches_;
    return SharedSegment{it->second.space, /*created=*/false};
  }
  AddressSpace* space = CreateAddressSpace(key, interactive);
  shared_.emplace(key, SharedEntry{space, 1});
  return SharedSegment{space, /*created=*/true};
}

void Pager::ReleaseShared(const std::string& key) {
  auto it = shared_.find(key);
  assert(it != shared_.end() && "ReleaseShared without matching acquire");
  if (--it->second.refs == 0) {
    AddressSpace* space = it->second.space;
    shared_.erase(it);
    ReleaseAddressSpace(space);
  }
}

void Pager::UnlinkFrame(uint32_t f) {
  Frame& fr = frames_[f];
  if (fr.prev != kNilFrame) {
    frames_[fr.prev].next = fr.next;
  } else {
    lru_head_ = fr.next;
  }
  if (fr.next != kNilFrame) {
    frames_[fr.next].prev = fr.prev;
  } else {
    lru_tail_ = fr.prev;
  }
}

void Pager::LinkFrameAtTail(uint32_t f) {
  Frame& fr = frames_[f];
  fr.prev = lru_tail_;
  fr.next = kNilFrame;
  if (lru_tail_ != kNilFrame) {
    frames_[lru_tail_].next = f;
  } else {
    lru_head_ = f;
  }
  lru_tail_ = f;
}

uint32_t Pager::AllocFrame(AddressSpace& as, uint64_t vpn) {
  uint32_t f;
  if (free_head_ != kNilFrame) {
    f = free_head_;
    free_head_ = frames_[f].next;
  } else {
    f = static_cast<uint32_t>(frames_.size());
    frames_.push_back(Frame{});
  }
  frames_[f].as = &as;
  frames_[f].vpn = vpn;
  LinkFrameAtTail(f);
  ++frames_used_;
  return f;
}

void Pager::FreeFrame(uint32_t f) {
  frames_[f].as = nullptr;
  frames_[f].next = free_head_;
  free_head_ = f;
  --frames_used_;
}

void Pager::DropFramesOf(AddressSpace& as) {
  for (uint32_t it = lru_head_; it != kNilFrame;) {
    uint32_t next = frames_[it].next;
    if (frames_[it].as == &as) {
      UnlinkFrame(it);
      FreeFrame(it);
    }
    it = next;
  }
  // Page-ins of a dying space still on the disk: their map entries go away and any
  // waiting ops resume now (the disk completion itself is harmless — the owning op's
  // chain keeps running and its in-flight erase is guarded).
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if ((it->first >> 44) == as.id()) {
      uint64_t owner = it->second;
      it = in_flight_.erase(it);
      auto oit = ops_.find(owner);
      if (oit != ops_.end()) {
        std::vector<uint64_t> waiters = std::move(oit->second.waiter_ops);
        oit->second.waiter_ops.clear();
        for (uint64_t w : waiters) {
          ScheduleOpFire(w, Duration::Zero());
        }
      }
    } else {
      ++it;
    }
  }
}

void Pager::ReleaseAddressSpace(AddressSpace* as) {
  assert(as != nullptr);
  DropFramesOf(*as);
  for (auto it = spaces_.begin(); it != spaces_.end(); ++it) {
    if (it->get() == as) {
      spaces_.erase(it);
      return;
    }
  }
  assert(false && "address space not owned by this pager");
}

uint64_t Pager::CreateOp(InlineCallback done, ResumeKey done_key) {
  uint64_t id = next_op_id_++;
  PagerOp& op = ops_[id];
  op.done = std::move(done);
  op.done_key = done_key;
  return id;
}

void Pager::OpSignal(uint64_t id) {
  auto it = ops_.find(id);
  assert(it != ops_.end());
  assert(it->second.remaining > 0);
  if (--it->second.remaining == 0) {
    CompleteOp(id);
  }
}

void Pager::CompleteOp(uint64_t id) {
  auto it = ops_.find(id);
  PagerOp op = std::move(it->second);
  ops_.erase(it);
  if (op.traced) {
    if (tracer_ != nullptr) {
      tracer_->Span(TraceCategory::kMem, "page-in", trace_track_, op.access_start,
                    sim_.Now(), "pages", op.count, "io_pages", op.io_pages);
    }
    if (recorder_ != nullptr) {
      recorder_->Span(FlightComponent::kMem, "page-in", op.access_start, sim_.Now(), 0,
                      op.count, op.io_pages);
    }
  }
  if (op.done) {
    op.done();
  }
}

void Pager::IssueRead(uint64_t id) {
  PagerOp& op = ops_.at(id);
  assert(op.next_run < op.runs.size());
  disk_.Read(op.runs[op.next_run], [this, id] { OnChainStep(id); },
             ResumeKey::Make(kResumePagerChain, id));
}

void Pager::OnChainStep(uint64_t id) {
  auto it = ops_.find(id);
  assert(it != ops_.end());
  PagerOp& op = it->second;
  ++op.next_run;
  if (op.next_run < op.runs.size()) {
    IssueRead(id);
  } else {
    ChainComplete(id);
  }
}

void Pager::ChainComplete(uint64_t id) {
  auto it = ops_.find(id);
  assert(it != ops_.end());
  PagerOp& op = it->second;
  // Release the barrier (guarded: a dying address space may have dropped the entries).
  for (uint64_t key : op.keys) {
    auto fit = in_flight_.find(key);
    if (fit != in_flight_.end() && fit->second == id) {
      in_flight_.erase(fit);
    }
  }
  // Waiting ops are other accesses' completions; they resume at this same instant,
  // after the issuing access's own bookkeeping.
  std::vector<uint64_t> waiters = std::move(op.waiter_ops);
  op.waiter_ops.clear();
  for (uint64_t w : waiters) {
    OpSignal(w);
  }
  OpSignal(id);
}

void Pager::ScheduleOpFire(uint64_t id, Duration delay) {
  fires_.push_back(PendingOpEvent{EventId(), id});
  fires_.back().ev = sim_.Schedule(delay, [this, id] { OnOpFire(id); });
}

void Pager::OnOpFire(uint64_t id) {
  for (auto it = fires_.begin(); it != fires_.end(); ++it) {
    if (it->op == id) {
      fires_.erase(it);
      break;
    }
  }
  OpSignal(id);
}

void Pager::ScheduleIssue(uint64_t id, Duration delay) {
  issues_.push_back(PendingOpEvent{EventId(), id});
  issues_.back().ev = sim_.Schedule(delay, [this, id] { OnIssueFire(id); });
}

void Pager::OnIssueFire(uint64_t id) {
  for (auto it = issues_.begin(); it != issues_.end(); ++it) {
    if (it->op == id) {
      issues_.erase(it);
      break;
    }
  }
  PagerOp& op = ops_.at(id);
  op.throttled = false;
  IssueRead(id);
}

void Pager::TouchLru(AddressSpace& as, uint64_t vpn) {
  uint32_t f = as.FrameOf(vpn);
  if (f == lru_tail_) {
    return;  // already most recently used
  }
  UnlinkFrame(f);
  LinkFrameAtTail(f);
}

void Pager::EvictOneFrame(const AddressSpace& for_whom) {
  assert(lru_head_ != kNilFrame);
  uint32_t victim = lru_head_;
  if (config_.policy == EvictionPolicy::kInteractiveProtect && !for_whom.interactive()) {
    // Skip pages belonging to interactive address spaces; steal the oldest
    // non-interactive page instead. Fall back to true LRU only if every resident page is
    // protected.
    uint32_t it = lru_head_;
    while (it != kNilFrame && frames_[it].as->interactive()) {
      ++protected_skips_;
      it = frames_[it].next;
    }
    if (it != kNilFrame) {
      victim = it;
    }
  }
  AddressSpace& vas = *frames_[victim].as;
  uint64_t vvpn = frames_[victim].vpn;
  bool dirty = vas.IsDirty(vvpn);
  vas.SetEvicted(vvpn);
  UnlinkFrame(victim);
  FreeFrame(victim);
  ++evictions_;
  if (tracer_ != nullptr) {
    tracer_->Instant(TraceCategory::kMem, dirty ? "evict-dirty" : "evict", trace_track_,
                     sim_.Now(), "as", static_cast<int64_t>(vas.id()), "vpn",
                     static_cast<int64_t>(vvpn));
  }
  if (dirty) {
    ++dirty_writebacks_;
    disk_.Write(1);  // fire-and-forget, but it occupies the disk queue ahead of reads
  }
}

bool Pager::MakeResident(AddressSpace& as, uint64_t vpn, bool write) {
  if (as.IsResident(vpn)) {
    ++hits_;
    TouchLru(as, vpn);
    if (write) {
      as.MarkDirty(vpn);
    }
    return false;
  }
  ++faults_;
  if (tracer_ != nullptr) {
    tracer_->Instant(TraceCategory::kMem, "fault", trace_track_, sim_.Now(), "as",
                     static_cast<int64_t>(as.id()), "vpn", static_cast<int64_t>(vpn));
  }
  if (frames_used_ >= config_.total_frames) {
    EvictOneFrame(as);
  }
  uint32_t frame = AllocFrame(as, vpn);
  as.SetResidentInFrame(vpn, frame, write);
  return true;
}

Duration Pager::ThrottleFor(const AddressSpace& as) const {
  if (config_.policy == EvictionPolicy::kInteractiveProtect && !as.interactive() &&
      IsSaturated()) {
    return config_.throttle_delay;
  }
  return Duration::Zero();
}

void Pager::Access(AddressSpace& as, uint64_t vpn, bool write, InlineCallback done,
                   ResumeKey done_key) {
  Duration throttle = ThrottleFor(as);
  bool needs_disk = as.WasEvicted(vpn);
  bool faulted = MakeResident(as, vpn, write);
  if (faulted && recorder_ != nullptr) {
    // Flight records are batched per access, not per page: the Tracer keeps the
    // per-fault instants, the always-on ring carries one "faults" record per faulting
    // access (count + address space) so steady-state fault storms don't dominate it.
    recorder_->Instant(FlightComponent::kMem, "faults", sim_.Now(), 0, 1,
                       static_cast<int64_t>(as.id()));
  }
  if (!faulted) {
    // Hit — but if the page's read is still on the disk (another session faulted it
    // first), the data hasn't arrived: join that read's op instead of proceeding.
    if (!in_flight_.empty()) {
      auto fit = in_flight_.find(FramesKey::Of(as, vpn));
      if (fit != in_flight_.end()) {
        ++coalesced_waits_;
        if (done) {
          uint64_t id = CreateOp(std::move(done), done_key);
          ops_.at(id).remaining = 1;
          ops_.at(fit->second).waiter_ops.push_back(id);
        }
        return;
      }
    }
  }
  if (!faulted || !needs_disk) {
    // Hit, or zero-fill of a never-touched page: no I/O (the throttle still applies to
    // zero-fill faults — it slows any allocation by a non-interactive process).
    Duration delay = faulted ? throttle : Duration::Zero();
    if (done) {
      uint64_t id = CreateOp(std::move(done), done_key);
      ops_.at(id).remaining = 1;
      ScheduleOpFire(id, delay);
    }
    return;
  }
  uint64_t id = CreateOp(std::move(done), done_key);
  PagerOp& op = ops_.at(id);
  op.remaining = 1;
  op.runs.assign(1, 1);
  op.keys.assign(1, FramesKey::Of(as, vpn));
  in_flight_[op.keys[0]] = id;
  if (throttle.IsZero()) {
    IssueRead(id);
  } else {
    // Throttled faulter: delay the I/O issue itself, slowing the process's fault rate.
    op.throttled = true;
    ScheduleIssue(id, throttle);
  }
}

void Pager::AccessRange(AddressSpace& as, uint64_t first, size_t count, bool write,
                        InlineCallback done, ResumeKey done_key) {
  assert(count > 0);
  TimePoint access_start = sim_.Now();
  Duration throttle = ThrottleFor(as);
  // Bookkeeping first: compute contiguous runs of missing pages, make everything resident,
  // then simulate the I/O chain for the runs. Resident pages whose page-in is still on
  // the disk (another session's fault) contribute a join on that read's op.
  //
  // The steady-state keystroke path is all hits: `runs`/`io_keys` stay empty and the
  // whole call touches nothing but the page array and the recency list.
  std::vector<int> runs;
  std::vector<uint64_t> io_keys;
  std::vector<uint64_t> joins;
  size_t current_run = 0;
  uint64_t prev_missing = 0;
  bool have_prev = false;
  int64_t faulted_pages = 0;
  for (uint64_t vpn = first; vpn < first + count; ++vpn) {
    bool needs_disk = as.WasEvicted(vpn);
    bool faulted = MakeResident(as, vpn, write);
    faulted_pages += faulted ? 1 : 0;
    if (!needs_disk) {
      if (!faulted && !in_flight_.empty()) {
        auto fit = in_flight_.find(FramesKey::Of(as, vpn));
        if (fit != in_flight_.end() &&
            std::find(joins.begin(), joins.end(), fit->second) == joins.end()) {
          joins.push_back(fit->second);
        }
      }
      continue;  // hit or zero-fill: no I/O of our own
    }
    io_keys.push_back(FramesKey::Of(as, vpn));
    bool adjacent = have_prev && vpn == prev_missing + 1;
    if (adjacent && current_run < config_.cluster_pages) {
      ++current_run;
    } else {
      if (current_run > 0) {
        runs.push_back(static_cast<int>(current_run));
      }
      current_run = 1;
    }
    prev_missing = vpn;
    have_prev = true;
  }
  if (current_run > 0) {
    runs.push_back(static_cast<int>(current_run));
  }
  if (faulted_pages > 0 && recorder_ != nullptr) {
    // One batched flight record per faulting access (see Access above).
    recorder_->Instant(FlightComponent::kMem, "faults", sim_.Now(), 0, faulted_pages,
                       static_cast<int64_t>(as.id()));
  }
  if (runs.empty() && joins.empty()) {
    if (tracer_ != nullptr) {
      tracer_->Span(TraceCategory::kMem, "access", trace_track_, access_start, access_start,
                    "pages", static_cast<int64_t>(count), "io_pages", int64_t{0});
    }
    if (done) {
      uint64_t id = CreateOp(std::move(done), done_key);
      ops_.at(id).remaining = 1;
      ScheduleOpFire(id, Duration::Zero());
    }
    return;
  }
  // The access completes when its own read chain AND every joined in-flight read land.
  uint64_t id = CreateOp(std::move(done), done_key);
  PagerOp& op = ops_.at(id);
  op.remaining = joins.size() + (runs.empty() ? 0u : 1u);
  if (tracer_ != nullptr || recorder_ != nullptr) {
    // The page-in span closes at the moment the last clustered read lands.
    op.traced = true;
    op.access_start = access_start;
    op.count = static_cast<int64_t>(count);
    for (int r : runs) {
      op.io_pages += r;
    }
  }
  coalesced_waits_ += static_cast<int64_t>(joins.size());
  for (uint64_t j : joins) {
    ops_.at(j).waiter_ops.push_back(id);
  }
  if (runs.empty()) {
    return;
  }
  op.runs = std::move(runs);
  op.keys = std::move(io_keys);
  for (uint64_t key : op.keys) {
    in_flight_[key] = id;
  }
  if (throttle.IsZero()) {
    IssueRead(id);
  } else {
    op.throttled = true;
    ScheduleIssue(id, throttle);
  }
}

void Pager::MarkSwappedOut(AddressSpace& as, uint64_t first, size_t count) {
  for (uint64_t vpn = first; vpn < first + count; ++vpn) {
    if (as.IsResident(vpn)) {
      uint32_t f = as.FrameOf(vpn);
      UnlinkFrame(f);
      FreeFrame(f);
      as.SetEvicted(vpn);
    } else {
      // Create the page in the evicted state.
      as.MarkEvictedUntouched(vpn);
    }
  }
}

void Pager::Prefault(AddressSpace& as, uint64_t first, size_t count) {
  for (uint64_t vpn = first; vpn < first + count; ++vpn) {
    bool was_missing = !as.IsResident(vpn);
    MakeResident(as, vpn, /*write=*/false);
    // Prefault is setup, not simulation: undo the accounting it produced.
    if (was_missing) {
      --faults_;
    } else {
      --hits_;
    }
  }
}

void Pager::RegisterRestorers(EventRearm& plan) {
  plan.RegisterRestorer(kResumePagerChain, [this](const ResumeKey& key) {
    uint64_t id = key.arg(0);
    return [this, id] { OnChainStep(id); };
  });
}

void Pager::SaveTo(SnapshotWriter& w) const {
  // Address spaces, in creation order (identity + page tables).
  w.U64(spaces_.size());
  for (const auto& sp : spaces_) {
    sp->SaveTo(w);
  }
  // Frame slab and recency/free lists. Frame owners are recorded by address-space id
  // (0 = free slot).
  w.U64(frames_.size());
  for (const Frame& f : frames_) {
    w.U64(f.as != nullptr ? f.as->id() : 0);
    w.U64(f.vpn);
    w.U32(f.prev);
    w.U32(f.next);
  }
  w.U32(lru_head_);
  w.U32(lru_tail_);
  w.U32(free_head_);
  w.U64(frames_used_);
  // Shared segments, sorted by key for a deterministic encoding.
  std::vector<std::pair<std::string, const SharedEntry*>> shared;
  shared.reserve(shared_.size());
  for (const auto& [key, entry] : shared_) {
    shared.emplace_back(key, &entry);
  }
  std::sort(shared.begin(), shared.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.U64(shared.size());
  for (const auto& [key, entry] : shared) {
    w.Str(key);
    w.U64(entry->space->id());
    w.I64(entry->refs);
  }
  // In-flight page-in coverage and the op table.
  w.U64(in_flight_.size());
  for (const auto& [key, op_id] : in_flight_) {
    w.U64(key);
    w.U64(op_id);
  }
  w.U64(ops_.size());
  for (const auto& [id, op] : ops_) {
    if (op.done && op.done_key.empty()) {
      throw SnapshotError("pager.op",
                          "incomplete page access has a completion callback but no "
                          "ResumeKey; attach one at the Access/AccessRange site");
    }
    w.U64(id);
    w.U64(op.remaining);
    w.Bool(static_cast<bool>(op.done));
    op.done_key.SaveTo(w);
    w.U64(op.runs.size());
    for (int run : op.runs) {
      w.I64(run);
    }
    w.U64(op.next_run);
    w.U64(op.keys.size());
    for (uint64_t key : op.keys) {
      w.U64(key);
    }
    w.Bool(op.throttled);
    w.U64(op.waiter_ops.size());
    for (uint64_t wo : op.waiter_ops) {
      w.U64(wo);
    }
    w.Bool(op.traced);
    w.Time(op.access_start);
    w.I64(op.count);
    w.I64(op.io_pages);
  }
  w.U64(next_op_id_);
  // Pending pager-internal events.
  for (const std::vector<PendingOpEvent>* list : {&fires_, &issues_}) {
    w.U64(list->size());
    for (const PendingOpEvent& pe : *list) {
      uint64_t seq = 0;
      TimePoint when;
      if (!sim_.PendingInfo(pe.ev, &seq, &when)) {
        throw SnapshotError("pager.pending", "pending op-event record is stale");
      }
      w.U64(seq);
      w.Time(when);
      w.U64(pe.op);
    }
  }
  // Counters.
  w.I64(faults_);
  w.I64(hits_);
  w.I64(evictions_);
  w.I64(dirty_writebacks_);
  w.I64(protected_skips_);
  w.I64(shared_attaches_);
  w.I64(coalesced_waits_);
  w.U64(next_as_id_);
}

void Pager::LoadFrom(SnapshotReader& r, EventRearm& plan) {
  uint64_t n_spaces = r.U64();
  if (n_spaces != spaces_.size()) {
    throw SnapshotError("pager.spaces",
                        "snapshot has " + std::to_string(n_spaces) +
                            " address spaces but the rebuilt pager has " +
                            std::to_string(spaces_.size()) +
                            " (checkpointing across address-space creation/teardown "
                            "requires matching reconstruction)");
  }
  std::map<uint64_t, AddressSpace*> by_id;
  for (auto& sp : spaces_) {
    uint64_t id = r.U64();
    std::string name = r.Str();
    bool interactive = r.Bool();
    if (id != sp->id() || name != sp->name() || interactive != sp->interactive()) {
      throw SnapshotError("pager.space." + name,
                          "address-space topology drift: snapshot space (id " +
                              std::to_string(id) + ", \"" + name +
                              "\") does not match rebuilt space (id " +
                              std::to_string(sp->id()) + ", \"" + sp->name() + "\")");
    }
    sp->LoadFrom(r);
    by_id[sp->id()] = sp.get();
  }
  frames_.assign(r.U64(), Frame{});
  for (Frame& f : frames_) {
    uint64_t as_id = r.U64();
    if (as_id != 0) {
      auto it = by_id.find(as_id);
      if (it == by_id.end()) {
        throw SnapshotError("pager.frames", "frame references unknown address space id " +
                                                std::to_string(as_id));
      }
      f.as = it->second;
    }
    f.vpn = r.U64();
    f.prev = r.U32();
    f.next = r.U32();
  }
  lru_head_ = r.U32();
  lru_tail_ = r.U32();
  free_head_ = r.U32();
  frames_used_ = r.U64();
  uint64_t n_shared = r.U64();
  if (n_shared != shared_.size()) {
    throw SnapshotError("pager.shared",
                        "snapshot has " + std::to_string(n_shared) +
                            " shared segments but the rebuilt pager has " +
                            std::to_string(shared_.size()));
  }
  for (uint64_t i = 0; i < n_shared; ++i) {
    std::string key = r.Str();
    uint64_t space_id = r.U64();
    int refs = static_cast<int>(r.I64());
    auto it = shared_.find(key);
    if (it == shared_.end() || it->second.space->id() != space_id) {
      throw SnapshotError("pager.shared." + key,
                          "shared-segment topology drift: rebuilt pager has no matching "
                          "segment");
    }
    it->second.refs = refs;
  }
  in_flight_.clear();
  uint64_t n_in_flight = r.U64();
  for (uint64_t i = 0; i < n_in_flight; ++i) {
    uint64_t key = r.U64();
    in_flight_[key] = r.U64();
  }
  ops_.clear();
  uint64_t n_ops = r.U64();
  for (uint64_t i = 0; i < n_ops; ++i) {
    uint64_t id = r.U64();
    PagerOp& op = ops_[id];
    op.remaining = r.U64();
    bool has_done = r.Bool();
    op.done_key = ResumeKey::LoadFrom(r);
    if (has_done) {
      op.done = plan.Build(op.done_key);
    }
    op.runs.assign(r.U64(), 0);
    for (int& run : op.runs) {
      run = static_cast<int>(r.I64());
    }
    op.next_run = r.U64();
    op.keys.assign(r.U64(), 0);
    for (uint64_t& key : op.keys) {
      key = r.U64();
    }
    op.throttled = r.Bool();
    op.waiter_ops.assign(r.U64(), 0);
    for (uint64_t& wo : op.waiter_ops) {
      wo = r.U64();
    }
    op.traced = r.Bool();
    op.access_start = r.Time();
    op.count = r.I64();
    op.io_pages = r.I64();
  }
  next_op_id_ = r.U64();
  fires_.clear();
  issues_.clear();
  for (int which = 0; which < 2; ++which) {
    std::vector<PendingOpEvent>& list = which == 0 ? fires_ : issues_;
    uint64_t n = r.U64();
    list.reserve(n);  // EventId out-pointers below must stay stable
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t seq = r.U64();
      TimePoint when = r.Time();
      uint64_t op_id = r.U64();
      list.push_back(PendingOpEvent{EventId(), op_id});
      if (which == 0) {
        plan.Schedule(
            "pager.fire", seq, when, [this, op_id] { OnOpFire(op_id); },
            &list.back().ev);
      } else {
        plan.Schedule(
            "pager.issue", seq, when, [this, op_id] { OnIssueFire(op_id); },
            &list.back().ev);
      }
    }
  }
  faults_ = r.I64();
  hits_ = r.I64();
  evictions_ = r.I64();
  dirty_writebacks_ = r.I64();
  protected_skips_ = r.I64();
  shared_attaches_ = r.I64();
  coalesced_waits_ = r.I64();
  next_as_id_ = r.U64();
}

}  // namespace tcs
