#include "src/mem/address_space.h"

#include <cassert>

namespace tcs {

size_t AddressSpace::MissingIn(uint64_t first, size_t count) const {
  size_t missing = 0;
  for (uint64_t vpn = first; vpn < first + count; ++vpn) {
    if (!IsResident(vpn)) {
      ++missing;
    }
  }
  return missing;
}

void AddressSpace::SetResident(uint64_t vpn, bool dirty) {
  PageState& ps = pages_[vpn];
  if (!ps.resident) {
    ps.resident = true;
    ++resident_count_;
  }
  ps.dirty = ps.dirty || dirty;
}

void AddressSpace::SetEvicted(uint64_t vpn) {
  auto it = pages_.find(vpn);
  assert(it != pages_.end() && it->second.resident);
  it->second.resident = false;
  it->second.dirty = false;
  --resident_count_;
}

}  // namespace tcs
