#include "src/mem/address_space.h"

#include <cassert>

namespace tcs {

size_t AddressSpace::MissingIn(uint64_t first, size_t count) const {
  size_t missing = 0;
  for (uint64_t vpn = first; vpn < first + count; ++vpn) {
    if (!IsResident(vpn)) {
      ++missing;
    }
  }
  return missing;
}

void AddressSpace::SetEvicted(uint64_t vpn) {
  assert(vpn < pages_.size() && pages_[vpn] >= kFrameBase);
  pages_[vpn] = kEvicted;
  --resident_count_;
}

}  // namespace tcs
