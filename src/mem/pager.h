// Global page-frame manager.
//
// Implements the behaviour §5.2 of the paper analyzes: a single pool of physical frames
// shared by all processes, reclaimed in global LRU order. A streaming job with high page
// demand therefore evicts every idle process — including the interactive editor a user has
// merely paused reading — and the next keystroke pays a disk storm.
//
// Two eviction policies:
//   kGlobalLru          — strict global recency order (what TSE and Linux do).
//   kInteractiveProtect — Evans et al.'s fix: pages of interactive address spaces are not
//                         stolen to satisfy non-interactive faults, and non-interactive
//                         faulters are throttled once memory is saturated.
//
// The recency order is an intrusive doubly-linked list threaded through a flat frame
// slab, with each AddressSpace page entry holding its frame's slab index directly. A
// page touch is therefore a couple of array indexations — no hashing, no list-node
// allocation — while preserving the exact LRU eviction order of the original
// list+hash-map implementation (the golden corpus notices any deviation). At 512
// consolidated logins (~1M page touches) this is the difference between the pager being
// the profile's top entry and it disappearing into the noise.

#ifndef TCS_SRC_MEM_PAGER_H_
#define TCS_SRC_MEM_PAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/mem/address_space.h"
#include "src/mem/disk.h"
#include "src/obs/trace.h"
#include "src/sim/inline_callback.h"
#include "src/sim/simulator.h"
#include "src/sim/snapshot.h"

namespace tcs {

class FlightRecorder;

enum class EvictionPolicy { kGlobalLru, kInteractiveProtect };

struct PagerConfig {
  // Frames available to user pages (kernel/wired memory already excluded).
  size_t total_frames = 16384;  // 64 MiB of 4 KiB pages
  // Pages per clustered disk I/O when faulting a contiguous range. Linux 2.0 swapped in
  // single pages; 1 models that. Larger values model readahead.
  size_t cluster_pages = 1;
  EvictionPolicy policy = EvictionPolicy::kGlobalLru;
  // Under kInteractiveProtect: extra delay imposed on each non-interactive fault while
  // memory is saturated (the "non-interactive process throttling" of Evans et al.).
  Duration throttle_delay = Duration::Millis(20);
};

// Handle returned by Pager::AcquireShared. `created` is true on the first acquire of a
// key — the caller owns sizing/prefaulting the segment exactly once.
struct SharedSegment {
  AddressSpace* space = nullptr;
  bool created = false;
};

class Pager {
 public:
  Pager(Simulator& sim, Disk& disk, PagerConfig config = {});

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  // Creates an address space owned by this pager.
  AddressSpace* CreateAddressSpace(std::string name, bool interactive);

  // Refcounted shared segments (§5.1.1: text/code pages resident once however many
  // sessions map them). The first acquire of `key` creates the address space; later
  // acquires return the same space. Every acquire must be paired with a ReleaseShared;
  // the last release destroys the space and frees its frames.
  SharedSegment AcquireShared(const std::string& key, bool interactive);
  void ReleaseShared(const std::string& key);

  // Destroys an address space created by CreateAddressSpace: its resident pages are
  // dropped from the frame pool (teardown, not simulated eviction — no writeback I/O)
  // and the space itself is freed. Pending page-in waiters complete immediately.
  void ReleaseAddressSpace(AddressSpace* as);

  // Touches one page.
  //  * resident: recency update, `done` fires immediately (as a fresh simulation event);
  //  * never touched: zero-fill fault — a frame is reclaimed but no I/O happens;
  //  * previously evicted: a frame is reclaimed and the page is read back from disk;
  //    `done` fires when the read completes.
  // `done_key` is the completion's checkpoint identity; callers that pass a non-null
  // `done` must supply one or the run cannot be snapshotted while the access is pending.
  void Access(AddressSpace& as, uint64_t vpn, bool write, InlineCallback done,
              ResumeKey done_key = {});

  // Touches [first, first+count). Previously-evicted pages are clustered into
  // up-to-`cluster_pages` contiguous disk reads issued back to back; `done` fires when
  // the last read completes (immediately if nothing needs I/O).
  void AccessRange(AddressSpace& as, uint64_t first, size_t count, bool write,
                   InlineCallback done, ResumeKey done_key = {});

  // Test/setup utility: marks [first, first+count) as swapped out (previously resident,
  // now on disk) without simulating the history that put it there.
  void MarkSwappedOut(AddressSpace& as, uint64_t first, size_t count);

  // Makes [first, first+count) resident instantly with no simulated I/O — used to set up
  // initial conditions (a login's processes are loaded before the experiment starts).
  void Prefault(AddressSpace& as, uint64_t first, size_t count);

  size_t total_frames() const { return config_.total_frames; }
  size_t frames_used() const { return frames_used_; }
  size_t frames_free() const { return config_.total_frames - frames_used_; }
  bool IsSaturated() const { return frames_free() == 0; }

  int64_t faults() const { return faults_; }
  int64_t hits() const { return hits_; }
  int64_t evictions() const { return evictions_; }
  int64_t dirty_writebacks() const { return dirty_writebacks_; }
  int64_t protected_skips() const { return protected_skips_; }
  // Shared-segment gauges: live segments, total attaches (first acquires excluded), and
  // accesses that joined an in-flight page-in instead of issuing their own disk read.
  size_t shared_segments() const { return shared_.size(); }
  int64_t shared_attaches() const { return shared_attaches_; }
  int64_t coalesced_waits() const { return coalesced_waits_; }

  const PagerConfig& config() const { return config_; }

  // Observability: faults/evictions/writebacks become mem-category instants and each
  // AccessRange that touches the disk becomes a "page-in" span. One branch when null.
  void SetTracer(Tracer* tracer);

  // Flight recorder: faulting accesses become one batched "faults" mem instant each
  // (faulted page count + address space) and disk-touching AccessRanges "page-in"
  // spans. One branch when null.
  void SetFlightRecorder(FlightRecorder* recorder) { recorder_ = recorder; }

  // Checkpoint/restore. The pager's asynchronous machinery is reified as data — every
  // incomplete Access/AccessRange is a PagerOp record (fan-in count, remaining run
  // chain, covered in-flight keys, completion ResumeKey), so SaveTo serializes the frame
  // slab, recency list, address spaces, shared-segment refcounts, and the full op table,
  // and LoadFrom re-arms the pending issue/fire events. Chain-step disk completions
  // restore through the registered-restorer table: call RegisterRestorers before any
  // LoadFrom.
  void RegisterRestorers(EventRearm& plan);
  void SaveTo(SnapshotWriter& w) const;
  void LoadFrom(SnapshotReader& r, EventRearm& plan);

 private:
  struct FramesKey {
    static uint64_t Of(const AddressSpace& as, uint64_t vpn) {
      return (as.id() << 44) | vpn;
    }
  };
  static constexpr uint32_t kNilFrame = 0xFFFFFFFFu;
  // One physical frame: who holds it, and its neighbours in the global recency list
  // (prev toward LRU, next toward MRU). Freed slots chain through `next`.
  struct Frame {
    AddressSpace* as = nullptr;
    uint64_t vpn = 0;
    uint32_t prev = kNilFrame;
    uint32_t next = kNilFrame;
  };
  // One incomplete Access/AccessRange, reified so a snapshot can serialize it. The op
  // completes (trace span + `done`) when `remaining` signals arrive: one from its own
  // clustered-read chain (if it has one) plus one from every in-flight read it joined.
  // Pages covered by an op's own reads are already marked resident (MakeResident is
  // synchronous bookkeeping), so a second session touching a shared page mid-read joins
  // the owning op's waiter list and stalls until the same disk completion — one I/O,
  // every mapping session delayed exactly once.
  struct PagerOp {
    size_t remaining = 0;
    InlineCallback done;  // may be null
    ResumeKey done_key;
    // Own I/O chain (empty when the op only joins others' reads). runs[next_run] is the
    // clustered read currently on the disk (or about to be issued when `throttled`).
    std::vector<int> runs;
    size_t next_run = 0;
    std::vector<uint64_t> keys;  // in_flight_ entries this op's chain covers
    bool throttled = false;      // chain issue delayed; a pending issue event exists
    // Ops that joined this op's in-flight reads; signaled when the chain lands.
    std::vector<uint64_t> waiter_ops;
    // Page-in trace-span state (the span closes at completion).
    bool traced = false;
    TimePoint access_start;
    int64_t count = 0;
    int64_t io_pages = 0;
  };
  // A pending pager-internal event re-armed on restore: either an op-fire (zero-delay or
  // throttled completion signal) or a throttled chain issue.
  struct PendingOpEvent {
    EventId ev;
    uint64_t op = 0;
  };

  // Marks the page resident, evicting as necessary. Returns true if the page had to be
  // faulted (was not resident).
  bool MakeResident(AddressSpace& as, uint64_t vpn, bool write);
  void EvictOneFrame(const AddressSpace& for_whom);
  void TouchLru(AddressSpace& as, uint64_t vpn);
  // Frame-slab plumbing: allocate a slot (free list first) linked at the MRU tail /
  // unthread a slot from the recency list / return a slot to the free list.
  uint32_t AllocFrame(AddressSpace& as, uint64_t vpn);
  void UnlinkFrame(uint32_t f);
  void LinkFrameAtTail(uint32_t f);
  void FreeFrame(uint32_t f);
  Duration ThrottleFor(const AddressSpace& as) const;
  // Drops every frame and in-flight entry belonging to `as` (teardown path).
  void DropFramesOf(AddressSpace& as);

  // Op machinery.
  uint64_t CreateOp(InlineCallback done, ResumeKey done_key);
  // One completion signal for `id`; completes the op at zero outstanding.
  void OpSignal(uint64_t id);
  void CompleteOp(uint64_t id);
  // Issues the op's current run on the disk.
  void IssueRead(uint64_t id);
  // The op's current clustered read landed: advance the chain or finish it.
  void OnChainStep(uint64_t id);
  // The op's whole chain landed: release its in-flight entries, signal joiners, then it.
  void ChainComplete(uint64_t id);
  // Deferred signals/issues, tracked so snapshots can re-arm them.
  void ScheduleOpFire(uint64_t id, Duration delay);
  void OnOpFire(uint64_t id);
  void ScheduleIssue(uint64_t id, Duration delay);
  void OnIssueFire(uint64_t id);

  Simulator& sim_;
  Disk& disk_;
  PagerConfig config_;
  Tracer* tracer_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  TraceTrack trace_track_;
  std::vector<std::unique_ptr<AddressSpace>> spaces_;
  std::vector<Frame> frames_;      // slab; indices live in AddressSpace page entries
  uint32_t lru_head_ = kNilFrame;  // least recently used
  uint32_t lru_tail_ = kNilFrame;  // most recently used
  uint32_t free_head_ = kNilFrame;
  size_t frames_used_ = 0;
  // Ordered maps: teardown and serialization iterate these, and restore rebuilds them,
  // so iteration order must be a function of contents alone.
  std::map<uint64_t, uint64_t> in_flight_;  // FramesKey -> owning op id
  std::map<uint64_t, PagerOp> ops_;
  uint64_t next_op_id_ = 1;
  std::vector<PendingOpEvent> fires_;
  std::vector<PendingOpEvent> issues_;

  struct SharedEntry {
    AddressSpace* space;
    int refs;
  };
  std::unordered_map<std::string, SharedEntry> shared_;

  int64_t faults_ = 0;
  int64_t hits_ = 0;
  int64_t evictions_ = 0;
  int64_t dirty_writebacks_ = 0;
  int64_t protected_skips_ = 0;
  int64_t shared_attaches_ = 0;
  int64_t coalesced_waits_ = 0;
  uint64_t next_as_id_ = 1;
};

}  // namespace tcs

#endif  // TCS_SRC_MEM_PAGER_H_
