#include "src/mem/disk.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/util/config_error.h"

namespace tcs {

DiskConfig Validated(DiskConfig config) {
  if (config.transfer_rate.bps() <= 0) {
    throw ConfigError("DiskConfig.transfer_rate", "transfer rate must be positive");
  }
  if (config.page_size.count() <= 0) {
    throw ConfigError("DiskConfig.page_size", "page size must be positive");
  }
  if (config.positioning_min < Duration::Zero() ||
      config.positioning_mean < Duration::Zero()) {
    throw ConfigError("DiskConfig.positioning", "positioning cost cannot be negative");
  }
  if (config.sequential_positioning_factor < 0.0 ||
      config.sequential_positioning_factor > 1.0) {
    throw ConfigError("DiskConfig.sequential_positioning_factor",
                      "sequential positioning factor must be in [0, 1]");
  }
  return config;
}

Disk::Disk(Simulator& sim, Rng rng, DiskConfig config)
    : sim_(sim), rng_(rng), config_(Validated(config)) {}

Duration Disk::ServiceTime(int pages) {
  assert(pages > 0);
  double pos_ms = rng_.NextNormal(config_.positioning_mean.ToMillisF(),
                                  config_.positioning_stddev.ToMillisF());
  Duration positioning =
      std::max(config_.positioning_min, Duration::Micros(static_cast<int64_t>(pos_ms * 1e3)));
  Duration transfer = TransmissionDelay(config_.page_size, config_.transfer_rate);
  Duration service = positioning + transfer;
  if (pages > 1) {
    Duration extra_pos = positioning * config_.sequential_positioning_factor;
    service += (transfer + extra_pos) * (pages - 1);
  }
  return service;
}

void Disk::SetTracer(Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    trace_track_ = tracer_->RegisterTrack("mem", "disk");
  }
}

void Disk::Enqueue(const char* op, int pages, InlineCallback done) {
  Duration service = ServiceTime(pages);
  if (fault_ != nullptr) {
    // Stalls and retried I/O errors lengthen this request's occupancy of the device,
    // which queues behind-it requests too — exactly how a degraded spindle feels.
    service += fault_->Perturb(service);
  }
  TimePoint start = std::max(sim_.Now(), busy_until_);
  busy_until_ = start + service;
  total_busy_ += service;
  if (tracer_ != nullptr) {
    tracer_->Span(TraceCategory::kMem, op, trace_track_, start, busy_until_, "pages",
                  static_cast<int64_t>(pages), "queue_us", (start - sim_.Now()).ToMicros());
  }
  if (done) {
    sim_.At(busy_until_, std::move(done));
  }
}

void Disk::Read(int pages, InlineCallback done) {
  ++reads_;
  pages_read_ += pages;
  Enqueue("disk-read", pages, std::move(done));
}

void Disk::Write(int pages, InlineCallback done) {
  ++writes_;
  pages_written_ += pages;
  Enqueue("disk-write", pages, std::move(done));
}

}  // namespace tcs
