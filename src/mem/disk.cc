#include "src/mem/disk.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <utility>

#include "src/util/config_error.h"

namespace tcs {

DiskConfig Validated(DiskConfig config) {
  if (config.transfer_rate.bps() <= 0) {
    throw ConfigError("DiskConfig.transfer_rate", "transfer rate must be positive");
  }
  if (config.page_size.count() <= 0) {
    throw ConfigError("DiskConfig.page_size", "page size must be positive");
  }
  if (config.positioning_min < Duration::Zero() ||
      config.positioning_mean < Duration::Zero()) {
    throw ConfigError("DiskConfig.positioning", "positioning cost cannot be negative");
  }
  if (config.sequential_positioning_factor < 0.0 ||
      config.sequential_positioning_factor > 1.0) {
    throw ConfigError("DiskConfig.sequential_positioning_factor",
                      "sequential positioning factor must be in [0, 1]");
  }
  return config;
}

Disk::Disk(Simulator& sim, Rng rng, DiskConfig config)
    : sim_(sim), rng_(rng), config_(Validated(config)) {}

Duration Disk::ServiceTime(int pages) {
  assert(pages > 0);
  double pos_ms = rng_.NextNormal(config_.positioning_mean.ToMillisF(),
                                  config_.positioning_stddev.ToMillisF());
  Duration positioning =
      std::max(config_.positioning_min, Duration::Micros(static_cast<int64_t>(pos_ms * 1e3)));
  Duration transfer = TransmissionDelay(config_.page_size, config_.transfer_rate);
  Duration service = positioning + transfer;
  if (pages > 1) {
    Duration extra_pos = positioning * config_.sequential_positioning_factor;
    service += (transfer + extra_pos) * (pages - 1);
  }
  return service;
}

void Disk::SetTracer(Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    trace_track_ = tracer_->RegisterTrack("mem", "disk");
  }
}

void Disk::Enqueue(const char* op, int pages, InlineCallback done, ResumeKey key) {
  Duration service = ServiceTime(pages);
  if (fault_ != nullptr) {
    // Stalls and retried I/O errors lengthen this request's occupancy of the device,
    // which queues behind-it requests too — exactly how a degraded spindle feels.
    service += fault_->Perturb(service);
  }
  TimePoint start = std::max(sim_.Now(), busy_until_);
  busy_until_ = start + service;
  total_busy_ += service;
  if (tracer_ != nullptr) {
    tracer_->Span(TraceCategory::kMem, op, trace_track_, start, busy_until_, "pages",
                  static_cast<int64_t>(pages), "queue_us", (start - sim_.Now()).ToMicros());
  }
  if (done) {
    pending_.push_back(PendingIo{EventId(), key});
    pending_.back().ev =
        sim_.At(busy_until_, [this, fn = std::move(done)]() mutable {
          assert(!pending_.empty());
          pending_.erase(pending_.begin());
          fn();
        });
  }
}

void Disk::Read(int pages, InlineCallback done, ResumeKey key) {
  ++reads_;
  pages_read_ += pages;
  Enqueue("disk-read", pages, std::move(done), key);
}

void Disk::Write(int pages, InlineCallback done, ResumeKey key) {
  ++writes_;
  pages_written_ += pages;
  Enqueue("disk-write", pages, std::move(done), key);
}

void Disk::SaveTo(SnapshotWriter& w) const {
  for (uint64_t word : rng_.state()) {
    w.U64(word);
  }
  w.Time(busy_until_);
  w.I64(reads_);
  w.I64(writes_);
  w.I64(pages_read_);
  w.I64(pages_written_);
  w.Dur(total_busy_);
  w.U64(pending_.size());
  for (const PendingIo& io : pending_) {
    uint64_t seq = 0;
    TimePoint when;
    if (!sim_.PendingInfo(io.ev, &seq, &when)) {
      throw SnapshotError("disk.pending", "completion record is stale");
    }
    if (io.key.empty()) {
      throw SnapshotError("disk.pending",
                          "outstanding I/O completion has no ResumeKey; attach one at the "
                          "Read/Write site to make this workload checkpointable");
    }
    w.U64(seq);
    w.Time(when);
    io.key.SaveTo(w);
  }
}

void Disk::LoadFrom(SnapshotReader& r, EventRearm& plan) {
  std::array<uint64_t, 4> state;
  for (uint64_t& word : state) {
    word = r.U64();
  }
  rng_.set_state(state);
  busy_until_ = r.Time();
  reads_ = r.I64();
  writes_ = r.I64();
  pages_read_ = r.I64();
  pages_written_ = r.I64();
  total_busy_ = r.Dur();
  pending_.clear();
  uint64_t n = r.U64();
  pending_.reserve(n);  // EventId out-pointers below must stay stable
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t seq = r.U64();
    TimePoint when = r.Time();
    ResumeKey key = ResumeKey::LoadFrom(r);
    pending_.push_back(PendingIo{EventId(), key});
    plan.Schedule(
        "disk", seq, when,
        [this, thunk = plan.Build(key)] {
          assert(!pending_.empty());
          pending_.erase(pending_.begin());
          thunk();
        },
        &pending_.back().ev);
  }
}

}  // namespace tcs
