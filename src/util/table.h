// Plain-text result tables for benchmark output.
//
// Benches print the same rows the paper's tables/figures report; TextTable renders an
// aligned monospace table and can also emit CSV for plotting.

#ifndef TCS_SRC_UTIL_TABLE_H_
#define TCS_SRC_UTIL_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tcs {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Row cells; missing cells render empty, extra cells are an error (asserted).
  void AddRow(std::vector<std::string> cells);

  // Convenience formatters.
  static std::string Num(int64_t v);             // with thousands separators: 1,234,567
  static std::string Fixed(double v, int prec);  // fixed-point
  static std::string Percent(double frac, int prec = 1);  // 0.123 -> "12.3%"

  std::string Render() const;     // aligned monospace table with header rule
  std::string RenderCsv() const;  // RFC-4180-ish CSV

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tcs

#endif  // TCS_SRC_UTIL_TABLE_H_
