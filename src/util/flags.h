// Minimal typed command-line flag parser for the tools and harnesses.
//
// Supports `--name=value`, `--name value`, bare boolean `--name`, and positional
// arguments. Unknown flags are errors (surfaced via error()); typed getters validate and
// report, so a tool can parse everything and then check error() once.

#ifndef TCS_SRC_UTIL_FLAGS_H_
#define TCS_SRC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tcs {

class FlagSet {
 public:
  // Parses argv[1..). `known` lists every accepted flag name (without the leading
  // dashes); anything else is an error.
  FlagSet(int argc, const char* const* argv, std::vector<std::string> known);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  // Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const { return values_.contains(name); }

  // Typed getters: return `fallback` when the flag is absent; set error() when present
  // but malformed.
  std::string GetString(const std::string& name, const std::string& fallback = "");
  int64_t GetInt(const std::string& name, int64_t fallback = 0);
  double GetDouble(const std::string& name, double fallback = 0.0);
  // A bare `--name` or `--name=true|false`.
  bool GetBool(const std::string& name, bool fallback = false);

 private:
  void SetError(const std::string& message);

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace tcs

#endif  // TCS_SRC_UTIL_FLAGS_H_
