// Bucketed time-series accumulator.
//
// Used everywhere a figure plots "X vs time": CPU utilization per 100 ms bucket (Fig. 1),
// network load per second (Figs. 4/5), cache hit ratio over time (Fig. 6). Values are
// accumulated into fixed-width buckets of virtual time; the series can then be read out as
// (bucket midpoint, sum | mean | rate) rows.

#ifndef TCS_SRC_UTIL_TIME_SERIES_H_
#define TCS_SRC_UTIL_TIME_SERIES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/snapshot.h"
#include "src/sim/time.h"

namespace tcs {

class TimeSeries {
 public:
  explicit TimeSeries(Duration bucket_width);

  // Adds `value` at time `t`. Buckets are created on demand; out-of-order adds are fine.
  void Add(TimePoint t, double value);

  // Adds `value` spread uniformly over [start, end) — used for busy intervals that span
  // bucket boundaries (e.g. a 250 ms CPU burst contributes to three 100 ms buckets).
  void AddSpread(TimePoint start, TimePoint end, double value);

  Duration bucket_width() const { return bucket_width_; }
  size_t bucket_count() const { return sums_.size(); }

  // Bucket accessors. `i` must be < bucket_count().
  TimePoint BucketStart(size_t i) const;
  TimePoint BucketMid(size_t i) const;
  double Sum(size_t i) const { return sums_[i]; }
  int64_t Count(size_t i) const { return counts_[i]; }
  double Mean(size_t i) const;

  // Sum(i) / bucket_width — e.g. bytes per bucket → bytes/sec when width is 1 s.
  double RatePerSecond(size_t i) const;

  // Total across all buckets.
  double TotalSum() const;

  // Checkpoint/restore: the exact bucket arrays (bucket_width_ is construction config
  // and is not serialized — a restored series must be rebuilt with the same width).
  void SaveTo(SnapshotWriter& w) const {
    w.U64(sums_.size());
    for (double s : sums_) {
      w.F64(s);
    }
    for (int64_t c : counts_) {
      w.I64(c);
    }
  }
  void LoadFrom(SnapshotReader& r) {
    uint64_t n = r.U64();
    sums_.assign(n, 0.0);
    counts_.assign(n, 0);
    for (double& s : sums_) {
      s = r.F64();
    }
    for (int64_t& c : counts_) {
      c = r.I64();
    }
  }

 private:
  size_t BucketIndex(TimePoint t);

  Duration bucket_width_;
  std::vector<double> sums_;
  std::vector<int64_t> counts_;
};

}  // namespace tcs

#endif  // TCS_SRC_UTIL_TIME_SERIES_H_
