// A small, real LZ77-style codec.
//
// The LBX protocol model compresses actual message payloads with this codec, so measured
// compression ratios respond to payload entropy the way the real LBX stream compressor
// (which used a Lempel-Ziv variant) did. The format is byte-oriented:
//
//   control byte C:
//     0x00..0x7F : literal run of C+1 bytes follows
//     0x80..0xFF : match; length = (C & 0x7F) + kMinMatch, followed by a 2-byte
//                  little-endian backward offset (1-based, <= 64 KiB window)
//
// Round-trip (Compress then Decompress) is the identity; tests enforce this as a property.

#ifndef TCS_SRC_UTIL_LZ_H_
#define TCS_SRC_UTIL_LZ_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace tcs {

class LzCodec {
 public:
  static constexpr size_t kMinMatch = 4;
  static constexpr size_t kMaxMatch = 0x7F + kMinMatch;
  static constexpr size_t kWindow = 64 * 1024;

  // Compresses `input`. Output is never more than input.size() + input.size()/128 + 2.
  static std::vector<uint8_t> Compress(const std::vector<uint8_t>& input);

  // Decompresses; returns std::nullopt on malformed input (truncated stream, offset
  // pointing before the start of output).
  static std::optional<std::vector<uint8_t>> Decompress(const std::vector<uint8_t>& input);

  // Convenience: compressed size only (what the protocol models need on the hot path).
  static size_t CompressedSize(const std::vector<uint8_t>& input) {
    return Compress(input).size();
  }
};

}  // namespace tcs

#endif  // TCS_SRC_UTIL_LZ_H_
