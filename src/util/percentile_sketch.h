// Incremental exact-percentile sketch.
//
// Percentile consumers in the model interleave appends with queries: the capacity search
// reads p50/p99 stall latencies between probe rounds, attribution collects stage
// percentiles per report, and the latency recorder answers Percentile() mid-run. The
// classic store-then-sort approach pays a full O(n log n) re-sort at every query once a
// single sample has arrived since the last one.
//
// This sketch keeps the samples in two parts: a sorted main run and an unsorted pending
// delta. Appends are O(1) pushes into the delta. A query compacts: sort the (small)
// delta, then std::inplace_merge it into the main run — O(k log k + n) for k pending
// samples instead of O(n log n) over everything. Results are EXACT (every sample is
// retained; nothing is approximated) — the differential tests in util_stats_test compare
// it against the naive sort-and-scan on random streams.

#ifndef TCS_SRC_UTIL_PERCENTILE_SKETCH_H_
#define TCS_SRC_UTIL_PERCENTILE_SKETCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tcs {

template <typename T>
class PercentileSketch {
 public:
  void Add(T x) { pending_.push_back(x); }

  size_t size() const { return sorted_.size() + pending_.size(); }
  bool empty() const { return size() == 0; }

  // Fully sorted view of every sample added so far (compacts first).
  const std::vector<T>& sorted() const {
    Compact();
    return sorted_;
  }

  // Exact nearest-rank percentile: the sample at rank ceil(q * n), clamped to [1, n].
  // The result is always an actually observed value. With no samples every query below
  // returns the value-initialized sentinel T{} (0 for the numeric instantiations) —
  // a defined answer rather than an out-of-bounds read.
  T NearestRank(double q) const {
    if (empty()) {
      return T{};
    }
    Compact();
    auto n = static_cast<int64_t>(sorted_.size());
    auto rank = static_cast<int64_t>(q * static_cast<double>(n) + 0.999999999);
    rank = std::clamp<int64_t>(rank, 1, n);
    return sorted_[static_cast<size_t>(rank - 1)];
  }

  // Linear interpolation between the two ranks straddling q (SampleSet semantics).
  double Interpolated(double q) const {
    if (empty()) {
      return 0.0;
    }
    Compact();
    q = std::clamp(q, 0.0, 1.0);
    double rank = q * static_cast<double>(sorted_.size() - 1);
    auto lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return static_cast<double>(sorted_[lo]) * (1.0 - frac) +
           static_cast<double>(sorted_[hi]) * frac;
  }

  T Min() const {
    if (empty()) {
      return T{};
    }
    Compact();
    return sorted_.front();
  }
  T Max() const {
    if (empty()) {
      return T{};
    }
    Compact();
    return sorted_.back();
  }

 private:
  void Compact() const {
    if (pending_.empty()) {
      return;
    }
    std::sort(pending_.begin(), pending_.end());
    size_t main_size = sorted_.size();
    sorted_.insert(sorted_.end(), pending_.begin(), pending_.end());
    std::inplace_merge(sorted_.begin(),
                       sorted_.begin() + static_cast<ptrdiff_t>(main_size),
                       sorted_.end());
    pending_.clear();
  }

  mutable std::vector<T> sorted_;   // invariant: ascending
  mutable std::vector<T> pending_;  // appended since the last compaction
};

}  // namespace tcs

#endif  // TCS_SRC_UTIL_PERCENTILE_SKETCH_H_
