// Structured configuration errors.
//
// Model constructors validate their configs up front and throw ConfigError instead of
// letting a zero rate or an undersized MTU surface later as a division by zero, an
// infinite loop, or a silently wrong experiment. The exception carries the offending
// field so drivers (tcsctl, sweep runners) can report it precisely.

#ifndef TCS_SRC_UTIL_CONFIG_ERROR_H_
#define TCS_SRC_UTIL_CONFIG_ERROR_H_

#include <stdexcept>
#include <string>
#include <utility>

namespace tcs {

class ConfigError : public std::runtime_error {
 public:
  ConfigError(std::string field, std::string reason)
      : std::runtime_error(field + ": " + reason),
        field_(std::move(field)),
        reason_(std::move(reason)) {}

  // The dotted config field that failed validation, e.g. "LinkConfig.rate".
  const std::string& field() const { return field_; }
  const std::string& reason() const { return reason_; }

 private:
  std::string field_;
  std::string reason_;
};

}  // namespace tcs

#endif  // TCS_SRC_UTIL_CONFIG_ERROR_H_
