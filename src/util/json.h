// Minimal JSON object builder: appends comma-separated "key": value pairs.
//
// Shared by the core report renderers and the obs postmortem bundles so both emit the
// same deterministic number formats (%.9g doubles, exact integers). Keys are literals
// and values numbers/strings without control characters, so escaping is limited to
// quotes and backslashes.

#ifndef TCS_SRC_UTIL_JSON_H_
#define TCS_SRC_UTIL_JSON_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

namespace tcs {

class JsonObject {
 public:
  void Str(const char* key, const std::string& value) {
    Key(key);
    out_ += '"';
    for (char c : value) {
      if (c == '"' || c == '\\') {
        out_ += '\\';
      }
      out_ += c;
    }
    out_ += '"';
  }

  void Int(const char* key, int64_t value) {
    Key(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    out_ += buf;
  }

  void UInt(const char* key, uint64_t value) {
    Key(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out_ += buf;
  }

  void Bool(const char* key, bool value) {
    Key(key);
    out_ += value ? "true" : "false";
  }

  void Double(const char* key, double value) {
    Key(key);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    out_ += buf;
  }

  void Raw(const char* key, const std::string& json) {
    Key(key);
    out_ += json;
  }

  std::string Finish() { return "{" + out_ + "}"; }

 private:
  void Key(const char* key) {
    if (!out_.empty()) {
      out_ += ',';
    }
    out_ += '"';
    out_ += key;
    out_ += "\":";
  }

  std::string out_;
};

}  // namespace tcs

#endif  // TCS_SRC_UTIL_JSON_H_
