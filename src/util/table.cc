#include "src/util/table.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace tcs {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  assert(cells.size() <= headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(int64_t v) {
  char raw[32];
  std::snprintf(raw, sizeof(raw), "%lld", static_cast<long long>(v < 0 ? -v : v));
  std::string digits = raw;
  std::string out;
  size_t n = digits.size();
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  if (v < 0) {
    out.insert(out.begin(), '-');
  }
  return out;
}

std::string TextTable::Fixed(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string TextTable::Percent(double frac, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", prec, frac * 100.0);
  return buf;
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << "\n";
  };
  emit_row(headers_);
  size_t rule = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string TextTable::RenderCsv() const {
  std::ostringstream os;
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) {
      return s;
    }
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') {
        q += "\"\"";
      } else {
        q.push_back(ch);
      }
    }
    q.push_back('"');
    return q;
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        os << ",";
      }
      os << quote(cells[c]);
    }
    os << "\n";
  };
  emit_row(headers_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

}  // namespace tcs
