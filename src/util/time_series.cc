#include "src/util/time_series.h"

#include <algorithm>
#include <cassert>

namespace tcs {

TimeSeries::TimeSeries(Duration bucket_width) : bucket_width_(bucket_width) {
  assert(bucket_width.ToMicros() > 0);
}

size_t TimeSeries::BucketIndex(TimePoint t) {
  assert(t >= TimePoint::Zero());
  auto i = static_cast<size_t>(t.ToMicros() / bucket_width_.ToMicros());
  if (i >= sums_.size()) {
    sums_.resize(i + 1, 0.0);
    counts_.resize(i + 1, 0);
  }
  return i;
}

void TimeSeries::Add(TimePoint t, double value) {
  size_t i = BucketIndex(t);
  sums_[i] += value;
  ++counts_[i];
}

void TimeSeries::AddSpread(TimePoint start, TimePoint end, double value) {
  assert(end >= start);
  if (start == end) {
    Add(start, value);
    return;
  }
  double span_us = static_cast<double>((end - start).ToMicros());
  TimePoint cursor = start;
  while (cursor < end) {
    size_t i = BucketIndex(cursor);
    TimePoint bucket_end = BucketStart(i) + bucket_width_;
    TimePoint chunk_end = std::min(bucket_end, end);
    double frac = static_cast<double>((chunk_end - cursor).ToMicros()) / span_us;
    sums_[i] += value * frac;
    ++counts_[i];
    cursor = chunk_end;
  }
}

TimePoint TimeSeries::BucketStart(size_t i) const {
  return TimePoint::FromMicros(static_cast<int64_t>(i) * bucket_width_.ToMicros());
}

TimePoint TimeSeries::BucketMid(size_t i) const {
  return BucketStart(i) + bucket_width_ / 2;
}

double TimeSeries::Mean(size_t i) const {
  return counts_[i] > 0 ? sums_[i] / static_cast<double>(counts_[i]) : 0.0;
}

double TimeSeries::RatePerSecond(size_t i) const {
  return sums_[i] / bucket_width_.ToSecondsF();
}

double TimeSeries::TotalSum() const {
  double total = 0.0;
  for (double s : sums_) {
    total += s;
  }
  return total;
}

}  // namespace tcs
