// Streaming statistics and fixed-bin histograms.

#ifndef TCS_SRC_UTIL_STATS_H_
#define TCS_SRC_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/util/percentile_sketch.h"

namespace tcs {

// Welford's online algorithm: numerically stable mean/variance without storing samples.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance (the paper reports variance of all observed RTTs).
  double variance() const { return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0; }
  // Sample variance (n-1 denominator).
  double sample_variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  // Checkpoint/restore: the exact accumulator state, so a restored stream continues
  // bit-identically to the live one.
  struct State {
    int64_t count;
    double mean, m2, sum, min, max;
  };
  State state() const { return State{count_, mean_, m2_, sum_, min_, max_}; }
  void set_state(const State& s) {
    count_ = s.count;
    mean_ = s.mean;
    m2_ = s.m2;
    sum_ = s.sum;
    min_ = s.min;
    max_ = s.max;
  }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Histogram over [lo, hi) with uniform bins, plus underflow/overflow counters. Supports
// exact-bin queries and interpolated percentiles.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);

  size_t bin_count() const { return counts_.size(); }
  int64_t bin(size_t i) const { return counts_[i]; }
  double bin_lo(size_t i) const;
  double bin_hi(size_t i) const;
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  int64_t total() const { return total_; }

  // Linear-interpolated value at quantile q in [0,1]. Clamps to [lo, hi].
  double Percentile(double q) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
};

// Exact percentile estimator that stores all samples. Fine for per-experiment sample
// counts (thousands); use Histogram for unbounded streams. Queries interleaved with
// Add() pay an incremental merge of the new samples, not a full re-sort.
class SampleSet {
 public:
  void Add(double x);
  size_t size() const { return sketch_.size(); }
  bool empty() const { return sketch_.empty(); }
  double Percentile(double q) const;  // q in [0,1]; linear interpolation between ranks.
  double Mean() const;
  double Min() const;
  double Max() const;

 private:
  PercentileSketch<double> sketch_;
  double sum_ = 0.0;
};

}  // namespace tcs

#endif  // TCS_SRC_UTIL_STATS_H_
