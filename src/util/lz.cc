#include "src/util/lz.h"

#include <array>
#include <cstring>

namespace tcs {

namespace {

constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = 1u << kHashBits;

uint32_t HashAt(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashBits);
}

void EmitLiterals(const std::vector<uint8_t>& input, size_t start, size_t end,
                  std::vector<uint8_t>& out) {
  while (start < end) {
    size_t run = std::min<size_t>(end - start, 0x80);
    out.push_back(static_cast<uint8_t>(run - 1));
    out.insert(out.end(), input.begin() + static_cast<ptrdiff_t>(start),
               input.begin() + static_cast<ptrdiff_t>(start + run));
    start += run;
  }
}

}  // namespace

std::vector<uint8_t> LzCodec::Compress(const std::vector<uint8_t>& input) {
  std::vector<uint8_t> out;
  out.reserve(input.size() / 2 + 16);
  const size_t n = input.size();
  // Single-probe hash table of most recent position per hash — greedy, fast, and good
  // enough on the redundant payloads we generate.
  std::array<size_t, kHashSize> head;
  head.fill(SIZE_MAX);

  size_t i = 0;
  size_t literal_start = 0;
  while (n >= kMinMatch && i + kMinMatch <= n) {
    uint32_t h = HashAt(&input[i]);
    size_t cand = head[h];
    head[h] = i;
    size_t match_len = 0;
    if (cand != SIZE_MAX && cand < i && i - cand <= kWindow) {
      size_t limit = std::min(n - i, kMaxMatch);
      while (match_len < limit && input[cand + match_len] == input[i + match_len]) {
        ++match_len;
      }
    }
    if (match_len >= kMinMatch) {
      EmitLiterals(input, literal_start, i, out);
      size_t offset = i - cand;
      out.push_back(static_cast<uint8_t>(0x80 | (match_len - kMinMatch)));
      out.push_back(static_cast<uint8_t>(offset & 0xFF));
      out.push_back(static_cast<uint8_t>((offset >> 8) & 0xFF));
      // Insert hashes for the matched region (sparsely, every other byte, for speed).
      for (size_t j = i + 1; j + kMinMatch <= n && j < i + match_len; j += 2) {
        head[HashAt(&input[j])] = j;
      }
      i += match_len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  EmitLiterals(input, literal_start, n, out);
  return out;
}

std::optional<std::vector<uint8_t>> LzCodec::Decompress(const std::vector<uint8_t>& input) {
  std::vector<uint8_t> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    uint8_t c = input[i++];
    if (c < 0x80) {
      size_t run = static_cast<size_t>(c) + 1;
      if (i + run > n) {
        return std::nullopt;
      }
      out.insert(out.end(), input.begin() + static_cast<ptrdiff_t>(i),
                 input.begin() + static_cast<ptrdiff_t>(i + run));
      i += run;
    } else {
      if (i + 2 > n) {
        return std::nullopt;
      }
      size_t len = static_cast<size_t>(c & 0x7F) + kMinMatch;
      size_t offset = static_cast<size_t>(input[i]) | (static_cast<size_t>(input[i + 1]) << 8);
      i += 2;
      if (offset == 0 || offset > out.size()) {
        return std::nullopt;
      }
      // Byte-by-byte copy: overlapping matches (offset < len) replicate, as in LZ77.
      size_t src = out.size() - offset;
      for (size_t j = 0; j < len; ++j) {
        out.push_back(out[src + j]);
      }
    }
  }
  return out;
}

}  // namespace tcs
