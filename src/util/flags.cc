#include "src/util/flags.h"

#include <algorithm>
#include <cstdlib>

namespace tcs {

FlagSet::FlagSet(int argc, const char* const* argv, std::vector<std::string> known) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name = body;
    std::optional<std::string> value;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    }
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      SetError("unknown flag --" + name);
      continue;
    }
    if (!value.has_value()) {
      // `--name value` when the next token is not itself a flag; bare `--name` otherwise.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (values_.contains(name)) {
      SetError("flag --" + name + " given twice");
      continue;
    }
    values_[name] = *value;
  }
}

void FlagSet::SetError(const std::string& message) {
  if (error_.empty()) {
    error_ = message;
  }
}

std::string FlagSet::GetString(const std::string& name, const std::string& fallback) {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t FlagSet::GetInt(const std::string& name, int64_t fallback) {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    SetError("flag --" + name + " expects an integer, got '" + it->second + "'");
    return fallback;
  }
  return v;
}

double FlagSet::GetDouble(const std::string& name, double fallback) {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    SetError("flag --" + name + " expects a number, got '" + it->second + "'");
    return fallback;
  }
  return v;
}

bool FlagSet::GetBool(const std::string& name, bool fallback) {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  if (it->second == "true" || it->second == "1" || it->second == "yes") {
    return true;
  }
  if (it->second == "false" || it->second == "0" || it->second == "no") {
    return false;
  }
  SetError("flag --" + name + " expects a boolean, got '" + it->second + "'");
  return fallback;
}

}  // namespace tcs
