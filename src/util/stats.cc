#include "src/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tcs {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel combination.
  double delta = other.mean_ - mean_;
  int64_t n = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::Reset() {
  *this = RunningStats();
}

double RunningStats::stddev() const {
  return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto i = static_cast<size_t>((x - lo_) / bin_width_);
  if (i >= counts_.size()) {  // float edge case at hi_
    i = counts_.size() - 1;
  }
  ++counts_[i];
}

double Histogram::bin_lo(size_t i) const {
  return lo_ + bin_width_ * static_cast<double>(i);
}

double Histogram::bin_hi(size_t i) const {
  return lo_ + bin_width_ * static_cast<double>(i + 1);
}

double Histogram::Percentile(double q) const {
  if (total_ == 0) {
    return lo_;
  }
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) {
    return lo_;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * bin_width_;
    }
    cum = next;
  }
  return hi_;
}

void SampleSet::Add(double x) {
  sketch_.Add(x);
  sum_ += x;
}

double SampleSet::Percentile(double q) const {
  assert(!sketch_.empty());
  return sketch_.Interpolated(q);
}

double SampleSet::Mean() const {
  if (sketch_.empty()) {
    return 0.0;
  }
  return sum_ / static_cast<double>(sketch_.size());
}

double SampleSet::Min() const {
  assert(!sketch_.empty());
  return sketch_.Min();
}

double SampleSet::Max() const {
  assert(!sketch_.empty());
  return sketch_.Max();
}

}  // namespace tcs
