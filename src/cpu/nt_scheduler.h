// The NT / TSE scheduler model (§4.2.1 of the paper).
//
// 32 priority levels (0 lowest, 31 highest), preemptive, round-robin within a level.
// Implements the two interactivity mechanisms the paper analyzes:
//
//  * "Quantum stretching": foreground (GUI-class) threads receive the base quantum
//    multiplied by an administrator-set factor of 1, 2, or 3.
//  * "Priority boosting": a GUI thread woken to service a user input event is boosted to
//    priority 15 for two quanta, after which it decays back to its base priority.
//
// NT Workstation and TSE share this code and differ only in configuration (both use the
// 30 ms Pentium quantum; NT Server would use 180 ms).

#ifndef TCS_SRC_CPU_NT_SCHEDULER_H_
#define TCS_SRC_CPU_NT_SCHEDULER_H_

#include <array>
#include <deque>

#include "src/cpu/scheduler.h"

namespace tcs {

struct NtSchedulerConfig {
  Duration quantum = Duration::Millis(30);
  // Quantum stretching factor for GUI-class threads: 1, 2, or 3.
  int foreground_stretch = 1;
  // GUI input-event wake boost.
  bool gui_boost_enabled = true;
  int gui_boost_priority = 15;
  int gui_boost_quanta = 2;
};

// Default NT base priorities used by the OS profiles.
inline constexpr int kNtForegroundPriority = 9;   // foreground application threads
inline constexpr int kNtBackgroundPriority = 8;   // everything else in user sessions
inline constexpr int kNtSystemDaemonPriority = 13;  // Session Manager / Terminal Service

class NtScheduler final : public Scheduler {
 public:
  explicit NtScheduler(NtSchedulerConfig config = {});

  void OnReady(Thread& t, WakeReason reason) override;
  void OnPreempted(Thread& t) override;
  void OnQuantumExpired(Thread& t) override;
  void OnBlocked(Thread& t) override;
  Thread* PickNext() override;
  Duration QuantumFor(const Thread& t) const override;
  bool ShouldPreempt(const Thread& running, const Thread& woken) const override;
  size_t ReadyCount() const override { return ready_count_; }
  std::string name() const override { return "nt"; }
  void SaveQueues(SnapshotWriter& w) const override;
  void LoadQueues(SnapshotReader& r,
                  const std::function<Thread*(uint64_t)>& thread_by_id) override;

  const NtSchedulerConfig& config() const { return config_; }

 private:
  static constexpr int kLevels = 32;

  void PushBack(Thread& t);
  void PushFront(Thread& t);

  NtSchedulerConfig config_;
  std::array<std::deque<Thread*>, kLevels> queues_;
  size_t ready_count_ = 0;
};

}  // namespace tcs

#endif  // TCS_SRC_CPU_NT_SCHEDULER_H_
