// "Measuring lost time" (Endo et al., OSDI '96), as used by the paper for Figures 1 and 2.
//
// The original instrumented the Pentium performance counters and the system idle loop to
// find when, and for how long, the CPU was busy. Our simulated equivalent subscribes to
// Cpu segment notifications and coalesces abutting segments into *busy periods*. Each
// busy period is an "event" in the sense of Figure 2: a contiguous interval during which
// any user input arriving would have been delayed.
//
// Outputs:
//  * utilization(bucket) — CPU utilization per fixed time bucket (Figure 1)
//  * busy-period duration samples + the cumulative-latency curve (Figure 2)

#ifndef TCS_SRC_CPU_IDLE_PROFILER_H_
#define TCS_SRC_CPU_IDLE_PROFILER_H_

#include <unordered_map>
#include <vector>

#include "src/cpu/cpu.h"
#include "src/util/time_series.h"

namespace tcs {

class IdleLoopProfiler {
 public:
  // Attaches to `cpu`. `utilization_bucket` is the Figure-1 trace resolution (the paper
  // plots ~100 ms buckets over 10 s). `episode_gap` controls per-thread episode
  // attribution: consecutive run segments of one thread separated by no more than this
  // gap belong to one "event" in the lost-time sense — a Session Manager scan that runs
  // at 25% duty for a second is one 250 ms event, while 10 ms-spaced clock ticks remain
  // individual events.
  IdleLoopProfiler(Cpu& cpu, Duration utilization_bucket = Duration::Millis(100),
                   Duration episode_gap = Duration::Millis(8));

  IdleLoopProfiler(const IdleLoopProfiler&) = delete;
  IdleLoopProfiler& operator=(const IdleLoopProfiler&) = delete;

  // Closes the currently open busy period (call once at end of measurement).
  void Flush();

  // Raw busy-microsecond series; prefer UtilizationAt() for the [0,1] readout.
  const TimeSeries& utilization() const { return utilization_; }

  // CPU utilization of bucket `i` in [0,1].
  double UtilizationAt(size_t i) const {
    return utilization_.Sum(i) / static_cast<double>(utilization_.bucket_width().ToMicros());
  }

  // All observed busy-period durations (CPU-level: any thread, contiguous).
  const std::vector<Duration>& busy_periods() const { return busy_periods_; }

  // Per-thread event durations: the CPU time of each coalesced per-thread episode. These
  // are the "events" of Figure 2 (e.g. TSE's 250 ms and 400 ms entries).
  const std::vector<Duration>& episodes() const { return episodes_; }

  // Figure 2: points (event length, cumulative busy time of all events with length <= x),
  // sorted ascending. Built from per-thread episodes.
  struct CumulativePoint {
    Duration event_length;
    Duration cumulative_latency;
  };
  std::vector<CumulativePoint> CumulativeLatencyCurve() const;

  // Total busy time across all periods (the aggregate "idle-state load").
  Duration TotalBusy() const;

 private:
  struct EpisodeState {
    TimePoint last_end;
    Duration accumulated = Duration::Zero();
    bool open = false;
  };

  void OnSegment(TimePoint start, TimePoint end, const Thread& thread);

  TimeSeries utilization_;
  Duration episode_gap_;
  std::vector<Duration> busy_periods_;
  bool in_busy_period_ = false;
  TimePoint period_start_;
  TimePoint period_end_;
  std::vector<Duration> episodes_;
  std::unordered_map<uint64_t, EpisodeState> per_thread_;
};

}  // namespace tcs

#endif  // TCS_SRC_CPU_IDLE_PROFILER_H_
