#include "src/cpu/linux_scheduler.h"

#include <algorithm>

#include "src/util/config_error.h"

namespace tcs {

LinuxScheduler::LinuxScheduler(LinuxSchedulerConfig config) : config_(config) {
  if (!(config_.quantum > Duration::Zero())) {
    throw ConfigError("LinuxSchedulerConfig.quantum", "quantum must be positive");
  }
}

void LinuxScheduler::OnReady(Thread& t, WakeReason /*reason*/) {
  t.sched_priority = t.base_priority();  // nice value; no dynamic adjustment
  queue_.push_back(&t);
}

void LinuxScheduler::OnPreempted(Thread& t) {
  queue_.push_front(&t);
}

void LinuxScheduler::OnQuantumExpired(Thread& t) {
  queue_.push_back(&t);
}

void LinuxScheduler::OnBlocked(Thread& /*t*/) {}

Thread* LinuxScheduler::PickNext() {
  if (queue_.empty()) {
    return nullptr;
  }
  Thread* t = queue_.front();
  queue_.pop_front();
  return t;
}

Duration LinuxScheduler::QuantumFor(const Thread& t) const {
  // base_priority holds the nice value (-20 best .. +19 worst); scale the quantum the way
  // the 2.0 counter credit did. nice 0 => exactly one base quantum.
  int nice = std::clamp(t.base_priority(), -20, 19);
  int64_t scale_percent = 100 - nice * 4;  // -20 -> 180%, 0 -> 100%, +19 -> 24%
  return Duration::Micros(config_.quantum.ToMicros() * scale_percent / 100);
}

bool LinuxScheduler::ShouldPreempt(const Thread& /*running*/, const Thread& /*woken*/) const {
  // No wakeup preemption: the woken process waits for the queue to come around.
  return false;
}

void LinuxScheduler::SaveQueues(SnapshotWriter& w) const {
  w.U64(queue_.size());
  for (const Thread* t : queue_) {
    w.U64(t->id());
  }
}

void LinuxScheduler::LoadQueues(SnapshotReader& r,
                                const std::function<Thread*(uint64_t)>& thread_by_id) {
  queue_.clear();
  uint64_t n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    queue_.push_back(thread_by_id(r.U64()));
  }
}

}  // namespace tcs
