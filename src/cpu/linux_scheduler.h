// The Linux 2.0 scheduler as the paper characterizes it (§4.2.1, "Linux Scheduling"):
// round-robin with a fixed 10 ms quantum, no quantum-length control, and *no* facility for
// boosting GUI-related or foreground processes — X is user-level, so the kernel cannot
// tell which processes are interactive. Wakeups do not preempt the running process, so any
// input event risks waiting behind the full ready queue — the linear latency growth of
// Figure 3.
//
// Nice values are modelled as a simple multiplier on the quantum (coarse but faithful to
// the counter-based credit of the 2.0 "goodness" loop at equal priorities).

#ifndef TCS_SRC_CPU_LINUX_SCHEDULER_H_
#define TCS_SRC_CPU_LINUX_SCHEDULER_H_

#include <deque>

#include "src/cpu/scheduler.h"

namespace tcs {

struct LinuxSchedulerConfig {
  Duration quantum = Duration::Millis(10);
};

class LinuxScheduler final : public Scheduler {
 public:
  explicit LinuxScheduler(LinuxSchedulerConfig config = {});

  void OnReady(Thread& t, WakeReason reason) override;
  void OnPreempted(Thread& t) override;
  void OnQuantumExpired(Thread& t) override;
  void OnBlocked(Thread& t) override;
  Thread* PickNext() override;
  Duration QuantumFor(const Thread& t) const override;
  bool ShouldPreempt(const Thread& running, const Thread& woken) const override;
  size_t ReadyCount() const override { return queue_.size(); }
  std::string name() const override { return "linux"; }
  void SaveQueues(SnapshotWriter& w) const override;
  void LoadQueues(SnapshotReader& r,
                  const std::function<Thread*(uint64_t)>& thread_by_id) override;

 private:
  LinuxSchedulerConfig config_;
  std::deque<Thread*> queue_;
};

}  // namespace tcs

#endif  // TCS_SRC_CPU_LINUX_SCHEDULER_H_
