#include "src/cpu/thread.h"

namespace tcs {

Thread::Thread(uint64_t id, std::string name, ThreadClass cls, int base_priority)
    : id_(id), name_(std::move(name)), cls_(cls), base_priority_(base_priority) {
  sched_priority = base_priority;
}

}  // namespace tcs
