// Evans et al.'s interactive SVR4 scheduler (1993 Summer USENIX), the paper's comparison
// point for what *good* interactive scheduling looks like (§4.2.1-4.2.2): keystroke
// latency stays constant and small even as load approaches 20.
//
// Model: two bands. The interactive (IA) band — GUI threads plus system daemons — has
// absolute priority over the timeshare (TS) band and preempts it on wakeup. Within each
// band, round-robin with a 10 ms quantum. Threads that are not statically GUI-class can
// earn IA membership through behaviour: a thread that consistently blocks before
// exhausting its quantum accumulates an interactivity score; CPU hogs decay to TS.

#ifndef TCS_SRC_CPU_SVR4_SCHEDULER_H_
#define TCS_SRC_CPU_SVR4_SCHEDULER_H_

#include <deque>

#include "src/cpu/scheduler.h"

namespace tcs {

struct Svr4SchedulerConfig {
  Duration quantum = Duration::Millis(10);
  // Score in [0,1]; at or above this a thread is treated as interactive.
  double ia_threshold = 0.5;
  // Exponential smoothing factor for the interactivity score update.
  double score_alpha = 0.3;
};

class Svr4InteractiveScheduler final : public Scheduler {
 public:
  explicit Svr4InteractiveScheduler(Svr4SchedulerConfig config = {});

  void OnReady(Thread& t, WakeReason reason) override;
  void OnPreempted(Thread& t) override;
  void OnQuantumExpired(Thread& t) override;
  void OnBlocked(Thread& t) override;
  Thread* PickNext() override;
  Duration QuantumFor(const Thread& t) const override;
  bool ShouldPreempt(const Thread& running, const Thread& woken) const override;
  size_t ReadyCount() const override { return ia_.size() + ts_.size(); }
  std::string name() const override { return "svr4-ia"; }
  void SaveQueues(SnapshotWriter& w) const override;
  void LoadQueues(SnapshotReader& r,
                  const std::function<Thread*(uint64_t)>& thread_by_id) override;

  // Exposed for the memory-throttling ablation: whether the scheduler currently considers
  // `t` interactive (and therefore protected).
  bool IsInteractive(const Thread& t) const;

 private:
  Svr4SchedulerConfig config_;
  std::deque<Thread*> ia_;
  std::deque<Thread*> ts_;
};

}  // namespace tcs

#endif  // TCS_SRC_CPU_SVR4_SCHEDULER_H_
