// Simulated kernel threads.
//
// A Thread is a queue of WorkItems (CPU bursts with completion callbacks) plus the
// scheduling state the scheduler implementations maintain. Threads are created and owned
// by a Cpu; model components hold non-owning Thread pointers.

#ifndef TCS_SRC_CPU_THREAD_H_
#define TCS_SRC_CPU_THREAD_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/sim/snapshot.h"
#include "src/sim/time.h"

namespace tcs {

// How the OS classifies a thread. Schedulers use this for boosting / band placement:
//  kGui    — thread of an interactive application in a user session (editor, shell UI)
//  kDaemon — system service (session manager, terminal service, kflushd)
//  kBatch  — background compute (the paper's `sink` CPU hog)
enum class ThreadClass { kGui, kDaemon, kBatch };

enum class ThreadState { kBlocked, kReady, kRunning, kTerminated };

// Why a blocked thread was made runnable. NT-style schedulers boost differently by cause.
enum class WakeReason { kInputEvent, kIoComplete, kOther };

// A unit of CPU demand. When the thread has accumulated `cost` of CPU time on this item,
// `on_complete` fires (in simulation context; it may post more work, send messages, etc.).
// `key` is the checkpointable identity of `on_complete`: a work item whose completion
// callback is non-null must carry a ResumeKey, or snapshotting a run with that item still
// queued fails loudly (closures cannot be serialized).
struct WorkItem {
  Duration cost;
  std::function<void()> on_complete;
  WakeReason wake_reason = WakeReason::kOther;
  ResumeKey key;
};

class Thread {
 public:
  Thread(uint64_t id, std::string name, ThreadClass cls, int base_priority);

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  ThreadClass thread_class() const { return cls_; }
  ThreadState state() const { return state_; }
  int base_priority() const { return base_priority_; }

  // --- Work queue (managed by Cpu) ---
  bool HasWork() const { return !work_.empty(); }
  WorkItem& CurrentWork() { return work_.front(); }
  void PushWork(WorkItem item) { work_.push_back(std::move(item)); }
  void PopWork() { work_.pop_front(); }
  size_t QueuedWork() const { return work_.size(); }
  // Checkpoint/restore: the full queue for serialization, and a reset hook so restore can
  // replace reconstruction-time work with the snapshot's.
  const std::deque<WorkItem>& work_items() const { return work_; }
  void ClearWork() { work_.clear(); }

  // CPU time still owed to the current work item.
  Duration remaining() const { return remaining_; }
  void set_remaining(Duration d) { remaining_ = d; }

  // --- Scheduler scratch state ---
  // Effective (possibly boosted) priority. Interpretation is scheduler-specific: larger is
  // better on NT, smaller is better on Unix-style schedulers.
  int sched_priority = 0;
  // Quanta of boost remaining (NT GUI boost).
  int boost_quanta = 0;
  // Portion of the current quantum already consumed.
  Duration quantum_used = Duration::Zero();
  // Set by Svr4InteractiveScheduler: recent sleep-time based interactivity score.
  double interactivity = 0.0;
  // Tracer-interned copy of name() (set by Cpu::SetTracer / CreateThread). Trace events
  // referencing the thread use this pointer, which outlives the thread itself.
  const char* trace_name = nullptr;

  // --- Lifetime / accounting ---
  Duration cpu_time() const { return cpu_time_; }
  void AccountCpu(Duration d) { cpu_time_ += d; }
  void set_cpu_time(Duration d) { cpu_time_ = d; }
  int64_t dispatch_count() const { return dispatch_count_; }
  void CountDispatch() { ++dispatch_count_; }
  void set_dispatch_count(int64_t n) { dispatch_count_ = n; }
  TimePoint last_ready_at() const { return last_ready_at_; }
  void set_last_ready_at(TimePoint t) { last_ready_at_ = t; }
  TimePoint last_blocked_at() const { return last_blocked_at_; }
  void set_last_blocked_at(TimePoint t) { last_blocked_at_ = t; }

  void set_state(ThreadState s) { state_ = s; }

 private:
  uint64_t id_;
  std::string name_;
  ThreadClass cls_;
  int base_priority_;
  ThreadState state_ = ThreadState::kBlocked;

  std::deque<WorkItem> work_;
  Duration remaining_ = Duration::Zero();

  Duration cpu_time_ = Duration::Zero();
  int64_t dispatch_count_ = 0;
  TimePoint last_ready_at_ = TimePoint::Zero();
  TimePoint last_blocked_at_ = TimePoint::Zero();
};

}  // namespace tcs

#endif  // TCS_SRC_CPU_THREAD_H_
