#include "src/cpu/cpu.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/obs/flight_recorder.h"

namespace tcs {

Cpu::Cpu(Simulator& sim, std::unique_ptr<Scheduler> scheduler, CpuConfig config)
    : sim_(sim), scheduler_(std::move(scheduler)), config_(config) {
  assert(scheduler_ != nullptr);
  assert(config_.speed > 0.0);
  assert(config_.processors >= 1);
  processors_.resize(static_cast<size_t>(config_.processors));
  for (size_t p = 0; p < processors_.size(); ++p) {
    processors_[p].index = static_cast<int>(p);
  }
}

Thread* Cpu::CreateThread(std::string name, ThreadClass cls, int base_priority) {
  threads_.push_back(
      std::make_unique<Thread>(next_thread_id_++, std::move(name), cls, base_priority));
  Thread* t = threads_.back().get();
  if (tracer_ != nullptr) {
    t->trace_name = tracer_->Intern(t->name());
  }
  return t;
}

void Cpu::SetTracer(Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) {
    return;
  }
  cpu_tracks_.clear();
  for (size_t p = 0; p < processors_.size(); ++p) {
    cpu_tracks_.push_back(tracer_->RegisterTrack("cpu", "cpu" + std::to_string(p)));
  }
  scheduler_->SetTracer(tracer_, tracer_->RegisterTrack("cpu", "sched"));
  for (const auto& t : threads_) {
    t->trace_name = tracer_->Intern(t->name());
  }
}

bool Cpu::IsIdle() const {
  for (const Processor& proc : processors_) {
    if (proc.running != nullptr) {
      return false;
    }
  }
  return true;
}

Duration Cpu::ScaleCost(Duration cost) const {
  if (config_.speed == 1.0) {
    return cost;
  }
  return cost * (1.0 / config_.speed);
}

void Cpu::PostWork(Thread& t, Duration cost, std::function<void()> on_complete,
                   WakeReason reason) {
  assert(t.state() != ThreadState::kTerminated);
  Duration scaled = ScaleCost(cost);
  bool was_blocked = t.state() == ThreadState::kBlocked;
  // Invariant: a blocked thread has an empty work queue (threads block only when drained).
  assert(!was_blocked || !t.HasWork());
  t.PushWork(WorkItem{scaled, std::move(on_complete), reason});
  if (was_blocked) {
    t.set_remaining(scaled);
    Wake(t, reason);
  }
}

Cpu::Processor* Cpu::PreemptionVictim(const Thread& woken) {
  Processor* victim = nullptr;
  for (Processor& proc : processors_) {
    if (proc.running == nullptr) {
      continue;
    }
    if (!scheduler_->ShouldPreempt(*proc.running, woken)) {
      continue;
    }
    if (victim == nullptr ||
        proc.running->sched_priority < victim->running->sched_priority) {
      victim = &proc;
    }
  }
  return victim;
}

void Cpu::Wake(Thread& t, WakeReason reason) {
  t.set_state(ThreadState::kReady);
  t.set_last_ready_at(sim_.Now());
  scheduler_->OnReady(t, reason);
  bool have_idle = false;
  for (const Processor& proc : processors_) {
    have_idle = have_idle || proc.running == nullptr;
  }
  if (!have_idle) {
    if (Processor* victim = PreemptionVictim(t)) {
      Preempt(*victim);
    }
  }
  Dispatch();
}

void Cpu::Dispatch() {
  for (Processor& proc : processors_) {
    if (proc.running != nullptr) {
      continue;
    }
    Thread* next = scheduler_->PickNext();
    if (next == nullptr) {
      return;  // nothing runnable; remaining processors stay idle
    }
    next->set_state(ThreadState::kRunning);
    next->CountDispatch();
    proc.running = next;
    StartSegment(proc, *next, /*charge_switch=*/true);
  }
}

void Cpu::StartSegment(Processor& proc, Thread& t, bool charge_switch) {
  assert(proc.running == &t);
  assert(t.HasWork());
  Duration quantum = scheduler_->QuantumFor(t);
  Duration quantum_left = quantum - t.quantum_used;
  if (quantum_left <= Duration::Zero()) {
    // Degenerate: quantum already exhausted (can happen after a preemption returned the
    // thread with a sliver left). Treat as immediate expiry by granting a fresh quantum.
    t.quantum_used = Duration::Zero();
    quantum_left = quantum;
  }
  proc.segment_switch_cost = charge_switch ? config_.context_switch_cost : Duration::Zero();
  proc.segment_planned_work = std::min(quantum_left, t.remaining());
  proc.segment_start = sim_.Now();
  Duration total = proc.segment_switch_cost + proc.segment_planned_work;
  proc.segment_end = sim_.Schedule(total, [this, &proc] { OnSegmentEnd(proc); });
}

void Cpu::AccountSegment(Processor& proc, TimePoint end) {
  assert(proc.running != nullptr);
  Thread& t = *proc.running;
  Duration elapsed = end - proc.segment_start;
  Duration work_done = elapsed - proc.segment_switch_cost;
  if (work_done < Duration::Zero()) {
    work_done = Duration::Zero();  // preempted during the switch itself
  }
  work_done = std::min(work_done, proc.segment_planned_work);
  t.set_remaining(t.remaining() - work_done);
  t.quantum_used += work_done;
  t.AccountCpu(work_done);
  busy_time_ += elapsed;
  if (end > proc.segment_start) {
    for (const auto& obs : observers_) {
      obs(proc.segment_start, end, t);
    }
    if (tracer_ != nullptr) {
      tracer_->Span(TraceCategory::kCpu, t.trace_name,
                    cpu_tracks_[static_cast<size_t>(proc.index)], proc.segment_start, end,
                    "prio", t.sched_priority, "switch_us",
                    proc.segment_switch_cost.ToMicros());
    }
    if (recorder_ != nullptr) {
      recorder_->Span(FlightComponent::kCpu, "seg", proc.segment_start, end, 0,
                      static_cast<int64_t>(t.id()), t.sched_priority);
    }
  }
}

void Cpu::Preempt(Processor& proc) {
  assert(proc.running != nullptr);
  sim_.Cancel(proc.segment_end);
  AccountSegment(proc, sim_.Now());
  Thread& t = *proc.running;
  if (tracer_ != nullptr) {
    tracer_->Instant(TraceCategory::kCpu, "preempt",
                     cpu_tracks_[static_cast<size_t>(proc.index)], sim_.Now(), "thread",
                     static_cast<int64_t>(t.id()));
  }
  if (recorder_ != nullptr) {
    recorder_->Instant(FlightComponent::kSched, "preempt", sim_.Now(), 0,
                       static_cast<int64_t>(t.id()));
  }
  proc.running = nullptr;
  t.set_state(ThreadState::kReady);
  t.set_last_ready_at(sim_.Now());
  scheduler_->OnPreempted(t);
}

void Cpu::OnSegmentEnd(Processor& proc) {
  assert(proc.running != nullptr);
  AccountSegment(proc, sim_.Now());
  Thread& t = *proc.running;
  if (t.remaining().IsZero()) {
    // Current work item complete.
    WorkItem item = std::move(t.CurrentWork());
    t.PopWork();
    if (t.HasWork()) {
      // More queued demand: keep running within the same quantum, no switch cost.
      t.set_remaining(t.CurrentWork().cost);
      StartSegment(proc, t, /*charge_switch=*/false);
    } else {
      // Drained: block until more work arrives. Fresh quantum on next wake.
      t.set_state(ThreadState::kBlocked);
      t.set_last_blocked_at(sim_.Now());
      t.quantum_used = Duration::Zero();
      scheduler_->OnBlocked(t);
      proc.running = nullptr;
    }
    if (item.on_complete) {
      // Defer to a fresh event so callbacks see a settled engine (and cannot re-enter
      // mid-transition).
      sim_.Schedule(Duration::Zero(), std::move(item.on_complete));
    }
  } else {
    // Quantum expired with work left. A fresh quantum is granted on the next dispatch;
    // boost decay is the scheduler's business.
    t.quantum_used = Duration::Zero();
    t.set_state(ThreadState::kReady);
    t.set_last_ready_at(sim_.Now());
    scheduler_->OnQuantumExpired(t);
    proc.running = nullptr;
  }
  Dispatch();
}

}  // namespace tcs
