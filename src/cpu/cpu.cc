#include "src/cpu/cpu.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/obs/flight_recorder.h"

namespace tcs {

Cpu::Cpu(Simulator& sim, std::unique_ptr<Scheduler> scheduler, CpuConfig config)
    : sim_(sim), scheduler_(std::move(scheduler)), config_(config) {
  assert(scheduler_ != nullptr);
  assert(config_.speed > 0.0);
  assert(config_.processors >= 1);
  processors_.resize(static_cast<size_t>(config_.processors));
  for (size_t p = 0; p < processors_.size(); ++p) {
    processors_[p].index = static_cast<int>(p);
  }
}

Thread* Cpu::CreateThread(std::string name, ThreadClass cls, int base_priority) {
  threads_.push_back(
      std::make_unique<Thread>(next_thread_id_++, std::move(name), cls, base_priority));
  Thread* t = threads_.back().get();
  if (tracer_ != nullptr) {
    t->trace_name = tracer_->Intern(t->name());
  }
  return t;
}

void Cpu::SetTracer(Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) {
    return;
  }
  cpu_tracks_.clear();
  for (size_t p = 0; p < processors_.size(); ++p) {
    cpu_tracks_.push_back(tracer_->RegisterTrack("cpu", "cpu" + std::to_string(p)));
  }
  scheduler_->SetTracer(tracer_, tracer_->RegisterTrack("cpu", "sched"));
  for (const auto& t : threads_) {
    t->trace_name = tracer_->Intern(t->name());
  }
}

bool Cpu::IsIdle() const {
  for (const Processor& proc : processors_) {
    if (proc.running != nullptr) {
      return false;
    }
  }
  return true;
}

Duration Cpu::ScaleCost(Duration cost) const {
  if (config_.speed == 1.0) {
    return cost;
  }
  return cost * (1.0 / config_.speed);
}

void Cpu::PostWork(Thread& t, Duration cost, std::function<void()> on_complete,
                   WakeReason reason, ResumeKey key) {
  assert(t.state() != ThreadState::kTerminated);
  Duration scaled = ScaleCost(cost);
  bool was_blocked = t.state() == ThreadState::kBlocked;
  // Invariant: a blocked thread has an empty work queue (threads block only when drained).
  assert(!was_blocked || !t.HasWork());
  t.PushWork(WorkItem{scaled, std::move(on_complete), reason, key});
  if (was_blocked) {
    t.set_remaining(scaled);
    Wake(t, reason);
  }
}

Cpu::Processor* Cpu::PreemptionVictim(const Thread& woken) {
  Processor* victim = nullptr;
  for (Processor& proc : processors_) {
    if (proc.running == nullptr) {
      continue;
    }
    if (!scheduler_->ShouldPreempt(*proc.running, woken)) {
      continue;
    }
    if (victim == nullptr ||
        proc.running->sched_priority < victim->running->sched_priority) {
      victim = &proc;
    }
  }
  return victim;
}

void Cpu::Wake(Thread& t, WakeReason reason) {
  t.set_state(ThreadState::kReady);
  t.set_last_ready_at(sim_.Now());
  scheduler_->OnReady(t, reason);
  bool have_idle = false;
  for (const Processor& proc : processors_) {
    have_idle = have_idle || proc.running == nullptr;
  }
  if (!have_idle) {
    if (Processor* victim = PreemptionVictim(t)) {
      Preempt(*victim);
    }
  }
  Dispatch();
}

void Cpu::Dispatch() {
  for (Processor& proc : processors_) {
    if (proc.running != nullptr) {
      continue;
    }
    Thread* next = scheduler_->PickNext();
    if (next == nullptr) {
      return;  // nothing runnable; remaining processors stay idle
    }
    next->set_state(ThreadState::kRunning);
    next->CountDispatch();
    proc.running = next;
    StartSegment(proc, *next, /*charge_switch=*/true);
  }
}

void Cpu::StartSegment(Processor& proc, Thread& t, bool charge_switch) {
  assert(proc.running == &t);
  assert(t.HasWork());
  Duration quantum = scheduler_->QuantumFor(t);
  Duration quantum_left = quantum - t.quantum_used;
  if (quantum_left <= Duration::Zero()) {
    // Degenerate: quantum already exhausted (can happen after a preemption returned the
    // thread with a sliver left). Treat as immediate expiry by granting a fresh quantum.
    t.quantum_used = Duration::Zero();
    quantum_left = quantum;
  }
  proc.segment_switch_cost = charge_switch ? config_.context_switch_cost : Duration::Zero();
  proc.segment_planned_work = std::min(quantum_left, t.remaining());
  proc.segment_start = sim_.Now();
  Duration total = proc.segment_switch_cost + proc.segment_planned_work;
  proc.segment_end = sim_.Schedule(total, [this, &proc] { OnSegmentEnd(proc); });
}

void Cpu::AccountSegment(Processor& proc, TimePoint end) {
  assert(proc.running != nullptr);
  Thread& t = *proc.running;
  Duration elapsed = end - proc.segment_start;
  Duration work_done = elapsed - proc.segment_switch_cost;
  if (work_done < Duration::Zero()) {
    work_done = Duration::Zero();  // preempted during the switch itself
  }
  work_done = std::min(work_done, proc.segment_planned_work);
  t.set_remaining(t.remaining() - work_done);
  t.quantum_used += work_done;
  t.AccountCpu(work_done);
  busy_time_ += elapsed;
  if (end > proc.segment_start) {
    for (const auto& obs : observers_) {
      obs(proc.segment_start, end, t);
    }
    if (tracer_ != nullptr) {
      tracer_->Span(TraceCategory::kCpu, t.trace_name,
                    cpu_tracks_[static_cast<size_t>(proc.index)], proc.segment_start, end,
                    "prio", t.sched_priority, "switch_us",
                    proc.segment_switch_cost.ToMicros());
    }
    if (recorder_ != nullptr) {
      recorder_->Span(FlightComponent::kCpu, "seg", proc.segment_start, end, 0,
                      static_cast<int64_t>(t.id()), t.sched_priority);
    }
  }
}

void Cpu::Preempt(Processor& proc) {
  assert(proc.running != nullptr);
  sim_.Cancel(proc.segment_end);
  AccountSegment(proc, sim_.Now());
  Thread& t = *proc.running;
  if (tracer_ != nullptr) {
    tracer_->Instant(TraceCategory::kCpu, "preempt",
                     cpu_tracks_[static_cast<size_t>(proc.index)], sim_.Now(), "thread",
                     static_cast<int64_t>(t.id()));
  }
  if (recorder_ != nullptr) {
    recorder_->Instant(FlightComponent::kSched, "preempt", sim_.Now(), 0,
                       static_cast<int64_t>(t.id()));
  }
  proc.running = nullptr;
  t.set_state(ThreadState::kReady);
  t.set_last_ready_at(sim_.Now());
  scheduler_->OnPreempted(t);
}

void Cpu::OnSegmentEnd(Processor& proc) {
  assert(proc.running != nullptr);
  AccountSegment(proc, sim_.Now());
  Thread& t = *proc.running;
  if (t.remaining().IsZero()) {
    // Current work item complete.
    WorkItem item = std::move(t.CurrentWork());
    t.PopWork();
    if (t.HasWork()) {
      // More queued demand: keep running within the same quantum, no switch cost.
      t.set_remaining(t.CurrentWork().cost);
      StartSegment(proc, t, /*charge_switch=*/false);
    } else {
      // Drained: block until more work arrives. Fresh quantum on next wake.
      t.set_state(ThreadState::kBlocked);
      t.set_last_blocked_at(sim_.Now());
      t.quantum_used = Duration::Zero();
      scheduler_->OnBlocked(t);
      proc.running = nullptr;
    }
    if (item.on_complete) {
      // Defer to a fresh event so callbacks see a settled engine (and cannot re-enter
      // mid-transition). The event is tracked with the item's ResumeKey so a snapshot
      // taken before it fires can name and re-arm it; zero-delay events fire in schedule
      // order, so popping the front record on firing keeps the list in sync.
      EventId id = sim_.Schedule(
          Duration::Zero(), [this, fn = std::move(item.on_complete)]() mutable {
            assert(!deferred_.empty());
            deferred_.erase(deferred_.begin());
            fn();
          });
      deferred_.push_back(DeferredCompletion{id, item.key});
    }
  } else {
    // Quantum expired with work left. A fresh quantum is granted on the next dispatch;
    // boost decay is the scheduler's business.
    t.quantum_used = Duration::Zero();
    t.set_state(ThreadState::kReady);
    t.set_last_ready_at(sim_.Now());
    scheduler_->OnQuantumExpired(t);
    proc.running = nullptr;
  }
  Dispatch();
}

Thread* Cpu::ThreadById(uint64_t id) const {
  for (const auto& t : threads_) {
    if (t->id() == id) {
      return t.get();
    }
  }
  throw SnapshotError("cpu.thread", "snapshot references thread id " + std::to_string(id) +
                                        " which the rebuilt Cpu does not have");
}

void Cpu::SaveTo(SnapshotWriter& w) const {
  w.U64(threads_.size());
  for (const auto& tp : threads_) {
    const Thread& t = *tp;
    // Identity, verified against the rebuilt topology on restore.
    w.U64(t.id());
    w.Str(t.name());
    w.U8(static_cast<uint8_t>(t.thread_class()));
    w.I64(t.base_priority());
    // Dynamic state.
    w.U8(static_cast<uint8_t>(t.state()));
    w.Dur(t.remaining());
    w.U64(t.work_items().size());
    for (const WorkItem& item : t.work_items()) {
      bool has_cb = static_cast<bool>(item.on_complete);
      if (has_cb && item.key.empty()) {
        throw SnapshotError("cpu.thread." + t.name(),
                            "queued work item has a completion callback but no ResumeKey; "
                            "attach one at the PostWork site to make this workload "
                            "checkpointable");
      }
      w.Dur(item.cost);
      w.U8(static_cast<uint8_t>(item.wake_reason));
      w.Bool(has_cb);
      item.key.SaveTo(w);
    }
    // Scheduler scratch.
    w.I64(t.sched_priority);
    w.I64(t.boost_quanta);
    w.Dur(t.quantum_used);
    w.F64(t.interactivity);
    // Accounting.
    w.Dur(t.cpu_time());
    w.I64(t.dispatch_count());
    w.Time(t.last_ready_at());
    w.Time(t.last_blocked_at());
  }
  w.U64(processors_.size());
  for (const Processor& proc : processors_) {
    bool running = proc.running != nullptr;
    w.Bool(running);
    if (!running) {
      continue;
    }
    uint64_t seq = 0;
    TimePoint when;
    if (!sim_.PendingInfo(proc.segment_end, &seq, &when)) {
      throw SnapshotError("cpu.processor" + std::to_string(proc.index),
                          "running processor has no pending segment-end event");
    }
    w.U64(proc.running->id());
    w.Time(proc.segment_start);
    w.Dur(proc.segment_switch_cost);
    w.Dur(proc.segment_planned_work);
    w.U64(seq);
    w.Time(when);
  }
  w.Dur(busy_time_);
  w.U64(next_thread_id_);
  scheduler_->SaveQueues(w);
  w.U64(deferred_.size());
  for (const DeferredCompletion& d : deferred_) {
    uint64_t seq = 0;
    TimePoint when;
    if (!sim_.PendingInfo(d.id, &seq, &when)) {
      throw SnapshotError("cpu.deferred", "deferred-completion record is stale");
    }
    if (d.key.empty()) {
      throw SnapshotError("cpu.deferred",
                          "pending completion callback has no ResumeKey; attach one at "
                          "the PostWork site to make this workload checkpointable");
    }
    w.U64(seq);
    w.Time(when);
    d.key.SaveTo(w);
  }
}

void Cpu::LoadFrom(SnapshotReader& r, EventRearm& plan) {
  uint64_t n_threads = r.U64();
  if (n_threads != threads_.size()) {
    throw SnapshotError("cpu.threads",
                        "snapshot has " + std::to_string(n_threads) +
                            " threads but the rebuilt Cpu has " +
                            std::to_string(threads_.size()));
  }
  for (auto& tp : threads_) {
    Thread& t = *tp;
    uint64_t id = r.U64();
    std::string name = r.Str();
    auto cls = static_cast<ThreadClass>(r.U8());
    int base_priority = static_cast<int>(r.I64());
    if (id != t.id() || name != t.name() || cls != t.thread_class() ||
        base_priority != t.base_priority()) {
      throw SnapshotError("cpu.thread." + name,
                          "thread topology drift: snapshot thread (id " +
                              std::to_string(id) + ", \"" + name +
                              "\") does not match rebuilt thread (id " +
                              std::to_string(t.id()) + ", \"" + t.name() + "\")");
    }
    t.set_state(static_cast<ThreadState>(r.U8()));
    t.set_remaining(r.Dur());
    t.ClearWork();
    uint64_t n_items = r.U64();
    for (uint64_t i = 0; i < n_items; ++i) {
      WorkItem item;
      item.cost = r.Dur();
      item.wake_reason = static_cast<WakeReason>(r.U8());
      bool has_cb = r.Bool();
      item.key = ResumeKey::LoadFrom(r);
      if (has_cb) {
        item.on_complete = plan.Build(item.key);
      }
      t.PushWork(std::move(item));
    }
    t.sched_priority = static_cast<int>(r.I64());
    t.boost_quanta = static_cast<int>(r.I64());
    t.quantum_used = r.Dur();
    t.interactivity = r.F64();
    t.set_cpu_time(r.Dur());
    t.set_dispatch_count(r.I64());
    t.set_last_ready_at(r.Time());
    t.set_last_blocked_at(r.Time());
  }
  uint64_t n_procs = r.U64();
  if (n_procs != processors_.size()) {
    throw SnapshotError("cpu.processors",
                        "snapshot has " + std::to_string(n_procs) +
                            " processors but the rebuilt Cpu has " +
                            std::to_string(processors_.size()));
  }
  for (Processor& proc : processors_) {
    proc.running = nullptr;
    proc.segment_end = EventId();
    proc.segment_start = TimePoint::Zero();
    proc.segment_switch_cost = Duration::Zero();
    proc.segment_planned_work = Duration::Zero();
    if (!r.Bool()) {
      continue;
    }
    proc.running = ThreadById(r.U64());
    proc.segment_start = r.Time();
    proc.segment_switch_cost = r.Dur();
    proc.segment_planned_work = r.Dur();
    uint64_t seq = r.U64();
    TimePoint when = r.Time();
    plan.Schedule(
        "cpu.segment_end", seq, when, [this, &proc] { OnSegmentEnd(proc); },
        &proc.segment_end);
  }
  busy_time_ = r.Dur();
  next_thread_id_ = r.U64();
  scheduler_->LoadQueues(r, [this](uint64_t id) { return ThreadById(id); });
  deferred_.clear();
  uint64_t n_deferred = r.U64();
  deferred_.reserve(n_deferred);  // EventId out-pointers below must stay stable
  for (uint64_t i = 0; i < n_deferred; ++i) {
    uint64_t seq = r.U64();
    TimePoint when = r.Time();
    ResumeKey key = ResumeKey::LoadFrom(r);
    deferred_.push_back(DeferredCompletion{EventId(), key});
    plan.Schedule(
        "cpu.deferred", seq, when,
        [this, thunk = plan.Build(key)] {
          assert(!deferred_.empty());
          deferred_.erase(deferred_.begin());
          thunk();
        },
        &deferred_.back().id);
  }
}

}  // namespace tcs
