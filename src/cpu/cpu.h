// Policy-free CPU execution engine.
//
// The Cpu dispatches Threads chosen by a Scheduler onto one or more processors, charging
// virtual time against the front WorkItem of each running thread in "segments". A segment
// ends when the work item completes, the quantum expires, or a higher-priority wakeup
// preempts. Completion callbacks are deferred to their own simulation event (same
// timestamp) so model code never re-enters the engine mid-transition.
//
// SMP: with config.processors > 1 the single ready queue feeds all processors (the
// NT/Linux model of the era); a wakeup preempts the weakest running thread that the
// scheduler policy says it may displace. With one processor (the default) behaviour is
// identical to the original uniprocessor engine.
//
// Segment observers receive every executed busy interval (including context-switch cost),
// which is exactly the instrumentation the paper's "measuring lost time" methodology
// needs.

#ifndef TCS_SRC_CPU_CPU_H_
#define TCS_SRC_CPU_CPU_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cpu/scheduler.h"
#include "src/cpu/thread.h"
#include "src/sim/simulator.h"

namespace tcs {

class FlightRecorder;

struct CpuConfig {
  // Relative processor speed. Work costs are divided by this, so 2.0 halves every burst —
  // used by the boost-threshold ablation (faster CPU brings operations under the 180 ms
  // boost grace period, as §4.2.1 predicts).
  double speed = 1.0;
  // Direct cost of a context switch, charged whenever a processor switches to a different
  // thread. This is what makes short quanta fragment execution (the paper's "latency
  // catch-22").
  Duration context_switch_cost = Duration::Micros(10);
  // Number of processors sharing the scheduler's ready queue.
  int processors = 1;
};

class Cpu {
 public:
  // Called at the end of every executed segment with its actual extent.
  using SegmentObserver =
      std::function<void(TimePoint start, TimePoint end, const Thread& thread)>;

  Cpu(Simulator& sim, std::unique_ptr<Scheduler> scheduler, CpuConfig config = {});

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  // Creates a thread owned by this Cpu. Starts blocked with no work.
  Thread* CreateThread(std::string name, ThreadClass cls, int base_priority);

  // Queues `cost` of CPU demand on `t` (scaled by config.speed); wakes `t` if blocked.
  // `on_complete` (may be null) runs when the burst has been fully executed. `key` is the
  // completion's checkpoint identity; callers that pass a non-null `on_complete` must
  // supply one or the run cannot be snapshotted while the item is outstanding.
  void PostWork(Thread& t, Duration cost, std::function<void()> on_complete = nullptr,
                WakeReason reason = WakeReason::kOther, ResumeKey key = {});

  void AddSegmentObserver(SegmentObserver obs) { observers_.push_back(std::move(obs)); }

  // Observability: registers one trace track per processor plus a policy track for the
  // scheduler, then emits every executed segment as a cpu-category span (named after the
  // running thread) and every preemption as an instant. Null tracer disables all of it at
  // the cost of one branch per segment.
  void SetTracer(Tracer* tracer);

  // Flight recorder: every executed segment becomes a compact cpu record (thread id +
  // priority args) and every preemption an instant. Null disables at one branch.
  void SetFlightRecorder(FlightRecorder* recorder) { recorder_ = recorder; }

  Scheduler& scheduler() { return *scheduler_; }
  const Scheduler& scheduler() const { return *scheduler_; }
  int processor_count() const { return static_cast<int>(processors_.size()); }
  // Thread running on processor `p` (nullptr when idle).
  Thread* running(int p = 0) const { return processors_[static_cast<size_t>(p)].running; }
  // True when every processor is idle.
  bool IsIdle() const;
  const CpuConfig& config() const { return config_; }
  Simulator& sim() { return sim_; }

  // Total CPU busy time (work + context switches) summed over all processors.
  Duration busy_time() const { return busy_time_; }

  // The execution time `cost` of demand actually occupies at this CPU's speed — the same
  // scaling PostWork applies, exposed so latency attribution can split a hop's elapsed
  // time into exact service vs. run-queue wait.
  Duration ScaledCost(Duration cost) const { return ScaleCost(cost); }

  // Checkpoint/restore. SaveTo serializes every thread's dynamic state (work queue with
  // completion keys, scheduler scratch, accounting), per-processor segment state, the
  // scheduler's ready queues, and the in-flight deferred-completion events. LoadFrom
  // verifies the rebuilt thread topology (id, name, class, base priority) against the
  // snapshot, overwrites dynamic state, and re-arms segment-end and completion events
  // through `plan` — completion callbacks are rebuilt from their ResumeKeys, so all
  // restorers must be registered before LoadFrom runs.
  void SaveTo(SnapshotWriter& w) const;
  void LoadFrom(SnapshotReader& r, EventRearm& plan);

  // Thread lookup by stable id; throws SnapshotError on an unknown id.
  Thread* ThreadById(uint64_t id) const;

 private:
  struct Processor {
    int index = 0;
    Thread* running = nullptr;
    EventId segment_end;
    TimePoint segment_start;
    Duration segment_switch_cost = Duration::Zero();
    Duration segment_planned_work = Duration::Zero();
  };

  // A completion callback handed to the simulator as a zero-delay event, tracked so a
  // snapshot can name it. Records are appended in schedule order and zero-delay events
  // fire in schedule order, so the front record always belongs to the next firing.
  struct DeferredCompletion {
    EventId id;
    ResumeKey key;
  };

  void Wake(Thread& t, WakeReason reason);
  // Fills every idle processor from the scheduler.
  void Dispatch();
  void StartSegment(Processor& proc, Thread& t, bool charge_switch);
  void Preempt(Processor& proc);
  void OnSegmentEnd(Processor& proc);
  // Charges executed time on `proc` up to `end` and notifies observers.
  void AccountSegment(Processor& proc, TimePoint end);
  Duration ScaleCost(Duration cost) const;
  // The running processor the scheduler allows `woken` to displace, preferring the
  // weakest victim; nullptr if none.
  Processor* PreemptionVictim(const Thread& woken);

  Simulator& sim_;
  std::unique_ptr<Scheduler> scheduler_;
  CpuConfig config_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::vector<SegmentObserver> observers_;
  std::vector<Processor> processors_;
  Tracer* tracer_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  std::vector<TraceTrack> cpu_tracks_;  // one per processor

  Duration busy_time_ = Duration::Zero();
  uint64_t next_thread_id_ = 1;
  std::vector<DeferredCompletion> deferred_;
};

}  // namespace tcs

#endif  // TCS_SRC_CPU_CPU_H_
