#include "src/cpu/idle_profiler.h"

#include <algorithm>

namespace tcs {

IdleLoopProfiler::IdleLoopProfiler(Cpu& cpu, Duration utilization_bucket,
                                   Duration episode_gap)
    : utilization_(utilization_bucket), episode_gap_(episode_gap) {
  cpu.AddSegmentObserver([this](TimePoint start, TimePoint end, const Thread& thread) {
    OnSegment(start, end, thread);
  });
}

void IdleLoopProfiler::OnSegment(TimePoint start, TimePoint end, const Thread& thread) {
  // Utilization: each bucket accumulates busy microseconds; UtilizationAt() divides by
  // bucket width.
  double busy_us = static_cast<double>((end - start).ToMicros());
  utilization_.AddSpread(start, end, busy_us);

  // Per-thread episode attribution (Figure 2's "events").
  EpisodeState& ep = per_thread_[thread.id()];
  if (ep.open && start - ep.last_end > episode_gap_) {
    episodes_.push_back(ep.accumulated);
    ep.accumulated = Duration::Zero();
  }
  ep.open = true;
  ep.accumulated += end - start;
  ep.last_end = end;

  // CPU-level busy-period coalescing: segments that abut (the engine often ends one
  // segment and starts the next at the same timestamp) belong to one busy period.
  if (in_busy_period_ && start <= period_end_) {
    period_end_ = std::max(period_end_, end);
    return;
  }
  if (in_busy_period_) {
    busy_periods_.push_back(period_end_ - period_start_);
  }
  in_busy_period_ = true;
  period_start_ = start;
  period_end_ = end;
}

void IdleLoopProfiler::Flush() {
  if (in_busy_period_) {
    busy_periods_.push_back(period_end_ - period_start_);
    in_busy_period_ = false;
  }
  for (auto& [id, ep] : per_thread_) {
    if (ep.open) {
      episodes_.push_back(ep.accumulated);
      ep.accumulated = Duration::Zero();
      ep.open = false;
    }
  }
}

std::vector<IdleLoopProfiler::CumulativePoint> IdleLoopProfiler::CumulativeLatencyCurve()
    const {
  std::vector<Duration> sorted = episodes_;
  std::sort(sorted.begin(), sorted.end());
  std::vector<CumulativePoint> curve;
  curve.reserve(sorted.size());
  Duration cum = Duration::Zero();
  for (Duration d : sorted) {
    cum += d;
    if (!curve.empty() && curve.back().event_length == d) {
      curve.back().cumulative_latency = cum;
    } else {
      curve.push_back(CumulativePoint{d, cum});
    }
  }
  return curve;
}

Duration IdleLoopProfiler::TotalBusy() const {
  Duration total = Duration::Zero();
  for (Duration d : busy_periods_) {
    total += d;
  }
  if (in_busy_period_) {
    total += period_end_ - period_start_;
  }
  return total;
}

}  // namespace tcs
