#include "src/cpu/svr4_scheduler.h"

#include "src/util/config_error.h"

namespace tcs {

Svr4InteractiveScheduler::Svr4InteractiveScheduler(Svr4SchedulerConfig config)
    : config_(config) {
  if (!(config_.quantum > Duration::Zero())) {
    throw ConfigError("Svr4SchedulerConfig.quantum", "quantum must be positive");
  }
}

bool Svr4InteractiveScheduler::IsInteractive(const Thread& t) const {
  if (t.thread_class() == ThreadClass::kGui || t.thread_class() == ThreadClass::kDaemon) {
    return true;
  }
  return t.interactivity >= config_.ia_threshold;
}

void Svr4InteractiveScheduler::OnReady(Thread& t, WakeReason /*reason*/) {
  if (IsInteractive(t)) {
    ia_.push_back(&t);
  } else {
    ts_.push_back(&t);
  }
}

void Svr4InteractiveScheduler::OnPreempted(Thread& t) {
  if (IsInteractive(t)) {
    ia_.push_front(&t);
  } else {
    ts_.push_front(&t);
  }
}

void Svr4InteractiveScheduler::OnQuantumExpired(Thread& t) {
  // Burning a whole quantum is evidence of non-interactivity.
  bool was_interactive = IsInteractive(t);
  t.interactivity *= (1.0 - config_.score_alpha);
  if (tracer_ != nullptr && was_interactive && !IsInteractive(t)) {
    tracer_->Instant(TraceCategory::kSched, "ia-demote", trace_track_, t.last_ready_at(),
                     "thread", static_cast<int64_t>(t.id()));
  }
  OnReady(t, WakeReason::kOther);
}

void Svr4InteractiveScheduler::OnBlocked(Thread& t) {
  // Blocking before quantum exhaustion is evidence of interactivity.
  bool was_interactive = IsInteractive(t);
  t.interactivity = t.interactivity * (1.0 - config_.score_alpha) + config_.score_alpha;
  if (tracer_ != nullptr && !was_interactive && IsInteractive(t)) {
    tracer_->Instant(TraceCategory::kSched, "ia-promote", trace_track_,
                     t.last_blocked_at(), "thread", static_cast<int64_t>(t.id()));
  }
}

Thread* Svr4InteractiveScheduler::PickNext() {
  if (!ia_.empty()) {
    Thread* t = ia_.front();
    ia_.pop_front();
    return t;
  }
  if (!ts_.empty()) {
    Thread* t = ts_.front();
    ts_.pop_front();
    return t;
  }
  return nullptr;
}

Duration Svr4InteractiveScheduler::QuantumFor(const Thread& /*t*/) const {
  return config_.quantum;
}

bool Svr4InteractiveScheduler::ShouldPreempt(const Thread& running,
                                             const Thread& woken) const {
  return IsInteractive(woken) && !IsInteractive(running);
}

void Svr4InteractiveScheduler::SaveQueues(SnapshotWriter& w) const {
  w.U64(ia_.size());
  for (const Thread* t : ia_) {
    w.U64(t->id());
  }
  w.U64(ts_.size());
  for (const Thread* t : ts_) {
    w.U64(t->id());
  }
}

void Svr4InteractiveScheduler::LoadQueues(
    SnapshotReader& r, const std::function<Thread*(uint64_t)>& thread_by_id) {
  ia_.clear();
  ts_.clear();
  uint64_t n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    ia_.push_back(thread_by_id(r.U64()));
  }
  n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    ts_.push_back(thread_by_id(r.U64()));
  }
}

}  // namespace tcs
