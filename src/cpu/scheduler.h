// Scheduler policy interface.
//
// The Cpu execution engine is policy-free; everything the paper analyzes — quantum length,
// quantum stretching, GUI priority boosting, interactive-class protection — lives in the
// Scheduler implementations (NtScheduler, LinuxScheduler, Svr4InteractiveScheduler).

#ifndef TCS_SRC_CPU_SCHEDULER_H_
#define TCS_SRC_CPU_SCHEDULER_H_

#include <cstddef>
#include <functional>
#include <string>

#include "src/cpu/thread.h"
#include "src/obs/trace.h"
#include "src/sim/snapshot.h"
#include "src/sim/time.h"

namespace tcs {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Checkpoint/restore: ready-queue membership and order, saved as thread ids. The
  // per-thread scratch (sched_priority, boost_quanta, interactivity) is serialized with
  // the threads themselves by the Cpu. LoadQueues resolves ids through `thread_by_id`,
  // which throws SnapshotError on an id the rebuilt Cpu does not know.
  virtual void SaveQueues(SnapshotWriter& w) const = 0;
  virtual void LoadQueues(SnapshotReader& r,
                          const std::function<Thread*(uint64_t)>& thread_by_id) = 0;

  // Observability: when set, implementations emit their policy decisions (priority
  // boosts, band promotions/demotions) as sched-category events on `track`. Null by
  // default; schedulers have no clock, so they stamp events with the thread's
  // last_ready_at / last_blocked_at, which the Cpu engine sets just before each callback.
  void SetTracer(Tracer* tracer, TraceTrack track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

  // `t` became runnable (was blocked, or is newly created with work). The scheduler
  // enqueues it and applies any wake-time boost implied by `reason`.
  virtual void OnReady(Thread& t, WakeReason reason) = 0;

  // `t` was running and was preempted by a higher-priority wakeup. It keeps the unused
  // part of its quantum and is re-enqueued (at the front of its level, NT-style).
  virtual void OnPreempted(Thread& t) = 0;

  // `t` exhausted its quantum but still has work. Re-enqueue at the back of its level and
  // decay any boost.
  virtual void OnQuantumExpired(Thread& t) = 0;

  // `t` ran out of work and blocked. Purely bookkeeping (e.g. sleep-begin timestamps).
  virtual void OnBlocked(Thread& t) = 0;

  // Removes and returns the best runnable thread, or nullptr if none.
  virtual Thread* PickNext() = 0;

  // Length of the quantum `t` receives when dispatched (after stretching etc.).
  virtual Duration QuantumFor(const Thread& t) const = 0;

  // Whether a wakeup of `woken` should preempt `running` immediately.
  virtual bool ShouldPreempt(const Thread& running, const Thread& woken) const = 0;

  // Number of threads currently queued (excluding the running one). This is the paper's
  // "scheduler queue length" (Fig. 3 x-axis).
  virtual size_t ReadyCount() const = 0;

  virtual std::string name() const = 0;

 protected:
  Tracer* tracer_ = nullptr;
  TraceTrack trace_track_;
};

}  // namespace tcs

#endif  // TCS_SRC_CPU_SCHEDULER_H_
