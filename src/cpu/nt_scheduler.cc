#include "src/cpu/nt_scheduler.h"

#include <algorithm>
#include <cassert>

#include "src/util/config_error.h"

namespace tcs {

NtScheduler::NtScheduler(NtSchedulerConfig config) : config_(config) {
  if (!(config_.quantum > Duration::Zero())) {
    throw ConfigError("NtSchedulerConfig.quantum", "quantum must be positive");
  }
  assert(config_.foreground_stretch >= 1 && config_.foreground_stretch <= 3);
  assert(config_.gui_boost_priority >= 0 && config_.gui_boost_priority < kLevels);
}

void NtScheduler::PushBack(Thread& t) {
  assert(t.sched_priority >= 0 && t.sched_priority < kLevels);
  queues_[static_cast<size_t>(t.sched_priority)].push_back(&t);
  ++ready_count_;
}

void NtScheduler::PushFront(Thread& t) {
  assert(t.sched_priority >= 0 && t.sched_priority < kLevels);
  queues_[static_cast<size_t>(t.sched_priority)].push_front(&t);
  ++ready_count_;
}

void NtScheduler::OnReady(Thread& t, WakeReason reason) {
  if (config_.gui_boost_enabled && t.thread_class() == ThreadClass::kGui &&
      reason == WakeReason::kInputEvent) {
    t.sched_priority = std::max(t.base_priority(), config_.gui_boost_priority);
    t.boost_quanta = config_.gui_boost_quanta;
    if (tracer_ != nullptr) {
      tracer_->Instant(TraceCategory::kSched, "gui-boost", trace_track_,
                       t.last_ready_at(), "thread", static_cast<int64_t>(t.id()), "prio",
                       t.sched_priority);
    }
  } else if (t.boost_quanta == 0) {
    t.sched_priority = t.base_priority();
  }
  PushBack(t);
}

void NtScheduler::OnPreempted(Thread& t) {
  // A preempted thread keeps its priority and remaining quantum and returns to the front
  // of its level, so it resumes as soon as the interloper is gone.
  PushFront(t);
}

void NtScheduler::OnQuantumExpired(Thread& t) {
  if (t.boost_quanta > 0) {
    --t.boost_quanta;
    if (t.boost_quanta == 0) {
      t.sched_priority = t.base_priority();
      if (tracer_ != nullptr) {
        tracer_->Instant(TraceCategory::kSched, "boost-decay", trace_track_,
                         t.last_ready_at(), "thread", static_cast<int64_t>(t.id()),
                         "prio", t.sched_priority);
      }
    }
  }
  PushBack(t);
}

void NtScheduler::OnBlocked(Thread& t) {
  // Boost state survives a block only until the next wake decides afresh; clear it so a
  // non-input wake does not inherit a stale boost.
  t.boost_quanta = 0;
  t.sched_priority = t.base_priority();
}

Thread* NtScheduler::PickNext() {
  for (int level = kLevels - 1; level >= 0; --level) {
    auto& q = queues_[static_cast<size_t>(level)];
    if (!q.empty()) {
      Thread* t = q.front();
      q.pop_front();
      --ready_count_;
      return t;
    }
  }
  return nullptr;
}

Duration NtScheduler::QuantumFor(const Thread& t) const {
  if (t.thread_class() == ThreadClass::kGui) {
    return config_.quantum * config_.foreground_stretch;
  }
  return config_.quantum;
}

bool NtScheduler::ShouldPreempt(const Thread& running, const Thread& woken) const {
  return woken.sched_priority > running.sched_priority;
}

void NtScheduler::SaveQueues(SnapshotWriter& w) const {
  for (const auto& q : queues_) {
    w.U64(q.size());
    for (const Thread* t : q) {
      w.U64(t->id());
    }
  }
}

void NtScheduler::LoadQueues(SnapshotReader& r,
                             const std::function<Thread*(uint64_t)>& thread_by_id) {
  ready_count_ = 0;
  for (auto& q : queues_) {
    q.clear();
    uint64_t n = r.U64();
    for (uint64_t i = 0; i < n; ++i) {
      q.push_back(thread_by_id(r.U64()));
      ++ready_count_;
    }
  }
}

}  // namespace tcs
