// Small-buffer-optimized, move-only replacement for std::function<void()> on the
// simulator's hot path.
//
// Nearly every scheduled callback in the models is a lambda capturing `this` plus a
// couple of scalars — far below the 48-byte inline buffer — so Schedule() never touches
// the heap for them. Callables larger than the buffer (or with throwing moves) fall back
// to a single heap allocation, preserving std::function's generality. Unlike
// std::function the type is move-only, which is what an event queue needs: callbacks are
// scheduled once and consumed once, and captured state (unique_ptrs, buffers) need not
// be copyable.

#ifndef TCS_SRC_SIM_INLINE_CALLBACK_H_
#define TCS_SRC_SIM_INLINE_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tcs {

class InlineCallback {
 public:
  // Covers a vtable-less lambda capturing `this` plus ~5 scalar words, and a whole
  // std::function (32 bytes on common ABIs) when one is forwarded through.
  static constexpr size_t kInlineSize = 48;

  InlineCallback() = default;
  InlineCallback(std::nullptr_t) {}  // NOLINT: implicit, mirrors std::function

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& f) {  // NOLINT: implicit, mirrors std::function
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      if (ops_ != nullptr) {
        ops_->destroy(storage_);
      }
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  // Must not be called on an empty callback.
  void operator()() { ops_->invoke(storage_); }

  // True if the callable is stored in the inline buffer (no heap allocation). Exposed so
  // tests can pin down which capture sizes stay allocation-free.
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct the callable from `from` into `to`, then destroy it at `from`.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename D>
  static constexpr bool kFitsInline = sizeof(D) <= kInlineSize &&
                                      alignof(D) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* from, void* to) {
        D* f = static_cast<D*>(from);
        ::new (to) D(std::move(*f));
        f->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
      /*inline_storage=*/true,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* from, void* to) { ::new (to) D*(*static_cast<D**>(from)); },
      [](void* p) { delete *static_cast<D**>(p); },
      /*inline_storage=*/false,
  };

  alignas(std::max_align_t) std::byte storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace tcs

#endif  // TCS_SRC_SIM_INLINE_CALLBACK_H_
