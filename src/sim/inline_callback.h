// Small-buffer-optimized, move-only replacement for std::function on the simulator's
// hot paths.
//
// Nearly every scheduled callback in the models is a lambda capturing `this` plus a
// couple of scalars — far below the 48-byte inline buffer — so Schedule() never touches
// the heap for them. Callables larger than the buffer (or with throwing moves) fall back
// to a single heap allocation, preserving std::function's generality. Unlike
// std::function the type is move-only, which is what an event queue needs: callbacks are
// scheduled once and consumed once, and captured state (unique_ptrs, buffers) need not
// be copyable.
//
// InlineFunction<R(Args...)> is the general template; InlineCallback keeps its original
// name as the void() alias the event queue uses. The network layer uses the void(bool)
// instantiation for per-frame delivery fates.

#ifndef TCS_SRC_SIM_INLINE_CALLBACK_H_
#define TCS_SRC_SIM_INLINE_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tcs {

template <typename Sig>
class InlineFunction;

template <typename R, typename... Args>
class InlineFunction<R(Args...)> {
 public:
  // Covers a vtable-less lambda capturing `this` plus ~5 scalar words, and a whole
  // std::function (32 bytes on common ABIs) when one is forwarded through.
  static constexpr size_t kInlineSize = 48;

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT: implicit, mirrors std::function

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT: implicit, mirrors std::function
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      if (ops_ != nullptr) {
        ops_->destroy(storage_);
      }
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  // Must not be called on an empty callback.
  R operator()(Args... args) { return ops_->invoke(storage_, std::forward<Args>(args)...); }

  // True if the callable is stored in the inline buffer (no heap allocation). Exposed so
  // tests can pin down which capture sizes stay allocation-free.
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    R (*invoke)(void*, Args...);
    // Move-construct the callable from `from` into `to`, then destroy it at `from`.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename D>
  static constexpr bool kFitsInline = sizeof(D) <= kInlineSize &&
                                      alignof(D) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p, Args... args) -> R {
        return (*static_cast<D*>(p))(std::forward<Args>(args)...);
      },
      [](void* from, void* to) {
        D* f = static_cast<D*>(from);
        ::new (to) D(std::move(*f));
        f->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
      /*inline_storage=*/true,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p, Args... args) -> R {
        return (**static_cast<D**>(p))(std::forward<Args>(args)...);
      },
      [](void* from, void* to) { ::new (to) D*(*static_cast<D**>(from)); },
      [](void* p) { delete *static_cast<D**>(p); },
      /*inline_storage=*/false,
  };

  alignas(std::max_align_t) std::byte storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

// The event queue's callback type — the original name, kept because it is what nearly
// every model component spells.
using InlineCallback = InlineFunction<void()>;

}  // namespace tcs

#endif  // TCS_SRC_SIM_INLINE_CALLBACK_H_
