#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace tcs {

EventId Simulator::At(TimePoint when, EventQueue::Callback cb) {
  assert(when >= now_ && "cannot schedule into the past");
  return queue_.Schedule(when, std::move(cb));
}

uint64_t Simulator::Run() {
  return RunUntil(TimePoint::Infinite());
}

uint64_t Simulator::RunUntil(TimePoint deadline) {
  stop_requested_ = false;
  uint64_t executed = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.NextTime() > deadline) {
      break;
    }
    TimePoint when;
    EventQueue::Callback cb = queue_.Pop(&when);
    now_ = when;
    cb();
    ++executed;
    ++events_executed_;
    if (dispatch_hook_) {
      dispatch_hook_(when, queue_.size());
    }
  }
  if (deadline != TimePoint::Infinite() && now_ < deadline && !stop_requested_) {
    now_ = deadline;
  }
  return executed;
}

}  // namespace tcs
