#include "src/sim/snapshot.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/sim/simulator.h"

namespace tcs {

namespace {

// CRC32 (IEEE 802.3, reflected), table computed once at startup.
const uint32_t* Crc32Table() {
  static const auto table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

uint32_t Crc32(const uint8_t* data, size_t len) {
  const uint32_t* t = Crc32Table();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = t[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void PutFixed32(std::vector<uint8_t>& buf, uint32_t v) {
  buf.push_back(static_cast<uint8_t>(v));
  buf.push_back(static_cast<uint8_t>(v >> 8));
  buf.push_back(static_cast<uint8_t>(v >> 16));
  buf.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t GetFixed32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotWriter

SnapshotWriter::SnapshotWriter() {
  PutFixed32(buf_, kSnapshotMagic);
  U64(kSnapshotVersion);
}

void SnapshotWriter::U64(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void SnapshotWriter::I64(int64_t v) {
  U64((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
}

void SnapshotWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

void SnapshotWriter::Str(const std::string& s) {
  U64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void SnapshotWriter::Str(const char* s) {
  if (s == nullptr) {
    U64(0);
    return;
  }
  size_t len = std::strlen(s);
  U64(len);
  buf_.insert(buf_.end(), s, s + len);
}

void SnapshotWriter::Blob(const uint8_t* data, size_t len) {
  U64(len);
  buf_.insert(buf_.end(), data, data + len);
}

void SnapshotWriter::BeginSection(uint32_t tag) {
  U32(tag);
  open_.push_back(buf_.size());
  PutFixed32(buf_, 0);  // length placeholder, patched by EndSection
}

void SnapshotWriter::EndSection() {
  if (open_.empty()) {
    throw SnapshotError("SnapshotWriter", "EndSection without an open section");
  }
  size_t at = open_.back();
  open_.pop_back();
  uint32_t len = static_cast<uint32_t>(buf_.size() - (at + 4));
  buf_[at] = static_cast<uint8_t>(len);
  buf_[at + 1] = static_cast<uint8_t>(len >> 8);
  buf_[at + 2] = static_cast<uint8_t>(len >> 16);
  buf_[at + 3] = static_cast<uint8_t>(len >> 24);
}

std::vector<uint8_t> SnapshotWriter::Finish() {
  if (!open_.empty()) {
    throw SnapshotError("SnapshotWriter", "Finish with an unclosed section");
  }
  if (finished_) {
    throw SnapshotError("SnapshotWriter", "Finish called twice");
  }
  finished_ = true;
  uint32_t crc = Crc32(buf_.data(), buf_.size());
  PutFixed32(buf_, crc);
  return std::move(buf_);
}

// ---------------------------------------------------------------------------
// SnapshotReader

SnapshotReader::SnapshotReader(const std::vector<uint8_t>& blob) : data_(blob.data()) {
  if (blob.size() < 9) {  // magic + at least 1 version byte + CRC
    throw SnapshotError("Snapshot", "blob too short to be a snapshot");
  }
  uint32_t crc_stored = GetFixed32(blob.data() + blob.size() - 4);
  uint32_t crc_actual = Crc32(blob.data(), blob.size() - 4);
  if (crc_stored != crc_actual) {
    throw SnapshotError("Snapshot.crc", "checksum mismatch (corrupt or truncated blob)");
  }
  end_ = blob.size() - 4;
  if (GetFixed32(data_) != kSnapshotMagic) {
    throw SnapshotError("Snapshot.magic", "not a snapshot blob");
  }
  pos_ = 4;
  uint64_t version = U64();
  if (version != kSnapshotVersion) {
    throw SnapshotError("Snapshot.version",
                        "unsupported snapshot version " + std::to_string(version) +
                            " (this build reads version " +
                            std::to_string(kSnapshotVersion) + ")");
  }
}

void SnapshotReader::Need(size_t n) const {
  size_t limit = limits_.empty() ? end_ : limits_.back();
  if (pos_ + n > limit) {
    throw SnapshotError("Snapshot", "truncated field (frame overrun)");
  }
}

uint8_t SnapshotReader::U8() {
  Need(1);
  return data_[pos_++];
}

bool SnapshotReader::Bool() {
  uint8_t v = U8();
  if (v > 1) {
    throw SnapshotError("Snapshot", "malformed bool");
  }
  return v != 0;
}

uint32_t SnapshotReader::U32() {
  uint64_t v = U64();
  if (v > UINT32_MAX) {
    throw SnapshotError("Snapshot", "varint out of range for u32");
  }
  return static_cast<uint32_t>(v);
}

uint64_t SnapshotReader::U64() {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    Need(1);
    uint8_t byte = data_[pos_++];
    if (shift == 63 && (byte & 0xFE) != 0) {
      throw SnapshotError("Snapshot", "varint overflow");
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
    shift += 7;
    if (shift > 63) {
      throw SnapshotError("Snapshot", "varint too long");
    }
  }
}

int64_t SnapshotReader::I64() {
  uint64_t v = U64();
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

double SnapshotReader::F64() {
  Need(8);
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  }
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotReader::Str() {
  uint64_t len = U64();
  Need(len);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

std::vector<uint8_t> SnapshotReader::Blob() {
  uint64_t len = U64();
  Need(len);
  std::vector<uint8_t> b(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return b;
}

void SnapshotReader::EnterSection(uint32_t expected_tag) {
  // Peek the tag before committing the position: a mismatch throws without
  // consuming, so the caller can still SkipSection past an unexpected frame.
  uint32_t tag = 0;
  if (!PeekSection(&tag)) {
    throw SnapshotError("Snapshot.section",
                        "expected section tag " + std::to_string(expected_tag) +
                            ", found end of frame");
  }
  if (tag != expected_tag) {
    throw SnapshotError("Snapshot.section",
                        "expected section tag " + std::to_string(expected_tag) +
                            ", found " + std::to_string(tag));
  }
  (void)U32();  // commit the tag
  Need(4);
  uint32_t len = GetFixed32(data_ + pos_);
  pos_ += 4;
  size_t limit = limits_.empty() ? end_ : limits_.back();
  if (pos_ + len > limit) {
    throw SnapshotError("Snapshot.section", "section overruns its frame");
  }
  limits_.push_back(pos_ + len);
}

void SnapshotReader::LeaveSection() {
  if (limits_.empty()) {
    throw SnapshotError("Snapshot.section", "LeaveSection without an open section");
  }
  if (pos_ != limits_.back()) {
    throw SnapshotError("Snapshot.section",
                        "section not fully consumed (schema drift: " +
                            std::to_string(limits_.back() - pos_) + " bytes left)");
  }
  limits_.pop_back();
}

bool SnapshotReader::PeekSection(uint32_t* tag) const {
  size_t limit = limits_.empty() ? end_ : limits_.back();
  if (pos_ >= limit) {
    return false;
  }
  // Decode the tag varint without committing the position.
  size_t p = pos_;
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (p >= limit || shift > 63) {
      throw SnapshotError("Snapshot.section", "truncated section tag");
    }
    uint8_t byte = data_[p++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      break;
    }
    shift += 7;
  }
  if (v > UINT32_MAX) {
    throw SnapshotError("Snapshot.section", "section tag out of range");
  }
  *tag = static_cast<uint32_t>(v);
  return true;
}

void SnapshotReader::SkipSection() {
  (void)U32();  // tag
  Need(4);
  uint32_t len = GetFixed32(data_ + pos_);
  pos_ += 4;
  Need(len);
  pos_ += len;
}

std::map<uint32_t, std::pair<size_t, size_t>> SnapshotSectionSpans(
    const std::vector<uint8_t>& blob) {
  SnapshotReader validate(blob);  // validates magic/version/CRC before the raw scan
  std::map<uint32_t, std::pair<size_t, size_t>> spans;
  // Scan the raw bytes: 4 magic bytes, version varint, then (tag varint, fixed32 length,
  // body) frames until the CRC trailer.
  size_t pos = 4;
  while (blob[pos] & 0x80) {
    ++pos;
  }
  ++pos;
  size_t end = blob.size() - 4;
  while (pos < end) {
    uint64_t t = 0;
    int shift = 0;
    while (true) {
      if (pos >= end) {
        throw SnapshotError("Snapshot.section", "truncated top-level tag");
      }
      uint8_t byte = blob[pos++];
      t |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        break;
      }
      shift += 7;
    }
    if (pos + 4 > end) {
      throw SnapshotError("Snapshot.section", "truncated top-level length");
    }
    uint32_t len = GetFixed32(blob.data() + pos);
    pos += 4;
    if (pos + len > end) {
      throw SnapshotError("Snapshot.section", "top-level section overruns blob");
    }
    spans[static_cast<uint32_t>(t)] = {pos, pos + len};
    pos += len;
  }
  return spans;
}

// ---------------------------------------------------------------------------
// ResumeKey

void ResumeKey::SaveTo(SnapshotWriter& w) const {
  w.U32(kind);
  w.U32(n);
  for (uint32_t i = 0; i < n; ++i) {
    w.U64(args[i]);
  }
}

ResumeKey ResumeKey::LoadFrom(SnapshotReader& r) {
  ResumeKey key;
  key.kind = r.U32();
  key.n = r.U32();
  if (key.n > key.args.size()) {
    throw SnapshotError("ResumeKey", "argument count out of range");
  }
  for (uint32_t i = 0; i < key.n; ++i) {
    key.args[i] = r.U64();
  }
  return key;
}

// ---------------------------------------------------------------------------
// EventRearm

void EventRearm::RegisterRestorer(uint32_t kind, Restorer restorer) {
  auto [it, inserted] = restorers_.emplace(kind, std::move(restorer));
  if (!inserted) {
    throw SnapshotError("EventRearm", "restorer kind " + std::to_string(kind) +
                                          " registered twice");
  }
}

EventRearm::Thunk EventRearm::Build(const ResumeKey& key) const {
  auto it = restorers_.find(key.kind);
  if (it == restorers_.end()) {
    throw SnapshotError("EventRearm",
                        "no restorer registered for resume kind " +
                            std::to_string(key.kind));
  }
  return it->second(key);
}

void EventRearm::Schedule(const char* owner, uint64_t seq, TimePoint when,
                          InlineCallback cb, EventId* out) {
  entries_.push_back(Entry{owner, seq, when, std::move(cb), false, ResumeKey{}, out});
}

void EventRearm::ScheduleKey(const char* owner, uint64_t seq, TimePoint when,
                             const ResumeKey& key, EventId* out) {
  entries_.push_back(Entry{owner, seq, when, InlineCallback(), true, key, out});
}

void EventRearm::Commit(Simulator& sim, const std::vector<PendingEventInfo>& manifest,
                        uint64_t next_seq) {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  for (size_t i = 0; i + 1 < entries_.size(); ++i) {
    if (entries_[i].seq == entries_[i + 1].seq) {
      throw SnapshotError(
          "EventRearm",
          "event seq " + std::to_string(entries_[i].seq) + " re-armed twice (owners: " +
              entries_[i].owner + ", " + entries_[i + 1].owner + ")");
    }
  }
  if (entries_.size() != manifest.size()) {
    // Find the first divergence for a pointed message.
    size_t n = std::min(entries_.size(), manifest.size());
    std::string detail;
    for (size_t i = 0; i < n; ++i) {
      if (entries_[i].seq != manifest[i].seq) {
        detail = "; first divergence at index " + std::to_string(i) + ": re-armed seq " +
                 std::to_string(entries_[i].seq) + " (owner " + entries_[i].owner +
                 ") vs manifest seq " + std::to_string(manifest[i].seq);
        break;
      }
    }
    if (detail.empty() && entries_.size() > manifest.size()) {
      detail = "; extra re-armed seq " + std::to_string(entries_[n].seq) + " (owner " +
               std::string(entries_[n].owner) + ")";
    } else if (detail.empty() && manifest.size() > entries_.size()) {
      detail = "; missing manifest seq " + std::to_string(manifest[n].seq);
    }
    throw SnapshotError("EventRearm",
                        "re-armed " + std::to_string(entries_.size()) +
                            " events but snapshot manifest holds " +
                            std::to_string(manifest.size()) + detail);
  }
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const PendingEventInfo& m = manifest[i];
    if (e.seq != m.seq || e.when != m.when) {
      throw SnapshotError(
          "EventRearm", "re-armed event (seq " + std::to_string(e.seq) + ", t=" +
                            std::to_string(e.when.ToMicros()) + "us, owner " + e.owner +
                            ") does not match manifest entry (seq " +
                            std::to_string(m.seq) + ", t=" +
                            std::to_string(m.when.ToMicros()) + "us)");
    }
    if (e.seq >= next_seq) {
      throw SnapshotError("EventRearm", "pending event seq " + std::to_string(e.seq) +
                                            " is not below the kernel's next_seq");
    }
  }
  for (Entry& e : entries_) {
    InlineCallback cb = e.keyed ? InlineCallback([thunk = Build(e.key)]() { thunk(); })
                                : std::move(e.cb);
    EventId id = sim.RestoreSchedule(e.when, e.seq, std::move(cb));
    if (e.out != nullptr) {
      *e.out = id;
    }
  }
  sim.RestoreNextSeq(next_seq);
  entries_.clear();
}

// ---------------------------------------------------------------------------
// Kernel snapshot

namespace {
// Tags inside the kernel section.
constexpr uint32_t kKernelTag = 1;
}  // namespace

void SaveKernel(SnapshotWriter& w, const Simulator& sim) {
  w.BeginSection(kKernelTag);
  w.Time(sim.Now());
  w.U64(sim.events_executed());
  w.U64(sim.next_event_seq());
  std::vector<PendingEventInfo> pending;
  sim.ForEachPending([&pending](uint64_t seq, TimePoint when) {
    pending.push_back(PendingEventInfo{seq, when});
  });
  std::sort(pending.begin(), pending.end(),
            [](const PendingEventInfo& a, const PendingEventInfo& b) {
              return a.seq < b.seq;
            });
  w.U64(pending.size());
  for (const PendingEventInfo& p : pending) {
    w.U64(p.seq);
    w.Time(p.when);
  }
  w.EndSection();
}

KernelState LoadKernel(SnapshotReader& r) {
  KernelState state;
  r.EnterSection(kKernelTag);
  state.now = r.Time();
  state.events_executed = r.U64();
  state.next_seq = r.U64();
  uint64_t n = r.U64();
  state.manifest.reserve(n);
  uint64_t prev_seq = 0;
  for (uint64_t i = 0; i < n; ++i) {
    PendingEventInfo p;
    p.seq = r.U64();
    p.when = r.Time();
    if (p.seq == 0 || (i > 0 && p.seq <= prev_seq) || p.seq >= state.next_seq) {
      throw SnapshotError("Snapshot.kernel", "pending-event manifest out of order");
    }
    prev_seq = p.seq;
    state.manifest.push_back(p);
  }
  r.LeaveSection();
  return state;
}

void ResetKernel(Simulator& sim, const KernelState& state) {
  sim.RestoreReset(state.now, state.events_executed);
}

}  // namespace tcs
