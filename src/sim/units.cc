#include "src/sim/units.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace tcs {

std::string Bytes::ToString() const {
  char buf[64];
  if (n_ >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2fMiB", ToMiBF());
  } else if (n_ >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.2fKiB", ToKiBF());
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "B", n_);
  }
  return buf;
}

std::string BitsPerSecond::ToString() const {
  char buf[64];
  if (bps_ >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2fMbps", ToMbpsF());
  } else if (bps_ >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fKbps", static_cast<double>(bps_) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "bps", bps_);
  }
  return buf;
}

Duration TransmissionDelay(Bytes size, BitsPerSecond rate) {
  assert(rate.bps() > 0);
  assert(size.count() >= 0);
  // micros = bits * 1e6 / bps, rounded up.
  __int128 bits = static_cast<__int128>(size.count()) * 8;
  __int128 us = (bits * 1000000 + rate.bps() - 1) / rate.bps();
  return Duration::Micros(static_cast<int64_t>(us));
}

BitsPerSecond RateOver(Bytes size, Duration window) {
  if (window.IsZero()) {
    return BitsPerSecond::Of(0);
  }
  double bps = static_cast<double>(size.count()) * 8.0 / window.ToSecondsF();
  return BitsPerSecond::Of(static_cast<int64_t>(bps));
}

}  // namespace tcs
