#include "src/sim/time.h"

#include <cinttypes>
#include <cstdio>

namespace tcs {

namespace {

std::string FormatMicros(int64_t us) {
  char buf[64];
  if (us == 0) {
    return "0us";
  }
  const char* sign = us < 0 ? "-" : "";
  uint64_t mag = us < 0 ? static_cast<uint64_t>(-us) : static_cast<uint64_t>(us);
  if (mag % 1000000 == 0) {
    std::snprintf(buf, sizeof(buf), "%s%" PRIu64 "s", sign, mag / 1000000);
  } else if (mag >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%s%.3fs", sign, static_cast<double>(mag) / 1e6);
  } else if (mag % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%s%" PRIu64 "ms", sign, mag / 1000);
  } else if (mag >= 1000) {
    std::snprintf(buf, sizeof(buf), "%s%.3fms", sign, static_cast<double>(mag) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%" PRIu64 "us", sign, mag);
  }
  return buf;
}

}  // namespace

std::string Duration::ToString() const {
  if (IsInfinite()) {
    return "inf";
  }
  return FormatMicros(us_);
}

std::string TimePoint::ToString() const {
  if (*this == TimePoint::Infinite()) {
    return "inf";
  }
  return FormatMicros(us_);
}

}  // namespace tcs
