#include "src/sim/periodic.h"

namespace tcs {

void PeriodicTask::Start(Duration initial_delay) {
  if (IsRunning()) {
    return;
  }
  pending_ = sim_.Schedule(initial_delay, [this] { Fire(); });
}

void PeriodicTask::Stop() {
  if (pending_.IsValid()) {
    sim_.Cancel(pending_);
    pending_ = EventId();
  }
}

void PeriodicTask::Fire() {
  // Reschedule before invoking the tick so the tick may call Stop() to end the series.
  pending_ = sim_.Schedule(period_, [this] { Fire(); });
  tick_();
}

}  // namespace tcs
