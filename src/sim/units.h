// Strong data-size and data-rate types.
//
// Bytes is a count of octets; BitsPerSecond a link or traffic rate. Division of size by
// rate yields a Duration (serialization delay), keeping bandwidth math unit-checked.

#ifndef TCS_SRC_SIM_UNITS_H_
#define TCS_SRC_SIM_UNITS_H_

#include <cstdint>
#include <compare>
#include <string>

#include "src/sim/time.h"

namespace tcs {

class Bytes {
 public:
  constexpr Bytes() = default;

  static constexpr Bytes Of(int64_t n) { return Bytes(n); }
  static constexpr Bytes KiB(int64_t n) { return Bytes(n * 1024); }
  static constexpr Bytes MiB(int64_t n) { return Bytes(n * 1024 * 1024); }
  static constexpr Bytes Zero() { return Bytes(0); }

  constexpr int64_t count() const { return n_; }
  constexpr double ToKiBF() const { return static_cast<double>(n_) / 1024.0; }
  constexpr double ToMiBF() const { return static_cast<double>(n_) / (1024.0 * 1024.0); }

  constexpr Bytes operator+(Bytes other) const { return Bytes(n_ + other.n_); }
  constexpr Bytes operator-(Bytes other) const { return Bytes(n_ - other.n_); }
  constexpr Bytes operator*(int64_t k) const { return Bytes(n_ * k); }
  constexpr double operator/(Bytes other) const {
    return static_cast<double>(n_) / static_cast<double>(other.n_);
  }
  Bytes& operator+=(Bytes other) {
    n_ += other.n_;
    return *this;
  }
  Bytes& operator-=(Bytes other) {
    n_ -= other.n_;
    return *this;
  }

  constexpr auto operator<=>(const Bytes&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr Bytes(int64_t n) : n_(n) {}
  int64_t n_ = 0;
};

constexpr Bytes operator*(int64_t k, Bytes b) { return b * k; }

class BitsPerSecond {
 public:
  constexpr BitsPerSecond() = default;

  static constexpr BitsPerSecond Of(int64_t bps) { return BitsPerSecond(bps); }
  static constexpr BitsPerSecond Kbps(int64_t k) { return BitsPerSecond(k * 1000); }
  static constexpr BitsPerSecond Mbps(int64_t m) { return BitsPerSecond(m * 1000000); }
  static constexpr BitsPerSecond MbpsF(double m) {
    return BitsPerSecond(static_cast<int64_t>(m * 1e6));
  }

  constexpr int64_t bps() const { return bps_; }
  constexpr double ToMbpsF() const { return static_cast<double>(bps_) / 1e6; }

  constexpr auto operator<=>(const BitsPerSecond&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr BitsPerSecond(int64_t bps) : bps_(bps) {}
  int64_t bps_ = 0;
};

// Time to serialize `size` onto a link of rate `rate`. Rounds up to whole microseconds so
// back-to-back transmissions never overlap.
Duration TransmissionDelay(Bytes size, BitsPerSecond rate);

// Average rate of `size` transferred over `window` (0 if window is zero).
BitsPerSecond RateOver(Bytes size, Duration window);

}  // namespace tcs

#endif  // TCS_SRC_SIM_UNITS_H_
