// Pending-event set for the discrete-event simulator.
//
// Events are ordered by (time, insertion sequence); ties at the same virtual time fire in
// the order they were scheduled, which keeps runs deterministic. Events can be cancelled
// via the EventId returned at scheduling time; cancellation is O(1) (lazy deletion).
//
// Storage is a slab of generation-tagged slots threaded through a free list: an EventId
// encodes {slot, generation}, so Cancel() and IsPending() are O(1) array probes with no
// hash set, and a stale id left over from a fired or cancelled event can never touch the
// slot's next tenant. Ordering lives in an index-based 4-ary min-heap whose entries carry
// their own (time, sequence) sort key, so sift loops stay inside one contiguous array —
// no per-comparison chase into the slab. Cancelled events leave a tombstone in the heap
// (detected by sequence mismatch against the slot) that is discarded when it surfaces.
// Callbacks are InlineCallback, so the common `this`-capturing lambdas never allocate.

#ifndef TCS_SRC_SIM_EVENT_QUEUE_H_
#define TCS_SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/inline_callback.h"
#include "src/sim/time.h"

namespace tcs {

// Opaque handle identifying a scheduled event. Valid until the event fires or is
// cancelled; a retained id becomes inert afterwards (the slot's generation moved on).
class EventId {
 public:
  constexpr EventId() = default;
  constexpr bool IsValid() const { return bits_ != 0; }
  constexpr auto operator<=>(const EventId&) const = default;

 private:
  friend class EventQueue;
  explicit constexpr EventId(uint64_t bits) : bits_(bits) {}
  // (slot index + 1) << 32 | slot generation; 0 is the invalid id.
  uint64_t bits_ = 0;
};

class EventQueue {
 public:
  using Callback = InlineCallback;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `cb` to fire at absolute time `when`.
  EventId Schedule(TimePoint when, Callback cb);

  // Cancels a pending event. Returns true if the event was pending and is now cancelled;
  // false if it already fired, was already cancelled, or `id` is invalid.
  bool Cancel(EventId id);

  // True if `id` refers to an event that has not yet fired or been cancelled.
  bool IsPending(EventId id) const { return DecodeSlot(id) != kNoSlot; }

  bool empty() const { return live_ == 0; }
  size_t size() const { return live_; }

  // Time of the earliest pending event. Must not be called on an empty queue.
  TimePoint NextTime() const;

  // Removes and returns the earliest pending event's callback, storing its time in
  // `when`. Must not be called on an empty queue.
  Callback Pop(TimePoint* when);

  // --- Checkpoint/restore support (src/sim/snapshot.h) ---

  // Sequence number the next Schedule() will hand out. Part of the kernel snapshot:
  // same-time events fire in sequence order, so resumed runs must keep minting the same
  // sequences a cold run would.
  uint64_t next_seq() const { return next_seq_; }

  // Visits every pending event's (sequence, time) pair, in unspecified order.
  template <typename Fn>
  void ForEachPending(Fn&& fn) const {
    for (const HeapEntry& e : heap_) {
      if (SlotAt(e.slot).seq == e.seq) {  // skip cancel tombstones
        fn(e.seq, e.when);
      }
    }
  }

  // Looks up a pending event's snapshot identity. Returns false for ids that already
  // fired or were cancelled.
  bool PendingInfo(EventId id, uint64_t* seq, TimePoint* when) const {
    uint32_t slot = DecodeSlot(id);
    if (slot == kNoSlot) {
      return false;
    }
    *seq = SlotAt(slot).seq;
    *when = SlotAt(slot).when;
    return true;
  }

  // Restore path: drops every pending event and resets the sequence counter. Released
  // slots retire their generations, so EventIds held across a restore can never alias a
  // re-armed event.
  void Clear();

  // Restore path: inserts an event with an explicit sequence number (one recorded by a
  // snapshot). The caller must keep restored sequences unique and below the value later
  // passed to set_next_seq.
  EventId ScheduleRestored(TimePoint when, uint64_t seq, Callback cb);

  // Restore path: forwards the sequence counter to the snapshot's value.
  void set_next_seq(uint64_t next_seq) { next_seq_ = next_seq; }

 private:
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  struct Slot {
    uint64_t seq = 0;         // sequence of the current tenant; 0 while vacant
    uint32_t generation = 1;  // bumped on fire/cancel; stale ids stop matching
    TimePoint when;           // the tenant's fire time (snapshot identity lookups)
    Callback cb;
  };

  // Heap node carrying its own sort key, so sift comparisons stay inside the contiguous
  // heap array. A node whose seq no longer matches its slot's seq is a tombstone left by
  // Cancel(): the event is gone and the node is discarded when it reaches the root.
  struct HeapEntry {
    TimePoint when;
    uint64_t seq;
    uint32_t slot;
  };

  // The slab grows in fixed chunks so existing slots never move: callbacks are not
  // re-relocated on growth, and a grow inside Schedule() cannot invalidate live slots.
  static constexpr uint32_t kChunkShift = 9;
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;  // slots per chunk

  Slot& SlotAt(uint32_t i) { return chunks_[i >> kChunkShift][i & (kChunkSize - 1)]; }
  const Slot& SlotAt(uint32_t i) const {
    return chunks_[i >> kChunkShift][i & (kChunkSize - 1)];
  }

  // Returns the slot index `id` refers to, or kNoSlot if the id is invalid, fired, or
  // cancelled (generation mismatch).
  uint32_t DecodeSlot(EventId id) const;

  // Returns `slot`'s storage to the free list and retires its generation.
  void ReleaseSlot(uint32_t slot);

  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  }

  // Sink `e` into the heap starting from the hole at `pos`.
  void SiftUp(size_t pos, HeapEntry e) const;
  void SiftDown(size_t pos, HeapEntry e) const;
  // Removes the root entry, refilling the hole from the heap's tail.
  void PopRoot() const;
  // Drops cancelled entries from the head of the heap.
  void SkipTombstones() const;

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  uint32_t slot_count_ = 0;          // slots handed out so far (all chunks, used or free)
  std::vector<uint32_t> free_;       // indices of vacant slots (LIFO, so reuse stays warm)
  mutable std::vector<HeapEntry> heap_;  // 4-ary min-heap keyed by (when, seq)
  size_t live_ = 0;                  // pending events (heap size minus tombstones)
  uint64_t next_seq_ = 1;
};

}  // namespace tcs

#endif  // TCS_SRC_SIM_EVENT_QUEUE_H_
