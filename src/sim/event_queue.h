// Pending-event set for the discrete-event simulator.
//
// Events are ordered by (time, insertion sequence); ties at the same virtual time fire in
// the order they were scheduled, which keeps runs deterministic. Events can be cancelled
// via the EventId returned at scheduling time; cancellation is O(1) (lazy deletion).

#ifndef TCS_SRC_SIM_EVENT_QUEUE_H_
#define TCS_SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace tcs {

// Opaque handle identifying a scheduled event. Valid until the event fires or is cancelled.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr bool IsValid() const { return seq_ != 0; }
  constexpr auto operator<=>(const EventId&) const = default;

 private:
  friend class EventQueue;
  explicit constexpr EventId(uint64_t seq) : seq_(seq) {}
  uint64_t seq_ = 0;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `cb` to fire at absolute time `when`.
  EventId Schedule(TimePoint when, Callback cb);

  // Cancels a pending event. Returns true if the event was pending and is now cancelled;
  // false if it already fired, was already cancelled, or `id` is invalid.
  bool Cancel(EventId id);

  // True if `id` refers to an event that has not yet fired or been cancelled.
  bool IsPending(EventId id) const { return pending_.contains(id.seq_); }

  bool empty() const { return pending_.empty(); }
  size_t size() const { return pending_.size(); }

  // Time of the earliest pending event. Must not be called on an empty queue.
  TimePoint NextTime() const;

  // Removes and returns the earliest pending event's callback, storing its time in `when`.
  // Must not be called on an empty queue.
  Callback Pop(TimePoint* when);

 private:
  struct Entry {
    TimePoint when;
    uint64_t seq = 0;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Drops cancelled entries from the head of the heap.
  void SkipCancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<uint64_t> pending_;
  uint64_t next_seq_ = 1;
};

}  // namespace tcs

#endif  // TCS_SRC_SIM_EVENT_QUEUE_H_
