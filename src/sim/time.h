// Strong time types for the discrete-event simulator.
//
// All simulation time is integral microseconds of *virtual* time. Strong types keep
// durations, absolute times, and plain counters from being mixed up (a classic source of
// unit bugs in schedulers, where quanta, timestamps, and tick counts all look like int64).

#ifndef TCS_SRC_SIM_TIME_H_
#define TCS_SRC_SIM_TIME_H_

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace tcs {

// A signed span of virtual time with microsecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Micros(int64_t us) { return Duration(us); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration Seconds(int64_t s) { return Duration(s * 1000000); }
  static constexpr Duration SecondsF(double s) {
    return Duration(static_cast<int64_t>(s * 1e6));
  }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Infinite() {
    return Duration(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t ToMicros() const { return us_; }
  constexpr double ToMillisF() const { return static_cast<double>(us_) / 1e3; }
  constexpr double ToSecondsF() const { return static_cast<double>(us_) / 1e6; }
  constexpr bool IsZero() const { return us_ == 0; }
  constexpr bool IsInfinite() const { return us_ == std::numeric_limits<int64_t>::max(); }

  constexpr Duration operator+(Duration other) const { return Duration(us_ + other.us_); }
  constexpr Duration operator-(Duration other) const { return Duration(us_ - other.us_); }
  constexpr Duration operator*(int64_t k) const { return Duration(us_ * k); }
  constexpr Duration operator*(int k) const { return Duration(us_ * k); }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(us_) * k));
  }
  constexpr Duration operator/(int64_t k) const { return Duration(us_ / k); }
  constexpr double operator/(Duration other) const {
    return static_cast<double>(us_) / static_cast<double>(other.us_);
  }
  constexpr Duration operator-() const { return Duration(-us_); }
  Duration& operator+=(Duration other) {
    us_ += other.us_;
    return *this;
  }
  Duration& operator-=(Duration other) {
    us_ -= other.us_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  // Renders "1.5ms", "250ms", "2.5s", "17us" — smallest unit that keeps the value readable.
  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t us) : us_(us) {}

  int64_t us_ = 0;
};

constexpr Duration operator*(int64_t k, Duration d) { return d * k; }

// An absolute point on the simulation clock. Time zero is simulation start.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint FromMicros(int64_t us) { return TimePoint(us); }
  static constexpr TimePoint Zero() { return TimePoint(0); }
  static constexpr TimePoint Infinite() {
    return TimePoint(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t ToMicros() const { return us_; }
  constexpr double ToMillisF() const { return static_cast<double>(us_) / 1e3; }
  constexpr double ToSecondsF() const { return static_cast<double>(us_) / 1e6; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(us_ + d.ToMicros()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(us_ - d.ToMicros()); }
  constexpr Duration operator-(TimePoint other) const {
    return Duration::Micros(us_ - other.us_);
  }
  TimePoint& operator+=(Duration d) {
    us_ += d.ToMicros();
    return *this;
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr TimePoint(int64_t us) : us_(us) {}

  int64_t us_ = 0;
};

}  // namespace tcs

#endif  // TCS_SRC_SIM_TIME_H_
