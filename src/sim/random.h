// Deterministic pseudo-random source for simulations.
//
// xoshiro256** (Blackman & Vigna) with a SplitMix64 seeder. Each model component should own
// its own Rng (or a Fork() of a parent Rng) so adding a component never perturbs the random
// streams of the others — a requirement for reproducible A/B experiments.

#ifndef TCS_SRC_SIM_RANDOM_H_
#define TCS_SRC_SIM_RANDOM_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace tcs {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  // A child generator whose stream is independent of (but derived from) this one's state.
  Rng Fork();

  // Uniform on the full 64-bit range.
  uint64_t NextU64();

  // Uniform on [0, bound). bound must be > 0. Uses rejection sampling (no modulo bias).
  uint64_t NextBelow(uint64_t bound);

  // Uniform on [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform on [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Exponential with the given mean (> 0). Used for Poisson arrival processes.
  double NextExponential(double mean);

  // Normal via Box-Muller (no cached second value, to keep the stream state simple).
  double NextNormal(double mean, double stddev);

  // Fills `data` with pseudo-random bytes whose `redundancy` in [0,1] controls
  // compressibility: 0 = incompressible noise, 1 = highly repetitive. Used to generate
  // protocol payloads with realistic entropy.
  void FillBytes(uint8_t* data, size_t len, double redundancy);

  // Checkpoint/restore: the raw xoshiro256** state (the stream's exact position).
  const std::array<uint64_t, 4>& state() const { return s_; }
  void set_state(const std::array<uint64_t, 4>& s) { s_ = s; }

 private:
  std::array<uint64_t, 4> s_;
};

}  // namespace tcs

#endif  // TCS_SRC_SIM_RANDOM_H_
