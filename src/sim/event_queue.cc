#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace tcs {

namespace {
constexpr int kArity = 4;
}  // namespace

EventId EventQueue::Schedule(TimePoint when, Callback cb) {
  uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = slot_count_++;
    if ((slot & (kChunkSize - 1)) == 0) {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
  }
  uint64_t seq = next_seq_++;
  Slot& s = SlotAt(slot);
  s.seq = seq;
  s.when = when;
  s.cb = std::move(cb);
  heap_.resize(heap_.size() + 1);
  SiftUp(heap_.size() - 1, HeapEntry{when, seq, slot});
  ++live_;
  return EventId((static_cast<uint64_t>(slot) + 1) << 32 | s.generation);
}

void EventQueue::Clear() {
  for (const HeapEntry& e : heap_) {
    if (SlotAt(e.slot).seq == e.seq) {
      ReleaseSlot(e.slot);
    }
  }
  heap_.clear();
  live_ = 0;
  next_seq_ = 1;
}

EventId EventQueue::ScheduleRestored(TimePoint when, uint64_t seq, Callback cb) {
  uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = slot_count_++;
    if ((slot & (kChunkSize - 1)) == 0) {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
  }
  Slot& s = SlotAt(slot);
  s.seq = seq;
  s.when = when;
  s.cb = std::move(cb);
  heap_.resize(heap_.size() + 1);
  SiftUp(heap_.size() - 1, HeapEntry{when, seq, slot});
  ++live_;
  return EventId((static_cast<uint64_t>(slot) + 1) << 32 | s.generation);
}

uint32_t EventQueue::DecodeSlot(EventId id) const {
  uint64_t slot_plus_1 = id.bits_ >> 32;
  if (slot_plus_1 == 0 || slot_plus_1 > slot_count_) {
    return kNoSlot;
  }
  uint32_t slot = static_cast<uint32_t>(slot_plus_1 - 1);
  // A vacant slot has already had its generation bumped past every id it handed out, so
  // one comparison covers "fired", "cancelled", and "recycled to a new event".
  if (SlotAt(slot).generation != static_cast<uint32_t>(id.bits_)) {
    return kNoSlot;
  }
  return slot;
}

void EventQueue::ReleaseSlot(uint32_t slot) {
  Slot& s = SlotAt(slot);
  ++s.generation;
  s.seq = 0;              // any heap entry still naming this slot is now a tombstone
  s.cb = Callback();      // drop captured state now, not at slot reuse
  free_.push_back(slot);
}

bool EventQueue::Cancel(EventId id) {
  uint32_t slot = DecodeSlot(id);
  if (slot == kNoSlot) {
    return false;
  }
  // Lazy deletion: the heap entry stays until it reaches the root, where the seq
  // mismatch against the (released or recycled) slot identifies it as a tombstone.
  ReleaseSlot(slot);
  --live_;
  return true;
}

void EventQueue::SkipTombstones() const {
  while (!heap_.empty() && SlotAt(heap_[0].slot).seq != heap_[0].seq) {
    PopRoot();
  }
}

TimePoint EventQueue::NextTime() const {
  SkipTombstones();
  assert(!heap_.empty());
  return heap_[0].when;
}

EventQueue::Callback EventQueue::Pop(TimePoint* when) {
  SkipTombstones();
  assert(!heap_.empty());
  uint32_t slot = heap_[0].slot;
  *when = heap_[0].when;
  Callback cb = std::move(SlotAt(slot).cb);
  PopRoot();
  ReleaseSlot(slot);
  --live_;
  return cb;
}

void EventQueue::SiftUp(size_t pos, HeapEntry e) const {
  while (pos > 0) {
    size_t parent = (pos - 1) / kArity;
    if (!Earlier(e, heap_[parent])) {
      break;
    }
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = e;
}

void EventQueue::SiftDown(size_t pos, HeapEntry e) const {
  const size_t n = heap_.size();
  for (;;) {
    size_t first = kArity * pos + 1;
    if (first >= n) {
      break;
    }
    size_t best = first;
    size_t last = first + kArity < n ? first + kArity : n;
    for (size_t child = first + 1; child < last; ++child) {
      if (Earlier(heap_[child], heap_[best])) {
        best = child;
      }
    }
    if (!Earlier(heap_[best], e)) {
      break;
    }
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = e;
}

void EventQueue::PopRoot() const {
  HeapEntry tail = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0, tail);
  }
}

}  // namespace tcs
