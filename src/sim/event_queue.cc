#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace tcs {

EventId EventQueue::Schedule(TimePoint when, Callback cb) {
  uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq, std::move(cb)});
  pending_.insert(seq);
  return EventId(seq);
}

bool EventQueue::Cancel(EventId id) {
  // Lazy deletion: the heap entry stays until it reaches the top, but it is no longer in
  // `pending_`, so SkipCancelled() will discard it.
  return pending_.erase(id.seq_) > 0;
}

void EventQueue::SkipCancelled() const {
  while (!heap_.empty() && !pending_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

TimePoint EventQueue::NextTime() const {
  SkipCancelled();
  assert(!heap_.empty());
  return heap_.top().when;
}

EventQueue::Callback EventQueue::Pop(TimePoint* when) {
  SkipCancelled();
  assert(!heap_.empty());
  // priority_queue::top() is const; the Entry must be moved out via const_cast, which is
  // safe because we pop immediately after.
  Entry& top = const_cast<Entry&>(heap_.top());
  *when = top.when;
  Callback cb = std::move(top.cb);
  pending_.erase(top.seq);
  heap_.pop();
  return cb;
}

}  // namespace tcs
