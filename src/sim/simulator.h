// The discrete-event simulation kernel.
//
// A Simulator owns the virtual clock and the pending-event set. Model components hold a
// Simulator& and use Schedule()/At()/Now() to advance their state machines. The run loop
// is single-threaded and deterministic: identical inputs produce identical event orders.

#ifndef TCS_SRC_SIM_SIMULATOR_H_
#define TCS_SRC_SIM_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace tcs {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint Now() const { return now_; }

  // Schedules `cb` to run after `delay` of virtual time (>= 0).
  EventId Schedule(Duration delay, EventQueue::Callback cb) {
    return At(now_ + delay, std::move(cb));
  }

  // Schedules `cb` at an absolute virtual time, which must not be in the past.
  EventId At(TimePoint when, EventQueue::Callback cb);

  bool Cancel(EventId id) { return queue_.Cancel(id); }
  bool IsPending(EventId id) const { return queue_.IsPending(id); }

  // Runs until the event queue drains or a stop is requested. Returns events executed.
  uint64_t Run();

  // Runs until virtual time reaches `deadline` (events at exactly `deadline` execute),
  // the queue drains, or a stop is requested. The clock is left at min(deadline, last
  // event time >= now). Returns events executed.
  uint64_t RunUntil(TimePoint deadline);

  // Runs for `span` more virtual time.
  uint64_t RunFor(Duration span) { return RunUntil(now_ + span); }

  // Callable from within an event callback to halt the run loop after the current event.
  void RequestStop() { stop_requested_ = true; }

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size(); }

  // Observability hook: invoked after each executed event with its dispatch time and the
  // queue depth it left behind. Unset (the default) costs one branch per event; the obs
  // layer wires it to sim-category trace events. The kernel itself stays obs-free so the
  // dependency arrow keeps pointing obs -> sim.
  using DispatchHook = std::function<void(TimePoint when, size_t pending_after)>;
  void set_dispatch_hook(DispatchHook hook) { dispatch_hook_ = std::move(hook); }

  // --- Checkpoint/restore support (src/sim/snapshot.h) ---

  uint64_t next_event_seq() const { return queue_.next_seq(); }

  // Snapshot identity of a pending event (its sequence number and fire time). Returns
  // false if `id` no longer refers to a pending event.
  bool PendingInfo(EventId id, uint64_t* seq, TimePoint* when) const {
    return queue_.PendingInfo(id, seq, when);
  }

  template <typename Fn>
  void ForEachPending(Fn&& fn) const {
    queue_.ForEachPending(std::forward<Fn>(fn));
  }

  // Restore path: drops every pending event (construction-time scheduling is erased
  // wholesale; the EventRearm plan re-inserts the snapshot's pending set) and moves the
  // clock and dispatch counter to the snapshot's values.
  void RestoreReset(TimePoint now, uint64_t events_executed) {
    queue_.Clear();
    now_ = now;
    events_executed_ = events_executed;
    stop_requested_ = false;
  }

  // Restore path: re-inserts one pending event with its recorded sequence number.
  EventId RestoreSchedule(TimePoint when, uint64_t seq, EventQueue::Callback cb) {
    return queue_.ScheduleRestored(when, seq, std::move(cb));
  }

  // Restore path: forwards the sequence counter once all pending events are re-armed.
  void RestoreNextSeq(uint64_t next_seq) { queue_.set_next_seq(next_seq); }

 private:
  TimePoint now_ = TimePoint::Zero();
  EventQueue queue_;
  bool stop_requested_ = false;
  uint64_t events_executed_ = 0;
  DispatchHook dispatch_hook_;
};

}  // namespace tcs

#endif  // TCS_SRC_SIM_SIMULATOR_H_
