// Helper for self-rescheduling periodic activity (daemon ticks, animation frames, traffic
// sources). Owns its pending event; destroying the task cancels the next firing, so model
// components can hold PeriodicTask members without dangling-callback hazards — provided the
// task is destroyed no later than the Simulator.

#ifndef TCS_SRC_SIM_PERIODIC_H_
#define TCS_SRC_SIM_PERIODIC_H_

#include <functional>
#include <utility>

#include "src/sim/simulator.h"

namespace tcs {

class PeriodicTask {
 public:
  using Tick = std::function<void()>;

  PeriodicTask(Simulator& sim, Duration period, Tick tick)
      : sim_(sim), period_(period), tick_(std::move(tick)) {}

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  ~PeriodicTask() { Stop(); }

  // Arms the task. First firing happens after `initial_delay`; subsequent firings every
  // period. Re-starting an armed task is a no-op.
  void Start(Duration initial_delay = Duration::Zero());

  // Cancels the pending firing, if any.
  void Stop();

  bool IsRunning() const { return pending_.IsValid() && sim_.IsPending(pending_); }

  Duration period() const { return period_; }
  void set_period(Duration period) { period_ = period; }

 private:
  void Fire();

  Simulator& sim_;
  Duration period_;
  Tick tick_;
  EventId pending_;
};

}  // namespace tcs

#endif  // TCS_SRC_SIM_PERIODIC_H_
