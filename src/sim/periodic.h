// Helper for self-rescheduling periodic activity (daemon ticks, animation frames, traffic
// sources). Owns its pending event; destroying the task cancels the next firing, so model
// components can hold PeriodicTask members without dangling-callback hazards — provided the
// task is destroyed no later than the Simulator.

#ifndef TCS_SRC_SIM_PERIODIC_H_
#define TCS_SRC_SIM_PERIODIC_H_

#include <functional>
#include <utility>

#include "src/sim/simulator.h"
#include "src/sim/snapshot.h"

namespace tcs {

class PeriodicTask {
 public:
  using Tick = std::function<void()>;

  PeriodicTask(Simulator& sim, Duration period, Tick tick)
      : sim_(sim), period_(period), tick_(std::move(tick)) {}

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  ~PeriodicTask() { Stop(); }

  // Arms the task. First firing happens after `initial_delay`; subsequent firings every
  // period. Re-starting an armed task is a no-op.
  void Start(Duration initial_delay = Duration::Zero());

  // Cancels the pending firing, if any.
  void Stop();

  bool IsRunning() const { return pending_.IsValid() && sim_.IsPending(pending_); }

  Duration period() const { return period_; }
  void set_period(Duration period) { period_ = period; }

  // Checkpoint/restore: the task's dynamic state is its period plus the pending firing's
  // snapshot identity. The tick callable itself is rebuilt by reconstruction; LoadFrom
  // re-arms the firing through the plan with its original (time, sequence).
  void SaveTo(SnapshotWriter& w, const Simulator& sim) const {
    w.Dur(period_);
    uint64_t seq = 0;
    TimePoint when;
    bool running = pending_.IsValid() && sim.PendingInfo(pending_, &seq, &when);
    w.Bool(running);
    if (running) {
      w.U64(seq);
      w.Time(when);
    }
  }
  void LoadFrom(SnapshotReader& r, EventRearm& plan, const char* owner) {
    period_ = r.Dur();
    pending_ = EventId();
    if (r.Bool()) {
      uint64_t seq = r.U64();
      TimePoint when = r.Time();
      plan.Schedule(owner, seq, when, [this] { Fire(); }, &pending_);
    }
  }

 private:
  void Fire();

  Simulator& sim_;
  Duration period_;
  Tick tick_;
  EventId pending_;
};

}  // namespace tcs

#endif  // TCS_SRC_SIM_PERIODIC_H_
