// Central registry of ResumeKey kinds.
//
// A ResumeKey's `kind` selects the registered restorer that rebuilds a pending
// continuation on restore. Kinds are global across the whole model so a snapshot is
// unambiguous; every component that defines continuation sites claims its values here.
// 0 is reserved for "no key" (ResumeKey::empty()).

#ifndef TCS_SRC_SIM_RESUME_KINDS_H_
#define TCS_SRC_SIM_RESUME_KINDS_H_

#include <cstdint>

namespace tcs {

enum ResumeKind : uint32_t {
  kResumeNone = 0,

  // --- Pager (src/mem/pager.cc) ---
  // args: [op id]. The clustered disk read at op.next_run landed; advance the chain.
  kResumePagerChain = 1,

  // --- Net (src/net/flow.h) ---
  // args: [session id]. A session flow's tally-only pending delivery: bump the
  // session's FlowLedger.delivered slot (ordinary protocol messages carry no other
  // delivery action, so this one restorer covers every in-flight session send).
  kResumeFlowDelivered = 8,

  // --- Server pipeline (src/session/server.cc) ---
  // args: [session id, batch, generation]. The keystroke path's working-set page-in
  // completed; close the mem-stall attribution stage and run pipeline hop 0.
  kResumeServerPageInDone = 17,
  // args: [session id, hop, batch, generation]. A keystroke-pipeline hop's CPU burst
  // finished; account the hop and run the next one (or complete the pipeline).
  kResumeServerRenderDone = 18,

  // --- Workloads (src/workload) ---
  // args: [hog id]. A memory hog's page access completed; burn touch CPU, continue.
  kResumeHogTouchDone = 32,
};

}  // namespace tcs

#endif  // TCS_SRC_SIM_RESUME_KINDS_H_
