#include "src/sim/random.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace tcs {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64(sm);
  }
}

Rng Rng::Fork() {
  return Rng(NextU64());
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection: discard values in the biased low zone.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high-quality mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  assert(mean > 0.0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::NextNormal(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

void Rng::FillBytes(uint8_t* data, size_t len, double redundancy) {
  // Redundant regions are runs of a repeated recent byte; non-redundant bytes are fresh
  // random draws. This yields data whose LZ-compressibility tracks `redundancy`.
  uint8_t last = static_cast<uint8_t>(NextU64());
  for (size_t i = 0; i < len; ++i) {
    if (NextBool(redundancy)) {
      data[i] = last;
    } else {
      data[i] = static_cast<uint8_t>(NextU64());
      last = data[i];
    }
  }
}

}  // namespace tcs
