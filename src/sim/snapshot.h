// Deterministic serialization of simulator state (checkpoint/restore).
//
// A snapshot is a framed, versioned, CRC-guarded byte blob. SnapshotWriter/SnapshotReader
// provide the primitive encodings (LEB128 varints, zigzag signed ints, bit-pattern
// doubles, length-prefixed strings) plus nestable tagged sections, so every subsystem
// serializes into its own named frame and a truncated, bit-flipped, or version-skewed
// blob fails loudly with SnapshotError instead of restoring garbage.
//
// Pending event callbacks cannot be serialized (they are closures). Instead, every
// component that owns pending activity records a small POD ResumeKey describing the
// continuation, and on restore re-arms its events through an EventRearm plan: callbacks
// are rebuilt either by the owning component directly or via the registered-restorer
// table (kind -> builder). The plan re-inserts every pending event with its original
// (time, sequence) pair — insertion sequence is the deterministic tiebreak for same-time
// events — and then verifies the rebuilt queue's (when, seq) multiset exactly matches
// the snapshot's manifest, so a component that forgot to re-arm (or re-armed twice)
// fails restore with a named error rather than silently diverging.

#ifndef TCS_SRC_SIM_SNAPSHOT_H_
#define TCS_SRC_SIM_SNAPSHOT_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/inline_callback.h"
#include "src/sim/time.h"
#include "src/util/config_error.h"

namespace tcs {

class Simulator;

// Thrown on any malformed, truncated, corrupted, or version-skewed snapshot, and on
// restore-time inconsistencies (unknown resume kind, event-manifest mismatch, topology
// drift). Derives from ConfigError so existing driver error paths catch it.
class SnapshotError : public ConfigError {
 public:
  SnapshotError(std::string field, std::string reason)
      : ConfigError(std::move(field), std::move(reason)) {}
};

// Blob layout: magic, format version, body (tagged sections), trailing CRC32.
inline constexpr uint32_t kSnapshotMagic = 0x54435353;  // "TCSS"
inline constexpr uint32_t kSnapshotVersion = 1;

class SnapshotWriter {
 public:
  SnapshotWriter();

  void U8(uint8_t v) { buf_.push_back(v); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(uint32_t v) { U64(v); }
  void U64(uint64_t v);                       // LEB128
  void I64(int64_t v);                        // zigzag + LEB128
  void F64(double v);                         // 8-byte LE bit pattern
  void Str(const std::string& s);
  void Str(const char* s);                    // nullptr encodes as an empty marker
  void Blob(const uint8_t* data, size_t len);
  void Time(TimePoint t) { I64(t.ToMicros()); }
  void Dur(Duration d) { I64(d.ToMicros()); }

  // Nestable tagged frames. Every Begin must be matched by an End before Finish().
  void BeginSection(uint32_t tag);
  void EndSection();

  // Appends the CRC32 trailer and returns the finished blob.
  std::vector<uint8_t> Finish();

 private:
  std::vector<uint8_t> buf_;
  std::vector<size_t> open_;  // offsets of unpatched 4-byte length placeholders
  bool finished_ = false;
};

class SnapshotReader {
 public:
  // Validates magic, version, and the CRC32 trailer up front; throws SnapshotError on
  // any mismatch. The blob must stay alive for the reader's lifetime.
  explicit SnapshotReader(const std::vector<uint8_t>& blob);

  uint8_t U8();
  bool Bool();
  uint32_t U32();
  uint64_t U64();
  int64_t I64();
  double F64();
  std::string Str();
  std::vector<uint8_t> Blob();
  TimePoint Time() { return TimePoint::FromMicros(I64()); }
  Duration Dur() { return Duration::Micros(I64()); }

  // Enters a section and checks its tag; throws SnapshotError on a tag mismatch or a
  // frame that overruns its parent. LeaveSection verifies the section was consumed
  // exactly (catching schema drift) and throws otherwise.
  void EnterSection(uint32_t expected_tag);
  void LeaveSection();

  // Peeks the tag of the next section without consuming it. Returns false at the end of
  // the enclosing frame.
  bool PeekSection(uint32_t* tag) const;
  // Skips over the next section wholesale.
  void SkipSection();

  bool AtEnd() const { return pos_ == end_; }

 private:
  void Need(size_t n) const;

  const uint8_t* data_;
  size_t pos_ = 0;
  size_t end_ = 0;                // payload end (excludes CRC trailer)
  std::vector<size_t> limits_;    // enclosing section end offsets
};

// Enumerates the top-level sections of a finished blob as (tag -> [begin, end) byte
// range within the blob). Used by the property suite to compare two snapshots section by
// section, so a divergence names the guilty subsystem instead of "bytes differ".
std::map<uint32_t, std::pair<size_t, size_t>> SnapshotSectionSpans(
    const std::vector<uint8_t>& blob);

// ---------------------------------------------------------------------------
// Pending-callback restoration

// A serializable description of a pending continuation: which registered restorer
// rebuilds it (kind) plus up to four argument words. Components attach a ResumeKey at
// every cross-component continuation site (work-item completions, frame deliveries,
// page-in waiters); component-internal events are re-armed directly by their owner.
struct ResumeKey {
  uint32_t kind = 0;
  uint32_t n = 0;                 // populated argument count
  std::array<uint64_t, 4> args{};

  static ResumeKey Make(uint32_t kind) { return ResumeKey{kind, 0, {}}; }
  static ResumeKey Make(uint32_t kind, uint64_t a) { return ResumeKey{kind, 1, {a}}; }
  static ResumeKey Make(uint32_t kind, uint64_t a, uint64_t b) {
    return ResumeKey{kind, 2, {a, b}};
  }
  static ResumeKey Make(uint32_t kind, uint64_t a, uint64_t b, uint64_t c) {
    return ResumeKey{kind, 3, {a, b, c}};
  }
  static ResumeKey Make(uint32_t kind, uint64_t a, uint64_t b, uint64_t c, uint64_t d) {
    return ResumeKey{kind, 4, {a, b, c, d}};
  }

  bool empty() const { return kind == 0; }
  uint64_t arg(size_t i) const { return args[i]; }

  void SaveTo(SnapshotWriter& w) const;
  static ResumeKey LoadFrom(SnapshotReader& r);
};

// One pending event in the snapshot's kernel manifest.
struct PendingEventInfo {
  uint64_t seq = 0;
  TimePoint when;
};

// Collects the pending events to re-insert during restore, rebuilds keyed callbacks via
// the registered-restorer table, and commits them into the simulator with their original
// sequence numbers after verifying the set matches the snapshot's manifest exactly.
class EventRearm {
 public:
  using Thunk = std::function<void()>;
  using Restorer = std::function<Thunk(const ResumeKey&)>;

  // Registers the builder for one continuation kind. A kind may only be registered once.
  void RegisterRestorer(uint32_t kind, Restorer restorer);

  // Rebuilds the thunk for `key` immediately. Throws SnapshotError on an unknown kind.
  Thunk Build(const ResumeKey& key) const;

  // Re-arms an event whose callback the owning component rebuilt itself. If `out` is
  // non-null it receives the event's new EventId when the plan commits.
  void Schedule(const char* owner, uint64_t seq, TimePoint when, InlineCallback cb,
                EventId* out = nullptr);
  // Re-arms an event whose callback is rebuilt from `key` at commit time (so restorers
  // may be registered after the key is collected).
  void ScheduleKey(const char* owner, uint64_t seq, TimePoint when, const ResumeKey& key,
                   EventId* out = nullptr);

  // Sorts collected events by sequence, verifies they match `manifest` exactly (same
  // count, same (seq, when) pairs), inserts them into `sim`'s queue with their original
  // sequence numbers, and advances the queue's sequence counter to `next_seq`. Throws
  // SnapshotError naming the first divergence (and the owning component, when known).
  void Commit(Simulator& sim, const std::vector<PendingEventInfo>& manifest,
              uint64_t next_seq);

 private:
  struct Entry {
    const char* owner;
    uint64_t seq;
    TimePoint when;
    InlineCallback cb;
    bool keyed;
    ResumeKey key;
    EventId* out;
  };

  std::vector<Entry> entries_;
  std::map<uint32_t, Restorer> restorers_;
};

// ---------------------------------------------------------------------------
// Kernel (Simulator + EventQueue) snapshot support

// Serializes the kernel: virtual clock, events-executed counter, next event sequence,
// and the pending-event manifest (seq, when) in sequence order.
void SaveKernel(SnapshotWriter& w, const Simulator& sim);

// Reads the kernel section saved by SaveKernel.
struct KernelState {
  TimePoint now;
  uint64_t events_executed = 0;
  uint64_t next_seq = 1;
  std::vector<PendingEventInfo> manifest;
};
KernelState LoadKernel(SnapshotReader& r);

// Clears the simulator's queue and rewinds/forwards its clock and counters to the
// snapshot's values. Every construction-time event is dropped; the EventRearm plan
// re-inserts the snapshot's pending set.
void ResetKernel(Simulator& sim, const KernelState& state);

}  // namespace tcs

#endif  // TCS_SRC_SIM_SNAPSHOT_H_
