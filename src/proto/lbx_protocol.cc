#include "src/proto/lbx_protocol.h"

#include <algorithm>

#include "src/util/lz.h"

namespace tcs {

namespace {

constexpr uint8_t kEventClass = 0xFE;
constexpr uint8_t kReplyClass = 0xFD;
constexpr size_t kDictLimit = 2048;  // rolling history per stream class

}  // namespace

LbxProtocol::LbxProtocol(Simulator& sim, MessageSender& display_out,
                         MessageSender& input_out, ProtoTap* tap, Rng rng,
                         LbxConfig lbx_config, XProtocolConfig x_config)
    : XProtocol(sim, display_out, input_out, tap, rng, x_config),
      lbx_config_(lbx_config) {}

Bytes LbxProtocol::session_setup_bytes() const {
  return x_config().session_setup + Bytes::Of(1024);
}

void LbxProtocol::EmitCompressed(Channel channel, uint8_t stream_class,
                                 const std::vector<uint8_t>& raw) {
  bytes_in_ += static_cast<int64_t>(raw.size());

  // Approximate stream compression: the compressed cost of `raw` is the marginal cost of
  // appending it to the class's recent history.
  std::vector<uint8_t>& dict = dict_[stream_class];
  size_t baseline = dict.empty() ? 0 : LzCodec::CompressedSize(dict);
  std::vector<uint8_t> combined = dict;
  combined.insert(combined.end(), raw.begin(), raw.end());
  size_t together = LzCodec::CompressedSize(combined);
  size_t marginal = together > baseline ? together - baseline : 1;

  // Roll the history forward, bounded.
  dict = std::move(combined);
  if (dict.size() > kDictLimit) {
    dict.erase(dict.begin(), dict.end() - static_cast<ptrdiff_t>(kDictLimit));
  }

  Bytes payload = Bytes::Of(static_cast<int64_t>(marginal)) + lbx_config_.message_header;
  bytes_out_ += payload.count();
  // The proxy adds a (small) recompression cost at the server.
  ChargeEncode(Duration::Micros(3 + static_cast<int64_t>(raw.size()) / 100));
  EmitMessage(channel, payload);
}

void LbxProtocol::OnRequest(std::vector<uint8_t> request) {
  // Tiny requests ride along with the next one; everything else goes out per-request.
  uint8_t stream_class = request.empty() ? 0 : request[0];
  coalesce_buffer_.insert(coalesce_buffer_.end(), request.begin(), request.end());
  if (Bytes::Of(static_cast<int64_t>(coalesce_buffer_.size())) < lbx_config_.coalesce_below) {
    return;
  }
  EmitCompressed(Channel::kDisplay, stream_class, coalesce_buffer_);
  coalesce_buffer_.clear();
}

void LbxProtocol::OnEvent(std::vector<uint8_t> event) {
  // Delta-encode against the previous event: identical fields become zero runs that the
  // codec collapses.
  std::vector<uint8_t> delta(event.size());
  for (size_t i = 0; i < event.size(); ++i) {
    uint8_t prev = i < prev_event_.size() ? prev_event_[i] : 0;
    delta[i] = event[i] ^ prev;
  }
  prev_event_ = std::move(event);
  EmitCompressed(Channel::kInput, kEventClass, delta);
}

void LbxProtocol::OnReply(std::vector<uint8_t> reply) {
  if (rng().NextBool(lbx_config_.reply_short_circuit)) {
    return;  // answered from the proxy's cache; nothing crosses the wire
  }
  EmitCompressed(Channel::kInput, kReplyClass, reply);
}

void LbxProtocol::Flush() {
  XProtocol::Flush();  // no-op for LBX (requests bypass the Xlib buffer); kept for contract
  if (!coalesce_buffer_.empty()) {
    uint8_t stream_class = coalesce_buffer_[0];
    EmitCompressed(Channel::kDisplay, stream_class, coalesce_buffer_);
    coalesce_buffer_.clear();
  }
}

void LbxProtocol::SaveTo(SnapshotWriter& w) const {
  XProtocol::SaveTo(w);
  w.Blob(coalesce_buffer_.data(), coalesce_buffer_.size());
  w.Blob(prev_event_.data(), prev_event_.size());
  std::vector<uint8_t> classes;
  classes.reserve(dict_.size());
  for (const auto& [cls, history] : dict_) {
    classes.push_back(cls);
  }
  std::sort(classes.begin(), classes.end());
  w.U64(classes.size());
  for (uint8_t cls : classes) {
    const std::vector<uint8_t>& history = dict_.at(cls);
    w.U8(cls);
    w.Blob(history.data(), history.size());
  }
  w.I64(bytes_in_);
  w.I64(bytes_out_);
}

void LbxProtocol::LoadFrom(SnapshotReader& r, EventRearm& plan) {
  XProtocol::LoadFrom(r, plan);
  coalesce_buffer_ = r.Blob();
  prev_event_ = r.Blob();
  dict_.clear();
  uint64_t classes = r.U64();
  for (uint64_t i = 0; i < classes; ++i) {
    uint8_t cls = r.U8();
    dict_[cls] = r.Blob();
  }
  bytes_in_ = r.I64();
  bytes_out_ = r.I64();
}

}  // namespace tcs
