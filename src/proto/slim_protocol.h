// The SLIM wire protocol (Schmidt, Lam & Northcutt, "The interactive performance of
// SLIM: a stateless, thin-client architecture", 1999) — the Sun Ray protocol the paper
// discusses in §7: "more platform independent than X or RDP, [but] roughly equivalent in
// performance to X, placing it still behind RDP and LBX in network load efficiency."
//
// SLIM is deliberately simple and stateless: four low-level display primitives (SET raw
// pixels, BITMAP two-color, FILL, COPY), no client-side caching, no stream compression,
// fixed per-command headers, one message per command. Text renders as two-color BITMAP
// commands (1 bit per pixel plus colors); everything else ships raw or as a rectangle op.

#ifndef TCS_SRC_PROTO_SLIM_PROTOCOL_H_
#define TCS_SRC_PROTO_SLIM_PROTOCOL_H_

#include "src/proto/display_protocol.h"
#include "src/sim/random.h"

namespace tcs {

struct SlimConfig {
  Bytes command_header = Bytes::Of(16);
  Bytes input_event_bytes = Bytes::Of(20);
  // Sun Ray session establishment is thin: the appliance is stateless.
  Bytes session_setup = Bytes::Of(8200);
  // Glyph cell geometry for text rendered as two-color bitmaps.
  int glyph_width = 8;
  int glyph_height = 16;
};

class SlimProtocol final : public DisplayProtocol {
 public:
  SlimProtocol(Simulator& sim, MessageSender& display_out, MessageSender& input_out,
               ProtoTap* tap, Rng rng, SlimConfig config = {});

  void SubmitDraw(const DrawCommand& cmd) override;
  void SubmitDrawBatch(std::span<const DrawCommand> cmds) override;
  void SubmitInput(const InputEvent& event) override;
  std::string name() const override { return "SLIM"; }
  Bytes session_setup_bytes() const override { return config_.session_setup; }

  int64_t commands_encoded() const { return commands_encoded_; }

  // Checkpoint/restore: SLIM is stateless on the wire; only the RNG position and the
  // command counter persist.
  void SaveTo(SnapshotWriter& w) const override {
    DisplayProtocol::SaveTo(w);
    for (uint64_t word : rng_.state()) {
      w.U64(word);
    }
    w.I64(commands_encoded_);
  }
  void LoadFrom(SnapshotReader& r, EventRearm& plan) override {
    DisplayProtocol::LoadFrom(r, plan);
    std::array<uint64_t, 4> state;
    for (uint64_t& word : state) {
      word = r.U64();
    }
    rng_.set_state(state);
    commands_encoded_ = r.I64();
  }

 private:
  // The command encoder proper; SubmitDraw/SubmitDrawBatch are thin dispatch shims.
  void EncodeDraw(const DrawCommand& cmd);
  void EmitCommand(Bytes payload);

  SlimConfig config_;
  Rng rng_;
  int64_t commands_encoded_ = 0;
};

}  // namespace tcs

#endif  // TCS_SRC_PROTO_SLIM_PROTOCOL_H_
