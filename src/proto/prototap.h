// prototap — the paper's protocol tracing tool, reimplemented.
//
// The original was "our own protocol tracing software based on the tcpdump pcap packet
// sniffing library" (§6.1.2). Ours observes protocol messages as they are emitted and
// accumulates, per channel: message count, payload bytes, counted (payload + TCP/IP
// header) bytes, and a byte-rate time series for the load-vs-time figures.

#ifndef TCS_SRC_PROTO_PROTOTAP_H_
#define TCS_SRC_PROTO_PROTOTAP_H_

#include <cstdint>

#include "src/proto/draw.h"
#include "src/sim/snapshot.h"
#include "src/sim/time.h"
#include "src/sim/units.h"
#include "src/util/time_series.h"

namespace tcs {

class ProtoTap {
 public:
  explicit ProtoTap(Duration series_bucket = Duration::Seconds(1));

  void RecordMessage(Channel channel, Bytes payload, Bytes counted, TimePoint when);

  int64_t messages(Channel channel) const { return Side(channel).messages; }
  Bytes payload_bytes(Channel channel) const { return Side(channel).payload; }
  Bytes counted_bytes(Channel channel) const { return Side(channel).counted; }

  int64_t total_messages() const {
    return display_.messages + input_.messages;
  }
  Bytes total_counted_bytes() const { return display_.counted + input_.counted; }

  // Average counted message size across both channels (the paper's "Avg. message size").
  double AverageMessageSize() const;

  // Counted bytes per bucket on one channel; divide by bucket seconds for load.
  const TimeSeries& series(Channel channel) const { return Side(channel).series; }

  // Mean carried load over [0, end] on the given channel.
  BitsPerSecond MeanLoad(Channel channel, Duration window) const;

  // Checkpoint/restore: both channels' counters and series.
  void SaveTo(SnapshotWriter& w) const {
    SaveSide(w, display_);
    SaveSide(w, input_);
  }
  void LoadFrom(SnapshotReader& r) {
    LoadSide(r, display_);
    LoadSide(r, input_);
  }

 private:
  struct SideStats {
    explicit SideStats(Duration bucket) : series(bucket) {}
    int64_t messages = 0;
    Bytes payload = Bytes::Zero();
    Bytes counted = Bytes::Zero();
    TimeSeries series;
  };

  const SideStats& Side(Channel channel) const {
    return channel == Channel::kDisplay ? display_ : input_;
  }
  SideStats& Side(Channel channel) {
    return channel == Channel::kDisplay ? display_ : input_;
  }

  static void SaveSide(SnapshotWriter& w, const SideStats& s) {
    w.I64(s.messages);
    w.I64(s.payload.count());
    w.I64(s.counted.count());
    s.series.SaveTo(w);
  }
  static void LoadSide(SnapshotReader& r, SideStats& s) {
    s.messages = r.I64();
    s.payload = Bytes::Of(r.I64());
    s.counted = Bytes::Of(r.I64());
    s.series.LoadFrom(r);
  }

  SideStats display_;
  SideStats input_;
};

}  // namespace tcs

#endif  // TCS_SRC_PROTO_PROTOTAP_H_
