// Remote-display protocol interface.
//
// A DisplayProtocol sits between applications and the network: DrawCommands submitted on
// the server are encoded into display-channel messages; InputEvents from the user's
// machine become input-channel messages. Implementations (X, LBX, RDP) differ in message
// granularity, compression, caching, and server-side encode cost — exactly the axes §6
// compares.

#ifndef TCS_SRC_PROTO_DISPLAY_PROTOCOL_H_
#define TCS_SRC_PROTO_DISPLAY_PROTOCOL_H_

#include <functional>
#include <span>
#include <string>
#include <utility>

#include "src/net/endpoint.h"
#include "src/obs/trace.h"
#include "src/proto/draw.h"
#include "src/proto/prototap.h"
#include "src/sim/simulator.h"
#include "src/sim/snapshot.h"

namespace tcs {

class DisplayProtocol {
 public:
  DisplayProtocol(Simulator& sim, MessageSender& display_out, MessageSender& input_out,
                  ProtoTap* tap);
  virtual ~DisplayProtocol() = default;

  DisplayProtocol(const DisplayProtocol&) = delete;
  DisplayProtocol& operator=(const DisplayProtocol&) = delete;

  // Server side: the application produced a drawing operation.
  virtual void SubmitDraw(const DrawCommand& cmd) = 0;

  // Server side: the application produced a burst of drawing operations that will be
  // flushed together. Encoders override this to pay virtual dispatch once per burst
  // instead of once per command; the wire output is identical to submitting each command
  // in order. Default: the per-command loop.
  virtual void SubmitDrawBatch(std::span<const DrawCommand> cmds) {
    for (const DrawCommand& cmd : cmds) {
      SubmitDraw(cmd);
    }
  }

  // Client side: the user produced an input event.
  virtual void SubmitInput(const InputEvent& event) = 0;

  // Flushes any batching buffers (end of an interaction step).
  virtual void Flush() {}

  // The session's client reconnected after a disconnect: any client-side state (bitmap
  // cache, glyph sets) must be assumed gone. Default: stateless protocol, nothing to do.
  virtual void OnSessionReconnect() {}

  virtual std::string name() const = 0;

  // Bytes exchanged during session negotiation/initialization (§6.1.1 compulsory load).
  virtual Bytes session_setup_bytes() const = 0;

  // Receives the server-side CPU cost of each encode operation; the server model turns
  // these into scheduler work. Null by default (costs are then dropped).
  void set_encode_cost_sink(std::function<void(Duration)> sink) {
    encode_cost_sink_ = std::move(sink);
  }

  // Invoked with every display-channel message payload size right before transmission;
  // the latency pipeline uses this to timestamp screen updates. Null by default.
  void set_display_message_hook(std::function<void(Bytes)> hook) {
    display_hook_ = std::move(hook);
  }

  // Observability: every emitted message becomes a proto-category instant on a per-channel
  // track; implementations add their own events (cache hits, compression) via tracer().
  void SetTracer(Tracer* tracer);

  // Graceful degradation: the server's DegradationController pushes its current level
  // plus a bitmap payload scale (< 1.0 = encode harder and ship smaller rasters, the
  // kHardCache lever; exactly 1.0 = full fidelity and byte-identical to a build without
  // the degradation layer). Protocols without bitmap paths simply ignore the scale.
  void SetDegradation(int level, double payload_scale) {
    degradation_level_ = level;
    degraded_payload_scale_ = payload_scale;
  }
  int degradation_level() const { return degradation_level_; }

  // Checkpoint/restore: every protocol's dynamic encoder state (batching buffers, RNG
  // positions, caches, pending flush events). Implementations override, call the base
  // (degradation levers), and append their own state; the hooks/sinks themselves are
  // reconstruction config.
  virtual void SaveTo(SnapshotWriter& w) const {
    w.I64(degradation_level_);
    w.F64(degraded_payload_scale_);
  }
  virtual void LoadFrom(SnapshotReader& r, EventRearm& plan) {
    (void)plan;
    degradation_level_ = static_cast<int>(r.I64());
    degraded_payload_scale_ = r.F64();
  }

 protected:
  double degraded_payload_scale() const { return degraded_payload_scale_; }
  Tracer* tracer() { return tracer_; }
  TraceTrack display_track() const { return display_track_; }
  // Emits one protocol message on the given channel: records it in the tap and hands it
  // to the channel's MessageSender for wire timing.
  void EmitMessage(Channel channel, Bytes payload);

  void ChargeEncode(Duration cost) {
    if (encode_cost_sink_) {
      encode_cost_sink_(cost);
    }
  }

  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }

 private:
  Simulator& sim_;
  MessageSender& display_out_;
  MessageSender& input_out_;
  ProtoTap* tap_;
  Tracer* tracer_ = nullptr;
  TraceTrack display_track_;
  TraceTrack input_track_;
  std::function<void(Duration)> encode_cost_sink_;
  std::function<void(Bytes)> display_hook_;
  int degradation_level_ = 0;
  double degraded_payload_scale_ = 1.0;
};

}  // namespace tcs

#endif  // TCS_SRC_PROTO_DISPLAY_PROTOCOL_H_
