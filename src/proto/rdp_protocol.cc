#include "src/proto/rdp_protocol.h"

#include <algorithm>
#include <array>
#include <vector>

namespace tcs {

RdpProtocol::RdpProtocol(Simulator& sim, MessageSender& display_out,
                         MessageSender& input_out, ProtoTap* tap, Rng rng, RdpConfig config)
    : DisplayProtocol(sim, display_out, input_out, tap),
      config_(config),
      rng_(rng),
      cache_(config.cache) {}

RdpProtocol::~RdpProtocol() {
  if (input_flush_event_.IsValid()) {
    sim().Cancel(input_flush_event_);
  }
}

void RdpProtocol::AppendOrder(Bytes order_bytes) {
  ++orders_encoded_;
  pdu_pending_ += order_bytes;
  if (pdu_pending_ >= config_.pdu_flush_threshold) {
    FlushPdu();
  }
}

void RdpProtocol::FlushPdu() {
  if (pdu_pending_.count() == 0) {
    return;
  }
  EmitMessage(Channel::kDisplay, pdu_pending_);
  pdu_pending_ = Bytes::Zero();
}

void RdpProtocol::SubmitDraw(const DrawCommand& cmd) { EncodeDraw(cmd); }

void RdpProtocol::SubmitDrawBatch(std::span<const DrawCommand> cmds) {
  for (const DrawCommand& cmd : cmds) {
    EncodeDraw(cmd);
  }
}

void RdpProtocol::EncodeDraw(const DrawCommand& cmd) {
  switch (cmd.op) {
    case DrawOp::kText: {
      // Glyphs render through the glyph cache: first use of a character code ships the
      // raster, subsequent uses a 2-byte index.
      Bytes order = config_.text_order_base;
      for (int i = 0; i < cmd.text_length; ++i) {
        int glyph = static_cast<int>(rng_.NextBelow(96));
        if (glyphs_seen_.insert(glyph).second) {
          order += config_.glyph_definition;
        } else {
          order += Bytes::Of(2);
        }
      }
      ChargeEncode(Duration::Micros(6 + cmd.text_length / 2));
      AppendOrder(order);
      break;
    }
    case DrawOp::kRect:
    case DrawOp::kLine:
      ChargeEncode(Duration::Micros(5));
      AppendOrder(config_.geometry_order);
      break;
    case DrawOp::kCopyArea:
      ChargeEncode(Duration::Micros(6));
      AppendOrder(config_.copy_order);
      break;
    case DrawOp::kPutImage: {
      if (cache_.Lookup(cmd.bitmap.content_hash)) {
        // Client already holds the pixels: a tiny order swaps them onto the screen.
        ChargeEncode(Duration::Micros(40));
        if (tracer() != nullptr) {
          tracer()->Instant(TraceCategory::kProto, "cache-hit", display_track(),
                            sim().Now(), "raw", cmd.bitmap.raw_bytes.count(), "sent",
                            config_.cache_hit_order.count());
        }
        AppendOrder(config_.cache_hit_order);
      } else {
        // Miss: the server compresses and ships the raster, and the client caches it.
        // Under hard-cache degradation the encoder trades extra CPU for a smaller raster
        // (payload scaled down, encode bill scaled up); at scale 1.0 this is the
        // unmodified full-fidelity path.
        double kib = cmd.bitmap.raw_bytes.ToKiBF();
        Bytes compressed = cmd.bitmap.compressed_bytes;
        if (degraded_payload_scale() < 1.0) {
          compressed = Bytes::Of(std::max<int64_t>(
              1, static_cast<int64_t>(static_cast<double>(compressed.count()) *
                                      degraded_payload_scale())));
          ChargeEncode(config_.bitmap_encode_per_kib * kib * 1.5);
        } else {
          ChargeEncode(config_.bitmap_encode_per_kib * kib);
        }
        cache_.Insert(cmd.bitmap.content_hash, compressed);
        if (tracer() != nullptr) {
          tracer()->Instant(TraceCategory::kProto, "cache-miss", display_track(),
                            sim().Now(), "raw", cmd.bitmap.raw_bytes.count(), "compressed",
                            compressed.count());
        }
        AppendOrder(config_.bitmap_order_header + compressed);
        FlushPdu();  // raster orders go out immediately
      }
      break;
    }
    case DrawOp::kSync:
      // RDP has no client round-trips for drawing state; the server answers locally.
      ChargeEncode(Duration::Micros(2));
      break;
  }
}

void RdpProtocol::SubmitInput(const InputEvent& event) {
  (void)event;
  ++pending_input_events_;
  if (!input_flush_event_.IsValid() || !sim().IsPending(input_flush_event_)) {
    input_flush_event_ =
        sim().Schedule(config_.input_batch_window, [this] { FlushInputBatch(); });
  }
}

void RdpProtocol::FlushInputBatch() {
  if (pending_input_events_ == 0) {
    return;
  }
  Bytes payload =
      config_.input_pdu_base + config_.input_event_bytes * pending_input_events_;
  pending_input_events_ = 0;
  EmitMessage(Channel::kInput, payload);
}

void RdpProtocol::Flush() {
  FlushPdu();
  FlushInputBatch();
}

void RdpProtocol::OnSessionReconnect() {
  // Anything buffered was addressed to the old connection.
  pdu_pending_ = Bytes::Zero();
  pending_input_events_ = 0;
  cache_.InvalidateAll();
  glyphs_seen_.clear();
}

void RdpProtocol::SaveTo(SnapshotWriter& w) const {
  DisplayProtocol::SaveTo(w);
  for (uint64_t word : rng_.state()) {
    w.U64(word);
  }
  cache_.SaveTo(w);
  std::vector<int> glyphs(glyphs_seen_.begin(), glyphs_seen_.end());
  std::sort(glyphs.begin(), glyphs.end());
  w.U64(glyphs.size());
  for (int g : glyphs) {
    w.I64(g);
  }
  w.I64(pdu_pending_.count());
  w.I64(pending_input_events_);
  uint64_t seq = 0;
  TimePoint when;
  bool flush_pending =
      input_flush_event_.IsValid() && sim().PendingInfo(input_flush_event_, &seq, &when);
  w.Bool(flush_pending);
  if (flush_pending) {
    w.U64(seq);
    w.Time(when);
  }
  w.I64(orders_encoded_);
}

void RdpProtocol::LoadFrom(SnapshotReader& r, EventRearm& plan) {
  DisplayProtocol::LoadFrom(r, plan);
  std::array<uint64_t, 4> state;
  for (uint64_t& word : state) {
    word = r.U64();
  }
  rng_.set_state(state);
  cache_.LoadFrom(r);
  glyphs_seen_.clear();
  uint64_t glyphs = r.U64();
  for (uint64_t i = 0; i < glyphs; ++i) {
    glyphs_seen_.insert(static_cast<int>(r.I64()));
  }
  pdu_pending_ = Bytes::Of(r.I64());
  pending_input_events_ = static_cast<int>(r.I64());
  input_flush_event_ = EventId();
  if (r.Bool()) {
    uint64_t seq = r.U64();
    TimePoint when = r.Time();
    plan.Schedule("rdp.input_flush", seq, when, [this] { FlushInputBatch(); },
                  &input_flush_event_);
  }
  orders_encoded_ = r.I64();
}

}  // namespace tcs
