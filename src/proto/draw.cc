#include "src/proto/draw.h"

#include <algorithm>
#include <cassert>

namespace tcs {

BitmapRef BitmapRef::Make(uint64_t hash, int width, int height, double compression_ratio) {
  assert(width > 0 && height > 0);
  assert(compression_ratio > 0.0 && compression_ratio <= 1.0);
  BitmapRef b;
  b.content_hash = hash;
  b.width = width;
  b.height = height;
  // 8 bits per pixel (palettized GIF-era rasters).
  b.raw_bytes = Bytes::Of(static_cast<int64_t>(width) * height);
  b.compressed_bytes = Bytes::Of(std::max<int64_t>(
      16, static_cast<int64_t>(static_cast<double>(b.raw_bytes.count()) * compression_ratio)));
  return b;
}

DrawCommand DrawCommand::Text(int chars, int x, int y) {
  DrawCommand c;
  c.op = DrawOp::kText;
  c.text_length = chars;
  c.x = x;
  c.y = y;
  return c;
}

DrawCommand DrawCommand::Rect(int w, int h) {
  DrawCommand c;
  c.op = DrawOp::kRect;
  c.width = w;
  c.height = h;
  return c;
}

DrawCommand DrawCommand::Line(int len) {
  DrawCommand c;
  c.op = DrawOp::kLine;
  c.width = len;
  return c;
}

DrawCommand DrawCommand::CopyArea(int w, int h) {
  DrawCommand c;
  c.op = DrawOp::kCopyArea;
  c.width = w;
  c.height = h;
  return c;
}

DrawCommand DrawCommand::PutImage(const BitmapRef& bitmap) {
  DrawCommand c;
  c.op = DrawOp::kPutImage;
  c.width = bitmap.width;
  c.height = bitmap.height;
  c.bitmap = bitmap;
  return c;
}

DrawCommand DrawCommand::Sync(Bytes reply) {
  DrawCommand c;
  c.op = DrawOp::kSync;
  c.reply_bytes = reply;
  return c;
}

InputEvent InputEvent::Key(bool press, int code) {
  return InputEvent{press ? InputType::kKeyPress : InputType::kKeyRelease, 0, 0, code};
}

InputEvent InputEvent::Move(int x, int y) {
  return InputEvent{InputType::kMouseMove, x, y, 0};
}

InputEvent InputEvent::Button(bool press) {
  return InputEvent{press ? InputType::kButtonPress : InputType::kButtonRelease, 0, 0, 0};
}

}  // namespace tcs
