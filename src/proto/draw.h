// The display/input vocabulary shared by applications and remote-display protocols.
//
// Applications (workload scripts) produce DrawCommands; the user's machine produces
// InputEvents. A DisplayProtocol encodes the former onto the display channel
// (server -> client) and the latter onto the input channel (client -> server) — the
// channel terminology of §6.

#ifndef TCS_SRC_PROTO_DRAW_H_
#define TCS_SRC_PROTO_DRAW_H_

#include <cstdint>
#include <string>

#include "src/sim/units.h"

namespace tcs {

enum class Channel { kDisplay, kInput };

// A rendered raster identified by content: two draws with the same hash are the same
// pixels (what a client-side bitmap cache keys on). `raw_bytes` is the uncompressed pixel
// payload an X PutImage carries; `compressed_bytes` is what RDP's bitmap codec ships on a
// cache miss.
struct BitmapRef {
  uint64_t content_hash = 0;
  int width = 0;
  int height = 0;
  Bytes raw_bytes = Bytes::Zero();
  Bytes compressed_bytes = Bytes::Zero();

  static BitmapRef Make(uint64_t hash, int width, int height, double compression_ratio);
};

enum class DrawOp {
  kText,      // draw a run of characters
  kRect,      // filled/outlined rectangle
  kLine,      // polyline segment
  kCopyArea,  // scroll / blit of existing screen content
  kPutImage,  // raster transfer (the animation workhorse)
  kSync,      // round-trip query: forces a flush and elicits a reply on the input channel
};

struct DrawCommand {
  DrawOp op = DrawOp::kRect;
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;
  // kText: number of characters drawn.
  int text_length = 0;
  // kPutImage:
  BitmapRef bitmap;
  // kSync: size of the reply the query elicits (font metrics, window properties, ...).
  Bytes reply_bytes = Bytes::Zero();

  static DrawCommand Text(int chars, int x = 0, int y = 0);
  static DrawCommand Rect(int w, int h);
  static DrawCommand Line(int len);
  static DrawCommand CopyArea(int w, int h);
  static DrawCommand PutImage(const BitmapRef& bitmap);
  static DrawCommand Sync(Bytes reply);
};

enum class InputType { kKeyPress, kKeyRelease, kMouseMove, kButtonPress, kButtonRelease };

struct InputEvent {
  InputType type = InputType::kKeyPress;
  int x = 0;
  int y = 0;
  int code = 0;

  static InputEvent Key(bool press, int code = 0);
  static InputEvent Move(int x, int y);
  static InputEvent Button(bool press);
};

}  // namespace tcs

#endif  // TCS_SRC_PROTO_DRAW_H_
