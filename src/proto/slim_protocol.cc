#include "src/proto/slim_protocol.h"

namespace tcs {

SlimProtocol::SlimProtocol(Simulator& sim, MessageSender& display_out,
                           MessageSender& input_out, ProtoTap* tap, Rng rng,
                           SlimConfig config)
    : DisplayProtocol(sim, display_out, input_out, tap), config_(config), rng_(rng) {}

void SlimProtocol::EmitCommand(Bytes payload) {
  ++commands_encoded_;
  EmitMessage(Channel::kDisplay, config_.command_header + payload);
}

void SlimProtocol::SubmitDraw(const DrawCommand& cmd) { EncodeDraw(cmd); }

void SlimProtocol::SubmitDrawBatch(std::span<const DrawCommand> cmds) {
  for (const DrawCommand& cmd : cmds) {
    EncodeDraw(cmd);
  }
}

void SlimProtocol::EncodeDraw(const DrawCommand& cmd) {
  switch (cmd.op) {
    case DrawOp::kText: {
      // BITMAP: 1 bit/pixel glyph cells plus the two colors.
      int64_t pixels = static_cast<int64_t>(cmd.text_length) * config_.glyph_width *
                       config_.glyph_height;
      ChargeEncode(Duration::Micros(4 + cmd.text_length / 2));
      EmitCommand(Bytes::Of(pixels / 8 + 8));
      break;
    }
    case DrawOp::kRect:
      ChargeEncode(Duration::Micros(3));
      EmitCommand(Bytes::Of(8));  // FILL: color + rect
      break;
    case DrawOp::kLine:
      // SLIM has no line primitive: a thin FILL per segment.
      ChargeEncode(Duration::Micros(3));
      EmitCommand(Bytes::Of(8));
      break;
    case DrawOp::kCopyArea:
      ChargeEncode(Duration::Micros(4));
      EmitCommand(Bytes::Of(12));  // COPY: src + dst rects
      break;
    case DrawOp::kPutImage:
      // SET: raw 8-bpp pixels, no compression, no cache.
      ChargeEncode(Duration::Micros(8 + cmd.bitmap.raw_bytes.count() / 60));
      EmitCommand(cmd.bitmap.raw_bytes);
      break;
    case DrawOp::kSync:
      // Stateless protocol: nothing to query; the server-side virtual framebuffer
      // answers locally.
      ChargeEncode(Duration::Micros(1));
      break;
  }
}

void SlimProtocol::SubmitInput(const InputEvent& event) {
  (void)event;
  EmitMessage(Channel::kInput, config_.input_event_bytes);
}

}  // namespace tcs
