// Low Bandwidth X (LBX, Fulton & Kantarjiev 1993) — a proxy pair living on both ends of
// an X connection that compresses the X byte stream (§2).
//
// Modelled as a subclass of XProtocol that intercepts the per-request / per-event /
// per-reply byte streams before framing:
//  * each display request is individually compressed (real LzCodec) and sent as its own
//    LBX message (4-byte proxy header + compressed body) — hence the paper's observation
//    that LBX moves fewer bytes than X but ~80% MORE display messages;
//  * input events are delta-compressed against the previous event;
//  * a fraction of round-trip replies is short-circuited entirely by the proxy's cache of
//    connection properties.

#ifndef TCS_SRC_PROTO_LBX_PROTOCOL_H_
#define TCS_SRC_PROTO_LBX_PROTOCOL_H_

#include <unordered_map>
#include <vector>

#include "src/proto/x_protocol.h"

namespace tcs {

struct LbxConfig {
  // Proxy framing overhead per LBX message.
  Bytes message_header = Bytes::Of(4);
  // Probability that a round-trip reply is answered from the proxy cache (never reaching
  // the wire).
  double reply_short_circuit = 0.3;
  // Requests accumulate until this many raw bytes are pending, then go out as one LBX
  // message (the proxy's small-packet avoidance). Finer than Xlib's batching, which is why
  // LBX sends more, smaller display messages than X.
  Bytes coalesce_below = Bytes::Of(128);
};

class LbxProtocol final : public XProtocol {
 public:
  LbxProtocol(Simulator& sim, MessageSender& display_out, MessageSender& input_out,
              ProtoTap* tap, Rng rng, LbxConfig lbx_config = {},
              XProtocolConfig x_config = {});

  std::string name() const override { return "LBX"; }
  // LBX rides on the X session handshake plus its own proxy negotiation.
  Bytes session_setup_bytes() const override;

  // Total bytes before/after compression, for reporting achieved ratios.
  int64_t bytes_in() const { return bytes_in_; }
  int64_t bytes_out() const { return bytes_out_; }

  void Flush() override;

  // Checkpoint/restore: the X layer's state plus the proxy's coalesce buffer, per-class
  // compression dictionaries (serialized sorted by class), and byte counters.
  void SaveTo(SnapshotWriter& w) const override;
  void LoadFrom(SnapshotReader& r, EventRearm& plan) override;

 protected:
  void OnRequest(std::vector<uint8_t> request) override;
  void OnEvent(std::vector<uint8_t> event) override;
  void OnReply(std::vector<uint8_t> reply) override;

 private:
  // Compresses `raw` against the rolling dictionary for `stream_class` (first byte of the
  // request, or a synthetic class id for events/replies) — the per-class previous message
  // serves as shared LZ history, approximating the real proxy's stream compressor.
  void EmitCompressed(Channel channel, uint8_t stream_class, const std::vector<uint8_t>& raw);

  LbxConfig lbx_config_;
  std::vector<uint8_t> coalesce_buffer_;
  std::vector<uint8_t> prev_event_;
  std::unordered_map<uint8_t, std::vector<uint8_t>> dict_;
  int64_t bytes_in_ = 0;
  int64_t bytes_out_ = 0;
};

}  // namespace tcs

#endif  // TCS_SRC_PROTO_LBX_PROTOCOL_H_
