// VNC / RFB (Richardson et al., "Virtual Network Computing", 1998) — the other §7
// related-work protocol: a framebuffer-level, client-pull design.
//
// The client sends FramebufferUpdateRequests; the server replies with the regions that
// changed since the last request, hextile-style encoded. Pulling naturally coalesces
// rapid changes (an animation ticking faster than the pull rate only ships the latest
// frame), which trades update latency for bandwidth — the opposite end of the design
// space from RDP's server-push-plus-cache.

#ifndef TCS_SRC_PROTO_VNC_PROTOCOL_H_
#define TCS_SRC_PROTO_VNC_PROTOCOL_H_

#include "src/proto/display_protocol.h"
#include "src/sim/periodic.h"
#include "src/sim/random.h"

namespace tcs {

struct VncConfig {
  // Client pull cadence (request -> update round).
  Duration pull_interval = Duration::Millis(100);
  Bytes update_request_bytes = Bytes::Of(10);
  Bytes update_header = Bytes::Of(16);
  Bytes rect_header = Bytes::Of(12);
  Bytes input_event_bytes = Bytes::Of(8);
  // Hextile-style encoding effectiveness on UI content.
  double encode_ratio = 0.45;
  // Total framebuffer size (dirty bytes per round are capped by a full-screen repaint).
  Bytes framebuffer = Bytes::Of(800 * 600);
  Bytes session_setup = Bytes::Of(12400);
};

class VncProtocol final : public DisplayProtocol {
 public:
  VncProtocol(Simulator& sim, MessageSender& display_out, MessageSender& input_out,
              ProtoTap* tap, Rng rng, VncConfig config = {});

  void SubmitDraw(const DrawCommand& cmd) override;
  void SubmitDrawBatch(std::span<const DrawCommand> cmds) override;
  void SubmitInput(const InputEvent& event) override;
  // A no-op: updates ship on the pull cadence, never on application flush boundaries.
  void Flush() override;
  std::string name() const override { return "VNC"; }
  Bytes session_setup_bytes() const override { return config_.session_setup; }

  // Starts the client's pull loop. Experiments must call this once (the protocol cannot
  // push updates on its own).
  void StartClientPull();
  void StopClientPull();

  int64_t updates_sent() const { return updates_sent_; }

  // Checkpoint/restore: RNG position, accumulated damage, and the pull loop's pending
  // firing.
  void SaveTo(SnapshotWriter& w) const override {
    DisplayProtocol::SaveTo(w);
    for (uint64_t word : rng_.state()) {
      w.U64(word);
    }
    w.I64(dirty_raw_.count());
    w.I64(dirty_rects_);
    w.I64(updates_sent_);
    pull_task_.SaveTo(w, sim());
  }
  void LoadFrom(SnapshotReader& r, EventRearm& plan) override {
    DisplayProtocol::LoadFrom(r, plan);
    std::array<uint64_t, 4> state;
    for (uint64_t& word : state) {
      word = r.U64();
    }
    rng_.set_state(state);
    dirty_raw_ = Bytes::Of(r.I64());
    dirty_rects_ = static_cast<int>(r.I64());
    updates_sent_ = r.I64();
    pull_task_.LoadFrom(r, plan, "vnc.pull");
  }

 private:
  // The damage accumulator proper; SubmitDraw/SubmitDrawBatch are thin dispatch shims.
  void EncodeDraw(const DrawCommand& cmd);
  void OnPull();

  VncConfig config_;
  Rng rng_;
  PeriodicTask pull_task_;
  Bytes dirty_raw_ = Bytes::Zero();
  int dirty_rects_ = 0;
  int64_t updates_sent_ = 0;
};

}  // namespace tcs

#endif  // TCS_SRC_PROTO_VNC_PROTOCOL_H_
