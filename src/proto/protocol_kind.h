// Identifier for the remote-display protocols this framework models.

#ifndef TCS_SRC_PROTO_PROTOCOL_KIND_H_
#define TCS_SRC_PROTO_PROTOCOL_KIND_H_

namespace tcs {

enum class ProtocolKind {
  kRdp,   // TSE's Remote Display Protocol
  kX,     // the X Window System core protocol
  kLbx,   // Low Bandwidth X proxy
  kSlim,  // Sun Ray / SLIM (related work, §7)
  kVnc,   // RFB / Virtual Network Computing (related work, §7)
};

}  // namespace tcs

#endif  // TCS_SRC_PROTO_PROTOCOL_KIND_H_
