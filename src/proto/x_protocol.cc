#include "src/proto/x_protocol.h"

#include <algorithm>
#include <array>
#include <cassert>

namespace tcs {

namespace {

// X pads all requests to 4-byte boundaries.
size_t Pad4(size_t n) {
  return (n + 3) & ~size_t{3};
}

}  // namespace

XProtocol::XProtocol(Simulator& sim, MessageSender& display_out, MessageSender& input_out,
                     ProtoTap* tap, Rng rng, XProtocolConfig config)
    : DisplayProtocol(sim, display_out, input_out, tap), config_(config), rng_(rng) {}

std::vector<uint8_t> XProtocol::BuildRequest(uint8_t opcode, size_t payload_len,
                                             double redundancy) {
  size_t total = 4 + Pad4(payload_len);
  std::vector<uint8_t> bytes(total);
  bytes[0] = opcode;
  bytes[1] = 0;
  bytes[2] = static_cast<uint8_t>(total / 4);
  bytes[3] = static_cast<uint8_t>((total / 4) >> 8);

  // Raster data (PutImage, opcode 72) and very large payloads carry fresh content; small
  // structured requests drift from a per-opcode template.
  constexpr uint8_t kPutImageOpcode = 72;
  if (opcode == kPutImageOpcode || total > 512) {
    rng_.FillBytes(bytes.data() + 4, total - 4, redundancy);
  } else {
    std::vector<uint8_t>& tmpl = request_templates_[opcode];
    if (tmpl.size() != total - 4) {
      tmpl.resize(total - 4);
      rng_.FillBytes(tmpl.data(), tmpl.size(), redundancy);
    }
    // Mutate a redundancy-dependent fraction of the template: coordinates, sequence
    // numbers, and string content change between requests; structure does not.
    size_t mutations = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(tmpl.size()) * (1.0 - redundancy) / 2));
    for (size_t m = 0; m < mutations; ++m) {
      size_t pos = static_cast<size_t>(rng_.NextBelow(tmpl.size()));
      tmpl[pos] = static_cast<uint8_t>(rng_.NextU64());
    }
    std::copy(tmpl.begin(), tmpl.end(), bytes.begin() + 4);
  }
  ++requests_encoded_;
  RequestProfile& prof = request_profile_[opcode];
  ++prof.count;
  prof.bytes += static_cast<int64_t>(total);
  return bytes;
}

const char* XProtocol::OpcodeName(uint8_t opcode) {
  switch (opcode) {
    case 43:
      return "GetInputFocus";
    case 62:
      return "CopyArea";
    case 65:
      return "PolyLine";
    case 70:
      return "PolyFillRectangle";
    case 72:
      return "PutImage";
    case 74:
      return "PolyText8";
    default:
      return "?";
  }
}

void XProtocol::SubmitDraw(const DrawCommand& cmd) { EncodeDraw(cmd); }

void XProtocol::SubmitDrawBatch(std::span<const DrawCommand> cmds) {
  for (const DrawCommand& cmd : cmds) {
    EncodeDraw(cmd);
  }
}

void XProtocol::EncodeDraw(const DrawCommand& cmd) {
  switch (cmd.op) {
    case DrawOp::kText: {
      // PolyText8: 24-byte fixed part + the string.
      ChargeEncode(Duration::Micros(5 + cmd.text_length / 4));
      OnRequest(BuildRequest(74, 20 + static_cast<size_t>(cmd.text_length),
                             config_.text_redundancy));
      break;
    }
    case DrawOp::kRect:
      ChargeEncode(Duration::Micros(4));
      OnRequest(BuildRequest(70, 24, config_.geometry_redundancy));  // PolyFillRectangle
      break;
    case DrawOp::kLine:
      ChargeEncode(Duration::Micros(4));
      OnRequest(BuildRequest(65, 20, config_.geometry_redundancy));  // PolyLine
      break;
    case DrawOp::kCopyArea:
      ChargeEncode(Duration::Micros(6));
      OnRequest(BuildRequest(62, 24, config_.geometry_redundancy));  // CopyArea
      break;
    case DrawOp::kPutImage: {
      // PutImage ships the raw pixels: 20-byte fixed part + w*h bytes at 8 bpp. Server
      // cost is essentially a copy through the socket. Pixel content is a deterministic
      // function of the bitmap's content hash: redrawing the same widget or animation
      // frame puts identical bytes on the stream (which a downstream compressor may or
      // may not be able to exploit — X itself cannot).
      size_t pixels = static_cast<size_t>(cmd.bitmap.raw_bytes.count());
      ChargeEncode(Duration::Micros(10 + static_cast<int64_t>(pixels) / 50));
      size_t total = 4 + Pad4(16 + pixels);
      std::vector<uint8_t> bytes(total);
      bytes[0] = 72;  // PutImage opcode
      bytes[2] = static_cast<uint8_t>(total / 4);
      bytes[3] = static_cast<uint8_t>((total / 4) >> 8);
      Rng content_rng(cmd.bitmap.content_hash);
      content_rng.FillBytes(bytes.data() + 4, total - 4, config_.image_redundancy);
      ++requests_encoded_;
      RequestProfile& prof = request_profile_[72];
      ++prof.count;
      prof.bytes += static_cast<int64_t>(total);
      OnRequest(std::move(bytes));
      break;
    }
    case DrawOp::kSync: {
      // Round trip: the pending buffer must flush, then the reply arrives on the input
      // channel (from the display server on the user's machine back to the application).
      ChargeEncode(Duration::Micros(8));
      OnRequest(BuildRequest(43, 4, config_.geometry_redundancy));  // e.g. GetInputFocus
      Flush();
      // Replies (font metrics, window properties) are highly repetitive across queries;
      // model them as drifting from a template like requests are.
      size_t reply_len = std::max<size_t>(32, static_cast<size_t>(cmd.reply_bytes.count()));
      std::vector<uint8_t>& tmpl = request_templates_[0xFF];
      if (tmpl.size() != reply_len) {
        tmpl.resize(reply_len);
        rng_.FillBytes(tmpl.data(), tmpl.size(), config_.reply_redundancy);
      }
      size_t mutations = std::max<size_t>(1, reply_len / 16);
      for (size_t m = 0; m < mutations; ++m) {
        tmpl[static_cast<size_t>(rng_.NextBelow(tmpl.size()))] =
            static_cast<uint8_t>(rng_.NextU64());
      }
      OnReply(std::vector<uint8_t>(tmpl));
      break;
    }
  }
}

void XProtocol::SubmitInput(const InputEvent& event) {
  // X events are fixed 32-byte structures: type/detail/sequence/time/coordinates, then
  // padding. Consecutive events share almost everything, which is what LBX's delta
  // encoding exploits.
  std::vector<uint8_t> bytes(static_cast<size_t>(config_.event_bytes.count()), 0);
  bytes[0] = static_cast<uint8_t>(event.type);
  bytes[1] = static_cast<uint8_t>(event.code);
  bytes[4] = static_cast<uint8_t>(event.x);
  bytes[5] = static_cast<uint8_t>(event.x >> 8);
  bytes[6] = static_cast<uint8_t>(event.y);
  bytes[7] = static_cast<uint8_t>(event.y >> 8);
  // Timestamp field: low bits change every event.
  uint64_t ts = static_cast<uint64_t>(sim().Now().ToMicros() / 1000);
  bytes[8] = static_cast<uint8_t>(ts);
  bytes[9] = static_cast<uint8_t>(ts >> 8);
  OnEvent(std::move(bytes));
}

void XProtocol::OnRequest(std::vector<uint8_t> request) {
  xlib_buffer_.insert(xlib_buffer_.end(), request.begin(), request.end());
  if (Bytes::Of(static_cast<int64_t>(xlib_buffer_.size())) >= config_.flush_threshold) {
    FlushDisplayBuffer();
  }
}

void XProtocol::OnEvent(std::vector<uint8_t> event) {
  EmitMessage(Channel::kInput, Bytes::Of(static_cast<int64_t>(event.size())));
}

void XProtocol::OnReply(std::vector<uint8_t> reply) {
  EmitMessage(Channel::kInput, Bytes::Of(static_cast<int64_t>(reply.size())));
}

void XProtocol::FlushDisplayBuffer() {
  if (xlib_buffer_.empty()) {
    return;
  }
  EmitMessage(Channel::kDisplay, Bytes::Of(static_cast<int64_t>(xlib_buffer_.size())));
  xlib_buffer_.clear();
}

void XProtocol::Flush() {
  FlushDisplayBuffer();
}

void XProtocol::SaveTo(SnapshotWriter& w) const {
  DisplayProtocol::SaveTo(w);
  for (uint64_t word : rng_.state()) {
    w.U64(word);
  }
  w.Blob(xlib_buffer_.data(), xlib_buffer_.size());
  // unordered_map: serialize sorted by opcode so equal state gives equal bytes.
  std::vector<uint8_t> opcodes;
  opcodes.reserve(request_templates_.size());
  for (const auto& [op, tmpl] : request_templates_) {
    opcodes.push_back(op);
  }
  std::sort(opcodes.begin(), opcodes.end());
  w.U64(opcodes.size());
  for (uint8_t op : opcodes) {
    const std::vector<uint8_t>& tmpl = request_templates_.at(op);
    w.U8(op);
    w.Blob(tmpl.data(), tmpl.size());
  }
  w.U64(request_profile_.size());
  for (const auto& [op, prof] : request_profile_) {
    w.U8(op);
    w.I64(prof.count);
    w.I64(prof.bytes);
  }
  w.I64(requests_encoded_);
}

void XProtocol::LoadFrom(SnapshotReader& r, EventRearm& plan) {
  DisplayProtocol::LoadFrom(r, plan);
  std::array<uint64_t, 4> state;
  for (uint64_t& word : state) {
    word = r.U64();
  }
  rng_.set_state(state);
  xlib_buffer_ = r.Blob();
  request_templates_.clear();
  uint64_t templates = r.U64();
  for (uint64_t i = 0; i < templates; ++i) {
    uint8_t op = r.U8();
    request_templates_[op] = r.Blob();
  }
  request_profile_.clear();
  uint64_t profiled = r.U64();
  for (uint64_t i = 0; i < profiled; ++i) {
    uint8_t op = r.U8();
    RequestProfile& prof = request_profile_[op];
    prof.count = r.I64();
    prof.bytes = r.I64();
  }
  requests_encoded_ = r.I64();
}

}  // namespace tcs
