#include "src/proto/vnc_protocol.h"

#include <algorithm>

namespace tcs {

VncProtocol::VncProtocol(Simulator& sim, MessageSender& display_out,
                         MessageSender& input_out, ProtoTap* tap, Rng rng, VncConfig config)
    : DisplayProtocol(sim, display_out, input_out, tap),
      config_(config),
      rng_(rng),
      pull_task_(sim, config.pull_interval, [this] { OnPull(); }) {}

void VncProtocol::StartClientPull() {
  pull_task_.Start(config_.pull_interval);
}

void VncProtocol::StopClientPull() {
  pull_task_.Stop();
}

void VncProtocol::SubmitDraw(const DrawCommand& cmd) { EncodeDraw(cmd); }

void VncProtocol::SubmitDrawBatch(std::span<const DrawCommand> cmds) {
  for (const DrawCommand& cmd : cmds) {
    EncodeDraw(cmd);
  }
}

void VncProtocol::EncodeDraw(const DrawCommand& cmd) {
  // Everything lands in the server-side framebuffer; the protocol only tracks how many
  // raw bytes are dirty for the next update.
  Bytes raw = Bytes::Zero();
  switch (cmd.op) {
    case DrawOp::kText:
      raw = Bytes::Of(static_cast<int64_t>(cmd.text_length) * 8 * 16);
      break;
    case DrawOp::kRect:
      raw = Bytes::Of(static_cast<int64_t>(cmd.width) * std::max(1, cmd.height));
      break;
    case DrawOp::kLine:
      raw = Bytes::Of(static_cast<int64_t>(std::max(1, cmd.width)) * 2);
      break;
    case DrawOp::kCopyArea:
      // The framebuffer copy dirties the destination; RFB has a CopyRect encoding that
      // ships only coordinates, so the wire cost is tiny but the region must still be
      // described.
      raw = Bytes::Of(32);
      break;
    case DrawOp::kPutImage:
      raw = cmd.bitmap.raw_bytes;
      break;
    case DrawOp::kSync:
      return;  // no round trips in RFB drawing
  }
  ChargeEncode(Duration::Micros(2 + raw.count() / 200));
  // Rapid repeated damage to the same region coalesces: cap at a full-screen repaint.
  dirty_raw_ = std::min(dirty_raw_ + raw, config_.framebuffer);
  ++dirty_rects_;
}

void VncProtocol::OnPull() {
  // Client request (input channel)...
  EmitMessage(Channel::kInput, config_.update_request_bytes);
  if (dirty_raw_.count() == 0) {
    return;  // server withholds the update until something changes
  }
  // ...server responds with the encoded dirty regions.
  int rects = std::min(dirty_rects_, 16);
  Bytes encoded = Bytes::Of(static_cast<int64_t>(
      static_cast<double>(dirty_raw_.count()) * config_.encode_ratio));
  Bytes payload = config_.update_header + config_.rect_header * rects + encoded;
  ChargeEncode(Duration::Micros(20 + dirty_raw_.count() / 100));
  ++updates_sent_;
  EmitMessage(Channel::kDisplay, payload);
  dirty_raw_ = Bytes::Zero();
  dirty_rects_ = 0;
}

void VncProtocol::Flush() {
  // Intentionally a no-op: RFB updates ship on the client's pull cadence, not on
  // application flush boundaries — that coalescing is the protocol's defining trade.
}

void VncProtocol::SubmitInput(const InputEvent& event) {
  (void)event;
  EmitMessage(Channel::kInput, config_.input_event_bytes);
}

}  // namespace tcs
