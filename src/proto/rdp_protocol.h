// The Remote Display Protocol (RDP) model (§2, §6).
//
// RDP's specification was unpublished; the paper characterizes it behaviourally and this
// model implements those behaviours:
//  * high-level drawing "orders" batched into large PDUs (few, large messages — RDP's
//    average message was ~2x X's and its message count ~7% of X's);
//  * a glyph cache: the first use of a character ships its raster, later uses ship a
//    2-byte index;
//  * the client-side 1.5 MB LRU bitmap cache (Figures 4-7): a hit costs a tiny
//    "swap bitmap" order, a miss ships the compressed raster and re-encodes it at the
//    server (the CPU load of Figure 6);
//  * batched, terse input: scancode-level events coalesced into periodic input PDUs.

#ifndef TCS_SRC_PROTO_RDP_PROTOCOL_H_
#define TCS_SRC_PROTO_RDP_PROTOCOL_H_

#include <unordered_set>

#include "src/proto/bitmap_cache.h"
#include "src/proto/display_protocol.h"
#include "src/sim/random.h"

namespace tcs {

struct RdpConfig {
  // PDU assembly: orders accumulate until the buffer reaches this size (or Flush()).
  Bytes pdu_flush_threshold = Bytes::Of(1400);
  // Input events are coalesced into one input PDU per window.
  Duration input_batch_window = Duration::Millis(50);
  Bytes session_setup = Bytes::Of(45328);
  // Per-order sizes.
  Bytes text_order_base = Bytes::Of(8);         // + 2 bytes per cached glyph
  Bytes glyph_definition = Bytes::Of(26);       // first use of a character
  Bytes geometry_order = Bytes::Of(12);         // rect / line
  Bytes copy_order = Bytes::Of(16);             // screen-to-screen blit
  Bytes cache_hit_order = Bytes::Of(12);        // "swap bitmap"
  Bytes bitmap_order_header = Bytes::Of(22);    // miss: header + compressed raster
  Bytes input_pdu_base = Bytes::Of(10);
  Bytes input_event_bytes = Bytes::Of(4);
  // Server-side encode cost of compressing one raster byte on a cache miss.
  Duration bitmap_encode_per_kib = Duration::Micros(500);
  BitmapCacheConfig cache;
};

class RdpProtocol final : public DisplayProtocol {
 public:
  RdpProtocol(Simulator& sim, MessageSender& display_out, MessageSender& input_out,
              ProtoTap* tap, Rng rng, RdpConfig config = {});
  ~RdpProtocol() override;

  void SubmitDraw(const DrawCommand& cmd) override;
  void SubmitDrawBatch(std::span<const DrawCommand> cmds) override;
  void SubmitInput(const InputEvent& event) override;
  void Flush() override;
  // Reconnect invalidates all client-side caches: the bitmap cache and glyph sets must
  // be rebuilt, so the first post-reconnect screenful re-ships rasters (TSE's resync).
  void OnSessionReconnect() override;
  std::string name() const override { return "RDP"; }
  Bytes session_setup_bytes() const override { return config_.session_setup; }

  const BitmapCache& bitmap_cache() const { return cache_; }
  BitmapCache& bitmap_cache() { return cache_; }
  int64_t orders_encoded() const { return orders_encoded_; }

  // Checkpoint/restore: RNG position, bitmap/glyph caches, the assembling PDU, and the
  // pending input-batch flush event (re-armed with its original time and sequence).
  void SaveTo(SnapshotWriter& w) const override;
  void LoadFrom(SnapshotReader& r, EventRearm& plan) override;

 private:
  // The order encoder proper; SubmitDraw/SubmitDrawBatch are thin dispatch shims over it.
  void EncodeDraw(const DrawCommand& cmd);
  void AppendOrder(Bytes order_bytes);
  void FlushPdu();
  void FlushInputBatch();

  RdpConfig config_;
  Rng rng_;
  BitmapCache cache_;
  std::unordered_set<int> glyphs_seen_;
  Bytes pdu_pending_ = Bytes::Zero();
  int pending_input_events_ = 0;
  EventId input_flush_event_;
  int64_t orders_encoded_ = 0;
};

}  // namespace tcs

#endif  // TCS_SRC_PROTO_RDP_PROTOCOL_H_
