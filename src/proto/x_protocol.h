// The X Window System wire protocol model (§2, §6).
//
// X encodes low-level graphics primitives: each DrawCommand becomes one or more small
// requests (fixed header + payload), buffered Xlib-style and flushed when the buffer
// fills, when a round-trip forces it, or at the end of an interaction step. Raster
// transfers (PutImage) ship uncompressed pixels — X has no bitmap cache, which is why
// animations re-send every frame (Figure 5). Input is verbose: every key transition,
// pointer motion sample, and round-trip reply is a message on the input channel.
//
// Requests are materialized as actual bytes (header + payload of calibrated entropy) so
// that LBX — a proxy over this very byte stream — can run a real compressor over them.

#ifndef TCS_SRC_PROTO_X_PROTOCOL_H_
#define TCS_SRC_PROTO_X_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/proto/display_protocol.h"
#include "src/sim/random.h"

namespace tcs {

struct XProtocolConfig {
  // Xlib output buffer: requests accumulate and flush once this many bytes are pending.
  Bytes flush_threshold = Bytes::Of(256);
  // Fixed size of an X event on the wire.
  Bytes event_bytes = Bytes::Of(32);
  // Session negotiation cost measured in the paper's configuration.
  Bytes session_setup = Bytes::Of(16312);
  // Payload entropy knobs (see Rng::FillBytes): how compressible each class of bytes is.
  double text_redundancy = 0.85;
  double geometry_redundancy = 0.7;
  double image_redundancy = 0.88;  // UI rasters are flat-region-heavy: LZ halves them
  double reply_redundancy = 0.6;
};

class XProtocol : public DisplayProtocol {
 public:
  XProtocol(Simulator& sim, MessageSender& display_out, MessageSender& input_out,
            ProtoTap* tap, Rng rng, XProtocolConfig config = {});

  void SubmitDraw(const DrawCommand& cmd) override;
  void SubmitDrawBatch(std::span<const DrawCommand> cmds) override;
  void SubmitInput(const InputEvent& event) override;
  void Flush() override;
  std::string name() const override { return "X"; }
  Bytes session_setup_bytes() const override { return config_.session_setup; }

  int64_t requests_encoded() const { return requests_encoded_; }

  // Danskin-style protocol profile (§7: "Danskin published several papers on profiling
  // the X protocol... his methodology provides the inspiration for our prototap tool"):
  // per-request-type counts and bytes.
  struct RequestProfile {
    int64_t count = 0;
    int64_t bytes = 0;
  };
  const std::map<uint8_t, RequestProfile>& request_profile() const {
    return request_profile_;
  }
  // Human-readable name for the X opcodes this model emits.
  static const char* OpcodeName(uint8_t opcode);

  // Checkpoint/restore: RNG position, the Xlib output buffer, per-opcode request
  // templates (serialized sorted by opcode), and the request profile.
  void SaveTo(SnapshotWriter& w) const override;
  void LoadFrom(SnapshotReader& r, EventRearm& plan) override;

 protected:
  // Hook points for LBX: one call per X request / event / reply, carrying the actual
  // bytes. Defaults implement plain X framing (buffered batches on the display channel,
  // one message per event or reply on the input channel).
  virtual void OnRequest(std::vector<uint8_t> request);
  virtual void OnEvent(std::vector<uint8_t> event);
  virtual void OnReply(std::vector<uint8_t> reply);

  const XProtocolConfig& x_config() const { return config_; }
  Rng& rng() { return rng_; }

  // Builds an X request: 4-byte header then `payload_len` bytes of `redundancy` entropy.
  // Small requests of the same opcode are generated from a drifting per-opcode template —
  // consecutive requests share most bytes, as real X traffic does (same window/gc IDs,
  // nearby coordinates) — which is precisely the self-similarity LBX's stream compressor
  // exploited. Raster payloads (PutImage) are generated fresh: frames do not resemble
  // each other.
  std::vector<uint8_t> BuildRequest(uint8_t opcode, size_t payload_len, double redundancy);

 private:
  // The request encoder proper; SubmitDraw/SubmitDrawBatch are thin dispatch shims over
  // it. LBX inherits both shims — per-request bytes still flow through the virtual
  // OnRequest/OnReply hooks, so its compressor sees the identical stream.
  void EncodeDraw(const DrawCommand& cmd);
  void FlushDisplayBuffer();

  XProtocolConfig config_;
  Rng rng_;
  std::vector<uint8_t> xlib_buffer_;
  std::unordered_map<uint8_t, std::vector<uint8_t>> request_templates_;
  std::map<uint8_t, RequestProfile> request_profile_;
  int64_t requests_encoded_ = 0;
};

}  // namespace tcs

#endif  // TCS_SRC_PROTO_X_PROTOCOL_H_
