#include "src/proto/prototap.h"

namespace tcs {

ProtoTap::ProtoTap(Duration series_bucket)
    : display_(series_bucket), input_(series_bucket) {}

void ProtoTap::RecordMessage(Channel channel, Bytes payload, Bytes counted, TimePoint when) {
  SideStats& side = Side(channel);
  ++side.messages;
  side.payload += payload;
  side.counted += counted;
  side.series.Add(when, static_cast<double>(counted.count()));
}

double ProtoTap::AverageMessageSize() const {
  int64_t n = total_messages();
  if (n == 0) {
    return 0.0;
  }
  return static_cast<double>(total_counted_bytes().count()) / static_cast<double>(n);
}

BitsPerSecond ProtoTap::MeanLoad(Channel channel, Duration window) const {
  return RateOver(Side(channel).counted, window);
}

}  // namespace tcs
