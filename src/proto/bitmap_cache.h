// Client-side bitmap cache (the TSE mechanism behind Figures 4-7).
//
// Per Microsoft's product literature the TSE client reserves 1.5 MB for an LRU bitmap
// cache holding icons, button images, glyphs, and animation frames. A display hit costs a
// tiny "swap bitmap" message instead of a raster transfer.
//
// Two eviction policies:
//   kLru       — what TSE ships. Defeated by looping animations exactly the way sequential
//                scans defeat LRU disk caches (§6.1.3 "Cache Pathology").
//   kLoopAware — the paper's suggested improvement: when re-fetch thrashing is detected,
//                evict the most recently *inserted* entry instead, preserving a stable
//                prefix of the loop (the classic fix for sequential flooding).

#ifndef TCS_SRC_PROTO_BITMAP_CACHE_H_
#define TCS_SRC_PROTO_BITMAP_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "src/sim/snapshot.h"
#include "src/sim/units.h"

namespace tcs {

enum class CachePolicy { kLru, kLoopAware };

struct BitmapCacheConfig {
  Bytes capacity = Bytes::Of(3 * 512 * 1024);  // the documented 1.5 MB default
  CachePolicy policy = CachePolicy::kLru;
  // kLoopAware: switch to loop eviction once this many of the last 32 misses were
  // re-fetches (entries previously evicted).
  int refetch_threshold = 8;
};

class BitmapCache {
 public:
  explicit BitmapCache(BitmapCacheConfig config = {});

  // True (and recency updated) if `hash` is cached.
  bool Lookup(uint64_t hash);

  // Inserts `hash` of `size` bytes, evicting until it fits. Oversized entries (> capacity)
  // are not cached at all.
  void Insert(uint64_t hash, Bytes size);

  // Drops every cached entry (a session reconnect: the client's cache is stale and the
  // server must assume nothing survives). Ghosts and cumulative counters are kept —
  // re-fetches after a reconnect are real re-fetches.
  void InvalidateAll();

  Bytes capacity() const { return config_.capacity; }
  Bytes used() const { return used_; }
  size_t entries() const { return index_.size(); }

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t lookups() const { return hits_ + misses_; }
  int64_t evictions() const { return evictions_; }
  int64_t refetches() const { return refetches_; }
  // Cumulative hit ratio since construction — the Perfmon counter Figure 6 plots.
  double CumulativeHitRatio() const;
  bool InLoopMode() const { return loop_mode_; }

  // Checkpoint/restore: recency and insertion orders are serialized as ordered lists
  // (and the hash indexes rebuilt on load); the ghost set, whose iteration order never
  // affects behaviour, is serialized sorted so equal caches produce equal bytes.
  void SaveTo(SnapshotWriter& w) const;
  void LoadFrom(SnapshotReader& r);

 private:
  struct Entry {
    uint64_t hash;
    Bytes size;
  };

  void EvictOne();
  void NoteMiss(uint64_t hash);

  BitmapCacheConfig config_;
  // Recency order: front = least recently used, back = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  // Insertion order (independent of recency): back = most recently inserted.
  std::list<uint64_t> insertion_order_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> insertion_index_;
  // Ghost set of hashes that were cached once and evicted — for re-fetch detection.
  std::unordered_set<uint64_t> ghosts_;

  Bytes used_ = Bytes::Zero();
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t refetches_ = 0;
  uint32_t recent_miss_window_ = 0;  // bitmask of last 32 misses: 1 = was a re-fetch
  bool loop_mode_ = false;
};

}  // namespace tcs

#endif  // TCS_SRC_PROTO_BITMAP_CACHE_H_
