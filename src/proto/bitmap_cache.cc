#include "src/proto/bitmap_cache.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <vector>

namespace tcs {

BitmapCache::BitmapCache(BitmapCacheConfig config) : config_(config) {
  assert(config_.capacity.count() > 0);
}

bool BitmapCache::Lookup(uint64_t hash) {
  auto it = index_.find(hash);
  if (it == index_.end()) {
    ++misses_;
    NoteMiss(hash);
    return false;
  }
  ++hits_;
  lru_.splice(lru_.end(), lru_, it->second);  // refresh recency
  return true;
}

void BitmapCache::NoteMiss(uint64_t hash) {
  bool refetch = ghosts_.contains(hash);
  if (refetch) {
    ++refetches_;
  }
  recent_miss_window_ = (recent_miss_window_ << 1) | (refetch ? 1u : 0u);
  if (config_.policy == CachePolicy::kLoopAware) {
    int recent_refetches = std::popcount(recent_miss_window_);
    loop_mode_ = recent_refetches >= config_.refetch_threshold;
  }
}

void BitmapCache::EvictOne() {
  assert(!lru_.empty());
  uint64_t victim_hash;
  if (loop_mode_) {
    // Evict the most recently inserted entry: a cyclic access pattern then keeps a stable
    // prefix resident instead of missing on every frame.
    victim_hash = insertion_order_.back();
  } else {
    victim_hash = lru_.front().hash;
  }
  auto it = index_.find(victim_hash);
  assert(it != index_.end());
  used_ -= it->second->size;
  lru_.erase(it->second);
  index_.erase(it);
  auto ins_it = insertion_index_.find(victim_hash);
  assert(ins_it != insertion_index_.end());
  insertion_order_.erase(ins_it->second);
  insertion_index_.erase(ins_it);
  ghosts_.insert(victim_hash);
  ++evictions_;
}

void BitmapCache::Insert(uint64_t hash, Bytes size) {
  if (index_.contains(hash)) {
    return;  // already cached
  }
  if (size > config_.capacity) {
    return;  // uncacheable
  }
  while (used_ + size > config_.capacity) {
    EvictOne();
  }
  lru_.push_back(Entry{hash, size});
  index_[hash] = std::prev(lru_.end());
  insertion_order_.push_back(hash);
  insertion_index_[hash] = std::prev(insertion_order_.end());
  used_ += size;
  ghosts_.erase(hash);
}

void BitmapCache::InvalidateAll() {
  for (const Entry& e : lru_) {
    ghosts_.insert(e.hash);
  }
  lru_.clear();
  index_.clear();
  insertion_order_.clear();
  insertion_index_.clear();
  used_ = Bytes::Zero();
  loop_mode_ = false;
  recent_miss_window_ = 0;
}

double BitmapCache::CumulativeHitRatio() const {
  int64_t n = lookups();
  if (n == 0) {
    return 0.0;
  }
  return static_cast<double>(hits_) / static_cast<double>(n);
}

void BitmapCache::SaveTo(SnapshotWriter& w) const {
  w.U64(lru_.size());
  for (const Entry& e : lru_) {
    w.U64(e.hash);
    w.I64(e.size.count());
  }
  w.U64(insertion_order_.size());
  for (uint64_t h : insertion_order_) {
    w.U64(h);
  }
  std::vector<uint64_t> ghosts(ghosts_.begin(), ghosts_.end());
  std::sort(ghosts.begin(), ghosts.end());
  w.U64(ghosts.size());
  for (uint64_t h : ghosts) {
    w.U64(h);
  }
  w.I64(used_.count());
  w.I64(hits_);
  w.I64(misses_);
  w.I64(evictions_);
  w.I64(refetches_);
  w.U32(recent_miss_window_);
  w.Bool(loop_mode_);
}

void BitmapCache::LoadFrom(SnapshotReader& r) {
  lru_.clear();
  index_.clear();
  insertion_order_.clear();
  insertion_index_.clear();
  ghosts_.clear();
  uint64_t entries = r.U64();
  for (uint64_t i = 0; i < entries; ++i) {
    uint64_t hash = r.U64();
    Bytes size = Bytes::Of(r.I64());
    lru_.push_back(Entry{hash, size});
    index_[hash] = std::prev(lru_.end());
  }
  uint64_t inserted = r.U64();
  for (uint64_t i = 0; i < inserted; ++i) {
    uint64_t hash = r.U64();
    insertion_order_.push_back(hash);
    insertion_index_[hash] = std::prev(insertion_order_.end());
  }
  uint64_t ghosts = r.U64();
  for (uint64_t i = 0; i < ghosts; ++i) {
    ghosts_.insert(r.U64());
  }
  used_ = Bytes::Of(r.I64());
  hits_ = r.I64();
  misses_ = r.I64();
  evictions_ = r.I64();
  refetches_ = r.I64();
  recent_miss_window_ = r.U32();
  loop_mode_ = r.Bool();
}

}  // namespace tcs
