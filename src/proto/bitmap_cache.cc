#include "src/proto/bitmap_cache.h"

#include <bit>
#include <cassert>

namespace tcs {

BitmapCache::BitmapCache(BitmapCacheConfig config) : config_(config) {
  assert(config_.capacity.count() > 0);
}

bool BitmapCache::Lookup(uint64_t hash) {
  auto it = index_.find(hash);
  if (it == index_.end()) {
    ++misses_;
    NoteMiss(hash);
    return false;
  }
  ++hits_;
  lru_.splice(lru_.end(), lru_, it->second);  // refresh recency
  return true;
}

void BitmapCache::NoteMiss(uint64_t hash) {
  bool refetch = ghosts_.contains(hash);
  if (refetch) {
    ++refetches_;
  }
  recent_miss_window_ = (recent_miss_window_ << 1) | (refetch ? 1u : 0u);
  if (config_.policy == CachePolicy::kLoopAware) {
    int recent_refetches = std::popcount(recent_miss_window_);
    loop_mode_ = recent_refetches >= config_.refetch_threshold;
  }
}

void BitmapCache::EvictOne() {
  assert(!lru_.empty());
  uint64_t victim_hash;
  if (loop_mode_) {
    // Evict the most recently inserted entry: a cyclic access pattern then keeps a stable
    // prefix resident instead of missing on every frame.
    victim_hash = insertion_order_.back();
  } else {
    victim_hash = lru_.front().hash;
  }
  auto it = index_.find(victim_hash);
  assert(it != index_.end());
  used_ -= it->second->size;
  lru_.erase(it->second);
  index_.erase(it);
  auto ins_it = insertion_index_.find(victim_hash);
  assert(ins_it != insertion_index_.end());
  insertion_order_.erase(ins_it->second);
  insertion_index_.erase(ins_it);
  ghosts_.insert(victim_hash);
  ++evictions_;
}

void BitmapCache::Insert(uint64_t hash, Bytes size) {
  if (index_.contains(hash)) {
    return;  // already cached
  }
  if (size > config_.capacity) {
    return;  // uncacheable
  }
  while (used_ + size > config_.capacity) {
    EvictOne();
  }
  lru_.push_back(Entry{hash, size});
  index_[hash] = std::prev(lru_.end());
  insertion_order_.push_back(hash);
  insertion_index_[hash] = std::prev(insertion_order_.end());
  used_ += size;
  ghosts_.erase(hash);
}

void BitmapCache::InvalidateAll() {
  for (const Entry& e : lru_) {
    ghosts_.insert(e.hash);
  }
  lru_.clear();
  index_.clear();
  insertion_order_.clear();
  insertion_index_.clear();
  used_ = Bytes::Zero();
  loop_mode_ = false;
  recent_miss_window_ = 0;
}

double BitmapCache::CumulativeHitRatio() const {
  int64_t n = lookups();
  if (n == 0) {
    return 0.0;
  }
  return static_cast<double>(hits_) / static_cast<double>(n);
}

}  // namespace tcs
