#include "src/proto/display_protocol.h"

namespace tcs {

DisplayProtocol::DisplayProtocol(Simulator& sim, MessageSender& display_out,
                                 MessageSender& input_out, ProtoTap* tap)
    : sim_(sim), display_out_(display_out), input_out_(input_out), tap_(tap) {}

void DisplayProtocol::SetTracer(Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    display_track_ = tracer_->RegisterTrack("proto", "display");
    input_track_ = tracer_->RegisterTrack("proto", "input");
  }
}

void DisplayProtocol::EmitMessage(Channel channel, Bytes payload) {
  MessageSender& sender = channel == Channel::kDisplay ? display_out_ : input_out_;
  if (tap_ != nullptr) {
    Bytes counted =
        payload + sender.headers().CountedPerPacket() * sender.PacketsFor(payload);
    tap_->RecordMessage(channel, payload, counted, sim_.Now());
  }
  if (tracer_ != nullptr) {
    tracer_->Instant(TraceCategory::kProto, "msg",
                     channel == Channel::kDisplay ? display_track_ : input_track_,
                     sim_.Now(), "payload", payload.count(), "packets",
                     static_cast<int64_t>(sender.PacketsFor(payload)));
  }
  if (channel == Channel::kDisplay && display_hook_) {
    display_hook_(payload);
  }
  sender.SendMessage(payload);
}

}  // namespace tcs
