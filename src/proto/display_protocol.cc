#include "src/proto/display_protocol.h"

namespace tcs {

DisplayProtocol::DisplayProtocol(Simulator& sim, MessageSender& display_out,
                                 MessageSender& input_out, ProtoTap* tap)
    : sim_(sim), display_out_(display_out), input_out_(input_out), tap_(tap) {}

void DisplayProtocol::EmitMessage(Channel channel, Bytes payload) {
  MessageSender& sender = channel == Channel::kDisplay ? display_out_ : input_out_;
  if (tap_ != nullptr) {
    Bytes counted =
        payload + sender.headers().CountedPerPacket() * sender.PacketsFor(payload);
    tap_->RecordMessage(channel, payload, counted, sim_.Now());
  }
  if (channel == Channel::kDisplay && display_hook_) {
    display_hook_(payload);
  }
  sender.SendMessage(payload);
}

}  // namespace tcs
