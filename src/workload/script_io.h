// Text serialization for interaction scripts: record a session once, replay it against
// any protocol. The format is a line-oriented trace, one directive per line:
//
//   # comment
//   script <name>
//   step <think-ms>
//   key <press|release> <code>
//   move <x> <y>
//   button <press|release>
//   text <chars>
//   rect <w> <h>
//   line <len>
//   copy <w> <h>
//   image <hash> <w> <h> <compression-ratio>
//   sync <reply-bytes>
//
// A `step` directive opens a new step (its inputs/draws follow); files round-trip through
// Serialize/Parse losslessly.

#ifndef TCS_SRC_WORKLOAD_SCRIPT_IO_H_
#define TCS_SRC_WORKLOAD_SCRIPT_IO_H_

#include <optional>
#include <string>

#include "src/workload/app_script.h"

namespace tcs {

// Renders `script` in the trace format above.
std::string SerializeScript(const AppScript& script);

// Parses a trace; returns std::nullopt (and sets *error when non-null) on malformed
// input: unknown directive, bad arity, content before the first `step`, etc.
std::optional<AppScript> ParseScript(const std::string& text, std::string* error = nullptr);

}  // namespace tcs

#endif  // TCS_SRC_WORKLOAD_SCRIPT_IO_H_
