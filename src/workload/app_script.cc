#include "src/workload/app_script.h"

#include <utility>

namespace tcs {

namespace {

// Widget raster pools: toolbars, buttons, and icons recur from small fixed sets, so a
// client-side bitmap cache converts their redraws into hits. Hash namespaces keep the
// pools of different applications distinct.
BitmapRef PoolIcon(uint64_t app_ns, uint64_t pool_index, int size = 24) {
  return BitmapRef::Make((app_ns << 32) | pool_index, size, size, 0.5);
}

BitmapRef UniqueTile(uint64_t app_ns, uint64_t& counter, int w, int h,
                     double compression_ratio) {
  return BitmapRef::Make((app_ns << 48) | ++counter, w, h, compression_ratio);
}

void AddKeyTaps(std::vector<InputEvent>& inputs, int taps) {
  for (int i = 0; i < taps; ++i) {
    inputs.push_back(InputEvent::Key(true, 30 + i % 26));
    inputs.push_back(InputEvent::Key(false, 30 + i % 26));
  }
}

void AddMouseTravel(std::vector<InputEvent>& inputs, Rng& rng, int samples) {
  int x = static_cast<int>(rng.NextBelow(800));
  int y = static_cast<int>(rng.NextBelow(600));
  for (int i = 0; i < samples; ++i) {
    x += static_cast<int>(rng.NextInt(-20, 20));
    y += static_cast<int>(rng.NextInt(-15, 15));
    inputs.push_back(InputEvent::Move(x, y));
  }
}

Duration Think(Rng& rng) {
  return Duration::Millis(rng.NextInt(200, 400));
}

}  // namespace

AppScript AppScript::WordProcessor(Rng rng, int step_count) {
  constexpr uint64_t kNs = 1;
  std::vector<ScriptStep> steps;
  steps.reserve(static_cast<size_t>(step_count));
  for (int i = 0; i < step_count; ++i) {
    ScriptStep step;
    step.think = Think(rng);
    int roll = static_cast<int>(rng.NextBelow(100));
    if (roll < 70) {
      // Type a word; the application echoes it.
      int word = static_cast<int>(rng.NextInt(4, 9));
      AddKeyTaps(step.inputs, word);
      step.draws.push_back(DrawCommand::Text(word));
      step.draws.push_back(DrawCommand::Rect(2, 16));  // caret
    } else if (roll < 80) {
      // Scroll a page: blit plus redrawn text lines, and a metrics round trip.
      AddKeyTaps(step.inputs, 1);
      step.draws.push_back(DrawCommand::CopyArea(640, 400));
      for (int line = 0; line < 8; ++line) {
        step.draws.push_back(DrawCommand::Text(static_cast<int>(rng.NextInt(30, 70))));
      }
      if (rng.NextBool(0.5)) {
        step.draws.push_back(DrawCommand::Sync(Bytes::Of(2400)));
      }
    } else if (roll < 88) {
      // Open a menu: frame, entries, toolbar icons from the pool.
      AddMouseTravel(step.inputs, rng, 6);
      step.inputs.push_back(InputEvent::Button(true));
      step.inputs.push_back(InputEvent::Button(false));
      step.draws.push_back(DrawCommand::Rect(160, 220));
      for (int entry = 0; entry < 10; ++entry) {
        step.draws.push_back(DrawCommand::Text(12));
      }
      for (uint64_t icon = 0; icon < 4; ++icon) {
        step.draws.push_back(DrawCommand::PutImage(PoolIcon(kNs, rng.NextBelow(16))));
      }
    } else {
      // Pause: caret blink only.
      step.draws.push_back(DrawCommand::Rect(2, 16));
    }
    steps.push_back(std::move(step));
  }
  return AppScript("word-processor", std::move(steps));
}

AppScript AppScript::PhotoEditor(Rng rng, int step_count) {
  constexpr uint64_t kNs = 2;
  uint64_t tile_counter = 0;
  std::vector<ScriptStep> steps;
  steps.reserve(static_cast<size_t>(step_count));
  for (int i = 0; i < step_count; ++i) {
    ScriptStep step;
    step.think = Think(rng);
    int roll = static_cast<int>(rng.NextBelow(100));
    if (roll < 50) {
      // Brush stroke: drag across the canvas; the stroked region re-rasters.
      AddMouseTravel(step.inputs, rng, 15);
      step.inputs.push_back(InputEvent::Button(true));
      step.inputs.push_back(InputEvent::Button(false));
      for (int seg = 0; seg < 6; ++seg) {
        step.draws.push_back(DrawCommand::Line(static_cast<int>(rng.NextInt(10, 60))));
      }
      step.draws.push_back(
          DrawCommand::PutImage(UniqueTile(kNs, tile_counter, 64, 64, 0.35)));
    } else if (roll < 65) {
      // Tool palette: icons recur from the pool.
      AddMouseTravel(step.inputs, rng, 4);
      step.inputs.push_back(InputEvent::Button(true));
      step.inputs.push_back(InputEvent::Button(false));
      for (uint64_t icon = 0; icon < 8; ++icon) {
        step.draws.push_back(DrawCommand::PutImage(PoolIcon(kNs, rng.NextBelow(20))));
      }
      step.draws.push_back(DrawCommand::Rect(26, 26));
    } else if (roll < 80) {
      // Pan/zoom: blit plus re-rastered tiles plus a server round trip.
      AddMouseTravel(step.inputs, rng, 8);
      step.draws.push_back(DrawCommand::CopyArea(512, 384));
      for (int tile = 0; tile < 4; ++tile) {
        step.draws.push_back(
            DrawCommand::PutImage(UniqueTile(kNs, tile_counter, 64, 64, 0.35)));
      }
      step.draws.push_back(DrawCommand::Sync(Bytes::Of(2800)));
    } else {
      // Dialog (filter settings).
      AddMouseTravel(step.inputs, rng, 5);
      step.draws.push_back(DrawCommand::Rect(300, 200));
      for (int label = 0; label < 6; ++label) {
        step.draws.push_back(DrawCommand::Text(static_cast<int>(rng.NextInt(8, 24))));
      }
      for (uint64_t icon = 0; icon < 2; ++icon) {
        step.draws.push_back(DrawCommand::PutImage(PoolIcon(kNs, rng.NextBelow(20))));
      }
    }
    steps.push_back(std::move(step));
  }
  return AppScript("photo-editor", std::move(steps));
}

AppScript AppScript::ControlPanel(Rng rng, int step_count) {
  constexpr uint64_t kNs = 3;
  std::vector<ScriptStep> steps;
  steps.reserve(static_cast<size_t>(step_count));
  for (int i = 0; i < step_count; ++i) {
    ScriptStep step;
    step.think = Think(rng);
    int roll = static_cast<int>(rng.NextBelow(100));
    if (roll < 40) {
      // Navigate between panes.
      AddMouseTravel(step.inputs, rng, 6);
      step.inputs.push_back(InputEvent::Button(true));
      step.inputs.push_back(InputEvent::Button(false));
      for (int widget = 0; widget < 4; ++widget) {
        step.draws.push_back(DrawCommand::Rect(120, 24));
      }
      for (int label = 0; label < 6; ++label) {
        step.draws.push_back(DrawCommand::Text(20));
      }
      for (uint64_t icon = 0; icon < 3; ++icon) {
        step.draws.push_back(DrawCommand::PutImage(PoolIcon(kNs, rng.NextBelow(12), 32)));
      }
      if (rng.NextBool(0.3)) {
        step.draws.push_back(DrawCommand::Sync(Bytes::Of(1600)));
      }
    } else if (roll < 80) {
      // Edit a field (an IP address, a hostname).
      int chars = static_cast<int>(rng.NextInt(3, 12));
      AddKeyTaps(step.inputs, chars);
      step.draws.push_back(DrawCommand::Text(chars));
      step.draws.push_back(DrawCommand::Rect(2, 14));
    } else {
      // Apply: full dialog redraw plus confirmation round trip.
      AddMouseTravel(step.inputs, rng, 4);
      step.inputs.push_back(InputEvent::Button(true));
      step.inputs.push_back(InputEvent::Button(false));
      for (int widget = 0; widget < 8; ++widget) {
        step.draws.push_back(DrawCommand::Rect(140, 22));
      }
      for (int label = 0; label < 12; ++label) {
        step.draws.push_back(DrawCommand::Text(static_cast<int>(rng.NextInt(10, 30))));
      }
      for (uint64_t icon = 0; icon < 5; ++icon) {
        step.draws.push_back(DrawCommand::PutImage(PoolIcon(kNs, rng.NextBelow(12), 32)));
      }
      step.draws.push_back(DrawCommand::Sync(Bytes::Of(2200)));
    }
    steps.push_back(std::move(step));
  }
  return AppScript("control-panel", std::move(steps));
}

Duration AppScript::TotalDuration() const {
  Duration total = Duration::Zero();
  for (const ScriptStep& step : steps_) {
    total += step.think;
  }
  return total;
}

size_t AppScript::TotalInputEvents() const {
  size_t n = 0;
  for (const ScriptStep& step : steps_) {
    n += step.inputs.size();
  }
  return n;
}

size_t AppScript::TotalDrawCommands() const {
  size_t n = 0;
  for (const ScriptStep& step : steps_) {
    n += step.draws.size();
  }
  return n;
}

void AppScript::Replay(Simulator& sim, DisplayProtocol& protocol,
                       std::function<void()> done) const {
  TimePoint at = sim.Now();
  for (const ScriptStep& step : steps_) {
    sim.At(at, [&protocol, &step] {
      for (const InputEvent& event : step.inputs) {
        protocol.SubmitInput(event);
      }
      protocol.SubmitDrawBatch(step.draws);
      protocol.Flush();
    });
    at += step.think;
  }
  if (done) {
    sim.At(at, std::move(done));
  }
}

}  // namespace tcs
