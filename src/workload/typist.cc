#include "src/workload/typist.h"

#include <utility>

namespace tcs {

Typist::Typist(Simulator& sim, std::function<void()> on_keystroke, Duration period)
    : on_keystroke_(std::move(on_keystroke)), task_(sim, period, [this] {
        ++keystrokes_;
        on_keystroke_();
      }) {}

void Typist::Start(Duration initial_delay) {
  task_.Start(initial_delay);
}

void Typist::Stop() {
  task_.Stop();
}

}  // namespace tcs
