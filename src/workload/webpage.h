// The synthetic media-intensive webpage of §6.1.3 / Figure 4, "modeled after
// http://www.msnbc.com/": one animated 468x60 GIF banner advertisement plus an HTML
// scrolling news ticker (marquee).
//
// The two elements are sized so that either one's frame set fits the client's 1.5 MB
// bitmap cache but their union does not — the mechanism behind Figure 4's non-linearity:
// displayed separately they cost 0.07 / 0.01 Mbps; together the cache thrashes and
// sustained load jumps to ~1.6 Mbps.

#ifndef TCS_SRC_WORKLOAD_WEBPAGE_H_
#define TCS_SRC_WORKLOAD_WEBPAGE_H_

#include <optional>
#include <vector>

#include "src/proto/display_protocol.h"
#include "src/sim/periodic.h"
#include "src/workload/animation.h"

namespace tcs {

struct MarqueeConfig {
  uint64_t id = 2;
  // The ticker band scrolls through this many distinct strip positions before repeating.
  int strip_count = 95;
  int width = 468;
  int height = 40;
  Duration tick = Duration::Millis(100);  // 10 Hz scroll
  double compression_ratio = 0.8;
  // Newly exposed column drawn each tick: always-new pixels (never cacheable).
  int edge_height = 2;
};

// The scrolling news ticker: each tick blits the band sideways (CopyArea), redraws the
// band from a cyclic strip set (cache-friendly in isolation), and paints the newly exposed
// edge column (never cached).
class Marquee {
 public:
  Marquee(Simulator& sim, DisplayProtocol& protocol, MarqueeConfig config = {});

  Marquee(const Marquee&) = delete;
  Marquee& operator=(const Marquee&) = delete;

  void Start(Duration initial_delay = Duration::Zero());
  void Stop();

  int64_t ticks() const { return ticks_; }
  // Total bytes of the cyclic strip set (what it occupies in a client bitmap cache).
  Bytes StripSetBytes() const;

 private:
  void Tick();

  DisplayProtocol& protocol_;
  MarqueeConfig config_;
  std::vector<BitmapRef> strips_;
  int next_strip_ = 0;
  uint64_t edge_counter_ = 0;
  int64_t ticks_ = 0;
  PeriodicTask task_;
};

struct WebPageConfig {
  bool banner = true;
  bool marquee = true;
  AnimationConfig banner_config;   // defaults overridden in the constructor
  MarqueeConfig marquee_config;
};

class WebPage {
 public:
  WebPage(Simulator& sim, DisplayProtocol& protocol, WebPageConfig config = {});

  void Open();   // begins whatever elements are enabled
  void Close();

  Animation* banner() { return banner_ ? &*banner_ : nullptr; }
  Marquee* marquee() { return marquee_ ? &*marquee_ : nullptr; }

 private:
  std::optional<Animation> banner_;
  std::optional<Marquee> marquee_;
};

}  // namespace tcs

#endif  // TCS_SRC_WORKLOAD_WEBPAGE_H_
