#include "src/workload/script_io.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <vector>

namespace tcs {

namespace {

const char* InputPressWord(InputType type) {
  switch (type) {
    case InputType::kKeyPress:
    case InputType::kButtonPress:
      return "press";
    case InputType::kKeyRelease:
    case InputType::kButtonRelease:
      return "release";
    case InputType::kMouseMove:
      return "";
  }
  return "";
}

bool SetError(std::string* error, size_t line_no, const std::string& message) {
  if (error != nullptr) {
    std::ostringstream os;
    os << "line " << line_no << ": " << message;
    *error = os.str();
  }
  return false;
}

}  // namespace

std::string SerializeScript(const AppScript& script) {
  std::ostringstream os;
  os << "# tcs interaction trace\n";
  os << "script " << script.name() << "\n";
  for (const ScriptStep& step : script.steps()) {
    os << "step " << step.think.ToMicros() / 1000 << "\n";
    for (const InputEvent& ev : step.inputs) {
      switch (ev.type) {
        case InputType::kKeyPress:
        case InputType::kKeyRelease:
          os << "key " << InputPressWord(ev.type) << " " << ev.code << "\n";
          break;
        case InputType::kMouseMove:
          os << "move " << ev.x << " " << ev.y << "\n";
          break;
        case InputType::kButtonPress:
        case InputType::kButtonRelease:
          os << "button " << InputPressWord(ev.type) << "\n";
          break;
      }
    }
    for (const DrawCommand& cmd : step.draws) {
      switch (cmd.op) {
        case DrawOp::kText:
          os << "text " << cmd.text_length << "\n";
          break;
        case DrawOp::kRect:
          os << "rect " << cmd.width << " " << cmd.height << "\n";
          break;
        case DrawOp::kLine:
          os << "line " << cmd.width << "\n";
          break;
        case DrawOp::kCopyArea:
          os << "copy " << cmd.width << " " << cmd.height << "\n";
          break;
        case DrawOp::kPutImage:
          os << "image " << cmd.bitmap.content_hash << " " << cmd.bitmap.width << " "
             << cmd.bitmap.height << " " << cmd.bitmap.raw_bytes.count() << " "
             << cmd.bitmap.compressed_bytes.count() << "\n";
          break;
        case DrawOp::kSync:
          os << "sync " << cmd.reply_bytes.count() << "\n";
          break;
      }
    }
  }
  return os.str();
}

std::optional<AppScript> ParseScript(const std::string& text, std::string* error) {
  std::istringstream is(text);
  std::string line;
  std::string name = "trace";
  std::vector<ScriptStep> steps;
  ScriptStep* current = nullptr;
  size_t line_no = 0;

  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and blank lines.
    size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) {
      continue;
    }
    auto need_step = [&]() {
      if (current == nullptr) {
        SetError(error, line_no, "directive '" + word + "' before the first 'step'");
        return false;
      }
      return true;
    };
    auto fail = [&](const std::string& msg) {
      SetError(error, line_no, msg);
      return std::optional<AppScript>();
    };

    if (word == "script") {
      if (!(ls >> name)) {
        return fail("'script' needs a name");
      }
    } else if (word == "step") {
      int64_t think_ms = 0;
      if (!(ls >> think_ms) || think_ms < 0) {
        return fail("'step' needs a non-negative think time (ms)");
      }
      steps.emplace_back();
      steps.back().think = Duration::Millis(think_ms);
      current = &steps.back();
    } else if (word == "key") {
      std::string action;
      int code = 0;
      if (!(ls >> action >> code) || (action != "press" && action != "release")) {
        return fail("'key' needs press|release and a code");
      }
      if (!need_step()) {
        return std::nullopt;
      }
      current->inputs.push_back(InputEvent::Key(action == "press", code));
    } else if (word == "move") {
      int x = 0;
      int y = 0;
      if (!(ls >> x >> y)) {
        return fail("'move' needs x y");
      }
      if (!need_step()) {
        return std::nullopt;
      }
      current->inputs.push_back(InputEvent::Move(x, y));
    } else if (word == "button") {
      std::string action;
      if (!(ls >> action) || (action != "press" && action != "release")) {
        return fail("'button' needs press|release");
      }
      if (!need_step()) {
        return std::nullopt;
      }
      current->inputs.push_back(InputEvent::Button(action == "press"));
    } else if (word == "text") {
      int chars = 0;
      if (!(ls >> chars) || chars < 0) {
        return fail("'text' needs a non-negative char count");
      }
      if (!need_step()) {
        return std::nullopt;
      }
      current->draws.push_back(DrawCommand::Text(chars));
    } else if (word == "rect") {
      int w = 0;
      int h = 0;
      if (!(ls >> w >> h)) {
        return fail("'rect' needs w h");
      }
      if (!need_step()) {
        return std::nullopt;
      }
      current->draws.push_back(DrawCommand::Rect(w, h));
    } else if (word == "line") {
      int len = 0;
      if (!(ls >> len)) {
        return fail("'line' needs a length");
      }
      if (!need_step()) {
        return std::nullopt;
      }
      current->draws.push_back(DrawCommand::Line(len));
    } else if (word == "copy") {
      int w = 0;
      int h = 0;
      if (!(ls >> w >> h)) {
        return fail("'copy' needs w h");
      }
      if (!need_step()) {
        return std::nullopt;
      }
      current->draws.push_back(DrawCommand::CopyArea(w, h));
    } else if (word == "image") {
      uint64_t hash = 0;
      int w = 0;
      int h = 0;
      int64_t raw = 0;
      int64_t compressed = 0;
      if (!(ls >> hash >> w >> h >> raw >> compressed) || raw <= 0 || compressed <= 0) {
        return fail("'image' needs hash w h raw compressed");
      }
      if (!need_step()) {
        return std::nullopt;
      }
      BitmapRef bmp;
      bmp.content_hash = hash;
      bmp.width = w;
      bmp.height = h;
      bmp.raw_bytes = Bytes::Of(raw);
      bmp.compressed_bytes = Bytes::Of(compressed);
      current->draws.push_back(DrawCommand::PutImage(bmp));
    } else if (word == "sync") {
      int64_t reply = 0;
      if (!(ls >> reply) || reply < 0) {
        return fail("'sync' needs a reply size");
      }
      if (!need_step()) {
        return std::nullopt;
      }
      current->draws.push_back(DrawCommand::Sync(Bytes::Of(reply)));
    } else {
      return fail("unknown directive '" + word + "'");
    }
    // Reject trailing junk on the line.
    std::string extra;
    if (ls >> extra) {
      return fail("unexpected trailing token '" + extra + "'");
    }
  }
  return AppScript::FromSteps(std::move(name), std::move(steps));
}

}  // namespace tcs
