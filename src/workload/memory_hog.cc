#include "src/workload/memory_hog.h"

namespace tcs {

MemoryHog::MemoryHog(Simulator& sim, Pager& pager, MemoryHogConfig config)
    : sim_(sim), pager_(pager), config_(config) {
  as_ = pager_.CreateAddressSpace("hog", /*interactive=*/false);
}

void MemoryHog::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  TouchNext();
}

void MemoryHog::Stop() {
  running_ = false;
}

void MemoryHog::TouchNext() {
  if (!running_) {
    return;
  }
  uint64_t vpn = next_vpn_;
  next_vpn_ = (next_vpn_ + 1) % config_.region_pages;
  // Touch the page (paying any fault), then burn the per-page CPU, then continue. The CPU
  // burn is modelled as plain delay here; experiments that need the hog to also contend
  // for the scheduler run sinks alongside (the paper studied the resources separately).
  pager_.Access(*as_, vpn, config_.writes, [this] {
    ++pages_touched_;
    sim_.Schedule(config_.touch_cpu, [this] { TouchNext(); });
  });
}

}  // namespace tcs
