// Animated user-interface elements (§6.1.3): looping animated GIFs (banner ads), scrolling
// marquees/tickers, and the parameterized frame-count animations of Figure 7.
//
// An Animation repeatedly draws the next frame of a cyclic frame set through a
// DisplayProtocol. Frames are identified by content hash, so a protocol with a bitmap
// cache (RDP) can serve repeats from the client while X/LBX must re-send pixels.

#ifndef TCS_SRC_WORKLOAD_ANIMATION_H_
#define TCS_SRC_WORKLOAD_ANIMATION_H_

#include <cstdint>
#include <vector>

#include "src/proto/display_protocol.h"
#include "src/sim/periodic.h"

namespace tcs {

struct AnimationConfig {
  // Distinguishes this animation's frames from all others' (mixed into the hash).
  uint64_t id = 1;
  int frame_count = 10;
  Duration frame_period = Duration::Millis(50);  // 20 Hz, like the Figure 5 GIF
  int width = 468;
  int height = 60;  // the classic banner-ad geometry
  // RDP raster codec effectiveness on these pixels.
  double compression_ratio = 0.85;
  bool loop = true;
};

class Animation {
 public:
  Animation(Simulator& sim, DisplayProtocol& protocol, AnimationConfig config = {});

  Animation(const Animation&) = delete;
  Animation& operator=(const Animation&) = delete;

  void Start(Duration initial_delay = Duration::Zero());
  void Stop();
  bool IsRunning() const { return task_.IsRunning(); }

  int64_t frames_drawn() const { return frames_drawn_; }
  // Ticks where the gate vetoed the frame (graceful degradation thinning/pausing).
  int64_t frames_skipped() const { return frames_skipped_; }
  const AnimationConfig& config() const { return config_; }
  // The frame set this animation cycles through.
  const std::vector<BitmapRef>& frames() const { return frames_; }

  // Optional per-tick gate: return false to skip this tick's frame (the cycle position
  // still advances, as a real player dropping frames would). Degradation controllers use
  // this to thin or pause background animations under backpressure.
  void set_frame_gate(std::function<bool()> gate) { gate_ = std::move(gate); }

 private:
  void DrawNextFrame();

  DisplayProtocol& protocol_;
  AnimationConfig config_;
  std::vector<BitmapRef> frames_;
  std::function<bool()> gate_;
  int next_frame_ = 0;
  int64_t frames_drawn_ = 0;
  int64_t frames_skipped_ = 0;
  PeriodicTask task_;
};

}  // namespace tcs

#endif  // TCS_SRC_WORKLOAD_ANIMATION_H_
