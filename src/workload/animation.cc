#include "src/workload/animation.h"

#include <cassert>

namespace tcs {

namespace {
uint64_t FrameHash(uint64_t animation_id, int frame) {
  // Stable, collision-free across animations with distinct ids.
  return (animation_id << 20) ^ static_cast<uint64_t>(frame) ^ 0xA11CE5ull << 40;
}
}  // namespace

Animation::Animation(Simulator& sim, DisplayProtocol& protocol, AnimationConfig config)
    : protocol_(protocol),
      config_(config),
      task_(sim, config.frame_period, [this] { DrawNextFrame(); }) {
  assert(config_.frame_count > 0);
  frames_.reserve(static_cast<size_t>(config_.frame_count));
  for (int f = 0; f < config_.frame_count; ++f) {
    frames_.push_back(BitmapRef::Make(FrameHash(config_.id, f), config_.width,
                                      config_.height, config_.compression_ratio));
  }
}

void Animation::Start(Duration initial_delay) {
  task_.Start(initial_delay);
}

void Animation::Stop() {
  task_.Stop();
}

void Animation::DrawNextFrame() {
  if (!config_.loop && frames_drawn_ >= config_.frame_count) {
    task_.Stop();
    return;
  }
  const BitmapRef& frame = frames_[static_cast<size_t>(next_frame_)];
  next_frame_ = (next_frame_ + 1) % config_.frame_count;
  if (gate_ && !gate_()) {
    ++frames_skipped_;
    return;
  }
  ++frames_drawn_;
  protocol_.SubmitDraw(DrawCommand::PutImage(frame));
  protocol_.Flush();
}

}  // namespace tcs
