// Character-repeat typist (§4.2.2 Methodology): "The tester held down a key in the
// application to engage character repeat on the client machine, the rate of which was set
// at 20Hz. Under no load, we expect the server to respond every 50ms with a screen update
// message to draw a new character."

#ifndef TCS_SRC_WORKLOAD_TYPIST_H_
#define TCS_SRC_WORKLOAD_TYPIST_H_

#include <functional>

#include "src/sim/periodic.h"
#include "src/sim/simulator.h"

namespace tcs {

class Typist {
 public:
  // `on_keystroke` is invoked once per repeat period (default 20 Hz); it should inject the
  // keystroke into the system under test.
  Typist(Simulator& sim, std::function<void()> on_keystroke,
         Duration period = Duration::Millis(50));

  void Start(Duration initial_delay = Duration::Zero());
  void Stop();
  int64_t keystrokes() const { return keystrokes_; }

  // Checkpoint/restore: the keystroke count and the repeat loop's pending firing. The
  // injection callback is reconstruction config.
  void SaveTo(SnapshotWriter& w, const Simulator& sim) const {
    w.I64(keystrokes_);
    task_.SaveTo(w, sim);
  }
  void LoadFrom(SnapshotReader& r, EventRearm& plan) {
    keystrokes_ = r.I64();
    task_.LoadFrom(r, plan, "typist");
  }

 private:
  std::function<void()> on_keystroke_;
  int64_t keystrokes_ = 0;
  PeriodicTask task_;
};

}  // namespace tcs

#endif  // TCS_SRC_WORKLOAD_TYPIST_H_
