#include "src/workload/webpage.h"

#include <cassert>

namespace tcs {

Marquee::Marquee(Simulator& sim, DisplayProtocol& protocol, MarqueeConfig config)
    : protocol_(protocol), config_(config), task_(sim, config.tick, [this] { Tick(); }) {
  assert(config_.strip_count > 0);
  strips_.reserve(static_cast<size_t>(config_.strip_count));
  for (int s = 0; s < config_.strip_count; ++s) {
    strips_.push_back(BitmapRef::Make((config_.id << 21) ^ static_cast<uint64_t>(s),
                                      config_.width, config_.height,
                                      config_.compression_ratio));
  }
}

Bytes Marquee::StripSetBytes() const {
  Bytes total = Bytes::Zero();
  for (const BitmapRef& strip : strips_) {
    total += strip.compressed_bytes;
  }
  return total;
}

void Marquee::Start(Duration initial_delay) {
  task_.Start(initial_delay);
}

void Marquee::Stop() {
  task_.Stop();
}

void Marquee::Tick() {
  ++ticks_;
  const BitmapRef& strip = strips_[static_cast<size_t>(next_strip_)];
  next_strip_ = (next_strip_ + 1) % config_.strip_count;
  // Fresh pixels for the newly exposed edge column every tick, never cacheable.
  BitmapRef edge = BitmapRef::Make((config_.id << 42) ^ ++edge_counter_, config_.width,
                                   config_.edge_height, config_.compression_ratio);
  // One batch per tick: scroll the band one step left, redraw from the cyclic strip set
  // (a bitmap cache holds these, in isolation), then paint the exposed edge column.
  const DrawCommand tick_draws[] = {
      DrawCommand::CopyArea(config_.width, config_.height),
      DrawCommand::PutImage(strip),
      DrawCommand::PutImage(edge),
  };
  protocol_.SubmitDrawBatch(tick_draws);
  protocol_.Flush();
}

WebPage::WebPage(Simulator& sim, DisplayProtocol& protocol, WebPageConfig config) {
  if (config.banner) {
    AnimationConfig banner = config.banner_config;
    banner.id = 1;
    banner.frame_count = 10;
    banner.frame_period = Duration::Millis(500);  // banner GIFs flip ~2 fps
    banner.width = 468;
    banner.height = 60;
    banner.compression_ratio = 0.85;
    banner_.emplace(sim, protocol, banner);
  }
  if (config.marquee) {
    marquee_.emplace(sim, protocol, config.marquee_config);
  }
}

void WebPage::Open() {
  if (banner_) {
    banner_->Start();
  }
  if (marquee_) {
    // Offset phases so banner frames and ticker strips interleave in the request stream.
    marquee_->Start(Duration::Millis(37));
  }
}

void WebPage::Close() {
  if (banner_) {
    banner_->Stop();
  }
  if (marquee_) {
    marquee_->Stop();
  }
}

}  // namespace tcs
