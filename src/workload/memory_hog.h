// Streaming memory job (§5.2): "a process that sequentially touches each byte in a region
// whose total size exceeds the available physical memory, causing the pages of the edit
// application's memory to be swapped to disk." Examples from Evans et al.: large NFS data
// copies, big /tmp files, compilation stages.

#ifndef TCS_SRC_WORKLOAD_MEMORY_HOG_H_
#define TCS_SRC_WORKLOAD_MEMORY_HOG_H_

#include "src/mem/pager.h"
#include "src/sim/simulator.h"

namespace tcs {

struct MemoryHogConfig {
  // Pages in the streamed region.
  size_t region_pages = 20000;
  // CPU time spent per page between faults (the touch loop itself).
  Duration touch_cpu = Duration::Micros(50);
  // Whether the region is written (dirty pages force eviction writebacks) or only read.
  bool writes = true;
};

class MemoryHog {
 public:
  MemoryHog(Simulator& sim, Pager& pager, MemoryHogConfig config = {});

  MemoryHog(const MemoryHog&) = delete;
  MemoryHog& operator=(const MemoryHog&) = delete;

  // Begins streaming; wraps around the region indefinitely until Stop().
  void Start();
  void Stop();

  AddressSpace* address_space() const { return as_; }
  int64_t pages_touched() const { return pages_touched_; }

 private:
  void TouchNext();

  Simulator& sim_;
  Pager& pager_;
  MemoryHogConfig config_;
  AddressSpace* as_;
  uint64_t next_vpn_ = 0;
  int64_t pages_touched_ = 0;
  bool running_ = false;
};

}  // namespace tcs

#endif  // TCS_SRC_WORKLOAD_MEMORY_HOG_H_
