// Replayable application-interaction scripts — the "typical application workload" of
// §6.1.2: "editing a WordPerfect document, creating a simple bitmap in the Gimp, and
// configuring a network interface in the control panel." The original was a predefined
// set of user interactions; ours are deterministic synthetic scripts whose step mix is
// calibrated to that description (typing + scrolling; brush strokes + canvas tiles;
// widget navigation + dialogs).

#ifndef TCS_SRC_WORKLOAD_APP_SCRIPT_H_
#define TCS_SRC_WORKLOAD_APP_SCRIPT_H_

#include <functional>
#include <string>
#include <vector>

#include "src/proto/display_protocol.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace tcs {

struct ScriptStep {
  std::vector<InputEvent> inputs;
  std::vector<DrawCommand> draws;
  // Think time before the next step.
  Duration think = Duration::Millis(300);
};

class AppScript {
 public:
  // The three applications of the paper's workload. `rng` fixes the interaction sequence.
  static AppScript WordProcessor(Rng rng, int steps = 600);
  static AppScript PhotoEditor(Rng rng, int steps = 600);
  static AppScript ControlPanel(Rng rng, int steps = 600);

  // Builds a script from explicit steps (used by the trace parser and custom workloads).
  static AppScript FromSteps(std::string name, std::vector<ScriptStep> steps) {
    return AppScript(std::move(name), std::move(steps));
  }

  const std::string& name() const { return name_; }
  const std::vector<ScriptStep>& steps() const { return steps_; }
  Duration TotalDuration() const;

  // Replays the script against `protocol` starting at the current virtual time; each step
  // submits its input events and draw commands, then flushes. `done` fires after the last
  // step's think time. The AppScript (and `protocol`) must outlive the replay: scheduled
  // steps reference this object's storage.
  void Replay(Simulator& sim, DisplayProtocol& protocol,
              std::function<void()> done = nullptr) const;

  // Aggregate counts, for tests and calibration.
  size_t TotalInputEvents() const;
  size_t TotalDrawCommands() const;

 private:
  AppScript(std::string name, std::vector<ScriptStep> steps)
      : name_(std::move(name)), steps_(std::move(steps)) {}

  std::string name_;
  std::vector<ScriptStep> steps_;
};

}  // namespace tcs

#endif  // TCS_SRC_WORKLOAD_APP_SCRIPT_H_
