// `sink` — the paper's greedy CPU consumer (§4.2.2 Methodology).
//
// "We wrote a simple C program called sink that is a greedy consumer of CPU cycles. Since
// sink never voluntarily yields the processor, each running instance should increase the
// scheduler queue length by one."

#ifndef TCS_SRC_WORKLOAD_SINK_H_
#define TCS_SRC_WORKLOAD_SINK_H_

#include "src/cpu/cpu.h"

namespace tcs {

class SinkProcess {
 public:
  // Creates and immediately starts one sink thread on `cpu` with the given base priority.
  SinkProcess(Cpu& cpu, int base_priority, ThreadClass cls = ThreadClass::kBatch);

  Thread* thread() const { return thread_; }

 private:
  Thread* thread_;
};

// Convenience: start `count` sinks (the paper's load-unit knob).
void StartSinks(Cpu& cpu, int count, int base_priority,
                ThreadClass cls = ThreadClass::kBatch);

}  // namespace tcs

#endif  // TCS_SRC_WORKLOAD_SINK_H_
