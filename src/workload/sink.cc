#include "src/workload/sink.h"

namespace tcs {

namespace {
// "Never yields": one work item far longer than any experiment.
constexpr Duration kForever = Duration::Seconds(1000000);
}  // namespace

SinkProcess::SinkProcess(Cpu& cpu, int base_priority, ThreadClass cls) {
  thread_ = cpu.CreateThread("sink", cls, base_priority);
  cpu.PostWork(*thread_, kForever);
}

void StartSinks(Cpu& cpu, int count, int base_priority, ThreadClass cls) {
  for (int i = 0; i < count; ++i) {
    SinkProcess sink(cpu, base_priority, cls);
  }
}

}  // namespace tcs
