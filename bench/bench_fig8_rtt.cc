// Figure 8: network round-trip time as a function of offered load — 64-byte pings (the
// size of a typical input-channel message) against Poisson background traffic on a shared
// 10 Mbps link, 60 s per load level.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

void Run() {
  PrintBanner("Figure 8 — ping RTT vs offered load (64-byte packets, 10 Mbps link)",
              "60 s of pings per load level against Poisson background traffic.");
  PrintPaperNote("RTT stays low and almost perfectly consistent until near saturation; "
                 "the ~55 ms delay at 9.6 Mbps is well into human latency tolerance.");

  TextTable table({"offered load (Mbps)", "mean RTT (ms)"});
  for (double mbps : {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 8.5, 9.0, 9.3, 9.6}) {
    RttProbeResult r = RunRttProbe(mbps);
    table.AddRow({TextTable::Fixed(mbps, 1), TextTable::Fixed(r.mean_rtt_ms, 2)});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
