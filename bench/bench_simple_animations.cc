// §6.1.3, first paragraph: "Simple animations like blinking cursors and progress bars
// generate a harmless amount of traffic, generally less than 10KBps for short durations."
// This harness measures a blinking caret (2 Hz, a 2x16 rect) and a progress bar (4 Hz,
// a growing 300x12 fill) over each protocol against that bound.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/proto/lbx_protocol.h"
#include "src/proto/protocol_kind.h"
#include "src/proto/rdp_protocol.h"
#include "src/proto/slim_protocol.h"
#include "src/proto/vnc_protocol.h"
#include "src/proto/x_protocol.h"
#include "src/sim/periodic.h"
#include "src/util/table.h"

namespace tcs {
namespace {

double MeasureKBps(ProtocolKind kind, bool caret, bool progress) {
  Simulator sim;
  Link link(sim);
  MessageSender display(link, HeaderModel::TcpIp());
  MessageSender input(link, HeaderModel::TcpIp());
  ProtoTap tap(Duration::Seconds(1));
  std::unique_ptr<DisplayProtocol> protocol;
  switch (kind) {
    case ProtocolKind::kRdp:
      protocol = std::make_unique<RdpProtocol>(sim, display, input, &tap, Rng(4));
      break;
    case ProtocolKind::kX:
      protocol = std::make_unique<XProtocol>(sim, display, input, &tap, Rng(4));
      break;
    case ProtocolKind::kLbx:
      protocol = std::make_unique<LbxProtocol>(sim, display, input, &tap, Rng(4));
      break;
    case ProtocolKind::kSlim:
      protocol = std::make_unique<SlimProtocol>(sim, display, input, &tap, Rng(4));
      break;
    case ProtocolKind::kVnc: {
      auto vnc = std::make_unique<VncProtocol>(sim, display, input, &tap, Rng(4));
      vnc->StartClientPull();
      protocol = std::move(vnc);
      break;
    }
  }

  PeriodicTask caret_task(sim, Duration::Millis(500), [&] {
    protocol->SubmitDraw(DrawCommand::Rect(2, 16));
    protocol->Flush();
  });
  PeriodicTask progress_task(sim, Duration::Millis(250), [&] {
    protocol->SubmitDraw(DrawCommand::Rect(300, 12));
    protocol->SubmitDraw(DrawCommand::Text(6));  // "42%" label
    protocol->Flush();
  });
  if (caret) {
    caret_task.Start();
  }
  if (progress) {
    progress_task.Start(Duration::Millis(125));
  }
  Duration window = Duration::Seconds(60);
  sim.RunUntil(TimePoint::Zero() + window);
  caret_task.Stop();
  progress_task.Stop();
  return static_cast<double>(tap.total_counted_bytes().count()) / window.ToSecondsF() /
         1024.0;
}

void Run() {
  PrintBanner("§6.1.3 — 'harmless' simple animations (KB/s over 60 s)",
              "Blinking caret (2 Hz) and progress bar (4 Hz) per protocol.");
  PrintPaperNote("Simple animations generate less than 10 KBps — unlike the banner ads "
                 "and tickers of Figure 4.");

  TextTable table({"protocol", "caret", "progress bar", "both", "verdict"});
  for (ProtocolKind kind : {ProtocolKind::kRdp, ProtocolKind::kX, ProtocolKind::kLbx,
                            ProtocolKind::kSlim, ProtocolKind::kVnc}) {
    double caret = MeasureKBps(kind, true, false);
    double bar = MeasureKBps(kind, false, true);
    double both = MeasureKBps(kind, true, true);
    std::string name;
    switch (kind) {
      case ProtocolKind::kRdp: name = "RDP"; break;
      case ProtocolKind::kX: name = "X"; break;
      case ProtocolKind::kLbx: name = "LBX"; break;
      case ProtocolKind::kSlim: name = "SLIM"; break;
      case ProtocolKind::kVnc: name = "VNC"; break;
    }
    table.AddRow({name, TextTable::Fixed(caret, 2), TextTable::Fixed(bar, 2),
                  TextTable::Fixed(both, 2), both < 10.0 ? "harmless" : "OVER 10 KB/s"});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
