// Figure 6: CPU utilization and cumulative bitmap-cache hit ratio for a 66-frame looping
// animation that overflows the 1.5 MB cache. The hit ratio (seeded high by the session's
// UI rasters) decays asymptotically toward zero while the server keeps re-encoding.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

void Run() {
  PrintBanner("Figure 6 — CPU utilization and cumulative cache hit ratio, 66-frame loop",
              "24 KB frames at 5 fps vs the 1.5 MB LRU client cache, 60 s.");
  PrintPaperNote("CPU starts ~10% and never falls (every frame misses and is re-sent); "
                 "the cumulative hit ratio starts ~70% and falls asymptotically to zero.");

  CacheOverflowResult r = RunCacheOverflow(66, Duration::Seconds(60));
  TextTable table({"time (s)", "cache hit ratio (%)", "CPU utilization (%)"});
  for (size_t i = 0; i < r.cpu_utilization.size() && i < r.cumulative_hit_ratio.size();
       i += 2) {
    table.AddRow({TextTable::Num(static_cast<int64_t>(i) + 1),
                  TextTable::Fixed(r.cumulative_hit_ratio[i] * 100.0, 1),
                  TextTable::Fixed(r.cpu_utilization[i] * 100.0, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("hit ratio: start=%.1f%%  end=%.1f%% (monotone decay)\n",
              r.cumulative_hit_ratio.front() * 100.0, r.cumulative_hit_ratio.back() * 100.0);
  std::printf("CPU utilization at t=30s: %.1f%%, at t=59s: %.1f%% (never falls)\n",
              r.cpu_utilization[30] * 100.0, r.cpu_utilization[58] * 100.0);
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
