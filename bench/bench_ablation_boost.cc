// Ablation A1 (§4.2.1 analysis): the boost "grace period" vs operation length. Sweeps
// quantum stretching (1..3) and CPU speed for the 500 ms maximize operation intersecting
// a 400 ms priority-13 daemon event; shows when the operation fits inside the boosted
// window (completes untouched) vs when it is stranded behind the daemon (the 900 ms case).

#include <cstdio>
#include <iterator>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/core/parallel_sweep.h"
#include "src/util/table.h"

namespace tcs {
namespace {

const double kSpeeds[] = {1.0, 1.5, 2.0, 2.5, 2.8, 3.0, 4.0, 5.5};
const int kStretches[] = {1, 2, 3};

void Run() {
  PrintBanner("Ablation A1 — GUI boost grace period vs operation length",
              "500 ms maximize op vs a 400 ms priority-13 event; stretch x speed sweep.");
  PrintPaperNote("Boost lasts 2 quanta: grace = 2 x 30 ms x stretch (max 180 ms). An "
                 "operation longer than the grace period pays the full daemon event "
                 "(500 -> 900 ms); processors ~3x faster bring it under the threshold "
                 "with no scheduler change.");

  constexpr int kStretchCount = static_cast<int>(std::size(kStretches));
  ParallelSweep sweep;
  std::vector<Duration> done = sweep.Map(
      static_cast<int>(std::size(kSpeeds)) * kStretchCount, [&](int i) {
        return RunMaximizeScenario(kStretches[i % kStretchCount],
                                   kSpeeds[i / kStretchCount]);
      });

  TextTable table({"CPU speed", "op length (ms)", "stretch=1", "stretch=2", "stretch=3"});
  for (size_t s = 0; s < std::size(kSpeeds); ++s) {
    double speed = kSpeeds[s];
    std::vector<std::string> row;
    row.push_back(TextTable::Fixed(speed, 1) + "x");
    row.push_back(TextTable::Fixed(500.0 / speed, 0));
    for (int stretch = 0; stretch < kStretchCount; ++stretch) {
      row.push_back(TextTable::Fixed(
          done[s * static_cast<size_t>(kStretchCount) + static_cast<size_t>(stretch)]
              .ToMillisF(),
          0));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("reading: completion == op length -> fit inside the boost grace period;\n");
  std::printf("         completion ~= op length + 400 ms -> stranded behind the daemon.\n");
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
