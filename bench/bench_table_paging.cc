// §5.2 table: keystroke response latency after memory pressure (page demand < 100% vs
// >= 100%), min/avg/max over ten runs per OS. Responses under the 50 ms display period
// are reported as "50" as in the paper's measurement floor.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

std::string Floor50(double ms) {
  return TextTable::Num(static_cast<int64_t>(std::max(ms, 50.0)));
}

void Run() {
  PrintBanner("§5.2 — keystroke latency under paging pressure (ms, 10 runs)",
              "Editor idles ~30 s while a streaming hog runs, then one keystroke.");
  PrintPaperNote("Linux >=100%: 330 / 1,170 / 3,000.  TSE >=100%: 2,430 / 4,026 / 11,850. "
                 "Averages are ~11x (Linux) and ~40x (TSE) the perception threshold.");

  TextTable table({"OS", "demand", "min", "avg", "max"});
  for (const OsProfile& profile : {OsProfile::LinuxX(), OsProfile::Tse()}) {
    PagingLatencyResult lo = RunPagingLatency(profile, /*full_demand=*/false, 10);
    PagingLatencyResult hi = RunPagingLatency(profile, /*full_demand=*/true, 10);
    table.AddRow({profile.name, "< 100%", Floor50(lo.min_ms), Floor50(lo.avg_ms),
                  Floor50(lo.max_ms)});
    table.AddRow({profile.name, ">= 100%", Floor50(hi.min_ms), Floor50(hi.avg_ms),
                  Floor50(hi.max_ms)});
  }
  std::printf("%s\n", table.Render().c_str());

  PagingLatencyResult lin = RunPagingLatency(OsProfile::LinuxX(), true, 10);
  PagingLatencyResult tse = RunPagingLatency(OsProfile::Tse(), true, 10);
  std::printf("avg vs 100 ms perception threshold: Linux %.0fx (paper ~11x), TSE %.0fx "
              "(paper ~40x)\n",
              lin.avg_ms / 100.0, tse.avg_ms / 100.0);
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
