// Ablation A4 (§3.1 / §7): utilization-based server sizing vs latency-based sizing.
//
// The paper criticizes vendor sizing white papers for "defining typical user profiles and
// reporting the load generated" while "uniformly ignoring the issue of user-perceived
// latency". This harness sizes the same server both ways: the white-paper criterion
// (CPU utilization under 85%) and the paper's criterion (average stall under the 100 ms
// perception threshold) — and shows how far apart the two capacity answers are.

#include <cstdio>
#include <iterator>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/core/parallel_sweep.h"
#include "src/metrics/latency.h"
#include "src/util/table.h"

namespace tcs {
namespace {

const int kUsers[] = {2, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32};

void Run() {
  PrintBanner("Ablation A4 — utilization-based vs latency-based server sizing",
              "N users typing at 5 chars/s, each with a periodic 300 ms app burst.");
  PrintPaperNote("Sizing white papers report supported users from utilization alone; the "
                 "paper's framework asks what latency those users actually experience.");

  const OsProfile profiles[] = {OsProfile::Tse(), OsProfile::LinuxX(),
                                OsProfile::LinuxSvr4()};
  constexpr int kUserCount = static_cast<int>(std::size(kUsers));

  // All profile x user-count sizing runs fan out together; the ceiling scan below reads
  // them back in the same order the serial loops produced.
  ParallelSweep sweep;
  std::vector<SizingPoint> points =
      sweep.Map(static_cast<int>(std::size(profiles)) * kUserCount, [&](int i) {
        return RunServerSizing(profiles[i / kUserCount], kUsers[i % kUserCount]);
      });

  for (size_t prof = 0; prof < std::size(profiles); ++prof) {
    const OsProfile& base = profiles[prof];
    std::printf("--- %s ---\n", base.name.c_str());
    TextTable table({"users", "CPU util", "avg stall (ms)", "worst user (ms)",
                     "util verdict", "latency verdict"});
    int util_ceiling = 0;
    int latency_ceiling = 0;
    bool util_failed = false;
    bool latency_failed = false;
    for (int u = 0; u < kUserCount; ++u) {
      int users = kUsers[u];
      const SizingPoint& p = points[prof * static_cast<size_t>(kUserCount) +
                                    static_cast<size_t>(u)];
      bool util_ok = p.cpu_utilization < 0.85;
      bool latency_ok = p.avg_stall_ms < kPerceptionThreshold.ToMillisF();
      if (util_ok && !util_failed) {
        util_ceiling = users;
      } else {
        util_failed = true;
      }
      if (latency_ok && !latency_failed) {
        latency_ceiling = users;
      } else {
        latency_failed = true;
      }
      table.AddRow({TextTable::Num(users), TextTable::Percent(p.cpu_utilization, 1),
                    TextTable::Fixed(p.avg_stall_ms, 1),
                    TextTable::Fixed(p.worst_stall_ms, 1), util_ok ? "ok" : "OVER",
                    latency_ok ? "ok" : "OVER"});
    }
    std::printf("%s", table.Render().c_str());
    std::printf("capacity by utilization (<85%%): ~%d users;  by latency (<100 ms): ~%d "
                "users\n\n",
                util_ceiling, latency_ceiling);
  }
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
