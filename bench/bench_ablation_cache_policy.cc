// Ablation A2 (§6.1.3 "Cache Pathology"): LRU vs the loop-aware eviction policy the paper
// calls for ("a more intelligent scheme capable of dealing with such animations might
// somehow detect loop patterns and adjust its eviction behavior accordingly").

#include <cstdio>
#include <iterator>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/core/parallel_sweep.h"
#include "src/util/table.h"

namespace tcs {
namespace {

const int kFrames[] = {25, 45, 60, 65, 66, 70, 80, 100};

void Run() {
  PrintBanner("Ablation A2 — bitmap cache eviction policy vs looping animations",
              "Frame counts 25..100 at 5 fps over RDP; LRU vs loop-aware eviction.");
  PrintPaperNote("Looping animations defeat LRU bitmap caches the way sequential scans "
                 "defeat LRU disk caches. A loop-aware policy keeps a stable prefix "
                 "resident and removes the Figure 7 cliff.");

  // Frame count x eviction policy, fanned out in parallel (policy is the fast-varying
  // index: even i = LRU, odd i = loop-aware).
  ParallelSweep sweep;
  std::vector<AnimationLoadResult> results =
      sweep.Map(static_cast<int>(std::size(kFrames)) * 2, [&](int i) {
        GifAnimationOptions opt;
        opt.frames = kFrames[i / 2];
        opt.frame_period = Duration::Millis(200);
        opt.width = 200;
        opt.height = 150;
        opt.compression_ratio = 0.8;
        opt.duration = Duration::Seconds(60);
        opt.cache_policy = i % 2 == 0 ? CachePolicy::kLru : CachePolicy::kLoopAware;
        return RunGifAnimation(ProtocolKind::kRdp, opt);
      });

  TextTable table({"frames", "LRU (Mbps)", "loop-aware (Mbps)", "LRU hit %", "loop-aware hit %"});
  for (size_t f = 0; f < std::size(kFrames); ++f) {
    const AnimationLoadResult& lru = results[f * 2];
    const AnimationLoadResult& loop = results[f * 2 + 1];
    table.AddRow({TextTable::Num(kFrames[f]), TextTable::Fixed(lru.sustained_mbps, 3),
                  TextTable::Fixed(loop.sustained_mbps, 3),
                  TextTable::Fixed(lru.cumulative_hit_ratio * 100.0, 1),
                  TextTable::Fixed(loop.cumulative_hit_ratio * 100.0, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
