// Figure 7: network load vs animation frame count (25..100) — the bitmap-cache size made
// visible. Loops whose frames fit the 1.5 MB cache cost ~0.01 Mbps; one frame more and
// LRU misses on every frame, costing the full-transfer bandwidth (~0.96 Mbps).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

void Run() {
  PrintBanner("Figure 7 — network load vs animation frame count ('Dateline NBC')",
              "24 KB frames at 5 fps over RDP; frame counts 25..100.");
  PrintPaperNote("0.01 Mbps for 25..65 frames; 0.96 Mbps for everything above 65 — the "
                 "cliff marks the 1.5 MB cache boundary.");

  TextTable table({"frames", "network load (Mbps)"});
  for (int frames = 25; frames <= 100; frames += 5) {
    GifAnimationOptions opt;
    opt.frames = frames;
    opt.frame_period = Duration::Millis(200);
    opt.width = 200;
    opt.height = 150;
    opt.compression_ratio = 0.8;  // 30 000 raw -> 24 000 compressed bytes per frame
    opt.duration = Duration::Seconds(60);
    AnimationLoadResult r = RunGifAnimation(ProtocolKind::kRdp, opt);
    table.AddRow({TextTable::Num(frames), TextTable::Fixed(r.sustained_mbps, 3)});
  }
  // The exact cliff.
  for (int frames : {64, 65, 66, 67}) {
    GifAnimationOptions opt;
    opt.frames = frames;
    opt.frame_period = Duration::Millis(200);
    opt.width = 200;
    opt.height = 150;
    opt.compression_ratio = 0.8;
    opt.duration = Duration::Seconds(60);
    AnimationLoadResult r = RunGifAnimation(ProtocolKind::kRdp, opt);
    std::printf("cliff detail: %d frames -> %.3f Mbps\n", frames, r.sustained_mbps);
  }
  std::printf("\n%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
