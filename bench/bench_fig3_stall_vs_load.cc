// Figure 3: average stall length experienced by a typing user vs scheduler queue length.
// 20 Hz character repeat against 0..50 sinks; also includes the Evans et al. SVR4
// interactive scheduler as the "what good looks like" extension.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

void Run() {
  PrintBanner("Figure 3 — average stall length vs scheduler queue length",
              "20 Hz key repeat; N sinks; stall = display inter-arrival - 50 ms.");
  PrintPaperNote("TSE latency increases sharply around 10 load units and the system is "
                 "barely usable at 15; Linux degrades linearly but more slowly; Evans et "
                 "al.'s interactive SVR4 stays constant and small.");

  TextTable table({"sinks", "TSE avg stall (ms)", "TSE jitter", "Linux avg stall (ms)",
                   "Linux jitter", "SVR4-IA avg stall (ms)"});
  for (int sinks : {0, 1, 2, 5, 8, 10, 12, 15, 20, 25, 30, 40, 50}) {
    TypingUnderLoadResult lin =
        RunTypingUnderLoad(OsProfile::LinuxX(), sinks, Duration::Seconds(60));
    TypingUnderLoadResult svr4 =
        RunTypingUnderLoad(OsProfile::LinuxSvr4(), sinks, Duration::Seconds(60));
    std::string tse_stall = "(unusable)";
    std::string tse_jitter = "-";
    if (sinks <= 15) {
      // "The data for TSE stops at 15 load units because at that point the system became
      // barely usable at the console."
      TypingUnderLoadResult tse =
          RunTypingUnderLoad(OsProfile::Tse(), sinks, Duration::Seconds(60));
      tse_stall = TextTable::Fixed(tse.avg_stall_ms, 1);
      tse_jitter = TextTable::Fixed(tse.jitter_ms, 1);
    }
    table.AddRow({TextTable::Num(sinks), tse_stall, tse_jitter,
                  TextTable::Fixed(lin.avg_stall_ms, 1), TextTable::Fixed(lin.jitter_ms, 1),
                  TextTable::Fixed(svr4.avg_stall_ms, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
