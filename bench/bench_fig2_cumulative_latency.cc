// Figure 2: cumulative idle-state latency vs event duration (NT, TSE, Linux).
// For each OS, prints the lost-time curve: x = event length, y = cumulative CPU time of
// all events no longer than x, over a 10-minute idle trace.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

double CumulativeAt(const IdleProfileResult& r, Duration x) {
  double cum = 0.0;
  for (const auto& pt : r.cumulative) {
    if (pt.event_length <= x) {
      cum = pt.cumulative_latency.ToSecondsF();
    }
  }
  return cum;
}

void Run() {
  PrintBanner("Figure 2 — cumulative idle-state latency vs event duration",
              "10-minute idle trace; per-thread lost-time events.");
  PrintPaperNote("NT's events are <= 100 ms; TSE adds 250 ms and 400 ms events; Linux sees "
                 "few events of significant latency. TSE aggregate ~45 s, ~3x NT, ~7x Linux.");

  IdleProfileResult nt = RunIdleProfile(OsProfile::NtWorkstation(), Duration::Seconds(600));
  IdleProfileResult tse = RunIdleProfile(OsProfile::Tse(), Duration::Seconds(600));
  IdleProfileResult lin = RunIdleProfile(OsProfile::LinuxX(), Duration::Seconds(600));

  TextTable table({"event length (ms)", "NT TSE (s)", "NT Workstation (s)", "Linux (s)"});
  for (int ms : {0, 1, 5, 10, 25, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500, 600}) {
    Duration x = Duration::Millis(ms);
    table.AddRow({TextTable::Num(ms), TextTable::Fixed(CumulativeAt(tse, x), 2),
                  TextTable::Fixed(CumulativeAt(nt, x), 2),
                  TextTable::Fixed(CumulativeAt(lin, x), 2)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("totals: TSE=%.2fs NT=%.2fs Linux=%.2fs (paper: ~45 / ~15 / ~6.5)\n",
              tse.total_busy.ToSecondsF(), nt.total_busy.ToSecondsF(),
              lin.total_busy.ToSecondsF());
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
