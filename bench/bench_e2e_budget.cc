// Extension R3: the end-to-end latency budget — §3.2's factor taxonomy (hardware
// resources, OS structure, user behavior) turned into a measured breakdown of where each
// keystroke's milliseconds go: input transit, server scheduling + pipeline, display
// transit, client decode + blit.

#include <cstdio>
#include <iterator>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/core/parallel_sweep.h"
#include "src/util/table.h"

namespace tcs {
namespace {

void AddRow(TextTable& table, const char* scenario, const EndToEndResult& r) {
  table.AddRow({scenario, TextTable::Fixed(r.input_net_ms, 2),
                TextTable::Fixed(r.server_ms, 2), TextTable::Fixed(r.display_net_ms, 2),
                TextTable::Fixed(r.client_ms, 2), TextTable::Fixed(r.total_ms, 2)});
}

struct Scenario {
  const char* label;
  EndToEndOptions options;
};

std::vector<Scenario> Scenarios() {
  EndToEndOptions baseline;
  EndToEndOptions loaded = baseline;
  loaded.sinks = 10;
  EndToEndOptions congested = baseline;
  congested.background_mbps = 9.0;
  EndToEndOptions weak_client = baseline;
  weak_client.client = ThinClientConfig::Handheld();
  return {{"idle server, desktop client", baseline},
          {"10 sinks (CPU stress)", loaded},
          {"9 Mbps background (net stress)", congested},
          {"handheld client (client stress)", weak_client}};
}

void Run() {
  PrintBanner("Extension R3 — end-to-end keystroke latency budget (mean ms per leg)",
              "input net | server (queue+pipeline) | display net | client decode+blit");
  PrintPaperNote("Not a paper figure: §3.2's 'three categories of factors' made "
                 "measurable. Shows which leg dominates under each kind of stress.");

  const OsProfile profiles[] = {OsProfile::Tse(), OsProfile::LinuxX()};
  const std::vector<Scenario> scenarios = Scenarios();
  const int per_profile = static_cast<int>(scenarios.size());

  ParallelSweep sweep;
  std::vector<EndToEndResult> results =
      sweep.Map(static_cast<int>(std::size(profiles)) * per_profile, [&](int i) {
        return RunEndToEndLatency(profiles[i / per_profile],
                                  scenarios[static_cast<size_t>(i % per_profile)].options);
      });

  for (size_t p = 0; p < std::size(profiles); ++p) {
    std::printf("--- %s ---\n", profiles[p].name.c_str());
    TextTable table({"scenario", "input net", "server", "display net", "client", "total"});
    for (size_t s = 0; s < scenarios.size(); ++s) {
      AddRow(table, scenarios[s].label,
             results[p * static_cast<size_t>(per_profile) + s]);
    }
    std::printf("%s\n", table.Render().c_str());
  }
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
