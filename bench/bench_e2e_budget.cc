// Extension R3: the end-to-end latency budget — §3.2's factor taxonomy (hardware
// resources, OS structure, user behavior) turned into a measured breakdown of where each
// keystroke's milliseconds go: input transit, server scheduling + pipeline, display
// transit, client decode + blit.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

void AddRow(TextTable& table, const char* scenario, const EndToEndResult& r) {
  table.AddRow({scenario, TextTable::Fixed(r.input_net_ms, 2),
                TextTable::Fixed(r.server_ms, 2), TextTable::Fixed(r.display_net_ms, 2),
                TextTable::Fixed(r.client_ms, 2), TextTable::Fixed(r.total_ms, 2)});
}

void Run() {
  PrintBanner("Extension R3 — end-to-end keystroke latency budget (mean ms per leg)",
              "input net | server (queue+pipeline) | display net | client decode+blit");
  PrintPaperNote("Not a paper figure: §3.2's 'three categories of factors' made "
                 "measurable. Shows which leg dominates under each kind of stress.");

  for (const OsProfile& profile : {OsProfile::Tse(), OsProfile::LinuxX()}) {
    std::printf("--- %s ---\n", profile.name.c_str());
    TextTable table({"scenario", "input net", "server", "display net", "client", "total"});

    EndToEndOptions baseline;
    AddRow(table, "idle server, desktop client", RunEndToEndLatency(profile, baseline));

    EndToEndOptions loaded = baseline;
    loaded.sinks = 10;
    AddRow(table, "10 sinks (CPU stress)", RunEndToEndLatency(profile, loaded));

    EndToEndOptions congested = baseline;
    congested.background_mbps = 9.0;
    AddRow(table, "9 Mbps background (net stress)", RunEndToEndLatency(profile, congested));

    EndToEndOptions weak_client = baseline;
    weak_client.client = ThinClientConfig::Handheld();
    AddRow(table, "handheld client (client stress)",
           RunEndToEndLatency(profile, weak_client));

    std::printf("%s\n", table.Render().c_str());
  }
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
