// §6.1.2 VIP table: byte savings from eliding the 20-byte IP header per packet (the
// x-kernel virtual-IP scheme) for each protocol on the application workload.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

void Run() {
  PrintBanner("§6.1.2 — VIP (virtual IP) header-elision savings",
              "Same traces as the traffic table with 20 bytes removed per packet.");
  PrintPaperNote("Savings: RDP 4.65%, X 9.15%, LBX 22.90% — smaller messages benefit "
                 "more. Even with VIP, LBX stays > 2x less efficient than RDP.");

  TextTable table({"", "RDP", "X", "LBX"});
  ProtocolTrafficResult results[] = {RunAppWorkloadTraffic(ProtocolKind::kRdp),
                                     RunAppWorkloadTraffic(ProtocolKind::kX),
                                     RunAppWorkloadTraffic(ProtocolKind::kLbx)};
  table.AddRow({"Normal Bytes", TextTable::Num(results[0].total_bytes),
                TextTable::Num(results[1].total_bytes),
                TextTable::Num(results[2].total_bytes)});
  table.AddRow({"Bytes w/ VIP", TextTable::Num(results[0].vip_bytes),
                TextTable::Num(results[1].vip_bytes), TextTable::Num(results[2].vip_bytes)});
  auto savings = [](const ProtocolTrafficResult& r) {
    return TextTable::Percent(static_cast<double>(r.total_bytes - r.vip_bytes) /
                                  static_cast<double>(r.total_bytes),
                              2);
  };
  table.AddRow({"Savings", savings(results[0]), savings(results[1]), savings(results[2])});
  std::printf("%s\n", table.Render().c_str());

  double lbx_vip = static_cast<double>(results[2].vip_bytes);
  double rdp_normal = static_cast<double>(results[0].total_bytes);
  std::printf("LBX-with-VIP / RDP-without = %.2fx (paper: > 2x)\n", lbx_vip / rdp_normal);
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
