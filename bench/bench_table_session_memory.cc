// §5.1.1 tables: per-login compulsory memory (process lists) and idle system memory.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

void PrintLogin(const SessionMemoryResult& r) {
  std::printf("%s%s login:\n", r.os_name.c_str(), r.light ? " (light)" : "");
  TextTable table({"process", "private KB"});
  for (const auto& row : r.processes) {
    table.AddRow({row.process, TextTable::Num(row.private_memory.count() / 1024)});
  }
  table.AddRow({"Total", TextTable::Num(r.total.count() / 1024)});
  std::printf("%s", table.Render().c_str());
  std::printf("measured resident after login: %s (spec total %s)\n\n",
              r.measured_resident.ToString().c_str(), r.total.ToString().c_str());
}

void Run() {
  PrintBanner("§5.1.1 — compulsory memory load",
              "Idle-system memory plus minimal-login process tables per OS.");
  PrintPaperNote("Idle: ~17 MB Linux vs ~19 MB TSE. Per login: Linux 752 KB; TSE typical "
                 "3,244 KB; TSE light (command.com) 2,100 KB.");

  SessionMemoryResult lin = MeasureSessionMemory(OsProfile::LinuxX(), false);
  SessionMemoryResult tse = MeasureSessionMemory(OsProfile::Tse(), false);
  SessionMemoryResult tse_light = MeasureSessionMemory(OsProfile::Tse(), true);

  std::printf("idle system memory: Linux=%s  TSE=%s\n\n", lin.idle_system.ToString().c_str(),
              tse.idle_system.ToString().c_str());
  PrintLogin(lin);
  PrintLogin(tse);
  PrintLogin(tse_light);
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
