// §6.1.1: compulsory network load — session negotiation/initialization bytes per
// protocol, and the (absence of) idle traffic once a session is up.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/session/server.h"
#include "src/util/table.h"

namespace tcs {
namespace {

void Run() {
  PrintBanner("§6.1.1 — compulsory network load",
              "Session setup bytes per protocol; idle-session traffic.");
  PrintPaperNote("Setup: 45,328 bytes TSE vs 16,312 bytes Linux/X. Neither system "
                 "exchanges data while the user is idle.");

  TextTable table({"protocol", "session setup bytes"});
  table.AddRow({"RDP (TSE)", TextTable::Num(SessionSetupBytes(ProtocolKind::kRdp).count())});
  table.AddRow({"X (Linux)", TextTable::Num(SessionSetupBytes(ProtocolKind::kX).count())});
  table.AddRow({"LBX", TextTable::Num(SessionSetupBytes(ProtocolKind::kLbx).count())});
  std::printf("%s\n", table.Render().c_str());

  // Idle traffic after login: run a logged-in but untouched session for a minute.
  for (OsProfile profile : {OsProfile::Tse(), OsProfile::LinuxX()}) {
    Simulator sim;
    Server server(sim, profile);
    server.StartDaemons();
    server.Login();
    Bytes after_setup = server.link().bytes_carried();
    sim.RunUntil(TimePoint::Zero() + Duration::Seconds(60));
    Bytes idle_traffic = server.link().bytes_carried() - after_setup;
    std::printf("%s: idle-session traffic over 60 s = %s (paper: none)\n",
                profile.name.c_str(), idle_traffic.ToString().c_str());
  }
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
