// Micro-benchmarks of the framework's hot primitives (google-benchmark): event queue
// throughput, scheduler decision cost, LZ codec speed, bitmap cache operations, pager
// touch cost, and the full end-to-end cost of simulating one second of a loaded server.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/core/admission.h"
#include "src/core/checkpoint.h"
#include "src/cpu/cpu.h"
#include "src/cpu/nt_scheduler.h"
#include "src/obs/attribution.h"
#include "src/obs/critical_path.h"
#include "src/obs/trace.h"
#include "src/proto/bitmap_cache.h"
#include "src/session/server.h"
#include "src/sim/simulator.h"
#include "src/util/lz.h"
#include "src/workload/sink.h"
#include "src/workload/typist.h"

namespace tcs {
namespace {

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.Schedule(TimePoint::FromMicros((i * 7919) % 10000), [] {});
    }
    TimePoint when;
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.Pop(&when));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

// Cancellation-heavy churn: schedule a burst, cancel half of it out from under the queue,
// then drain. Timer re-arming (Periodic, StallDetector, protocol flush timers) makes
// Cancel a hot operation, not an edge case.
void BM_EventQueueCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    std::vector<EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(q.Schedule(TimePoint::FromMicros((i * 7919) % 10000), [] {}));
    }
    for (int i = 0; i < 1000; i += 2) {
      q.Cancel(ids[static_cast<size_t>(i)]);
    }
    TimePoint when;
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.Pop(&when));
    }
  }
  // 1000 schedules + 500 cancels + 500 pops per iteration.
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

// One million events flowing through a queue that holds ~10k outstanding at any moment —
// the shape of a long experiment run, where the working set stays bounded while the
// event count is effectively unbounded.
void BM_EventQueueMillionEvents(benchmark::State& state) {
  constexpr int kOutstanding = 10000;
  constexpr int kTotal = 1000000;
  for (auto _ : state) {
    EventQueue q;
    uint64_t t = 0;
    for (int i = 0; i < kOutstanding; ++i) {
      q.Schedule(TimePoint::FromMicros(static_cast<int64_t>((t += 13) % 100000)), [] {});
    }
    TimePoint when;
    for (int i = kOutstanding; i < kTotal; ++i) {
      benchmark::DoNotOptimize(q.Pop(&when));
      q.Schedule(when + Duration::Micros(static_cast<int64_t>((t += 13) % 1000)), [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.Pop(&when));
    }
  }
  state.SetItemsProcessed(state.iterations() * kTotal);
}
BENCHMARK(BM_EventQueueMillionEvents);

void BM_NtSchedulerDecision(benchmark::State& state) {
  NtScheduler sched;
  std::vector<std::unique_ptr<Thread>> threads;
  for (int i = 0; i < 32; ++i) {
    threads.push_back(std::make_unique<Thread>(static_cast<uint64_t>(i + 1), "t",
                                               ThreadClass::kBatch, i % 16));
  }
  for (auto& t : threads) {
    sched.OnReady(*t, WakeReason::kOther);
  }
  for (auto _ : state) {
    Thread* t = sched.PickNext();
    benchmark::DoNotOptimize(t);
    sched.OnQuantumExpired(*t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NtSchedulerDecision);

void BM_LzCompress(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)));
  rng.FillBytes(data.data(), data.size(), 0.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzCodec::Compress(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LzCompress)->Arg(256)->Arg(4096)->Arg(65536);

void BM_LzRoundTrip(benchmark::State& state) {
  Rng rng(2);
  std::vector<uint8_t> data(4096);
  rng.FillBytes(data.data(), data.size(), 0.85);
  for (auto _ : state) {
    auto compressed = LzCodec::Compress(data);
    benchmark::DoNotOptimize(LzCodec::Decompress(compressed));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_LzRoundTrip);

void BM_BitmapCacheLookupInsert(benchmark::State& state) {
  BitmapCache cache;
  uint64_t hash = 0;
  for (auto _ : state) {
    if (!cache.Lookup(hash % 128)) {
      cache.Insert(hash % 128, Bytes::Of(12000));
    }
    ++hash;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitmapCacheLookupInsert);

void BM_SimulateLoadedServerSecond(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Server server(sim, OsProfile::Tse());
    server.StartDaemons();
    Session& session = server.Login();
    server.StartSinks(static_cast<int>(state.range(0)));
    Typist typist(sim, [&] { server.Keystroke(session); });
    typist.Start();
    sim.RunUntil(TimePoint::Zero() + Duration::Seconds(1));
    benchmark::DoNotOptimize(server.tap().total_messages());
  }
}
BENCHMARK(BM_SimulateLoadedServerSecond)->Arg(0)->Arg(10)->Arg(50);

// Observability overhead on the same loaded-server second. Arg meaning:
//   0 — no tracer attached (the shipping default: one null-pointer branch per site)
//   1 — tracer attached with every category masked off (branch + filtered Push)
//   2 — tracer attached, all categories captured
// The 0-vs-1 gap prices the null-sink promise; 0-vs-2 prices full capture.
void BM_SimulateTracedServerSecond(benchmark::State& state) {
  int mode = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    Tracer tracer(TracerConfig{mode == 2 ? kAllTraceCategories : 0u});
    ServerConfig cfg;
    if (mode != 0) {
      cfg.tracer = &tracer;
    }
    Server server(sim, OsProfile::Tse(), cfg);
    server.StartDaemons();
    Session& session = server.Login();
    server.StartSinks(10);
    Typist typist(sim, [&] { server.Keystroke(session); });
    typist.Start();
    sim.RunUntil(TimePoint::Zero() + Duration::Seconds(1));
    benchmark::DoNotOptimize(server.tap().total_messages());
    benchmark::DoNotOptimize(tracer.event_count());
  }
}
BENCHMARK(BM_SimulateTracedServerSecond)->Arg(0)->Arg(1)->Arg(2);

// Latency-attribution overhead on the loaded-server second. Arg meaning:
//   0 — no engine attached (the shipping default: one null-pointer branch per keystroke)
//   1 — engine attached, no tracer (mint + record + aggregate, zero per-event allocs)
// The 0-vs-1 gap prices the tentpole's "<5% enabled, free disabled" contract.
void BM_AttributionOverhead(benchmark::State& state) {
  bool enabled = state.range(0) != 0;
  for (auto _ : state) {
    Simulator sim;
    LatencyAttribution attribution;
    ServerConfig cfg;
    if (enabled) {
      cfg.attribution = &attribution;
    }
    Server server(sim, OsProfile::Tse(), cfg);
    server.StartDaemons();
    Session& session = server.Login();
    server.StartSinks(10);
    Typist typist(sim, [&] { server.Keystroke(session); });
    typist.Start();
    sim.RunUntil(TimePoint::Zero() + Duration::Seconds(1));
    benchmark::DoNotOptimize(server.tap().total_messages());
    benchmark::DoNotOptimize(attribution.committed());
  }
}
BENCHMARK(BM_AttributionOverhead)->Arg(0)->Arg(1);

// End-to-end cost of simulating a consolidated server: N concurrent typists, each with
// its own protocol pipeline multiplexed over the shared link, with the latency-attribution
// engine engaged (the capacity-probe configuration). The tracked metric is wall time per
// simulated second — the multiplier on every sweep, chaos run, and capacity search.
// `wall_s_per_sim_s` x 1e9 is the ns-per-simulated-second figure BENCH_BASELINE records.
void BM_SimulateConsolidatedUsers(benchmark::State& state) {
  int users = static_cast<int>(state.range(0));
  ConsolidationOptions opts;
  opts.users = users;
  opts.duration = Duration::Seconds(users >= 256 ? 2 : 5);
  opts.ram = Bytes::MiB(4096);  // hold the logins resident: measure model code, not thrash
  // Same 104 ms login-ramp span at every N, so per-user event mixes stay comparable.
  opts.stagger = Duration::Micros(104000 / users);
  for (auto _ : state) {
    LatencyAttribution attribution;
    ObsConfig obs;
    obs.attribution = &attribution;
    ConsolidationResult result = RunConsolidation(OsProfile::Tse(), opts, &obs);
    benchmark::DoNotOptimize(result.worst_p99_stall_ms);
    benchmark::DoNotOptimize(result.blame.total_us);
  }
  double sim_seconds = (opts.start_delay + opts.duration).ToSecondsF();
  state.counters["wall_s_per_sim_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()) * sim_seconds,
                         benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_SimulateConsolidatedUsers)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond);

// Flight-recorder overhead on the 64-user consolidation configuration (the workload
// BM_SimulateConsolidatedUsers/64 measures). Arg meaning:
//   0 — no recorder attached (the shipping default: one null-pointer branch per site)
//   1 — recorder attached: every component appends compact records into the ring
// The 0-vs-1 gap prices the tentpole's "<3% always-on" contract (BENCH_BASELINE gates
// the ratio via the two wall_s_per_sim_s counters).
void BM_FlightRecorderOverhead(benchmark::State& state) {
  bool enabled = state.range(0) != 0;
  ConsolidationOptions opts;
  opts.users = 64;
  opts.duration = Duration::Seconds(5);
  opts.ram = Bytes::MiB(4096);
  opts.stagger = Duration::Micros(104000 / 64);
  for (auto _ : state) {
    FlightRecorder recorder;
    AttributionConfig attr_cfg;
    attr_cfg.recorder = enabled ? &recorder : nullptr;
    LatencyAttribution attribution(attr_cfg);
    ObsConfig obs;
    obs.attribution = &attribution;
    if (enabled) {
      obs.recorder = &recorder;
    }
    ConsolidationResult result = RunConsolidation(OsProfile::Tse(), opts, &obs);
    benchmark::DoNotOptimize(result.worst_p99_stall_ms);
    benchmark::DoNotOptimize(recorder.records_seen());
  }
  double sim_seconds = (opts.start_delay + opts.duration).ToSecondsF();
  state.counters["wall_s_per_sim_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()) * sim_seconds,
                         benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_FlightRecorderOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Critical-path extraction cost per committed interaction: Build() + longest-path
// extraction over the record corpus of one attributed, client-attached loaded-server
// second (graph assembly, tiling asserts, topological relaxation). The corpus is built
// once outside the timed loop; the loop prices the profiler itself, which runs
// per-record in RunWhatIf's prediction arm and in tcsctl's graph dumps.
void BM_CriticalPathExtraction(benchmark::State& state) {
  Simulator sim;
  AttributionConfig attr_cfg;
  attr_cfg.keep_records = true;
  LatencyAttribution attribution(attr_cfg);
  ServerConfig cfg;
  cfg.attribution = &attribution;
  Server server(sim, OsProfile::Tse(), cfg);
  server.StartDaemons();
  server.AttachClient(ThinClientConfig::DesktopPc());
  Session& session = server.Login();
  server.StartSinks(10);
  Typist typist(sim, [&] { server.Keystroke(session); });
  typist.Start();
  sim.RunUntil(TimePoint::Zero() + Duration::Seconds(1));
  const auto& records = attribution.records();
  for (auto _ : state) {
    int64_t sum = 0;
    for (const InteractionRecord& rec : records) {
      CriticalPathGraph g = CriticalPathGraph::Build(rec);
      sum += CriticalPathGraph::SegmentSumUs(g.ExtractCriticalPath());
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_CriticalPathExtraction);

// Capacity bisection, cold vs checkpointed. Every bisection probe replays the same
// staggered-login prefix (the 1 s start_delay before the first keystroke); the
// checkpointed search snapshots each probe at start_delay − 1 ms and forks later
// invocations' probes from the cached blob, paying the warm-up once per N instead of
// once per probe per search. The cache persists across iterations here, so the
// steady-state number is the all-hits path the repeated-sweep callers see.
// Args = {measured-window ms, wan}. The saving is the warm-up prefix's share of total
// event work minus the ~1 ms restore floor (deserializing a ~110 KB blob), so the two
// shapes bracket the honest answer: on a LAN the login storm is a handful of events
// and forking is a wash-to-slight-loss; under a satellite WAN with bursty daemons and
// a long staggered warm-up, the prefix carries real retransmit/timer event density and
// forking wins. Equivalence — identical admitted-N and per-probe reports — holds in
// both, locked down by core_checkpoint_diff_test.
CapacityOptions BenchCapacity(int64_t duration_ms, bool wan) {
  CapacityOptions o;
  o.max_users = 8;
  o.behavior.duration = Duration::Millis(duration_ms);
  o.behavior.seed = 17;
  if (wan) {
    o.behavior.start_delay = Duration::Seconds(10);
    o.behavior.burst_cpu = Duration::Millis(200);
    o.behavior.burst_period = Duration::Seconds(2);
    o.behavior.wan = WanProfileByName("satellite");
    o.behavior.degrade = true;
  }
  return o;
}

void BM_CapacitySearchCold(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunServerCapacity(
        OsProfile::Tse(), BenchCapacity(state.range(0), state.range(1) != 0)));
  }
}
BENCHMARK(BM_CapacitySearchCold)
    ->Unit(benchmark::kMillisecond)
    ->Args({2000, 0})
    ->Args({500, 0})
    ->Args({500, 1});

void BM_CapacitySearchCheckpointed(benchmark::State& state) {
  CapacityCheckpointCache cache;  // persists across iterations: steady state = all hits
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunServerCapacityCheckpointed(
        OsProfile::Tse(), BenchCapacity(state.range(0), state.range(1) != 0), cache));
  }
}
BENCHMARK(BM_CapacitySearchCheckpointed)
    ->Unit(benchmark::kMillisecond)
    ->Args({2000, 0})
    ->Args({500, 0})
    ->Args({500, 1});

}  // namespace
}  // namespace tcs

BENCHMARK_MAIN();
