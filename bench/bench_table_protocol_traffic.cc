// §6.1.2 table: byte and message counts per channel for RDP, X, and LBX on the typical
// application workload (word processor + photo editor + control panel scripts).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

void Run() {
  PrintBanner("§6.1.2 — protocol traffic on the application workload",
              "WordPerfect-, Gimp-, and control-panel-style scripts over each protocol.");
  PrintPaperNote("RDP: 888,239 B / 1,841 msgs (avg 482).  X: 6,250,888 B / 26,923 msgs "
                 "(avg 232).  LBX: 3,197,185 B / 36,615 msgs (avg 87). RDP < 15% of X "
                 "bytes and < 30% of LBX.");

  ProtocolTrafficResult rdp = RunAppWorkloadTraffic(ProtocolKind::kRdp);
  ProtocolTrafficResult x = RunAppWorkloadTraffic(ProtocolKind::kX);
  ProtocolTrafficResult lbx = RunAppWorkloadTraffic(ProtocolKind::kLbx);

  TextTable bytes({"", "RDP", "X", "LBX"});
  bytes.AddRow({"Bytes input", TextTable::Num(rdp.input.bytes), TextTable::Num(x.input.bytes),
                TextTable::Num(lbx.input.bytes)});
  bytes.AddRow({"Bytes display", TextTable::Num(rdp.display.bytes),
                TextTable::Num(x.display.bytes), TextTable::Num(lbx.display.bytes)});
  bytes.AddRow({"Bytes total", TextTable::Num(rdp.total_bytes), TextTable::Num(x.total_bytes),
                TextTable::Num(lbx.total_bytes)});
  bytes.AddRow({"Messages input", TextTable::Num(rdp.input.messages),
                TextTable::Num(x.input.messages), TextTable::Num(lbx.input.messages)});
  bytes.AddRow({"Messages display", TextTable::Num(rdp.display.messages),
                TextTable::Num(x.display.messages), TextTable::Num(lbx.display.messages)});
  bytes.AddRow({"Messages total", TextTable::Num(rdp.total_messages),
                TextTable::Num(x.total_messages), TextTable::Num(lbx.total_messages)});
  bytes.AddRow({"Avg. message size", TextTable::Fixed(rdp.avg_message_size, 2),
                TextTable::Fixed(x.avg_message_size, 2),
                TextTable::Fixed(lbx.avg_message_size, 2)});
  std::printf("%s\n", bytes.Render().c_str());

  std::printf("RDP / X bytes     = %s (paper < 15%%)\n",
              TextTable::Percent(static_cast<double>(rdp.total_bytes) /
                                 static_cast<double>(x.total_bytes)).c_str());
  std::printf("RDP / LBX bytes   = %s (paper < 30%%)\n",
              TextTable::Percent(static_cast<double>(rdp.total_bytes) /
                                 static_cast<double>(lbx.total_bytes)).c_str());
  std::printf("LBX / X bytes     = %s (paper ~51%%)\n",
              TextTable::Percent(static_cast<double>(lbx.total_bytes) /
                                 static_cast<double>(x.total_bytes)).c_str());
  std::printf("LBX / X display messages = %.2fx (paper ~1.8x)\n",
              static_cast<double>(lbx.display.messages) /
                  static_cast<double>(x.display.messages));
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
