// Ablation A3 (§5.2): Evans et al.'s fix for the paging pathology — protect interactive
// address spaces from non-interactive faults and throttle streaming jobs under pressure.
// Re-runs the §5.2 keystroke-after-hog experiment under both eviction policies.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

std::string Floor50(double ms) {
  return TextTable::Num(static_cast<int64_t>(std::max(ms, 50.0)));
}

void Run() {
  PrintBanner("Ablation A3 — interactive-memory protection + hog throttling",
              "The §5.2 experiment (>= 100% page demand) under global LRU vs protection.");
  PrintPaperNote("Evans et al. demonstrated that non-interactive process throttling "
                 "eliminated this pathology in their modified SVR4 kernel.");

  TextTable table({"OS", "policy", "min (ms)", "avg (ms)", "max (ms)"});
  for (const OsProfile& profile : {OsProfile::LinuxX(), OsProfile::Tse()}) {
    PagingLatencyResult lru =
        RunPagingLatency(profile, true, 10, 1, EvictionPolicy::kGlobalLru);
    PagingLatencyResult prot =
        RunPagingLatency(profile, true, 10, 1, EvictionPolicy::kInteractiveProtect);
    table.AddRow({profile.name, "global LRU", Floor50(lru.min_ms), Floor50(lru.avg_ms),
                  Floor50(lru.max_ms)});
    table.AddRow({profile.name, "interactive-protect", Floor50(prot.min_ms),
                  Floor50(prot.avg_ms), Floor50(prot.max_ms)});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
