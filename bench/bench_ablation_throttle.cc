// Ablation A3 (§5.2): Evans et al.'s fix for the paging pathology — protect interactive
// address spaces from non-interactive faults and throttle streaming jobs under pressure.
// Re-runs the §5.2 keystroke-after-hog experiment under both eviction policies.

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/core/parallel_sweep.h"
#include "src/util/table.h"

namespace tcs {
namespace {

std::string Floor50(double ms) {
  return TextTable::Num(static_cast<int64_t>(std::max(ms, 50.0)));
}

void Run() {
  PrintBanner("Ablation A3 — interactive-memory protection + hog throttling",
              "The §5.2 experiment (>= 100% page demand) under global LRU vs protection.");
  PrintPaperNote("Evans et al. demonstrated that non-interactive process throttling "
                 "eliminated this pathology in their modified SVR4 kernel.");

  const OsProfile profiles[] = {OsProfile::LinuxX(), OsProfile::Tse()};

  // Profile x eviction-policy grid in parallel (even i = global LRU, odd i = protect).
  ParallelSweep sweep;
  std::vector<PagingLatencyResult> results =
      sweep.Map(static_cast<int>(std::size(profiles)) * 2, [&](int i) {
        EvictionPolicy policy = i % 2 == 0 ? EvictionPolicy::kGlobalLru
                                           : EvictionPolicy::kInteractiveProtect;
        return RunPagingLatency(profiles[i / 2], true, 10, 1, policy);
      });

  TextTable table({"OS", "policy", "min (ms)", "avg (ms)", "max (ms)"});
  for (size_t p = 0; p < std::size(profiles); ++p) {
    const PagingLatencyResult& lru = results[p * 2];
    const PagingLatencyResult& prot = results[p * 2 + 1];
    table.AddRow({profiles[p].name, "global LRU", Floor50(lru.min_ms),
                  Floor50(lru.avg_ms), Floor50(lru.max_ms)});
    table.AddRow({profiles[p].name, "interactive-protect", Floor50(prot.min_ms),
                  Floor50(prot.avg_ms), Floor50(prot.max_ms)});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
