// Figure 4: network load over time for the synthetic msnbc.com-style webpage over RDP —
// marquee+banner combined, marquee only, banner only. The combined page overflows the
// client bitmap cache and costs orders of magnitude more than the sum of its parts.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

void Run() {
  PrintBanner("Figure 4 — synthetic webpage network load over RDP (Mbps vs time)",
              "468x60 animated GIF banner + scrolling marquee ticker, 160 s.");
  PrintPaperNote("Combined: 1.60 Mbps sustained (plateaus 1.89). Marquee alone: 0.07 "
                 "Mbps. Banner alone: 0.01 Mbps — the bitmap cache holds either element's "
                 "frames but not both.");

  AnimationLoadResult combined =
      RunWebPageLoad(ProtocolKind::kRdp, /*banner=*/true, /*marquee=*/true);
  AnimationLoadResult marquee =
      RunWebPageLoad(ProtocolKind::kRdp, /*banner=*/false, /*marquee=*/true);
  AnimationLoadResult banner =
      RunWebPageLoad(ProtocolKind::kRdp, /*banner=*/true, /*marquee=*/false);

  TextTable table({"time (s)", "marquee+banner", "marquee only", "banner only"});
  for (size_t i = 0; i < combined.load_mbps.size(); i += 5) {
    table.AddRow({TextTable::Num(static_cast<int64_t>(i)),
                  TextTable::Fixed(combined.load_mbps[i], 4),
                  TextTable::Fixed(i < marquee.load_mbps.size() ? marquee.load_mbps[i] : 0, 4),
                  TextTable::Fixed(i < banner.load_mbps.size() ? banner.load_mbps[i] : 0, 4)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("sustained: combined=%.3f Mbps (paper 1.60)  marquee=%.3f (paper 0.07)  "
              "banner=%.3f (paper 0.01)\n",
              combined.sustained_mbps, marquee.sustained_mbps, banner.sustained_mbps);
  std::printf("non-linearity: combined / (marquee + banner) = %.0fx\n",
              combined.sustained_mbps / (marquee.sustained_mbps + banner.sustained_mbps));
  std::printf("cache: combined %lld hits / %lld misses; marquee alone %lld / %lld\n",
              static_cast<long long>(combined.cache_hits),
              static_cast<long long>(combined.cache_misses),
              static_cast<long long>(marquee.cache_hits),
              static_cast<long long>(marquee.cache_misses));
  std::printf("five users on such a page saturate 10 Mbps Ethernet: %.1f Mbps offered\n",
              5.0 * combined.sustained_mbps);
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
