// Figure 1: idle-state processor activity in NT Workstation, TSE, and Linux.
// Prints CPU utilization per 100 ms bucket over a 10 s trace for each OS, plus the
// aggregate comparison the paper quotes (TSE ~ 3x NT ~ 7x Linux).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

void Run() {
  PrintBanner("Figure 1 — idle-state CPU activity (utilization vs time, 100 ms buckets)",
              "10 s idle trace per OS; no user sessions, daemons only.");
  PrintPaperNote("Linux spends much less CPU when idle than NT or TSE; TSE shows extra "
                 "periodic activity from the Terminal Service / Session Manager.");

  IdleProfileResult nt = RunIdleProfile(OsProfile::NtWorkstation(), Duration::Seconds(10));
  IdleProfileResult tse = RunIdleProfile(OsProfile::Tse(), Duration::Seconds(10));
  IdleProfileResult lin = RunIdleProfile(OsProfile::LinuxX(), Duration::Seconds(10));

  TextTable table({"time (s)", "NT Workstation", "NT TSE", "Linux"});
  for (size_t i = 0; i < nt.utilization.size(); ++i) {
    table.AddRow({TextTable::Fixed(0.1 * static_cast<double>(i), 1),
                  TextTable::Fixed(nt.utilization[i], 3),
                  TextTable::Fixed(i < tse.utilization.size() ? tse.utilization[i] : 0, 3),
                  TextTable::Fixed(i < lin.utilization.size() ? lin.utilization[i] : 0, 3)});
  }
  std::printf("%s\n", table.Render().c_str());

  // Aggregate over a longer window for stable ratios.
  IdleProfileResult nt10 = RunIdleProfile(OsProfile::NtWorkstation(), Duration::Seconds(600));
  IdleProfileResult tse10 = RunIdleProfile(OsProfile::Tse(), Duration::Seconds(600));
  IdleProfileResult lin10 = RunIdleProfile(OsProfile::LinuxX(), Duration::Seconds(600));
  std::printf("aggregate idle busy over 600 s:  NT=%s  TSE=%s  Linux=%s\n",
              nt10.total_busy.ToString().c_str(), tse10.total_busy.ToString().c_str(),
              lin10.total_busy.ToString().c_str());
  std::printf("ratios: TSE/NT = %.2f (paper ~3)   TSE/Linux = %.2f (paper ~7)\n",
              tse10.total_busy / nt10.total_busy, tse10.total_busy / lin10.total_busy);
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
