// Ablation A5: does adding processors fix the interactive-latency pathologies?
//
// The era's answer to a loaded terminal server was "buy a bigger SMP box". This harness
// re-runs the Figure 3 experiment with 1, 2, and 4 processors per OS. SMP absorbs load
// up to the processor count but does not change the scheduling policy: once the sinks
// outnumber the processors, TSE's unboosted display pipeline queues exactly as before,
// while the SVR4 interactive class never needed the extra silicon.

#include <cstdio>
#include <iterator>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/core/parallel_sweep.h"
#include "src/util/table.h"

namespace tcs {
namespace {

const int kSinks[] = {0, 2, 5, 10, 15, 20, 30};
const int kProcs[] = {1, 2, 4};

void Run() {
  PrintBanner("Ablation A5 — SMP scaling of the Figure 3 experiment",
              "Average stall (ms) vs sinks for 1 / 2 / 4 processors.");
  PrintPaperNote("Not a paper experiment: quantifies how much of the scheduling problem "
                 "can be bought off with hardware (and how much cannot).");

  const OsProfile profiles[] = {OsProfile::Tse(), OsProfile::LinuxX()};
  constexpr int kSinkCount = static_cast<int>(std::size(kSinks));
  constexpr int kProcCount = static_cast<int>(std::size(kProcs));
  constexpr int kPerProfile = kSinkCount * kProcCount;

  // The whole profile x sinks x procs grid fans out across the worker pool; results come
  // back in submission order, so rendering below is identical to the serial loops.
  ParallelSweep sweep;
  std::vector<TypingUnderLoadResult> results =
      sweep.Map(static_cast<int>(std::size(profiles)) * kPerProfile, [&](int i) {
        const OsProfile& profile = profiles[i / kPerProfile];
        int sinks = kSinks[(i % kPerProfile) / kProcCount];
        int procs = kProcs[i % kProcCount];
        return RunTypingUnderLoad(profile, sinks, Duration::Seconds(30), 1, procs);
      });

  for (size_t p = 0; p < std::size(profiles); ++p) {
    std::printf("--- %s ---\n", profiles[p].name.c_str());
    TextTable table({"sinks", "1 cpu", "2 cpus", "4 cpus"});
    for (int s = 0; s < kSinkCount; ++s) {
      std::vector<std::string> row{TextTable::Num(kSinks[s])};
      for (int c = 0; c < kProcCount; ++c) {
        size_t i = p * kPerProfile + static_cast<size_t>(s * kProcCount + c);
        row.push_back(TextTable::Fixed(results[i].avg_stall_ms, 1));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s\n", table.Render().c_str());
  }
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
