// Ablation A5: does adding processors fix the interactive-latency pathologies?
//
// The era's answer to a loaded terminal server was "buy a bigger SMP box". This harness
// re-runs the Figure 3 experiment with 1, 2, and 4 processors per OS. SMP absorbs load
// up to the processor count but does not change the scheduling policy: once the sinks
// outnumber the processors, TSE's unboosted display pipeline queues exactly as before,
// while the SVR4 interactive class never needed the extra silicon.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

void Run() {
  PrintBanner("Ablation A5 — SMP scaling of the Figure 3 experiment",
              "Average stall (ms) vs sinks for 1 / 2 / 4 processors.");
  PrintPaperNote("Not a paper experiment: quantifies how much of the scheduling problem "
                 "can be bought off with hardware (and how much cannot).");

  for (const OsProfile& profile : {OsProfile::Tse(), OsProfile::LinuxX()}) {
    std::printf("--- %s ---\n", profile.name.c_str());
    TextTable table({"sinks", "1 cpu", "2 cpus", "4 cpus"});
    for (int sinks : {0, 2, 5, 10, 15, 20, 30}) {
      std::vector<std::string> row{TextTable::Num(sinks)};
      for (int procs : {1, 2, 4}) {
        TypingUnderLoadResult r =
            RunTypingUnderLoad(profile, sinks, Duration::Seconds(30), 1, procs);
        row.push_back(TextTable::Fixed(r.avg_stall_ms, 1));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s\n", table.Render().c_str());
  }
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
