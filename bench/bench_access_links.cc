// Extension R2: protocol viability over constrained access links.
//
// The paper's introduction motivates thin clients converging onto wireless, mobile,
// ubiquitous devices; §6 shows protocol efficiency determines what the network can carry.
// This harness replays a fixed editing session over each protocol across link classes
// (shared LAN, T1, ISDN, V.90 modem) and reports the time the display channel alone needs
// to drain — i.e. how far behind the user's interactions the picture falls.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

struct LinkClass {
  const char* name;
  BitsPerSecond rate;
  Duration propagation;
};

void Run() {
  PrintBanner("Extension R2 — protocol traffic vs access-link capacity",
              "The 3-app workload's bytes against each link class's drain rate.");
  PrintPaperNote("Not a paper experiment: extends §6's protocol comparison to the "
                 "wireless/mobile access links the introduction motivates.");

  const LinkClass kLinks[] = {
      {"10 Mbps LAN", BitsPerSecond::Mbps(10), Duration::Micros(50)},
      {"T1 (1.54 Mbps)", BitsPerSecond::Kbps(1540), Duration::Millis(5)},
      {"ISDN (128 kbps)", BitsPerSecond::Kbps(128), Duration::Millis(15)},
      {"V.90 modem (56 kbps)", BitsPerSecond::Kbps(56), Duration::Millis(80)},
  };

  // Traffic for a ~6-minute interactive session over each protocol.
  ProtocolTrafficResult traffic[] = {
      RunAppWorkloadTraffic(ProtocolKind::kRdp, 1, 300),
      RunAppWorkloadTraffic(ProtocolKind::kLbx, 1, 300),
      RunAppWorkloadTraffic(ProtocolKind::kX, 1, 300),
      RunAppWorkloadTraffic(ProtocolKind::kSlim, 1, 300),
      RunAppWorkloadTraffic(ProtocolKind::kVnc, 1, 300),
  };
  // The session spans ~6 min of user time; the display channel must sustain this rate.
  constexpr double kSessionSeconds = 360.0;

  TextTable table({"protocol", "display bytes", "needed (kbps)", "LAN", "T1", "ISDN",
                   "modem"});
  for (const ProtocolTrafficResult& t : traffic) {
    double needed_bps = static_cast<double>(t.display.bytes) * 8.0 / kSessionSeconds;
    std::vector<std::string> row{t.protocol, TextTable::Num(t.display.bytes),
                                 TextTable::Fixed(needed_bps / 1e3, 1)};
    for (const LinkClass& link : kLinks) {
      double headroom = static_cast<double>(link.rate.bps()) / needed_bps;
      if (headroom >= 3.0) {
        row.push_back("ok");
      } else if (headroom >= 1.0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "tight %.1fx", headroom);
        row.push_back(buf);
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "NO (%.1fx)", headroom);
        row.push_back(buf);
      }
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("reading: 'ok' = >=3x headroom for interaction bursts; 'tight' = drains on\n");
  std::printf("average but bursts stall; 'NO' = the display channel cannot keep up at all.\n");
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
