// Shared helpers for the experiment harnesses: consistent headers and paper-vs-measured
// framing in every bench's output.

#ifndef TCS_BENCH_BENCH_UTIL_H_
#define TCS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace tcs {

inline void PrintBanner(const std::string& artifact, const std::string& description) {
  std::printf("==========================================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==========================================================================\n");
}

inline void PrintPaperNote(const std::string& note) {
  std::printf("paper: %s\n\n", note.c_str());
}

}  // namespace tcs

#endif  // TCS_BENCH_BENCH_UTIL_H_
