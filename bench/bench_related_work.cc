// Related-work comparison (§7): all five protocol models — RDP, X, LBX, plus the SLIM
// (SunRay) and VNC (RFB) models — on the application workload and on the Figure 5
// animation. The paper places SLIM "roughly equivalent in performance to X, still behind
// RDP and LBX in network load efficiency"; VNC is "yet another network protocol similar
// to SLIM".

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

void Run() {
  PrintBanner("Related work (§7) — RDP / X / LBX / SLIM / VNC",
              "Application workload traffic and the Figure 5 animation per protocol.");
  PrintPaperNote("SLIM ~ X in network load, behind RDP and LBX; VNC similar to SLIM. "
                 "Framebuffer protocols pay pixel rates for text; pull protocols coalesce "
                 "animation frames at the cost of update latency.");

  TextTable table({"protocol", "app workload bytes", "vs X", "messages", "avg msg",
                   "GIF sustained Mbps"});
  int64_t x_total = 0;
  for (ProtocolKind kind : {ProtocolKind::kX, ProtocolKind::kRdp, ProtocolKind::kLbx,
                            ProtocolKind::kSlim, ProtocolKind::kVnc}) {
    ProtocolTrafficResult traffic = RunAppWorkloadTraffic(kind, 1, 300);
    if (kind == ProtocolKind::kX) {
      x_total = traffic.total_bytes;
    }
    GifAnimationOptions gif;
    gif.duration = Duration::Seconds(15);
    AnimationLoadResult anim = RunGifAnimation(kind, gif);
    table.AddRow({traffic.protocol, TextTable::Num(traffic.total_bytes),
                  TextTable::Percent(static_cast<double>(traffic.total_bytes) /
                                     static_cast<double>(x_total)),
                  TextTable::Num(traffic.total_messages),
                  TextTable::Fixed(traffic.avg_message_size, 1),
                  TextTable::Fixed(anim.sustained_mbps, 3)});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
