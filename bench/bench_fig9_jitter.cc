// Figure 9: network latency jitter (RTT variance) as a function of offered load — the
// same probe as Figure 8, reporting the variance of all RTTs per level.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/util/table.h"

namespace tcs {
namespace {

void Run() {
  PrintBanner("Figure 9 — RTT variance (jitter) vs offered load",
              "60 s of 64-byte pings per load level; variance over all packets.");
  PrintPaperNote("While the network is not saturated, RTT is almost perfectly consistent; "
                 "jitter explodes as the link nears saturation, compounding the latency.");

  TextTable table({"offered load (Mbps)", "RTT variance (ms^2)"});
  for (double mbps : {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 8.5, 9.0, 9.3, 9.6}) {
    RttProbeResult r = RunRttProbe(mbps);
    table.AddRow({TextTable::Fixed(mbps, 1), TextTable::Fixed(r.rtt_variance, 3)});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace tcs

int main() {
  tcs::Run();
  return 0;
}
