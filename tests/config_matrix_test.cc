// Configuration-matrix tests: structural invariants that must hold for EVERY protocol
// and EVERY OS profile, plus parameterized sweeps over the knobs experiments turn.

#include <gtest/gtest.h>

#include "src/core/experiments.h"

namespace tcs {
namespace {

constexpr ProtocolKind kAllProtocols[] = {ProtocolKind::kRdp, ProtocolKind::kX,
                                          ProtocolKind::kLbx, ProtocolKind::kSlim,
                                          ProtocolKind::kVnc};

class ProtocolMatrix : public ::testing::TestWithParam<ProtocolKind> {};
INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolMatrix, ::testing::ValuesIn(kAllProtocols));

TEST_P(ProtocolMatrix, AppWorkloadProducesTrafficOnBothChannels) {
  ProtocolTrafficResult r = RunAppWorkloadTraffic(GetParam(), 1, 60);
  EXPECT_GT(r.display.bytes, 0) << r.protocol;
  EXPECT_GT(r.display.messages, 0) << r.protocol;
  EXPECT_GT(r.input.bytes, 0) << r.protocol;
  EXPECT_GT(r.input.messages, 0) << r.protocol;
  // Counted bytes include at least one TCP/IP header per message.
  EXPECT_GE(r.total_bytes, r.total_messages * 40) << r.protocol;
  EXPECT_EQ(r.total_bytes, r.input.bytes + r.display.bytes) << r.protocol;
  // VIP always saves exactly 20 bytes per packet.
  EXPECT_EQ(r.total_bytes - r.vip_bytes, 20 * r.packets) << r.protocol;
  EXPECT_GE(r.packets, r.total_messages) << r.protocol;
}

TEST_P(ProtocolMatrix, TrafficIsDeterministicAcrossRuns) {
  ProtocolTrafficResult a = RunAppWorkloadTraffic(GetParam(), 9, 40);
  ProtocolTrafficResult b = RunAppWorkloadTraffic(GetParam(), 9, 40);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.total_messages, b.total_messages);
}

TEST_P(ProtocolMatrix, DifferentSeedsPerturbPayloadsOnly) {
  // Counts may differ slightly across seeds (scripts are seeded), but traffic exists and
  // stays within the same order of magnitude.
  ProtocolTrafficResult a = RunAppWorkloadTraffic(GetParam(), 1, 60);
  ProtocolTrafficResult b = RunAppWorkloadTraffic(GetParam(), 2, 60);
  EXPECT_GT(b.total_bytes, a.total_bytes / 3);
  EXPECT_LT(b.total_bytes, a.total_bytes * 3);
}

TEST_P(ProtocolMatrix, SessionSetupBytesPositive) {
  EXPECT_GT(SessionSetupBytes(GetParam()), Bytes::Zero());
}

TEST_P(ProtocolMatrix, AnimationOnlyRdpIsCheap) {
  GifAnimationOptions opt;
  opt.duration = Duration::Seconds(10);
  AnimationLoadResult r = RunGifAnimation(GetParam(), opt);
  if (GetParam() == ProtocolKind::kRdp) {
    EXPECT_LT(r.sustained_mbps, 0.1);
  } else {
    // Everyone without a bitmap cache pays per frame.
    EXPECT_GT(r.sustained_mbps, 0.5) << r.protocol;
  }
}

struct OsCase {
  const char* name;
  OsProfile (*make)();
};

class OsMatrix : public ::testing::TestWithParam<OsCase> {};
INSTANTIATE_TEST_SUITE_P(
    AllProfiles, OsMatrix,
    ::testing::Values(OsCase{"tse", &OsProfile::Tse}, OsCase{"linux", &OsProfile::LinuxX},
                      OsCase{"ntws", &OsProfile::NtWorkstation},
                      OsCase{"svr4", &OsProfile::LinuxSvr4}),
    [](const ::testing::TestParamInfo<OsCase>& info) { return info.param.name; });

TEST_P(OsMatrix, ProfileIsWellFormed) {
  OsProfile p = GetParam().make();
  EXPECT_FALSE(p.name.empty());
  EXPECT_FALSE(p.idle_daemons.empty());
  EXPECT_FALSE(p.login_processes.empty());
  EXPECT_FALSE(p.light_login_processes.empty());
  EXPECT_FALSE(p.keystroke_pipeline.empty());
  EXPECT_GT(p.editor_working_set_pages, 0u);
  EXPECT_GT(p.idle_system_memory, Bytes::Zero());
  EXPECT_GE(p.ws_touch_max, p.ws_touch_min);
  EXPECT_GT(p.ws_touch_min, 0.0);
  // The first hop must be the GUI thread (it receives the input-event boost).
  EXPECT_EQ(p.keystroke_pipeline.front().cls, ThreadClass::kGui);
  // Every profile has a clock tick daemon.
  bool has_clock = false;
  for (const DaemonSpec& d : p.idle_daemons) {
    has_clock = has_clock || d.name == "clock";
    EXPECT_GT(d.period, Duration::Zero());
    EXPECT_GT(d.episode_cpu, Duration::Zero());
    EXPECT_GT(d.duty, 0.0);
    EXPECT_LE(d.duty, 1.0);
  }
  EXPECT_TRUE(has_clock);
  EXPECT_NE(p.MakeScheduler(), nullptr);
}

TEST_P(OsMatrix, UnloadedTypingIsImperceptible) {
  TypingUnderLoadResult r =
      RunTypingUnderLoad(GetParam().make(), 0, Duration::Seconds(10));
  EXPECT_LT(r.avg_stall_ms, 5.0) << r.os_name;
  EXPECT_GT(r.updates, 150) << r.os_name;
}

TEST_P(OsMatrix, IdleProfileUtilizationBounded) {
  IdleProfileResult r = RunIdleProfile(GetParam().make(), Duration::Seconds(30));
  for (double u : r.utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  // Idle means idle: single-digit percent busy at most.
  EXPECT_LT(r.total_busy.ToSecondsF() / 30.0, 0.12) << r.os_name;
}

// Cache-knee sweep: an N-frame loop of 24 KB frames fits the 1.5 MB cache iff
// N * 24000 <= 1.5 MiB, and the measured load flips exactly there.
class CacheKneeSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(FrameCounts, CacheKneeSweep,
                         ::testing::Values(30, 50, 60, 65, 66, 75, 90));

TEST_P(CacheKneeSweep, LoadMatchesCapacityArithmetic) {
  int frames = GetParam();
  GifAnimationOptions opt;
  opt.frames = frames;
  opt.frame_period = Duration::Millis(200);
  opt.width = 200;
  opt.height = 150;
  opt.compression_ratio = 0.8;  // 24 000-byte frames
  opt.duration = Duration::Seconds(40);
  AnimationLoadResult r = RunGifAnimation(ProtocolKind::kRdp, opt);
  bool fits = static_cast<int64_t>(frames) * 24000 <= 3 * 512 * 1024;
  if (fits) {
    EXPECT_LT(r.sustained_mbps, 0.05) << frames << " frames";
  } else {
    EXPECT_GT(r.sustained_mbps, 0.8) << frames << " frames";
  }
}

// Quantum-stretch sweep of the §4.2.1 maximize arithmetic: completion is exactly
// op + daemon when the op outlives the grace period, and exactly op when boosted
// throughput covers it.
class StretchSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Stretch, StretchSweep, ::testing::Values(1, 2, 3));

TEST_P(StretchSweep, MaximizeArithmetic) {
  int stretch = GetParam();
  Duration done = RunMaximizeScenario(stretch, 1.0);
  // Grace = 2 quanta x 30 ms x stretch < 500 ms for all stretch <= 3: always stranded.
  EXPECT_EQ(done, Duration::Millis(900));
  // At 6x speed the op is ~83 ms < the 60 ms grace? No: 60 ms at stretch 1. Check per
  // stretch: grace(ms) = 60 * stretch; op = 500/6 ~ 83.3 ms.
  Duration fast = RunMaximizeScenario(stretch, 6.0);
  if (60 * stretch >= 84) {
    EXPECT_LT(fast, Duration::Millis(90));
  } else {
    EXPECT_GT(fast, Duration::Millis(90));
  }
}

}  // namespace
}  // namespace tcs
