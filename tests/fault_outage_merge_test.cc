// Scripted-outage composition: adjacent windows are legal and behave exactly like the
// merged window (MergeAdjacentOutages normalization), while overlapping, unsorted, or
// empty windows remain plan-authoring errors.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/util/config_error.h"

namespace tcs {
namespace {

TimePoint At(int64_t seconds) { return TimePoint::Zero() + Duration::Seconds(seconds); }

OutageWindow Window(int64_t from_s, int64_t until_s) {
  return OutageWindow{At(from_s), At(until_s)};
}

TEST(MergeAdjacentOutagesTest, MergesTouchingAndOverlappingWindows) {
  std::vector<OutageWindow> merged = MergeAdjacentOutages(
      {Window(5, 6), Window(1, 2), Window(2, 3), Window(7, 9), Window(8, 10)});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].from, At(1));
  EXPECT_EQ(merged[0].until, At(3));  // [1,2) + [2,3) coalesced
  EXPECT_EQ(merged[1].from, At(5));
  EXPECT_EQ(merged[1].until, At(6));
  EXPECT_EQ(merged[2].from, At(7));
  EXPECT_EQ(merged[2].until, At(10));  // overlap swallowed

  EXPECT_TRUE(MergeAdjacentOutages({}).empty());
  std::vector<OutageWindow> one = MergeAdjacentOutages({Window(1, 2)});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].until, At(2));
}

TEST(MergeAdjacentOutagesTest, ContainedWindowDoesNotShrinkTheHull) {
  std::vector<OutageWindow> merged =
      MergeAdjacentOutages({Window(1, 10), Window(2, 3)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].from, At(1));
  EXPECT_EQ(merged[0].until, At(10));
}

TEST(OutageValidationTest, AdjacentIsLegalOverlapAndDisorderAreNot) {
  FaultPlan plan;
  plan.link.scripted_outages = {Window(1, 2), Window(2, 3)};  // adjacent: fine
  EXPECT_NO_THROW(Validate(plan));

  plan.link.scripted_outages = {Window(1, 3), Window(2, 4)};  // overlap
  EXPECT_THROW(Validate(plan), ConfigError);

  plan.link.scripted_outages = {Window(5, 6), Window(1, 2)};  // unsorted
  EXPECT_THROW(Validate(plan), ConfigError);

  plan.link.scripted_outages = {Window(2, 2)};  // empty window
  EXPECT_THROW(Validate(plan), ConfigError);
}

// The composition property the injector must honor: a plan scripted as adjacent windows
// is indistinguishable from the single merged window for every query surface.
class AdjacentVsMergedTest : public ::testing::Test {
 protected:
  AdjacentVsMergedTest() {
    LinkFaultPlan adjacent_plan;
    adjacent_plan.scripted_outages = {Window(1, 2), Window(2, 3), Window(3, 5)};
    LinkFaultPlan merged_plan;
    merged_plan.scripted_outages = {Window(1, 5)};
    adjacent_ = std::make_unique<LinkFaultInjector>(adjacent_plan, 11);
    merged_ = std::make_unique<LinkFaultInjector>(merged_plan, 11);
  }

  std::unique_ptr<LinkFaultInjector> adjacent_;
  std::unique_ptr<LinkFaultInjector> merged_;
};

TEST_F(AdjacentVsMergedTest, InOutageAgreesEverywhere) {
  for (int ms = 0; ms <= 6000; ms += 50) {
    TimePoint t = TimePoint::Zero() + Duration::Millis(ms);
    EXPECT_EQ(adjacent_->InOutage(t), merged_->InOutage(t)) << "at " << ms << " ms";
  }
  // The interior boundaries are covered in particular.
  EXPECT_TRUE(adjacent_->InOutage(At(2)));
  EXPECT_TRUE(adjacent_->InOutage(At(3)));
}

TEST_F(AdjacentVsMergedTest, ClassifyAgreesAcrossInteriorBoundaries) {
  for (int ms = 500; ms <= 5500; ms += 100) {
    TimePoint start = TimePoint::Zero() + Duration::Millis(ms);
    TimePoint end = start + Duration::Millis(40);
    EXPECT_EQ(adjacent_->Classify(start, end), merged_->Classify(start, end))
        << "frame at " << ms << " ms";
  }
  EXPECT_EQ(adjacent_->outage_drops(), merged_->outage_drops());
}

TEST_F(AdjacentVsMergedTest, InputDelayPenaltyHoldsThroughTheWholeMergedWindow) {
  // A keystroke sent mid-outage must be held to the end of the FULL merged window, not
  // just to the first interior boundary.
  Duration adjacent_hold = adjacent_->InputDelayPenalty(At(1) + Duration::Millis(500),
                                                        Duration::Millis(100));
  Duration merged_hold = merged_->InputDelayPenalty(At(1) + Duration::Millis(500),
                                                    Duration::Millis(100));
  EXPECT_EQ(adjacent_hold, merged_hold);
  EXPECT_GE(adjacent_hold, Duration::Millis(3500));  // held until t=5s
}

TEST_F(AdjacentVsMergedTest, OutageTimeBeforeAgreesAtEveryHorizon) {
  for (int s = 0; s <= 7; ++s) {
    EXPECT_EQ(adjacent_->OutageTimeBefore(At(s)), merged_->OutageTimeBefore(At(s)))
        << "horizon " << s << " s";
  }
  EXPECT_EQ(adjacent_->OutageTimeBefore(At(7)), Duration::Seconds(4));
}

}  // namespace
}  // namespace tcs
