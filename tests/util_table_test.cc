#include "src/util/table.h"

#include <gtest/gtest.h>

namespace tcs {
namespace {

TEST(TextTableTest, NumFormatsThousands) {
  EXPECT_EQ(TextTable::Num(0), "0");
  EXPECT_EQ(TextTable::Num(999), "999");
  EXPECT_EQ(TextTable::Num(1000), "1,000");
  EXPECT_EQ(TextTable::Num(6250888), "6,250,888");
  EXPECT_EQ(TextTable::Num(-12345), "-12,345");
}

TEST(TextTableTest, FixedAndPercent) {
  EXPECT_EQ(TextTable::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Percent(0.229, 2), "22.90%");
  EXPECT_EQ(TextTable::Percent(0.0465, 2), "4.65%");
}

TEST(TextTableTest, RenderAlignsColumns) {
  TextTable t({"proto", "bytes"});
  t.AddRow({"RDP", "888,239"});
  t.AddRow({"X", "6,250,888"});
  std::string out = t.Render();
  EXPECT_NE(out.find("proto"), std::string::npos);
  EXPECT_NE(out.find("RDP"), std::string::npos);
  // Each rendered line has the same length (trailing pads).
  size_t first_nl = out.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTableTest, MissingCellsRenderEmpty) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"1"});
  std::string out = t.Render();
  EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(TextTableTest, CsvEscapesSpecials) {
  TextTable t({"name", "note"});
  t.AddRow({"x,y", "said \"hi\""});
  std::string csv = t.RenderCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"said \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTableTest, CsvPlainCellsUnquoted) {
  TextTable t({"a"});
  t.AddRow({"simple"});
  EXPECT_EQ(t.RenderCsv(), "a\nsimple\n");
}

}  // namespace
}  // namespace tcs
