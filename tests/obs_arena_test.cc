// BumpArena / ArenaColumn: stable addresses, alignment, chunk growth, iteration.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/obs/arena.h"

namespace tcs {
namespace {

TEST(BumpArenaTest, AllocationsAreAlignedAndDisjoint) {
  BumpArena arena(256);
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(24, 8);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
    for (void* q : ptrs) {
      EXPECT_NE(p, q);
    }
    ptrs.push_back(p);
  }
  EXPECT_GT(arena.chunk_count(), 1u);  // 100 * 24 bytes cannot fit one 256-byte chunk
  EXPECT_EQ(arena.bytes_allocated(), 100u * 24u);
}

TEST(BumpArenaTest, OversizedAllocationGetsDedicatedChunk) {
  BumpArena arena(64);
  auto* big = arena.AllocateArray<int64_t>(100);  // 800 bytes > chunk size
  big[0] = 1;
  big[99] = 2;
  EXPECT_EQ(big[0] + big[99], 3);
}

TEST(ArenaColumnTest, AppendKeepsStableAddressesAcrossGrowth) {
  BumpArena arena;
  ArenaColumn<int64_t, 16> col;
  std::vector<const int64_t*> addrs;
  for (int64_t i = 0; i < 1000; ++i) {
    col.Append(arena, i * 3);
    addrs.push_back(&col[static_cast<size_t>(i)]);
  }
  ASSERT_EQ(col.size(), 1000u);
  for (int64_t i = 0; i < 1000; ++i) {
    // No growth step ever moved an element (vector would have invalidated these).
    EXPECT_EQ(addrs[static_cast<size_t>(i)], &col[static_cast<size_t>(i)]);
    EXPECT_EQ(col[static_cast<size_t>(i)], i * 3);
  }
}

TEST(ArenaColumnTest, RangeForIteratesInAppendOrder) {
  BumpArena arena;
  ArenaColumn<int, 4> col;
  EXPECT_TRUE(col.empty());
  for (int i = 0; i < 11; ++i) {
    col.Append(arena, i);
  }
  int expect = 0;
  for (int v : col) {
    EXPECT_EQ(v, expect++);
  }
  EXPECT_EQ(expect, 11);
}

TEST(ArenaColumnTest, StructElements) {
  struct Rec {
    int64_t a = 0;
    bool flags[8] = {};
  };
  BumpArena arena;
  ArenaColumn<Rec, 8> col;
  for (int i = 0; i < 20; ++i) {
    Rec r;
    r.a = i;
    r.flags[i % 8] = true;
    col.Append(arena, r);
  }
  EXPECT_EQ(col[19].a, 19);
  EXPECT_TRUE(col[19].flags[3]);
  EXPECT_FALSE(col[19].flags[4]);
}

}  // namespace
}  // namespace tcs
