// Construction-time validation: malformed configs must fail loudly with a structured
// ConfigError naming the offending field, instead of asserting (or silently simulating
// nonsense) deep inside a run.

#include <gtest/gtest.h>

#include "src/cpu/linux_scheduler.h"
#include "src/cpu/nt_scheduler.h"
#include "src/cpu/svr4_scheduler.h"
#include "src/fault/fault_plan.h"
#include "src/mem/disk.h"
#include "src/net/endpoint.h"
#include "src/net/link.h"
#include "src/session/server.h"
#include "src/util/config_error.h"

namespace tcs {
namespace {

// Runs `make` and returns the ConfigError it throws; fails the test if it doesn't.
template <typename Fn>
ConfigError Catch(Fn make) {
  try {
    make();
  } catch (const ConfigError& e) {
    return e;
  }
  ADD_FAILURE() << "expected ConfigError";
  return ConfigError("none", "none");
}

TEST(ConfigValidationTest, LinkRejectsZeroRate) {
  LinkConfig cfg;
  cfg.rate = BitsPerSecond::Of(0);
  Simulator sim;
  ConfigError e = Catch([&] { Link link(sim, cfg); });
  EXPECT_EQ(e.field(), "LinkConfig.rate");
}

TEST(ConfigValidationTest, LinkRejectsNonPositiveMtu) {
  LinkConfig cfg;
  cfg.mtu = Bytes::Zero();
  Simulator sim;
  EXPECT_EQ(Catch([&] { Link link(sim, cfg); }).field(), "LinkConfig.mtu");
}

TEST(ConfigValidationTest, LinkRejectsNegativePropagation) {
  LinkConfig cfg;
  cfg.propagation = Duration::Micros(-1);
  Simulator sim;
  EXPECT_EQ(Catch([&] { Link link(sim, cfg); }).field(), "LinkConfig.propagation");
}

TEST(ConfigValidationTest, LinkRejectsZeroBackoffSlotWithCsmaCd) {
  LinkConfig cfg;
  cfg.csma_cd = true;
  cfg.backoff_slot = Duration::Zero();
  Simulator sim;
  EXPECT_EQ(Catch([&] { Link link(sim, cfg); }).field(), "LinkConfig.backoff_slot");
}

TEST(ConfigValidationTest, SenderRejectsMtuSmallerThanHeaders) {
  // TCP/IP costs 40 B per packet; an MTU of 40 leaves no payload room.
  LinkConfig cfg;
  cfg.mtu = Bytes::Of(40);
  Simulator sim;
  Link link(sim, cfg);
  ConfigError e = Catch([&] { MessageSender sender(link, HeaderModel::TcpIp()); });
  EXPECT_EQ(e.field(), "LinkConfig.mtu");
  EXPECT_NE(std::string(e.what()).find("MTU"), std::string::npos);
}

TEST(ConfigValidationTest, DiskRejectsZeroTransferRate) {
  DiskConfig cfg;
  cfg.transfer_rate = BitsPerSecond::Of(0);
  Simulator sim;
  EXPECT_EQ(Catch([&] { Disk disk(sim, Rng(1), cfg); }).field(),
            "DiskConfig.transfer_rate");
}

TEST(ConfigValidationTest, DiskRejectsZeroPageSize) {
  DiskConfig cfg;
  cfg.page_size = Bytes::Zero();
  Simulator sim;
  EXPECT_EQ(Catch([&] { Disk disk(sim, Rng(1), cfg); }).field(), "DiskConfig.page_size");
}

TEST(ConfigValidationTest, SchedulersRejectZeroQuantum) {
  NtSchedulerConfig nt;
  nt.quantum = Duration::Zero();
  EXPECT_EQ(Catch([&] { NtScheduler s(nt); }).field(), "NtSchedulerConfig.quantum");

  LinuxSchedulerConfig lx;
  lx.quantum = Duration::Zero();
  EXPECT_EQ(Catch([&] { LinuxScheduler s(lx); }).field(), "LinuxSchedulerConfig.quantum");

  Svr4SchedulerConfig s4;
  s4.quantum = Duration::Zero();
  EXPECT_EQ(Catch([&] { Svr4InteractiveScheduler s(s4); }).field(),
            "Svr4SchedulerConfig.quantum");
}

TEST(ConfigValidationTest, ServerRejectsZeroRam) {
  ServerConfig cfg;
  cfg.ram = Bytes::Zero();
  Simulator sim;
  ConfigError e = Catch([&] { Server server(sim, OsProfile::Tse(), cfg); });
  EXPECT_EQ(e.field(), "ServerConfig.ram");
}

TEST(ConfigValidationTest, ServerRejectsRamBelowIdleSystemMemory) {
  ServerConfig cfg;
  cfg.ram = Bytes::MiB(1);  // far below any profile's kernel + services footprint
  Simulator sim;
  EXPECT_EQ(Catch([&] { Server server(sim, OsProfile::Tse(), cfg); }).field(),
            "ServerConfig.ram");
}

TEST(ConfigValidationTest, FaultPlanRejectsOutOfRangeLossRate) {
  FaultPlan plan;
  plan.link.loss_rate = 1.5;
  EXPECT_THROW(Validate(plan), ConfigError);
}

TEST(ConfigValidationTest, FaultPlanRejectsUnsortedOutages) {
  FaultPlan plan;
  plan.link.scripted_outages = {
      {TimePoint::FromMicros(2'000'000), TimePoint::FromMicros(3'000'000)},
      {TimePoint::FromMicros(500'000), TimePoint::FromMicros(1'000'000)},
  };
  EXPECT_THROW(Validate(plan), ConfigError);
}

TEST(ConfigValidationTest, FaultPlanRejectionSurfacesThroughServerConfig) {
  ServerConfig cfg;
  cfg.faults.disk.stall_rate = -0.1;
  Simulator sim;
  EXPECT_THROW(Server server(sim, OsProfile::Tse(), cfg), ConfigError);
}

TEST(ConfigValidationTest, ErrorMessageNamesFieldAndReason) {
  ConfigError e("LinkConfig.rate", "rate must be positive");
  EXPECT_EQ(e.field(), "LinkConfig.rate");
  EXPECT_EQ(e.reason(), "rate must be positive");
  EXPECT_STREQ(e.what(), "LinkConfig.rate: rate must be positive");
}

}  // namespace
}  // namespace tcs
