#include "src/net/link.h"

#include <gtest/gtest.h>

namespace tcs {
namespace {

LinkConfig TenMbps() {
  LinkConfig cfg;
  cfg.rate = BitsPerSecond::Mbps(10);
  cfg.propagation = Duration::Micros(50);
  return cfg;
}

TEST(LinkTest, SingleFrameLatencyIsSerializationPlusPropagation) {
  Simulator sim;
  Link link(sim, TenMbps());
  TimePoint delivered;
  link.Send(Bytes::Of(1500), [&] { delivered = sim.Now(); });
  sim.Run();
  // 1500 B at 10 Mbps = 1200 us + 50 us propagation.
  EXPECT_EQ(delivered, TimePoint::FromMicros(1250));
}

TEST(LinkTest, FramesSerializeFifo) {
  Simulator sim;
  Link link(sim, TenMbps());
  TimePoint first;
  TimePoint second;
  link.Send(Bytes::Of(1500), [&] { first = sim.Now(); });
  link.Send(Bytes::Of(1500), [&] { second = sim.Now(); });
  sim.Run();
  EXPECT_EQ(first, TimePoint::FromMicros(1250));
  EXPECT_EQ(second, TimePoint::FromMicros(2450));
}

TEST(LinkTest, QueueDelayRecorded) {
  Simulator sim;
  Link link(sim, TenMbps());
  link.Send(Bytes::Of(1500));
  link.Send(Bytes::Of(1500));
  sim.Run();
  EXPECT_EQ(link.queue_delay().count(), 2);
  EXPECT_DOUBLE_EQ(link.queue_delay().min(), 0.0);
  EXPECT_DOUBLE_EQ(link.queue_delay().max(), 1.2);  // behind one 1500 B frame
}

TEST(LinkTest, CarriedBytesAndFrames) {
  Simulator sim;
  Link link(sim, TenMbps());
  link.Send(Bytes::Of(100));
  link.Send(Bytes::Of(200));
  EXPECT_EQ(link.frames_sent(), 2);
  EXPECT_EQ(link.bytes_carried(), Bytes::Of(300));
}

TEST(LinkTest, LoadSeriesAccumulatesBytes) {
  Simulator sim;
  LinkConfig cfg = TenMbps();
  cfg.load_bucket = Duration::Millis(1);
  Link link(sim, cfg);
  link.Send(Bytes::Of(1250));  // 1 ms serialization exactly
  sim.Run();
  EXPECT_NEAR(link.load_series().TotalSum(), 1250.0, 1e-9);
}

TEST(LinkTest, UtilizationOverWindow) {
  Simulator sim;
  Link link(sim, TenMbps());
  // 1.25 MB over one second at 10 Mbps = 100% utilization.
  for (int i = 0; i < 1000; ++i) {
    link.Send(Bytes::Of(1250));
  }
  EXPECT_NEAR(link.UtilizationOver(Duration::Seconds(1)), 1.0, 1e-9);
  EXPECT_NEAR(link.UtilizationOver(Duration::Seconds(2)), 0.5, 1e-9);
}

}  // namespace
}  // namespace tcs
