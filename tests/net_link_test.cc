#include "src/net/link.h"

#include <gtest/gtest.h>

#include <utility>

namespace tcs {
namespace {

LinkConfig TenMbps() {
  LinkConfig cfg;
  cfg.rate = BitsPerSecond::Mbps(10);
  cfg.propagation = Duration::Micros(50);
  return cfg;
}

TEST(LinkTest, SingleFrameLatencyIsSerializationPlusPropagation) {
  Simulator sim;
  Link link(sim, TenMbps());
  TimePoint delivered;
  link.Send(Bytes::Of(1500), [&] { delivered = sim.Now(); });
  sim.Run();
  // 1500 B at 10 Mbps = 1200 us + 50 us propagation.
  EXPECT_EQ(delivered, TimePoint::FromMicros(1250));
}

TEST(LinkTest, FramesSerializeFifo) {
  Simulator sim;
  Link link(sim, TenMbps());
  TimePoint first;
  TimePoint second;
  link.Send(Bytes::Of(1500), [&] { first = sim.Now(); });
  link.Send(Bytes::Of(1500), [&] { second = sim.Now(); });
  sim.Run();
  EXPECT_EQ(first, TimePoint::FromMicros(1250));
  EXPECT_EQ(second, TimePoint::FromMicros(2450));
}

TEST(LinkTest, QueueDelayRecorded) {
  Simulator sim;
  Link link(sim, TenMbps());
  link.Send(Bytes::Of(1500));
  link.Send(Bytes::Of(1500));
  sim.Run();
  EXPECT_EQ(link.queue_delay().count(), 2);
  EXPECT_DOUBLE_EQ(link.queue_delay().min(), 0.0);
  EXPECT_DOUBLE_EQ(link.queue_delay().max(), 1.2);  // behind one 1500 B frame
}

TEST(LinkTest, CarriedBytesAndFrames) {
  Simulator sim;
  Link link(sim, TenMbps());
  link.Send(Bytes::Of(100));
  link.Send(Bytes::Of(200));
  EXPECT_EQ(link.frames_sent(), 2);
  EXPECT_EQ(link.bytes_carried(), Bytes::Of(300));
}

TEST(LinkTest, LoadSeriesAccumulatesBytes) {
  Simulator sim;
  LinkConfig cfg = TenMbps();
  cfg.load_bucket = Duration::Millis(1);
  Link link(sim, cfg);
  link.Send(Bytes::Of(1250));  // 1 ms serialization exactly
  sim.Run();
  EXPECT_NEAR(link.load_series().TotalSum(), 1250.0, 1e-9);
}

TEST(LinkTest, UtilizationOverWindow) {
  Simulator sim;
  Link link(sim, TenMbps());
  // 1.25 MB over one second at 10 Mbps = 100% utilization.
  for (int i = 0; i < 1000; ++i) {
    link.Send(Bytes::Of(1250));
  }
  EXPECT_NEAR(link.UtilizationOver(Duration::Seconds(1)), 1.0, 1e-9);
  EXPECT_NEAR(link.UtilizationOver(Duration::Seconds(2)), 0.5, 1e-9);
}

// ---------------------------------------------------------------------------
// MTU fragmentation (a send may not occupy the wire as one giant frame)

TEST(LinkFragmentationTest, SendAtMtuPlusFramingIsOneFrame) {
  Simulator sim;
  Link link(sim, TenMbps());
  // 1500 MTU + 18 framing: the largest legal single frame must NOT fragment — existing
  // full-size protocol packets (1460 payload + 58 headers + 18 framing) depend on it.
  link.Send(Bytes::Of(1518));
  sim.Run();
  EXPECT_EQ(link.frames_sent(), 1);
}

TEST(LinkFragmentationTest, OversizedSendSplitsIntoMtuBoundedFrames) {
  Simulator sim;
  Link link(sim, TenMbps());
  TimePoint delivered;
  // 4000 B over a 1518 B max frame = 1518 + 1518 + 964.
  link.Send(Bytes::Of(4000), [&] { delivered = sim.Now(); });
  sim.Run();
  EXPECT_EQ(link.frames_sent(), 3);
  EXPECT_EQ(link.bytes_carried(), Bytes::Of(4000));
  // Delivery fires when the last fragment's final bit lands: 4000 B serialized
  // back-to-back at 10 Mbps (3200 us, plus per-fragment rounding) + 50 us propagation.
  EXPECT_GE(delivered, TimePoint::FromMicros(3250));
  EXPECT_LE(delivered, TimePoint::FromMicros(3260));
}

TEST(LinkFragmentationTest, FragmentsCountIndividually) {
  Simulator sim;
  Link link(sim, TenMbps());
  link.Send(Bytes::Of(1519));  // one byte over: two frames
  sim.Run();
  EXPECT_EQ(link.frames_sent(), 2);
  EXPECT_EQ(link.frames_delivered(), 2);
  EXPECT_EQ(link.frames_lost(), 0);
}

// ---------------------------------------------------------------------------
// CSMA/CD backoff determinism

LinkConfig CsmaCd(uint64_t seed) {
  LinkConfig cfg;
  cfg.rate = BitsPerSecond::Mbps(10);
  cfg.propagation = Duration::Micros(50);
  cfg.csma_cd = true;
  cfg.seed = seed;
  return cfg;
}

// Drives the link hard enough that contention is certain, returning the resulting
// collision count and total backoff.
std::pair<int64_t, Duration> DriveContended(Link& link, Simulator& sim) {
  for (int i = 0; i < 400; ++i) {
    link.Send(Bytes::Of(1500));
  }
  sim.Run();
  return {link.collisions(), link.backoff_total()};
}

TEST(LinkCsmaCdTest, IdenticalSeedsGiveIdenticalBackoffSequences) {
  Simulator sim_a;
  Link a(sim_a, CsmaCd(42));
  Simulator sim_b;
  Link b(sim_b, CsmaCd(42));
  auto [collisions_a, backoff_a] = DriveContended(a, sim_a);
  auto [collisions_b, backoff_b] = DriveContended(b, sim_b);
  EXPECT_GT(collisions_a, 0);
  EXPECT_EQ(collisions_a, collisions_b);
  EXPECT_EQ(backoff_a, backoff_b);
  EXPECT_EQ(a.queue_delay().max(), b.queue_delay().max());
  EXPECT_EQ(a.queue_delay().mean(), b.queue_delay().mean());
}

TEST(LinkCsmaCdTest, DifferentSeedsGiveDifferentBackoff) {
  Simulator sim_a;
  Link a(sim_a, CsmaCd(42));
  Simulator sim_b;
  Link b(sim_b, CsmaCd(43));
  auto [collisions_a, backoff_a] = DriveContended(a, sim_a);
  auto [collisions_b, backoff_b] = DriveContended(b, sim_b);
  (void)collisions_a;
  (void)collisions_b;
  EXPECT_NE(backoff_a, backoff_b);
}

TEST(LinkCsmaCdTest, BackoffIsAComponentOfQueueDelay) {
  Simulator sim;
  Link link(sim, CsmaCd(7));
  auto [collisions, backoff] = DriveContended(link, sim);
  ASSERT_GT(collisions, 0);
  EXPECT_GT(backoff, Duration::Zero());
  // Total queueing (in ms, over all frames) must be at least the injected backoff: the
  // backoff shows up inside queue_delay(), not as a separate invisible delay.
  EXPECT_GE(link.queue_delay().sum(), backoff.ToMillisF());
}

}  // namespace
}  // namespace tcs
