#include "src/cpu/nt_scheduler.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/cpu/cpu.h"
#include "src/sim/simulator.h"

namespace tcs {
namespace {

CpuConfig NoSwitchCost() {
  CpuConfig cfg;
  cfg.context_switch_cost = Duration::Zero();
  return cfg;
}

TEST(NtSchedulerTest, HigherPriorityLevelRunsFirst) {
  Simulator sim;
  Cpu cpu(sim, std::make_unique<NtScheduler>(), NoSwitchCost());
  Thread* low = cpu.CreateThread("low", ThreadClass::kBatch, 8);
  Thread* high = cpu.CreateThread("high", ThreadClass::kBatch, 10);
  TimePoint low_done;
  TimePoint high_done;
  // Post low first; high must still win the first dispatch decision after preempting? No —
  // no preemption here: post both before running the simulator.
  cpu.PostWork(*low, Duration::Millis(5), [&] { low_done = sim.Now(); });
  cpu.PostWork(*high, Duration::Millis(5), [&] { high_done = sim.Now(); });
  sim.Run();
  // `low` was dispatched immediately at post time (CPU idle), then `high`'s wake preempted.
  EXPECT_EQ(high_done, TimePoint::FromMicros(5000));
  EXPECT_EQ(low_done, TimePoint::FromMicros(10000));
}

TEST(NtSchedulerTest, GuiInputWakeBoostsTo15) {
  NtScheduler sched;
  Thread gui(1, "gui", ThreadClass::kGui, kNtForegroundPriority);
  sched.OnReady(gui, WakeReason::kInputEvent);
  EXPECT_EQ(gui.sched_priority, 15);
  EXPECT_EQ(gui.boost_quanta, 2);
}

TEST(NtSchedulerTest, NonInputWakeDoesNotBoost) {
  NtScheduler sched;
  Thread gui(1, "gui", ThreadClass::kGui, kNtForegroundPriority);
  sched.OnReady(gui, WakeReason::kIoComplete);
  EXPECT_EQ(gui.sched_priority, kNtForegroundPriority);
  EXPECT_EQ(gui.boost_quanta, 0);
}

TEST(NtSchedulerTest, BatchInputWakeDoesNotBoost) {
  NtScheduler sched;
  Thread batch(1, "b", ThreadClass::kBatch, kNtBackgroundPriority);
  sched.OnReady(batch, WakeReason::kInputEvent);
  EXPECT_EQ(batch.sched_priority, kNtBackgroundPriority);
}

TEST(NtSchedulerTest, BoostDecaysAfterTwoQuanta) {
  NtScheduler sched;
  Thread gui(1, "gui", ThreadClass::kGui, kNtForegroundPriority);
  sched.OnReady(gui, WakeReason::kInputEvent);
  ASSERT_EQ(sched.PickNext(), &gui);
  sched.OnQuantumExpired(gui);
  EXPECT_EQ(gui.sched_priority, 15);  // one quantum left
  ASSERT_EQ(sched.PickNext(), &gui);
  sched.OnQuantumExpired(gui);
  EXPECT_EQ(gui.sched_priority, kNtForegroundPriority);  // boost exhausted
}

TEST(NtSchedulerTest, BlockedThreadLosesBoost) {
  NtScheduler sched;
  Thread gui(1, "gui", ThreadClass::kGui, kNtForegroundPriority);
  sched.OnReady(gui, WakeReason::kInputEvent);
  ASSERT_EQ(sched.PickNext(), &gui);
  sched.OnBlocked(gui);
  EXPECT_EQ(gui.boost_quanta, 0);
  sched.OnReady(gui, WakeReason::kOther);
  EXPECT_EQ(gui.sched_priority, kNtForegroundPriority);
}

TEST(NtSchedulerTest, QuantumStretchingAppliesToGuiOnly) {
  NtSchedulerConfig cfg;
  cfg.foreground_stretch = 3;
  NtScheduler sched(cfg);
  Thread gui(1, "gui", ThreadClass::kGui, 9);
  Thread batch(2, "batch", ThreadClass::kBatch, 8);
  EXPECT_EQ(sched.QuantumFor(gui), Duration::Millis(90));
  EXPECT_EQ(sched.QuantumFor(batch), Duration::Millis(30));
}

TEST(NtSchedulerTest, FifoWithinPriorityLevel) {
  NtScheduler sched;
  Thread a(1, "a", ThreadClass::kBatch, 8);
  Thread b(2, "b", ThreadClass::kBatch, 8);
  sched.OnReady(a, WakeReason::kOther);
  sched.OnReady(b, WakeReason::kOther);
  EXPECT_EQ(sched.PickNext(), &a);
  EXPECT_EQ(sched.PickNext(), &b);
  EXPECT_EQ(sched.PickNext(), nullptr);
}

TEST(NtSchedulerTest, PreemptedGoesToFrontOfLevel) {
  NtScheduler sched;
  Thread a(1, "a", ThreadClass::kBatch, 8);
  Thread b(2, "b", ThreadClass::kBatch, 8);
  sched.OnReady(a, WakeReason::kOther);
  sched.OnReady(b, WakeReason::kOther);
  ASSERT_EQ(sched.PickNext(), &a);
  sched.OnPreempted(a);  // preempted -> front, ahead of b
  EXPECT_EQ(sched.PickNext(), &a);
}

TEST(NtSchedulerTest, ShouldPreemptComparesEffectivePriority) {
  NtScheduler sched;
  Thread running(1, "r", ThreadClass::kBatch, 8);
  running.sched_priority = 8;
  Thread woken(2, "w", ThreadClass::kGui, 9);
  sched.OnReady(woken, WakeReason::kInputEvent);
  EXPECT_TRUE(sched.ShouldPreempt(running, woken));
  Thread daemon(3, "d", ThreadClass::kDaemon, 13);
  daemon.sched_priority = 13;
  EXPECT_FALSE(sched.ShouldPreempt(daemon, running));
}

// The paper's §4.2.1 worked example: a 500 ms maximize operation whose GUI thread is
// boosted to 15 for two stretched (x3) quanta = 180 ms of grace, intersecting a 400 ms
// priority-13 Session Manager event, completes only after 900 ms.
TEST(NtSchedulerTest, PaperMaximizeScenarioTakes900Ms) {
  Simulator sim;
  NtSchedulerConfig cfg;
  cfg.foreground_stretch = 3;
  Cpu cpu(sim, std::make_unique<NtScheduler>(cfg), NoSwitchCost());
  Thread* daemon = cpu.CreateThread("session-mgr", ThreadClass::kDaemon,
                                    kNtSystemDaemonPriority);
  Thread* editor = cpu.CreateThread("editor", ThreadClass::kGui, kNtForegroundPriority);
  TimePoint maximize_done;
  cpu.PostWork(*daemon, Duration::Millis(400));
  cpu.PostWork(*editor, Duration::Millis(500), [&] { maximize_done = sim.Now(); },
               WakeReason::kInputEvent);
  sim.Run();
  // Boosted editor runs [0,180); daemon (13 > 9) runs [180,580); editor [580,900).
  EXPECT_EQ(maximize_done, TimePoint::FromMicros(900000));
}

// With a fast enough processor the same operation fits inside the 180 ms grace period and
// suffers no daemon interference — the paper's observation that clock-speed advances alone
// rescue the maximize operation.
TEST(NtSchedulerTest, FasterCpuBringsOperationUnderBoostThreshold) {
  Simulator sim;
  NtSchedulerConfig cfg;
  cfg.foreground_stretch = 3;
  CpuConfig cpu_cfg = NoSwitchCost();
  cpu_cfg.speed = 3.0;  // 500 ms of work -> ~166 ms < 180 ms grace
  Cpu cpu(sim, std::make_unique<NtScheduler>(cfg), cpu_cfg);
  Thread* daemon = cpu.CreateThread("session-mgr", ThreadClass::kDaemon,
                                    kNtSystemDaemonPriority);
  Thread* editor = cpu.CreateThread("editor", ThreadClass::kGui, kNtForegroundPriority);
  TimePoint maximize_done;
  cpu.PostWork(*daemon, Duration::Millis(400));
  cpu.PostWork(*editor, Duration::Millis(500), [&] { maximize_done = sim.Now(); },
               WakeReason::kInputEvent);
  sim.Run();
  EXPECT_LT(maximize_done, TimePoint::FromMicros(180000));
}

}  // namespace
}  // namespace tcs
